#include "net/topology_gen.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/types.h"

namespace radar::net {
namespace {

// Link tiers, loosely calibrated against the UUNET builder's 350 KBps
// backbone (net/uunet.h): long-haul transit trunks are faster and
// slower-to-cross than stub access links.
constexpr double kStubBandwidth = 350.0 * 1024.0;
constexpr double kTransitBandwidth = 4.0 * kStubBandwidth;
constexpr double kAccessBandwidth = 2.0 * kStubBandwidth;

SimTime DrawDelayMs(Rng& rng, std::int64_t lo_ms, std::int64_t hi_ms) {
  return MillisToSim(static_cast<double>(rng.NextInRange(lo_ms, hi_ms)));
}

struct KeyValue {
  std::string key;
  std::int64_t value = 0;
};

std::vector<KeyValue> ParseKeyValues(const std::string& body,
                                     const std::string& spec) {
  std::vector<KeyValue> out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string item = body.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    RADAR_CHECK_MSG(eq != std::string::npos && eq > 0 && eq + 1 < item.size(),
                    ("malformed topology spec item '" + item + "' in '" +
                     spec + "' (expected key=value)")
                        .c_str());
    char* end = nullptr;
    const std::int64_t value =
        std::strtoll(item.c_str() + eq + 1, &end, 10);
    RADAR_CHECK_MSG(end != nullptr && *end == '\0',
                    ("non-numeric value in topology spec item '" + item + "'")
                        .c_str());
    out.push_back({item.substr(0, eq), value});
    pos = comma + 1;
  }
  return out;
}

Topology GenerateTransitStub(const TopologySpec& spec) {
  const int domains = spec.transit_domains;
  const int transit = spec.transit_per_domain;
  const int stubs = spec.stubs_per_transit;
  RADAR_CHECK_GT(domains, 0);
  RADAR_CHECK_GT(transit, 0);
  RADAR_CHECK_GT(stubs, 0);
  const int num_transit = domains * transit;
  const int num_stubs = num_transit * stubs;

  // Per-stub node counts: fixed stub_size, or sized so the grand total
  // hits target_nodes exactly (remainder spread over the first stubs).
  std::vector<std::int32_t> stub_nodes(static_cast<std::size_t>(num_stubs));
  if (spec.target_nodes > 0) {
    const std::int32_t pool = spec.target_nodes - num_transit;
    RADAR_CHECK_MSG(pool >= num_stubs,
                    "ts: target n too small for the domain structure "
                    "(need at least domains*transit*(stubs+1) nodes)");
    const std::int32_t base = pool / num_stubs;
    const std::int32_t rem = pool % num_stubs;
    for (int s = 0; s < num_stubs; ++s) {
      stub_nodes[static_cast<std::size_t>(s)] = base + (s < rem ? 1 : 0);
    }
  } else {
    RADAR_CHECK_GT(spec.stub_size, 0);
    std::fill(stub_nodes.begin(), stub_nodes.end(), spec.stub_size);
  }

  Rng rng(spec.seed);
  TopologyBuilder builder;

  // Transit routers first, so their ids are the dense prefix.
  std::vector<NodeId> transit_id(static_cast<std::size_t>(num_transit));
  for (int d = 0; d < domains; ++d) {
    const auto region = static_cast<Region>(d % kNumRegions);
    for (int i = 0; i < transit; ++i) {
      transit_id[static_cast<std::size_t>(d * transit + i)] = builder.AddNode(
          "t" + std::to_string(d) + "." + std::to_string(i), region,
          /*is_gateway=*/false);
    }
  }

  // Intra-domain transit ring.
  for (int d = 0; d < domains; ++d) {
    for (int i = 0; i + 1 < transit; ++i) {
      builder.Link(transit_id[static_cast<std::size_t>(d * transit + i)],
                   transit_id[static_cast<std::size_t>(d * transit + i + 1)],
                   DrawDelayMs(rng, 5, 15), kTransitBandwidth);
    }
    if (transit >= 3) {
      builder.Link(transit_id[static_cast<std::size_t>(d * transit)],
                   transit_id[static_cast<std::size_t>((d + 1) * transit - 1)],
                   DrawDelayMs(rng, 5, 15), kTransitBandwidth);
    }
  }

  // Inter-domain ring plus skip chords for redundancy.
  for (int d = 0; d + 1 < domains; ++d) {
    builder.Link(transit_id[static_cast<std::size_t>(d * transit)],
                 transit_id[static_cast<std::size_t>((d + 1) * transit)],
                 DrawDelayMs(rng, 20, 60), kTransitBandwidth);
  }
  if (domains >= 3) {
    builder.Link(transit_id[static_cast<std::size_t>((domains - 1) * transit)],
                 transit_id[0], DrawDelayMs(rng, 20, 60), kTransitBandwidth);
  }
  if (domains >= 5) {
    for (int d = 0; d < domains; d += 2) {
      const NodeId a = transit_id[static_cast<std::size_t>(d * transit)];
      const NodeId b = transit_id[static_cast<std::size_t>(
          ((d + 2) % domains) * transit + (transit > 1 ? 1 : 0))];
      if (a != b && !builder.HasLink(a, b)) {
        builder.Link(a, b, DrawDelayMs(rng, 20, 60), kTransitBandwidth);
      }
    }
  }

  // Stub domains: node 0 of each stub is its gateway.
  for (int d = 0; d < domains; ++d) {
    const auto region = static_cast<Region>(d % kNumRegions);
    for (int i = 0; i < transit; ++i) {
      const NodeId attach = transit_id[static_cast<std::size_t>(d * transit + i)];
      for (int j = 0; j < stubs; ++j) {
        const int stub_index = (d * transit + i) * stubs + j;
        const std::int32_t count =
            stub_nodes[static_cast<std::size_t>(stub_index)];
        const std::string prefix = "s" + std::to_string(d) + "." +
                                   std::to_string(i) + "." +
                                   std::to_string(j) + ".";
        NodeId first = kInvalidNode;
        NodeId prev = kInvalidNode;
        for (std::int32_t k = 0; k < count; ++k) {
          const NodeId id = builder.AddNode(prefix + std::to_string(k),
                                            region, /*is_gateway=*/k == 0);
          if (k == 0) {
            first = id;
            builder.Link(attach, id, DrawDelayMs(rng, 2, 8),
                         kAccessBandwidth);
          } else {
            builder.Link(prev, id, DrawDelayMs(rng, 1, 4), kStubBandwidth);
          }
          prev = id;
        }
        if (count >= 3) {
          builder.Link(prev, first, DrawDelayMs(rng, 1, 4), kStubBandwidth);
        }
        if (count >= 6) {
          builder.Link(first, first + count / 2, DrawDelayMs(rng, 1, 4),
                       kStubBandwidth);
        }
      }
    }
  }

  return std::move(builder).Build();
}

Topology GenerateScaleFree(const TopologySpec& spec) {
  const std::int32_t n = spec.target_nodes;
  const int m = spec.edges_per_node;
  RADAR_CHECK_GT(m, 0);
  RADAR_CHECK_MSG(n > m, "sf: needs n > m");
  RADAR_CHECK_GE(n, kNumRegions);

  int gateways = spec.num_gateways;
  if (gateways <= 0) gateways = std::max(kNumRegions, n / 16);
  gateways = std::min(gateways, static_cast<int>(n));
  RADAR_CHECK_GE(gateways, kNumRegions);

  // Gateway ids: spread evenly through each of the four contiguous
  // region blocks so every region keeps request entry points.
  std::vector<char> is_gateway(static_cast<std::size_t>(n), 0);
  {
    int assigned = 0;
    for (int r = 0; r < kNumRegions; ++r) {
      const std::int32_t block_start = static_cast<std::int32_t>(
          (static_cast<std::int64_t>(n) * r) / kNumRegions);
      const std::int32_t block_end = static_cast<std::int32_t>(
          (static_cast<std::int64_t>(n) * (r + 1)) / kNumRegions);
      const int per_block = gateways / kNumRegions +
                            (r < gateways % kNumRegions ? 1 : 0);
      const std::int32_t block_size = block_end - block_start;
      for (int j = 0; j < per_block && j < block_size; ++j) {
        const std::int32_t id = block_start + static_cast<std::int32_t>(
            (static_cast<std::int64_t>(block_size) * j) / per_block);
        if (is_gateway[static_cast<std::size_t>(id)] == 0) {
          is_gateway[static_cast<std::size_t>(id)] = 1;
          ++assigned;
        }
      }
    }
    RADAR_CHECK_GE(assigned, kNumRegions);
  }

  TopologyBuilder builder;
  for (std::int32_t i = 0; i < n; ++i) {
    const auto region = static_cast<Region>(
        (static_cast<std::int64_t>(i) * kNumRegions) / n);
    builder.AddNode("n" + std::to_string(i), region,
                    is_gateway[static_cast<std::size_t>(i)] != 0);
  }

  Rng rng(spec.seed);
  // Preferential attachment over an endpoint list: each link contributes
  // both endpoints, so a uniform draw lands on a node with probability
  // proportional to its degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(n) *
                    static_cast<std::size_t>(m));

  // Seed clique over the first m+1 nodes.
  for (std::int32_t a = 0; a <= m; ++a) {
    for (std::int32_t b = a + 1; b <= m; ++b) {
      builder.Link(a, b, DrawDelayMs(rng, 5, 40), kStubBandwidth);
      endpoints.push_back(a);
      endpoints.push_back(b);
    }
  }

  std::vector<NodeId> chosen;
  for (std::int32_t i = m + 1; i < n; ++i) {
    chosen.clear();
    for (int e = 0; e < m; ++e) {
      NodeId target = kInvalidNode;
      for (int attempt = 0; attempt < 32; ++attempt) {
        const NodeId candidate =
            endpoints[rng.NextBounded(endpoints.size())];
        if (candidate != i &&
            std::find(chosen.begin(), chosen.end(), candidate) ==
                chosen.end()) {
          target = candidate;
          break;
        }
      }
      if (target == kInvalidNode) {
        // Deterministic fallback: first unchosen node scanning up from 0.
        for (NodeId candidate = 0; candidate < i; ++candidate) {
          if (std::find(chosen.begin(), chosen.end(), candidate) ==
              chosen.end()) {
            target = candidate;
            break;
          }
        }
      }
      RADAR_CHECK(target != kInvalidNode);
      chosen.push_back(target);
      builder.Link(i, target, DrawDelayMs(rng, 5, 40), kStubBandwidth);
      endpoints.push_back(i);
      endpoints.push_back(target);
    }
  }

  return std::move(builder).Build();
}

}  // namespace

int TopologySpec::ExpectedGateways() const {
  if (family == Family::kTransitStub) {
    return transit_domains * transit_per_domain * stubs_per_transit;
  }
  int gateways = num_gateways;
  if (gateways <= 0) gateways = std::max(kNumRegions, target_nodes / 16);
  return std::min(gateways, static_cast<int>(target_nodes));
}

std::int32_t TopologySpec::ExpectedNodes() const {
  if (family == Family::kScaleFree || target_nodes > 0) return target_nodes;
  const int num_transit = transit_domains * transit_per_domain;
  return num_transit + num_transit * stubs_per_transit * stub_size;
}

bool IsTopologySpec(const std::string& spec) {
  return spec.rfind("ts:", 0) == 0 || spec.rfind("sf:", 0) == 0;
}

TopologySpec ParseTopologySpec(const std::string& spec) {
  RADAR_CHECK_MSG(IsTopologySpec(spec),
                  "topology spec must start with 'ts:' or 'sf:'");
  TopologySpec out;
  out.family = spec.rfind("ts:", 0) == 0 ? TopologySpec::Family::kTransitStub
                                         : TopologySpec::Family::kScaleFree;
  for (const KeyValue& kv : ParseKeyValues(spec.substr(3), spec)) {
    if (kv.key == "seed") {
      out.seed = static_cast<std::uint64_t>(kv.value);
    } else if (kv.key == "n") {
      out.target_nodes = static_cast<std::int32_t>(kv.value);
    } else if (kv.key == "domains") {
      out.transit_domains = static_cast<int>(kv.value);
    } else if (kv.key == "transit") {
      out.transit_per_domain = static_cast<int>(kv.value);
    } else if (kv.key == "stubs") {
      out.stubs_per_transit = static_cast<int>(kv.value);
    } else if (kv.key == "stub") {
      out.stub_size = static_cast<int>(kv.value);
    } else if (kv.key == "m") {
      out.edges_per_node = static_cast<int>(kv.value);
    } else if (kv.key == "gw") {
      out.num_gateways = static_cast<int>(kv.value);
    } else {
      RADAR_CHECK_MSG(
          false, ("unknown topology spec key '" + kv.key + "'").c_str());
    }
  }
  if (out.family == TopologySpec::Family::kScaleFree) {
    RADAR_CHECK_MSG(out.target_nodes > 0, "sf: requires n=<nodes>");
  }
  return out;
}

Topology GenerateTopology(const TopologySpec& spec) {
  return spec.family == TopologySpec::Family::kTransitStub
             ? GenerateTransitStub(spec)
             : GenerateScaleFree(spec);
}

Topology GenerateTopology(const std::string& spec) {
  return GenerateTopology(ParseTopologySpec(spec));
}

}  // namespace radar::net
