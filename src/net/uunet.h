// A 53-node, 4-region backbone modelled on the 1998 UUNET global backbone.
//
// The paper evaluates on UUNET's backbone ("53 nodes in North America,
// Europe, Pacific Rim, and Australia", Sec. 6.1) whose exact map, cited as
// reference [34], is no longer available. This builder synthesizes a
// topology with the same node count and regional structure: dense
// intra-region meshes around hub cities, redundant transcontinental trunks,
// and a small number of trans-oceanic links. Placement and distribution
// behaviour in the protocol depends on hop distances and regional
// clustering, both of which this construction preserves (see DESIGN.md,
// substitution table).
#pragma once

#include "common/types.h"
#include "net/topology.h"

namespace radar::net {

/// Parameters for the synthetic backbone links (paper's Table 1 defaults).
struct BackboneParams {
  SimTime link_delay = MillisToSim(10.0);   ///< 10 ms per hop
  double bandwidth_bps = 350.0 * 1024.0;    ///< 350 KBps
};

/// Builds the 53-node UUNET-style backbone. All nodes are gateways, as in
/// the paper's simulation.
Topology MakeUunetBackbone(const BackboneParams& params = {});

/// Number of nodes in the backbone above.
inline constexpr std::int32_t kUunetNodeCount = 53;

}  // namespace radar::net
