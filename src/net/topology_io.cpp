#include "net/topology_io.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace radar::net {
namespace {

std::string MakeError(int line, const std::string& message) {
  std::ostringstream os;
  os << "line " << line << ": " << message;
  return os.str();
}

}  // namespace

const char* RegionToken(Region region) {
  switch (region) {
    case Region::kWesternNorthAmerica: return "west-na";
    case Region::kEasternNorthAmerica: return "east-na";
    case Region::kEurope: return "europe";
    case Region::kPacificAustralia: return "pacific";
  }
  return "?";
}

std::optional<Region> RegionFromToken(const std::string& token) {
  if (token == "west-na") return Region::kWesternNorthAmerica;
  if (token == "east-na") return Region::kEasternNorthAmerica;
  if (token == "europe") return Region::kEurope;
  if (token == "pacific") return Region::kPacificAustralia;
  return std::nullopt;
}

std::optional<Topology> ReadTopology(std::istream& in, std::string* error) {
  TopologyBuilder builder;
  std::string line;
  int line_number = 0;
  bool saw_link = false;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = MakeError(line_number, message);
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank / comment-only line

    if (keyword == "node") {
      if (saw_link) return fail("nodes must precede links");
      std::string name;
      std::string region_token;
      if (!(tokens >> name >> region_token)) {
        return fail("expected: node <name> <region> [gateway|transit]");
      }
      const auto region = RegionFromToken(region_token);
      if (!region) return fail("unknown region '" + region_token + "'");
      std::string role = "gateway";
      tokens >> role;
      if (role != "gateway" && role != "transit") {
        return fail("role must be 'gateway' or 'transit'");
      }
      if (builder.IdOf(name) != kInvalidNode) {
        return fail("duplicate node '" + name + "'");
      }
      builder.AddNode(name, *region, role == "gateway");
    } else if (keyword == "link") {
      saw_link = true;
      std::string a;
      std::string b;
      double delay_ms = 0.0;
      double bandwidth_kbps = 0.0;
      if (!(tokens >> a >> b >> delay_ms >> bandwidth_kbps)) {
        return fail(
            "expected: link <a> <b> <delay-ms> <bandwidth-kbps>");
      }
      if (builder.IdOf(a) == kInvalidNode) {
        return fail("unknown node '" + a + "'");
      }
      if (builder.IdOf(b) == kInvalidNode) {
        return fail("unknown node '" + b + "'");
      }
      if (builder.IdOf(a) == builder.IdOf(b)) {
        return fail("self-link on '" + a + "'");
      }
      if (builder.HasLink(builder.IdOf(a), builder.IdOf(b))) {
        return fail("duplicate link " + a + " - " + b);
      }
      if (delay_ms < 0.0 || bandwidth_kbps <= 0.0) {
        return fail("delay must be >= 0 and bandwidth > 0");
      }
      builder.Link(a, b, MillisToSim(delay_ms), bandwidth_kbps * 1024.0);
    } else {
      return fail("unknown keyword '" + keyword + "'");
    }
  }

  if (builder.num_nodes() == 0) {
    line_number = 0;
    return fail("no nodes defined");
  }
  if (!builder.IsConnected()) {
    line_number = 0;
    return fail("topology is not connected");
  }
  return std::move(builder).Build();
}

void WriteTopology(const Topology& topology, std::ostream& out) {
  out << "# radar topology: " << topology.num_nodes() << " nodes, "
      << topology.graph().num_links() << " links\n";
  for (NodeId n = 0; n < topology.num_nodes(); ++n) {
    const NodeInfo& info = topology.node(n);
    out << "node " << info.name << ' ' << RegionToken(info.region) << ' '
        << (info.is_gateway ? "gateway" : "transit") << '\n';
  }
  for (const Link& link : topology.graph().links()) {
    out << "link " << topology.node(link.a).name << ' '
        << topology.node(link.b).name << ' '
        << (static_cast<double>(link.delay) /
            static_cast<double>(kMicrosPerMilli))
        << ' ' << link.bandwidth_bps / 1024.0 << '\n';
  }
}

}  // namespace radar::net
