// Sparse gateway-pivot latency oracle for internet-scale graphs.
//
// The dense PathLatencyMatrix stores two n^2 SimTime arrays and rebuilds
// them per fault epoch — ~1.6 GB and an O(n^2 · path) rebuild at 10k
// nodes. This oracle exploits the protocol's access pattern instead:
// every latency the request engine resolves on its hot path has a
// *gateway or redirector home* on one side (dispatch legs, redirect
// legs, retry legs, delivery legs). So it precomputes one canonical
// shortest-path tree per such "rowed" source — O(rows · n) storage with
// rows ≈ gateways + homes ≪ n — and answers the long tail of host–host
// pairs through pivot labels (each node is assigned its nearest rowed
// pivot; the pair is routed through the pivot's tree via the lowest
// common ancestor).
//
// Answer classes, in lookup order for a pair (a, b):
//   1. a is rowed   → a's own tree: identical arithmetic and canonical
//      path to the dense matrix, bit-for-bit.
//   2. b is rowed   → the reverse of b's tree path to a. The same links
//      are traversed, and both control and transfer sum per-link integer
//      terms that are direction-independent, so Control(a,b) equals the
//      dense Control(b,a) exactly.
//   3. neither      → the tree path a → lca → b inside the tree of a's
//      pivot: an exact tree-path sum over real graph links (a valid
//      route, deterministic, but not necessarily the dense canonical
//      shortest path). Only cold administrative legs (host-to-host copy
//      accounting, placement distances to interior routers) ever take
//      this class.
//
// With every node registered as a row the oracle degenerates to the
// dense semantics for all ordered pairs — the property tests pin that
// equality, and the 53-node UUNET graph (all nodes gateways) takes this
// path, keeping the golden report byte-identical under --oracle=sparse.
//
// Fault epochs invalidate incrementally: a link event recomputes only
// the trees it actually perturbs. Down(u,v): a tree changes iff (u,v) is
// one of its tree edges (removing a non-tree edge can change neither
// distances nor the rank-argmin parent choice). Up(u,v): a tree changes
// iff cost[u]+w <= cost[v] or cost[v]+w <= cost[u] (strict improvement
// moves distances; equality can flip the deterministic tie-break). The
// same tests against the pivot forest's distances govern rebuilding the
// pivot assignment. Everything is evaluated against the master graph
// plus a link-up mask, so no per-epoch graph copy or re-indexing exists.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "net/graph.h"
#include "net/latency_oracle.h"
#include "net/routing.h"

namespace radar::net {

class GatewayPivotOracle final : public LatencyOracle {
 public:
  /// Builds rows for `seed_sources` (typically the gateway set; sorted
  /// and deduplicated internally, must be non-empty) over `graph`, which
  /// must be connected, outlive the oracle, and use hop-metric routing
  /// (the simulation's model). `object_bytes` parameterizes the transfer
  /// rows exactly as in PathLatencyMatrix.
  GatewayPivotOracle(const Graph& graph, std::vector<NodeId> seed_sources,
                     std::int64_t object_bytes);

  std::int32_t num_nodes() const override { return num_nodes_; }
  std::int64_t object_bytes() const { return object_bytes_; }
  std::size_t num_rows() const { return rowed_.size(); }

  /// Registers additional rowed sources (redirector homes). Sources
  /// already rowed are ignored. Rebuilds the pivot assignment so the
  /// new rows also serve as pivots.
  void AddRowSources(const std::vector<NodeId>& sources);

  bool HasRow(NodeId a) const {
    return row_of_[static_cast<std::size_t>(Checked(a))] >= 0;
  }

  SimTime Control(NodeId a, NodeId b) const override;
  SimTime Transfer(NodeId a, NodeId b) const override;

  /// Row of control latencies from `a`, or nullptr when `a` is not a
  /// rowed source (hot dispatch only ever asks for gateway/home rows).
  const SimTime* ControlRow(NodeId a) const override {
    const std::int32_t r = row_of_[static_cast<std::size_t>(Checked(a))];
    return r < 0 ? nullptr : &ctrl_[RowBase(r)];
  }

  /// Row of hop distances from `a`, or nullptr when `a` is not rowed.
  const std::int32_t* HopRowFor(NodeId a) const {
    const std::int32_t r = row_of_[static_cast<std::size_t>(Checked(a))];
    return r < 0 ? nullptr : &hops_[RowBase(r)];
  }

  /// Hop count of the path AppendPath would produce for (a, b); exact
  /// graph distance when either endpoint is rowed.
  std::int32_t HopDistance(NodeId a, NodeId b) const;

  /// Appends the canonical route for (a, b), inclusive of both
  /// endpoints, to `*out` without clearing it. Allocation-free at steady
  /// capacity and safe to call concurrently (no shared mutable state).
  void AppendPath(NodeId a, NodeId b, std::vector<NodeId>* out) const;

  SimTime MinCrossPartitionControl(
      const std::vector<int>& partition) const override;

  /// Pivot (nearest rowed source) of a node; nodes in the same pivot
  /// cluster are topologically close, which the sharded engine uses to
  /// partition hosts without n^2 pair scans.
  NodeId PivotOf(NodeId a) const {
    return pivot_of_[static_cast<std::size_t>(Checked(a))];
  }

  /// Applies one link state change (up = restored, down = failed) and
  /// incrementally recomputes only the affected trees. The masked graph
  /// must remain connected (the fault injector guarantees this).
  void OnLinkChange(std::int32_t link_index, bool up);

  /// Cumulative count of single-source tree recomputations caused by
  /// OnLinkChange — the observable cost of incremental epoching.
  std::int64_t rows_rebuilt() const { return rows_rebuilt_; }
  /// Cumulative count of pivot-forest recomputations.
  std::int64_t forests_rebuilt() const { return forests_rebuilt_; }

  /// All nodes ordered by total hop distance from the seed rows
  /// (ascending; ties toward the lower id). When the seed set is every
  /// node this is exactly RoutingTable::NodesByCentrality's order, which
  /// is what keeps sparse-mode redirector home picks identical on
  /// all-gateway graphs like UUNET.
  std::vector<NodeId> NodesBySeedCentrality() const;

 private:
  NodeId Checked(NodeId a) const {
    RADAR_CHECK_GE(a, 0);
    RADAR_CHECK_LT(a, num_nodes_);
    return a;
  }
  std::size_t RowBase(std::int32_t row) const {
    return static_cast<std::size_t>(row) * static_cast<std::size_t>(num_nodes_);
  }

  /// Rebuilds row `r`'s tree and latency arrays under the current mask.
  void RebuildRow(std::int32_t row);
  /// Rebuilds the multi-source pivot assignment under the current mask.
  void RebuildPivotForest();
  /// Lowest common ancestor of (a, b) in rowed tree `row`.
  NodeId Lca(std::int32_t row, NodeId a, NodeId b) const;
  /// Row that answers a class-3 pair with first endpoint `a`.
  std::int32_t PivotRow(NodeId a) const {
    const std::int32_t r =
        row_of_[static_cast<std::size_t>(pivot_of_[static_cast<std::size_t>(a)])];
    RADAR_CHECK_GE(r, 0);
    return r;
  }

  const Graph* graph_ = nullptr;
  std::int32_t num_nodes_ = 0;
  std::int64_t object_bytes_ = 0;
  std::vector<char> link_up_;

  std::vector<NodeId> rowed_;        // rowed sources, registration order
  std::size_t num_seed_rows_ = 0;    // prefix of rowed_ present at ctor
  std::vector<std::int32_t> row_of_;  // node -> row index or -1

  // Flattened per-row arrays, row r at [r * n, (r+1) * n). Hop counts
  // double as metric costs (hop-metric routing), so the incremental
  // link-up test reads hops_ directly.
  std::vector<NodeId> parent_;
  std::vector<std::int32_t> hops_;
  std::vector<SimTime> ctrl_;
  std::vector<SimTime> trans_;

  // Pivot assignment: nearest rowed source per node (multi-source BFS).
  std::vector<NodeId> pivot_of_;
  std::vector<std::int32_t> pivot_dist_;
  std::vector<NodeId> pivot_parent_;

  std::int64_t rows_rebuilt_ = 0;
  std::int64_t forests_rebuilt_ = 0;

  ShortestPathTree scratch_tree_;
  std::vector<std::size_t> scratch_bucket_;
  std::vector<NodeId> scratch_order_;
};

}  // namespace radar::net
