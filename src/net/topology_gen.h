// Deterministic synthetic topology generators for internet-scale runs.
//
// Two families, both connectivity-guaranteed and exactly reproducible
// from (spec, seed) — the generator owns the only RNG in src/net (a lint
// rule confines it to topology_gen.cpp so generator randomness cannot
// leak into routing or oracles):
//
//  - transit-stub ("ts:"): the classic hierarchical internet model. T
//    transit domains in a redundant ring, NT transit routers per domain,
//    S stub domains hanging off each transit router, NS nodes per stub.
//    The first node of every stub domain is its gateway (requests enter
//    there); transit and interior stub routers are not gateways. Regions
//    follow transit domains (domain d -> region d mod 4), so the
//    regional workloads run unchanged.
//
//  - scale-free ("sf:"): preferential attachment (Barabasi-Albert). Each
//    new node attaches m edges to existing nodes with probability
//    proportional to degree. Regions are four contiguous id blocks;
//    gateways are spread evenly through every block.
//
// Spec strings (anything else is treated as a topology file path):
//   ts:n=10000,seed=7            10k-node transit-stub, derived stub size
//   ts:domains=4,transit=3,stubs=3,stub=12,seed=1
//   sf:n=1000,m=2,gw=64,seed=1
#pragma once

#include <cstdint>
#include <string>

#include "net/topology.h"

namespace radar::net {

struct TopologySpec {
  enum class Family { kTransitStub, kScaleFree };
  Family family = Family::kTransitStub;
  std::uint64_t seed = 1;

  /// Exact total node count ("n="); 0 = derive from structural fields.
  std::int32_t target_nodes = 0;

  // Transit-stub structure.
  int transit_domains = 4;    ///< "domains="
  int transit_per_domain = 3; ///< "transit="
  int stubs_per_transit = 3;  ///< "stubs="
  int stub_size = 4;          ///< "stub=", ignored when target_nodes > 0

  // Scale-free structure.
  int edges_per_node = 2;  ///< "m="
  int num_gateways = 0;    ///< "gw="; 0 = max(4, n/16)

  /// Gateways this spec will produce (what the property tests bound).
  int ExpectedGateways() const;
  /// Nodes this spec will produce.
  std::int32_t ExpectedNodes() const;
};

/// True when the string carries a generator prefix ("ts:" or "sf:").
bool IsTopologySpec(const std::string& spec);

/// Parses a generator spec; aborts with a message on malformed input.
TopologySpec ParseTopologySpec(const std::string& spec);

/// Generates the topology for a parsed spec.
Topology GenerateTopology(const TopologySpec& spec);

/// Convenience: parse + generate.
Topology GenerateTopology(const std::string& spec);

}  // namespace radar::net
