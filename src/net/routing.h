// All-pairs shortest-path routing with deterministic tie-breaking.
//
// The paper's simulation routes every request along the shortest path in
// hops, and "when there are equidistant paths between nodes i and j, one
// path is chosen for all requests from i to j" (Sec. 6.1). We reproduce
// that by breaking distance ties toward the lowest-numbered parent, which
// pins one canonical path per (source, destination) pair.
//
// The router path from host s to client gateway g doubles as the
// *preference path* of Sec. 2: the sequence of hosts co-located with the
// routers a response passes by.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"

namespace radar::net {

/// Metric used to choose shortest paths.
enum class RoutingMetric {
  kHops,   ///< unit link weight (the paper's model)
  kDelay,  ///< per-link propagation delay
};

class RoutingTable {
 public:
  /// Builds routes for every ordered pair. Requires a connected graph.
  explicit RoutingTable(const Graph& graph,
                        RoutingMetric metric = RoutingMetric::kHops);

  std::int32_t num_nodes() const { return num_nodes_; }

  /// Number of links on the canonical path from `from` to `to` (0 when
  /// from == to).
  std::int32_t HopDistance(NodeId from, NodeId to) const;

  /// Contiguous row of hop distances from `from` to every node (entry
  /// [to] == HopDistance(from, to)); backs DistanceOracle::DistanceRow.
  const std::int32_t* HopRow(NodeId from) const;

  /// Total metric cost of the canonical path (hops or summed delay).
  std::int64_t Cost(NodeId from, NodeId to) const;

  /// The canonical path, inclusive of both endpoints; size = hops + 1.
  const std::vector<NodeId>& Path(NodeId from, NodeId to) const;

  /// First router after `from` on the path to `to` (== to if adjacent,
  /// == from if from == to).
  NodeId NextHop(NodeId from, NodeId to) const;

  /// Mean hop distance from `from` to all other nodes.
  double MeanHopDistance(NodeId from) const;

  /// The node with the smallest mean hop distance to all others — the
  /// paper places the redirector there. Ties break toward the lower id.
  NodeId MostCentralNode() const;

  /// Nodes ranked by centrality (ascending mean hop distance); used to
  /// place hash-partitioned redirector groups.
  std::vector<NodeId> NodesByCentrality() const;

 private:
  std::size_t PairIndex(NodeId from, NodeId to) const;

  /// Mean hop distance of every node, computed in one pass; shared by
  /// MostCentralNode and NodesByCentrality so neither recomputes per node.
  std::vector<double> AllMeanHopDistances() const;

  std::int32_t num_nodes_ = 0;
  std::vector<std::int32_t> hop_distance_;   // dense num_nodes^2
  std::vector<std::int64_t> cost_;           // dense num_nodes^2
  std::vector<std::vector<NodeId>> paths_;   // dense num_nodes^2
};

}  // namespace radar::net
