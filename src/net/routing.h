// All-pairs shortest-path routing with deterministic tie-breaking.
//
// The paper's simulation routes every request along the shortest path in
// hops, and "when there are equidistant paths between nodes i and j, one
// path is chosen for all requests from i to j" (Sec. 6.1). We reproduce
// that by breaking distance ties toward the lowest-numbered parent, which
// pins one canonical path per (source, destination) pair.
//
// The router path from host s to client gateway g doubles as the
// *preference path* of Sec. 2: the sequence of hosts co-located with the
// routers a response passes by.
//
// Storage is per-source parent trees (n rows of n parents) rather than
// materialized per-pair hop vectors: at 10k nodes the latter is ~10^8
// heap vectors and exceeds memory, while the trees encode exactly the
// same canonical paths in two dense POD arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"

namespace radar::net {

/// Metric used to choose shortest paths.
enum class RoutingMetric {
  kHops,   ///< unit link weight (the paper's model)
  kDelay,  ///< per-link propagation delay
};

/// Deterministic rank for equal-cost parent selection (SplitMix64-style
/// mix of source, destination-side node, and candidate parent). Shared by
/// the dense RoutingTable and the sparse gateway-pivot oracle so both pin
/// the same canonical path for any (source, destination) pair.
std::uint64_t RouteTieBreakRank(NodeId src, NodeId via, NodeId parent);

/// One canonical shortest-path tree rooted at a source node. `parent` is
/// kInvalidNode at the root; `cost` is the metric cost (hops or summed
/// delay); `hops` is the link count of the canonical path.
struct ShortestPathTree {
  std::vector<std::int64_t> cost;
  std::vector<NodeId> parent;
  std::vector<std::int32_t> hops;
};

/// Builds the canonical shortest-path tree rooted at `src`. When
/// `link_up` is non-null it masks `graph`'s links by link index (false =
/// down, edge ignored); the masked subgraph must still reach every node.
/// The tree (distances, parents, tie-breaks) is byte-identical to the one
/// a RoutingTable built over the equivalent filtered graph would produce,
/// which is what lets the sparse oracle epoch incrementally against the
/// master graph instead of re-indexing a live copy.
void BuildShortestPathTree(const Graph& graph, NodeId src, RoutingMetric metric,
                           const std::vector<char>* link_up,
                           ShortestPathTree* out);

class RoutingTable {
 public:
  /// Builds routes for every ordered pair. Requires a connected graph.
  explicit RoutingTable(const Graph& graph,
                        RoutingMetric metric = RoutingMetric::kHops);

  std::int32_t num_nodes() const { return num_nodes_; }

  // The pair accessors below run several times per simulated request, so
  // they are unchecked header inlines: node ids must be in [0, num_nodes)
  // (every caller derives them from the same graph this table indexed).

  /// Number of links on the canonical path from `from` to `to` (0 when
  /// from == to).
  std::int32_t HopDistance(NodeId from, NodeId to) const {
    return hop_distance_[PairIndex(from, to)];
  }

  /// Contiguous row of hop distances from `from` to every node (entry
  /// [to] == HopDistance(from, to)); backs DistanceOracle::DistanceRow.
  const std::int32_t* HopRow(NodeId from) const {
    return &hop_distance_[PairIndex(from, 0)];
  }

  /// Contiguous row of canonical-tree parents for source `from` (entry
  /// [to] == predecessor of `to` on the path from `from`; kInvalidNode at
  /// `from` itself). Lets consumers walk or DP over canonical paths
  /// without materializing them.
  const NodeId* ParentRow(NodeId from) const {
    return &parent_[PairIndex(from, 0)];
  }

  /// Total metric cost of the canonical path (hops or summed delay).
  std::int64_t Cost(NodeId from, NodeId to) const;

  /// The canonical path, inclusive of both endpoints; size = hops + 1.
  /// Reconstructed from the parent tree on each call — hot callers should
  /// use AppendPath with a reused scratch vector instead.
  std::vector<NodeId> Path(NodeId from, NodeId to) const;

  /// Appends the canonical path (inclusive of both endpoints) to `*out`
  /// without clearing it. Allocation-free once `out` has capacity.
  void AppendPath(NodeId from, NodeId to, std::vector<NodeId>* out) const;

  /// First router after `from` on the path to `to` (== to if adjacent,
  /// == from if from == to).
  NodeId NextHop(NodeId from, NodeId to) const;

  /// Mean hop distance from `from` to all other nodes.
  double MeanHopDistance(NodeId from) const;

  /// The node with the smallest mean hop distance to all others — the
  /// paper places the redirector there. Ties break toward the lower id.
  NodeId MostCentralNode() const;

  /// Nodes ranked by centrality (ascending mean hop distance); used to
  /// place hash-partitioned redirector groups.
  std::vector<NodeId> NodesByCentrality() const;

 private:
  std::size_t PairIndex(NodeId from, NodeId to) const {
    return static_cast<std::size_t>(from) *
               static_cast<std::size_t>(num_nodes_) +
           static_cast<std::size_t>(to);
  }

  /// Mean hop distance of every node, computed in one pass; shared by
  /// MostCentralNode and NodesByCentrality so neither recomputes per node.
  std::vector<double> AllMeanHopDistances() const;

  std::int32_t num_nodes_ = 0;
  RoutingMetric metric_ = RoutingMetric::kHops;
  std::vector<std::int32_t> hop_distance_;  // dense num_nodes^2
  std::vector<NodeId> parent_;              // dense num_nodes^2 (tree rows)
  std::vector<std::int64_t> cost_;          // dense num_nodes^2, kDelay only
};

}  // namespace radar::net
