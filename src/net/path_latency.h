// Precomputed per-pair path latencies.
//
// The request hot path needs two latencies per (a, b) node pair: the
// control latency (sum of per-link propagation delays along the canonical
// route — request/redirect messages carry negligible bytes) and the
// transfer latency of one fixed-size object (per link: propagation plus
// serialization at that link's bandwidth). Recomputing either means
// walking the path and scanning each hop's adjacency list — per request.
// Both are pure functions of (routing table, graph, object size), so this
// matrix computes them once at construction and serves O(1) lookups.
//
// Bit-exactness: the transfer matrix is computed with the same per-link
// arithmetic as the walk it replaces — each link's SerializationTime is
// truncated to integer microseconds *before* summing (a per-byte cost
// matrix multiplied at lookup time would round once per path instead of
// once per link and drift from the event-level golden). That is why the
// matrix is parameterized by the run's fixed object size rather than
// storing per-byte costs.
//
// Construction runs a dynamic program down each source's canonical
// shortest-path tree (child = parent + that link's terms), which visits
// every (source, node) pair once instead of re-walking every path — the
// per-link integer sums are associative, so the totals are bit-identical
// to the old per-pair walk.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "net/graph.h"
#include "net/latency_oracle.h"
#include "net/routing.h"

namespace radar::net {

class PathLatencyMatrix final : public LatencyOracle {
 public:
  /// Precomputes both n x n matrices for `object_bytes`-sized transfers.
  /// `routing` and `graph` must describe the same topology.
  PathLatencyMatrix(const RoutingTable& routing, const Graph& graph,
                    std::int64_t object_bytes);

  std::int32_t num_nodes() const override { return num_nodes_; }
  std::int64_t object_bytes() const { return object_bytes_; }

  /// Propagation-only latency along the canonical path a -> b.
  SimTime Control(NodeId a, NodeId b) const override {
    return control_[Index(a, b)];
  }

  /// Row a of the control matrix (row[b] == Control(a, b)): bounds-checks
  /// the source once for hot callers that resolve several legs. Never
  /// nullptr — the dense matrix has a row for every source.
  const SimTime* ControlRow(NodeId a) const override {
    RADAR_CHECK_GE(a, 0);
    RADAR_CHECK_LT(a, num_nodes_);
    return &control_[static_cast<std::size_t>(a) *
                     static_cast<std::size_t>(num_nodes_)];
  }

  /// Store-and-forward latency of one object along the path a -> b.
  SimTime Transfer(NodeId a, NodeId b) const override {
    return transfer_[Index(a, b)];
  }

  SimTime MinCrossPartitionControl(
      const std::vector<int>& partition) const override;

 private:
  std::size_t Index(NodeId a, NodeId b) const {
    RADAR_CHECK_GE(a, 0);
    RADAR_CHECK_LT(a, num_nodes_);
    RADAR_CHECK_GE(b, 0);
    RADAR_CHECK_LT(b, num_nodes_);
    return static_cast<std::size_t>(a) *
               static_cast<std::size_t>(num_nodes_) +
           static_cast<std::size_t>(b);
  }

  std::int32_t num_nodes_ = 0;
  std::int64_t object_bytes_ = 0;
  std::vector<SimTime> control_;   // dense num_nodes^2
  std::vector<SimTime> transfer_;  // dense num_nodes^2
};

}  // namespace radar::net
