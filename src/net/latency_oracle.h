// Abstract per-pair latency lookup.
//
// The request engine needs two latencies per (a, b) node pair — control
// (per-link propagation along the canonical route) and transfer (per link:
// propagation plus serialization of one fixed-size object, truncated to
// integer microseconds per link before summing). Two implementations
// exist: the dense PathLatencyMatrix (two n^2 arrays, exact for every
// ordered pair, rebuilt per fault epoch — right for paper-scale graphs)
// and the sparse GatewayPivotOracle (O(rows x n) gateway/home rows plus
// pivot labels for the long tail — right for 10k+ node graphs where n^2
// does not fit). Both honor the same truncate-then-sum arithmetic, so on
// the pairs they both answer exactly the results are bit-identical.
//
// ControlRow deliberately returns a nullable pointer: dense oracles have
// a row for every source, sparse oracles only for registered sources
// (gateways and redirector homes — exactly the sources the RADAR_HOT
// dispatch loop uses). Callers on cold paths use the scalar accessors,
// which every oracle answers for every pair.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "net/graph.h"

namespace radar::net {

/// Which latency/routing backend a run uses (driver config + CLI).
enum class OracleKind : std::uint8_t {
  kAuto,    ///< dense below kSparseAutoThreshold nodes, sparse at or above
  kDense,   ///< force the n^2 matrices (exact for every ordered pair)
  kSparse,  ///< force the gateway-pivot oracle
};

/// kAuto switches to the sparse backend at this node count: the dense
/// matrices are ~2 * n^2 * 8 bytes plus an O(n^2) rebuild per fault
/// epoch, which stops being the right trade well before 10k nodes.
inline constexpr std::int32_t kSparseAutoThreshold = 1024;

/// Resolves kAuto against a concrete node count.
OracleKind ResolveOracleKind(OracleKind kind, std::int32_t num_nodes);

class LatencyOracle {
 public:
  virtual ~LatencyOracle() = default;

  virtual std::int32_t num_nodes() const = 0;

  /// Propagation-only latency along the canonical path a -> b.
  virtual SimTime Control(NodeId a, NodeId b) const = 0;

  /// Store-and-forward latency of one object along the path a -> b.
  virtual SimTime Transfer(NodeId a, NodeId b) const = 0;

  /// Row a of the control matrix (row[b] == Control(a, b)), or nullptr
  /// when this oracle keeps no precomputed row for `a`.
  virtual const SimTime* ControlRow(NodeId a) const = 0;

  /// The minimum control latency over node pairs assigned to different
  /// partitions — the conservative lookahead of a shard-parallel run
  /// (sim/shard.h): a message between shards can never arrive sooner.
  /// `partition` maps each node to its partition id (size == num_nodes).
  /// Returns kNoCrossPartition when every node shares one partition.
  /// Sparse oracles may scan only pairs with a registered source; that
  /// stays conservative because every cross-shard message leg originates
  /// at a gateway or redirector home (see DESIGN.md §15).
  static constexpr SimTime kNoCrossPartition = -1;
  virtual SimTime MinCrossPartitionControl(
      const std::vector<int>& partition) const = 0;
};

}  // namespace radar::net
