#include "net/graph.h"

#include <algorithm>

#include "common/check.h"

namespace radar::net {

Graph::Graph(std::int32_t num_nodes) : num_nodes_(num_nodes) {
  RADAR_CHECK_GE(num_nodes, 0);
  adjacency_.resize(static_cast<std::size_t>(num_nodes));
}

std::int32_t Graph::AddLink(NodeId a, NodeId b, SimTime delay,
                            double bandwidth_bps) {
  RADAR_CHECK_GE(a, 0);
  RADAR_CHECK_LT(a, num_nodes_);
  RADAR_CHECK_GE(b, 0);
  RADAR_CHECK_LT(b, num_nodes_);
  RADAR_CHECK_NE(a, b);
  RADAR_CHECK_GE(delay, 0);
  RADAR_CHECK_GT(bandwidth_bps, 0.0);
  RADAR_CHECK_MSG(!HasLink(a, b), "duplicate link");
  const auto index = static_cast<std::int32_t>(links_.size());
  links_.push_back(Link{a, b, delay, bandwidth_bps});
  auto insert_sorted = [](std::vector<Edge>& edges, Edge e) {
    const auto pos = std::lower_bound(
        edges.begin(), edges.end(), e,
        [](const Edge& lhs, const Edge& rhs) { return lhs.to < rhs.to; });
    edges.insert(pos, e);
  };
  insert_sorted(adjacency_[static_cast<std::size_t>(a)],
                Edge{b, delay, bandwidth_bps, index});
  insert_sorted(adjacency_[static_cast<std::size_t>(b)],
                Edge{a, delay, bandwidth_bps, index});
  return index;
}

const std::vector<Edge>& Graph::Neighbors(NodeId n) const {
  RADAR_CHECK_GE(n, 0);
  RADAR_CHECK_LT(n, num_nodes_);
  return adjacency_[static_cast<std::size_t>(n)];
}

bool Graph::HasLink(NodeId a, NodeId b) const {
  if (a < 0 || a >= num_nodes_ || b < 0 || b >= num_nodes_) return false;
  const auto& edges = adjacency_[static_cast<std::size_t>(a)];
  return std::any_of(edges.begin(), edges.end(),
                     [b](const Edge& e) { return e.to == b; });
}

bool Graph::IsConnected() const {
  if (num_nodes_ == 0) return true;
  std::vector<bool> seen(static_cast<std::size_t>(num_nodes_), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::int32_t visited = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    ++visited;
    for (const Edge& e : Neighbors(n)) {
      if (!seen[static_cast<std::size_t>(e.to)]) {
        seen[static_cast<std::size_t>(e.to)] = true;
        stack.push_back(e.to);
      }
    }
  }
  return visited == num_nodes_;
}

}  // namespace radar::net
