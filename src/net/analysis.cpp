#include "net/analysis.h"

#include <algorithm>

#include "common/check.h"

namespace radar::net {

std::vector<FunnelReport> ComputeFunnels(const Topology& topology,
                                         const RoutingTable& routing) {
  const std::int32_t n = topology.num_nodes();
  RADAR_CHECK_EQ(routing.num_nodes(), n);
  std::vector<FunnelReport> reports;
  reports.reserve(static_cast<std::size_t>(n));
  std::vector<std::int32_t> transit_count(static_cast<std::size_t>(n));
  for (NodeId source = 0; source < n; ++source) {
    std::fill(transit_count.begin(), transit_count.end(), 0);
    for (NodeId dest = 0; dest < n; ++dest) {
      if (dest == source) continue;
      for (const NodeId via : routing.Path(source, dest)) {
        if (via != source) {
          ++transit_count[static_cast<std::size_t>(via)];
        }
      }
    }
    FunnelReport report;
    report.source = source;
    for (NodeId via = 0; via < n; ++via) {
      const double fraction =
          n > 1 ? static_cast<double>(
                      transit_count[static_cast<std::size_t>(via)]) /
                      static_cast<double>(n - 1)
                : 0.0;
      if (fraction > report.fraction) {
        report.fraction = fraction;
        report.funnel = via;
      }
    }
    reports.push_back(report);
  }
  return reports;
}

std::vector<FunnelReport> FunnelsAbove(const Topology& topology,
                                       const RoutingTable& routing,
                                       double threshold) {
  std::vector<FunnelReport> out;
  for (const FunnelReport& report : ComputeFunnels(topology, routing)) {
    if (report.fraction > threshold) out.push_back(report);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FunnelReport& a, const FunnelReport& b) {
                     return a.fraction > b.fraction;
                   });
  return out;
}

}  // namespace radar::net
