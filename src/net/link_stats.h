// Per-link byte accounting for the backbone-bandwidth metric.
//
// The paper's bandwidth-consumption metric sums, over every hop a message
// traverses, the bytes transmitted on that hop (Sec. 6.2). LinkStats keeps
// the aggregate byte-hops figure and per-directed-link totals for hot-link
// inspection. Storage is two counters per backbone link (one per
// direction) — an n^2 matrix would be ~800 MB per instance at 10k nodes,
// replicated once per shard. The (from, to) -> counter lookup runs once
// per hop of every serviced request, so it is a single-probe open-
// addressing hash built over the directed links at construction (~16
// bytes per directed link at 25% load factor); searching the adjacency
// list per hop was measurable in the request engine's profile.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "net/graph.h"

namespace radar::net {

class LinkStats {
 public:
  /// `graph` must outlive this instance; only its links are countable.
  explicit LinkStats(const Graph& graph);

  /// Records `bytes` transmitted on every hop of the given router path
  /// (path includes both endpoints; a path of size <= 1 transmits nothing).
  void RecordPath(const std::vector<NodeId>& path, std::int64_t bytes);

  /// Records `bytes` on the single directed hop from -> to, which must be
  /// a link of the graph.
  void RecordHop(NodeId from, NodeId to, std::int64_t bytes);

  /// Total bytes x hops accumulated so far.
  std::int64_t total_byte_hops() const { return total_byte_hops_; }

  /// Bytes sent on the directed hop from -> to (0 when not adjacent).
  std::int64_t BytesOnHop(NodeId from, NodeId to) const;

  /// The directed hop carrying the most bytes; returns {-1,-1} when idle.
  /// Ties break toward the lexicographically smallest (from, to), as the
  /// dense row-major scan this replaces did.
  std::pair<NodeId, NodeId> BusiestHop() const;

  /// Adds `other`'s per-hop totals into this instance (same graph).
  /// Integer accumulation commutes exactly, so per-shard instances merged
  /// at the end of a run match a serial run's totals bit for bit.
  void Merge(const LinkStats& other);

  void Reset();

 private:
  /// Index into per_dir_bytes_ for the directed hop from -> to, or -1
  /// when the nodes are not adjacent (any out-of-graph id simply misses).
  std::ptrdiff_t DirIndex(NodeId from, NodeId to) const;

  const Graph* graph_;
  std::int64_t total_byte_hops_ = 0;
  std::vector<std::int64_t> per_dir_bytes_;  // 2 entries per link: a->b, b->a

  // Open-addressing hash over directed hops: hop_keys_ holds the packed
  // (from << 32 | to) key (kEmptyHop when vacant), hop_values_ the
  // matching per_dir_bytes_ index. Power-of-two sized, never mutated
  // after construction, so lookups are wait-free from shard threads.
  static constexpr std::uint64_t kEmptyHop = ~std::uint64_t{0};
  std::vector<std::uint64_t> hop_keys_;
  std::vector<std::uint32_t> hop_values_;
  std::uint32_t hop_shift_ = 0;  // 64 - log2(table size)
};

}  // namespace radar::net
