// Per-link byte accounting for the backbone-bandwidth metric.
//
// The paper's bandwidth-consumption metric sums, over every hop a message
// traverses, the bytes transmitted on that hop (Sec. 6.2). LinkStats keeps
// the aggregate byte-hops figure and per-directed-link totals for hot-link
// inspection.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace radar::net {

class RoutingTable;

class LinkStats {
 public:
  explicit LinkStats(std::int32_t num_nodes);

  /// Records `bytes` transmitted on every hop of the given router path
  /// (path includes both endpoints; a path of size <= 1 transmits nothing).
  void RecordPath(const std::vector<NodeId>& path, std::int64_t bytes);

  /// Records `bytes` on the single directed hop from -> to.
  void RecordHop(NodeId from, NodeId to, std::int64_t bytes);

  /// Total bytes x hops accumulated so far.
  std::int64_t total_byte_hops() const { return total_byte_hops_; }

  /// Bytes sent on the directed hop from -> to.
  std::int64_t BytesOnHop(NodeId from, NodeId to) const;

  /// The directed hop carrying the most bytes; returns {-1,-1} when idle.
  std::pair<NodeId, NodeId> BusiestHop() const;

  /// Adds `other`'s per-hop totals into this instance (same num_nodes).
  /// Integer accumulation commutes exactly, so per-shard instances merged
  /// at the end of a run match a serial run's totals bit for bit.
  void Merge(const LinkStats& other);

  void Reset();

 private:
  std::size_t Index(NodeId from, NodeId to) const;

  std::int32_t num_nodes_;
  std::int64_t total_byte_hops_ = 0;
  std::vector<std::int64_t> per_hop_bytes_;  // dense num_nodes^2
};

}  // namespace radar::net
