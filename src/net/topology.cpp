#include "net/topology.h"

#include <utility>

#include "common/check.h"

namespace radar::net {

const char* RegionName(Region region) {
  switch (region) {
    case Region::kWesternNorthAmerica: return "Western North America";
    case Region::kEasternNorthAmerica: return "Eastern North America";
    case Region::kEurope: return "Europe";
    case Region::kPacificAustralia: return "Pacific and Australia";
  }
  return "?";
}

Topology::Topology(Graph graph, std::vector<NodeInfo> nodes)
    : graph_(std::move(graph)), nodes_(std::move(nodes)) {
  RADAR_CHECK_EQ(static_cast<std::size_t>(graph_.num_nodes()), nodes_.size());
}

const NodeInfo& Topology::node(NodeId id) const {
  RADAR_CHECK_GE(id, 0);
  RADAR_CHECK_LT(id, num_nodes());
  return nodes_[static_cast<std::size_t>(id)];
}

std::vector<NodeId> Topology::NodesInRegion(Region region) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (RegionOf(id) == region) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Topology::GatewayNodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (IsGateway(id)) out.push_back(id);
  }
  return out;
}

NodeId Topology::FindByName(const std::string& name) const {
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (node(id).name == name) return id;
  }
  return kInvalidNode;
}

NodeId TopologyBuilder::AddNode(std::string name, Region region,
                                bool is_gateway) {
  RADAR_CHECK_MSG(IdOf(name) == kInvalidNode, "duplicate node name");
  nodes_.push_back(NodeInfo{std::move(name), region, is_gateway});
  return static_cast<NodeId>(nodes_.size() - 1);
}

TopologyBuilder& TopologyBuilder::Link(NodeId a, NodeId b, SimTime delay,
                                       double bandwidth_bps) {
  RADAR_CHECK_GE(a, 0);
  RADAR_CHECK_LT(a, num_nodes());
  RADAR_CHECK_GE(b, 0);
  RADAR_CHECK_LT(b, num_nodes());
  links_.push_back(PendingLink{a, b, delay, bandwidth_bps});
  return *this;
}

TopologyBuilder& TopologyBuilder::Link(const std::string& a,
                                       const std::string& b, SimTime delay,
                                       double bandwidth_bps) {
  const NodeId na = IdOf(a);
  const NodeId nb = IdOf(b);
  RADAR_CHECK_MSG(na != kInvalidNode, a.c_str());
  RADAR_CHECK_MSG(nb != kInvalidNode, b.c_str());
  return Link(na, nb, delay, bandwidth_bps);
}

NodeId TopologyBuilder::IdOf(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return kInvalidNode;
}

bool TopologyBuilder::HasLink(NodeId a, NodeId b) const {
  for (const PendingLink& l : links_) {
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return true;
  }
  return false;
}

bool TopologyBuilder::IsConnected() const {
  Graph graph(num_nodes());
  for (const PendingLink& l : links_) {
    graph.AddLink(l.a, l.b, l.delay, l.bandwidth_bps);
  }
  return graph.IsConnected();
}

Topology TopologyBuilder::Build() && {
  Graph graph(num_nodes());
  for (const PendingLink& l : links_) {
    graph.AddLink(l.a, l.b, l.delay, l.bandwidth_bps);
  }
  RADAR_CHECK_MSG(graph.IsConnected(), "topology must be connected");
  return Topology(std::move(graph), std::move(nodes_));
}

}  // namespace radar::net
