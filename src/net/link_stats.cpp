#include "net/link_stats.h"

#include <algorithm>

#include "common/check.h"

namespace radar::net {

LinkStats::LinkStats(std::int32_t num_nodes) : num_nodes_(num_nodes) {
  RADAR_CHECK_GT(num_nodes, 0);
  per_hop_bytes_.assign(
      static_cast<std::size_t>(num_nodes) * static_cast<std::size_t>(num_nodes),
      0);
}

std::size_t LinkStats::Index(NodeId from, NodeId to) const {
  RADAR_CHECK_GE(from, 0);
  RADAR_CHECK_LT(from, num_nodes_);
  RADAR_CHECK_GE(to, 0);
  RADAR_CHECK_LT(to, num_nodes_);
  return static_cast<std::size_t>(from) * static_cast<std::size_t>(num_nodes_) +
         static_cast<std::size_t>(to);
}

void LinkStats::RecordPath(const std::vector<NodeId>& path, std::int64_t bytes) {
  RADAR_CHECK_GE(bytes, 0);
  for (std::size_t i = 1; i < path.size(); ++i) {
    RecordHop(path[i - 1], path[i], bytes);
  }
}

void LinkStats::RecordHop(NodeId from, NodeId to, std::int64_t bytes) {
  per_hop_bytes_[Index(from, to)] += bytes;
  total_byte_hops_ += bytes;
}

std::int64_t LinkStats::BytesOnHop(NodeId from, NodeId to) const {
  return per_hop_bytes_[Index(from, to)];
}

std::pair<NodeId, NodeId> LinkStats::BusiestHop() const {
  std::pair<NodeId, NodeId> best{kInvalidNode, kInvalidNode};
  std::int64_t best_bytes = 0;
  for (NodeId from = 0; from < num_nodes_; ++from) {
    for (NodeId to = 0; to < num_nodes_; ++to) {
      const std::int64_t bytes = per_hop_bytes_[Index(from, to)];
      if (bytes > best_bytes) {
        best_bytes = bytes;
        best = {from, to};
      }
    }
  }
  return best;
}

void LinkStats::Merge(const LinkStats& other) {
  RADAR_CHECK_EQ(num_nodes_, other.num_nodes_);
  for (std::size_t i = 0; i < per_hop_bytes_.size(); ++i) {
    per_hop_bytes_[i] += other.per_hop_bytes_[i];
  }
  total_byte_hops_ += other.total_byte_hops_;
}

void LinkStats::Reset() {
  total_byte_hops_ = 0;
  std::fill(per_hop_bytes_.begin(), per_hop_bytes_.end(), 0);
}

}  // namespace radar::net
