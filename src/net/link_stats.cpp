#include "net/link_stats.h"

#include <algorithm>

#include "common/check.h"

namespace radar::net {

namespace {

inline std::uint64_t PackHop(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
          << 32) |
         static_cast<std::uint32_t>(to);
}

/// Fibonacci hashing: node ids are valid in the high and low halves, so
/// a multiplicative mix spreads both into the table's top bits.
inline std::uint64_t MixHop(std::uint64_t key) {
  return key * 0x9E3779B97F4A7C15ull;
}

}  // namespace

LinkStats::LinkStats(const Graph& graph) : graph_(&graph) {
  RADAR_CHECK_GT(graph.num_nodes(), 0);
  per_dir_bytes_.assign(2 * graph.num_links(), 0);
  // Size the hop hash at <= 25% occupancy (power of two): misses stay
  // cheap and lookups almost never probe more than one slot.
  std::size_t table = 16;
  while (table < 8 * graph.num_links()) table *= 2;
  hop_keys_.assign(table, kEmptyHop);
  hop_values_.assign(table, 0);
  hop_shift_ = 64;
  for (std::size_t t = table; t > 1; t /= 2) --hop_shift_;
  const std::size_t mask = table - 1;
  const auto num_links = static_cast<std::int32_t>(graph.num_links());
  for (std::int32_t i = 0; i < num_links; ++i) {
    const Link& link = graph.link(i);
    const auto forward = static_cast<std::uint32_t>(2 * i);
    for (int dir = 0; dir < 2; ++dir) {
      const std::uint64_t key = dir == 0 ? PackHop(link.a, link.b)
                                         : PackHop(link.b, link.a);
      std::size_t slot = MixHop(key) >> hop_shift_;
      while (hop_keys_[slot] != kEmptyHop) slot = (slot + 1) & mask;
      hop_keys_[slot] = key;
      hop_values_[slot] = forward + static_cast<std::uint32_t>(dir);
    }
  }
}

std::ptrdiff_t LinkStats::DirIndex(NodeId from, NodeId to) const {
  const std::uint64_t key = PackHop(from, to);
  const std::size_t mask = hop_keys_.size() - 1;
  std::size_t slot = MixHop(key) >> hop_shift_;
  while (hop_keys_[slot] != key) {
    if (hop_keys_[slot] == kEmptyHop) return -1;
    slot = (slot + 1) & mask;
  }
  return hop_values_[slot];
}

void LinkStats::RecordPath(const std::vector<NodeId>& path, std::int64_t bytes) {
  RADAR_CHECK_GE(bytes, 0);
  for (std::size_t i = 1; i < path.size(); ++i) {
    RecordHop(path[i - 1], path[i], bytes);
  }
}

void LinkStats::RecordHop(NodeId from, NodeId to, std::int64_t bytes) {
  const std::ptrdiff_t idx = DirIndex(from, to);
  RADAR_CHECK_GE(idx, 0);
  per_dir_bytes_[static_cast<std::size_t>(idx)] += bytes;
  total_byte_hops_ += bytes;
}

std::int64_t LinkStats::BytesOnHop(NodeId from, NodeId to) const {
  const std::ptrdiff_t idx = DirIndex(from, to);
  return idx < 0 ? 0 : per_dir_bytes_[static_cast<std::size_t>(idx)];
}

std::pair<NodeId, NodeId> LinkStats::BusiestHop() const {
  std::pair<NodeId, NodeId> best{kInvalidNode, kInvalidNode};
  std::int64_t best_bytes = 0;
  // Scan in ascending (from, to) order so strictly-greater keeps the
  // lexicographically smallest busiest hop, like the dense scan did.
  for (NodeId from = 0; from < graph_->num_nodes(); ++from) {
    for (const Edge& e : graph_->Neighbors(from)) {
      const Link& link = graph_->link(e.link_index);
      const std::size_t idx = 2 * static_cast<std::size_t>(e.link_index) +
                              (from == link.a ? 0 : 1);
      const std::int64_t bytes = per_dir_bytes_[idx];
      if (bytes > best_bytes) {
        best_bytes = bytes;
        best = {from, e.to};
      }
    }
  }
  return best;
}

void LinkStats::Merge(const LinkStats& other) {
  RADAR_CHECK_EQ(graph_->num_nodes(), other.graph_->num_nodes());
  RADAR_CHECK_EQ(per_dir_bytes_.size(), other.per_dir_bytes_.size());
  for (std::size_t i = 0; i < per_dir_bytes_.size(); ++i) {
    per_dir_bytes_[i] += other.per_dir_bytes_[i];
  }
  total_byte_hops_ += other.total_byte_hops_;
}

void LinkStats::Reset() {
  total_byte_hops_ = 0;
  std::fill(per_dir_bytes_.begin(), per_dir_bytes_.end(), 0);
}

}  // namespace radar::net
