#include "net/net_model.h"

namespace radar::net {

OracleKind ResolveOracleKind(OracleKind kind, std::int32_t num_nodes) {
  if (kind != OracleKind::kAuto) return kind;
  return num_nodes >= kSparseAutoThreshold ? OracleKind::kSparse
                                           : OracleKind::kDense;
}

NetModel::NetModel(const Topology& topology, std::int64_t object_bytes,
                   OracleKind kind)
    : topology_(&topology),
      num_nodes_(topology.num_nodes()),
      object_bytes_(object_bytes) {
  switch (ResolveOracleKind(kind, num_nodes_)) {
    case OracleKind::kDense:
      routing_.emplace(topology.graph());
      matrix_.emplace(*routing_, topology.graph(), object_bytes_);
      break;
    case OracleKind::kSparse:
      sparse_ = std::make_unique<GatewayPivotOracle>(
          topology.graph(), topology.GatewayNodes(), object_bytes_);
      break;
    case OracleKind::kAuto:
      RADAR_CHECK(false);  // resolved above
      break;
  }
}

void NetModel::RebuildDense(const Graph& live) {
  RADAR_CHECK_MSG(!sparse(), "RebuildDense(): dense backend only");
  routing_.emplace(live);
  matrix_.emplace(*routing_, live, object_bytes_);
}

void NetModel::OnLinkChange(std::int32_t link_index, bool up) {
  RADAR_CHECK_MSG(sparse(), "OnLinkChange(): sparse backend only");
  sparse_->OnLinkChange(link_index, up);
}

}  // namespace radar::net
