#include "net/routing.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"

namespace radar::net {
namespace {

struct QueueEntry {
  std::int64_t cost;
  NodeId node;
  bool operator>(const QueueEntry& other) const {
    // Lower cost first; ties toward the lower node id so settlement order,
    // and therefore parent choice, is deterministic.
    if (cost != other.cost) return cost > other.cost;
    return node > other.node;
  }
};

/// Deterministic rank for equal-cost parent selection (SplitMix64-style
/// mix of source, destination-side node, and candidate parent).
std::uint64_t TieBreakRank(NodeId src, NodeId via, NodeId parent) {
  std::uint64_t z = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 42) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(via)) << 21) ^
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(parent));
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

RoutingTable::RoutingTable(const Graph& graph, RoutingMetric metric)
    : num_nodes_(graph.num_nodes()) {
  RADAR_CHECK_GT(num_nodes_, 0);
  RADAR_CHECK_MSG(graph.IsConnected(), "routing requires a connected graph");
  const auto n = static_cast<std::size_t>(num_nodes_);
  hop_distance_.assign(n * n, 0);
  cost_.assign(n * n, 0);
  paths_.resize(n * n);

  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> dist(n);
  std::vector<NodeId> parent(n);

  for (NodeId src = 0; src < num_nodes_; ++src) {
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(parent.begin(), parent.end(), kInvalidNode);
    dist[static_cast<std::size_t>(src)] = 0;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        queue;
    queue.push({0, src});
    while (!queue.empty()) {
      const auto [cost, node] = queue.top();
      queue.pop();
      if (cost > dist[static_cast<std::size_t>(node)]) continue;
      for (const Edge& e : graph.Neighbors(node)) {
        const std::int64_t weight =
            metric == RoutingMetric::kHops ? 1 : static_cast<std::int64_t>(e.delay);
        const std::int64_t candidate = cost + weight;
        auto& d = dist[static_cast<std::size_t>(e.to)];
        auto& p = parent[static_cast<std::size_t>(e.to)];
        // Equal-cost ties break on a deterministic hash of (source,
        // settled node, parent) rather than the lowest parent id: the
        // paper only requires that "one path is chosen for all requests
        // from i to j", and hashing spreads different destinations over
        // the equal-cost alternatives the way real backbones load-share,
        // instead of collapsing all multipath onto one canonical hub.
        if (candidate < d ||
            (candidate == d &&
             TieBreakRank(src, e.to, node) <
                 TieBreakRank(src, e.to, p))) {
          d = candidate;
          p = node;
          queue.push({candidate, e.to});
        }
      }
    }

    for (NodeId dst = 0; dst < num_nodes_; ++dst) {
      const auto idx = PairIndex(src, dst);
      cost_[idx] = dist[static_cast<std::size_t>(dst)];
      auto& path = paths_[idx];
      // Reconstruct by walking parents from dst back to src.
      path.clear();
      for (NodeId at = dst; at != kInvalidNode; at = (at == src) ? kInvalidNode
                                                  : parent[static_cast<std::size_t>(at)]) {
        path.push_back(at);
      }
      std::reverse(path.begin(), path.end());
      RADAR_CHECK_EQ(path.front(), src);
      RADAR_CHECK_EQ(path.back(), dst);
      hop_distance_[idx] = static_cast<std::int32_t>(path.size()) - 1;
    }
  }
}

std::size_t RoutingTable::PairIndex(NodeId from, NodeId to) const {
  RADAR_CHECK_GE(from, 0);
  RADAR_CHECK_LT(from, num_nodes_);
  RADAR_CHECK_GE(to, 0);
  RADAR_CHECK_LT(to, num_nodes_);
  return static_cast<std::size_t>(from) * static_cast<std::size_t>(num_nodes_) +
         static_cast<std::size_t>(to);
}

std::int32_t RoutingTable::HopDistance(NodeId from, NodeId to) const {
  return hop_distance_[PairIndex(from, to)];
}

const std::int32_t* RoutingTable::HopRow(NodeId from) const {
  return &hop_distance_[PairIndex(from, 0)];
}

std::int64_t RoutingTable::Cost(NodeId from, NodeId to) const {
  return cost_[PairIndex(from, to)];
}

const std::vector<NodeId>& RoutingTable::Path(NodeId from, NodeId to) const {
  return paths_[PairIndex(from, to)];
}

NodeId RoutingTable::NextHop(NodeId from, NodeId to) const {
  const auto& path = Path(from, to);
  return path.size() > 1 ? path[1] : from;
}

double RoutingTable::MeanHopDistance(NodeId from) const {
  if (num_nodes_ <= 1) return 0.0;
  std::int64_t total = 0;
  for (NodeId to = 0; to < num_nodes_; ++to) total += HopDistance(from, to);
  return static_cast<double>(total) / static_cast<double>(num_nodes_ - 1);
}

std::vector<double> RoutingTable::AllMeanHopDistances() const {
  std::vector<double> mean(static_cast<std::size_t>(num_nodes_));
  for (NodeId n = 0; n < num_nodes_; ++n) {
    mean[static_cast<std::size_t>(n)] = MeanHopDistance(n);
  }
  return mean;
}

NodeId RoutingTable::MostCentralNode() const {
  const std::vector<double> mean = AllMeanHopDistances();
  NodeId best = 0;
  for (NodeId n = 1; n < num_nodes_; ++n) {
    if (mean[static_cast<std::size_t>(n)] <
        mean[static_cast<std::size_t>(best)]) {
      best = n;
    }
  }
  return best;
}

std::vector<NodeId> RoutingTable::NodesByCentrality() const {
  std::vector<NodeId> nodes(static_cast<std::size_t>(num_nodes_));
  for (NodeId n = 0; n < num_nodes_; ++n) nodes[static_cast<std::size_t>(n)] = n;
  const std::vector<double> mean = AllMeanHopDistances();
  std::stable_sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    const double ma = mean[static_cast<std::size_t>(a)];
    const double mb = mean[static_cast<std::size_t>(b)];
    if (ma != mb) return ma < mb;
    return a < b;
  });
  return nodes;
}

}  // namespace radar::net
