#include "net/routing.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"

namespace radar::net {
namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

struct QueueEntry {
  std::int64_t cost;
  NodeId node;
  bool operator>(const QueueEntry& other) const {
    // Lower cost first; ties toward the lower node id so settlement order,
    // and therefore parent choice, is deterministic.
    if (cost != other.cost) return cost > other.cost;
    return node > other.node;
  }
};

bool LinkIsUp(const std::vector<char>* link_up, std::int32_t link_index) {
  return link_up == nullptr ||
         (*link_up)[static_cast<std::size_t>(link_index)] != 0;
}

/// Unit-weight specialization: plain BFS for distances, then one pass per
/// node picking the canonical parent. In Dijkstra with unit weights the
/// candidate predecessors of v are exactly its neighbors one layer closer
/// to the source, offered in settlement order (ascending node id within a
/// layer, which is the adjacency order since neighbor lists are sorted);
/// the first offer assigns unconditionally and later equal-cost offers
/// win only on strictly smaller tie-break rank. Reproducing that argmin
/// directly yields byte-identical trees at O(n + m) per source instead of
/// O(m log n).
void BuildHopTree(const Graph& graph, NodeId src,
                  const std::vector<char>* link_up, ShortestPathTree* out) {
  const auto n = static_cast<std::size_t>(graph.num_nodes());
  out->hops.assign(n, -1);
  std::vector<std::int32_t>& hops = out->hops;
  std::vector<NodeId>& queue = out->parent;  // reused as BFS queue storage
  queue.clear();
  queue.push_back(src);
  hops[static_cast<std::size_t>(src)] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId node = queue[head];
    const std::int32_t next = hops[static_cast<std::size_t>(node)] + 1;
    for (const Edge& e : graph.Neighbors(node)) {
      if (!LinkIsUp(link_up, e.link_index)) continue;
      auto& h = hops[static_cast<std::size_t>(e.to)];
      if (h < 0) {
        h = next;
        queue.push_back(e.to);
      }
    }
  }

  out->parent.assign(n, kInvalidNode);
  out->cost.assign(n, kInf);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const std::int32_t hv = hops[static_cast<std::size_t>(v)];
    if (hv < 0) continue;  // unreachable under the mask; caller checks
    out->cost[static_cast<std::size_t>(v)] = hv;
    if (v == src) continue;
    NodeId best = kInvalidNode;
    std::uint64_t best_rank = 0;
    for (const Edge& e : graph.Neighbors(v)) {
      if (!LinkIsUp(link_up, e.link_index)) continue;
      if (hops[static_cast<std::size_t>(e.to)] != hv - 1) continue;
      const std::uint64_t rank = RouteTieBreakRank(src, v, e.to);
      if (best == kInvalidNode || rank < best_rank) {
        best = e.to;
        best_rank = rank;
      }
    }
    RADAR_CHECK(best != kInvalidNode);
    out->parent[static_cast<std::size_t>(v)] = best;
  }
}

void BuildDelayTree(const Graph& graph, NodeId src,
                    const std::vector<char>* link_up, ShortestPathTree* out) {
  const auto n = static_cast<std::size_t>(graph.num_nodes());
  out->cost.assign(n, kInf);
  out->parent.assign(n, kInvalidNode);
  out->hops.assign(n, -1);
  std::vector<std::int64_t>& dist = out->cost;
  std::vector<NodeId>& parent = out->parent;
  dist[static_cast<std::size_t>(src)] = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  queue.push({0, src});
  while (!queue.empty()) {
    const auto [cost, node] = queue.top();
    queue.pop();
    if (cost > dist[static_cast<std::size_t>(node)]) continue;
    for (const Edge& e : graph.Neighbors(node)) {
      if (!LinkIsUp(link_up, e.link_index)) continue;
      const std::int64_t candidate = cost + static_cast<std::int64_t>(e.delay);
      auto& d = dist[static_cast<std::size_t>(e.to)];
      auto& p = parent[static_cast<std::size_t>(e.to)];
      // Equal-cost ties break on a deterministic hash of (source,
      // settled node, parent) rather than the lowest parent id: the
      // paper only requires that "one path is chosen for all requests
      // from i to j", and hashing spreads different destinations over
      // the equal-cost alternatives the way real backbones load-share,
      // instead of collapsing all multipath onto one canonical hub.
      if (candidate < d ||
          (candidate == d && RouteTieBreakRank(src, e.to, node) <
                                 RouteTieBreakRank(src, e.to, p))) {
        d = candidate;
        p = node;
        queue.push({candidate, e.to});
      }
    }
  }

  // Hop counts by walking each node's parent chain with memoization on
  // the hops array itself (parents may settle in any cost order when
  // zero-delay links exist, so a sorted DP is not safe here).
  out->hops[static_cast<std::size_t>(src)] = 0;
  std::vector<NodeId> chain;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (dist[static_cast<std::size_t>(v)] == kInf) continue;
    chain.clear();
    NodeId at = v;
    while (out->hops[static_cast<std::size_t>(at)] < 0) {
      chain.push_back(at);
      at = parent[static_cast<std::size_t>(at)];
      RADAR_CHECK(at != kInvalidNode);
    }
    std::int32_t h = out->hops[static_cast<std::size_t>(at)];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      out->hops[static_cast<std::size_t>(*it)] = ++h;
    }
  }
}

}  // namespace

std::uint64_t RouteTieBreakRank(NodeId src, NodeId via, NodeId parent) {
  std::uint64_t z = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 42) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(via)) << 21) ^
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(parent));
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void BuildShortestPathTree(const Graph& graph, NodeId src, RoutingMetric metric,
                           const std::vector<char>* link_up,
                           ShortestPathTree* out) {
  RADAR_CHECK_GE(src, 0);
  RADAR_CHECK_LT(src, graph.num_nodes());
  if (link_up != nullptr) {
    RADAR_CHECK_EQ(link_up->size(), graph.num_links());
  }
  if (metric == RoutingMetric::kHops) {
    BuildHopTree(graph, src, link_up, out);
  } else {
    BuildDelayTree(graph, src, link_up, out);
  }
}

RoutingTable::RoutingTable(const Graph& graph, RoutingMetric metric)
    : num_nodes_(graph.num_nodes()), metric_(metric) {
  RADAR_CHECK_GT(num_nodes_, 0);
  RADAR_CHECK_MSG(graph.IsConnected(), "routing requires a connected graph");
  const auto n = static_cast<std::size_t>(num_nodes_);
  hop_distance_.resize(n * n);
  parent_.resize(n * n);
  if (metric_ == RoutingMetric::kDelay) cost_.resize(n * n);

  ShortestPathTree tree;
  for (NodeId src = 0; src < num_nodes_; ++src) {
    BuildShortestPathTree(graph, src, metric_, nullptr, &tree);
    const std::size_t base = static_cast<std::size_t>(src) * n;
    for (std::size_t v = 0; v < n; ++v) {
      RADAR_CHECK_GE(tree.hops[v], 0);
      hop_distance_[base + v] = tree.hops[v];
      parent_[base + v] = tree.parent[v];
      if (metric_ == RoutingMetric::kDelay) cost_[base + v] = tree.cost[v];
    }
  }
}

std::int64_t RoutingTable::Cost(NodeId from, NodeId to) const {
  if (metric_ == RoutingMetric::kHops) return HopDistance(from, to);
  return cost_[PairIndex(from, to)];
}

std::vector<NodeId> RoutingTable::Path(NodeId from, NodeId to) const {
  std::vector<NodeId> path;
  path.reserve(static_cast<std::size_t>(HopDistance(from, to)) + 1);
  AppendPath(from, to, &path);
  return path;
}

void RoutingTable::AppendPath(NodeId from, NodeId to,
                              std::vector<NodeId>* out) const {
  const NodeId* parent = ParentRow(from);
  const auto start = static_cast<std::ptrdiff_t>(out->size());
  for (NodeId at = to;;) {
    out->push_back(at);
    if (at == from) break;
    at = parent[static_cast<std::size_t>(at)];
    RADAR_CHECK(at != kInvalidNode);
  }
  std::reverse(out->begin() + start, out->end());
}

NodeId RoutingTable::NextHop(NodeId from, NodeId to) const {
  if (from == to) return from;
  const NodeId* parent = ParentRow(from);
  (void)PairIndex(from, to);
  NodeId at = to;
  while (parent[static_cast<std::size_t>(at)] != from) {
    at = parent[static_cast<std::size_t>(at)];
    RADAR_CHECK(at != kInvalidNode);
  }
  return at;
}

double RoutingTable::MeanHopDistance(NodeId from) const {
  if (num_nodes_ <= 1) return 0.0;
  std::int64_t total = 0;
  for (NodeId to = 0; to < num_nodes_; ++to) total += HopDistance(from, to);
  return static_cast<double>(total) / static_cast<double>(num_nodes_ - 1);
}

std::vector<double> RoutingTable::AllMeanHopDistances() const {
  std::vector<double> mean(static_cast<std::size_t>(num_nodes_));
  for (NodeId n = 0; n < num_nodes_; ++n) {
    mean[static_cast<std::size_t>(n)] = MeanHopDistance(n);
  }
  return mean;
}

NodeId RoutingTable::MostCentralNode() const {
  const std::vector<double> mean = AllMeanHopDistances();
  NodeId best = 0;
  for (NodeId n = 1; n < num_nodes_; ++n) {
    if (mean[static_cast<std::size_t>(n)] <
        mean[static_cast<std::size_t>(best)]) {
      best = n;
    }
  }
  return best;
}

std::vector<NodeId> RoutingTable::NodesByCentrality() const {
  std::vector<NodeId> nodes(static_cast<std::size_t>(num_nodes_));
  for (NodeId n = 0; n < num_nodes_; ++n) nodes[static_cast<std::size_t>(n)] = n;
  const std::vector<double> mean = AllMeanHopDistances();
  std::stable_sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    const double ma = mean[static_cast<std::size_t>(a)];
    const double mb = mean[static_cast<std::size_t>(b)];
    if (ma != mb) return ma < mb;
    return a < b;
  });
  return nodes;
}

}  // namespace radar::net
