// Topology analysis helpers for protocol health.
//
// The placement protocol's migration rule (MIGR_RATIO = 0.6) interacts
// with the backbone's path structure: if a single neighbour transits more
// than that fraction of a node's shortest paths under spread-out demand,
// every globally popular object hosted there keeps migrating toward that
// neighbour. These helpers quantify the effect so topology authors can
// check their backbone before running the protocol on it (see DESIGN.md).
#pragma once

#include <vector>

#include "net/routing.h"
#include "net/topology.h"

namespace radar::net {

/// For one source node: the largest fraction of destinations whose
/// canonical path transits a single other node, and that node.
struct FunnelReport {
  NodeId source = kInvalidNode;
  NodeId funnel = kInvalidNode;  ///< the dominating transit node
  double fraction = 0.0;         ///< fraction of destinations through it
};

/// Computes the per-source transit funnel under uniform demand (every
/// other node an equally likely destination). Sorted by source id.
std::vector<FunnelReport> ComputeFunnels(const Topology& topology,
                                         const RoutingTable& routing);

/// Sources whose funnel fraction exceeds `threshold` (e.g. the protocol's
/// MIGR_RATIO), sorted by descending fraction.
std::vector<FunnelReport> FunnelsAbove(const Topology& topology,
                                       const RoutingTable& routing,
                                       double threshold);

}  // namespace radar::net
