// Undirected weighted graph of backbone routers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace radar::net {

/// One bidirectional backbone link.
struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  SimTime delay = 0;            ///< one-way propagation delay per traversal
  double bandwidth_bps = 0.0;   ///< bytes per second in each direction
};

/// Adjacency entry as seen from one endpoint.
struct Edge {
  NodeId to = kInvalidNode;
  SimTime delay = 0;
  double bandwidth_bps = 0.0;
  std::int32_t link_index = -1;  ///< index into Graph::links()
};

/// An undirected graph with per-link delay and bandwidth. Node ids are the
/// dense range [0, num_nodes).
class Graph {
 public:
  explicit Graph(std::int32_t num_nodes = 0);

  /// Adds a bidirectional link; returns its index. Endpoints must be
  /// distinct, valid nodes, and the link must not duplicate an existing one.
  std::int32_t AddLink(NodeId a, NodeId b, SimTime delay, double bandwidth_bps);

  std::int32_t num_nodes() const { return num_nodes_; }
  std::size_t num_links() const { return links_.size(); }
  const std::vector<Link>& links() const { return links_; }
  const Link& link(std::int32_t index) const { return links_[static_cast<std::size_t>(index)]; }

  /// Neighbors of a node, sorted by neighbor id (stable order matters for
  /// deterministic routing tie-breaks).
  const std::vector<Edge>& Neighbors(NodeId n) const;

  bool HasLink(NodeId a, NodeId b) const;

  /// True when every node can reach every other node.
  bool IsConnected() const;

 private:
  std::int32_t num_nodes_ = 0;
  std::vector<Link> links_;
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace radar::net
