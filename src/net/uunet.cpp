#include "net/uunet.h"

#include "common/check.h"

namespace radar::net {

Topology MakeUunetBackbone(const BackboneParams& params) {
  TopologyBuilder b;
  const SimTime d = params.link_delay;
  const double bw = params.bandwidth_bps;

  // ---- Western North America (13 nodes) ----
  b.AddNode("Seattle", Region::kWesternNorthAmerica);
  b.AddNode("Portland", Region::kWesternNorthAmerica);
  b.AddNode("Sacramento", Region::kWesternNorthAmerica);
  b.AddNode("SanFrancisco", Region::kWesternNorthAmerica);
  b.AddNode("SanJose", Region::kWesternNorthAmerica);
  b.AddNode("LosAngeles", Region::kWesternNorthAmerica);
  b.AddNode("SanDiego", Region::kWesternNorthAmerica);
  b.AddNode("LasVegas", Region::kWesternNorthAmerica);
  b.AddNode("Phoenix", Region::kWesternNorthAmerica);
  b.AddNode("SaltLakeCity", Region::kWesternNorthAmerica);
  b.AddNode("Denver", Region::kWesternNorthAmerica);
  b.AddNode("Albuquerque", Region::kWesternNorthAmerica);
  b.AddNode("Vancouver", Region::kWesternNorthAmerica);

  // ---- Eastern North America (20 nodes) ----
  b.AddNode("Chicago", Region::kEasternNorthAmerica);
  b.AddNode("Minneapolis", Region::kEasternNorthAmerica);
  b.AddNode("Detroit", Region::kEasternNorthAmerica);
  b.AddNode("Cleveland", Region::kEasternNorthAmerica);
  b.AddNode("Columbus", Region::kEasternNorthAmerica);
  b.AddNode("Pittsburgh", Region::kEasternNorthAmerica);
  b.AddNode("Toronto", Region::kEasternNorthAmerica);
  b.AddNode("Boston", Region::kEasternNorthAmerica);
  b.AddNode("NewYork", Region::kEasternNorthAmerica);
  b.AddNode("Newark", Region::kEasternNorthAmerica);
  b.AddNode("Philadelphia", Region::kEasternNorthAmerica);
  b.AddNode("Washington", Region::kEasternNorthAmerica);
  b.AddNode("Charlotte", Region::kEasternNorthAmerica);
  b.AddNode("Atlanta", Region::kEasternNorthAmerica);
  b.AddNode("Orlando", Region::kEasternNorthAmerica);
  b.AddNode("Miami", Region::kEasternNorthAmerica);
  b.AddNode("StLouis", Region::kEasternNorthAmerica);
  b.AddNode("KansasCity", Region::kEasternNorthAmerica);
  b.AddNode("Dallas", Region::kEasternNorthAmerica);
  b.AddNode("Houston", Region::kEasternNorthAmerica);

  // ---- Europe (12 nodes) ----
  b.AddNode("London", Region::kEurope);
  b.AddNode("Dublin", Region::kEurope);
  b.AddNode("Amsterdam", Region::kEurope);
  b.AddNode("Brussels", Region::kEurope);
  b.AddNode("Paris", Region::kEurope);
  b.AddNode("Frankfurt", Region::kEurope);
  b.AddNode("Zurich", Region::kEurope);
  b.AddNode("Milan", Region::kEurope);
  b.AddNode("Madrid", Region::kEurope);
  b.AddNode("Vienna", Region::kEurope);
  b.AddNode("Copenhagen", Region::kEurope);
  b.AddNode("Stockholm", Region::kEurope);

  // ---- Pacific Rim and Australia (8 nodes) ----
  b.AddNode("Tokyo", Region::kPacificAustralia);
  b.AddNode("Osaka", Region::kPacificAustralia);
  b.AddNode("Seoul", Region::kPacificAustralia);
  b.AddNode("Taipei", Region::kPacificAustralia);
  b.AddNode("HongKong", Region::kPacificAustralia);
  b.AddNode("Singapore", Region::kPacificAustralia);
  b.AddNode("Sydney", Region::kPacificAustralia);
  b.AddNode("Melbourne", Region::kPacificAustralia);

  RADAR_CHECK_EQ(b.num_nodes(), kUunetNodeCount);

  // The 1998 UUNET backbone was a densely redundant partial mesh: every
  // POP had several geographically diverse uplinks. Density matters for
  // protocol fidelity, not just realism: MIGR_RATIO = 0.6 was chosen for
  // that backbone, where no single transit neighbor carries most of a
  // node's shortest paths. A sparse spur-and-chain graph would funnel
  // >60% of every peripheral node's traffic through one neighbor and
  // make every object migrate perpetually. The link set below keeps the
  // maximum per-neighbor transit fraction under uniform demand below the
  // migration threshold for the large majority of nodes (verified by
  // UunetTest.FunnelFractionsMostlyBelowMigrationRatio).

  // West coast mesh.
  b.Link("Vancouver", "Seattle", d, bw);
  b.Link("Vancouver", "Portland", d, bw);
  b.Link("Seattle", "Portland", d, bw);
  b.Link("Portland", "Sacramento", d, bw);
  b.Link("Portland", "SaltLakeCity", d, bw);
  b.Link("Sacramento", "SanFrancisco", d, bw);
  b.Link("Sacramento", "SaltLakeCity", d, bw);
  b.Link("SanFrancisco", "SanJose", d, bw);
  b.Link("SanJose", "LosAngeles", d, bw);
  b.Link("SanJose", "Phoenix", d, bw);
  b.Link("LosAngeles", "SanDiego", d, bw);
  b.Link("SanDiego", "Phoenix", d, bw);
  b.Link("SanDiego", "Houston", d, bw);
  b.Link("LosAngeles", "LasVegas", d, bw);
  b.Link("LosAngeles", "Phoenix", d, bw);
  b.Link("LasVegas", "SaltLakeCity", d, bw);
  b.Link("LasVegas", "Albuquerque", d, bw);
  b.Link("LasVegas", "Denver", d, bw);
  b.Link("SaltLakeCity", "Seattle", d, bw);
  b.Link("SaltLakeCity", "Denver", d, bw);
  b.Link("SaltLakeCity", "KansasCity", d, bw);
  b.Link("Phoenix", "Albuquerque", d, bw);
  b.Link("Phoenix", "Dallas", d, bw);
  b.Link("Albuquerque", "Denver", d, bw);
  b.Link("Albuquerque", "Dallas", d, bw);
  b.Link("SanFrancisco", "LosAngeles", d, bw);
  b.Link("Vancouver", "Toronto", d, bw);
  b.Link("Sacramento", "Denver", d, bw);
  b.Link("SanJose", "Chicago", d, bw);
  b.Link("SanDiego", "Dallas", d, bw);
  b.Link("Portland", "Denver", d, bw);

  // Transcontinental trunks (northern, central, southern).
  b.Link("Seattle", "Chicago", d, bw);
  b.Link("Seattle", "Minneapolis", d, bw);
  b.Link("Denver", "KansasCity", d, bw);
  b.Link("Denver", "Chicago", d, bw);
  b.Link("Denver", "Dallas", d, bw);
  b.Link("LosAngeles", "Dallas", d, bw);
  b.Link("SanFrancisco", "Chicago", d, bw);
  b.Link("SanFrancisco", "NewYork", d, bw);

  // Midwest / east mesh.
  b.Link("Chicago", "Minneapolis", d, bw);
  b.Link("Chicago", "Detroit", d, bw);
  b.Link("Chicago", "StLouis", d, bw);
  b.Link("Chicago", "Cleveland", d, bw);
  b.Link("Chicago", "KansasCity", d, bw);
  b.Link("Minneapolis", "KansasCity", d, bw);
  b.Link("Minneapolis", "Detroit", d, bw);
  b.Link("Minneapolis", "Toronto", d, bw);
  b.Link("KansasCity", "StLouis", d, bw);
  b.Link("KansasCity", "Dallas", d, bw);
  b.Link("StLouis", "Dallas", d, bw);
  b.Link("StLouis", "Columbus", d, bw);
  b.Link("Dallas", "Houston", d, bw);
  b.Link("Dallas", "Atlanta", d, bw);
  b.Link("Dallas", "Washington", d, bw);
  b.Link("Houston", "Atlanta", d, bw);
  b.Link("Houston", "Orlando", d, bw);
  b.Link("Detroit", "Cleveland", d, bw);
  b.Link("Detroit", "Toronto", d, bw);
  b.Link("Detroit", "NewYork", d, bw);
  b.Link("Cleveland", "Columbus", d, bw);
  b.Link("Cleveland", "Pittsburgh", d, bw);
  b.Link("Cleveland", "NewYork", d, bw);
  b.Link("Columbus", "Pittsburgh", d, bw);
  b.Link("Columbus", "Atlanta", d, bw);
  b.Link("Pittsburgh", "Philadelphia", d, bw);
  b.Link("Toronto", "Boston", d, bw);
  b.Link("Toronto", "NewYork", d, bw);
  b.Link("Boston", "NewYork", d, bw);
  b.Link("Boston", "Philadelphia", d, bw);
  b.Link("NewYork", "Newark", d, bw);
  b.Link("Newark", "Philadelphia", d, bw);
  b.Link("Newark", "Washington", d, bw);
  b.Link("Philadelphia", "Washington", d, bw);
  b.Link("NewYork", "Chicago", d, bw);
  b.Link("Washington", "Charlotte", d, bw);
  b.Link("Washington", "Atlanta", d, bw);
  b.Link("Washington", "Miami", d, bw);
  b.Link("Charlotte", "Atlanta", d, bw);
  b.Link("Charlotte", "Orlando", d, bw);
  b.Link("Atlanta", "Orlando", d, bw);
  b.Link("Orlando", "Miami", d, bw);
  b.Link("Atlanta", "StLouis", d, bw);
  b.Link("Washington", "Chicago", d, bw);
  b.Link("Miami", "Houston", d, bw);
  b.Link("StLouis", "Denver", d, bw);
  b.Link("Boston", "Cleveland", d, bw);
  b.Link("Philadelphia", "Atlanta", d, bw);
  b.Link("Charlotte", "Dallas", d, bw);
  b.Link("Newark", "Chicago", d, bw);
  b.Link("Pittsburgh", "Washington", d, bw);

  // Europe mesh around London / Amsterdam / Frankfurt / Paris hubs.
  b.Link("London", "Dublin", d, bw);
  b.Link("Dublin", "Paris", d, bw);
  b.Link("London", "Amsterdam", d, bw);
  b.Link("London", "Paris", d, bw);
  b.Link("London", "Madrid", d, bw);
  b.Link("London", "Stockholm", d, bw);
  b.Link("London", "Brussels", d, bw);
  b.Link("Amsterdam", "Brussels", d, bw);
  b.Link("Brussels", "Paris", d, bw);
  b.Link("Amsterdam", "Frankfurt", d, bw);
  b.Link("Amsterdam", "Zurich", d, bw);
  b.Link("Paris", "Madrid", d, bw);
  b.Link("Paris", "Zurich", d, bw);
  b.Link("Paris", "Frankfurt", d, bw);
  b.Link("Frankfurt", "Zurich", d, bw);
  b.Link("Frankfurt", "Milan", d, bw);
  b.Link("Zurich", "Milan", d, bw);
  b.Link("Frankfurt", "Vienna", d, bw);
  b.Link("Vienna", "Milan", d, bw);
  b.Link("Vienna", "Amsterdam", d, bw);
  b.Link("Frankfurt", "Copenhagen", d, bw);
  b.Link("Copenhagen", "Stockholm", d, bw);
  b.Link("Copenhagen", "Amsterdam", d, bw);
  b.Link("Amsterdam", "Stockholm", d, bw);
  b.Link("Madrid", "Milan", d, bw);
  b.Link("Milan", "Paris", d, bw);
  b.Link("Stockholm", "Frankfurt", d, bw);
  b.Link("Copenhagen", "London", d, bw);
  b.Link("Vienna", "Zurich", d, bw);

  // Pacific Rim mesh.
  b.Link("Tokyo", "Osaka", d, bw);
  b.Link("Tokyo", "Seoul", d, bw);
  b.Link("Tokyo", "Taipei", d, bw);
  b.Link("Osaka", "Taipei", d, bw);
  b.Link("Osaka", "Seoul", d, bw);
  b.Link("Seoul", "Taipei", d, bw);
  b.Link("Seoul", "HongKong", d, bw);
  b.Link("Taipei", "HongKong", d, bw);
  b.Link("HongKong", "Singapore", d, bw);
  b.Link("Singapore", "Sydney", d, bw);
  b.Link("Singapore", "Taipei", d, bw);
  b.Link("Singapore", "Tokyo", d, bw);
  b.Link("Sydney", "Melbourne", d, bw);
  b.Link("Melbourne", "Singapore", d, bw);
  b.Link("Tokyo", "HongKong", d, bw);
  b.Link("Tokyo", "Sydney", d, bw);
  b.Link("Sydney", "HongKong", d, bw);

  // Trans-oceanic links.
  b.Link("NewYork", "London", d, bw);
  b.Link("Washington", "Amsterdam", d, bw);
  b.Link("Newark", "Paris", d, bw);
  b.Link("NewYork", "Frankfurt", d, bw);
  b.Link("Seattle", "Tokyo", d, bw);
  b.Link("SanFrancisco", "Tokyo", d, bw);
  b.Link("LosAngeles", "Tokyo", d, bw);
  b.Link("Seattle", "Osaka", d, bw);
  b.Link("LosAngeles", "Sydney", d, bw);
  b.Link("LosAngeles", "Melbourne", d, bw);
  b.Link("SanJose", "HongKong", d, bw);
  b.Link("Boston", "London", d, bw);
  b.Link("Dublin", "NewYork", d, bw);
  b.Link("Miami", "Madrid", d, bw);
  b.Link("Amsterdam", "NewYork", d, bw);
  b.Link("London", "Washington", d, bw);
  b.Link("Seoul", "Seattle", d, bw);
  b.Link("Taipei", "LosAngeles", d, bw);
  b.Link("Singapore", "LosAngeles", d, bw);
  b.Link("Osaka", "SanFrancisco", d, bw);
  b.Link("Frankfurt", "Chicago", d, bw);
  b.Link("Paris", "Washington", d, bw);
  b.Link("HongKong", "Seattle", d, bw);

  return std::move(b).Build();
}

}  // namespace radar::net
