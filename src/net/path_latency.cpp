#include "net/path_latency.h"

#include <algorithm>

#include "common/check.h"
#include "sim/transfer.h"

namespace radar::net {
namespace {

/// Edge from `v` to its canonical parent `p`; neighbor lists are sorted
/// by node id, so a binary search finds the link without a full scan.
const Edge& EdgeTo(const Graph& graph, NodeId v, NodeId p) {
  const std::vector<Edge>& edges = graph.Neighbors(v);
  const auto it = std::lower_bound(
      edges.begin(), edges.end(), p,
      [](const Edge& e, NodeId node) { return e.to < node; });
  RADAR_CHECK(it != edges.end());
  RADAR_CHECK_EQ(it->to, p);
  return *it;
}

}  // namespace

PathLatencyMatrix::PathLatencyMatrix(const RoutingTable& routing,
                                     const Graph& graph,
                                     std::int64_t object_bytes)
    : num_nodes_(routing.num_nodes()), object_bytes_(object_bytes) {
  RADAR_CHECK_EQ(num_nodes_, graph.num_nodes());
  RADAR_CHECK_GE(object_bytes_, 0);
  const auto n = static_cast<std::size_t>(num_nodes_);
  control_.assign(n * n, 0);
  transfer_.assign(n * n, 0);

  // Nodes in parent-before-child order (ascending hop count, then id —
  // a counting sort, since hop counts are < n). Reused across sources.
  std::vector<std::size_t> bucket_start;
  std::vector<NodeId> order(n);

  for (NodeId a = 0; a < num_nodes_; ++a) {
    const std::int32_t* hops = routing.HopRow(a);
    const NodeId* parent = routing.ParentRow(a);
    SimTime* control = &control_[Index(a, 0)];
    SimTime* transfer = &transfer_[Index(a, 0)];

    std::int32_t max_hops = 0;
    for (std::size_t v = 0; v < n; ++v) max_hops = std::max(max_hops, hops[v]);
    bucket_start.assign(static_cast<std::size_t>(max_hops) + 2, 0);
    for (std::size_t v = 0; v < n; ++v) {
      ++bucket_start[static_cast<std::size_t>(hops[v]) + 1];
    }
    for (std::size_t h = 1; h < bucket_start.size(); ++h) {
      bucket_start[h] += bucket_start[h - 1];
    }
    for (NodeId v = 0; v < num_nodes_; ++v) {
      order[bucket_start[static_cast<std::size_t>(
          hops[static_cast<std::size_t>(v)])]++] = v;
    }

    for (const NodeId v : order) {
      const NodeId p = parent[static_cast<std::size_t>(v)];
      if (p == kInvalidNode) {
        RADAR_CHECK_EQ(v, a);
        continue;
      }
      const Edge& e = EdgeTo(graph, v, p);
      const auto vi = static_cast<std::size_t>(v);
      const auto pi = static_cast<std::size_t>(p);
      control[vi] = control[pi] + e.delay;
      // Per-link truncation, matching the per-hop walk this replaces.
      transfer[vi] = transfer[pi] + e.delay +
                     sim::SerializationTime(object_bytes_, e.bandwidth_bps);
    }
  }
}

SimTime PathLatencyMatrix::MinCrossPartitionControl(
    const std::vector<int>& partition) const {
  RADAR_CHECK_EQ(partition.size(), static_cast<std::size_t>(num_nodes_));
  SimTime best = kNoCrossPartition;
  for (NodeId a = 0; a < num_nodes_; ++a) {
    const std::size_t pa = static_cast<std::size_t>(a);
    for (NodeId b = 0; b < num_nodes_; ++b) {
      if (partition[pa] == partition[static_cast<std::size_t>(b)]) continue;
      const SimTime c = control_[Index(a, b)];
      if (best == kNoCrossPartition || c < best) best = c;
    }
  }
  return best;
}

}  // namespace radar::net
