#include "net/path_latency.h"

#include "common/check.h"
#include "sim/transfer.h"

namespace radar::net {

PathLatencyMatrix::PathLatencyMatrix(const RoutingTable& routing,
                                     const Graph& graph,
                                     std::int64_t object_bytes)
    : num_nodes_(routing.num_nodes()), object_bytes_(object_bytes) {
  RADAR_CHECK_EQ(num_nodes_, graph.num_nodes());
  RADAR_CHECK_GE(object_bytes_, 0);
  const auto n = static_cast<std::size_t>(num_nodes_);
  control_.assign(n * n, 0);
  transfer_.assign(n * n, 0);

  // Dense link lookup so path walks need no adjacency scans even here.
  std::vector<std::int32_t> link_of(n * n, -1);
  for (std::size_t i = 0; i < graph.num_links(); ++i) {
    const Link& link = graph.links()[i];
    const auto ab = Index(link.a, link.b);
    const auto ba = Index(link.b, link.a);
    link_of[ab] = static_cast<std::int32_t>(i);
    link_of[ba] = static_cast<std::int32_t>(i);
  }

  for (NodeId a = 0; a < num_nodes_; ++a) {
    for (NodeId b = 0; b < num_nodes_; ++b) {
      const std::vector<NodeId>& path = routing.Path(a, b);
      SimTime control = 0;
      SimTime transfer = 0;
      for (std::size_t i = 1; i < path.size(); ++i) {
        const std::int32_t li = link_of[Index(path[i - 1], path[i])];
        RADAR_CHECK_GE(li, 0);
        const Link& link = graph.link(li);
        control += link.delay;
        // Per-link truncation, matching the per-hop walk this replaces.
        transfer += link.delay +
                    sim::SerializationTime(object_bytes_, link.bandwidth_bps);
      }
      control_[Index(a, b)] = control;
      transfer_[Index(a, b)] = transfer;
    }
  }
}

SimTime PathLatencyMatrix::MinCrossPartitionControl(
    const std::vector<int>& partition) const {
  RADAR_CHECK_EQ(partition.size(), static_cast<std::size_t>(num_nodes_));
  SimTime best = kNoCrossPartition;
  for (NodeId a = 0; a < num_nodes_; ++a) {
    const std::size_t pa = static_cast<std::size_t>(a);
    for (NodeId b = 0; b < num_nodes_; ++b) {
      if (partition[pa] == partition[static_cast<std::size_t>(b)]) continue;
      const SimTime c = control_[Index(a, b)];
      if (best == kNoCrossPartition || c < best) best = c;
    }
  }
  return best;
}

}  // namespace radar::net
