// Plain-text serialization of topologies.
//
// Lets deployments describe their backbone in a file instead of code:
//
//   # comment
//   node <name> <west-na|east-na|europe|pacific> [gateway|transit]
//   link <name-a> <name-b> <delay-ms> <bandwidth-kbps>
//
// Nodes must appear before links that reference them. Whitespace-
// separated; '#' starts a comment.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "net/topology.h"

namespace radar::net {

/// Parses a topology; returns std::nullopt and fills *error on malformed
/// input (line number + message).
std::optional<Topology> ReadTopology(std::istream& in, std::string* error);

/// Writes a topology in the format ReadTopology parses; round-trips.
void WriteTopology(const Topology& topology, std::ostream& out);

/// Region <-> token helpers for the file format.
const char* RegionToken(Region region);
std::optional<Region> RegionFromToken(const std::string& token);

}  // namespace radar::net
