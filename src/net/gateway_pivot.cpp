#include "net/gateway_pivot.h"

#include <algorithm>

#include "sim/transfer.h"

namespace radar::net {

GatewayPivotOracle::GatewayPivotOracle(const Graph& graph,
                                       std::vector<NodeId> seed_sources,
                                       std::int64_t object_bytes)
    : graph_(&graph),
      num_nodes_(graph.num_nodes()),
      object_bytes_(object_bytes) {
  RADAR_CHECK_GT(num_nodes_, 0);
  RADAR_CHECK_GE(object_bytes_, 0);
  RADAR_CHECK_MSG(graph.IsConnected(),
                  "gateway-pivot oracle requires a connected graph");
  link_up_.assign(graph.num_links(), 1);

  std::sort(seed_sources.begin(), seed_sources.end());
  seed_sources.erase(std::unique(seed_sources.begin(), seed_sources.end()),
                     seed_sources.end());
  RADAR_CHECK_MSG(!seed_sources.empty(),
                  "gateway-pivot oracle needs at least one rowed source");
  for (const NodeId s : seed_sources) Checked(s);

  rowed_ = std::move(seed_sources);
  num_seed_rows_ = rowed_.size();
  row_of_.assign(static_cast<std::size_t>(num_nodes_), -1);
  const std::size_t n = static_cast<std::size_t>(num_nodes_);
  parent_.resize(rowed_.size() * n);
  hops_.resize(rowed_.size() * n);
  ctrl_.resize(rowed_.size() * n);
  trans_.resize(rowed_.size() * n);
  for (std::size_t r = 0; r < rowed_.size(); ++r) {
    row_of_[static_cast<std::size_t>(rowed_[r])] = static_cast<std::int32_t>(r);
    RebuildRow(static_cast<std::int32_t>(r));
  }
  RebuildPivotForest();
}

void GatewayPivotOracle::AddRowSources(const std::vector<NodeId>& sources) {
  std::vector<NodeId> batch = sources;
  std::sort(batch.begin(), batch.end());
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
  const std::size_t n = static_cast<std::size_t>(num_nodes_);
  bool added = false;
  for (const NodeId s : batch) {
    if (HasRow(s)) continue;
    const auto row = static_cast<std::int32_t>(rowed_.size());
    rowed_.push_back(s);
    row_of_[static_cast<std::size_t>(s)] = row;
    parent_.resize(rowed_.size() * n);
    hops_.resize(rowed_.size() * n);
    ctrl_.resize(rowed_.size() * n);
    trans_.resize(rowed_.size() * n);
    RebuildRow(row);
    added = true;
  }
  if (added) RebuildPivotForest();
}

void GatewayPivotOracle::RebuildRow(std::int32_t row) {
  const NodeId src = rowed_[static_cast<std::size_t>(row)];
  BuildShortestPathTree(*graph_, src, RoutingMetric::kHops, &link_up_,
                        &scratch_tree_);
  const std::size_t n = static_cast<std::size_t>(num_nodes_);
  const std::size_t base = RowBase(row);
  NodeId* parent = &parent_[base];
  std::int32_t* hops = &hops_[base];
  SimTime* ctrl = &ctrl_[base];
  SimTime* trans = &trans_[base];

  std::int32_t max_hops = 0;
  for (std::size_t v = 0; v < n; ++v) {
    RADAR_CHECK_GE(scratch_tree_.hops[v], 0);  // mask must stay connected
    parent[v] = scratch_tree_.parent[v];
    hops[v] = scratch_tree_.hops[v];
    max_hops = std::max(max_hops, hops[v]);
  }

  // Parent-before-child order by counting sort on hop count, then the
  // same per-link truncate-then-sum DP the dense matrix runs.
  scratch_bucket_.assign(static_cast<std::size_t>(max_hops) + 2, 0);
  for (std::size_t v = 0; v < n; ++v) {
    ++scratch_bucket_[static_cast<std::size_t>(hops[v]) + 1];
  }
  for (std::size_t h = 1; h < scratch_bucket_.size(); ++h) {
    scratch_bucket_[h] += scratch_bucket_[h - 1];
  }
  scratch_order_.resize(n);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    scratch_order_[scratch_bucket_[static_cast<std::size_t>(
        hops[static_cast<std::size_t>(v)])]++] = v;
  }

  for (const NodeId v : scratch_order_) {
    const auto vi = static_cast<std::size_t>(v);
    const NodeId p = parent[vi];
    if (p == kInvalidNode) {
      RADAR_CHECK_EQ(v, src);
      ctrl[vi] = 0;
      trans[vi] = 0;
      continue;
    }
    const std::vector<Edge>& edges = graph_->Neighbors(v);
    const auto it = std::lower_bound(
        edges.begin(), edges.end(), p,
        [](const Edge& e, NodeId node) { return e.to < node; });
    RADAR_CHECK(it != edges.end());
    RADAR_CHECK_EQ(it->to, p);
    const auto pi = static_cast<std::size_t>(p);
    ctrl[vi] = ctrl[pi] + it->delay;
    trans[vi] = trans[pi] + it->delay +
                sim::SerializationTime(object_bytes_, it->bandwidth_bps);
  }
}

void GatewayPivotOracle::RebuildPivotForest() {
  const std::size_t n = static_cast<std::size_t>(num_nodes_);
  pivot_of_.assign(n, kInvalidNode);
  pivot_dist_.assign(n, -1);
  pivot_parent_.assign(n, kInvalidNode);
  // Multi-source BFS seeded by every rowed source in ascending node id;
  // the first discoverer in that order is the canonical assignment.
  std::vector<NodeId>& queue = scratch_order_;
  queue.clear();
  for (NodeId v = 0; v < num_nodes_; ++v) {
    if (row_of_[static_cast<std::size_t>(v)] < 0) continue;
    pivot_of_[static_cast<std::size_t>(v)] = v;
    pivot_dist_[static_cast<std::size_t>(v)] = 0;
    queue.push_back(v);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId node = queue[head];
    const auto ni = static_cast<std::size_t>(node);
    for (const Edge& e : graph_->Neighbors(node)) {
      if (link_up_[static_cast<std::size_t>(e.link_index)] == 0) continue;
      const auto ti = static_cast<std::size_t>(e.to);
      if (pivot_dist_[ti] >= 0) continue;
      pivot_dist_[ti] = pivot_dist_[ni] + 1;
      pivot_of_[ti] = pivot_of_[ni];
      pivot_parent_[ti] = node;
      queue.push_back(e.to);
    }
  }
  for (std::size_t v = 0; v < n; ++v) RADAR_CHECK_GE(pivot_dist_[v], 0);
}

NodeId GatewayPivotOracle::Lca(std::int32_t row, NodeId a, NodeId b) const {
  const NodeId* parent = &parent_[RowBase(row)];
  const std::int32_t* hops = &hops_[RowBase(row)];
  NodeId x = a;
  NodeId y = b;
  while (hops[static_cast<std::size_t>(x)] > hops[static_cast<std::size_t>(y)]) {
    x = parent[static_cast<std::size_t>(x)];
  }
  while (hops[static_cast<std::size_t>(y)] > hops[static_cast<std::size_t>(x)]) {
    y = parent[static_cast<std::size_t>(y)];
  }
  while (x != y) {
    x = parent[static_cast<std::size_t>(x)];
    y = parent[static_cast<std::size_t>(y)];
  }
  return x;
}

SimTime GatewayPivotOracle::Control(NodeId a, NodeId b) const {
  Checked(b);
  if (a == b) return 0;
  const std::int32_t ra = row_of_[static_cast<std::size_t>(Checked(a))];
  if (ra >= 0) return ctrl_[RowBase(ra) + static_cast<std::size_t>(b)];
  const std::int32_t rb = row_of_[static_cast<std::size_t>(b)];
  if (rb >= 0) return ctrl_[RowBase(rb) + static_cast<std::size_t>(a)];
  const std::int32_t r = PivotRow(a);
  const SimTime* row = &ctrl_[RowBase(r)];
  const NodeId l = Lca(r, a, b);
  return row[static_cast<std::size_t>(a)] + row[static_cast<std::size_t>(b)] -
         2 * row[static_cast<std::size_t>(l)];
}

SimTime GatewayPivotOracle::Transfer(NodeId a, NodeId b) const {
  Checked(b);
  if (a == b) return 0;
  const std::int32_t ra = row_of_[static_cast<std::size_t>(Checked(a))];
  if (ra >= 0) return trans_[RowBase(ra) + static_cast<std::size_t>(b)];
  const std::int32_t rb = row_of_[static_cast<std::size_t>(b)];
  if (rb >= 0) return trans_[RowBase(rb) + static_cast<std::size_t>(a)];
  const std::int32_t r = PivotRow(a);
  const SimTime* row = &trans_[RowBase(r)];
  const NodeId l = Lca(r, a, b);
  return row[static_cast<std::size_t>(a)] + row[static_cast<std::size_t>(b)] -
         2 * row[static_cast<std::size_t>(l)];
}

std::int32_t GatewayPivotOracle::HopDistance(NodeId a, NodeId b) const {
  Checked(b);
  if (a == b) return 0;
  const std::int32_t ra = row_of_[static_cast<std::size_t>(Checked(a))];
  if (ra >= 0) return hops_[RowBase(ra) + static_cast<std::size_t>(b)];
  const std::int32_t rb = row_of_[static_cast<std::size_t>(b)];
  if (rb >= 0) return hops_[RowBase(rb) + static_cast<std::size_t>(a)];
  const std::int32_t r = PivotRow(a);
  const std::int32_t* row = &hops_[RowBase(r)];
  const NodeId l = Lca(r, a, b);
  return row[static_cast<std::size_t>(a)] + row[static_cast<std::size_t>(b)] -
         2 * row[static_cast<std::size_t>(l)];
}

void GatewayPivotOracle::AppendPath(NodeId a, NodeId b,
                                    std::vector<NodeId>* out) const {
  Checked(b);
  if (Checked(a) == b) {
    out->push_back(a);
    return;
  }
  const std::int32_t ra = row_of_[static_cast<std::size_t>(a)];
  if (ra >= 0) {
    // a's own tree: walk b up to a, then reverse the appended span.
    const NodeId* parent = &parent_[RowBase(ra)];
    const auto start = static_cast<std::ptrdiff_t>(out->size());
    for (NodeId at = b;;) {
      out->push_back(at);
      if (at == a) break;
      at = parent[static_cast<std::size_t>(at)];
      RADAR_CHECK(at != kInvalidNode);
    }
    std::reverse(out->begin() + start, out->end());
    return;
  }
  const std::int32_t rb = row_of_[static_cast<std::size_t>(b)];
  if (rb >= 0) {
    // Reverse of b's tree path: walking a toward the root b already
    // produces the a -> b order.
    const NodeId* parent = &parent_[RowBase(rb)];
    for (NodeId at = a;;) {
      out->push_back(at);
      if (at == b) break;
      at = parent[static_cast<std::size_t>(at)];
      RADAR_CHECK(at != kInvalidNode);
    }
    return;
  }
  // Class 3: a -> lca -> b inside the tree of a's pivot.
  const std::int32_t r = PivotRow(a);
  const NodeId* parent = &parent_[RowBase(r)];
  const NodeId l = Lca(r, a, b);
  for (NodeId at = a;;) {
    out->push_back(at);
    if (at == l) break;
    at = parent[static_cast<std::size_t>(at)];
  }
  const auto start = static_cast<std::ptrdiff_t>(out->size());
  for (NodeId at = b; at != l; at = parent[static_cast<std::size_t>(at)]) {
    out->push_back(at);
  }
  std::reverse(out->begin() + start, out->end());
}

SimTime GatewayPivotOracle::MinCrossPartitionControl(
    const std::vector<int>& partition) const {
  RADAR_CHECK_EQ(partition.size(), static_cast<std::size_t>(num_nodes_));
  // Exact in O(links), no matrix needed: with hop-count routing, two
  // adjacent nodes always route over their direct link, so Control(u, v)
  // for a live cut edge (u, v) is exactly that link's delay. Any other
  // cross-partition pair's control path crosses the cut somewhere and
  // accumulates at least one cut edge's delay (delays are non-negative),
  // so the all-pairs minimum the dense matrix scans for is achieved on a
  // cut edge — the value below is bit-identical to the dense scan.
  SimTime best = kNoCrossPartition;
  const std::vector<Link>& links = graph_->links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (link_up_[i] == 0) continue;
    const Link& link = links[i];
    if (partition[static_cast<std::size_t>(link.a)] ==
        partition[static_cast<std::size_t>(link.b)]) {
      continue;
    }
    if (best == kNoCrossPartition || link.delay < best) best = link.delay;
  }
  return best;
}

void GatewayPivotOracle::OnLinkChange(std::int32_t link_index, bool up) {
  RADAR_CHECK_GE(link_index, 0);
  RADAR_CHECK_LT(static_cast<std::size_t>(link_index), link_up_.size());
  const Link& link = graph_->link(link_index);
  link_up_[static_cast<std::size_t>(link_index)] = up ? 1 : 0;
  const auto u = static_cast<std::size_t>(link.a);
  const auto v = static_cast<std::size_t>(link.b);

  for (std::size_t r = 0; r < rowed_.size(); ++r) {
    const std::size_t base = RowBase(static_cast<std::int32_t>(r));
    bool dirty;
    if (!up) {
      // Removing a non-tree edge changes neither distances nor the
      // rank-argmin parent choice.
      dirty = parent_[base + u] == link.b || parent_[base + v] == link.a;
    } else {
      // Strict improvement moves distances; equality can flip the
      // deterministic equal-cost tie-break.
      dirty = hops_[base + u] + 1 <= hops_[base + v] ||
              hops_[base + v] + 1 <= hops_[base + u];
    }
    if (dirty) {
      RebuildRow(static_cast<std::int32_t>(r));
      ++rows_rebuilt_;
    }
  }

  bool forest_dirty;
  if (!up) {
    forest_dirty = pivot_parent_[u] == link.b || pivot_parent_[v] == link.a;
  } else {
    forest_dirty = pivot_dist_[u] + 1 <= pivot_dist_[v] ||
                   pivot_dist_[v] + 1 <= pivot_dist_[u];
  }
  if (forest_dirty) {
    RebuildPivotForest();
    ++forests_rebuilt_;
  }
}

std::vector<NodeId> GatewayPivotOracle::NodesBySeedCentrality() const {
  const std::size_t n = static_cast<std::size_t>(num_nodes_);
  std::vector<std::int64_t> total(n, 0);
  for (std::size_t r = 0; r < num_seed_rows_; ++r) {
    const std::int32_t* row = &hops_[RowBase(static_cast<std::int32_t>(r))];
    for (std::size_t v = 0; v < n; ++v) total[v] += row[v];
  }
  std::vector<NodeId> nodes(n);
  for (NodeId v = 0; v < num_nodes_; ++v) nodes[static_cast<std::size_t>(v)] = v;
  std::stable_sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    const std::int64_t ta = total[static_cast<std::size_t>(a)];
    const std::int64_t tb = total[static_cast<std::size_t>(b)];
    if (ta != tb) return ta < tb;
    return a < b;
  });
  return nodes;
}

}  // namespace radar::net
