// Platform topology: routers/hosts with region metadata and gateway flags.
#pragma once

#include <string>
#include <vector>

#include "net/graph.h"

namespace radar::net {

/// Geographic region of a node; the regional workload and the UUNET-style
/// builder use these four, matching the paper's partition.
enum class Region : std::uint8_t {
  kWesternNorthAmerica = 0,
  kEasternNorthAmerica = 1,
  kEurope = 2,
  kPacificAustralia = 3,
};

inline constexpr int kNumRegions = 4;

const char* RegionName(Region region);

/// Per-node metadata.
struct NodeInfo {
  std::string name;
  Region region = Region::kWesternNorthAmerica;
  bool is_gateway = true;  ///< the paper assumes all backbone nodes gateway
};

/// A topology couples the link graph with node metadata. Instances are
/// immutable after construction via TopologyBuilder.
class Topology {
 public:
  Topology(Graph graph, std::vector<NodeInfo> nodes);

  const Graph& graph() const { return graph_; }
  std::int32_t num_nodes() const { return graph_.num_nodes(); }
  const NodeInfo& node(NodeId id) const;

  Region RegionOf(NodeId id) const { return node(id).region; }
  bool IsGateway(NodeId id) const { return node(id).is_gateway; }

  /// Node ids belonging to the given region, ascending.
  std::vector<NodeId> NodesInRegion(Region region) const;

  /// All gateway node ids, ascending.
  std::vector<NodeId> GatewayNodes() const;

  /// Finds a node by name; returns kInvalidNode if absent.
  NodeId FindByName(const std::string& name) const;

 private:
  Graph graph_;
  std::vector<NodeInfo> nodes_;
};

/// Incremental construction of a Topology.
class TopologyBuilder {
 public:
  /// Adds a node and returns its id.
  NodeId AddNode(std::string name, Region region, bool is_gateway = true);

  /// Adds a bidirectional link between named or numbered nodes.
  TopologyBuilder& Link(NodeId a, NodeId b, SimTime delay, double bandwidth_bps);
  TopologyBuilder& Link(const std::string& a, const std::string& b,
                        SimTime delay, double bandwidth_bps);

  std::int32_t num_nodes() const { return static_cast<std::int32_t>(nodes_.size()); }
  NodeId IdOf(const std::string& name) const;

  /// Whether the pending nodes and links form a connected graph; callers
  /// that cannot tolerate Build()'s abort on disconnection check first.
  bool IsConnected() const;

  /// Whether a link between the two nodes is already pending.
  bool HasLink(NodeId a, NodeId b) const;

  /// Finalizes the topology; checks connectivity.
  Topology Build() &&;

 private:
  struct PendingLink {
    NodeId a;
    NodeId b;
    SimTime delay;
    double bandwidth_bps;
  };
  std::vector<NodeInfo> nodes_;
  std::vector<PendingLink> links_;
};

}  // namespace radar::net
