// The network model behind one simulation run: routing + latency lookup.
//
// Exactly one of two backends is active for a run's lifetime:
//  - dense: RoutingTable (all-pairs parent trees) + PathLatencyMatrix
//    (two n^2 latency arrays). Exact for every ordered pair; rebuilt
//    wholesale per fault epoch. The paper-scale default.
//  - sparse: GatewayPivotOracle — per-gateway/home shortest-path trees
//    plus pivot labels, O(rows x n) memory, incremental fault epoching.
//    The only backend that survives 10k+ node graphs.
//
// The accessors are inline and branch on one pointer, so the RADAR_HOT
// dispatch path pays no virtual call either way; both backends return
// raw row pointers for the loops that scan candidates.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "net/gateway_pivot.h"
#include "net/graph.h"
#include "net/latency_oracle.h"
#include "net/path_latency.h"
#include "net/routing.h"
#include "net/topology.h"

namespace radar::net {

class NetModel {
 public:
  /// `topology` must outlive this model. The sparse backend seeds its
  /// rows with the topology's gateways.
  NetModel(const Topology& topology, std::int64_t object_bytes,
           OracleKind kind);

  bool sparse() const { return sparse_ != nullptr; }
  std::int32_t num_nodes() const { return num_nodes_; }

  /// Row of hop distances from `a`, or nullptr when the sparse backend
  /// keeps no row for `a` (callers fall back to HopDistance).
  const std::int32_t* HopRow(NodeId a) const {
    return sparse_ ? sparse_->HopRowFor(a) : routing_->HopRow(a);
  }

  std::int32_t HopDistance(NodeId a, NodeId b) const {
    return sparse_ ? sparse_->HopDistance(a, b) : routing_->HopDistance(a, b);
  }

  SimTime Control(NodeId a, NodeId b) const {
    return sparse_ ? sparse_->Control(a, b) : matrix_->Control(a, b);
  }

  SimTime Transfer(NodeId a, NodeId b) const {
    return sparse_ ? sparse_->Transfer(a, b) : matrix_->Transfer(a, b);
  }

  /// Row of control latencies from `a`; never nullptr on the dense
  /// backend, nullptr on sparse when `a` is not a rowed source.
  const SimTime* ControlRow(NodeId a) const {
    return sparse_ ? sparse_->ControlRow(a) : matrix_->ControlRow(a);
  }

  SimTime MinCrossPartitionControl(const std::vector<int>& partition) const {
    return sparse_ ? sparse_->MinCrossPartitionControl(partition)
                   : matrix_->MinCrossPartitionControl(partition);
  }

  /// Appends the canonical route for (a, b), endpoints inclusive, to
  /// `*out`. Allocation-free at steady capacity; safe from shard threads.
  void AppendPath(NodeId a, NodeId b, std::vector<NodeId>* out) const {
    if (sparse_) {
      sparse_->AppendPath(a, b, out);
    } else {
      routing_->AppendPath(a, b, out);
    }
  }

  /// Nodes ranked most-central first, for redirector home placement. On
  /// the sparse backend centrality is measured from the gateway rows; on
  /// all-gateway graphs (UUNET) the two rankings are identical.
  std::vector<NodeId> NodesByCentrality() const {
    return sparse_ ? sparse_->NodesBySeedCentrality()
                   : routing_->NodesByCentrality();
  }

  /// Registers redirector homes as rowed sources (sparse backend only;
  /// a no-op on dense, which has every row already).
  void AddRowSources(const std::vector<NodeId>& homes) {
    if (sparse_) sparse_->AddRowSources(homes);
  }

  /// Dense fault epoch: rebuild the routing table and latency matrix
  /// over the surviving backbone.
  void RebuildDense(const Graph& live);

  /// Sparse fault epoch: apply one link event incrementally.
  void OnLinkChange(std::int32_t link_index, bool up);

  /// The active latency oracle (for code written against the interface).
  const LatencyOracle& oracle() const {
    return sparse_ ? static_cast<const LatencyOracle&>(*sparse_)
                   : static_cast<const LatencyOracle&>(*matrix_);
  }

  // Backend-specific introspection.
  const RoutingTable& routing() const {
    RADAR_CHECK_MSG(!sparse(), "routing(): dense backend only");
    return *routing_;
  }
  const PathLatencyMatrix& dense_latency() const {
    RADAR_CHECK_MSG(!sparse(), "dense_latency(): dense backend only");
    return *matrix_;
  }
  const GatewayPivotOracle& sparse_oracle() const {
    RADAR_CHECK_MSG(sparse(), "sparse_oracle(): sparse backend only");
    return *sparse_;
  }

 private:
  const Topology* topology_ = nullptr;
  std::int32_t num_nodes_ = 0;
  std::int64_t object_bytes_ = 0;
  std::optional<RoutingTable> routing_;
  std::optional<PathLatencyMatrix> matrix_;
  std::unique_ptr<GatewayPivotOracle> sparse_;
};

}  // namespace radar::net
