// Measurement collectors for the paper's evaluation metrics (Sec. 6).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace radar::metrics {

/// Backbone traffic, split into request-servicing payload ("the bandwidth
/// is determined by summing the number of bytes transmitted on each hop")
/// and relocation overhead (object copies between hosts, Fig. 7).
class TrafficLedger {
 public:
  explicit TrafficLedger(SimTime bucket_width);

  void AddPayload(SimTime t, std::int64_t byte_hops);
  void AddOverhead(SimTime t, std::int64_t byte_hops);

  const BucketedSeries& payload() const { return payload_; }
  const BucketedSeries& overhead() const { return overhead_; }
  std::int64_t total_payload() const { return total_payload_; }
  std::int64_t total_overhead() const { return total_overhead_; }

  /// Overhead as a percentage of all traffic (payload + overhead).
  double OverheadPercent() const;

  /// Per-bucket overhead percentage (Fig. 7's series).
  std::vector<double> OverheadPercentSeries() const;

 private:
  BucketedSeries payload_;
  BucketedSeries overhead_;
  std::int64_t total_payload_ = 0;
  std::int64_t total_overhead_ = 0;
};

/// Per-bucket maximum (Fig. 8a: maximum host load over time).
class MaxSeries {
 public:
  explicit MaxSeries(SimTime bucket_width);

  void Add(SimTime t, double value);

  std::size_t num_buckets() const { return maxima_.size(); }
  SimTime BucketStart(std::size_t i) const;
  double MaxAt(std::size_t i) const;

  /// Maximum over buckets [first, last] (clamped).
  double MaxOver(std::size_t first, std::size_t last) const;
  double OverallMax() const;

 private:
  SimTime bucket_width_;
  std::vector<double> maxima_;
  std::vector<bool> present_;
};

/// Timestamped samples of a scalar (replica census, tracked-host loads).
struct Sample {
  SimTime t;
  double value;
};

class SampledSeries {
 public:
  void Add(SimTime t, double value) { samples_.push_back({t, value}); }
  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  /// Mean of samples with t >= from.
  double MeanSince(SimTime from) const;
  double LastValue() const;

 private:
  std::vector<Sample> samples_;
};

/// Fig. 8b: one host's actual load bracketed by its running estimates.
struct TrackedLoadSample {
  SimTime t;
  double measured;
  double upper_estimate;  ///< admission load (upper bound)
  double lower_estimate;  ///< offload load (lower bound)
};

/// Adjustment time (Table 2): the first time the per-bucket traffic rate
/// settles to within `tolerance` (e.g. 1.10) of the equilibrium rate and
/// stays there for `stable_buckets` consecutive buckets. The equilibrium
/// rate is the mean over the trailing `equilibrium_fraction` of the run.
/// Only the first `max_buckets` buckets are considered (pass the number of
/// *complete* buckets to exclude a near-empty trailing partial bucket).
/// Returns a negative value when the series never settles.
double AdjustmentTimeSeconds(const BucketedSeries& traffic,
                             double tolerance = 1.10,
                             double equilibrium_fraction = 0.25,
                             int stable_buckets = 3,
                             std::size_t max_buckets = static_cast<std::size_t>(-1));

}  // namespace radar::metrics
