#include "metrics/collector.h"

#include <algorithm>

#include "common/check.h"

namespace radar::metrics {

TrafficLedger::TrafficLedger(SimTime bucket_width)
    : payload_(bucket_width), overhead_(bucket_width) {}

void TrafficLedger::AddPayload(SimTime t, std::int64_t byte_hops) {
  RADAR_CHECK_GE(byte_hops, 0);
  if (byte_hops == 0) return;
  payload_.Add(t, static_cast<double>(byte_hops));
  total_payload_ += byte_hops;
}

void TrafficLedger::AddOverhead(SimTime t, std::int64_t byte_hops) {
  RADAR_CHECK_GE(byte_hops, 0);
  if (byte_hops == 0) return;
  overhead_.Add(t, static_cast<double>(byte_hops));
  total_overhead_ += byte_hops;
}

double TrafficLedger::OverheadPercent() const {
  const auto total = total_payload_ + total_overhead_;
  return total > 0 ? 100.0 * static_cast<double>(total_overhead_) /
                         static_cast<double>(total)
                   : 0.0;
}

std::vector<double> TrafficLedger::OverheadPercentSeries() const {
  const std::size_t n =
      std::max(payload_.num_buckets(), overhead_.num_buckets());
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double pay = i < payload_.num_buckets() ? payload_.SumAt(i) : 0.0;
    const double ovh = i < overhead_.num_buckets() ? overhead_.SumAt(i) : 0.0;
    const double total = pay + ovh;
    out[i] = total > 0.0 ? 100.0 * ovh / total : 0.0;
  }
  return out;
}

MaxSeries::MaxSeries(SimTime bucket_width) : bucket_width_(bucket_width) {
  RADAR_CHECK_GT(bucket_width, 0);
}

void MaxSeries::Add(SimTime t, double value) {
  RADAR_CHECK_GE(t, 0);
  const auto idx = static_cast<std::size_t>(t / bucket_width_);
  if (idx >= maxima_.size()) {
    maxima_.resize(idx + 1, 0.0);
    present_.resize(idx + 1, false);
  }
  if (!present_[idx] || value > maxima_[idx]) {
    maxima_[idx] = value;
    present_[idx] = true;
  }
}

SimTime MaxSeries::BucketStart(std::size_t i) const {
  return static_cast<SimTime>(i) * bucket_width_;
}

double MaxSeries::MaxAt(std::size_t i) const {
  RADAR_CHECK_LT(i, maxima_.size());
  return maxima_[i];
}

double MaxSeries::MaxOver(std::size_t first, std::size_t last) const {
  if (maxima_.empty()) return 0.0;
  last = std::min(last, maxima_.size() - 1);
  double best = 0.0;
  for (std::size_t i = first; i <= last; ++i) best = std::max(best, maxima_[i]);
  return best;
}

double MaxSeries::OverallMax() const {
  return maxima_.empty() ? 0.0 : MaxOver(0, maxima_.size() - 1);
}

double SampledSeries::MeanSince(SimTime from) const {
  double total = 0.0;
  std::int64_t count = 0;
  for (const Sample& s : samples_) {
    if (s.t >= from) {
      total += s.value;
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

double SampledSeries::LastValue() const {
  RADAR_CHECK(!samples_.empty());
  return samples_.back().value;
}

double AdjustmentTimeSeconds(const BucketedSeries& traffic, double tolerance,
                             double equilibrium_fraction, int stable_buckets,
                             std::size_t max_buckets) {
  RADAR_CHECK_GE(tolerance, 1.0);
  RADAR_CHECK_GT(equilibrium_fraction, 0.0);
  RADAR_CHECK_LE(equilibrium_fraction, 1.0);
  RADAR_CHECK_GE(stable_buckets, 1);
  const std::size_t n = std::min(traffic.num_buckets(), max_buckets);
  if (n == 0) return -1.0;
  const auto tail = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n) * equilibrium_fraction));
  const double equilibrium = traffic.MeanRateOver(n - tail, n - 1);
  const double threshold = tolerance * equilibrium;
  // First bucket from which the rate stays at or below the threshold for
  // `stable_buckets` in a row.
  int run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (traffic.RateAt(i) <= threshold) {
      ++run;
      if (run >= stable_buckets) {
        const std::size_t settle = i + 1 - static_cast<std::size_t>(run);
        return SimToSeconds(traffic.BucketStart(settle));
      }
    } else {
      run = 0;
    }
  }
  return -1.0;
}

}  // namespace radar::metrics
