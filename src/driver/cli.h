// Command-line front end for the simulator (used by tools/radar_sim).
//
// Flags map onto SimConfig; parsing is a pure function so it can be unit
// tested. Unknown flags, malformed values, and structural violations are
// reported as errors, not aborts.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "driver/config.h"

namespace radar::driver {

struct CliOptions {
  SimConfig config;
  /// Empty = built-in UUNET backbone; a "ts:"/"sf:" generator spec
  /// (net/topology_gen.h) or a topology file path otherwise.
  std::string topology_file;
  std::string trace_file;     ///< empty = workload-generated requests
  std::string json_file;      ///< empty = no JSON report artefact
  /// Fault plan file (fault/fault_plan.h text format); empty = perfect
  /// world. Loaded by the tool, not the parser, so ParseCli stays pure.
  std::string fault_plan_file;
  /// Experiment-engine worker threads (0 = hardware concurrency). One run
  /// uses one thread; the flag exists so scripted multi-seed sweeps share
  /// the bench binaries' interface.
  int jobs = 1;
  bool print_series = false;
  bool show_help = false;
};

struct CliError {
  std::string message;
};

/// Parses argv-style arguments (excluding argv[0]). Returns options or an
/// error describing the first offending flag.
std::optional<CliOptions> ParseCli(const std::vector<std::string>& args,
                                   CliError* error);

/// The --help text.
std::string CliUsage();

}  // namespace radar::driver
