// Simulation configuration (Table 1 defaults).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "baselines/selectors.h"
#include "common/types.h"
#include "core/params.h"
#include "fault/fault_plan.h"
#include "net/latency_oracle.h"

namespace radar::driver {

enum class WorkloadKind : std::uint8_t {
  kZipf,
  kHotSites,
  kHotPages,
  kRegional,
  kUniform,
};

const char* WorkloadKindName(WorkloadKind kind);

/// How client requests are spaced at each gateway. The paper generates
/// requests "at a constant rate" and its distribution analysis assumes
/// regular inter-spacing, so deterministic is the default; Poisson is
/// available for robustness experiments.
enum class ArrivalProcess : std::uint8_t {
  kDeterministic,
  kPoisson,
};

struct SimConfig {
  // ---- Table 1 ----
  ObjectId num_objects = 10'000;
  std::int64_t object_bytes = 12 * 1024;      ///< 12 KB pages
  double node_request_rate = 40.0;            ///< req/s per gateway node
  double server_capacity = 200.0;             ///< req/s per host
  core::ProtocolParams protocol;               ///< thresholds, watermarks,
                                               ///< intervals (Table 1)

  // ---- Run control ----
  SimTime duration = SecondsToSim(3600.0);
  std::uint64_t seed = 1;
  WorkloadKind workload = WorkloadKind::kZipf;
  ArrivalProcess arrivals = ArrivalProcess::kDeterministic;

  // ---- Policies under test ----
  baselines::DistributionPolicy distribution =
      baselines::DistributionPolicy::kRadar;
  baselines::PlacementPolicy placement = baselines::PlacementPolicy::kRadar;

  /// Redirectors (hash-partitioned); the paper's simulation uses one at
  /// the most central node.
  int num_redirectors = 1;

  /// Stagger hosts' placement rounds across the interval (autonomous hosts
  /// are not synchronized). Disable to reproduce lock-step decisions.
  bool stagger_placement = true;

  /// Shard-parallel execution (DESIGN.md §14): 0 = the serial engine
  /// (default; the golden-pinned mode). K >= 1 partitions the hosts into
  /// K shards and runs the request path under conservative time windows —
  /// reports are byte-identical for every K >= 1, but form a distinct
  /// mode from shards == 0. Requires a time-invariant workload, no trace
  /// replay, and a distribution policy other than round-robin.
  int shards = 0;

  /// Routing/latency backend (net/latency_oracle.h): kAuto picks dense
  /// below kSparseAutoThreshold nodes and the sparse gateway-pivot
  /// oracle at or above it; kDense / kSparse force a backend.
  net::OracleKind oracle = net::OracleKind::kAuto;

  /// Initial home of each object; defaults (when null) to the paper's
  /// round-robin "object i is assigned to node i mod N".
  std::function<NodeId(ObjectId)> initial_home;

  /// Relative-power weight per host (Sec. 2's heterogeneity extension).
  /// Scales both the FCFS service capacity and the protocol's watermark
  /// comparisons. Null = homogeneous (1.0 everywhere).
  std::function<double(NodeId)> host_weight;

  /// Storage capacity per host in objects (0 = unlimited); the storage
  /// component of the Sec. 2.1 vector load metric. Null = unlimited.
  std::function<std::int64_t(NodeId)> host_storage;

  // ---- Fault injection (DESIGN.md §11) ----

  /// What goes wrong during the run; an empty plan (the default) is the
  /// perfect world and perturbs nothing — the fault layer is not even
  /// constructed, so fault-free runs stay byte-identical to the golden.
  fault::FaultPlan faults;

  /// Minimum live replicas per object (0 = no floor). When > 0, the
  /// redirectors refuse drops below the floor and a repair pass at the
  /// placement cadence re-replicates objects that faults pushed under it.
  int replica_floor = 0;

  /// True when any fault machinery must be active this run.
  bool FaultsEnabled() const { return replica_floor > 0 || !faults.Empty(); }

  // ---- Metrics ----
  SimTime metric_bucket = SecondsToSim(60.0);
  /// Host whose load estimates are tracked for Fig. 8b; kInvalidNode
  /// disables tracking.
  NodeId tracked_host = 0;

  /// Switches to the paper's high-load watermarks (Fig. 9).
  void ApplyHighLoad() {
    protocol.high_watermark = 50.0;
    protocol.low_watermark = 40.0;
  }

  /// Aborts on structurally invalid values.
  void Check() const;
};

}  // namespace radar::driver
