// The event-driven hosting-platform simulation (Sec. 6.1's model).
//
// Wires together: a backbone topology with shortest-path routing, per-node
// request generation, redirector-based request distribution, FCFS hosts,
// periodic load measurement, and the autonomous placement rounds — and
// collects every metric the paper's evaluation reports.
//
// Request lifecycle:
//   1. A client request materializes at its gateway g (the paper routes
//      clients to their closest gateway; we generate directly at gateways).
//   2. It travels g -> redirector -> chosen host as small control messages
//      (propagation delay only; request bytes are negligible, Sec. 6.1).
//   3. The host services it FCFS at fixed capacity.
//   4. The response carries the object back along the canonical path
//      host -> g, paying per-hop propagation + serialization, and charging
//      object_bytes per hop to the backbone-bandwidth metric.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "baselines/selectors.h"
#include "core/cluster.h"
#include "core/distance.h"
#include "driver/config.h"
#include "driver/report.h"
#include "fault/availability.h"
#include "fault/fault_injector.h"
#include "fault/repair.h"
#include "net/link_stats.h"
#include "net/net_model.h"
#include "net/topology.h"
#include "net/uunet.h"
#include "sim/fcfs_server.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "workload/trace.h"
#include "workload/workload.h"

namespace radar::driver {

/// Adapts the network model to the protocol's proximity oracle. Exposes
/// hop-distance rows so hot loops (ChooseReplica) read distances with
/// plain indexing instead of a virtual call per candidate. DistanceRow
/// may return nullptr on the sparse backend for sources without a row
/// (the DistanceOracle contract; callers fall back to Distance).
class RoutingDistance final : public core::DistanceOracle {
 public:
  explicit RoutingDistance(const net::NetModel& net) : net_(net) {}
  std::int32_t Distance(NodeId from, NodeId to) const override {
    return net_.HopDistance(from, to);
  }
  const std::int32_t* DistanceRow(NodeId from) const override {
    return net_.HopRow(from);
  }

 private:
  const net::NetModel& net_;
};

class HostingSimulation {
 public:
  /// Builds the paper's UUNET-style backbone.
  explicit HostingSimulation(SimConfig config);

  /// Runs on a caller-provided topology.
  HostingSimulation(SimConfig config, net::Topology topology);

  /// Replaces the config-selected workload with a custom one (e.g. a
  /// DemandShiftWorkload). Must be called before Run().
  void SetWorkload(std::unique_ptr<workload::Workload> workload);

  /// Trace-driven mode: replays the given request stream instead of
  /// generating one from a workload. Every referenced gateway must be a
  /// gateway of the topology and every object id must be below
  /// num_objects. Must be called before Run().
  void SetTrace(workload::RequestTrace trace);

  /// Executes the simulation and returns the collected report. Run() may
  /// be called once per instance. With config.shards == 0 this is the
  /// serial engine — StepUntil(duration) followed by Finalize(). With
  /// config.shards >= 1 the request path runs shard-parallel
  /// (driver/shard_exec.h) under conservative time windows; results are
  /// byte-identical for every shard count but form their own mode (the
  /// serial golden is pinned to shards == 0).
  RunReport Run();

  /// Supplies the thread pool that runs shard windows (sharded mode only;
  /// see runner/shard_executor.h). Null — the default — executes windows
  /// inline, which is the byte-identical single-threaded reference.
  void set_window_executor(sim::WindowExecutor* executor) {
    window_executor_ = executor;
  }

  /// Incremental execution: advances simulated time to `until` (clamped to
  /// the configured duration), setting up the schedule on the first call.
  /// Useful for inspecting the platform mid-run.
  void StepUntil(SimTime until);

  /// Completes the run (advances to the configured duration if needed) and
  /// returns the report. May be called once.
  RunReport Finalize();

  // Post-run (or pre-run) inspection.
  const net::Topology& topology() const { return topology_; }
  /// The routing/latency backend in force right now (dense: rebuilt at
  /// every applied link fault epoch; sparse: patched incrementally).
  const net::NetModel& net_model() const { return net_; }
  /// Dense-backend shorthand (aborts on the sparse backend).
  const net::RoutingTable& routing() const { return net_.routing(); }
  const net::PathLatencyMatrix& latency() const {
    return net_.dense_latency();
  }
  /// The fault layer, or nullptr when the run's FaultPlan is empty.
  const fault::FaultInjector* fault_injector() const {
    return injector_.get();
  }
  const core::Cluster& cluster() const { return *cluster_; }
  core::Cluster& cluster() { return *cluster_; }
  NodeId redirector_home(int index = 0) const;

  /// The FCFS queue model of a host (admitted counts, backlog).
  const sim::FcfsServer& server(NodeId n) const;

  /// Per-directed-link byte accounting (responses + object copies).
  const net::LinkStats& link_stats() const { return link_stats_; }

  /// Current simulated time.
  SimTime Now() const { return sim_.Now(); }

  /// Discrete events executed so far (throughput benchmarking). Includes
  /// every shard queue's events after a sharded run.
  std::uint64_t events_executed() const {
    return sim_.events_executed() + shard_events_executed_;
  }

 private:
  friend class ShardedExecution;

  void InstallTransferHook();
  void BuildWorkloadFromConfig();
  void PlaceInitialObjects();
  void ScheduleArrivals();
  void ScheduleMeasurement();
  void SchedulePlacement();
  void ScheduleCensus();

  // Fault layer (only active when config_.FaultsEnabled()).
  void SetupFaultLayer();
  void OnHostCrash(NodeId h, SimTime t);
  void OnHostRecover(NodeId h, SimTime t);
  void RebuildRouting(SimTime t);
  bool HostUpNow(NodeId n) const {
    return injector_ == nullptr || injector_->HostUp(n);
  }

  /// Batched deterministic arrival generation for one gateway (DESIGN.md
  /// §12). Pre-draws blocks of objects from the gateway's RNG — nothing
  /// else consumes that stream in deterministic-arrival mode, and the
  /// workload must be time-invariant, so every arrival still receives
  /// exactly the value it would have drawn at its own firing time. Each
  /// gateway runs as a pinned event-queue stream: one armed firing per
  /// arrival, re-armed after dispatch (the periodic-task push order), so
  /// every arrival occupies the same place in the global (when, seq)
  /// event order as a per-event Schedule — the golden report is
  /// unchanged — while skipping the closure slab entirely.
  struct GatewayArrivals {
    static constexpr std::uint32_t kBatch = 256;
    HostingSimulation* owner = nullptr;
    NodeId gateway = kInvalidNode;
    SimTime period = 0;
    std::uint32_t stream = 0;  ///< pinned stream id (sim::Simulator)
    std::uint32_t next = 0;    ///< consumed prefix of objects
    std::uint32_t filled = 0;  ///< drawn prefix of objects
    ObjectId objects[kBatch];
    void Fire();
  };

  void GenerateRequest(NodeId gateway, SimTime now);
  void DispatchRequest(ObjectId x, NodeId gateway, SimTime now);
  void ScheduleTraceRecord(std::size_t index);
  NodeId ChooseHost(ObjectId x, NodeId gateway);
  void ArriveAtHost(ObjectId x, NodeId gateway, NodeId host, SimTime t0,
                    int redirects);
  void CompleteService(ObjectId x, NodeId gateway, NodeId host, SimTime t0);

  /// Propagation-only latency along the canonical path a -> b (O(1):
  /// precomputed matrix lookup).
  SimTime ControlPathLatency(NodeId a, NodeId b) const;
  /// Store-and-forward latency of one object along the path a -> b (O(1):
  /// the object size is fixed per run, so the matrix is exact).
  SimTime TransferPathLatency(NodeId a, NodeId b) const;

  SimConfig config_;
  net::Topology topology_;
  /// Routing + per-pair latency backend (dense matrices or the sparse
  /// gateway-pivot oracle; see net/net_model.h).
  net::NetModel net_;
  RoutingDistance distance_;
  std::vector<NodeId> redirector_homes_;
  std::unique_ptr<core::Cluster> cluster_;
  std::unique_ptr<workload::Workload> workload_;
  std::optional<workload::RequestTrace> trace_;
  sim::Simulator sim_;
  std::vector<sim::FcfsServer> servers_;
  net::LinkStats link_stats_;
  std::vector<Rng> node_rngs_;
  /// Poisson-arrival tick closures; owned here (not by the event queue) so
  /// the self-rescheduling lambdas capture a raw pointer to a stable slot
  /// instead of a shared self-handle, which would be a reference cycle.
  std::vector<std::unique_ptr<sim::EventFn>> arrival_ticks_;
  /// Batched arrival generators (deterministic arrivals + time-invariant
  /// workload only); owned here so Fire closures capture a stable pointer.
  std::vector<std::unique_ptr<GatewayArrivals>> gateway_arrivals_;
  baselines::RoundRobinSelector round_robin_;
  baselines::ClosestSelector closest_;
  /// Fault machinery; all null in a perfect world so fault-free runs pay
  /// nothing and schedule nothing extra (golden determinism guarantee).
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::AvailabilityTracker> availability_;
  std::unique_ptr<fault::ReplicaRepairer> repairer_;
  std::unique_ptr<RunReport> report_;
  /// Scratch for canonical-path walks (CompleteService, transfer hook);
  /// serial-engine-only state, reused so the hot path never allocates.
  std::vector<NodeId> path_scratch_;
  /// Shard-queue event total, folded in by a sharded run's merge.
  std::uint64_t shard_events_executed_ = 0;
  sim::WindowExecutor* window_executor_ = nullptr;
  bool started_ = false;
  bool finalized_ = false;
};

}  // namespace radar::driver
