// Host partitioning for shard-parallel execution (DESIGN.md §14).
//
// The conservative window scheduler's lookahead is the minimum control
// latency between nodes owned by *different* shards, so throughput rises
// with the cut's minimum edge: nearby nodes should share a shard. The
// partitioner is a greedy agglomerative min-edge-cut: node pairs are
// visited in ascending control-latency order (Kruskal style) and merged
// into the same component while the component count exceeds K, subject to
// a balance cap of ceil(N / K) nodes per shard. Ties break on node ids,
// so the partition is a pure function of the latency matrix — no RNG, no
// iteration-order dependence.
//
// The assignment is advisory for performance only: the engine's results
// are byte-identical for every partition (see sim/shard.h), so the tests
// may use any K without re-pinning goldens.
#pragma once

#include <vector>

#include "common/types.h"
#include "net/gateway_pivot.h"
#include "net/latency_oracle.h"

namespace radar::driver {

/// Assigns each node in [0, num_nodes) a shard in [0, num_shards).
/// Shards are labeled in order of their lowest-numbered member, every
/// shard is non-empty, and no shard exceeds ceil(num_nodes / num_shards)
/// nodes. Requires 1 <= num_shards <= num_nodes. Scans all ordered
/// pairs — right for dense-backend scales only.
std::vector<int> PartitionHosts(const net::LatencyOracle& latency,
                                std::int32_t num_nodes, int num_shards);

/// Sparse-backend partitioner: nodes grouped by their pivot label (the
/// nearest rowed source — a locality cluster by construction) and the
/// groups dealt sequentially into balanced shards. O(n), no pair scan.
/// Same contract as PartitionHosts (labels, non-empty, balance cap).
std::vector<int> PartitionHostsByPivot(const net::GatewayPivotOracle& oracle,
                                       int num_shards);

}  // namespace radar::driver
