#include "driver/shard_exec.h"

#include <algorithm>

#include "common/check.h"
#include "driver/shard_plan.h"

namespace radar::driver {
namespace {

/// Mirrors the serial engine's redirect cap (hosting_simulation.cpp).
constexpr int kMaxRedirects = 3;

/// Request-leg kinds (ReqMsg::kind).
constexpr std::uint8_t kDecide = 0;    ///< bound for the object's redirector
constexpr std::uint8_t kArrive = 1;    ///< bound for the chosen host
constexpr std::uint8_t kComplete = 2;  ///< the host's own completion

/// Reserved key space per shard queue: keys are (arrival index * nodes +
/// gateway) << 4 plus a leg counter, and EventQueue admits reservations
/// up to 2^39 — comfortably above any configurable run length.
constexpr std::uint64_t kKeyBound = std::uint64_t{1} << 39;

/// Legs per request chain: arrival(0), decide(1), arrive(2), plus two per
/// redirect retry, then complete — at most 3 + 2 * kMaxRedirects + 1 = 10,
/// so the 4-bit leg field never wraps into the next request's key.
constexpr std::uint64_t kLegBits = 4;

}  // namespace

ShardedExecution::ShardedExecution(HostingSimulation* owner, int num_shards,
                                   sim::WindowExecutor* executor)
    : o_(*owner), num_shards_(num_shards), executor_(executor) {
  RADAR_CHECK(owner != nullptr);
  RADAR_CHECK_GE(num_shards_, 1);
  RADAR_CHECK_LE(num_shards_, o_.topology_.num_nodes());
}

ShardedExecution::~ShardedExecution() = default;

std::uint64_t ShardedExecution::KeyBase(std::uint64_t n,
                                        NodeId gateway) const {
  const std::uint64_t nodes =
      static_cast<std::uint64_t>(o_.topology_.num_nodes());
  const std::uint64_t base =
      (n * nodes + static_cast<std::uint64_t>(gateway)) << kLegBits;
  RADAR_CHECK_LT(base, kKeyBound - (std::uint64_t{1} << kLegBits));
  return base;
}

RunReport ShardedExecution::Run() {
  RADAR_CHECK_MSG(!o_.started_, "sharded Run() on a started simulation");
  RADAR_CHECK_MSG(!o_.trace_.has_value(),
                  "trace replay is serial-only (one global record stream)");
  RADAR_CHECK_MSG(
      o_.config_.distribution != baselines::DistributionPolicy::kRoundRobin,
      "round-robin distribution keeps shared per-object selector state; "
      "run it serially (--shards 0)");
  o_.started_ = true;
  if (o_.workload_ == nullptr) o_.BuildWorkloadFromConfig();
  RADAR_CHECK_MSG(o_.workload_->time_invariant(),
                  "sharded execution requires a time-invariant workload "
                  "(gateway draws must commute with window boundaries)");
  o_.PlaceInitialObjects();
  o_.InstallTransferHook();
  // Global tracks keep the serial engine's scheduling order on the
  // coordinator queue; only the request path moves to the shards.
  o_.ScheduleMeasurement();
  o_.SchedulePlacement();
  o_.ScheduleCensus();
  if (o_.config_.FaultsEnabled()) o_.SetupFaultLayer();
  if (o_.injector_ != nullptr) {
    last_topology_epoch_ = o_.injector_->topology_epoch();
  }

  shard_of_ = o_.net_.sparse()
                  ? PartitionHostsByPivot(o_.net_.sparse_oracle(), num_shards_)
                  : PartitionHosts(o_.net_.dense_latency(),
                                   o_.topology_.num_nodes(), num_shards_);
  shards_.reserve(static_cast<std::size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    shards_.push_back(std::make_unique<ShardState>(o_.topology_.graph()));
    shards_.back()->sim.ReserveKeySpace(kKeyBound);
  }
  mail_.Reset(num_shards_);
  ScheduleShardArrivals();
  RecomputeLookahead();

  sim::RunConservativeWindows(*this, num_shards_, o_.config_.duration,
                              executor_);

  MergeShardState();
  return o_.Finalize();
}

void ShardedExecution::ScheduleShardArrivals() {
  const double rate = o_.config_.node_request_rate;
  for (const NodeId g : o_.topology_.GatewayNodes()) {
    gateways_.push_back(std::make_unique<Gateway>());
    Gateway* gw = gateways_.back().get();
    gw->node = g;
    gw->shard = shard_of_[static_cast<std::size_t>(g)];
    gw->rate = rate;
    if (o_.injector_ != nullptr) {
      gw->fate = o_.injector_->MakeRequestFateStream(
          static_cast<std::uint64_t>(g));
    }
    ShardState& ss = *shards_[static_cast<std::size_t>(gw->shard)];
    SimTime first;
    if (o_.config_.arrivals == ArrivalProcess::kDeterministic) {
      gw->period = static_cast<SimTime>(
          static_cast<double>(kMicrosPerSecond) / rate);
      // Same phase shift as the serial engine: gateways stay desynced.
      first = gw->period * static_cast<SimTime>(g) /
              static_cast<SimTime>(o_.topology_.num_nodes());
    } else {
      const double gap =
          o_.node_rngs_[static_cast<std::size_t>(g)].NextExponential(1.0 /
                                                                     rate);
      first = SecondsToSim(gap);
    }
    ss.sim.ScheduleKeyedAt(first, KeyBase(0, g),
                           [this, gw] { FireArrival(gw); });
  }
}

// RADAR_HOT: sharded request path (arrival -> decide -> arrive -> complete)
void ShardedExecution::FireArrival(Gateway* gwp) {
  Gateway& gw = *gwp;
  ShardState& ss = *shards_[static_cast<std::size_t>(gw.shard)];
  const SimTime at = ss.sim.Now();
  const std::uint64_t n = gw.n++;
  const std::uint64_t base = KeyBase(n, gw.node);
  Rng& rng = o_.node_rngs_[static_cast<std::size_t>(gw.node)];
  ObjectId x;
  if (o_.config_.arrivals == ArrivalProcess::kDeterministic) {
    if (gw.next == gw.filled) {
      constexpr std::uint32_t kBatch =
          static_cast<std::uint32_t>(sizeof(gw.objects) / sizeof(ObjectId));
      o_.workload_->FillBatch(gw.node, at, rng, gw.objects, kBatch);
      gw.next = 0;
      gw.filled = kBatch;
    }
    x = gw.objects[gw.next++];
    ss.sim.ScheduleKeyedAt(at + gw.period, KeyBase(n + 1, gw.node),
                           [this, gwp] { FireArrival(gwp); });
  } else {
    // Mirrors the serial Poisson tick: object draw, then the gap draw,
    // both from the gateway's own stream.
    x = o_.workload_->NextObject(gw.node, at, rng);
    const double gap = rng.NextExponential(1.0 / gw.rate);
    ss.sim.ScheduleKeyedAt(at + SecondsToSim(gap), KeyBase(n + 1, gw.node),
                           [this, gwp] { FireArrival(gwp); });
  }

  // The gateway owns its request-fate stream, so a dropped request dies
  // here — it never reaches the redirector (the serial engine draws at
  // dispatch; either way the draw order is arrival order per gateway).
  fault::FaultInjector::RequestFate fate;
  if (o_.injector_ != nullptr) fate = gw.fate.Next();
  if (fate.dropped) {
    ++ss.failed_requests;
    return;
  }
  const NodeId redirector =
      o_.cluster_->redirectors().For(x).home_node();
  ReqMsg m;
  m.t0 = at;
  m.x = x;
  m.gateway = gw.node;
  m.kind = kDecide;
  Send(gw.shard, shard_of_[static_cast<std::size_t>(redirector)],
       at + o_.net_.ControlRow(gw.node)[redirector] + fate.delay,
       base + 1, m);
}

void ShardedExecution::Dispatch(std::uint64_t key, const ReqMsg& m) {
  switch (m.kind) {
    case kDecide:
      HandleDecide(key, m);
      return;
    case kArrive:
      HandleArrive(key, m);
      return;
    case kComplete:
      HandleComplete(key, m);
      return;
  }
  RADAR_CHECK(false);
}

void ShardedExecution::HandleDecide(std::uint64_t key, const ReqMsg& m) {
  core::Redirector& rd = o_.cluster_->redirectors().For(m.x);
  const NodeId home = rd.home_node();
  const int s = shard_of_[static_cast<std::size_t>(home)];
  ShardState& ss = *shards_[static_cast<std::size_t>(s)];
  NodeId host;
  if (o_.config_.distribution == baselines::DistributionPolicy::kRadar) {
    // First decision resolves the gateway's dense hop row (as the serial
    // dispatcher does); retries take the oracle path (as serial retries
    // do). Both read the same table.
    host = m.redirects == 0
               ? rd.ChooseReplica(m.x, m.gateway, o_.net_.HopRow(m.gateway))
               : rd.ChooseReplica(m.x, m.gateway);
  } else {
    const std::vector<NodeId> hosts = rd.ReplicaHosts(m.x);
    host = hosts.empty() ? kInvalidNode : o_.closest_.Choose(m.gateway, hosts);
  }
  if (host == kInvalidNode) {
    ++ss.failed_requests;  // no live replica anywhere
    return;
  }
  ReqMsg fwd = m;
  fwd.kind = kArrive;
  fwd.host = host;
  Send(s, shard_of_[static_cast<std::size_t>(host)],
       ss.sim.Now() + o_.net_.ControlRow(home)[host], key + 1, fwd);
}

void ShardedExecution::HandleArrive(std::uint64_t key, const ReqMsg& m) {
  const int s = shard_of_[static_cast<std::size_t>(m.host)];
  ShardState& ss = *shards_[static_cast<std::size_t>(s)];
  const SimTime now = ss.sim.Now();
  if (!o_.HostUpNow(m.host) ||
      !o_.cluster_->host(m.host).HasObject(m.x)) {
    // The replica vanished while the leg was in flight: re-route via the
    // redirector. Unlike the serial engine (which re-chooses at the dead
    // host's clock), the retry decision runs on the redirector's shard at
    // its own arrival time — same total latency, and the choice order is
    // the redirector queue's (when, key) order, invariant under K.
    if (m.redirects >= kMaxRedirects) {
      ++ss.dropped_requests;
      return;
    }
    const NodeId redirector =
        o_.cluster_->redirectors().For(m.x).home_node();
    ReqMsg retry = m;
    retry.kind = kDecide;
    retry.host = kInvalidNode;
    retry.redirects = static_cast<std::uint8_t>(m.redirects + 1);
    // Scalar lookup: m.host is an arbitrary node, which the sparse
    // backend keeps no row for (same value the row would hold).
    Send(s, shard_of_[static_cast<std::size_t>(redirector)],
         now + o_.net_.Control(m.host, redirector), key + 1, retry);
    return;
  }
  const SimTime completion =
      o_.servers_[static_cast<std::size_t>(m.host)].Admit(now);
  ReqMsg done = m;
  done.kind = kComplete;
  // Fault state is frozen during windows, so the epoch read is safe from
  // any shard thread; the completion compares it to detect a crash that a
  // later global window applies while the request is queued.
  done.epoch =
      o_.injector_ != nullptr ? o_.injector_->crash_epoch(m.host) : 0;
  Send(s, s, completion, key + 1, done);
}

void ShardedExecution::HandleComplete(std::uint64_t key, const ReqMsg& m) {
  const int s = shard_of_[static_cast<std::size_t>(m.host)];
  ShardState& ss = *shards_[static_cast<std::size_t>(s)];
  const SimTime now = ss.sim.Now();
  if (o_.injector_ != nullptr &&
      o_.injector_->crash_epoch(m.host) != m.epoch) {
    ++ss.failed_requests;  // the host died with the request queued
    return;
  }
  core::HostAgent& agent = o_.cluster_->host(m.host);
  ss.path_scratch.clear();
  o_.net_.AppendPath(m.host, m.gateway, &ss.path_scratch);
  const std::vector<NodeId>& path = ss.path_scratch;
  agent.RecordServicedIfHosted(m.x, path);
  const std::int64_t byte_hops =
      o_.config_.object_bytes * static_cast<std::int64_t>(path.size() - 1);
  ss.link_stats.RecordPath(path, o_.config_.object_bytes);
  const double total_latency =
      SimToSeconds(now - m.t0 + o_.net_.Transfer(m.host, m.gateway));
  // Floats commit to the per-shard log; the post-run merge adds them in
  // (when, key) order so the sums are byte-identical for every K.
  ss.commits.push_back(Commit{now, key, total_latency, byte_hops});
}
// RADAR_HOT_END

void ShardedExecution::Send(int src, int dst, SimTime when,
                            std::uint64_t key, const ReqMsg& m) {
  if (src == dst) {
    ShardState& ss = *shards_[static_cast<std::size_t>(dst)];
    ss.sim.ScheduleKeyedAt(when, key, [this, key, m] { Dispatch(key, m); });
    return;
  }
  // Conservative safety: an event executing at t > done can reach another
  // shard no earlier than t + lookahead > end. A violation here means the
  // lookahead is stale or the partition metric disagrees with the latency
  // actually charged.
  RADAR_CHECK_GT(when, window_end_);
  mail_.Send(src, dst, when, key, m);
}

SimTime ShardedExecution::NextGlobalTime() {
  return o_.sim_.pending_events() == 0 ? sim::kNoEventTime
                                       : o_.sim_.NextEventTime();
}

void ShardedExecution::RunGlobalsUntil(SimTime t) {
  o_.sim_.RunUntil(t);
  if (o_.injector_ != nullptr &&
      o_.injector_->topology_epoch() != last_topology_epoch_) {
    // A link fault epoch rebuilt routing and the latency matrix; the
    // conservative lookahead must follow the new control latencies.
    last_topology_epoch_ = o_.injector_->topology_epoch();
    RecomputeLookahead();
  }
}

SimTime ShardedExecution::Lookahead() { return lookahead_; }

void ShardedExecution::BeginWindow(SimTime end) { window_end_ = end; }

void ShardedExecution::RunShardWindow(int shard, SimTime end) {
  shards_[static_cast<std::size_t>(shard)]->sim.RunUntil(end);
}

void ShardedExecution::Barrier(SimTime end) {
  for (int dst = 0; dst < num_shards_; ++dst) {
    ShardState& ss = *shards_[static_cast<std::size_t>(dst)];
    mail_.DrainColumn(
        dst, [this, end, &ss](const sim::ShardEnvelope<ReqMsg>& e) {
          RADAR_CHECK_GT(e.when, end);
          const std::uint64_t key = e.seq;
          const ReqMsg m = e.payload;
          ss.sim.ScheduleKeyedAt(e.when, key,
                                 [this, key, m] { Dispatch(key, m); });
        });
  }
}

void ShardedExecution::RecomputeLookahead() {
  const SimTime min_cross = o_.net_.MinCrossPartitionControl(shard_of_);
  if (min_cross == net::LatencyOracle::kNoCrossPartition) {
    lookahead_ = sim::kUnboundedLookahead;  // K = 1: no horizon constraint
    return;
  }
  RADAR_CHECK_GT(min_cross, 0);
  lookahead_ = min_cross;
}

void ShardedExecution::MergeShardState() {
  std::vector<Commit> all;
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->commits.size();
  all.reserve(total);
  std::uint64_t shard_events = 0;
  for (const auto& s : shards_) {
    all.insert(all.end(), s->commits.begin(), s->commits.end());
    o_.report_->availability.failed_requests += s->failed_requests;
    o_.report_->dropped_requests += s->dropped_requests;
    o_.link_stats_.Merge(s->link_stats);
    shard_events += s->sim.events_executed();
  }
  std::sort(all.begin(), all.end(), [](const Commit& a, const Commit& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.key < b.key;  // keys are globally unique: a total order
  });
  for (const Commit& c : all) {
    o_.report_->traffic.AddPayload(c.when, c.byte_hops);
    o_.report_->latency.Add(c.when, c.latency_s);
    o_.report_->latency_stats.Add(c.latency_s);
    ++o_.report_->total_requests;
  }
  if (o_.injector_ != nullptr) {
    for (const auto& gw : gateways_) {
      o_.injector_->AbsorbRequestFateCounters(gw->fate);
    }
  }
  o_.shard_events_executed_ = shard_events;
}

}  // namespace radar::driver
