#include "driver/report_json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <system_error>

#include "common/check.h"

namespace radar::driver {

JsonValue::JsonValue(double value) {
  if (std::isfinite(value)) {
    kind_ = Kind::kDouble;
    double_ = value;
  } else {
    kind_ = Kind::kNull;
  }
}

bool JsonValue::bool_value() const {
  RADAR_CHECK(kind_ == Kind::kBool);
  return bool_;
}

std::int64_t JsonValue::int_value() const {
  RADAR_CHECK(kind_ == Kind::kInt);
  return int_;
}

double JsonValue::double_value() const {
  RADAR_CHECK(is_number());
  return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
}

const std::string& JsonValue::string_value() const {
  RADAR_CHECK(kind_ == Kind::kString);
  return string_;
}

const JsonValue::Array& JsonValue::array() const {
  RADAR_CHECK(kind_ == Kind::kArray);
  return array_;
}

JsonValue::Array& JsonValue::array() {
  RADAR_CHECK(kind_ == Kind::kArray);
  return array_;
}

const JsonValue::Object& JsonValue::object() const {
  RADAR_CHECK(kind_ == Kind::kObject);
  return object_;
}

JsonValue::Object& JsonValue::object() {
  RADAR_CHECK(kind_ == Kind::kObject);
  return object_;
}

void JsonValue::Append(JsonValue value) {
  RADAR_CHECK(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
}

JsonValue& JsonValue::Set(std::string key, JsonValue value) {
  RADAR_CHECK(kind_ == Kind::kObject);
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::int64_t value, std::string* out) {
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, result.ptr);
}

void AppendNumber(double value, std::string* out) {
  // Shortest round-trip representation: deterministic, locale-free, and
  // re-parses to the same bits.
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, result.ptr);
}

void DumpTo(const JsonValue& v, int indent, int depth, std::string* out) {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.bool_value() ? "true" : "false";
      break;
    case JsonValue::Kind::kInt:
      AppendNumber(v.int_value(), out);
      break;
    case JsonValue::Kind::kDouble:
      AppendNumber(v.double_value(), out);
      break;
    case JsonValue::Kind::kString:
      AppendEscaped(v.string_value(), out);
      break;
    case JsonValue::Kind::kArray: {
      if (v.array().empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.array()) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        DumpTo(item, indent, depth + 1, out);
      }
      newline(depth);
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      if (v.object().empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const JsonValue::Member& member : v.object()) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        AppendEscaped(member.first, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        DumpTo(member.second, indent, depth + 1, out);
      }
      newline(depth);
      out->push_back('}');
      break;
    }
  }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse(std::string* error) {
    auto value = ParseValue();
    SkipWhitespace();
    if (value && pos_ != text_.size()) {
      value = std::nullopt;
      error_ = "trailing characters after document";
    }
    if (!value && error != nullptr) {
      *error = error_ + " (at offset " + std::to_string(pos_) + ")";
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.compare(pos_, literal.size(), literal) == 0) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> Fail(std::string message) {
    error_ = std::move(message);
    return std::nullopt;
  }

  std::optional<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        return Fail("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        return Fail("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        return Fail("invalid literal");
      default:
        return ParseNumber();
    }
  }

  std::optional<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      auto key = ParseString();
      if (!key) return std::nullopt;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' in object");
      auto value = ParseValue();
      if (!value) return std::nullopt;
      obj.Set(key->string_value(), std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Fail("expected ',' or '}' in object");
    }
  }

  std::optional<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      auto value = ParseValue();
      if (!value) return std::nullopt;
      arr.Append(std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Fail("expected ',' or ']' in array");
    }
  }

  /// Encodes one code point as UTF-8.
  static void AppendUtf8(std::uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  std::optional<std::uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return std::nullopt;
    std::uint32_t value = 0;
    const auto result =
        std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, value, 16);
    if (result.ec != std::errc() || result.ptr != text_.data() + pos_ + 4) {
      return std::nullopt;
    }
    pos_ += 4;
    return value;
  }

  std::optional<JsonValue> ParseString() {
    if (!Consume('"')) return Fail("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return JsonValue(std::move(out));
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          auto cp = ParseHex4();
          if (!cp) return Fail("invalid \\u escape");
          // Surrogate pair: a high surrogate must be followed by \uDCxx.
          if (*cp >= 0xd800 && *cp <= 0xdbff) {
            if (!ConsumeLiteral("\\u")) return Fail("lone high surrogate");
            const auto low = ParseHex4();
            if (!low || *low < 0xdc00 || *low > 0xdfff) {
              return Fail("invalid low surrogate");
            }
            AppendUtf8(0x10000 + ((*cp - 0xd800) << 10) + (*low - 0xdc00),
                       &out);
          } else if (*cp >= 0xdc00 && *cp <= 0xdfff) {
            return Fail("lone low surrogate");
          } else {
            AppendUtf8(*cp, &out);
          }
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    return Fail("unterminated string");
  }

  std::optional<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
      // sign consumed
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!is_double) {
      std::int64_t value = 0;
      const auto result =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (result.ec == std::errc() &&
          result.ptr == token.data() + token.size()) {
        return JsonValue(value);
      }
      // Out of int64 range: fall through to double.
    }
    double value = 0.0;
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (result.ec != std::errc() || result.ptr != token.data() + token.size()) {
      return Fail("invalid number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

JsonValue DoubleArray(const std::vector<double>& values) {
  JsonValue arr = JsonValue::MakeArray();
  for (const double v : values) arr.Append(JsonValue(v));
  return arr;
}

}  // namespace

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(*this, indent, 0, &out);
  return out;
}

std::optional<JsonValue> ParseJson(std::string_view text, std::string* error) {
  return Parser(text).Parse(error);
}

JsonValue ReportJson(const RunReport& report) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("schema", std::string(kReportSchema));
  doc.Set("workload", report.workload_name);
  doc.Set("distribution", report.distribution_name);
  doc.Set("placement", report.placement_name);
  doc.Set("duration_us", report.duration);
  doc.Set("bucket_width_us", report.bucket_width);

  JsonValue latency_stats = JsonValue::MakeObject();
  latency_stats.Set("count", report.latency_stats.count())
      .Set("mean_s", report.latency_stats.mean())
      .Set("stddev_s", report.latency_stats.stddev())
      .Set("min_s", report.latency_stats.min())
      .Set("max_s", report.latency_stats.max());

  JsonValue totals = JsonValue::MakeObject();
  totals.Set("requests", report.total_requests)
      .Set("dropped_requests", report.dropped_requests)
      .Set("geo_migrations", report.geo_migrations)
      .Set("geo_replications", report.geo_replications)
      .Set("offload_migrations", report.offload_migrations)
      .Set("offload_replications", report.offload_replications)
      .Set("affinity_drops", report.affinity_drops)
      .Set("relocations", report.TotalRelocations())
      .Set("object_copies", report.object_copies)
      .Set("payload_byte_hops", report.traffic.total_payload())
      .Set("overhead_byte_hops", report.traffic.total_overhead())
      .Set("final_avg_replicas", report.final_avg_replicas)
      .Set("latency", std::move(latency_stats));
  doc.Set("totals", std::move(totals));

  // Emitted only for faulty runs so fault-free JSON stays byte-identical
  // to the committed golden (DESIGN.md §11).
  if (report.faults_enabled) {
    const AvailabilityReport& a = report.availability;
    JsonValue availability = JsonValue::MakeObject();
    availability.Set("failed_requests", a.failed_requests)
        .Set("host_crashes", a.host_crashes)
        .Set("host_recoveries", a.host_recoveries)
        .Set("link_downs", a.link_downs)
        .Set("link_ups", a.link_ups)
        .Set("suppressed_link_faults", a.suppressed_link_faults)
        .Set("request_messages_dropped", a.request_messages_dropped)
        .Set("request_messages_delayed", a.request_messages_delayed)
        .Set("transfer_messages_lost", a.transfer_messages_lost)
        .Set("transfer_retries", a.transfer_retries)
        .Set("acks_lost", a.acks_lost)
        .Set("aborted_relocations", a.aborted_relocations)
        .Set("rpcs_to_dead_hosts", a.rpcs_to_dead_hosts)
        .Set("replicas_restored", a.replicas_restored)
        .Set("floor_violations", a.floor_violations)
        .Set("unavailability_windows", a.unavailability_windows)
        .Set("objects_unavailable_at_end", a.objects_unavailable_at_end)
        .Set("objects_lost", a.objects_lost)
        .Set("unavailable_object_seconds", a.unavailable_object_seconds)
        .Set("mean_time_to_repair_s", a.mean_time_to_repair_s)
        .Set("max_time_to_repair_s", a.max_time_to_repair_s);
    doc.Set("availability", std::move(availability));
  }

  JsonValue derived = JsonValue::MakeObject();
  derived.Set("initial_bandwidth_rate", report.InitialBandwidthRate())
      .Set("equilibrium_bandwidth_rate", report.EquilibriumBandwidthRate())
      .Set("bandwidth_reduction_percent", report.BandwidthReductionPercent())
      .Set("initial_latency_s", report.InitialLatency())
      .Set("equilibrium_latency_s", report.EquilibriumLatency())
      .Set("latency_reduction_percent", report.LatencyReductionPercent())
      .Set("overhead_percent", report.traffic.OverheadPercent())
      .Set("adjustment_time_s", report.AdjustmentTimeSeconds());
  doc.Set("derived", std::move(derived));

  JsonValue latency_sums = JsonValue::MakeArray();
  JsonValue latency_counts = JsonValue::MakeArray();
  for (std::size_t i = 0; i < report.latency.num_buckets(); ++i) {
    latency_sums.Append(JsonValue(report.latency.SumAt(i)));
    latency_counts.Append(JsonValue(report.latency.CountAt(i)));
  }
  JsonValue max_load = JsonValue::MakeArray();
  for (std::size_t i = 0; i < report.max_load.num_buckets(); ++i) {
    max_load.Append(JsonValue(report.max_load.MaxAt(i)));
  }
  JsonValue replicas = JsonValue::MakeArray();
  for (const metrics::Sample& s : report.avg_replicas.samples()) {
    JsonValue sample = JsonValue::MakeObject();
    sample.Set("t_us", s.t).Set("value", s.value);
    replicas.Append(std::move(sample));
  }
  JsonValue tracked = JsonValue::MakeArray();
  for (const metrics::TrackedLoadSample& s : report.tracked_host_loads) {
    JsonValue sample = JsonValue::MakeObject();
    sample.Set("t_us", s.t)
        .Set("measured", s.measured)
        .Set("upper_estimate", s.upper_estimate)
        .Set("lower_estimate", s.lower_estimate);
    tracked.Append(std::move(sample));
  }

  JsonValue series = JsonValue::MakeObject();
  series.Set("payload_byte_hops", DoubleArray(report.traffic.payload().sums()))
      .Set("overhead_byte_hops", DoubleArray(report.traffic.overhead().sums()))
      .Set("overhead_percent", DoubleArray(report.traffic.OverheadPercentSeries()))
      .Set("latency_sum_s", std::move(latency_sums))
      .Set("latency_count", std::move(latency_counts))
      .Set("max_load", std::move(max_load))
      .Set("avg_replicas", std::move(replicas))
      .Set("tracked_host_load", std::move(tracked));
  doc.Set("series", std::move(series));
  return doc;
}

bool WriteJsonFile(const std::string& path, const JsonValue& value,
                   std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << value.Dump(/*indent=*/2) << "\n";
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

}  // namespace radar::driver
