#include "driver/shard_plan.h"

#include <algorithm>

#include "common/check.h"

namespace radar::driver {
namespace {

/// Union-find over node ids with path halving; roots carry component size.
struct Components {
  explicit Components(std::int32_t n)
      : parent(static_cast<std::size_t>(n)),
        size(static_cast<std::size_t>(n), 1) {
    for (std::int32_t i = 0; i < n; ++i) {
      parent[static_cast<std::size_t>(i)] = i;
    }
  }

  std::int32_t Find(std::int32_t v) {
    while (parent[static_cast<std::size_t>(v)] != v) {
      parent[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
      v = parent[static_cast<std::size_t>(v)];
    }
    return v;
  }

  /// Merges the components of a and b (the lower root wins, keeping
  /// labels deterministic). Requires distinct roots.
  void Union(std::int32_t ra, std::int32_t rb) {
    if (rb < ra) std::swap(ra, rb);
    parent[static_cast<std::size_t>(rb)] = ra;
    size[static_cast<std::size_t>(ra)] += size[static_cast<std::size_t>(rb)];
  }

  std::vector<std::int32_t> parent;
  std::vector<std::int32_t> size;
};

struct Pair {
  SimTime control;
  NodeId a;
  NodeId b;
};

}  // namespace

std::vector<int> PartitionHosts(const net::LatencyOracle& latency,
                                std::int32_t num_nodes, int num_shards) {
  RADAR_CHECK_GT(num_nodes, 0);
  RADAR_CHECK_GE(num_shards, 1);
  RADAR_CHECK_LE(num_shards, num_nodes);

  const std::int32_t cap = (num_nodes + num_shards - 1) / num_shards;

  std::vector<Pair> pairs;
  pairs.reserve(static_cast<std::size_t>(num_nodes) *
                static_cast<std::size_t>(num_nodes - 1) / 2);
  for (NodeId a = 0; a < num_nodes; ++a) {
    for (NodeId b = a + 1; b < num_nodes; ++b) {
      pairs.push_back(Pair{latency.Control(a, b), a, b});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& x, const Pair& y) {
    if (x.control != y.control) return x.control < y.control;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });

  Components comps(num_nodes);
  std::int32_t count = num_nodes;
  for (const Pair& p : pairs) {
    if (count <= num_shards) break;
    const std::int32_t ra = comps.Find(p.a);
    const std::int32_t rb = comps.Find(p.b);
    if (ra == rb) continue;
    if (comps.size[static_cast<std::size_t>(ra)] +
            comps.size[static_cast<std::size_t>(rb)] >
        cap) {
      continue;  // keep shards balanced; a cheaper merge may still exist
    }
    comps.Union(ra, rb);
    --count;
  }

  // The balance cap can strand more than K components (e.g. many capped
  // shards plus singletons). Close the gap by merging the two smallest
  // components regardless of cap — still deterministic (sizes, then root
  // ids, break ties).
  while (count > num_shards) {
    std::int32_t best_a = -1;
    std::int32_t best_b = -1;
    for (std::int32_t v = 0; v < num_nodes; ++v) {
      if (comps.Find(v) != v) continue;
      const std::int32_t sz = comps.size[static_cast<std::size_t>(v)];
      const auto smaller = [&](std::int32_t root, std::int32_t than) {
        if (than < 0) return true;
        const std::int32_t tsz = comps.size[static_cast<std::size_t>(than)];
        return sz < tsz || (sz == tsz && root < than);
      };
      if (smaller(v, best_a)) {
        best_b = best_a;
        best_a = v;
      } else if (smaller(v, best_b)) {
        best_b = v;
      }
    }
    comps.Union(best_a, best_b);
    --count;
  }

  // Label shards by first-node order so the assignment reads naturally
  // and is stable across runs.
  std::vector<int> shard_of(static_cast<std::size_t>(num_nodes), -1);
  std::vector<int> label_of_root(static_cast<std::size_t>(num_nodes), -1);
  int next_label = 0;
  for (NodeId v = 0; v < num_nodes; ++v) {
    const std::int32_t root = comps.Find(v);
    int& label = label_of_root[static_cast<std::size_t>(root)];
    if (label < 0) label = next_label++;
    shard_of[static_cast<std::size_t>(v)] = label;
  }
  RADAR_CHECK_EQ(next_label, num_shards);
  return shard_of;
}

std::vector<int> PartitionHostsByPivot(const net::GatewayPivotOracle& oracle,
                                       int num_shards) {
  const std::int32_t num_nodes = oracle.num_nodes();
  RADAR_CHECK_GE(num_shards, 1);
  RADAR_CHECK_LE(num_shards, num_nodes);

  // Concatenate the pivot clusters in order of each cluster's lowest
  // member (first-seen order over an ascending node scan), members
  // ascending within a cluster. Nodes sharing a pivot are mutually close
  // — the pivot forest is a nearest-rowed-source Voronoi partition — so
  // keeping a cluster contiguous keeps cheap edges inside one shard.
  std::vector<std::vector<NodeId>> clusters;
  std::vector<std::int32_t> cluster_of_pivot(
      static_cast<std::size_t>(num_nodes), -1);
  for (NodeId v = 0; v < num_nodes; ++v) {
    const NodeId pivot = oracle.PivotOf(v);
    std::int32_t& c = cluster_of_pivot[static_cast<std::size_t>(pivot)];
    if (c < 0) {
      c = static_cast<std::int32_t>(clusters.size());
      clusters.emplace_back();
    }
    clusters[static_cast<std::size_t>(c)].push_back(v);
  }

  // Deal the sequence into K shards sized base or base+1 (first
  // num_nodes % K shards take the extra): every shard non-empty, none
  // above ceil(N / K), labels in first-node order by construction.
  const std::int32_t base = num_nodes / num_shards;
  const std::int32_t rem = num_nodes % num_shards;
  std::vector<int> shard_of(static_cast<std::size_t>(num_nodes), -1);
  int shard = 0;
  std::int32_t in_shard = 0;
  for (const std::vector<NodeId>& cluster : clusters) {
    for (const NodeId v : cluster) {
      const std::int32_t target = base + (shard < rem ? 1 : 0);
      if (in_shard == target) {
        ++shard;
        in_shard = 0;
      }
      shard_of[static_cast<std::size_t>(v)] = shard;
      ++in_shard;
    }
  }
  RADAR_CHECK_EQ(shard, num_shards - 1);

  // Relabel in first-node order (a split cluster can carry a low node id
  // into a late shard), matching PartitionHosts' labeling contract.
  std::vector<int> label(static_cast<std::size_t>(num_shards), -1);
  int next_label = 0;
  for (NodeId v = 0; v < num_nodes; ++v) {
    int& l = label[static_cast<std::size_t>(shard_of[static_cast<std::size_t>(
        v)])];
    if (l < 0) l = next_label++;
    shard_of[static_cast<std::size_t>(v)] = l;
  }
  RADAR_CHECK_EQ(next_label, num_shards);
  return shard_of;
}

}  // namespace radar::driver
