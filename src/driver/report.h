// The result of one simulation run: every series and summary the paper's
// figures and tables report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "metrics/collector.h"

namespace radar::driver {

/// Availability accounting for faulty runs (DESIGN.md §11). Filled only
/// when the run had fault machinery active; a fault-free run's report
/// never mentions it (summary and JSON output are byte-identical to the
/// pre-fault-layer format).
struct AvailabilityReport {
  std::int64_t failed_requests = 0;  ///< no live replica / dropped leg
  std::int64_t host_crashes = 0;
  std::int64_t host_recoveries = 0;
  std::int64_t link_downs = 0;
  std::int64_t link_ups = 0;
  std::int64_t suppressed_link_faults = 0;
  std::int64_t request_messages_dropped = 0;
  std::int64_t request_messages_delayed = 0;
  std::int64_t transfer_messages_lost = 0;
  std::int64_t transfer_retries = 0;
  std::int64_t acks_lost = 0;
  std::int64_t aborted_relocations = 0;
  std::int64_t rpcs_to_dead_hosts = 0;
  std::int64_t replicas_restored = 0;   ///< floor-repair copies made
  std::int64_t floor_violations = 0;    ///< object-passes still under floor
  std::int64_t unavailability_windows = 0;
  std::int64_t objects_unavailable_at_end = 0;
  std::int64_t objects_lost = 0;  ///< conservation check; always 0
  double unavailable_object_seconds = 0.0;
  double mean_time_to_repair_s = 0.0;
  double max_time_to_repair_s = 0.0;
};

struct RunReport {
  explicit RunReport(SimTime bucket_width);

  std::string workload_name;
  std::string distribution_name;
  std::string placement_name;
  SimTime duration = 0;
  SimTime bucket_width;

  // ---- Series (Figs. 6-9) ----
  metrics::TrafficLedger traffic;             ///< payload + overhead byte-hops
  BucketedSeries latency;                     ///< response latency samples (s)
  metrics::MaxSeries max_load;                ///< max host load per bucket
  metrics::SampledSeries avg_replicas;        ///< replica census over time
  std::vector<metrics::TrackedLoadSample> tracked_host_loads;  ///< Fig. 8b

  // ---- Totals ----
  OnlineStats latency_stats;
  std::int64_t total_requests = 0;
  std::int64_t dropped_requests = 0;  ///< exceeded redirect retries (races)
  std::int64_t geo_migrations = 0;
  std::int64_t geo_replications = 0;
  std::int64_t offload_migrations = 0;
  std::int64_t offload_replications = 0;
  std::int64_t affinity_drops = 0;
  std::int64_t object_copies = 0;  ///< physical transfers (overhead source)
  double final_avg_replicas = 0.0;

  // ---- Availability (faulty runs only) ----
  bool faults_enabled = false;
  AvailabilityReport availability;

  // ---- Derived figures ----

  /// Mean payload-bandwidth rate (bytes*hops/sec) over the leading
  /// `buckets` buckets — the "before adaptation" level.
  double InitialBandwidthRate(std::size_t buckets = 2) const;

  /// Mean payload-bandwidth rate over the trailing quarter of the run.
  double EquilibriumBandwidthRate() const;

  /// Percent reduction from initial to equilibrium bandwidth.
  double BandwidthReductionPercent() const;

  double InitialLatency(std::size_t buckets = 2) const;
  double EquilibriumLatency() const;
  double LatencyReductionPercent() const;

  /// Table 2's adjustment time (seconds; negative = never settled).
  double AdjustmentTimeSeconds() const;

  std::int64_t TotalRelocations() const {
    return geo_migrations + geo_replications + offload_migrations +
           offload_replications;
  }

  /// Number of buckets fully inside the run (excludes the near-empty
  /// partial bucket at exactly t == duration).
  std::size_t CompleteBuckets(std::size_t available) const;

  /// Human-readable run summary.
  void PrintSummary(std::ostream& os) const;

  /// Per-bucket series table: time, bandwidth rate, overhead %, mean
  /// latency, max load — the columns Figs. 6-8 plot.
  void PrintSeries(std::ostream& os) const;
};

}  // namespace radar::driver
