#include "driver/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace radar::driver {

RunReport::RunReport(SimTime width)
    : bucket_width(width),
      traffic(width),
      latency(width),
      max_load(width) {}

std::size_t RunReport::CompleteBuckets(std::size_t available) const {
  // A run of exactly k bucket-widths leaves bucket k holding only events
  // at t == duration; derived rates exclude that near-empty partial
  // bucket.
  if (duration <= 0) return available;
  const auto full = static_cast<std::size_t>(duration / bucket_width);
  return std::min(available, std::max<std::size_t>(full, 1));
}

double RunReport::InitialBandwidthRate(std::size_t buckets) const {
  if (traffic.payload().num_buckets() == 0 || buckets == 0) return 0.0;
  return traffic.payload().MeanRateOver(0, buckets - 1);
}

double RunReport::EquilibriumBandwidthRate() const {
  const std::size_t n = CompleteBuckets(traffic.payload().num_buckets());
  if (n == 0) return 0.0;
  const std::size_t tail = std::max<std::size_t>(1, n / 4);
  return traffic.payload().MeanRateOver(n - tail, n - 1);
}

double RunReport::BandwidthReductionPercent() const {
  const double initial = InitialBandwidthRate();
  if (initial <= 0.0) return 0.0;
  return 100.0 * (initial - EquilibriumBandwidthRate()) / initial;
}

double RunReport::InitialLatency(std::size_t buckets) const {
  const std::size_t n = latency.num_buckets();
  if (n == 0 || buckets == 0) return 0.0;
  double total = 0.0;
  std::int64_t count = 0;
  for (std::size_t i = 0; i < std::min(buckets, n); ++i) {
    total += latency.SumAt(i);
    count += latency.CountAt(i);
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

double RunReport::EquilibriumLatency() const {
  const std::size_t n = CompleteBuckets(latency.num_buckets());
  if (n == 0) return 0.0;
  const std::size_t tail = std::max<std::size_t>(1, n / 4);
  double total = 0.0;
  std::int64_t count = 0;
  for (std::size_t i = n - tail; i < n; ++i) {
    total += latency.SumAt(i);
    count += latency.CountAt(i);
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

double RunReport::LatencyReductionPercent() const {
  const double initial = InitialLatency();
  if (initial <= 0.0) return 0.0;
  return 100.0 * (initial - EquilibriumLatency()) / initial;
}

double RunReport::AdjustmentTimeSeconds() const {
  return metrics::AdjustmentTimeSeconds(
      traffic.payload(), 1.10, 0.25, 3,
      CompleteBuckets(traffic.payload().num_buckets()));
}

void RunReport::PrintSummary(std::ostream& os) const {
  os << "run: workload=" << workload_name
     << " distribution=" << distribution_name
     << " placement=" << placement_name
     << " duration=" << SimToSeconds(duration) << "s\n";
  os << "  requests serviced: " << total_requests
     << " (dropped: " << dropped_requests << ")\n";
  os << std::fixed << std::setprecision(1);
  os << "  bandwidth (byte-hops/s): initial=" << InitialBandwidthRate()
     << " equilibrium=" << EquilibriumBandwidthRate() << " reduction="
     << BandwidthReductionPercent() << "%\n";
  os << std::setprecision(4);
  os << "  latency (s): initial=" << InitialLatency()
     << " equilibrium=" << EquilibriumLatency();
  os << std::setprecision(1);
  os << " reduction=" << LatencyReductionPercent() << "%\n";
  os << "  overhead: " << std::setprecision(2) << traffic.OverheadPercent()
     << "% of total traffic (" << object_copies << " object copies)\n";
  os << std::setprecision(2);
  os << "  relocations: geo-migr=" << geo_migrations
     << " geo-repl=" << geo_replications
     << " load-migr=" << offload_migrations
     << " load-repl=" << offload_replications
     << " drops=" << affinity_drops << "\n";
  os << "  avg replicas/object: " << final_avg_replicas
     << ", max host load: " << max_load.OverallMax() << " req/s\n";
  const double adj = AdjustmentTimeSeconds();
  if (adj >= 0.0) {
    os << "  adjustment time: " << FormatMinutes(adj) << " (min:sec)\n";
  } else {
    os << "  adjustment time: did not settle\n";
  }
  if (faults_enabled) {
    const AvailabilityReport& a = availability;
    os << "  faults: crashes=" << a.host_crashes
       << " recoveries=" << a.host_recoveries
       << " link-downs=" << a.link_downs << " link-ups=" << a.link_ups
       << " suppressed=" << a.suppressed_link_faults << "\n";
    os << "  message faults: req-drop=" << a.request_messages_dropped
       << " req-delay=" << a.request_messages_delayed
       << " xfer-lost=" << a.transfer_messages_lost
       << " retries=" << a.transfer_retries << " ack-lost=" << a.acks_lost
       << " aborted=" << a.aborted_relocations
       << " dead-rpc=" << a.rpcs_to_dead_hosts << "\n";
    os << std::setprecision(2);
    os << "  availability: failed-requests=" << a.failed_requests
       << " windows=" << a.unavailability_windows
       << " unavailable-object-s=" << a.unavailable_object_seconds
       << " mean-ttr=" << a.mean_time_to_repair_s << "s"
       << " max-ttr=" << a.max_time_to_repair_s << "s\n";
    os << "  repair: restored=" << a.replicas_restored
       << " floor-violations=" << a.floor_violations
       << " unavailable-at-end=" << a.objects_unavailable_at_end
       << " objects-lost=" << a.objects_lost << "\n";
  }
}

void RunReport::PrintSeries(std::ostream& os) const {
  const std::vector<double> overhead_pct = traffic.OverheadPercentSeries();
  const std::size_t n = std::max({traffic.payload().num_buckets(),
                                  latency.num_buckets(),
                                  max_load.num_buckets()});
  os << "  t(s)   bw(byte-hops/s)  overhead%  latency(s)  maxload(req/s)\n";
  for (std::size_t i = 0; i < n; ++i) {
    const double t = SimToSeconds(static_cast<SimTime>(i) * bucket_width);
    const double bw = i < traffic.payload().num_buckets()
                          ? traffic.payload().RateAt(i)
                          : 0.0;
    const double ovh = i < overhead_pct.size() ? overhead_pct[i] : 0.0;
    const double lat = i < latency.num_buckets() ? latency.MeanAt(i) : 0.0;
    const double ml = i < max_load.num_buckets() ? max_load.MaxAt(i) : 0.0;
    os << std::fixed << std::setprecision(0) << std::setw(6) << t
       << std::setw(17) << bw << std::setprecision(2) << std::setw(11) << ovh
       << std::setprecision(4) << std::setw(12) << lat << std::setprecision(1)
       << std::setw(15) << ml << "\n";
  }
}

}  // namespace radar::driver
