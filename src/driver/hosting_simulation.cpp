#include "driver/hosting_simulation.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "driver/shard_exec.h"

namespace radar::driver {
namespace {

constexpr int kMaxRedirects = 3;

std::vector<NodeId> PickRedirectorHomes(const net::NetModel& net, int count) {
  // The paper co-locates the redirector "with a node whose average distance
  // in hops to other nodes is minimum"; additional redirectors take the
  // next-most-central nodes. On the sparse backend centrality is measured
  // from the gateway rows (identical ranking on all-gateway graphs).
  const std::vector<NodeId> by_centrality = net.NodesByCentrality();
  RADAR_CHECK_GE(count, 1);
  RADAR_CHECK_LE(static_cast<std::size_t>(count), by_centrality.size());
  return {by_centrality.begin(), by_centrality.begin() + count};
}

}  // namespace

HostingSimulation::HostingSimulation(SimConfig config)
    : HostingSimulation(std::move(config), net::MakeUunetBackbone()) {}

HostingSimulation::HostingSimulation(SimConfig config, net::Topology topology)
    : config_(std::move(config)),
      topology_(std::move(topology)),
      net_(topology_, config_.object_bytes, config_.oracle),
      distance_(net_),
      link_stats_(topology_.graph()),
      closest_(distance_) {
  config_.Check();
  redirector_homes_ = PickRedirectorHomes(net_, config_.num_redirectors);
  // Redirector homes join the sparse oracle's rowed sources: the dispatch
  // path reads their control rows (a no-op on the dense backend).
  net_.AddRowSources(redirector_homes_);
  cluster_ = std::make_unique<core::Cluster>(
      topology_.num_nodes(), distance_, config_.protocol, redirector_homes_);
  report_ = std::make_unique<RunReport>(config_.metric_bucket);

  Rng root(config_.seed);
  node_rngs_.reserve(static_cast<std::size_t>(topology_.num_nodes()));
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    node_rngs_.push_back(root.Fork(static_cast<std::uint64_t>(n)));
  }
  servers_.reserve(static_cast<std::size_t>(topology_.num_nodes()));
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    const double weight = config_.host_weight ? config_.host_weight(n) : 1.0;
    RADAR_CHECK_GT(weight, 0.0);
    cluster_->host(n).set_weight(weight);
    if (config_.host_storage) {
      cluster_->host(n).set_storage_capacity(config_.host_storage(n));
    }
    servers_.emplace_back(config_.server_capacity * weight);
  }

  if (!config_.faults.Empty()) {
    fault::FaultInjector::Hooks hooks;
    hooks.on_host_crash = [this](NodeId h, SimTime t) { OnHostCrash(h, t); };
    hooks.on_host_recover = [this](NodeId h, SimTime t) {
      OnHostRecover(h, t);
    };
    hooks.on_topology_change = [this](SimTime t) { RebuildRouting(t); };
    hooks.on_link_change = [this](std::size_t link_index, bool up) {
      // The sparse oracle invalidates incrementally per link event; the
      // dense backend waits for the batch's RebuildRouting instead.
      if (net_.sparse()) {
        net_.OnLinkChange(static_cast<std::int32_t>(link_index), up);
      }
    };
    injector_ = std::make_unique<fault::FaultInjector>(
        config_.faults, topology_.graph(), &sim_, config_.seed,
        std::move(hooks));
    cluster_->set_liveness([this](NodeId n) { return injector_->HostUp(n); });
    cluster_->set_rpc_filter(
        [this](NodeId, NodeId to, core::CreateObjMethod method, ObjectId) {
          return injector_->FateForCreateObj(to, method);
        });
  }
}

NodeId HostingSimulation::redirector_home(int index) const {
  RADAR_CHECK_GE(index, 0);
  RADAR_CHECK_LT(static_cast<std::size_t>(index), redirector_homes_.size());
  return redirector_homes_[static_cast<std::size_t>(index)];
}

void HostingSimulation::SetWorkload(
    std::unique_ptr<workload::Workload> workload) {
  RADAR_CHECK(!started_);
  RADAR_CHECK_NE(workload, nullptr);
  RADAR_CHECK_EQ(workload->num_objects(), config_.num_objects);
  workload_ = std::move(workload);
}

void HostingSimulation::BuildWorkloadFromConfig() {
  const ObjectId n = config_.num_objects;
  switch (config_.workload) {
    case WorkloadKind::kZipf:
      workload_ = std::make_unique<workload::ZipfWorkload>(n);
      break;
    case WorkloadKind::kHotSites:
      workload_ = std::make_unique<workload::HotSitesWorkload>(
          n, topology_.num_nodes(), 0.9, config_.seed ^ 0x5157ULL);
      break;
    case WorkloadKind::kHotPages:
      workload_ = std::make_unique<workload::HotPagesWorkload>(
          n, 0.1, 0.9, config_.seed ^ 0x9a6eULL);
      break;
    case WorkloadKind::kRegional:
      workload_ = std::make_unique<workload::RegionalWorkload>(n, topology_);
      break;
    case WorkloadKind::kUniform:
      workload_ = std::make_unique<workload::UniformWorkload>(n);
      break;
  }
}

void HostingSimulation::PlaceInitialObjects() {
  // Default: "object i is assigned to node i mod 53" (Sec. 6.1).
  const std::int32_t nodes = topology_.num_nodes();
  const auto home_of = [&](ObjectId x) {
    if (config_.initial_home) {
      const NodeId home = config_.initial_home(x);
      RADAR_CHECK_GE(home, 0);
      RADAR_CHECK_LT(home, nodes);
      return home;
    }
    return x % nodes;
  };
  for (ObjectId x = 0; x < config_.num_objects; ++x) {
    cluster_->PlaceInitialObject(x, home_of(x));
  }
  if (config_.placement == baselines::PlacementPolicy::kFullReplication) {
    for (ObjectId x = 0; x < config_.num_objects; ++x) {
      const NodeId home = home_of(x);
      for (NodeId n = 0; n < nodes; ++n) {
        if (n == home) continue;
        cluster_->host(n).AddInitialReplica(x);
        cluster_->redirectors().For(x).OnReplicaCreated(x, n);
      }
    }
  }
}

SimTime HostingSimulation::ControlPathLatency(NodeId a, NodeId b) const {
  // Per-link propagation delay; control payloads are negligible. The sum
  // over the canonical path is precomputed (net/latency_oracle.h).
  return net_.Control(a, b);
}

SimTime HostingSimulation::TransferPathLatency(NodeId a, NodeId b) const {
  // Per-link propagation + serialization of one fixed-size object,
  // precomputed with the same per-link arithmetic as the path walk it
  // replaced (bit-identical events; see the golden determinism test).
  return net_.Transfer(a, b);
}

void HostingSimulation::SetTrace(workload::RequestTrace trace) {
  RADAR_CHECK(!started_);
  RADAR_CHECK_MSG(!trace.empty(), "empty trace");
  RADAR_CHECK_MSG(trace.NumObjectsReferenced() <= config_.num_objects,
                  "trace references objects beyond num_objects");
  for (const workload::TraceRecord& r : trace.records()) {
    RADAR_CHECK_LT(r.gateway, topology_.num_nodes());
    RADAR_CHECK_MSG(topology_.IsGateway(r.gateway),
                    "trace request at a non-gateway node");
  }
  trace_ = std::move(trace);
}

void HostingSimulation::ScheduleTraceRecord(std::size_t index) {
  // One pending event at a time: replaying a multi-million-record trace
  // must not materialize the whole stream in the event queue.
  const auto& records = trace_->records();
  if (index >= records.size()) return;
  const workload::TraceRecord& r = records[index];
  sim_.ScheduleAt(r.t, [this, index, r] {
    DispatchRequest(r.object, r.gateway, r.t);
    ScheduleTraceRecord(index + 1);
  });
}

void HostingSimulation::ScheduleArrivals() {
  if (trace_.has_value()) {
    ScheduleTraceRecord(0);
    return;
  }
  const double rate = config_.node_request_rate;
  for (const NodeId g : topology_.GatewayNodes()) {
    if (config_.arrivals == ArrivalProcess::kDeterministic) {
      const auto period = static_cast<SimTime>(
          static_cast<double>(kMicrosPerSecond) / rate);
      // Phase-shift gateways so arrivals do not synchronize.
      const SimTime phase =
          period * static_cast<SimTime>(g) /
          static_cast<SimTime>(topology_.num_nodes());
      if (workload_->time_invariant()) {
        // Batched generation: same draws, same event order, but the
        // workload's sampling runs over a pre-drawn block instead of one
        // virtual call + RNG round-trip per arrival event.
        gateway_arrivals_.push_back(std::make_unique<GatewayArrivals>());
        GatewayArrivals* arrivals = gateway_arrivals_.back().get();
        arrivals->owner = this;
        arrivals->gateway = g;
        arrivals->period = period;
        arrivals->stream = sim_.AddStream([arrivals] { arrivals->Fire(); });
        sim_.ArmStream(arrivals->stream, phase);
      } else {
        // A time-varying workload (demand shift) must sample at each
        // arrival's own firing time.
        sim_.SchedulePeriodic(phase, period,
                              [this, g](SimTime t) { GenerateRequest(g, t); });
      }
    } else {
      // Self-rescheduling Poisson process. The closure lives in
      // arrival_ticks_; capturing a shared self-handle instead would form
      // a reference cycle and leak (caught by the asan-ubsan preset).
      arrival_ticks_.push_back(std::make_unique<sim::EventFn>());
      auto* tick = arrival_ticks_.back().get();
      *tick = [this, g, rate, tick] {
        GenerateRequest(g, sim_.Now());
        const double gap =
            node_rngs_[static_cast<std::size_t>(g)].NextExponential(1.0 / rate);
        sim_.Schedule(SecondsToSim(gap), [tick] { (*tick)(); });
      };
      const double first =
          node_rngs_[static_cast<std::size_t>(g)].NextExponential(1.0 / rate);
      sim_.Schedule(SecondsToSim(first), [tick] { (*tick)(); });
    }
  }
}

void HostingSimulation::ScheduleMeasurement() {
  const SimTime interval = config_.protocol.measurement_interval;
  sim_.SchedulePeriodic(interval, interval, [this](SimTime t) {
    for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
      if (!HostUpNow(n)) continue;  // a crashed process ticks nothing
      cluster_->TickMeasurement(n, t);
      report_->max_load.Add(t, cluster_->host(n).measured_load());
    }
    if (config_.tracked_host != kInvalidNode &&
        HostUpNow(config_.tracked_host)) {
      const core::HostAgent& agent = cluster_->host(config_.tracked_host);
      report_->tracked_host_loads.push_back(metrics::TrackedLoadSample{
          t, agent.measured_load(), agent.AdmissionLoad(),
          agent.OffloadLoad()});
    }
  });
}

void HostingSimulation::SchedulePlacement() {
  if (config_.placement != baselines::PlacementPolicy::kRadar) return;
  const SimTime interval = config_.protocol.placement_interval;
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    const SimTime offset =
        config_.stagger_placement
            ? interval * static_cast<SimTime>(n + 1) /
                  static_cast<SimTime>(topology_.num_nodes() + 1)
            : 0;
    sim_.SchedulePeriodic(interval + offset, interval, [this, n](SimTime t) {
      if (!HostUpNow(n)) return;  // a crashed process runs no placement
      const core::PlacementStats stats = cluster_->RunPlacement(n, t);
      report_->geo_migrations += stats.geo_migrations;
      report_->geo_replications += stats.geo_replications;
      report_->offload_migrations += stats.offload_migrations;
      report_->offload_replications += stats.offload_replications;
      report_->affinity_drops += stats.affinity_drops;
    });
  }
}

void HostingSimulation::ScheduleCensus() {
  const SimTime interval = config_.protocol.placement_interval;
  sim_.SchedulePeriodic(interval, interval, [this](SimTime t) {
    report_->avg_replicas.Add(t, cluster_->AverageReplicasPerObject());
  });
}

NodeId HostingSimulation::ChooseHost(ObjectId x, NodeId gateway) {
  // Every branch reports kInvalidNode when faults emptied the live replica
  // set — the request has nowhere to go and fails.
  switch (config_.distribution) {
    case baselines::DistributionPolicy::kRadar:
      return cluster_->RouteRequest(x, gateway);
    case baselines::DistributionPolicy::kRoundRobin: {
      const std::vector<NodeId> hosts =
          cluster_->redirectors().For(x).ReplicaHosts(x);
      return hosts.empty() ? kInvalidNode : round_robin_.Choose(x, hosts);
    }
    case baselines::DistributionPolicy::kClosest: {
      const std::vector<NodeId> hosts =
          cluster_->redirectors().For(x).ReplicaHosts(x);
      return hosts.empty() ? kInvalidNode : closest_.Choose(gateway, hosts);
    }
  }
  RADAR_CHECK(false);
  return kInvalidNode;
}

// RADAR_HOT: request dispatch path (arrival -> host -> completion)
void HostingSimulation::GatewayArrivals::Fire() {
  const SimTime at = owner->sim_.Now();
  if (next == filled) {
    Rng& rng = owner->node_rngs_[static_cast<std::size_t>(gateway)];
    owner->workload_->FillBatch(gateway, at, rng, objects, kBatch);
    next = 0;
    filled = kBatch;
  }
  const ObjectId x = objects[next++];
  if (next < filled) {
    // One-arrival lookahead: warm the next object's redirector head while
    // ~a batch-period of other events executes in between.
    const ObjectId nx = objects[next];
    owner->cluster_->redirectors().For(nx).Prefetch(nx);
  }
  // Dispatch before arming the successor: the periodic-task flow this
  // replaces pushed the request's control leg first, and equal-time
  // events fire in sequence-number (push/arm) order.
  owner->DispatchRequest(x, gateway, at);
  owner->sim_.ArmStream(stream, at + period);
}

void HostingSimulation::GenerateRequest(NodeId gateway, SimTime now) {
  DispatchRequest(workload_->NextObject(
                      gateway, now,
                      node_rngs_[static_cast<std::size_t>(gateway)]),
                  gateway, now);
}

void HostingSimulation::DispatchRequest(ObjectId x, NodeId gateway,
                                        SimTime now) {
  // Resolve the object's redirector shard once: the replica choice and
  // the control-leg home node read the same reference. Under the RaDaR
  // policy the gateway's dense hop row is handed to ChooseReplica so the
  // Fig. 2 scan indexes a plain array instead of making a virtual
  // distance call per candidate (same values — the oracle reads the same
  // row). Fetched per dispatch, so a routing rebuild under link faults is
  // picked up immediately.
  core::Redirector& shard = cluster_->redirectors().For(x);
  const NodeId host =
      config_.distribution == baselines::DistributionPolicy::kRadar
          ? shard.ChooseReplica(x, gateway, net_.HopRow(gateway))
          : ChooseHost(x, gateway);
  if (host == kInvalidNode) {
    ++report_->availability.failed_requests;  // no live replica anywhere
    return;
  }
  // Control legs: gateway -> redirector -> host (propagation only). Row
  // pointers skip the per-lookup index checks: gateways and redirector
  // homes are rowed sources on both backends, so the rows exist.
  const NodeId redirector = shard.home_node();
  const SimTime control_in = net_.ControlRow(gateway)[redirector];
  SimTime control = control_in + net_.ControlRow(redirector)[host];
  if (injector_ != nullptr) {
    const fault::FaultInjector::RequestFate fate =
        injector_->FateForRequestLeg();
    if (fate.dropped) {
      ++report_->availability.failed_requests;
      return;
    }
    control += fate.delay;
  }
  sim_.Schedule(control, [this, x, gateway, host, now] {
    ArriveAtHost(x, gateway, host, now, 0);
  });
}

void HostingSimulation::ArriveAtHost(ObjectId x, NodeId gateway, NodeId host,
                                     SimTime t0, int redirects) {
  if (!HostUpNow(host) || !cluster_->host(host).HasObject(x)) {
    // The replica vanished while the request was in flight — a drop race
    // (the redirector removes replicas before they are dropped, so only
    // messages already underway see it) or, under faults, a host that
    // crashed with the request on the wire. Re-route via the redirector.
    if (redirects >= kMaxRedirects) {
      ++report_->dropped_requests;
      return;
    }
    const NodeId redirector = cluster_->redirectors().For(x).home_node();
    const NodeId retry = ChooseHost(x, gateway);
    if (retry == kInvalidNode) {
      ++report_->availability.failed_requests;  // no live replica anywhere
      return;
    }
    const SimTime control = ControlPathLatency(host, redirector) +
                            ControlPathLatency(redirector, retry);
    sim_.Schedule(control, [this, x, gateway, retry, t0, redirects] {
      ArriveAtHost(x, gateway, retry, t0, redirects + 1);
    });
    return;
  }
  const SimTime completion =
      servers_[static_cast<std::size_t>(host)].Admit(sim_.Now());
  // If the host crashes while the request is queued or in service, the
  // response never leaves: the completion compares crash epochs and gives
  // up instead of crediting a dead server.
  const std::uint32_t epoch =
      injector_ != nullptr ? injector_->crash_epoch(host) : 0;
  sim_.ScheduleAt(completion,
                  [this, x, gateway, host, t0, epoch] {
                  if (injector_ != nullptr &&
                      injector_->crash_epoch(host) != epoch) {
                    ++report_->availability.failed_requests;
                    return;
                  }
                  CompleteService(x, gateway, host, t0);
                });
}

void HostingSimulation::CompleteService(ObjectId x, NodeId gateway,
                                        NodeId host, SimTime t0) {
  core::HostAgent& agent = cluster_->host(host);
  // The canonical path, walked into member scratch (allocation-free at
  // steady capacity — per-completion vectors dominated this profile).
  path_scratch_.clear();
  net_.AppendPath(host, gateway, &path_scratch_);
  const std::vector<NodeId>& path = path_scratch_;
  // One record lookup: counts the serviced request against x when it is
  // still hosted, or as untracked when it was dropped while queued.
  agent.RecordServicedIfHosted(x, path);
  const SimTime now = sim_.Now();
  // The path's hop count IS HopDistance(host, gateway) — reuse the
  // vector instead of a second row lookup. (Both come from the same
  // backend, also after a link-fault epoch.)
  const std::int64_t byte_hops =
      config_.object_bytes * static_cast<std::int64_t>(path.size() - 1);
  report_->traffic.AddPayload(now, byte_hops);
  link_stats_.RecordPath(path, config_.object_bytes);
  const SimTime response = TransferPathLatency(host, gateway);
  const double total_latency = SimToSeconds(now - t0 + response);
  report_->latency.Add(now, total_latency);
  report_->latency_stats.Add(total_latency);
  ++report_->total_requests;
}
// RADAR_HOT_END

const sim::FcfsServer& HostingSimulation::server(NodeId n) const {
  RADAR_CHECK_GE(n, 0);
  RADAR_CHECK_LT(static_cast<std::size_t>(n), servers_.size());
  return servers_[static_cast<std::size_t>(n)];
}

void HostingSimulation::StepUntil(SimTime until) {
  RADAR_CHECK(!finalized_);
  if (!started_) {
    started_ = true;
    if (workload_ == nullptr && !trace_.has_value()) {
      BuildWorkloadFromConfig();
    }
    PlaceInitialObjects();
    InstallTransferHook();
    ScheduleArrivals();
    ScheduleMeasurement();
    SchedulePlacement();
    ScheduleCensus();
    // Installed after every fault-free schedule so that enabling faults
    // never reorders the events a perfect-world run would execute.
    if (config_.FaultsEnabled()) SetupFaultLayer();
  }
  sim_.RunUntil(std::min(until, config_.duration));
}

void HostingSimulation::InstallTransferHook() {
  // Object copies (placement, repair) always run on the coordinator
  // track, so the hook writes coordinator-owned stats in both engines.
  cluster_->set_transfer_hook([this](NodeId from, NodeId to, ObjectId,
                                     core::CreateObjMethod, bool copied) {
    if (!copied) return;  // affinity increments move no object bytes
    path_scratch_.clear();
    net_.AppendPath(from, to, &path_scratch_);
    const std::int64_t byte_hops =
        config_.object_bytes *
        static_cast<std::int64_t>(path_scratch_.size() - 1);
    report_->traffic.AddOverhead(sim_.Now(), byte_hops);
    link_stats_.RecordPath(path_scratch_, config_.object_bytes);
    ++report_->object_copies;
  });
}

void HostingSimulation::SetupFaultLayer() {
  availability_ =
      std::make_unique<fault::AvailabilityTracker>(&sim_, config_.num_objects);
  for (ObjectId x = 0; x < config_.num_objects; ++x) {
    availability_->InitObject(
        x, cluster_->redirectors().For(x).ReplicaCount(x));
  }
  for (int i = 0; i < cluster_->redirectors().size(); ++i) {
    cluster_->redirectors().At(i).set_change_listener(availability_.get());
  }
  if (injector_ != nullptr) injector_->Start();
  if (config_.replica_floor > 0) {
    for (int i = 0; i < cluster_->redirectors().size(); ++i) {
      cluster_->redirectors().At(i).set_min_replicas(config_.replica_floor);
    }
    repairer_ = std::make_unique<fault::ReplicaRepairer>(
        cluster_.get(), config_.num_objects, config_.replica_floor,
        [this](NodeId n) { return cluster_->HostLive(n); });
    const SimTime interval = config_.protocol.placement_interval;
    sim_.SchedulePeriodic(interval, interval, [this](SimTime t) {
      const fault::RepairStats stats = repairer_->RunPass(t);
      report_->availability.replicas_restored += stats.replicas_restored;
      report_->availability.floor_violations += stats.floor_violations;
    });
  }
}

void HostingSimulation::OnHostCrash(NodeId h, SimTime t) {
  (void)t;
  // The process died; its disk did not. The redirectors stop routing to it
  // (firing the availability tracker per pruned replica) and the FCFS
  // queue is wiped — queued requests die with the process, which their
  // completion events discover through the crash epoch.
  for (int i = 0; i < cluster_->redirectors().size(); ++i) {
    cluster_->redirectors().At(i).PruneHost(h);
  }
  servers_[static_cast<std::size_t>(h)].Reset();
}

void HostingSimulation::OnHostRecover(NodeId h, SimTime t) {
  // The process restarts with empty counters but finds its replica set on
  // disk; every surviving replica re-registers with its redirector at its
  // pre-crash affinity.
  core::HostAgent& agent = cluster_->host(h);
  agent.ResetAfterCrash(t);
  for (const ObjectId x : agent.Objects()) {
    cluster_->redirectors().For(x).RestoreReplica(x, h, agent.Affinity(x));
  }
}

void HostingSimulation::RebuildRouting(SimTime t) {
  (void)t;
  // A link fault epoch. The sparse backend already patched itself per
  // link event (on_link_change); the dense backend recomputes shortest
  // paths and the latency matrix over the surviving backbone wholesale.
  // The distance oracle reads through net_, so placement and
  // distribution see the new paths immediately either way.
  if (net_.sparse()) return;
  net_.RebuildDense(injector_->LiveGraph());
}

RunReport HostingSimulation::Run() {
  if (config_.shards >= 1) {
    ShardedExecution exec(this, config_.shards, window_executor_);
    return exec.Run();
  }
  StepUntil(config_.duration);
  return Finalize();
}

RunReport HostingSimulation::Finalize() {
  RADAR_CHECK_MSG(!finalized_, "Finalize() may only be called once");
  StepUntil(config_.duration);
  finalized_ = true;

  cluster_->CheckRedirectorSubsetInvariant();
  report_->workload_name =
      workload_ != nullptr ? workload_->name() : "trace";
  report_->distribution_name =
      baselines::DistributionPolicyName(config_.distribution);
  report_->placement_name = baselines::PlacementPolicyName(config_.placement);
  report_->duration = config_.duration;
  report_->final_avg_replicas = cluster_->AverageReplicasPerObject();

  report_->faults_enabled = config_.FaultsEnabled();
  if (report_->faults_enabled) {
    AvailabilityReport& a = report_->availability;
    if (injector_ != nullptr) {
      const fault::FaultCounters& c = injector_->counters();
      a.host_crashes = c.host_crashes;
      a.host_recoveries = c.host_recoveries;
      a.link_downs = c.link_downs;
      a.link_ups = c.link_ups;
      a.suppressed_link_faults = c.suppressed_link_faults;
      a.request_messages_dropped = c.requests_dropped;
      a.request_messages_delayed = c.requests_delayed;
      a.transfer_messages_lost = c.transfer_messages_lost;
      a.transfer_retries = c.transfer_retries;
      a.acks_lost = c.acks_lost;
      a.aborted_relocations = c.aborted_relocations;
      a.rpcs_to_dead_hosts = c.rpcs_to_dead_hosts;
    }
    if (availability_ != nullptr) {
      availability_->FinishAt(sim_.Now());
      a.unavailability_windows = availability_->windows();
      a.objects_unavailable_at_end =
          availability_->objects_unavailable_at_end();
      a.unavailable_object_seconds =
          availability_->unavailable_object_seconds();
      a.mean_time_to_repair_s = availability_->mean_time_to_repair_s();
      a.max_time_to_repair_s = availability_->max_time_to_repair_s();
    }
    // Conservation: crash-recovery semantics (disks survive) and the
    // ack-loss asymmetry (source keeps its copy on any ambiguous outcome)
    // guarantee no fault schedule can destroy the last copy of an object.
    std::int64_t lost = 0;
    for (ObjectId x = 0; x < config_.num_objects; ++x) {
      bool found = false;
      for (NodeId n = 0; n < topology_.num_nodes() && !found; ++n) {
        found = cluster_->host(n).HasObject(x);
      }
      if (!found) ++lost;
    }
    a.objects_lost = lost;
    RADAR_CHECK_EQ(lost, 0);
  }
  return std::move(*report_);
}

}  // namespace radar::driver
