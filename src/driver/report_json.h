// Machine-readable run reports: a minimal JSON document model plus the
// schema-versioned serialization of RunReport.
//
// The model is deliberately tiny (no external dependency) and, above all,
// deterministic: objects preserve insertion order, numbers are formatted
// with shortest-round-trip std::to_chars, and no wall-clock or locale
// state leaks into the output. Serializing the same report twice — or the
// reports of the same sweep executed with different thread counts —
// produces byte-identical text, which is what lets CI diff BENCH_*.json
// artifacts across machines and runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "driver/report.h"

namespace radar::driver {

/// Schema tag written into every serialized RunReport; bump the suffix on
/// any incompatible field change.
inline constexpr std::string_view kReportSchema = "radar.report/1";

/// A JSON document: null, bool, integer, double, string, array, or object.
/// Integers are kept distinct from doubles so 64-bit counters serialize
/// exactly; object members keep insertion order so output is stable.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;  ///< null
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  JsonValue(std::int64_t value) : kind_(Kind::kInt), int_(value) {}
  /// Non-finite doubles have no JSON spelling; they serialize as null.
  JsonValue(double value);
  JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : JsonValue(std::string(value)) {}

  static JsonValue MakeArray() { return JsonValue(Kind::kArray); }
  static JsonValue MakeObject() { return JsonValue(Kind::kObject); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  bool bool_value() const;
  std::int64_t int_value() const;
  /// Numeric value as double (integers convert).
  double double_value() const;
  const std::string& string_value() const;
  const Array& array() const;
  Array& array();
  const Object& object() const;
  Object& object();

  /// Appends to an array value.
  void Append(JsonValue value);

  /// Appends a member to an object value (no de-duplication; callers keep
  /// keys unique). Returns *this so construction chains.
  JsonValue& Set(std::string key, JsonValue value);

  /// Member lookup by key; nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;

  /// Serializes the document. indent == 0 emits compact single-line JSON;
  /// indent > 0 pretty-prints with that many spaces per level. Both forms
  /// are deterministic.
  std::string Dump(int indent = 0) const;

 private:
  explicit JsonValue(Kind kind) : kind_(kind) {}

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a JSON document (UTF-8; supports the full standard grammar,
/// including \uXXXX escapes and surrogate pairs). Numbers without a
/// fraction or exponent that fit std::int64_t parse as integers, the rest
/// as doubles. Returns nullopt and fills *error on malformed input.
std::optional<JsonValue> ParseJson(std::string_view text,
                                   std::string* error = nullptr);

/// Serializes a RunReport: identity, totals, the derived figures of
/// Figs. 6-9 / Table 2, and every per-bucket series. See DESIGN.md §9 for
/// the field-by-field schema.
JsonValue ReportJson(const RunReport& report);

/// Writes `value` pretty-printed to `path` (plus a trailing newline).
/// Returns false and fills *error on I/O failure.
bool WriteJsonFile(const std::string& path, const JsonValue& value,
                   std::string* error = nullptr);

}  // namespace radar::driver
