// Shard-parallel request execution for HostingSimulation (DESIGN.md §14).
//
// ShardedExecution partitions the hosts into K shards (driver/shard_plan.h)
// and runs the request path — arrival, redirector decision, host arrival,
// completion — as explicit messages between shard-owned actors instead of
// closures on one global queue. Each shard owns a sim::Simulator; the
// conservative window scheduler (sim/shard.h) executes the shard queues
// concurrently between barriers, with lookahead equal to the minimum
// cross-shard control latency (net::PathLatencyMatrix). The coordinator
// queue — HostingSimulation's own simulator — keeps every global track:
// measurement, placement, census, repair, and fault events, all of which
// touch cross-shard state and therefore run serially between windows.
//
// Ownership during a window:
//   gateway g   (shard of g)      — arrival batch, node_rngs_[g], fate
//                                   stream, next-arrival scheduling
//   redirector  (shard of home)   — replica choice, request counters
//   host h      (shard of h)      — FCFS queue, HostAgent counters
// Everything else (routing, latency matrix, fault state, workload tables)
// is frozen during windows and only read.
//
// Determinism (byte-identical reports for every K, including K = 1):
//   - every request event carries a model-assigned sequence key derived
//     from (arrival index, gateway, leg) — see event_queue.h's reservation
//     protocol — so each shard queue pops the same (when, key) stream no
//     matter how hosts are partitioned;
//   - cross-shard messages travel through a MailboxGrid and are delivered
//     in merged (when, key) order at barriers;
//   - floating-point accumulation is deferred: completions append
//     {when, key, latency, byte_hops} to per-shard commit logs that are
//     merged in (when, key) order after the run, so every double is added
//     in one canonical order; integer tallies are summed per shard
//     (addition commutes exactly).
//
// Sharded mode is a distinct execution mode, not a re-ordering of the
// serial engine: fate draws move to the gateway (per-gateway streams) and
// retry decisions run at the redirector's own clock. Its reports are
// compared across K values, never against the serial golden.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "driver/hosting_simulation.h"
#include "fault/fault_injector.h"
#include "net/link_stats.h"
#include "sim/mailbox.h"
#include "sim/shard.h"
#include "sim/simulator.h"

namespace radar::driver {

class ShardedExecution final : public sim::WindowModel {
 public:
  /// `owner` must outlive the execution; its Run() must not have started.
  /// `executor` runs each window's shards (null = serial reference).
  ShardedExecution(HostingSimulation* owner, int num_shards,
                   sim::WindowExecutor* executor);
  ~ShardedExecution() override;

  /// Executes the owner's configured run shard-parallel and returns the
  /// finalized report. Requirements beyond the serial engine's: no trace
  /// replay, a time-invariant workload, and a distribution policy without
  /// shared mutable selector state (round-robin is rejected).
  RunReport Run();

  /// The partition in force (index = node, value = shard); for tests.
  const std::vector<int>& shard_of() const { return shard_of_; }

  /// Current conservative lookahead in sim time (tests).
  SimTime lookahead() const { return lookahead_; }

  // ---- sim::WindowModel ----
  SimTime NextGlobalTime() override;
  void RunGlobalsUntil(SimTime t) override;
  SimTime Lookahead() override;
  void BeginWindow(SimTime end) override;
  void RunShardWindow(int shard, SimTime end) override;
  void Barrier(SimTime end) override;

 private:
  /// One request leg in flight between actors. Kinds: a decide leg is
  /// bound for the object's redirector, an arrive leg for a chosen host,
  /// a complete leg for the host's own completion. 32 bytes, so the
  /// delivery closure {this, key, msg} fills EventFn's 48-byte buffer
  /// exactly.
  struct ReqMsg {
    SimTime t0 = 0;               ///< gateway arrival time
    ObjectId x = 0;
    NodeId gateway = kInvalidNode;
    NodeId host = kInvalidNode;   ///< arrive/complete legs only
    std::uint32_t epoch = 0;      ///< crash epoch captured at admission
    std::uint8_t kind = 0;
    std::uint8_t redirects = 0;
  };

  /// One completed request's float contribution, applied in merged
  /// (when, key) order after the run.
  struct Commit {
    SimTime when;
    std::uint64_t key;
    double latency_s;
    std::int64_t byte_hops;
  };

  /// Shard-owned execution state. The simulator, stats, and counters are
  /// touched only by this shard's thread during windows and only by the
  /// coordinator at barriers.
  struct ShardState {
    explicit ShardState(const net::Graph& graph) : link_stats(graph) {}
    sim::Simulator sim;
    net::LinkStats link_stats;
    std::vector<Commit> commits;
    /// Canonical-path scratch (HandleComplete): per-shard, so concurrent
    /// windows never share a buffer, and steady-state walks allocate
    /// nothing.
    std::vector<NodeId> path_scratch;
    std::int64_t failed_requests = 0;
    std::int64_t dropped_requests = 0;
  };

  /// Per-gateway arrival generator (the sharded counterpart of
  /// HostingSimulation::GatewayArrivals): owns the arrival index that
  /// keys every request, the pre-drawn object batch, and the gateway's
  /// request-fate stream.
  struct Gateway {
    NodeId node = kInvalidNode;
    int shard = 0;
    SimTime period = 0;   ///< deterministic arrivals only
    double rate = 0.0;    ///< Poisson arrivals only
    std::uint64_t n = 0;  ///< arrivals fired so far (the key index)
    std::uint32_t next = 0;
    std::uint32_t filled = 0;
    fault::FaultInjector::RequestFateStream fate;
    ObjectId objects[256];
  };

  std::uint64_t KeyBase(std::uint64_t n, NodeId gateway) const;
  void ScheduleShardArrivals();
  void FireArrival(Gateway* gw);
  void Dispatch(std::uint64_t key, const ReqMsg& m);
  void HandleDecide(std::uint64_t key, const ReqMsg& m);
  void HandleArrive(std::uint64_t key, const ReqMsg& m);
  void HandleComplete(std::uint64_t key, const ReqMsg& m);
  /// Routes a leg: same shard -> keyed push into its queue; cross-shard
  /// -> mailbox (delivery must land strictly beyond the window horizon).
  void Send(int src, int dst, SimTime when, std::uint64_t key,
            const ReqMsg& m);
  void RecomputeLookahead();
  void MergeShardState();

  HostingSimulation& o_;
  int num_shards_;
  sim::WindowExecutor* executor_;
  std::vector<int> shard_of_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::unique_ptr<Gateway>> gateways_;
  sim::MailboxGrid<ReqMsg> mail_;
  SimTime lookahead_ = sim::kUnboundedLookahead;
  SimTime window_end_ = -1;
  std::uint64_t last_topology_epoch_ = 0;
};

}  // namespace radar::driver
