#include "driver/cli.h"

#include <cstdlib>
#include <sstream>

namespace radar::driver {
namespace {

bool ParseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool ParseInt(const std::string& value, long long* out) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

std::optional<WorkloadKind> ParseWorkload(const std::string& value) {
  if (value == "zipf") return WorkloadKind::kZipf;
  if (value == "hot-sites") return WorkloadKind::kHotSites;
  if (value == "hot-pages") return WorkloadKind::kHotPages;
  if (value == "regional") return WorkloadKind::kRegional;
  if (value == "uniform") return WorkloadKind::kUniform;
  return std::nullopt;
}

std::optional<baselines::DistributionPolicy> ParseDistribution(
    const std::string& value) {
  if (value == "radar") return baselines::DistributionPolicy::kRadar;
  if (value == "round-robin") return baselines::DistributionPolicy::kRoundRobin;
  if (value == "closest") return baselines::DistributionPolicy::kClosest;
  return std::nullopt;
}

std::optional<baselines::PlacementPolicy> ParsePlacement(
    const std::string& value) {
  if (value == "radar") return baselines::PlacementPolicy::kRadar;
  if (value == "static") return baselines::PlacementPolicy::kStatic;
  if (value == "full-replication") {
    return baselines::PlacementPolicy::kFullReplication;
  }
  return std::nullopt;
}

}  // namespace

std::string CliUsage() {
  return R"(radar_sim — dynamic replication hosting-platform simulator

usage: radar_sim [flags]

  --workload=zipf|hot-sites|hot-pages|regional|uniform   (default zipf)
  --duration=SECONDS          simulated time            (default 3600)
  --objects=N                 object count              (default 10000)
  --seed=N                    PRNG seed                 (default 1)
  --rate=REQ_PER_SEC          per-gateway request rate  (default 40)
  --capacity=REQ_PER_SEC      per-host capacity         (default 200)
  --hw=LOAD --lw=LOAD         watermarks                (default 90/80)
  --high-load                 shorthand for --hw=50 --lw=40 (Fig. 9)
  --distribution=radar|round-robin|closest              (default radar)
  --placement=radar|static|full-replication             (default radar)
  --redirectors=K             hash-partitioned redirectors (default 1)
  --arrivals=deterministic|poisson                      (default det.)
  --topology=FILE|SPEC        custom backbone: a topology file
                              (topology_io.h) or a generator spec —
                              ts:n=10000,seed=7 (transit-stub) or
                              sf:n=1000,m=2,gw=64,seed=1 (scale-free);
                              see net/topology_gen.h
  --oracle=auto|dense|sparse  latency/routing backend (default auto:
                              dense below 1024 nodes, sparse above)
  --trace=FILE                replay a request trace (see trace.h)
  --series                    print the per-bucket series table
  --json=FILE                 write the report as schema-versioned JSON
  --fault-plan=FILE           inject faults (see fault/fault_plan.h)
  --replica-floor=K           re-replicate objects below K live copies
  --jobs=N                    experiment-engine threads (0 = hardware)
  --shards=K                  shard-parallel engine, K shards (0 = serial;
                              any K >= 1 yields byte-identical reports)
  --help                      this text
)";
}

std::optional<CliOptions> ParseCli(const std::vector<std::string>& args,
                                   CliError* error) {
  CliOptions options;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) error->message = message;
    return std::nullopt;
  };

  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      options.show_help = true;
      return options;
    }
    if (arg == "--series") {
      options.print_series = true;
      continue;
    }
    if (arg == "--high-load") {
      options.config.ApplyHighLoad();
      continue;
    }
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      return fail("unrecognized argument '" + arg + "'");
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (value.empty()) return fail("empty value for --" + key);

    double d = 0.0;
    long long i = 0;
    if (key == "workload") {
      const auto kind = ParseWorkload(value);
      if (!kind) return fail("unknown workload '" + value + "'");
      options.config.workload = *kind;
    } else if (key == "duration") {
      if (!ParseDouble(value, &d) || d <= 0.0) {
        return fail("--duration must be a positive number of seconds");
      }
      options.config.duration = SecondsToSim(d);
    } else if (key == "objects") {
      if (!ParseInt(value, &i) || i <= 0) {
        return fail("--objects must be a positive integer");
      }
      options.config.num_objects = static_cast<ObjectId>(i);
    } else if (key == "seed") {
      if (!ParseInt(value, &i) || i < 0) {
        return fail("--seed must be a non-negative integer");
      }
      options.config.seed = static_cast<std::uint64_t>(i);
    } else if (key == "rate") {
      if (!ParseDouble(value, &d) || d <= 0.0) {
        return fail("--rate must be positive");
      }
      options.config.node_request_rate = d;
    } else if (key == "capacity") {
      if (!ParseDouble(value, &d) || d <= 0.0) {
        return fail("--capacity must be positive");
      }
      options.config.server_capacity = d;
    } else if (key == "hw") {
      if (!ParseDouble(value, &d) || d <= 0.0) {
        return fail("--hw must be positive");
      }
      options.config.protocol.high_watermark = d;
    } else if (key == "lw") {
      if (!ParseDouble(value, &d) || d <= 0.0) {
        return fail("--lw must be positive");
      }
      options.config.protocol.low_watermark = d;
    } else if (key == "distribution") {
      const auto policy = ParseDistribution(value);
      if (!policy) return fail("unknown distribution '" + value + "'");
      options.config.distribution = *policy;
    } else if (key == "placement") {
      const auto policy = ParsePlacement(value);
      if (!policy) return fail("unknown placement '" + value + "'");
      options.config.placement = *policy;
    } else if (key == "redirectors") {
      if (!ParseInt(value, &i) || i < 1) {
        return fail("--redirectors must be >= 1");
      }
      options.config.num_redirectors = static_cast<int>(i);
    } else if (key == "arrivals") {
      if (value == "deterministic") {
        options.config.arrivals = ArrivalProcess::kDeterministic;
      } else if (value == "poisson") {
        options.config.arrivals = ArrivalProcess::kPoisson;
      } else {
        return fail("--arrivals must be deterministic or poisson");
      }
    } else if (key == "topology") {
      options.topology_file = value;
    } else if (key == "oracle") {
      if (value == "auto") {
        options.config.oracle = net::OracleKind::kAuto;
      } else if (value == "dense") {
        options.config.oracle = net::OracleKind::kDense;
      } else if (value == "sparse") {
        options.config.oracle = net::OracleKind::kSparse;
      } else {
        return fail("--oracle must be auto, dense, or sparse");
      }
    } else if (key == "trace") {
      options.trace_file = value;
    } else if (key == "json") {
      options.json_file = value;
    } else if (key == "fault-plan") {
      options.fault_plan_file = value;
    } else if (key == "replica-floor") {
      if (!ParseInt(value, &i) || i < 0) {
        return fail("--replica-floor must be a non-negative integer");
      }
      options.config.replica_floor = static_cast<int>(i);
    } else if (key == "jobs") {
      if (!ParseInt(value, &i) || i < 0) {
        return fail("--jobs must be a non-negative integer");
      }
      options.jobs = static_cast<int>(i);
    } else if (key == "shards") {
      if (!ParseInt(value, &i) || i < 0) {
        return fail("--shards must be a non-negative integer");
      }
      options.config.shards = static_cast<int>(i);
    } else {
      return fail("unknown flag --" + key);
    }
  }

  if (options.config.protocol.low_watermark >=
      options.config.protocol.high_watermark) {
    return fail("--lw must be below --hw");
  }
  return options;
}

}  // namespace radar::driver
