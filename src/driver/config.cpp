#include "driver/config.h"

#include "common/check.h"

namespace radar::driver {

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kZipf: return "zipf";
    case WorkloadKind::kHotSites: return "hot-sites";
    case WorkloadKind::kHotPages: return "hot-pages";
    case WorkloadKind::kRegional: return "regional";
    case WorkloadKind::kUniform: return "uniform";
  }
  return "?";
}

void SimConfig::Check() const {
  RADAR_CHECK(num_objects > 0);
  RADAR_CHECK(object_bytes > 0);
  RADAR_CHECK(node_request_rate > 0.0);
  RADAR_CHECK(server_capacity > 0.0);
  RADAR_CHECK(duration > 0);
  RADAR_CHECK(num_redirectors >= 1);
  RADAR_CHECK(metric_bucket > 0);
  protocol.CheckStructure();
}

}  // namespace radar::driver
