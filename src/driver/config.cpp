#include "driver/config.h"

#include "common/check.h"

namespace radar::driver {

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kZipf: return "zipf";
    case WorkloadKind::kHotSites: return "hot-sites";
    case WorkloadKind::kHotPages: return "hot-pages";
    case WorkloadKind::kRegional: return "regional";
    case WorkloadKind::kUniform: return "uniform";
  }
  return "?";
}

void SimConfig::Check() const {
  RADAR_CHECK_GT(num_objects, 0);
  RADAR_CHECK_GT(object_bytes, 0);
  RADAR_CHECK_GT(node_request_rate, 0.0);
  RADAR_CHECK_GT(server_capacity, 0.0);
  RADAR_CHECK_GT(duration, 0);
  RADAR_CHECK_GE(num_redirectors, 1);
  RADAR_CHECK_GT(metric_bucket, 0);
  RADAR_CHECK_GE(replica_floor, 0);
  RADAR_CHECK_GE(shards, 0);
  faults.Check();
  protocol.CheckStructure();
}

}  // namespace radar::driver
