#include "workload/workload.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace radar::workload {

UniformWorkload::UniformWorkload(ObjectId num_objects)
    : num_objects_(num_objects) {
  RADAR_CHECK_GT(num_objects, 0);
}

ObjectId UniformWorkload::NextObject(NodeId, SimTime, Rng& rng) {
  return static_cast<ObjectId>(rng.NextBounded(
      static_cast<std::uint64_t>(num_objects_)));
}

ZipfWorkload::ZipfWorkload(ObjectId num_objects)
    : num_objects_(num_objects), zipf_(num_objects) {
  RADAR_CHECK_GT(num_objects, 0);
}

ObjectId ZipfWorkload::NextObject(NodeId, SimTime, Rng& rng) {
  return static_cast<ObjectId>(zipf_.Sample(rng) - 1);
}

void ZipfWorkload::FillBatch(NodeId, SimTime, Rng& rng, ObjectId* out,
                             std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    out[i] = static_cast<ObjectId>(zipf_.Sample(rng) - 1);
  }
}

HotSitesWorkload::HotSitesWorkload(ObjectId num_objects,
                                   std::int32_t num_nodes, double p,
                                   std::uint64_t site_seed)
    : num_objects_(num_objects), p_(p) {
  RADAR_CHECK_GT(num_objects, 0);
  RADAR_CHECK_GT(num_nodes, 0);
  RADAR_CHECK_GT(p, 0.0);
  RADAR_CHECK_LT(p, 1.0);
  // Divide sites randomly: fraction p cold, remainder hot (Sec. 6.1).
  Rng site_rng(site_seed);
  std::vector<bool> is_hot(static_cast<std::size_t>(num_nodes), false);
  for (std::int32_t n = 0; n < num_nodes; ++n) {
    if (site_rng.NextBool(1.0 - p)) {
      is_hot[static_cast<std::size_t>(n)] = true;
    }
  }
  // Guarantee at least one hot and one cold site.
  if (std::none_of(is_hot.begin(), is_hot.end(), [](bool h) { return h; })) {
    is_hot[static_cast<std::size_t>(
        site_rng.NextBounded(static_cast<std::uint64_t>(num_nodes)))] = true;
  }
  if (std::all_of(is_hot.begin(), is_hot.end(), [](bool h) { return h; })) {
    is_hot[0] = false;
  }
  for (std::int32_t n = 0; n < num_nodes; ++n) {
    if (is_hot[static_cast<std::size_t>(n)]) hot_sites_.push_back(n);
  }
  // Objects are initially placed round-robin: object i lives at i % nodes.
  for (ObjectId i = 0; i < num_objects; ++i) {
    if (is_hot[static_cast<std::size_t>(i % num_nodes)]) {
      hot_pool_.push_back(i);
    } else {
      cold_pool_.push_back(i);
    }
  }
  RADAR_CHECK(!hot_pool_.empty() && !cold_pool_.empty());
}

ObjectId HotSitesWorkload::NextObject(NodeId, SimTime, Rng& rng) {
  const auto& pool = rng.NextBool(p_) ? hot_pool_ : cold_pool_;
  return pool[rng.NextBounded(pool.size())];
}

HotPagesWorkload::HotPagesWorkload(ObjectId num_objects, double hot_fraction,
                                   double hot_probability,
                                   std::uint64_t page_seed)
    : num_objects_(num_objects), hot_probability_(hot_probability) {
  RADAR_CHECK_GT(num_objects, 1);
  RADAR_CHECK_GT(hot_fraction, 0.0);
  RADAR_CHECK_LT(hot_fraction, 1.0);
  RADAR_CHECK_GT(hot_probability, 0.0);
  RADAR_CHECK_LT(hot_probability, 1.0);
  // Sample the hot set without replacement via a Fisher-Yates prefix.
  std::vector<ObjectId> all(static_cast<std::size_t>(num_objects));
  for (ObjectId i = 0; i < num_objects; ++i) all[static_cast<std::size_t>(i)] = i;
  Rng page_rng(page_seed);
  auto num_hot = static_cast<std::size_t>(
      static_cast<double>(num_objects) * hot_fraction);
  num_hot = std::clamp<std::size_t>(num_hot, 1, all.size() - 1);
  for (std::size_t i = 0; i < num_hot; ++i) {
    const std::size_t j = i + page_rng.NextBounded(all.size() - i);
    std::swap(all[i], all[j]);
  }
  hot_pool_.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(num_hot));
  cold_pool_.assign(all.begin() + static_cast<std::ptrdiff_t>(num_hot), all.end());
}

ObjectId HotPagesWorkload::NextObject(NodeId, SimTime, Rng& rng) {
  const auto& pool = rng.NextBool(hot_probability_) ? hot_pool_ : cold_pool_;
  return pool[rng.NextBounded(pool.size())];
}

RegionalWorkload::RegionalWorkload(ObjectId num_objects,
                                   const net::Topology& topology,
                                   double preferred_probability,
                                   double preferred_slice)
    : num_objects_(num_objects),
      preferred_probability_(preferred_probability) {
  RADAR_CHECK_GE(num_objects, 4);
  RADAR_CHECK_GT(preferred_probability, 0.0);
  RADAR_CHECK_LT(preferred_probability, 1.0);
  RADAR_CHECK_GT(preferred_slice, 0.0);
  RADAR_CHECK_LE(preferred_slice, 0.25);
  slice_size_ = std::max<ObjectId>(
      1, static_cast<ObjectId>(static_cast<double>(num_objects) * preferred_slice));
  node_region_.resize(static_cast<std::size_t>(topology.num_nodes()));
  for (NodeId n = 0; n < topology.num_nodes(); ++n) {
    node_region_[static_cast<std::size_t>(n)] = topology.RegionOf(n);
  }
}

std::pair<ObjectId, ObjectId> RegionalWorkload::PreferredRange(
    net::Region region) const {
  const auto r = static_cast<ObjectId>(region);
  const ObjectId first = r * slice_size_;
  return {first, first + slice_size_ - 1};
}

ObjectId RegionalWorkload::NextObject(NodeId gateway, SimTime, Rng& rng) {
  RADAR_CHECK_GE(gateway, 0);
  RADAR_CHECK_LT(static_cast<std::size_t>(gateway), node_region_.size());
  if (rng.NextBool(preferred_probability_)) {
    const auto [first, last] =
        PreferredRange(node_region_[static_cast<std::size_t>(gateway)]);
    return first + static_cast<ObjectId>(
                       rng.NextBounded(static_cast<std::uint64_t>(last - first + 1)));
  }
  return static_cast<ObjectId>(
      rng.NextBounded(static_cast<std::uint64_t>(num_objects_)));
}

MixtureWorkload::MixtureWorkload(std::vector<Component> components)
    : components_(std::move(components)) {
  RADAR_CHECK(!components_.empty());
  double total = 0.0;
  for (const auto& c : components_) {
    RADAR_CHECK_NE(c.workload, nullptr);
    RADAR_CHECK_GT(c.weight, 0.0);
    RADAR_CHECK_EQ(c.workload->num_objects(), components_[0].workload->num_objects());
    total += c.weight;
    cumulative_.push_back(total);
  }
  for (auto& v : cumulative_) v /= total;
}

ObjectId MixtureWorkload::NextObject(NodeId gateway, SimTime now, Rng& rng) {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const auto idx = std::min<std::size_t>(
      static_cast<std::size_t>(it - cumulative_.begin()), components_.size() - 1);
  return components_[idx].workload->NextObject(gateway, now, rng);
}

bool MixtureWorkload::time_invariant() const {
  for (const Component& c : components_) {
    if (!c.workload->time_invariant()) return false;
  }
  return true;
}

ObjectId MixtureWorkload::num_objects() const {
  return components_[0].workload->num_objects();
}

DemandShiftWorkload::DemandShiftWorkload(std::unique_ptr<Workload> before,
                                         std::unique_ptr<Workload> after,
                                         SimTime shift_at)
    : before_(std::move(before)), after_(std::move(after)), shift_at_(shift_at) {
  RADAR_CHECK_NE(before_, nullptr);
  RADAR_CHECK_NE(after_, nullptr);
  RADAR_CHECK_EQ(before_->num_objects(), after_->num_objects());
  RADAR_CHECK_GE(shift_at, 0);
}

ObjectId DemandShiftWorkload::NextObject(NodeId gateway, SimTime now, Rng& rng) {
  return (now < shift_at_ ? before_ : after_)->NextObject(gateway, now, rng);
}

std::string DemandShiftWorkload::name() const {
  return before_->name() + "->" + after_->name();
}

ObjectId DemandShiftWorkload::num_objects() const {
  return before_->num_objects();
}

}  // namespace radar::workload
