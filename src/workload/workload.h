// Synthetic workloads from the paper's evaluation (Sec. 6.1).
//
// Each workload answers one question: which object does a client entering
// at gateway g request at time t? All four of the paper's workloads are
// provided, plus uniform, weighted mixtures, and a demand-shift wrapper
// used for responsiveness experiments.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "common/zipf.h"
#include "net/topology.h"

namespace radar::workload {

/// Picks the requested object for a client request.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Returns the requested object id in [0, num_objects).
  virtual ObjectId NextObject(NodeId gateway, SimTime now, Rng& rng) = 0;

  /// Draws `count` objects into `out`: exactly the values (and RNG
  /// consumption) of `count` successive NextObject calls. Hot workloads
  /// override this so the driver's batched arrival refill pays one
  /// virtual dispatch per block instead of one per draw.
  virtual void FillBatch(NodeId gateway, SimTime now, Rng& rng,
                         ObjectId* out, std::uint32_t count) {
    for (std::uint32_t i = 0; i < count; ++i) {
      out[i] = NextObject(gateway, now, rng);
    }
  }

  /// True when NextObject depends only on (gateway, rng) — it never reads
  /// `now` and keeps no mutable cross-call state — so a caller may
  /// pre-draw a block of objects from a gateway's rng and serve them at
  /// later times without changing any drawn value. The driver's batched
  /// arrival generation relies on exactly this contract; defaults to
  /// false, so a workload must opt in explicitly.
  virtual bool time_invariant() const { return false; }

  virtual std::string name() const = 0;
  virtual ObjectId num_objects() const = 0;
};

/// Every object equally likely, independent of the gateway.
class UniformWorkload final : public Workload {
 public:
  explicit UniformWorkload(ObjectId num_objects);

  ObjectId NextObject(NodeId gateway, SimTime now, Rng& rng) override;
  bool time_invariant() const override { return true; }
  std::string name() const override { return "uniform"; }
  ObjectId num_objects() const override { return num_objects_; }

 private:
  ObjectId num_objects_;
};

/// Zipf popularity: object id == popularity rank - 1, sampled with the
/// Reeds closed-form approximation the paper uses (footnote 3).
class ZipfWorkload final : public Workload {
 public:
  explicit ZipfWorkload(ObjectId num_objects);

  ObjectId NextObject(NodeId gateway, SimTime now, Rng& rng) override;
  void FillBatch(NodeId gateway, SimTime now, Rng& rng, ObjectId* out,
                 std::uint32_t count) override;
  bool time_invariant() const override { return true; }
  std::string name() const override { return "zipf"; }
  ObjectId num_objects() const override { return num_objects_; }

 private:
  ObjectId num_objects_;
  ReedsZipf zipf_;
};

/// Hot-sites: a random 1-p fraction of *sites* (initial object homes) is
/// hot; a request picks a random page from a hot site with probability p
/// and from a cold site otherwise. The paper uses p = 0.9, so 10% of the
/// sites receive 90% of the requests.
class HotSitesWorkload final : public Workload {
 public:
  /// `initial_home(i)` = node initially hosting object i (the paper's
  /// round-robin assignment i mod num_nodes); `p` as in the paper.
  HotSitesWorkload(ObjectId num_objects, std::int32_t num_nodes, double p,
                   std::uint64_t site_seed);

  ObjectId NextObject(NodeId gateway, SimTime now, Rng& rng) override;
  bool time_invariant() const override { return true; }
  std::string name() const override { return "hot-sites"; }
  ObjectId num_objects() const override { return num_objects_; }

  const std::vector<NodeId>& hot_sites() const { return hot_sites_; }

 private:
  ObjectId num_objects_;
  double p_;
  std::vector<NodeId> hot_sites_;
  std::vector<ObjectId> hot_pool_;
  std::vector<ObjectId> cold_pool_;
};

/// Hot-pages: a random 10% of pages is hot and receives 90% of requests.
class HotPagesWorkload final : public Workload {
 public:
  HotPagesWorkload(ObjectId num_objects, double hot_fraction,
                   double hot_probability, std::uint64_t page_seed);

  ObjectId NextObject(NodeId gateway, SimTime now, Rng& rng) override;
  bool time_invariant() const override { return true; }
  std::string name() const override { return "hot-pages"; }
  ObjectId num_objects() const override { return num_objects_; }

  const std::vector<ObjectId>& hot_pages() const { return hot_pool_; }

 private:
  ObjectId num_objects_;
  double hot_probability_;
  std::vector<ObjectId> hot_pool_;
  std::vector<ObjectId> cold_pool_;
};

/// Regional: each of the four regions owns a contiguous 1% slice of the
/// object space; a node requests from its region's slice with probability
/// 0.9 and uniformly otherwise.
class RegionalWorkload final : public Workload {
 public:
  RegionalWorkload(ObjectId num_objects, const net::Topology& topology,
                   double preferred_probability = 0.9,
                   double preferred_slice = 0.01);

  ObjectId NextObject(NodeId gateway, SimTime now, Rng& rng) override;
  bool time_invariant() const override { return true; }
  std::string name() const override { return "regional"; }
  ObjectId num_objects() const override { return num_objects_; }

  /// [first, last] preferred object range of a region.
  std::pair<ObjectId, ObjectId> PreferredRange(net::Region region) const;

 private:
  ObjectId num_objects_;
  double preferred_probability_;
  ObjectId slice_size_;
  std::vector<net::Region> node_region_;
};

/// Weighted mixture of sub-workloads (the paper notes real demand is "some
/// mix of workloads similar to the ones considered").
class MixtureWorkload final : public Workload {
 public:
  struct Component {
    std::unique_ptr<Workload> workload;
    double weight;
  };

  explicit MixtureWorkload(std::vector<Component> components);

  ObjectId NextObject(NodeId gateway, SimTime now, Rng& rng) override;
  /// Time-invariant iff every component is (the mixture draw itself uses
  /// only the rng).
  bool time_invariant() const override;
  std::string name() const override { return "mixture"; }
  ObjectId num_objects() const override;

 private:
  std::vector<Component> components_;
  std::vector<double> cumulative_;
};

/// Switches from one workload to another at a fixed simulated time; used
/// to measure responsiveness to demand-pattern changes (flash crowds).
class DemandShiftWorkload final : public Workload {
 public:
  DemandShiftWorkload(std::unique_ptr<Workload> before,
                      std::unique_ptr<Workload> after, SimTime shift_at);

  ObjectId NextObject(NodeId gateway, SimTime now, Rng& rng) override;
  /// Never time-invariant: NextObject reads `now` to pick the phase, so
  /// pre-drawing across the shift boundary would serve post-shift requests
  /// from the pre-shift distribution.
  bool time_invariant() const override { return false; }
  std::string name() const override;
  ObjectId num_objects() const override;
  SimTime shift_at() const { return shift_at_; }

 private:
  std::unique_ptr<Workload> before_;
  std::unique_ptr<Workload> after_;
  SimTime shift_at_;
};

}  // namespace radar::workload
