// Request traces: recorded or synthesized streams of (time, gateway,
// object) triples.
//
// The paper's companion work drives the same simulator from access traces
// of AT&T's EasyWWW hosting service; this module provides the equivalent
// machinery for synthetic or user-supplied traces. A trace can be
// synthesized from any Workload (capturing the exact request stream a
// live run would generate), saved to / loaded from a plain-text format,
// and replayed through HostingSimulation::SetTrace.
//
// File format, one record per line, '#' comments:
//   <time-microseconds> <gateway-node> <object-id>
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "workload/workload.h"

namespace radar::workload {

struct TraceRecord {
  SimTime t = 0;
  NodeId gateway = kInvalidNode;
  ObjectId object = kInvalidObject;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

class RequestTrace {
 public:
  RequestTrace() = default;

  /// Takes ownership of records; they must be sorted by time (verified).
  explicit RequestTrace(std::vector<TraceRecord> records);

  /// Appends a record; time must be non-decreasing.
  void Append(SimTime t, NodeId gateway, ObjectId object);

  const std::vector<TraceRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }

  /// Duration spanned by the trace (time of the last record).
  SimTime Duration() const;

  /// Largest object id referenced + 1 (0 for an empty trace).
  ObjectId NumObjectsReferenced() const;

  /// Serializes to the plain-text format.
  void Save(std::ostream& out) const;

  /// Parses the plain-text format; std::nullopt + *error on bad input.
  static std::optional<RequestTrace> Load(std::istream& in,
                                          std::string* error);

  /// Synthesizes the exact request stream a simulation run would generate:
  /// every gateway in [0, num_gateways) issues requests at `rate_per_node`
  /// req/s (deterministically spaced, phase-staggered like the driver)
  /// against `workload` for `duration`.
  static RequestTrace Synthesize(Workload& workload,
                                 std::int32_t num_gateways,
                                 double rate_per_node, SimTime duration,
                                 std::uint64_t seed);

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace radar::workload
