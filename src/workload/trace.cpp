#include "workload/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace radar::workload {

RequestTrace::RequestTrace(std::vector<TraceRecord> records)
    : records_(std::move(records)) {
  for (std::size_t i = 1; i < records_.size(); ++i) {
    RADAR_CHECK_MSG(records_[i - 1].t <= records_[i].t,
                    "trace records must be time-sorted");
  }
}

void RequestTrace::Append(SimTime t, NodeId gateway, ObjectId object) {
  RADAR_CHECK_GE(t, 0);
  RADAR_CHECK_GE(gateway, 0);
  RADAR_CHECK_GE(object, 0);
  RADAR_CHECK_MSG(records_.empty() || records_.back().t <= t,
                  "trace records must be appended in time order");
  records_.push_back(TraceRecord{t, gateway, object});
}

SimTime RequestTrace::Duration() const {
  return records_.empty() ? 0 : records_.back().t;
}

ObjectId RequestTrace::NumObjectsReferenced() const {
  ObjectId max_id = -1;
  for (const TraceRecord& r : records_) max_id = std::max(max_id, r.object);
  return max_id + 1;
}

void RequestTrace::Save(std::ostream& out) const {
  out << "# radar request trace: " << records_.size() << " records\n";
  for (const TraceRecord& r : records_) {
    out << r.t << ' ' << r.gateway << ' ' << r.object << '\n';
  }
}

std::optional<RequestTrace> RequestTrace::Load(std::istream& in,
                                               std::string* error) {
  std::vector<TraceRecord> records;
  std::string line;
  int line_number = 0;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      std::ostringstream os;
      os << "line " << line_number << ": " << message;
      *error = os.str();
    }
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    TraceRecord record;
    if (!(tokens >> record.t)) continue;  // blank line
    if (!(tokens >> record.gateway >> record.object)) {
      return fail("expected: <time-us> <gateway> <object>");
    }
    if (record.t < 0 || record.gateway < 0 || record.object < 0) {
      return fail("negative field");
    }
    if (!records.empty() && records.back().t > record.t) {
      return fail("records out of time order");
    }
    records.push_back(record);
  }
  return RequestTrace(std::move(records));
}

RequestTrace RequestTrace::Synthesize(Workload& workload,
                                      std::int32_t num_gateways,
                                      double rate_per_node, SimTime duration,
                                      std::uint64_t seed) {
  RADAR_CHECK_GT(num_gateways, 0);
  RADAR_CHECK_GT(rate_per_node, 0.0);
  RADAR_CHECK_GT(duration, 0);
  const auto period = static_cast<SimTime>(
      static_cast<double>(kMicrosPerSecond) / rate_per_node);
  RADAR_CHECK_GT(period, 0);

  Rng root(seed);
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(num_gateways));
  for (NodeId g = 0; g < num_gateways; ++g) {
    rngs.push_back(root.Fork(static_cast<std::uint64_t>(g)));
  }

  // Merge the per-gateway deterministic arrival processes in time order;
  // phases match the driver's stagger.
  std::vector<TraceRecord> records;
  records.reserve(static_cast<std::size_t>(
      static_cast<double>(num_gateways) * rate_per_node *
      SimToSeconds(duration)));
  struct Cursor {
    SimTime next;
    NodeId gateway;
  };
  std::vector<Cursor> cursors;
  for (NodeId g = 0; g < num_gateways; ++g) {
    cursors.push_back(Cursor{
        period * static_cast<SimTime>(g) / static_cast<SimTime>(num_gateways),
        g});
  }
  while (true) {
    auto* soonest = &cursors.front();
    for (auto& c : cursors) {
      if (c.next < soonest->next ||
          (c.next == soonest->next && c.gateway < soonest->gateway)) {
        soonest = &c;
      }
    }
    if (soonest->next > duration) break;
    const ObjectId x = workload.NextObject(
        soonest->gateway, soonest->next,
        rngs[static_cast<std::size_t>(soonest->gateway)]);
    records.push_back(TraceRecord{soonest->next, soonest->gateway, x});
    soonest->next += period;
  }
  return RequestTrace(std::move(records));
}

}  // namespace radar::workload
