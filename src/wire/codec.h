// Versioned little-endian frame codec (DESIGN.md §16).
//
// Frame layout:
//
//   offset  size  field
//   0       4     magic    0x52446152 ("RaDR")
//   4       2     version  1
//   6       2     type     MsgType
//   8       4     len      payload bytes (fixed per type; <= kMaxPayload)
//   12      8     seq      sender-assigned sequence number
//   20      len   payload  fixed-layout fields, little-endian
//
// Decoding is strict and total: every way a frame can be malformed maps
// to a distinct DecodeStatus, truncated input asks for more bytes instead
// of failing, and no input — fuzzed, bit-flipped, or truncated — reaches
// undefined behaviour (the codec property tests run under ASan/UBSan).
// Doubles travel as their IEEE-754 bit patterns in a u64.
#pragma once

#include <cstdint>
#include <vector>

#include "wire/frame.h"

namespace radar::wire {

enum class DecodeStatus : std::uint8_t {
  kOk,
  /// The buffer holds a valid prefix of a frame; feed more bytes.
  kNeedMore,
  kBadMagic,
  kBadVersion,
  /// Header len exceeds kMaxPayload (detected before buffering payload).
  kBadLength,
  kBadType,
  /// Payload length does not match the type, or a field is out of range.
  kBadPayload,
};

const char* DecodeStatusName(DecodeStatus status);

struct DecodedFrame {
  std::uint64_t seq = 0;
  Message msg;
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  /// Bytes consumed from the front of the buffer when status == kOk;
  /// 0 otherwise (errors leave the buffer untouched so callers can log or
  /// drop the connection with the bytes intact).
  std::size_t consumed = 0;
  DecodedFrame frame;
};

/// Serializes one message under the given sequence number.
std::vector<std::uint8_t> Encode(std::uint64_t seq, const Message& msg);

/// Appends the encoded frame to `out` (the transport's per-connection
/// output buffer path; avoids the temporary).
void EncodeAppend(std::vector<std::uint8_t>& out, std::uint64_t seq,
                  const Message& msg);

/// Decodes the first frame of `data`. Never reads past `size`.
DecodeResult DecodeFrame(const std::uint8_t* data, std::size_t size);

/// Payload size of a message type on the wire.
std::uint32_t PayloadSize(MsgType type);

}  // namespace radar::wire
