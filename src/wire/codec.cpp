#include "wire/codec.h"

#include <bit>
#include <cstring>

#include "common/check.h"

namespace radar::wire {
namespace {

// ---------------------------------------------------------------------
// Byte-order helpers. The wire is little-endian; these spell the byte
// shuffles explicitly so the codec is correct on any host order.
// ---------------------------------------------------------------------

void PutU8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutNode(std::vector<std::uint8_t>& out, NodeId v) {
  PutU32(out, static_cast<std::uint32_t>(v));
}

void PutF64(std::vector<std::uint8_t>& out, double v) {
  PutU64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reader over one payload. Every Get
/// aborts the decode (ok() false) instead of reading past the end, so a
/// short payload can never become an out-of-bounds read.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  /// True when the payload was consumed exactly (strict decode: trailing
  /// bytes are a payload error, not padding).
  bool Exhausted() const { return ok_ && pos_ == size_; }

  std::uint8_t U8() {
    if (!Require(1)) return 0;
    return data_[pos_++];
  }

  std::uint16_t U16() {
    if (!Require(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(data_[pos_]) |
        static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
    pos_ += 2;
    return v;
  }

  std::uint32_t U32() {
    if (!Require(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t U64() {
    if (!Require(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  NodeId Node() { return static_cast<NodeId>(U32()); }
  double F64() { return std::bit_cast<double>(U64()); }

 private:
  bool Require(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void EncodePayload(std::vector<std::uint8_t>& out, const Message& msg) {
  std::visit(
      [&out](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) {
          PutNode(out, m.node);
          PutU8(out, static_cast<std::uint8_t>(m.role));
        } else if constexpr (std::is_same_v<T, Request>) {
          PutU32(out, static_cast<std::uint32_t>(m.object));
          PutNode(out, m.gateway);
        } else if constexpr (std::is_same_v<T, Redirect>) {
          PutU32(out, static_cast<std::uint32_t>(m.object));
          PutNode(out, m.host);
        } else if constexpr (std::is_same_v<T, Replicate> ||
                             std::is_same_v<T, Migrate>) {
          PutU32(out, static_cast<std::uint32_t>(m.object));
          PutNode(out, m.from);
          PutNode(out, m.to);
          PutF64(out, m.unit_load);
        } else if constexpr (std::is_same_v<T, Ack>) {
          PutU64(out, m.acked_seq);
          PutU8(out, m.accepted ? 1 : 0);
          PutU8(out, m.created_new_copy ? 1 : 0);
        } else if constexpr (std::is_same_v<T, PlacementStat>) {
          PutNode(out, m.host);
          PutF64(out, m.load);
          PutF64(out, m.weight);
          PutU32(out, m.num_objects);
        } else if constexpr (std::is_same_v<T, Announce>) {
          PutU32(out, static_cast<std::uint32_t>(m.object));
          PutNode(out, m.host);
          PutU32(out, static_cast<std::uint32_t>(m.affinity));
        } else {
          static_assert(std::is_same_v<T, Shutdown>);
        }
      },
      msg);
}

/// Decodes one payload; returns false on any range violation (short or
/// long payload, out-of-range enum/flag byte).
bool DecodePayload(MsgType type, const std::uint8_t* data, std::size_t size,
                   Message* out) {
  Reader r(data, size);
  switch (type) {
    case MsgType::kHello: {
      Hello m;
      m.node = r.Node();
      const std::uint8_t role = r.U8();
      if (role > static_cast<std::uint8_t>(PeerRole::kClient)) return false;
      m.role = static_cast<PeerRole>(role);
      *out = m;
      break;
    }
    case MsgType::kRequest: {
      Request m;
      m.object = static_cast<ObjectId>(r.U32());
      m.gateway = r.Node();
      *out = m;
      break;
    }
    case MsgType::kRedirect: {
      Redirect m;
      m.object = static_cast<ObjectId>(r.U32());
      m.host = r.Node();
      *out = m;
      break;
    }
    case MsgType::kReplicate: {
      Replicate m;
      m.object = static_cast<ObjectId>(r.U32());
      m.from = r.Node();
      m.to = r.Node();
      m.unit_load = r.F64();
      *out = m;
      break;
    }
    case MsgType::kMigrate: {
      Migrate m;
      m.object = static_cast<ObjectId>(r.U32());
      m.from = r.Node();
      m.to = r.Node();
      m.unit_load = r.F64();
      *out = m;
      break;
    }
    case MsgType::kAck: {
      Ack m;
      m.acked_seq = r.U64();
      const std::uint8_t accepted = r.U8();
      const std::uint8_t created = r.U8();
      if (accepted > 1 || created > 1) return false;
      m.accepted = accepted != 0;
      m.created_new_copy = created != 0;
      *out = m;
      break;
    }
    case MsgType::kPlacementStat: {
      PlacementStat m;
      m.host = r.Node();
      m.load = r.F64();
      m.weight = r.F64();
      m.num_objects = r.U32();
      *out = m;
      break;
    }
    case MsgType::kAnnounce: {
      Announce m;
      m.object = static_cast<ObjectId>(r.U32());
      m.host = r.Node();
      m.affinity = static_cast<std::int32_t>(r.U32());
      *out = m;
      break;
    }
    case MsgType::kShutdown: {
      *out = Shutdown{};
      break;
    }
  }
  return r.Exhausted();
}

bool ValidType(std::uint16_t type) {
  return type >= static_cast<std::uint16_t>(MsgType::kHello) &&
         type <= static_cast<std::uint16_t>(MsgType::kShutdown);
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "HELLO";
    case MsgType::kRequest: return "REQUEST";
    case MsgType::kRedirect: return "REDIRECT";
    case MsgType::kReplicate: return "REPLICATE";
    case MsgType::kMigrate: return "MIGRATE";
    case MsgType::kAck: return "ACK";
    case MsgType::kPlacementStat: return "PLACEMENT_STAT";
    case MsgType::kAnnounce: return "ANNOUNCE";
    case MsgType::kShutdown: return "SHUTDOWN";
  }
  return "?";
}

MsgType TypeOf(const Message& msg) {
  return std::visit(
      [](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) return MsgType::kHello;
        else if constexpr (std::is_same_v<T, Request>) return MsgType::kRequest;
        else if constexpr (std::is_same_v<T, Redirect>)
          return MsgType::kRedirect;
        else if constexpr (std::is_same_v<T, Replicate>)
          return MsgType::kReplicate;
        else if constexpr (std::is_same_v<T, Migrate>) return MsgType::kMigrate;
        else if constexpr (std::is_same_v<T, Ack>) return MsgType::kAck;
        else if constexpr (std::is_same_v<T, PlacementStat>)
          return MsgType::kPlacementStat;
        else if constexpr (std::is_same_v<T, Announce>)
          return MsgType::kAnnounce;
        else return MsgType::kShutdown;
      },
      msg);
}

const char* DecodeStatusName(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kBadPayload: return "bad-payload";
  }
  return "?";
}

std::uint32_t PayloadSize(MsgType type) {
  switch (type) {
    case MsgType::kHello: return 5;
    case MsgType::kRequest: return 8;
    case MsgType::kRedirect: return 8;
    case MsgType::kReplicate: return 20;
    case MsgType::kMigrate: return 20;
    case MsgType::kAck: return 10;
    case MsgType::kPlacementStat: return 24;
    case MsgType::kAnnounce: return 12;
    case MsgType::kShutdown: return 0;
  }
  RADAR_CHECK_MSG(false, "unknown message type");
  return 0;
}

void EncodeAppend(std::vector<std::uint8_t>& out, std::uint64_t seq,
                  const Message& msg) {
  const MsgType type = TypeOf(msg);
  const std::size_t header_at = out.size();
  PutU32(out, kMagic);
  PutU16(out, kVersion);
  PutU16(out, static_cast<std::uint16_t>(type));
  PutU32(out, PayloadSize(type));
  PutU64(out, seq);
  const std::size_t payload_at = out.size();
  EncodePayload(out, msg);
  RADAR_CHECK_EQ(out.size() - payload_at,
                 static_cast<std::size_t>(PayloadSize(type)));
  RADAR_CHECK_EQ(payload_at - header_at, kHeaderSize);
}

std::vector<std::uint8_t> Encode(std::uint64_t seq, const Message& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + PayloadSize(TypeOf(msg)));
  EncodeAppend(out, seq, msg);
  return out;
}

DecodeResult DecodeFrame(const std::uint8_t* data, std::size_t size) {
  DecodeResult result;

  // Magic and version are validated from whatever prefix is present, so a
  // stream that is garbage from byte 0 is rejected immediately instead of
  // stalling in kNeedMore until kHeaderSize bytes of garbage accumulate.
  for (std::size_t i = 0; i < 4 && i < size; ++i) {
    if (data[i] != static_cast<std::uint8_t>((kMagic >> (8 * i)) & 0xff)) {
      result.status = DecodeStatus::kBadMagic;
      return result;
    }
  }
  if (size >= 6) {
    const std::uint16_t version = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(data[4]) |
        static_cast<std::uint16_t>(data[5]) << 8);
    if (version != kVersion) {
      result.status = DecodeStatus::kBadVersion;
      return result;
    }
  }
  if (size < kHeaderSize) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }

  Reader header(data, kHeaderSize);
  header.U32();  // magic (validated above)
  header.U16();  // version (validated above)
  const std::uint16_t raw_type = header.U16();
  const std::uint32_t len = header.U32();
  const std::uint64_t seq = header.U64();

  if (len > kMaxPayload) {
    result.status = DecodeStatus::kBadLength;
    return result;
  }
  if (!ValidType(raw_type)) {
    result.status = DecodeStatus::kBadType;
    return result;
  }
  const MsgType type = static_cast<MsgType>(raw_type);
  if (len != PayloadSize(type)) {
    result.status = DecodeStatus::kBadPayload;
    return result;
  }
  if (size - kHeaderSize < len) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  if (!DecodePayload(type, data + kHeaderSize, len, &result.frame.msg)) {
    result.status = DecodeStatus::kBadPayload;
    return result;
  }
  result.frame.seq = seq;
  result.status = DecodeStatus::kOk;
  result.consumed = kHeaderSize + len;
  return result;
}

}  // namespace radar::wire
