// Wire protocol messages for real-system mode (DESIGN.md §16).
//
// The Fig. 2–5 protocol exchanges, flattened into nine fixed-size frame
// payloads behind a versioned header. Every multi-byte field is
// little-endian on the wire; the structs here are the decoded in-memory
// view. The codec (wire/codec.h) is the only code that touches bytes —
// daemons, the simulator transport, and the binlog replay tooling all
// traffic in these structs.
//
// Message map (who sends what):
//   kHello          any → any        first frame on a connection: identity
//   kRequest        client → redirector   "a request for x entered at g"
//                   client → host         the redirected fetch itself
//   kRedirect       redirector → client   Fig. 2's answer (host may be
//                                         kInvalidNode: no live replica)
//   kReplicate      host → host           Fig. 4 CreateObj(REPLICATE)
//                   host → redirector     "I created a replica of x"
//   kMigrate        host → host           Fig. 4 CreateObj(MIGRATE)
//                   host → redirector     "may the source drop x?" (the
//                                         redirector-arbitrated drop)
//   kAck            any → any        verdict for the frame with seq
//                                    acked_seq (accepted / created flags)
//   kPlacementStat  host → redirector     periodic load report
//                   redirector → host     relayed reports (the Sec. 4.2.2
//                                         load-exchange, hub-and-spoke)
//   kAnnounce       host → redirector     replica re-registration after a
//                                         restart (redirector restores,
//                                         never double-counts)
//   kShutdown       any → any        orderly stop (CI harness control)
#pragma once

#include <cstdint>
#include <variant>

#include "common/types.h"

namespace radar::wire {

/// First four bytes of every frame ("RaDR" when read as LE bytes).
inline constexpr std::uint32_t kMagic = 0x52446152u;

/// Protocol version; decoders reject anything else.
inline constexpr std::uint16_t kVersion = 1;

/// Fixed header size: magic u32, version u16, type u16, len u32, seq u64.
inline constexpr std::size_t kHeaderSize = 20;

/// Upper bound on the payload length field. Every defined message is a
/// few dozen bytes; anything claiming more is corrupt, and rejecting it
/// before buffering keeps a malformed peer from ballooning memory.
inline constexpr std::uint32_t kMaxPayload = 4096;

enum class MsgType : std::uint16_t {
  kHello = 1,
  kRequest = 2,
  kRedirect = 3,
  kReplicate = 4,
  kMigrate = 5,
  kAck = 6,
  kPlacementStat = 7,
  kAnnounce = 8,
  kShutdown = 9,
};

const char* MsgTypeName(MsgType type);

/// Role claimed in a Hello (matches transport::NodeRole numerically).
enum class PeerRole : std::uint8_t {
  kHost = 0,
  kRedirector = 1,
  kClient = 2,
};

struct Hello {
  NodeId node = kInvalidNode;
  PeerRole role = PeerRole::kHost;

  friend bool operator==(const Hello&, const Hello&) = default;
};

struct Request {
  ObjectId object = kInvalidObject;
  NodeId gateway = kInvalidNode;

  friend bool operator==(const Request&, const Request&) = default;
};

struct Redirect {
  ObjectId object = kInvalidObject;
  /// kInvalidNode when no live replica exists (every copy is down).
  NodeId host = kInvalidNode;

  friend bool operator==(const Redirect&, const Redirect&) = default;
};

/// Fig. 4 CreateObj(REPLICATE) host→host, and the created-replica
/// notification host→redirector (`to` is the creating host there).
struct Replicate {
  ObjectId object = kInvalidObject;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double unit_load = 0.0;

  friend bool operator==(const Replicate&, const Replicate&) = default;
};

/// Fig. 4 CreateObj(MIGRATE) host→host, and the drop-arbitration request
/// host→redirector ("to holds x now; may from drop its copy?").
struct Migrate {
  ObjectId object = kInvalidObject;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double unit_load = 0.0;

  friend bool operator==(const Migrate&, const Migrate&) = default;
};

struct Ack {
  /// Sequence number of the frame being answered.
  std::uint64_t acked_seq = 0;
  bool accepted = false;
  /// CreateObj only: a new physical copy was created (object bytes moved).
  bool created_new_copy = false;

  friend bool operator==(const Ack&, const Ack&) = default;
};

/// One host's load report (Sec. 4.2.2's periodic exchange).
struct PlacementStat {
  NodeId host = kInvalidNode;
  double load = 0.0;    ///< admission-load estimate (requests/sec)
  double weight = 1.0;  ///< relative-power weight (Sec. 2)
  std::uint32_t num_objects = 0;

  friend bool operator==(const PlacementStat&, const PlacementStat&) = default;
};

/// Replica re-registration after a host restart: the redirector restores
/// the replica if it is not recorded (Redirector::RestoreReplica) and
/// ignores it otherwise — announcing is idempotent, unlike a Replicate
/// notification (which increments affinity on repeat).
struct Announce {
  ObjectId object = kInvalidObject;
  NodeId host = kInvalidNode;
  std::int32_t affinity = 1;

  friend bool operator==(const Announce&, const Announce&) = default;
};

struct Shutdown {
  friend bool operator==(const Shutdown&, const Shutdown&) = default;
};

using Message = std::variant<Hello, Request, Redirect, Replicate, Migrate,
                             Ack, PlacementStat, Announce, Shutdown>;

/// The wire type tag of a decoded message.
MsgType TypeOf(const Message& msg);

}  // namespace radar::wire
