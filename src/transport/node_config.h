// Static platform description for real-system mode (DESIGN.md §16).
//
// The daemons are configured from one plain-text file every node reads —
// the real-mode stand-in for the simulator's generated topology. One node
// per line, '#' comments:
//
//   <id> <role: host|redirector|client> <address> <port> [weight]
//
// Ids must be dense 0..n-1 in file order (they double as wire NodeIds and
// as simulator node ids during replay). Exactly one redirector is
// required — real-mode v1 is hub-and-spoke. Clients take port 0 (they
// dial, never listen).
//
// The file also fixes the deterministic initial placement: object x's
// first replica lives on the (x mod num_hosts)-th host entry. Daemons and
// the replay driver both derive placement from this rule, which is what
// makes a capture replayable without any state snapshot.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/distance.h"

namespace radar::transport {

/// Matches wire::PeerRole numerically (a Hello carries this value).
enum class NodeRole : std::uint8_t {
  kHost = 0,
  kRedirector = 1,
  kClient = 2,
};

const char* NodeRoleName(NodeRole role);

struct NodeEntry {
  NodeId id = kInvalidNode;
  NodeRole role = NodeRole::kHost;
  std::string address;
  std::uint16_t port = 0;
  /// Relative-power weight (Sec. 2 heterogeneity); hosts only.
  double weight = 1.0;

  friend bool operator==(const NodeEntry&, const NodeEntry&) = default;
};

class NodeConfig {
 public:
  /// Parses the text format; std::nullopt + *error on bad input.
  static std::optional<NodeConfig> Load(std::istream& in, std::string* error);
  static std::optional<NodeConfig> LoadFile(const std::string& path,
                                            std::string* error);

  const std::vector<NodeEntry>& nodes() const { return nodes_; }
  std::int32_t num_nodes() const {
    return static_cast<std::int32_t>(nodes_.size());
  }
  const NodeEntry& At(NodeId id) const;
  bool Has(NodeId id) const {
    return id >= 0 && id < num_nodes();
  }

  /// The (sole) redirector node.
  NodeId redirector() const { return redirector_; }

  /// Host-role node ids in file order.
  const std::vector<NodeId>& hosts() const { return hosts_; }

  /// Round-robin initial placement: where object x's first replica lives.
  NodeId InitialHome(ObjectId x) const;

 private:
  std::vector<NodeEntry> nodes_;
  std::vector<NodeId> hosts_;
  NodeId redirector_ = kInvalidNode;
};

/// Real mode has no router database, so proximity degenerates to a clique:
/// distance 1 between distinct nodes, 0 to self. Fig. 2 then reduces to
/// pure unit-request-count balancing, and replay uses the same uniform
/// topology — redirect decisions depend only on request order.
class CliqueDistance final : public core::DistanceOracle {
 public:
  explicit CliqueDistance(std::int32_t num_nodes) : num_nodes_(num_nodes) {}

  std::int32_t Distance(NodeId from, NodeId to) const override;

 private:
  std::int32_t num_nodes_;
};

}  // namespace radar::transport
