#include "transport/node_config.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace radar::transport {
namespace {

bool ParseRole(const std::string& word, NodeRole* out) {
  if (word == "host") {
    *out = NodeRole::kHost;
  } else if (word == "redirector") {
    *out = NodeRole::kRedirector;
  } else if (word == "client") {
    *out = NodeRole::kClient;
  } else {
    return false;
  }
  return true;
}

bool Fail(std::string* error, int line_no, const std::string& what) {
  if (error != nullptr) {
    *error = "node config line " + std::to_string(line_no) + ": " + what;
  }
  return false;
}

}  // namespace

const char* NodeRoleName(NodeRole role) {
  switch (role) {
    case NodeRole::kHost:
      return "host";
    case NodeRole::kRedirector:
      return "redirector";
    case NodeRole::kClient:
      return "client";
  }
  return "?";
}

std::optional<NodeConfig> NodeConfig::Load(std::istream& in,
                                           std::string* error) {
  NodeConfig config;
  std::string line;
  int line_no = 0;
  bool ok = true;
  while (ok && std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::int64_t id = 0;
    std::string role_word;
    if (!(fields >> id)) continue;  // blank / comment-only line
    NodeEntry entry;
    std::int64_t port = 0;
    if (!(fields >> role_word >> entry.address >> port)) {
      ok = Fail(error, line_no, "want: <id> <role> <address> <port> [weight]");
      break;
    }
    if (id != static_cast<std::int64_t>(config.nodes_.size())) {
      ok = Fail(error, line_no, "ids must be dense 0..n-1 in file order");
      break;
    }
    if (!ParseRole(role_word, &entry.role)) {
      ok = Fail(error, line_no, "unknown role '" + role_word + "'");
      break;
    }
    if (port < 0 || port > 65535) {
      ok = Fail(error, line_no, "port out of range");
      break;
    }
    if (port == 0 && entry.role != NodeRole::kClient) {
      ok = Fail(error, line_no, "only clients may use port 0");
      break;
    }
    entry.id = static_cast<NodeId>(id);
    entry.port = static_cast<std::uint16_t>(port);
    if (fields >> entry.weight) {
      if (!(entry.weight > 0.0)) {
        ok = Fail(error, line_no, "weight must be positive");
        break;
      }
    }
    if (entry.role == NodeRole::kRedirector) {
      if (config.redirector_ != kInvalidNode) {
        ok = Fail(error, line_no, "more than one redirector");
        break;
      }
      config.redirector_ = entry.id;
    } else if (entry.role == NodeRole::kHost) {
      config.hosts_.push_back(entry.id);
    }
    config.nodes_.push_back(std::move(entry));
  }
  if (!ok) return std::nullopt;
  if (config.nodes_.empty()) {
    if (error != nullptr) *error = "node config: no nodes";
    return std::nullopt;
  }
  if (config.redirector_ == kInvalidNode) {
    if (error != nullptr) *error = "node config: no redirector";
    return std::nullopt;
  }
  return config;
}

std::optional<NodeConfig> NodeConfig::LoadFile(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot open";
    return std::nullopt;
  }
  return Load(in, error);
}

const NodeEntry& NodeConfig::At(NodeId id) const {
  RADAR_CHECK(Has(id));
  return nodes_[static_cast<std::size_t>(id)];
}

NodeId NodeConfig::InitialHome(ObjectId x) const {
  RADAR_CHECK_GE(x, 0);
  RADAR_CHECK(!hosts_.empty());
  return hosts_[static_cast<std::size_t>(x) % hosts_.size()];
}

std::int32_t CliqueDistance::Distance(NodeId from, NodeId to) const {
  RADAR_CHECK_GE(from, 0);
  RADAR_CHECK_LT(from, num_nodes_);
  RADAR_CHECK_GE(to, 0);
  RADAR_CHECK_LT(to, num_nodes_);
  return from == to ? 0 : 1;
}

}  // namespace radar::transport
