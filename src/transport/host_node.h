// The hosting-server brain of real-system mode (DESIGN.md §16).
//
// A HostNode wraps one core::HostAgent — the *same* class every simulated
// host runs — behind the Transport seam, so Fig. 4 admission, the
// Sec. 2.1 load estimates, and the Theorem 1-4 bounds are shared verbatim
// between simulator and daemon. What the real-mode brain adds around the
// agent:
//
//   - request servicing: a redirected client fetch (kRequest) feeds
//     RecordServicedIfHosted and is answered with an Ack,
//   - Fig. 4 over the wire: incoming kReplicate/kMigrate CreateObj frames
//     go through HandleCreateObj; on acceptance the *recipient* notifies
//     the redirector of its new copy (the paper's "notify x's
//     redirector", which keeps the registry a subset of physical copies),
//   - asynchronous source-side relocation: an accepted migrate triggers a
//     drop-arbitration round-trip with the redirector; only a granted
//     drop erases the local copy (refused → both copies live on — a
//     relocation can duplicate an object, never lose one),
//   - a simplified overload loop (v1): when the admission load passes the
//     high watermark, shed the hottest object to the least-loaded peer
//     known from relayed placement stats (unit rate <= m → migrate, else
//     replicate, mirroring Fig. 5's branch). The full Fig. 3 geo-
//     placement loop remains simulator-only,
//   - a state WAL: every replica-set change is appended to a binlog
//     ('C' object affinity / 'D' object), so a SIGKILL'd daemon rebuilds
//     its replica set on restart and re-announces it (kAnnounce) — the
//     real-mode equivalent of ResetAfterCrash's "disk survives".
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "binlog/binlog.h"
#include "core/host_agent.h"
#include "core/params.h"
#include "transport/node_config.h"
#include "transport/transport.h"

namespace radar::transport {

/// WAL op bytes (record payload: {op u8, object i32 LE, value i32 LE}).
inline constexpr std::uint8_t kWalCreate = 'C';  ///< value = affinity after
inline constexpr std::uint8_t kWalDrop = 'D';    ///< value unused (0)
inline constexpr std::size_t kWalPayloadSize = 9;

class HostNode final : public Handler {
 public:
  struct Options {
    /// Total object population; this node preloads objects whose
    /// InitialHome is self (first boot only — a non-empty WAL wins).
    std::int32_t num_objects = 0;
    /// Replica-set WAL path; empty disables persistence (tests).
    std::string wal_path;
    binlog::FsyncPolicy fsync = binlog::FsyncPolicy::kNone;
    core::ProtocolParams params;
  };

  struct Counters {
    std::uint64_t requests_serviced = 0;
    std::uint64_t requests_unhosted = 0;
    std::uint64_t create_accepted = 0;
    std::uint64_t create_refused = 0;
    std::uint64_t migrates_out = 0;
    std::uint64_t replicates_out = 0;
    std::uint64_t drops_granted = 0;
    std::uint64_t drops_refused = 0;
    std::uint64_t stats_seen = 0;
    std::uint64_t wal_errors = 0;
  };

  /// `config` and `transport` must outlive the node.
  HostNode(const NodeConfig& config, NodeId self, Transport* transport,
           Options options);

  /// Replays the WAL (or seeds initial replicas into a fresh one) and
  /// announces the replica set if the redirector is already reachable.
  /// False + *error on WAL I/O failure.
  bool Init(std::string* error);

  // Handler:
  void OnFrame(NodeId from, const wire::DecodedFrame& frame) override;
  void OnPeerUp(NodeId peer) override;
  void OnPeerDown(NodeId peer) override;

  /// Drives the measurement / stat-report / overload timers; call often
  /// (every event-loop iteration) — it no-ops until an interval elapses.
  void OnTick();

  bool shutdown_requested() const { return shutdown_; }
  const core::HostAgent& agent() const { return agent_; }
  const Counters& counters() const { return counters_; }

 private:
  struct PeerStat {
    double load = 0.0;
    double weight = 1.0;
  };
  /// What an outstanding frame (awaiting its Ack) was for.
  enum class PendingKind : std::uint8_t {
    kCreateMigrate,    ///< CreateObj(MIGRATE) sent to a peer host
    kCreateReplicate,  ///< CreateObj(REPLICATE) sent to a peer host
    kDropRequest,      ///< drop arbitration sent to the redirector
  };
  struct Pending {
    PendingKind kind;
    ObjectId object;
    NodeId peer;
  };

  void HandleRequest(NodeId from, std::uint64_t seq, const wire::Request& req);
  void HandleCreate(NodeId from, std::uint64_t seq, core::CreateObjMethod m,
                    ObjectId object, double unit_load);
  void HandleAck(NodeId from, const wire::Ack& ack);
  void AnnounceReplicas();
  /// One overload round: shed at most one object (the per-tick pacing of
  /// the v1 loop; the next placement interval sheds the next one).
  void MaybeOffload();
  bool WalAppend(std::uint8_t op, ObjectId object, std::int32_t value);

  const NodeConfig& config_;
  Transport* transport_;
  Options options_;
  core::HostAgent agent_;
  binlog::BinlogWriter wal_;
  std::map<NodeId, PeerStat> peer_stats_;
  std::map<std::uint64_t, Pending> pending_;
  Counters counters_;
  std::int64_t next_measure_at_ = -1;
  std::int64_t next_placement_at_ = -1;
  bool shutdown_ = false;
};

}  // namespace radar::transport
