#include "transport/redirector_node.h"

#include <utility>

#include "common/check.h"

namespace radar::transport {

RedirectorNode::RedirectorNode(const NodeConfig& config, Transport* transport,
                               Options options)
    : config_(config),
      transport_(transport),
      options_(options),
      distance_(config.num_nodes()),
      redirector_(distance_, options.distribution_constant,
                  config.redirector()) {
  RADAR_CHECK_EQ(transport->self(), config.redirector());
  redirector_.set_min_replicas(options_.min_replicas);
  for (ObjectId x = 0; x < options_.num_objects; ++x) {
    redirector_.RegisterObject(x, config_.InitialHome(x));
  }
}

void RedirectorNode::OnFrame(NodeId from, const wire::DecodedFrame& frame) {
  switch (wire::TypeOf(frame.msg)) {
    case wire::MsgType::kRequest: {
      const auto& req = std::get<wire::Request>(frame.msg);
      NodeId host = kInvalidNode;
      if (req.object >= 0 && redirector_.KnowsObject(req.object) &&
          config_.Has(req.gateway)) {
        host = redirector_.ChooseReplica(req.object, req.gateway);
      }
      if (host == kInvalidNode) {
        ++counters_.redirects_no_replica;
      } else {
        ++counters_.redirects;
      }
      transport_->Send(from, wire::Redirect{req.object, host});
      break;
    }
    case wire::MsgType::kReplicate: {
      // A host reports it created a copy (or bumped its affinity) after
      // accepting a CreateObj — recorded after the fact, so the registry
      // stays a subset of physical copies.
      const auto& note = std::get<wire::Replicate>(frame.msg);
      if (note.object >= 0 && redirector_.KnowsObject(note.object) &&
          note.to == from) {
        redirector_.OnReplicaCreated(note.object, note.to);
        ++counters_.creates_recorded;
      }
      transport_->Send(from, wire::Ack{frame.seq, true, false});
      break;
    }
    case wire::MsgType::kMigrate: {
      // Drop arbitration: `from` migrated its copy away and asks to drop.
      const auto& req = std::get<wire::Migrate>(frame.msg);
      bool granted = false;
      if (req.object >= 0 && redirector_.KnowsObject(req.object) &&
          req.from == from) {
        granted = redirector_.RequestDrop(req.object, from);
      }
      if (granted) {
        ++counters_.drops_granted;
      } else {
        ++counters_.drops_refused;
      }
      transport_->Send(from, wire::Ack{frame.seq, granted, false});
      break;
    }
    case wire::MsgType::kAnnounce: {
      const auto& ann = std::get<wire::Announce>(frame.msg);
      if (ann.object >= 0 && redirector_.KnowsObject(ann.object) &&
          ann.host == from && ann.affinity >= 1 &&
          redirector_.AffinityOf(ann.object, ann.host) == 0) {
        redirector_.RestoreReplica(ann.object, ann.host, ann.affinity);
        ++counters_.announces_restored;
      } else {
        ++counters_.announces_ignored;
      }
      break;
    }
    case wire::MsgType::kPlacementStat: {
      const auto& stat = std::get<wire::PlacementStat>(frame.msg);
      if (stat.host != from) break;
      host_stats_[from] = stat;
      // The Sec. 4.2.2 load exchange, hub-and-spoke: relay to every other
      // host. A down host's relays spool and drain on its reconnect.
      for (const NodeId peer : config_.hosts()) {
        if (peer == from) continue;
        transport_->Send(peer, stat);
        ++counters_.stats_relayed;
      }
      break;
    }
    case wire::MsgType::kShutdown:
      shutdown_ = true;
      break;
    default:
      break;  // hello/redirect/ack: nothing for the redirector brain
  }
}

void RedirectorNode::OnPeerDown(NodeId peer) {
  if (!config_.Has(peer) || config_.At(peer).role != NodeRole::kHost) return;
  const int pruned = redirector_.PruneHost(peer);
  if (pruned > 0) {
    ++counters_.hosts_pruned;
    counters_.replicas_pruned += static_cast<std::uint64_t>(pruned);
  }
  host_stats_.erase(peer);
}

std::int32_t RedirectorNode::CountObjectsWithoutReplica() const {
  std::int32_t lost = 0;
  for (ObjectId x = 0; x < options_.num_objects; ++x) {
    if (redirector_.ReplicaCount(x) == 0) ++lost;
  }
  return lost;
}

}  // namespace radar::transport
