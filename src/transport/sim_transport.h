// Simulator-backed transport (DESIGN.md §16).
//
// SimNet is an in-memory message hub over sim::Simulator: every Send is
// encoded through the real wire codec, held for a fixed propagation
// delay, decoded, and handed to the destination brain — so a brain
// running under SimNet exercises exactly the bytes TcpTransport would put
// on a socket, deterministically. Node up/down mirrors TCP semantics:
// frames to a down node spool in memory and drain on SetNodeUp(true),
// frames already in flight to it are lost (a dropped connection loses its
// buffered data), and the other brains observe OnPeerDown/OnPeerUp.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"
#include "transport/transport.h"

namespace radar::transport {

class SimNet {
 public:
  /// `sim` must outlive the net. Every pair of nodes is `delay_us` apart.
  SimNet(sim::Simulator* sim, std::int32_t num_nodes, std::int64_t delay_us);

  /// Attaches `handler` as node `id`'s brain and returns the Transport the
  /// brain should send through. The transport is owned by the net. Nodes
  /// start up.
  Transport* Attach(NodeId id, Handler* handler);

  /// Marks a node down (its in-flight deliveries will be dropped, sends to
  /// it spool) or back up (spool drains, peers are notified). Notifies the
  /// handlers of all *other* up nodes, and — on up — the returning node's
  /// handler about every up peer.
  void SetNodeUp(NodeId id, bool up);

  bool IsUp(NodeId id) const;

  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_spooled() const { return frames_spooled_; }
  std::uint64_t frames_drained() const { return frames_drained_; }

 private:
  class SimTransport final : public Transport {
   public:
    SimTransport(SimNet* net, NodeId self) : net_(net), self_(self) {}

    NodeId self() const override { return self_; }
    std::int64_t Now() const override;
    std::uint64_t Send(NodeId to, const wire::Message& msg) override;
    bool IsPeerUp(NodeId to) const override { return net_->IsUp(to); }

   private:
    SimNet* net_;
    NodeId self_;
  };

  struct Delivery {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::vector<std::uint8_t> bytes;
  };

  struct Node {
    std::unique_ptr<SimTransport> transport;
    Handler* handler = nullptr;
    bool up = true;
    std::uint64_t next_seq = 1;
    /// Encoded frames awaiting this node's return, in send order.
    std::vector<Delivery> spool;
  };

  Node& NodeAt(NodeId id);
  const Node& NodeAt(NodeId id) const;
  std::uint64_t SendFrom(NodeId src, NodeId dst, const wire::Message& msg);
  /// Schedules `delivery` to arrive delay_us from now.
  void ScheduleDelivery(Delivery delivery);
  /// Event body: decode and dispatch (or drop, if dst went down).
  void Deliver(std::uint64_t id);

  sim::Simulator* sim_;
  std::int64_t delay_us_;
  std::vector<Node> nodes_;
  std::map<std::uint64_t, Delivery> in_flight_;
  std::uint64_t next_delivery_id_ = 1;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_spooled_ = 0;
  std::uint64_t frames_drained_ = 0;
};

}  // namespace radar::transport
