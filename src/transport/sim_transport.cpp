#include "transport/sim_transport.h"

#include <utility>

#include "common/check.h"
#include "wire/codec.h"

namespace radar::transport {

SimNet::SimNet(sim::Simulator* sim, std::int32_t num_nodes,
               std::int64_t delay_us)
    : sim_(sim), delay_us_(delay_us) {
  RADAR_CHECK_GT(num_nodes, 0);
  RADAR_CHECK_GE(delay_us, 0);
  nodes_.resize(static_cast<std::size_t>(num_nodes));
}

SimNet::Node& SimNet::NodeAt(NodeId id) {
  RADAR_CHECK_GE(id, 0);
  RADAR_CHECK_LT(id, static_cast<NodeId>(nodes_.size()));
  return nodes_[static_cast<std::size_t>(id)];
}

const SimNet::Node& SimNet::NodeAt(NodeId id) const {
  RADAR_CHECK_GE(id, 0);
  RADAR_CHECK_LT(id, static_cast<NodeId>(nodes_.size()));
  return nodes_[static_cast<std::size_t>(id)];
}

Transport* SimNet::Attach(NodeId id, Handler* handler) {
  Node& node = NodeAt(id);
  RADAR_CHECK_MSG(node.transport == nullptr, "node attached twice");
  node.transport = std::make_unique<SimTransport>(this, id);
  node.handler = handler;
  return node.transport.get();
}

bool SimNet::IsUp(NodeId id) const { return NodeAt(id).up; }

void SimNet::SetNodeUp(NodeId id, bool up) {
  Node& node = NodeAt(id);
  if (node.up == up) return;
  node.up = up;
  if (up) {
    // Drain the spool first so OnPeerUp observers find the backlog already
    // queued (the TcpTransport ordering).
    for (Delivery& d : node.spool) {
      ++frames_drained_;
      ScheduleDelivery(std::move(d));
    }
    node.spool.clear();
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeId peer = static_cast<NodeId>(i);
    if (peer == id) continue;
    Node& other = nodes_[i];
    if (!other.up || other.handler == nullptr) continue;
    if (up) {
      other.handler->OnPeerUp(id);
      if (node.handler != nullptr) node.handler->OnPeerUp(peer);
    } else {
      other.handler->OnPeerDown(id);
    }
  }
}

std::int64_t SimNet::SimTransport::Now() const { return net_->sim_->Now(); }

std::uint64_t SimNet::SimTransport::Send(NodeId to, const wire::Message& msg) {
  return net_->SendFrom(self_, to, msg);
}

std::uint64_t SimNet::SendFrom(NodeId src, NodeId dst,
                               const wire::Message& msg) {
  Node& sender = NodeAt(src);
  const std::uint64_t seq = sender.next_seq++;
  Delivery delivery{src, dst, wire::Encode(seq, msg)};
  Node& receiver = NodeAt(dst);
  if (!receiver.up) {
    ++frames_spooled_;
    receiver.spool.push_back(std::move(delivery));
  } else {
    ScheduleDelivery(std::move(delivery));
  }
  return seq;
}

void SimNet::ScheduleDelivery(Delivery delivery) {
  const std::uint64_t id = next_delivery_id_++;
  in_flight_.emplace(id, std::move(delivery));
  // The closure captures 16 bytes (well inside EventFn's inline buffer);
  // the frame bytes themselves stay in in_flight_.
  sim_->Schedule(delay_us_, [this, id] { Deliver(id); });
}

void SimNet::Deliver(std::uint64_t id) {
  const auto it = in_flight_.find(id);
  RADAR_CHECK(it != in_flight_.end());
  const Delivery delivery = std::move(it->second);
  in_flight_.erase(it);
  Node& receiver = NodeAt(delivery.dst);
  if (!receiver.up || receiver.handler == nullptr) {
    // The destination died while the frame was in flight: connection loss
    // drops it, exactly as TCP would.
    ++frames_dropped_;
    return;
  }
  const wire::DecodeResult decoded =
      wire::DecodeFrame(delivery.bytes.data(), delivery.bytes.size());
  RADAR_CHECK_MSG(decoded.status == wire::DecodeStatus::kOk,
                  "SimNet produced an undecodable frame");
  RADAR_CHECK_EQ(decoded.consumed, delivery.bytes.size());
  ++frames_delivered_;
  receiver.handler->OnFrame(delivery.src, decoded.frame);
}

}  // namespace radar::transport
