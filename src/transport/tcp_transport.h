// Socket-backed transport for the real daemons (DESIGN.md §16).
//
// One TcpTransport per process: it listens on the node's configured port,
// dials the peers it was told to reach (capped exponential backoff),
// identifies every connection with a Hello frame, and runs a
// single-threaded non-blocking poll(2) loop. All nondeterminism of real
// mode — sockets, wall clocks, partial reads, reconnects — lives behind
// this class (and the binlog spool files it writes); brains see only the
// Transport/Handler seam, and radar_lint's transport-confinement rule
// keeps it that way.
//
// Reliability model: a frame handed to Send is delivered to the peer's
// brain at-most-once per connection attempt, in order. Frames queued to a
// peer that is down (or that dies mid-flight with the frame still
// buffered) go to a per-peer disk spool; the whole spool is re-sent ahead
// of new traffic when the peer identifies itself again, then truncated.
// Brains must therefore treat unacked exchanges as refusals (HostNode
// does) — the spool gives the control plane continuity across restarts,
// not exactly-once semantics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "binlog/binlog.h"
#include "transport/node_config.h"
#include "transport/transport.h"

namespace radar::transport {

class TcpTransport final : public Transport {
 public:
  struct Options {
    /// Directory for per-peer spool files ("spool-<self>-to-<peer>.binlog");
    /// empty disables spooling (frames to a down peer are counted and
    /// dropped — the client's mode).
    std::string spool_dir;
    binlog::FsyncPolicy fsync = binlog::FsyncPolicy::kNone;
    /// Append every received frame here (the replay capture); empty
    /// disables capture.
    std::string capture_path;
    std::int64_t backoff_initial_ms = 50;
    std::int64_t backoff_max_ms = 2000;
    /// Backoff cap used until a peer has been identified at least once.
    /// Initial platform assembly races the peers' bind order: a dial
    /// refused at boot because the peer has not bound yet should retry
    /// quickly, not earn the multi-second cap meant for real outages.
    std::int64_t backoff_preconnect_max_ms = 250;
    /// Abort a non-blocking connect() still pending after this long and
    /// redial from a fresh socket (fresh ephemeral port). Without a
    /// deadline one attempt whose SYNs vanish — firewalled peer, or a
    /// stale TIME-WAIT tuple swallowing the handshake on loopback — can
    /// wedge the kernel's retransmit cycle for minutes while the backoff
    /// loop waits on it.
    std::int64_t connect_timeout_ms = 3000;
  };

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t frames_spooled = 0;
    std::uint64_t frames_drained = 0;
    std::uint64_t frames_dropped = 0;  ///< down peer, no spool configured
    std::uint64_t connects = 0;        ///< successful identifications
    std::uint64_t disconnects = 0;
    std::uint64_t decode_errors = 0;   ///< connections dropped on bad bytes
    std::uint64_t connect_timeouts = 0;  ///< dials aborted at the deadline
  };

  /// `config` and `handler` must outlive the transport. `handler` may be
  /// null at construction (brain and transport reference each other) but
  /// must be set before Start.
  TcpTransport(const NodeConfig& config, NodeId self, wire::PeerRole role,
               Handler* handler, Options options);

  void SetHandler(Handler* handler) { handler_ = handler; }
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds/listens (when the node's configured port is nonzero) and opens
  /// the capture log. False + *error on failure.
  bool Start(std::string* error);

  /// Marks `peer` as dialed-by-us: the poll loop keeps an outbound
  /// connection to it alive (with backoff) from now on.
  void ConnectTo(NodeId peer);

  /// Runs one poll iteration: due dials, accepts, reads (frames dispatch
  /// to the handler from here), writes. Blocks at most `timeout_ms`.
  void PollOnce(int timeout_ms);

  /// Closes every socket (idempotent; the destructor calls it).
  void Stop();

  // Transport:
  NodeId self() const override { return self_; }
  std::int64_t Now() const override;
  std::uint64_t Send(NodeId to, const wire::Message& msg) override;
  bool IsPeerUp(NodeId to) const override;

  const Stats& stats() const { return stats_; }
  /// Frames currently sitting in `peer`'s disk spool.
  std::uint64_t SpoolDepth(NodeId peer) const;
  /// True when every queued byte has been handed to the kernel and no
  /// connect() is in flight (callers poll on this before exiting).
  bool Flushed() const;

 private:
  struct Conn {
    NodeId peer = kInvalidNode;  ///< kInvalidNode until Hello identifies it
    bool outbound = false;
    bool connecting = false;  ///< non-blocking connect() still in progress
    std::int64_t connect_deadline_us = 0;  ///< abort the dial past this
    std::vector<std::uint8_t> rbuf;
    std::vector<std::uint8_t> wbuf;
    std::size_t woff = 0;  ///< bytes of wbuf already written
  };

  struct PeerState {
    bool wanted = false;  ///< ConnectTo called; keep dialing
    bool ever_identified = false;  ///< selects the redial backoff cap
    int fd = -1;          ///< identified live connection (-1: down)
    std::int64_t backoff_ms = 0;
    std::int64_t next_dial_at_us = 0;
    binlog::BinlogWriter spool;
    std::uint64_t spool_depth = 0;
  };

  PeerState& PeerOf(NodeId id);
  std::string SpoolPath(NodeId peer) const;
  /// Opens (and measures) the peer's spool on first use.
  bool EnsureSpool(PeerState& peer_state, NodeId peer);
  /// Closes connecting sockets past their deadline so the backoff loop
  /// can retry from a fresh ephemeral port.
  void AbortStalledDials(std::int64_t now_us);
  void StartDialsDue(std::int64_t now_us);
  void Dial(NodeId peer, std::int64_t now_us);
  void ScheduleRedial(NodeId peer, std::int64_t now_us);
  void AcceptReady();
  /// Connection is established (TCP-level): queue our Hello.
  void OnConnected(int fd, Conn& conn);
  /// Connection is identified as `peer`: adopt it, drain the spool, notify.
  void IdentifyConn(int fd, Conn& conn, NodeId peer);
  void ReadReady(int fd);
  void WriteReady(int fd);
  /// Tears the connection down; notifies OnPeerDown when it was the
  /// peer's identified connection.
  void CloseConn(int fd);
  void QueueBytes(Conn& conn, const std::uint8_t* data, std::size_t size);

  const NodeConfig& config_;
  NodeId self_;
  wire::PeerRole role_;
  Handler* handler_;
  Options options_;
  int listen_fd_ = -1;
  std::map<int, Conn> conns_;
  std::map<NodeId, PeerState> peers_;
  binlog::BinlogWriter capture_;
  std::uint64_t next_seq_ = 1;
  Stats stats_;
  bool started_ = false;
};

}  // namespace radar::transport
