// The redirector brain of real-system mode (DESIGN.md §16).
//
// Wraps one core::Redirector — the same Fig. 2 chooser and replica
// registry the simulator uses — behind the Transport seam. Real-mode v1
// is hub-and-spoke: this node answers client redirect queries, arbitrates
// replica drops, relays host load reports (the Sec. 4.2.2 exchange), and
// tracks replica liveness through connection state:
//
//   - a host disconnecting is treated as a crash: its replicas are pruned
//     from the registry (PruneHost) so no client is redirected into a
//     dead host — objects whose whole set is pruned stay registered with
//     zero live replicas,
//   - a host reconnecting re-announces its disk-resident replica set
//     (kAnnounce); announcements are idempotent (RestoreReplica only when
//     the replica is not recorded), so a flapping connection never
//     double-counts affinity.
#pragma once

#include <cstdint>
#include <map>

#include "core/redirector.h"
#include "transport/node_config.h"
#include "transport/transport.h"

namespace radar::transport {

class RedirectorNode final : public Handler {
 public:
  struct Options {
    /// Total object population (round-robin initial registration).
    std::int32_t num_objects = 0;
    double distribution_constant = 2.0;
    /// Drop-refusal floor (Redirector::set_min_replicas).
    int min_replicas = 1;
  };

  struct Counters {
    std::uint64_t redirects = 0;
    std::uint64_t redirects_no_replica = 0;
    std::uint64_t creates_recorded = 0;
    std::uint64_t drops_granted = 0;
    std::uint64_t drops_refused = 0;
    std::uint64_t announces_restored = 0;
    std::uint64_t announces_ignored = 0;
    std::uint64_t stats_relayed = 0;
    std::uint64_t hosts_pruned = 0;
    std::uint64_t replicas_pruned = 0;
  };

  /// `config` and `transport` must outlive the node.
  RedirectorNode(const NodeConfig& config, Transport* transport,
                 Options options);

  // Handler:
  void OnFrame(NodeId from, const wire::DecodedFrame& frame) override;
  void OnPeerDown(NodeId peer) override;

  bool shutdown_requested() const { return shutdown_; }
  const core::Redirector& redirector() const { return redirector_; }
  const Counters& counters() const { return counters_; }

  /// Objects currently recorded with zero live replicas (the conservation
  /// metric: must be 0 once every host is up and announced).
  std::int32_t CountObjectsWithoutReplica() const;

 private:
  const NodeConfig& config_;
  Transport* transport_;
  Options options_;
  CliqueDistance distance_;
  core::Redirector redirector_;
  std::map<NodeId, wire::PlacementStat> host_stats_;
  Counters counters_;
  bool shutdown_ = false;
};

}  // namespace radar::transport
