// The transport seam of real-system mode (DESIGN.md §16).
//
// Protocol brains (transport/host_node.h, transport/redirector_node.h)
// are written against this pair of interfaces and nothing else: no
// sockets, no wall clocks, no simulator types. The same brain object
// then runs
//   - under SimTransport (transport/sim_transport.h) inside the
//     deterministic simulator, which is how the brains are unit-tested
//     and how captured traffic is replayed, and
//   - under TcpTransport (transport/tcp_transport.h) inside the
//     radar-hostd / radar-redirectd daemons on real sockets.
//
// radar_lint enforces the split: syscall and wall-clock tokens are
// confined to src/transport/ + src/binlog/ (the transport-confinement
// rule), so a brain *cannot* grow a hidden nondeterminism dependency
// without failing CI.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "wire/codec.h"
#include "wire/frame.h"

namespace radar::transport {

/// Callbacks a brain implements. Invoked only from the transport's event
/// loop (single-threaded; no locking needed in brains).
class Handler {
 public:
  virtual ~Handler() = default;

  /// A decoded frame arrived from `from`. `frame.seq` is the sender's
  /// sequence number (echo it in Ack::acked_seq when answering).
  virtual void OnFrame(NodeId from, const wire::DecodedFrame& frame) = 0;

  /// A peer became reachable (connection established and identified; any
  /// spooled frames have already been queued for it).
  virtual void OnPeerUp(NodeId peer) { (void)peer; }

  /// A peer became unreachable (connection lost; subsequent Sends spool).
  virtual void OnPeerDown(NodeId peer) { (void)peer; }
};

/// What a brain may do to the world: send frames and read the clock.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual NodeId self() const = 0;

  /// Current time in microseconds. SimTransport returns the simulation
  /// clock; TcpTransport returns CLOCK_MONOTONIC. Brains must treat it as
  /// opaque monotonic time (only differences are meaningful).
  virtual std::int64_t Now() const = 0;

  /// Queues `msg` for `to` and returns the sequence number it was framed
  /// under. Never blocks and never fails from the brain's point of view:
  /// frames to an unreachable peer are spooled and drained on reconnect.
  virtual std::uint64_t Send(NodeId to, const wire::Message& msg) = 0;

  /// True when `to` is currently reachable (frames flow instead of
  /// spooling). Advisory — a send racing a disconnect still spools.
  virtual bool IsPeerUp(NodeId to) const = 0;
};

}  // namespace radar::transport
