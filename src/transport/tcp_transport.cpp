#include "transport/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "wire/codec.h"

namespace radar::transport {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

int MakeSocket() {
  return ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

bool FillAddr(const NodeEntry& entry, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(entry.port);
  return ::inet_pton(AF_INET, entry.address.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

TcpTransport::TcpTransport(const NodeConfig& config, NodeId self,
                           wire::PeerRole role, Handler* handler,
                           Options options)
    : config_(config),
      self_(self),
      role_(role),
      handler_(handler),
      options_(std::move(options)) {
  RADAR_CHECK(config.Has(self));
  for (const NodeEntry& entry : config.nodes()) {
    if (entry.id == self) continue;
    peers_[entry.id].backoff_ms = options_.backoff_initial_ms;
  }
}

TcpTransport::~TcpTransport() { Stop(); }

std::int64_t TcpTransport::Now() const {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000 +
         static_cast<std::int64_t>(ts.tv_nsec) / 1000;
}

TcpTransport::PeerState& TcpTransport::PeerOf(NodeId id) {
  const auto it = peers_.find(id);
  RADAR_CHECK_MSG(it != peers_.end(), "unknown peer node");
  return it->second;
}

bool TcpTransport::Start(std::string* error) {
  RADAR_CHECK_MSG(handler_ != nullptr, "SetHandler before Start");
  const NodeEntry& me = config_.At(self_);
  if (me.port != 0) {
    const int fd = MakeSocket();
    if (fd < 0) {
      if (error != nullptr) *error = "socket: " + std::string(std::strerror(errno));
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    if (!FillAddr(me, &addr)) {
      ::close(fd);
      if (error != nullptr) *error = "bad listen address: " + me.address;
      return false;
    }
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 64) != 0) {
      if (error != nullptr) {
        *error = me.address + ":" + std::to_string(me.port) +
                 ": bind/listen: " + std::string(std::strerror(errno));
      }
      ::close(fd);
      return false;
    }
    listen_fd_ = fd;
  }
  if (!options_.capture_path.empty() &&
      !capture_.Open(options_.capture_path, options_.fsync, error)) {
    Stop();
    return false;
  }
  started_ = true;
  return true;
}

void TcpTransport::Stop() {
  while (!conns_.empty()) CloseConn(conns_.begin()->first);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  capture_.Close();
  for (auto& [id, peer] : peers_) peer.spool.Close();
  started_ = false;
}

void TcpTransport::ConnectTo(NodeId peer) {
  PeerState& state = PeerOf(peer);
  state.wanted = true;
  state.next_dial_at_us = 0;  // dial on the next poll iteration
}

std::string TcpTransport::SpoolPath(NodeId peer) const {
  return options_.spool_dir + "/spool-" + std::to_string(self_) + "-to-" +
         std::to_string(peer) + ".binlog";
}

bool TcpTransport::EnsureSpool(PeerState& peer_state, NodeId peer) {
  if (peer_state.spool.is_open()) return true;
  if (options_.spool_dir.empty()) return false;
  std::string error;
  const std::string path = SpoolPath(peer);
  // A restart continues an existing spool: count what is already there so
  // SpoolDepth and the drain stay truthful.
  if (const auto existing = binlog::ReadBinlog(path, &error)) {
    peer_state.spool_depth = existing->records.size();
  }
  return peer_state.spool.Open(path, options_.fsync, &error);
}

std::uint64_t TcpTransport::Send(NodeId to, const wire::Message& msg) {
  const std::uint64_t seq = next_seq_++;
  const std::vector<std::uint8_t> bytes = wire::Encode(seq, msg);
  PeerState& peer = PeerOf(to);
  const auto conn_it = peer.fd >= 0 ? conns_.find(peer.fd) : conns_.end();
  if (conn_it != conns_.end()) {
    QueueBytes(conn_it->second, bytes.data(), bytes.size());
    ++stats_.frames_sent;
  } else if (EnsureSpool(peer, to)) {
    if (peer.spool.Append(Now(), self_, to, bytes.data(), bytes.size())) {
      ++peer.spool_depth;
      ++stats_.frames_spooled;
    } else {
      ++stats_.frames_dropped;
    }
  } else {
    ++stats_.frames_dropped;
  }
  return seq;
}

bool TcpTransport::IsPeerUp(NodeId to) const {
  const auto it = peers_.find(to);
  return it != peers_.end() && it->second.fd >= 0;
}

std::uint64_t TcpTransport::SpoolDepth(NodeId peer) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() ? it->second.spool_depth : 0;
}

bool TcpTransport::Flushed() const {
  for (const auto& [fd, conn] : conns_) {
    if (conn.connecting || conn.woff < conn.wbuf.size()) return false;
  }
  return true;
}

void TcpTransport::QueueBytes(Conn& conn, const std::uint8_t* data,
                              std::size_t size) {
  // Compact the already-written prefix before growing the buffer.
  if (conn.woff > 0 && conn.woff == conn.wbuf.size()) {
    conn.wbuf.clear();
    conn.woff = 0;
  }
  conn.wbuf.insert(conn.wbuf.end(), data, data + size);
}

void TcpTransport::StartDialsDue(std::int64_t now_us) {
  for (auto& [id, peer] : peers_) {
    if (!peer.wanted || peer.fd >= 0) continue;
    bool dialing = false;
    for (const auto& [fd, conn] : conns_) {
      if (conn.outbound && conn.peer == id) {
        dialing = true;
        break;
      }
    }
    if (!dialing && now_us >= peer.next_dial_at_us) Dial(id, now_us);
  }
}

void TcpTransport::ScheduleRedial(NodeId peer, std::int64_t now_us) {
  PeerState& state = PeerOf(peer);
  const std::int64_t cap = state.ever_identified
                               ? options_.backoff_max_ms
                               : options_.backoff_preconnect_max_ms;
  state.backoff_ms = std::min(state.backoff_ms, cap);
  state.next_dial_at_us = now_us + state.backoff_ms * 1000;
  state.backoff_ms = std::min(state.backoff_ms * 2, cap);
}

void TcpTransport::Dial(NodeId peer, std::int64_t now_us) {
  const NodeEntry& entry = config_.At(peer);
  sockaddr_in addr{};
  const int fd = FillAddr(entry, &addr) ? MakeSocket() : -1;
  if (fd < 0) {
    RADAR_LOG_DEBUG("[tcp %d] dial peer=%d socket: %s\n", self_, peer,
                    std::strerror(errno));
    ScheduleRedial(peer, now_us);
    return;
  }
  Conn conn;
  conn.peer = peer;
  conn.outbound = true;
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    RADAR_LOG_DEBUG("[tcp %d] dial peer=%d fd=%d connected\n", self_, peer, fd);
    auto [it, inserted] = conns_.emplace(fd, std::move(conn));
    OnConnected(fd, it->second);
    IdentifyConn(fd, it->second, peer);
  } else if (errno == EINPROGRESS) {
    RADAR_LOG_DEBUG("[tcp %d] dial peer=%d fd=%d in progress\n", self_, peer,
                    fd);
    conn.connecting = true;
    conn.connect_deadline_us = now_us + options_.connect_timeout_ms * 1000;
    conns_.emplace(fd, std::move(conn));
  } else {
    RADAR_LOG_DEBUG("[tcp %d] dial peer=%d failed: %s\n", self_, peer,
                    std::strerror(errno));
    ::close(fd);
    ScheduleRedial(peer, now_us);
  }
}

void TcpTransport::AcceptReady() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        RADAR_LOG_DEBUG("[tcp %d] accept failed: %s\n", self_,
                        std::strerror(errno));
      }
      return;
    }
    auto [it, inserted] = conns_.emplace(fd, Conn{});
    RADAR_LOG_DEBUG("[tcp %d] accept fd=%d inserted=%d\n", self_, fd,
                    static_cast<int>(inserted));
    OnConnected(fd, it->second);
  }
}

void TcpTransport::OnConnected(int fd, Conn& conn) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  conn.connecting = false;
  // Identify ourselves first; the peer adopts the connection on receipt.
  const std::vector<std::uint8_t> hello =
      wire::Encode(next_seq_++, wire::Hello{self_, role_});
  QueueBytes(conn, hello.data(), hello.size());
}

void TcpTransport::IdentifyConn(int fd, Conn& conn, NodeId peer) {
  conn.peer = peer;
  PeerState& state = PeerOf(peer);
  RADAR_LOG_DEBUG("[tcp %d] identify fd=%d peer=%d (old state.fd=%d)\n", self_, fd,
            peer, state.fd);
  if (state.fd >= 0 && state.fd != fd) {
    // The peer reconnected before we noticed the old connection die.
    // Adopt the new one; close the stale socket without a down/up blip.
    const auto stale = conns_.find(state.fd);
    if (stale != conns_.end()) {
      stale->second.peer = kInvalidNode;
      CloseConn(state.fd);
    }
  }
  state.fd = fd;
  state.ever_identified = true;
  state.backoff_ms = options_.backoff_initial_ms;
  ++stats_.connects;
  // Drain the spool ahead of new traffic, preserving send order across
  // the outage.
  if (!options_.spool_dir.empty()) {
    std::string error;
    if (const auto spooled = binlog::ReadBinlog(SpoolPath(peer), &error)) {
      for (const binlog::Record& record : spooled->records) {
        QueueBytes(conn, record.payload.data(), record.payload.size());
        ++stats_.frames_drained;
        ++stats_.frames_sent;
      }
      if (!spooled->records.empty() && EnsureSpool(state, peer)) {
        state.spool.Reset();
      }
      state.spool_depth = 0;
    }
  }
  handler_->OnPeerUp(peer);
}

void TcpTransport::CloseConn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const NodeId peer = it->second.peer;
  const bool was_identified = !it->second.connecting && peer != kInvalidNode &&
                              peers_.count(peer) != 0 &&
                              peers_.at(peer).fd == fd;
  RADAR_LOG_DEBUG("[tcp %d] close fd=%d peer=%d identified=%d connecting=%d\n",
            self_, fd, peer, static_cast<int>(was_identified), static_cast<int>(it->second.connecting));
  conns_.erase(it);
  ::close(fd);
  if (peer != kInvalidNode && peers_.count(peer) != 0) {
    ScheduleRedial(peer, Now());
  }
  if (was_identified) {
    peers_.at(peer).fd = -1;
    ++stats_.disconnects;
    handler_->OnPeerDown(peer);
  }
}

void TcpTransport::ReadReady(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (true) {
    const std::size_t old_size = conn.rbuf.size();
    conn.rbuf.resize(old_size + kReadChunk);
    const ssize_t n = ::recv(fd, conn.rbuf.data() + old_size, kReadChunk, 0);
    if (n > 0) {
      conn.rbuf.resize(old_size + static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < kReadChunk) break;
      continue;
    }
    conn.rbuf.resize(old_size);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(fd);  // orderly close or hard error
    return;
  }
  std::size_t off = 0;
  while (off < conn.rbuf.size()) {
    const wire::DecodeResult decoded =
        wire::DecodeFrame(conn.rbuf.data() + off, conn.rbuf.size() - off);
    if (decoded.status == wire::DecodeStatus::kNeedMore) break;
    if (decoded.status != wire::DecodeStatus::kOk) {
      // Corrupt stream: this transport never resynchronizes mid-stream —
      // it drops the connection and lets the dial/accept path rebuild it.
      ++stats_.decode_errors;
      CloseConn(fd);
      return;
    }
    const std::uint8_t* frame_bytes = conn.rbuf.data() + off;
    const std::size_t frame_size = decoded.consumed;
    off += decoded.consumed;
    if (conn.peer == kInvalidNode) {
      const auto* hello = std::get_if<wire::Hello>(&decoded.frame.msg);
      if (hello == nullptr || !config_.Has(hello->node) ||
          hello->node == self_) {
        ++stats_.decode_errors;
        CloseConn(fd);
        return;
      }
      IdentifyConn(fd, conn, hello->node);
      continue;
    }
    if (std::holds_alternative<wire::Hello>(decoded.frame.msg)) continue;
    ++stats_.frames_received;
    if (capture_.is_open()) {
      capture_.Append(Now(), conn.peer, self_, frame_bytes, frame_size);
    }
    handler_->OnFrame(conn.peer, decoded.frame);
    // The handler may have closed this very connection (e.g. Stop()).
    const auto again = conns_.find(fd);
    if (again == conns_.end()) return;
    RADAR_CHECK(&again->second == &conn);
  }
  conn.rbuf.erase(conn.rbuf.begin(),
                  conn.rbuf.begin() + static_cast<std::ptrdiff_t>(off));
}

void TcpTransport::WriteReady(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.connecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      CloseConn(fd);
      return;
    }
    OnConnected(fd, conn);
    IdentifyConn(fd, conn, conn.peer);
  }
  while (conn.woff < conn.wbuf.size()) {
    const ssize_t n = ::send(fd, conn.wbuf.data() + conn.woff,
                             conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
    if (n >= 0) {
      conn.woff += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(fd);
    return;
  }
  conn.wbuf.clear();
  conn.woff = 0;
}

void TcpTransport::AbortStalledDials(std::int64_t now_us) {
  std::vector<int> expired;
  for (const auto& [fd, conn] : conns_) {
    if (conn.connecting && now_us >= conn.connect_deadline_us) {
      expired.push_back(fd);
    }
  }
  for (const int fd : expired) {
    ++stats_.connect_timeouts;
    RADAR_LOG_DEBUG("[tcp %d] dial timeout fd=%d peer=%d\n", self_, fd,
                    conns_.at(fd).peer);
    CloseConn(fd);  // schedules the redial with backoff
  }
}

void TcpTransport::PollOnce(int timeout_ms) {
  if (!started_) return;
  AbortStalledDials(Now());
  StartDialsDue(Now());
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  if (listen_fd_ >= 0) {
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  }
  for (const auto& [fd, conn] : conns_) {
    short events = POLLIN;
    if (conn.connecting || conn.woff < conn.wbuf.size()) {
      events = static_cast<short>(events | POLLOUT);
    }
    fds.push_back(pollfd{fd, events, 0});
  }
  const int ready =
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  if (ready <= 0) return;
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    if (p.fd == listen_fd_) {
      AcceptReady();
      continue;
    }
    if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
        (p.revents & POLLIN) == 0) {
      // Let a connect() failure report through getsockopt for backoff.
      const auto it = conns_.find(p.fd);
      if (it != conns_.end() && it->second.connecting) {
        WriteReady(p.fd);
      } else {
        CloseConn(p.fd);
      }
      continue;
    }
    if ((p.revents & POLLOUT) != 0) WriteReady(p.fd);
    if ((p.revents & POLLIN) != 0) ReadReady(p.fd);
  }
}

}  // namespace radar::transport
