#include "transport/host_node.h"

#include <array>
#include <utility>
#include <vector>

#include "common/check.h"

namespace radar::transport {
namespace {

void PutI32(std::uint8_t* p, std::int32_t v) {
  const auto u = static_cast<std::uint32_t>(v);
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::uint8_t>((u >> (8 * i)) & 0xff);
  }
}

std::int32_t GetI32(const std::uint8_t* p) {
  std::uint32_t u = 0;
  for (int i = 0; i < 4; ++i) {
    u |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return static_cast<std::int32_t>(u);
}

}  // namespace

HostNode::HostNode(const NodeConfig& config, NodeId self, Transport* transport,
                   Options options)
    : config_(config),
      transport_(transport),
      options_(std::move(options)),
      agent_(self, config.num_nodes(), &options_.params) {
  RADAR_CHECK_EQ(transport->self(), self);
  RADAR_CHECK(config.At(self).role == NodeRole::kHost);
  agent_.set_weight(config.At(self).weight);
}

bool HostNode::Init(std::string* error) {
  // Rebuild the replica set: WAL if it has history, initial placement
  // otherwise. The WAL is compacted on boot — rebuilt state is rewritten
  // as one 'C' record per live replica — which both bounds its growth
  // across restarts and heals any torn tail left by a SIGKILL.
  std::map<ObjectId, std::int32_t> replicas;
  bool fresh = true;
  if (!options_.wal_path.empty()) {
    std::string read_error;
    if (const auto read = binlog::ReadBinlog(options_.wal_path, &read_error)) {
      fresh = read->records.empty();
      for (const binlog::Record& rec : read->records) {
        if (rec.payload.size() != kWalPayloadSize) continue;
        const std::uint8_t op = rec.payload[0];
        const ObjectId x = GetI32(rec.payload.data() + 1);
        const std::int32_t value = GetI32(rec.payload.data() + 5);
        if (op == kWalCreate && x >= 0 && value >= 1) {
          replicas[x] = value;
        } else if (op == kWalDrop) {
          replicas.erase(x);
        }
      }
    }
  }
  if (fresh) {
    for (ObjectId x = 0; x < options_.num_objects; ++x) {
      if (config_.InitialHome(x) == agent_.self()) replicas[x] = 1;
    }
  }
  if (!options_.wal_path.empty()) {
    if (!wal_.Open(options_.wal_path, options_.fsync, error)) return false;
    if (!wal_.Reset()) {
      if (error != nullptr) *error = options_.wal_path + ": truncate failed";
      return false;
    }
  }
  for (const auto& [x, affinity] : replicas) {
    agent_.AddInitialReplica(x, affinity);
    if (!WalAppend(kWalCreate, x, affinity)) {
      if (error != nullptr) *error = options_.wal_path + ": append failed";
      return false;
    }
  }
  if (transport_->IsPeerUp(config_.redirector())) AnnounceReplicas();
  return true;
}

bool HostNode::WalAppend(std::uint8_t op, ObjectId object, std::int32_t value) {
  if (!wal_.is_open()) return true;
  std::array<std::uint8_t, kWalPayloadSize> payload;
  payload[0] = op;
  PutI32(payload.data() + 1, object);
  PutI32(payload.data() + 5, value);
  if (!wal_.Append(transport_->Now(), agent_.self(), agent_.self(),
                   payload.data(), payload.size())) {
    ++counters_.wal_errors;
    return false;
  }
  return true;
}

void HostNode::AnnounceReplicas() {
  for (const ObjectId x : agent_.Objects()) {
    transport_->Send(config_.redirector(),
                     wire::Announce{x, agent_.self(), agent_.Affinity(x)});
  }
}

void HostNode::OnFrame(NodeId from, const wire::DecodedFrame& frame) {
  switch (wire::TypeOf(frame.msg)) {
    case wire::MsgType::kRequest:
      HandleRequest(from, frame.seq, std::get<wire::Request>(frame.msg));
      break;
    case wire::MsgType::kReplicate: {
      const auto& m = std::get<wire::Replicate>(frame.msg);
      HandleCreate(from, frame.seq, core::CreateObjMethod::kReplicate,
                   m.object, m.unit_load);
      break;
    }
    case wire::MsgType::kMigrate: {
      const auto& m = std::get<wire::Migrate>(frame.msg);
      HandleCreate(from, frame.seq, core::CreateObjMethod::kMigrate, m.object,
                   m.unit_load);
      break;
    }
    case wire::MsgType::kAck:
      HandleAck(from, std::get<wire::Ack>(frame.msg));
      break;
    case wire::MsgType::kPlacementStat: {
      const auto& stat = std::get<wire::PlacementStat>(frame.msg);
      if (stat.host != agent_.self() && config_.Has(stat.host) &&
          stat.load >= 0.0 && stat.weight > 0.0) {
        peer_stats_[stat.host] = PeerStat{stat.load, stat.weight};
        ++counters_.stats_seen;
      }
      break;
    }
    case wire::MsgType::kShutdown:
      shutdown_ = true;
      break;
    default:
      break;  // hello/redirect/announce: not addressed to a host brain
  }
}

void HostNode::HandleRequest(NodeId from, std::uint64_t seq,
                             const wire::Request& req) {
  // Preference path of the response: this host, then the client's gateway
  // (real mode has no router database, so the path is the two endpoints).
  std::vector<NodeId> path;
  path.push_back(agent_.self());
  if (config_.Has(req.gateway) && req.gateway != agent_.self()) {
    path.push_back(req.gateway);
  }
  const bool hosted =
      req.object >= 0 && agent_.RecordServicedIfHosted(req.object, path);
  if (hosted) {
    ++counters_.requests_serviced;
  } else {
    ++counters_.requests_unhosted;
  }
  transport_->Send(from, wire::Ack{seq, hosted, false});
}

void HostNode::HandleCreate(NodeId from, std::uint64_t seq,
                            core::CreateObjMethod method, ObjectId object,
                            double unit_load) {
  core::CreateObjResponse resp;
  if (object >= 0 && unit_load >= 0.0) {
    resp = agent_.HandleCreateObj(method, object, unit_load,
                                  transport_->Now());
  }
  if (resp.accepted) {
    ++counters_.create_accepted;
    WalAppend(kWalCreate, object, agent_.Affinity(object));
    // Fig. 4: the recipient notifies x's redirector — after the copy
    // exists, preserving the subset invariant.
    transport_->Send(
        config_.redirector(),
        wire::Replicate{object, from, agent_.self(), unit_load});
  } else {
    ++counters_.create_refused;
  }
  transport_->Send(from, wire::Ack{seq, resp.accepted, resp.created_new_copy});
}

void HostNode::HandleAck(NodeId from, const wire::Ack& ack) {
  const auto it = pending_.find(ack.acked_seq);
  if (it == pending_.end()) return;
  const Pending pending = it->second;
  pending_.erase(it);
  if (pending.peer != from) return;
  switch (pending.kind) {
    case PendingKind::kCreateReplicate:
      if (ack.accepted && agent_.HasObject(pending.object)) {
        agent_.NoteReplicationShed(pending.object);
        ++counters_.replicates_out;
      }
      break;
    case PendingKind::kCreateMigrate:
      if (ack.accepted) {
        // The copy exists over there; ask the redirector whether this side
        // may drop its own (it refuses when that would fall below the
        // replica floor — then both copies simply live on).
        const std::uint64_t seq = transport_->Send(
            config_.redirector(),
            wire::Migrate{pending.object, agent_.self(), pending.peer, 0.0});
        pending_.emplace(seq, Pending{PendingKind::kDropRequest,
                                      pending.object, config_.redirector()});
      }
      break;
    case PendingKind::kDropRequest:
      if (ack.accepted && agent_.HasObject(pending.object)) {
        agent_.DropReplica(pending.object);
        WalAppend(kWalDrop, pending.object, 0);
        ++counters_.drops_granted;
        ++counters_.migrates_out;
      } else {
        ++counters_.drops_refused;
      }
      break;
  }
}

void HostNode::OnPeerUp(NodeId peer) {
  if (peer == config_.redirector()) AnnounceReplicas();
}

void HostNode::OnPeerDown(NodeId peer) {
  peer_stats_.erase(peer);
  // Outstanding exchanges with the dead peer resolve as refusals: for a
  // migrate that means keeping our copy — the conservative side.
  for (auto it = pending_.begin(); it != pending_.end();) {
    it = it->second.peer == peer ? pending_.erase(it) : std::next(it);
  }
}

void HostNode::OnTick() {
  const std::int64_t now = transport_->Now();
  if (next_measure_at_ < 0) {
    next_measure_at_ = now + options_.params.measurement_interval;
    next_placement_at_ = now + options_.params.placement_interval;
    return;
  }
  if (now >= next_measure_at_) {
    agent_.OnMeasurementTick(now);
    next_measure_at_ = now + options_.params.measurement_interval;
    transport_->Send(
        config_.redirector(),
        wire::PlacementStat{
            agent_.self(), agent_.AdmissionLoad(), agent_.weight(),
            static_cast<std::uint32_t>(agent_.NumObjects())});
  }
  if (now >= next_placement_at_) {
    MaybeOffload();
    next_placement_at_ = now + options_.params.placement_interval;
  }
}

void HostNode::MaybeOffload() {
  const core::ProtocolParams& params = options_.params;
  if (agent_.AdmissionLoad() / agent_.weight() <= params.high_watermark) {
    return;
  }
  // Least-loaded reachable peer below the low watermark (normalized;
  // std::map order makes the tie-break the lowest node id).
  NodeId recipient = kInvalidNode;
  double best = params.low_watermark;
  for (const auto& [peer, stat] : peer_stats_) {
    const double normalized = stat.load / stat.weight;
    if (normalized < best && transport_->IsPeerUp(peer)) {
      best = normalized;
      recipient = peer;
    }
  }
  if (recipient == kInvalidNode) return;
  // Hottest object without an in-flight relocation (ties: lowest id).
  ObjectId victim = kInvalidObject;
  double victim_load = 0.0;
  for (const ObjectId x : agent_.Objects()) {
    bool busy = false;
    for (const auto& [seq, pending] : pending_) {
      if (pending.object == x) {
        busy = true;
        break;
      }
    }
    if (busy) continue;
    const double load = agent_.ObjectLoad(x);
    if (load > victim_load) {
      victim_load = load;
      victim = x;
    }
  }
  if (victim == kInvalidObject) return;
  // Fig. 5's branch: modest unit rates migrate, hot objects replicate
  // (migrating a hot object could undo a previous replication). v1 only
  // migrates sole-affinity replicas — a partial (affinity-unit) migration
  // would need an affinity-reduction wire message.
  const double unit_rate =
      agent_.UnitAccessRate(victim, transport_->Now());
  const bool migrate = unit_rate <= params.replication_threshold_m &&
                       agent_.Affinity(victim) == 1;
  const double unit_load = agent_.UnitLoad(victim);
  std::uint64_t seq = 0;
  if (migrate) {
    seq = transport_->Send(
        recipient, wire::Migrate{victim, agent_.self(), recipient, unit_load});
    pending_.emplace(seq,
                     Pending{PendingKind::kCreateMigrate, victim, recipient});
  } else {
    seq = transport_->Send(
        recipient,
        wire::Replicate{victim, agent_.self(), recipient, unit_load});
    pending_.emplace(seq,
                     Pending{PendingKind::kCreateReplicate, victim, recipient});
  }
}

}  // namespace radar::transport
