// Fundamental identifier and time types shared by all radar libraries.
#pragma once

#include <cstdint>
#include <limits>

namespace radar {

/// Index of a node (router + co-located host) in the hosting platform.
using NodeId = std::int32_t;

/// Identifier of a hosted Web object.
using ObjectId = std::int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = -1;

/// Sentinel for "no object".
inline constexpr ObjectId kInvalidObject = -1;

/// Simulated time in integer microseconds. Integer time keeps event
/// ordering and repeated runs exactly reproducible.
using SimTime = std::int64_t;

inline constexpr SimTime kMicrosPerMilli = 1'000;
inline constexpr SimTime kMicrosPerSecond = 1'000'000;
inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Converts seconds (possibly fractional) to simulated microseconds.
constexpr SimTime SecondsToSim(double seconds) {
  return static_cast<SimTime>(seconds * static_cast<double>(kMicrosPerSecond));
}

/// Converts milliseconds to simulated microseconds.
constexpr SimTime MillisToSim(double millis) {
  return static_cast<SimTime>(millis * static_cast<double>(kMicrosPerMilli));
}

/// Converts simulated microseconds to (fractional) seconds.
constexpr double SimToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerSecond);
}

}  // namespace radar
