#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace radar {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

BucketedSeries::BucketedSeries(SimTime bucket_width)
    : bucket_width_(bucket_width) {
  RADAR_CHECK_GT(bucket_width, 0);
}

void BucketedSeries::AdvanceCursor(SimTime t) {
  const auto idx = static_cast<std::size_t>(t / bucket_width_);
  if (idx >= sums_.size()) {
    sums_.resize(idx + 1, 0.0);
    counts_.resize(idx + 1, 0);
  }
  cursor_idx_ = idx;
  cursor_start_ = static_cast<SimTime>(idx) * bucket_width_;
  cursor_end_ = cursor_start_ + bucket_width_;
}

SimTime BucketedSeries::BucketStart(std::size_t i) const {
  return static_cast<SimTime>(i) * bucket_width_;
}

double BucketedSeries::MeanAt(std::size_t i) const {
  RADAR_CHECK_LT(i, sums_.size());
  return counts_[i] > 0 ? sums_[i] / static_cast<double>(counts_[i]) : 0.0;
}

double BucketedSeries::RateAt(std::size_t i) const {
  RADAR_CHECK_LT(i, sums_.size());
  return sums_[i] / SimToSeconds(bucket_width_);
}

double BucketedSeries::MeanRateOver(std::size_t first, std::size_t last) const {
  if (sums_.empty()) return 0.0;
  last = std::min(last, sums_.size() - 1);
  if (first > last) return 0.0;
  double total = 0.0;
  for (std::size_t i = first; i <= last; ++i) total += RateAt(i);
  return total / static_cast<double>(last - first + 1);
}

double Percentile(std::vector<double> values, double pct) {
  RADAR_CHECK_GE(pct, 0.0);
  RADAR_CHECK_LE(pct, 100.0);
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = pct / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::string FormatMinutes(double seconds) {
  const auto total = static_cast<long>(seconds + 0.5);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%ld:%02ld", total / 60, total % 60);
  return buf;
}

}  // namespace radar
