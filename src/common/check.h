// Lightweight always-on invariant checking.
//
// RADAR_CHECK is used for protocol invariants that must hold regardless of
// build type; violating one indicates a bug in the library, so we terminate
// with a diagnostic rather than continue with corrupted state.
//
// The comparison forms (RADAR_CHECK_EQ/NE/LT/LE/GT/GE) print both operand
// values on failure — "RADAR_CHECK failed: from < num_nodes_ (7 vs 7)" tells
// you the bad value without re-running under a debugger. Prefer them over
// hand-rolled RADAR_CHECK(a < b).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace radar::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "RADAR_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

template <typename T>
concept Streamable = requires(std::ostream& os, const T& value) {
  os << value;
};

template <typename T>
void StreamValue(std::ostream& os, const T& value) {
  if constexpr (Streamable<T>) {
    os << value;
  } else {
    os << "<unprintable>";
  }
}

template <typename A, typename B>
[[noreturn]] void CheckOpFailed(const char* a_expr, const char* op,
                                const char* b_expr, const A& a, const B& b,
                                const char* file, int line) {
  std::ostringstream msg;
  msg << a_expr << ' ' << op << ' ' << b_expr << " (";
  StreamValue(msg, a);
  msg << " vs ";
  StreamValue(msg, b);
  msg << ')';
  CheckFailed(msg.str().c_str(), file, line);
}

}  // namespace radar::internal

#define RADAR_CHECK(expr)                                          \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::radar::internal::CheckFailed(#expr, __FILE__, __LINE__);   \
    }                                                              \
  } while (false)

#define RADAR_CHECK_MSG(expr, msg)                                 \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::radar::internal::CheckFailed(msg, __FILE__, __LINE__);     \
    }                                                              \
  } while (false)

// Operands are evaluated exactly once; both values are printed on failure.
#define RADAR_CHECK_OP_(a, op, b)                                        \
  do {                                                                   \
    const auto& radar_check_a_ = (a);                                    \
    const auto& radar_check_b_ = (b);                                    \
    if (!(radar_check_a_ op radar_check_b_)) {                           \
      ::radar::internal::CheckOpFailed(#a, #op, #b, radar_check_a_,      \
                                       radar_check_b_, __FILE__,         \
                                       __LINE__);                        \
    }                                                                    \
  } while (false)

#define RADAR_CHECK_EQ(a, b) RADAR_CHECK_OP_(a, ==, b)
#define RADAR_CHECK_NE(a, b) RADAR_CHECK_OP_(a, !=, b)
#define RADAR_CHECK_LT(a, b) RADAR_CHECK_OP_(a, <, b)
#define RADAR_CHECK_LE(a, b) RADAR_CHECK_OP_(a, <=, b)
#define RADAR_CHECK_GT(a, b) RADAR_CHECK_OP_(a, >, b)
#define RADAR_CHECK_GE(a, b) RADAR_CHECK_OP_(a, >=, b)
