// Lightweight always-on invariant checking.
//
// RADAR_CHECK is used for protocol invariants that must hold regardless of
// build type; violating one indicates a bug in the library, so we terminate
// with a diagnostic rather than continue with corrupted state.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace radar::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "RADAR_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace radar::internal

#define RADAR_CHECK(expr)                                          \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::radar::internal::CheckFailed(#expr, __FILE__, __LINE__);   \
    }                                                              \
  } while (false)

#define RADAR_CHECK_MSG(expr, msg)                                 \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::radar::internal::CheckFailed(msg, __FILE__, __LINE__);     \
    }                                                              \
  } while (false)
