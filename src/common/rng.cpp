#include "common/rng.h"

#include <cmath>

namespace radar {
namespace {

constexpr std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_origin_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zero words from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  RADAR_CHECK_GT(bound, std::uint64_t{0});
  // Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  RADAR_CHECK_LE(lo, hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  RADAR_CHECK_GT(mean, 0.0);
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::Fork(std::uint64_t stream_index) const {
  // Mix the original seed with the stream index through SplitMix64 so that
  // forked streams do not overlap the parent sequence.
  std::uint64_t sm = seed_origin_;
  const std::uint64_t base = SplitMix64(sm);
  return Rng(base ^ (0x517cc1b727220a95ULL * (stream_index + 1)));
}

}  // namespace radar
