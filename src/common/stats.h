// Streaming statistics and bucketed time series used by the metrics layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace radar {

/// Streaming mean/variance/min/max (Welford's algorithm).
class OnlineStats {
 public:
  void Add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void Merge(const OnlineStats& other);

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// A time series that accumulates values into fixed-width time buckets.
/// Each bucket records both the sum and the count of added values, so it
/// can report either totals (e.g. bytes per bucket) or means (e.g. mean
/// latency per bucket).
class BucketedSeries {
 public:
  /// bucket_width must be positive.
  explicit BucketedSeries(SimTime bucket_width);

  /// Adds a sample at the given simulated time. Samples normally arrive in
  /// non-decreasing time order (simulation time is monotone), so the
  /// common case resolves the bucket with two comparisons against a cached
  /// cursor instead of a 64-bit division per sample; out-of-order times
  /// still work through the slow path.
  void Add(SimTime t, double value) {
    RADAR_CHECK_GE(t, 0);
    if (t < cursor_start_ || t >= cursor_end_) AdvanceCursor(t);
    sums_[cursor_idx_] += value;
    ++counts_[cursor_idx_];
  }

  SimTime bucket_width() const { return bucket_width_; }
  std::size_t num_buckets() const { return sums_.size(); }

  /// Start time of bucket i.
  SimTime BucketStart(std::size_t i) const;

  double SumAt(std::size_t i) const { return sums_[i]; }
  std::int64_t CountAt(std::size_t i) const { return counts_[i]; }
  /// Mean of samples in bucket i (0 if empty).
  double MeanAt(std::size_t i) const;
  /// Sum divided by bucket width in seconds — a rate (e.g. bytes/sec).
  double RateAt(std::size_t i) const;

  /// Mean of per-bucket rates over buckets [first, last] (inclusive,
  /// clamped). Returns 0 for an empty range.
  double MeanRateOver(std::size_t first, std::size_t last) const;

  const std::vector<double>& sums() const { return sums_; }

 private:
  /// Repositions the cursor on the bucket containing `t`, growing the
  /// bucket vectors as needed.
  void AdvanceCursor(SimTime t);

  SimTime bucket_width_;
  std::vector<double> sums_;
  std::vector<std::int64_t> counts_;
  // Cursor over the bucket the last sample fell into. cursor_end_ starts
  // at 0 so the first Add always takes the slow path.
  std::size_t cursor_idx_ = 0;
  SimTime cursor_start_ = 0;
  SimTime cursor_end_ = 0;
};

/// Exact percentile over a retained sample vector. Intended for offline
/// reporting, not hot paths.
double Percentile(std::vector<double> values, double pct);

/// Formats seconds as "mm:ss" for report printing.
std::string FormatMinutes(double seconds);

}  // namespace radar
