#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace radar {

ReedsZipf::ReedsZipf(std::int64_t n) : n_(n), log_n_(std::log(static_cast<double>(n))) {
  RADAR_CHECK_GE(n, 1);
}

std::int64_t ReedsZipf::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  const double u = rng.NextDouble();
  const auto rank = static_cast<std::int64_t>(std::llround(std::exp(u * log_n_)));
  return std::clamp<std::int64_t>(rank, 1, n_);
}

ExactZipf::ExactZipf(std::int64_t n, double exponent) {
  RADAR_CHECK_GE(n, 1);
  RADAR_CHECK_GT(exponent, 0.0);
  cdf_.resize(static_cast<std::size_t>(n));
  double total = 0.0;
  for (std::int64_t i = 1; i <= n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i), exponent);
    cdf_[static_cast<std::size_t>(i - 1)] = total;
  }
  for (auto& v : cdf_) v /= total;
}

std::int64_t ExactZipf::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::int64_t>(it - cdf_.begin()) + 1;
}

double ExactZipf::Pmf(std::int64_t rank) const {
  RADAR_CHECK_GE(rank, 1);
  RADAR_CHECK_LE(rank, n());
  const auto idx = static_cast<std::size_t>(rank - 1);
  return idx == 0 ? cdf_[0] : cdf_[idx] - cdf_[idx - 1];
}

}  // namespace radar
