// SlabMap: a dense-integer-key map with never-relocating storage.
//
// The protocol's per-object tables (host replica records, redirector
// entries, consistency state) are keyed by small non-negative integers —
// ObjectIds handed out contiguously from zero. A general hash map pays
// for that simplicity three times over: a hash + probe per lookup, a heap
// node per entry, and a pointer chase per iteration step. SlabMap spends
// one vector index instead:
//
//   - values live in fixed-size chunks that never move once allocated, so
//     a reference (or a parallel-array row keyed by the same handle) stays
//     valid for the value's whole lifetime, across any number of inserts;
//   - a dense index vector maps key -> handle for O(1) lookup with zero
//     hashing (and enumerates live keys in ascending order for free);
//   - an active list of handles supports compact iteration over live
//     entries; erasure is swap-with-last, so erase is O(1) and iteration
//     cost tracks the live population, not the key-space size;
//   - erased slots are recycled through a free list, so steady-state
//     churn performs no allocation and capacity is bounded by the peak
//     population, never by cumulative inserts.
//
// Handles are 32-bit slot indices, stable until the key is erased. Callers
// that hang per-entry data off handles (structure-of-arrays layouts) size
// their arrays to slot_capacity(), which only ever grows.
//
// T must be default-constructible and move-assignable; Erase resets the
// slot to T{} so recycled slots never leak prior state.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"

namespace radar {

template <class T, std::uint32_t ChunkShift = 8>
class SlabMap {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNoHandle = 0xFFFFFFFFu;
  static constexpr std::uint32_t kChunkShift = ChunkShift;
  static constexpr std::uint32_t kChunkSize = 1u << ChunkShift;

  std::size_t size() const { return active_.size(); }
  bool empty() const { return active_.empty(); }

  /// Total slots ever carved (== the high-water population). Parallel
  /// arrays keyed by handle are sized to this.
  std::uint32_t slot_capacity() const { return num_slots_; }

  /// O(1): handle of `key`, or kNoHandle when absent.
  Handle HandleOf(std::int64_t key) const {
    const auto i = static_cast<std::size_t>(key);
    return i < index_.size() ? index_[i] : kNoHandle;
  }

  bool Contains(std::int64_t key) const { return HandleOf(key) != kNoHandle; }

  T& At(Handle h) { return SlotRef(h); }
  const T& At(Handle h) const { return SlotRef(h); }

  /// Key stored in slot `h` (h must be live).
  std::int64_t KeyAt(Handle h) const {
    return keys_[static_cast<std::size_t>(h)];
  }

  T* Find(std::int64_t key) {
    const Handle h = HandleOf(key);
    return h == kNoHandle ? nullptr : &SlotRef(h);
  }
  const T* Find(std::int64_t key) const {
    const Handle h = HandleOf(key);
    return h == kNoHandle ? nullptr : &SlotRef(h);
  }

  /// Inserts `key` (>= 0, must not be present); returns the handle of a
  /// slot holding a default-constructed T. The handle stays valid — and
  /// the value's address stays fixed — until Erase(key).
  Handle Insert(std::int64_t key) {
    RADAR_CHECK_GE(key, 0);
    const auto i = static_cast<std::size_t>(key);
    if (i >= index_.size()) index_.resize(i + 1, kNoHandle);
    RADAR_CHECK_MSG(index_[i] == kNoHandle, "SlabMap key already present");
    Handle h;
    if (!free_slots_.empty()) {
      h = free_slots_.back();
      free_slots_.pop_back();
    } else {
      if ((num_slots_ & (kChunkSize - 1)) == 0) {
        chunks_.push_back(std::make_unique<T[]>(kChunkSize));
        keys_.resize(keys_.size() + kChunkSize, -1);
        active_pos_.resize(active_pos_.size() + kChunkSize, 0);
      }
      h = num_slots_++;
    }
    index_[i] = h;
    keys_[static_cast<std::size_t>(h)] = key;
    active_pos_[static_cast<std::size_t>(h)] =
        static_cast<std::uint32_t>(active_.size());
    active_.push_back(h);
    return h;
  }

  /// Erases `key` (must be present): swap-with-last on the active list,
  /// slot reset to T{} and recycled. O(1).
  void Erase(std::int64_t key) {
    const Handle h = HandleOf(key);
    RADAR_CHECK_MSG(h != kNoHandle, "SlabMap key not present");
    index_[static_cast<std::size_t>(key)] = kNoHandle;
    const std::uint32_t pos = active_pos_[static_cast<std::size_t>(h)];
    active_[pos] = active_.back();
    active_pos_[static_cast<std::size_t>(active_[pos])] = pos;
    active_.pop_back();
    keys_[static_cast<std::size_t>(h)] = -1;
    SlotRef(h) = T{};
    free_slots_.push_back(h);
  }

  /// Live handles in active-list order (insertion order until erases
  /// permute it). Entries are independent for every current use; callers
  /// needing a canonical order iterate keys ascending instead.
  const std::vector<Handle>& active() const { return active_; }

  /// Calls fn(key, handle) for every live entry, ascending by key.
  template <class Fn>
  void ForEachKeyAscending(Fn&& fn) const {
    for (std::size_t i = 0; i < index_.size(); ++i) {
      if (index_[i] != kNoHandle) {
        fn(static_cast<std::int64_t>(i), index_[i]);
      }
    }
  }

 private:
  T& SlotRef(Handle h) {
    return chunks_[h >> kChunkShift][h & (kChunkSize - 1)];
  }
  const T& SlotRef(Handle h) const {
    return chunks_[h >> kChunkShift][h & (kChunkSize - 1)];
  }

  std::vector<Handle> index_;      // key -> handle (dense by key)
  std::vector<Handle> active_;     // live handles, swap-with-last erase
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<std::int64_t> keys_;        // per-slot key (-1 when free)
  std::vector<std::uint32_t> active_pos_; // per-slot position in active_
  std::vector<Handle> free_slots_;
  std::uint32_t num_slots_ = 0;
};

}  // namespace radar
