// SlabMap: an integer-key map with never-relocating storage.
//
// The protocol's per-object tables (host replica records, redirector
// entries, consistency state) are keyed by small non-negative integers —
// ObjectIds handed out contiguously from zero. A general hash map pays
// for that simplicity three times over: a hash + probe per lookup, a heap
// node per entry, and a pointer chase per iteration step. SlabMap spends
// one vector index instead:
//
//   - values live in fixed-size chunks that never move once allocated, so
//     a reference (or a parallel-array row keyed by the same handle) stays
//     valid for the value's whole lifetime, across any number of inserts;
//   - an index maps key -> handle for O(1) lookup (see the policies
//     below);
//   - an active list of handles supports compact iteration over live
//     entries; erasure is swap-with-last, so erase is O(1) and iteration
//     cost tracks the live population, not the key-space size;
//   - erased slots are recycled through a free list, so steady-state
//     churn performs no allocation and capacity is bounded by the peak
//     population, never by cumulative inserts.
//
// Index policies. DenseSlabIndex (the default) is one flat vector sized
// to the largest key seen: O(1) lookup with zero hashing, ideal for the
// platform-global tables whose keys cover [0, num_objects) anyway. It is
// the wrong shape for per-node tables at Internet scale: with objects
// dealt round-robin over n hosts, every host's key set is a stride-n
// sample of the whole id space, so each of n agents would pay the full
// num_objects-entry vector — an n x objects blow-up (~4 GB at 10k nodes x
// 100k objects) for maps that each hold a few dozen entries.
// HashSlabIndex replaces the vector with a small open-addressed table
// (power-of-two capacity, linear probing) whose footprint tracks the live
// population. The index only serves point lookups — iteration goes
// through the active list or sorted keys — so hashing cannot perturb any
// deterministic ordering.
//
// Handles are 32-bit slot indices, stable until the key is erased. Callers
// that hang per-entry data off handles (structure-of-arrays layouts) size
// their arrays to slot_capacity(), which only ever grows.
//
// T must be default-constructible and move-assignable; Erase resets the
// slot to T{} so recycled slots never leak prior state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"

namespace radar {

/// Dense key -> handle index: one vector entry per key in [0, max key].
/// Lookup is a single load; memory is proportional to the key-space span.
class DenseSlabIndex {
 public:
  static constexpr std::uint32_t kNoHandle = 0xFFFFFFFFu;

  std::uint32_t Get(std::int64_t key) const {
    const auto i = static_cast<std::size_t>(key);
    return i < index_.size() ? index_[i] : kNoHandle;
  }

  void Set(std::int64_t key, std::uint32_t handle) {
    const auto i = static_cast<std::size_t>(key);
    if (i >= index_.size()) index_.resize(i + 1, kNoHandle);
    index_[i] = handle;
  }

  void Erase(std::int64_t key) {
    index_[static_cast<std::size_t>(key)] = kNoHandle;
  }

 private:
  std::vector<std::uint32_t> index_;
};

/// Open-addressed key -> handle index (linear probing, power-of-two
/// capacity, tombstone erase). Memory tracks the live population, not the
/// key-space span — the right shape for per-node maps whose few keys are
/// scattered across a huge object-id space.
class HashSlabIndex {
 public:
  static constexpr std::uint32_t kNoHandle = 0xFFFFFFFFu;

  std::uint32_t Get(std::int64_t key) const {
    if (keys_.empty()) return kNoHandle;
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      if (keys_[i] == key) return handles_[i];
      if (keys_[i] == kEmpty) return kNoHandle;
    }
  }

  void Set(std::int64_t key, std::uint32_t handle) {
    // Grow at 3/4 occupancy counting tombstones, so probe chains stay
    // short and a churn-heavy map periodically compacts itself.
    if ((used_ + 1) * 4 > keys_.size() * 3) Rehash();
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      if (keys_[i] == kEmpty || keys_[i] == kTombstone) {
        if (keys_[i] == kEmpty) ++used_;
        keys_[i] = key;
        handles_[i] = handle;
        ++size_;
        return;
      }
    }
  }

  void Erase(std::int64_t key) {
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      if (keys_[i] == key) {
        keys_[i] = kTombstone;
        --size_;
        return;
      }
      RADAR_CHECK_MSG(keys_[i] != kEmpty, "HashSlabIndex key not present");
    }
  }

 private:
  // Keys are object ids (>= 0), so negative sentinels are free.
  static constexpr std::int64_t kEmpty = -1;
  static constexpr std::int64_t kTombstone = -2;

  static std::size_t Hash(std::int64_t key) {
    // splitmix64 finalizer: cheap and well-mixed for sequential ids.
    auto x = static_cast<std::uint64_t>(key);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }

  void Rehash() {
    // Double when genuinely half full; otherwise rebuild at the same
    // capacity, which drops the tombstones.
    std::size_t new_cap = std::max<std::size_t>(16, keys_.size());
    if ((size_ + 1) * 2 > new_cap) new_cap *= 2;
    std::vector<std::int64_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_handles = std::move(handles_);
    keys_.assign(new_cap, kEmpty);
    handles_.assign(new_cap, kNoHandle);
    used_ = size_;
    size_ = 0;
    const std::size_t mask = new_cap - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] < 0) continue;
      for (std::size_t j = Hash(old_keys[i]) & mask;; j = (j + 1) & mask) {
        if (keys_[j] == kEmpty) {
          keys_[j] = old_keys[i];
          handles_[j] = old_handles[i];
          ++size_;
          break;
        }
      }
    }
  }

  std::vector<std::int64_t> keys_;        // kEmpty / kTombstone / a key
  std::vector<std::uint32_t> handles_;
  std::size_t size_ = 0;  // live entries
  std::size_t used_ = 0;  // live entries + tombstones
};

template <class T, std::uint32_t ChunkShift = 8, class Index = DenseSlabIndex>
class SlabMap {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNoHandle = 0xFFFFFFFFu;
  static constexpr std::uint32_t kChunkShift = ChunkShift;
  static constexpr std::uint32_t kChunkSize = 1u << ChunkShift;

  std::size_t size() const { return active_.size(); }
  bool empty() const { return active_.empty(); }

  /// Total slots ever carved (== the high-water population). Parallel
  /// arrays keyed by handle are sized to this.
  std::uint32_t slot_capacity() const { return num_slots_; }

  /// O(1): handle of `key`, or kNoHandle when absent.
  Handle HandleOf(std::int64_t key) const { return index_.Get(key); }

  bool Contains(std::int64_t key) const { return HandleOf(key) != kNoHandle; }

  T& At(Handle h) { return SlotRef(h); }
  const T& At(Handle h) const { return SlotRef(h); }

  /// Key stored in slot `h` (h must be live).
  std::int64_t KeyAt(Handle h) const {
    return keys_[static_cast<std::size_t>(h)];
  }

  T* Find(std::int64_t key) {
    const Handle h = HandleOf(key);
    return h == kNoHandle ? nullptr : &SlotRef(h);
  }
  const T* Find(std::int64_t key) const {
    const Handle h = HandleOf(key);
    return h == kNoHandle ? nullptr : &SlotRef(h);
  }

  /// Inserts `key` (>= 0, must not be present); returns the handle of a
  /// slot holding a default-constructed T. The handle stays valid — and
  /// the value's address stays fixed — until Erase(key).
  Handle Insert(std::int64_t key) {
    RADAR_CHECK_GE(key, 0);
    RADAR_CHECK_MSG(index_.Get(key) == kNoHandle,
                    "SlabMap key already present");
    Handle h;
    if (!free_slots_.empty()) {
      h = free_slots_.back();
      free_slots_.pop_back();
    } else {
      if ((num_slots_ & (kChunkSize - 1)) == 0) {
        chunks_.push_back(std::make_unique<T[]>(kChunkSize));
        keys_.resize(keys_.size() + kChunkSize, -1);
        active_pos_.resize(active_pos_.size() + kChunkSize, 0);
      }
      h = num_slots_++;
    }
    index_.Set(key, h);
    keys_[static_cast<std::size_t>(h)] = key;
    active_pos_[static_cast<std::size_t>(h)] =
        static_cast<std::uint32_t>(active_.size());
    active_.push_back(h);
    return h;
  }

  /// Erases `key` (must be present): swap-with-last on the active list,
  /// slot reset to T{} and recycled. O(1).
  void Erase(std::int64_t key) {
    const Handle h = HandleOf(key);
    RADAR_CHECK_MSG(h != kNoHandle, "SlabMap key not present");
    index_.Erase(key);
    const std::uint32_t pos = active_pos_[static_cast<std::size_t>(h)];
    active_[pos] = active_.back();
    active_pos_[static_cast<std::size_t>(active_[pos])] = pos;
    active_.pop_back();
    keys_[static_cast<std::size_t>(h)] = -1;
    SlotRef(h) = T{};
    free_slots_.push_back(h);
  }

  /// Live handles in active-list order (insertion order until erases
  /// permute it). Entries are independent for every current use; callers
  /// needing a canonical order iterate keys ascending instead.
  const std::vector<Handle>& active() const { return active_; }

  /// Calls fn(key, handle) for every live entry, ascending by key. The
  /// order is derived from the stored keys (sorted into a reused scratch
  /// buffer), so it is identical under every index policy.
  template <class Fn>
  void ForEachKeyAscending(Fn&& fn) const {
    scratch_ = active_;
    std::sort(scratch_.begin(), scratch_.end(),
              [this](Handle a, Handle b) { return KeyAt(a) < KeyAt(b); });
    for (const Handle h : scratch_) fn(KeyAt(h), h);
  }

 private:
  T& SlotRef(Handle h) {
    return chunks_[h >> kChunkShift][h & (kChunkSize - 1)];
  }
  const T& SlotRef(Handle h) const {
    return chunks_[h >> kChunkShift][h & (kChunkSize - 1)];
  }

  Index index_;                    // key -> handle
  std::vector<Handle> active_;     // live handles, swap-with-last erase
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<std::int64_t> keys_;        // per-slot key (-1 when free)
  std::vector<std::uint32_t> active_pos_; // per-slot position in active_
  std::vector<Handle> free_slots_;
  std::uint32_t num_slots_ = 0;
  mutable std::vector<Handle> scratch_;   // ForEachKeyAscending ordering
};

}  // namespace radar
