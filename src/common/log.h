// Minimal leveled logging to stderr.
//
// The simulator is single-threaded, so no synchronization is needed. Logging
// defaults to kWarn so simulation hot paths stay quiet unless a caller
// raises the level (examples do, to narrate protocol actions).
#pragma once

#include <cstdarg>

namespace radar {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// printf-style logging; drops the message if below the global level.
void LogF(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace radar

#define RADAR_LOG_DEBUG(...) ::radar::LogF(::radar::LogLevel::kDebug, __VA_ARGS__)
#define RADAR_LOG_INFO(...) ::radar::LogF(::radar::LogLevel::kInfo, __VA_ARGS__)
#define RADAR_LOG_WARN(...) ::radar::LogF(::radar::LogLevel::kWarn, __VA_ARGS__)
#define RADAR_LOG_ERROR(...) ::radar::LogF(::radar::LogLevel::kError, __VA_ARGS__)
