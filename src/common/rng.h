// Deterministic pseudo-random number generation.
//
// The simulator must be exactly reproducible across runs and platforms, so
// we use a self-contained xoshiro256** generator seeded via SplitMix64
// rather than std::mt19937 + distribution objects (whose outputs are not
// pinned by the standard for all distributions).
#pragma once

#include <array>
#include <cstdint>

#include "common/check.h"

namespace radar {

/// SplitMix64 step; used to expand a single seed into generator state.
std::uint64_t SplitMix64(std::uint64_t& state);

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  /// Seeds the generator deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// Requires bound > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  /// Forks an independent child stream; children of distinct indices are
  /// statistically independent of each other and of the parent.
  Rng Fork(std::uint64_t stream_index) const;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_origin_ = 0;
};

}  // namespace radar
