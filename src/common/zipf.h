// Zipf-distributed object sampling.
//
// The paper samples Zipf page numbers with a closed-form approximation due
// to Jim Reeds: page = round(e^{u(0,1) * ln(n)}), which the authors report
// stays within 15% of the exact Zipf law. We provide both that approximation
// (used by the paper's experiments, and by ours for fidelity) and an exact
// inverse-CDF sampler for comparison in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace radar {

/// The Reeds closed-form approximate Zipf sampler over ranks 1..n.
class ReedsZipf {
 public:
  /// Requires n >= 1.
  explicit ReedsZipf(std::int64_t n);

  /// Samples a rank in [1, n]; rank 1 is the most popular.
  std::int64_t Sample(Rng& rng) const;

  std::int64_t n() const { return n_; }

 private:
  std::int64_t n_;
  double log_n_;
};

/// Exact Zipf(s = 1) sampler via a precomputed CDF table and binary search.
/// Memory/time: O(n) build, O(log n) sample. Used as the reference
/// distribution in property tests.
class ExactZipf {
 public:
  /// Requires n >= 1 and exponent > 0.
  explicit ExactZipf(std::int64_t n, double exponent = 1.0);

  /// Samples a rank in [1, n].
  std::int64_t Sample(Rng& rng) const;

  /// Probability mass of the given rank (1-based).
  double Pmf(std::int64_t rank) const;

  std::int64_t n() const { return static_cast<std::int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace radar
