#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace radar {
namespace {

// Atomic so the experiment engine's worker threads can log (or query the
// level) without racing a concurrent SetLogLevel.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogF(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[%s] ", LevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace radar
