// Store-and-forward transfer-time model.
//
// The paper charges 10 ms propagation per hop and serializes object bytes
// at the link bandwidth on each hop (Table 1). For a message of `bytes`
// over `hops` links that is:
//
//   latency = hops * (per_hop_delay + bytes / bandwidth)
//
// Control messages (requests, CreateObj RPCs, redirector notifications)
// are "negligible compared to the page size" and incur only propagation.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "common/types.h"

namespace radar::sim {

/// Serialization time for `bytes` at `bandwidth_bps` bytes/second.
inline SimTime SerializationTime(std::int64_t bytes, double bandwidth_bps) {
  RADAR_CHECK_GE(bytes, 0);
  RADAR_CHECK_GT(bandwidth_bps, 0.0);
  return static_cast<SimTime>(static_cast<double>(bytes) /
                              bandwidth_bps *
                              static_cast<double>(kMicrosPerSecond));
}

/// Store-and-forward latency across `hops` identical links.
inline SimTime TransferTime(std::int32_t hops, std::int64_t bytes,
                            SimTime per_hop_delay, double bandwidth_bps) {
  RADAR_CHECK_GE(hops, 0);
  RADAR_CHECK_GE(per_hop_delay, 0);
  if (hops == 0) return 0;
  return static_cast<SimTime>(hops) *
         (per_hop_delay + SerializationTime(bytes, bandwidth_bps));
}

/// Latency of a control message (propagation only).
inline SimTime ControlLatency(std::int32_t hops, SimTime per_hop_delay) {
  RADAR_CHECK_GE(hops, 0);
  RADAR_CHECK_GE(per_hop_delay, 0);
  return static_cast<SimTime>(hops) * per_hop_delay;
}

}  // namespace radar::sim
