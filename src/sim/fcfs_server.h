// First-come-first-serve server model.
//
// The paper's hosts service requests one at a time in FCFS order with a
// fixed capacity (200 requests/sec => 5 ms per request). We model the
// queue analytically with a busy-until watermark: a request arriving at
// time t starts service at max(t, busy_until) and completes one service
// time later. This yields exact FCFS queueing with O(1) work per request.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace radar::sim {

class FcfsServer {
 public:
  /// capacity_rps: requests the server can complete per second (> 0).
  explicit FcfsServer(double capacity_rps);

  /// Admits a request arriving at `arrival`; returns its completion time.
  /// Arrivals must be fed in non-decreasing time order.
  SimTime Admit(SimTime arrival);

  /// Time at which the server becomes idle given work admitted so far.
  SimTime busy_until() const { return busy_until_; }

  /// Queue backlog (time units of unfinished work) at time `now`.
  SimTime BacklogAt(SimTime now) const;

  /// Total requests admitted.
  std::int64_t admitted() const { return admitted_; }

  SimTime service_time() const { return service_time_; }

  /// Forgets the backlog (used when re-seeding scenarios mid-run).
  void Reset();

 private:
  SimTime service_time_;
  SimTime busy_until_ = 0;
  SimTime last_arrival_ = 0;
  std::int64_t admitted_ = 0;
};

}  // namespace radar::sim
