#include "sim/fcfs_server.h"

#include <algorithm>

#include "common/check.h"

namespace radar::sim {

FcfsServer::FcfsServer(double capacity_rps) {
  RADAR_CHECK_GT(capacity_rps, 0.0);
  service_time_ = static_cast<SimTime>(
      static_cast<double>(kMicrosPerSecond) / capacity_rps);
  RADAR_CHECK_GT(service_time_, 0);
}

SimTime FcfsServer::Admit(SimTime arrival) {
  RADAR_CHECK_GE(arrival, last_arrival_);
  last_arrival_ = arrival;
  const SimTime start = std::max(arrival, busy_until_);
  busy_until_ = start + service_time_;
  ++admitted_;
  return busy_until_;
}

SimTime FcfsServer::BacklogAt(SimTime now) const {
  return std::max<SimTime>(0, busy_until_ - now);
}

void FcfsServer::Reset() {
  busy_until_ = 0;
  last_arrival_ = 0;
  admitted_ = 0;
}

}  // namespace radar::sim
