#include "sim/simulator.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace radar::sim {

void Simulator::Schedule(SimTime delay, EventFn fn) {
  RADAR_CHECK(delay >= 0);
  queue_.Push(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, EventFn fn) {
  RADAR_CHECK(when >= now_);
  queue_.Push(when, std::move(fn));
}

void Simulator::SchedulePeriodic(SimTime first_at, SimTime period,
                                 std::function<void(SimTime)> fn) {
  RADAR_CHECK(period > 0);
  RADAR_CHECK(first_at >= now_);
  // Self-rescheduling wrapper; stops automatically when the next firing
  // would land past the run horizon.
  // Self-rescheduling wrapper. The next firing is always enqueued, so a
  // periodic task survives successive RunUntil() horizons; it simply waits
  // in the queue past the last horizon.
  auto tick = std::make_shared<std::function<void(SimTime)>>();
  *tick = [this, period, fn = std::move(fn), self = tick](SimTime at) {
    fn(at);
    const SimTime next = at + period;
    queue_.Push(next, [self, next] { (*self)(next); });
  };
  queue_.Push(first_at, [tick, first_at] { (*tick)(first_at); });
}

void Simulator::RunUntil(SimTime until) {
  RADAR_CHECK(until >= now_);
  while (!queue_.empty() && queue_.NextTime() <= until) {
    auto [when, fn] = queue_.Pop();
    RADAR_CHECK(when >= now_);
    now_ = when;
    fn();
    ++events_executed_;
  }
  if (now_ < until) now_ = until;
}

void Simulator::RunAll() {
  while (!queue_.empty()) {
    auto [when, fn] = queue_.Pop();
    RADAR_CHECK(when >= now_);
    now_ = when;
    fn();
    ++events_executed_;
  }
}

}  // namespace radar::sim
