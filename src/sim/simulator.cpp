#include "sim/simulator.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace radar::sim {

void Simulator::Schedule(SimTime delay, EventFn fn) {
  RADAR_CHECK_GE(delay, 0);
  queue_.Push(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, EventFn fn) {
  RADAR_CHECK_GE(when, now_);
  queue_.Push(when, std::move(fn));
}

void Simulator::SchedulePeriodic(SimTime first_at, SimTime period,
                                 std::function<void(SimTime)> fn) {
  RADAR_CHECK_GT(period, 0);
  RADAR_CHECK_GE(first_at, now_);
  // Self-rescheduling wrapper. The next firing is always enqueued, so a
  // periodic task survives successive RunUntil() horizons; it simply waits
  // in the queue past the last horizon. The closure is owned by
  // periodic_tasks_ (capturing a shared self-handle instead would form a
  // reference cycle and leak — ASan's leak checker catches exactly that).
  periodic_tasks_.push_back(
      std::make_unique<std::function<void(SimTime)>>());
  auto* tick = periodic_tasks_.back().get();
  *tick = [this, period, fn = std::move(fn), tick](SimTime at) {
    fn(at);
    const SimTime next = at + period;
    queue_.Push(next, [tick, next] { (*tick)(next); });
  };
  queue_.Push(first_at, [tick, first_at] { (*tick)(first_at); });
}

void Simulator::RunUntil(SimTime until) {
  RADAR_CHECK_GE(until, now_);
  while (!queue_.empty() && queue_.NextTime() <= until) {
    auto [when, fn] = queue_.Pop();
    RADAR_CHECK_GE(when, now_);
    now_ = when;
    fn();
    ++events_executed_;
  }
  if (now_ < until) now_ = until;
}

void Simulator::RunAll() {
  while (!queue_.empty()) {
    auto [when, fn] = queue_.Pop();
    RADAR_CHECK_GE(when, now_);
    now_ = when;
    fn();
    ++events_executed_;
  }
}

}  // namespace radar::sim
