#include "sim/simulator.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace radar::sim {

void Simulator::PeriodicTask::Fire(SimTime at) {
  fn(at);
  const SimTime next = at + period;
  sim->queue_.Push(next, [this, next] { Fire(next); });
}

void Simulator::SchedulePeriodic(SimTime first_at, SimTime period,
                                 PeriodicFn fn) {
  RADAR_CHECK_GT(period, 0);
  RADAR_CHECK_GE(first_at, now_);
  // The next firing is always enqueued, so a periodic task survives
  // successive RunUntil() horizons; it simply waits in the queue past the
  // last horizon.
  periodic_tasks_.push_back(std::make_unique<PeriodicTask>(
      PeriodicTask{this, period, std::move(fn)}));
  PeriodicTask* task = periodic_tasks_.back().get();
  queue_.Push(first_at, [task, first_at] { task->Fire(first_at); });
}

// RADAR_HOT: simulator dispatch loop
void Simulator::RunUntil(SimTime until) {
  RADAR_CHECK_GE(until, now_);
  SimTime when = 0;
  std::uint32_t slot = 0;
  // Fused peek + pop (one wheel settle per event) and in-place execution:
  // the closure runs inside the queue's slot slab (stable storage), so
  // the hot loop never moves a closure.
  while (queue_.PopEntryIfNotAfter(until, &when, &slot)) {
    RADAR_CHECK_GE(when, now_);
    now_ = when;
    queue_.InvokeAndReleaseSlot(slot);
    ++events_executed_;
  }
  if (now_ < until) now_ = until;
}

void Simulator::RunAll() {
  while (!queue_.empty()) {
    const auto [when, slot] = queue_.PopEntry();
    RADAR_CHECK_GE(when, now_);
    now_ = when;
    queue_.InvokeAndReleaseSlot(slot);
    ++events_executed_;
  }
}
// RADAR_HOT_END

}  // namespace radar::sim
