#include "sim/shard.h"

#include "common/check.h"

namespace radar::sim {

WindowExecutor::~WindowExecutor() = default;
WindowModel::~WindowModel() = default;

void SerialWindowExecutor::RunShards(int num_shards,
                                     void (*task)(void* ctx, int shard),
                                     void* ctx) {
  for (int s = 0; s < num_shards; ++s) task(ctx, s);
}

namespace {

struct WindowCtx {
  WindowModel* model;
  SimTime end;
};

void RunOneShard(void* ctx, int shard) {
  WindowCtx* c = static_cast<WindowCtx*>(ctx);
  c->model->RunShardWindow(shard, c->end);
}

}  // namespace

void RunConservativeWindows(WindowModel& model, int num_shards,
                            SimTime duration, WindowExecutor* executor) {
  RADAR_CHECK_GE(num_shards, 1);
  RADAR_CHECK_GE(duration, 0);
  SerialWindowExecutor serial;
  if (executor == nullptr) executor = &serial;

  // Shard events with when <= done and globals with when <= done have
  // executed. Starts at -1 so the first window covers time 0 (globals at
  // 0, if any, run through the empty-window branch first).
  SimTime done = -1;
  for (;;) {
    const SimTime next_g = model.NextGlobalTime();
    if (next_g <= done) {
      // Defensive drain; globals never schedule into the past, so this
      // only fires if a model reports a stale NextGlobalTime.
      model.RunGlobalsUntil(next_g);
      continue;
    }
    if (done >= duration) break;

    SimTime end = duration;
    const SimTime lookahead = model.Lookahead();
    RADAR_CHECK_GE(lookahead, 1);
    if (lookahead != kUnboundedLookahead && done + lookahead < end) {
      end = done + lookahead;
    }
    // Cut the window just before the next global so globals at T always
    // precede shard events at T — a K-invariant interleaving rule.
    if (next_g != kNoEventTime && next_g - 1 < end) end = next_g - 1;

    if (end <= done) {
      // No shard progress is safe before the next global event: run it
      // (possibly rebuilding routing and changing the lookahead).
      model.RunGlobalsUntil(next_g);
      continue;
    }

    model.BeginWindow(end);
    WindowCtx ctx{&model, end};
    executor->RunShards(num_shards, &RunOneShard, &ctx);
    model.Barrier(end);
    done = end;
  }
}

}  // namespace radar::sim
