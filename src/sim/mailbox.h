// Cross-shard message exchange for conservative windowed execution.
//
// During a window, each shard executes its own event queue on its own
// thread and may address events to hosts owned by other shards. Those
// events must not be pushed into a foreign queue mid-window (that queue is
// being popped concurrently); instead the sender appends an envelope —
// {delivery time, sequence key, payload} — to the (src, dst) cell of a
// MailboxGrid. Cells are single-writer by construction: cell (s, d) is
// touched only by shard s's thread during a window, and only by the
// coordinator thread at the barrier, so the grid needs no synchronization
// beyond the barrier's own happens-before edge (the executor's join).
//
// At the barrier the coordinator drains each destination column: the
// envelopes from every source cell are merged into (when, seq) order and
// handed to the sink, which pushes them into the destination queue under
// their reserved sequence keys (EventQueue::PushAtSeq). Because keys are
// model-assigned and partition-independent, the destination queue's pop
// order after delivery is identical to what a serial run would produce —
// the merge makes delivery order reproducible, and the keys make pop
// order independent of which shard carried which actor.
//
// This header and sim/shard.{h,cpp} are the only src/sim files where
// shard-shared mutable state may live (radar_lint's shard-confinement
// rule); everything else in the simulation layer stays single-threaded.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace radar::sim {

/// One cross-shard message: deliver `payload` at `when` under sequence
/// key `seq` (reserved key space; see event_queue.h).
template <class Msg>
struct ShardEnvelope {
  SimTime when = 0;
  std::uint64_t seq = 0;
  Msg payload{};
};

template <class Msg>
class MailboxGrid {
 public:
  /// Sizes the grid for `num_shards` logical processes, clearing any
  /// previous contents.
  void Reset(int num_shards) {
    RADAR_CHECK_GE(num_shards, 1);
    num_shards_ = num_shards;
    cells_.assign(static_cast<std::size_t>(num_shards) *
                      static_cast<std::size_t>(num_shards),
                  {});
  }

  int num_shards() const { return num_shards_; }

  /// Appends a message to cell (src, dst). Must be called only from the
  /// thread executing shard `src`'s window (single-writer cells).
  void Send(int src, int dst, SimTime when, std::uint64_t seq,
            const Msg& payload) {
    cells_[Index(src, dst)].push_back(ShardEnvelope<Msg>{when, seq, payload});
  }

  /// True when no cell addressed to `dst` holds a message.
  bool ColumnEmpty(int dst) const {
    for (int src = 0; src < num_shards_; ++src) {
      if (!cells_[Index(src, dst)].empty()) return false;
    }
    return true;
  }

  /// Merges every cell addressed to `dst` into (when, seq) order, feeds
  /// each envelope to `sink`, and clears the cells (keeping capacity).
  /// Barrier-side only: no shard window may be executing.
  template <class Sink>
  void DrainColumn(int dst, Sink&& sink) {
    merge_.clear();
    for (int src = 0; src < num_shards_; ++src) {
      std::vector<ShardEnvelope<Msg>>& cell = cells_[Index(src, dst)];
      merge_.insert(merge_.end(), cell.begin(), cell.end());
      cell.clear();
    }
    std::sort(merge_.begin(), merge_.end(),
              [](const ShardEnvelope<Msg>& a, const ShardEnvelope<Msg>& b) {
                if (a.when != b.when) return a.when < b.when;
                return a.seq < b.seq;  // keys are unique: a total order
              });
    for (const ShardEnvelope<Msg>& e : merge_) sink(e);
  }

 private:
  std::size_t Index(int src, int dst) const {
    RADAR_CHECK_GE(src, 0);
    RADAR_CHECK_LT(src, num_shards_);
    RADAR_CHECK_GE(dst, 0);
    RADAR_CHECK_LT(dst, num_shards_);
    return static_cast<std::size_t>(src) *
               static_cast<std::size_t>(num_shards_) +
           static_cast<std::size_t>(dst);
  }

  int num_shards_ = 0;
  std::vector<std::vector<ShardEnvelope<Msg>>> cells_;
  std::vector<ShardEnvelope<Msg>> merge_;  // barrier scratch, reused
};

}  // namespace radar::sim
