// A move-only callable with inline (small-buffer-only) storage.
//
// The event queue schedules millions of closures per run; std::function
// heap-allocates any capture larger than its tiny internal buffer, which
// made every DispatchRequest -> ArriveAtHost -> CompleteService hop a
// malloc/free pair. InplaceFunction stores the callable in an in-object
// buffer of fixed Capacity and refuses — at compile time — anything that
// does not fit, so scheduling never touches the heap and an accidentally
// fat capture is a build error, not a silent regression.
//
// Deliberate differences from std::function:
//   - move-only (events are scheduled once and consumed once),
//   - no allocation fallback: static_assert on sizeof/alignof,
//   - invoking an empty function is a RADAR_CHECK failure.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace radar::sim {

template <class Signature, std::size_t Capacity = 64>
class InplaceFunction;  // undefined; see the R(Args...) specialization

template <class R, class... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t kCapacity = Capacity;
  static constexpr std::size_t kAlignment = alignof(std::max_align_t);

  /// True when a callable of type F (after decay) fits the inline buffer;
  /// exposed so tests can pin the capacity gate without tripping the
  /// constructor's static_assert.
  template <class F>
  static constexpr bool can_hold =
      sizeof(std::decay_t<F>) <= Capacity &&
      alignof(std::decay_t<F>) <= kAlignment;

  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F,
            class = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InplaceFunction>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    Emplace(std::forward<F>(f));
  }

  InplaceFunction(InplaceFunction&& other) noexcept {
    MoveFrom(std::move(other));
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  /// Assigning a callable constructs it directly in the inline buffer —
  /// no intermediate InplaceFunction, no extra move of the capture. This
  /// is what lets the event queue emplace a closure straight into its
  /// slot slab.
  template <class F,
            class = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InplaceFunction>>>
  InplaceFunction& operator=(F&& f) {
    Reset();
    Emplace(std::forward<F>(f));
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    RADAR_CHECK_MSG(ops_ != nullptr, "invoking an empty InplaceFunction");
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  /// Destroys the held callable (if any), leaving the function empty.
  /// Closures over trivially destructible captures (every hot-path event:
  /// PODs and pointers only) carry a null destroy op, so releasing them
  /// is a branch, not an indirect call.
  void Reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  /// Per-callable-type operations table; one static instance per Fn, so
  /// the function object itself carries just a pointer and the buffer.
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*move_to)(void* from, void* to);  // move-construct + destroy src
    void (*destroy)(void*);  // null when ~Fn is trivial
  };

  template <class Fn>
  struct OpsFor {
    static R Invoke(void* storage, Args&&... args) {
      return (*static_cast<Fn*>(storage))(std::forward<Args>(args)...);
    }
    static void MoveTo(void* from, void* to) {
      Fn* src = static_cast<Fn*>(from);
      ::new (to) Fn(std::move(*src));
      src->~Fn();
    }
    static void Destroy(void* storage) { static_cast<Fn*>(storage)->~Fn(); }
    static constexpr Ops ops{
        &Invoke, &MoveTo,
        std::is_trivially_destructible_v<Fn> ? nullptr : &Destroy};
  };

  template <class F>
  void Emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "capture too large for InplaceFunction's inline buffer; "
                  "shrink the capture (capture pointers, not objects) or "
                  "widen the Capacity parameter at the declaration site");
    static_assert(alignof(Fn) <= kAlignment,
                  "capture over-aligned for InplaceFunction's buffer");
    static_assert(std::is_invocable_r_v<R, Fn&, Args...>,
                  "callable does not match the InplaceFunction signature");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "captures must be nothrow-movable: the event heap moves "
                  "entries while restoring its invariant");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::ops;
  }

  void MoveFrom(InplaceFunction&& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->move_to(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  // ops_ precedes the (16-aligned) buffer, so a function with a capture of
  // up to Capacity = 48 bytes occupies bytes [0, 64) — ops pointer and
  // capture on ONE cache line. With the buffer first, the trailing ops
  // pointer starts at offset Capacity and every emplace/invoke/release
  // touches a second line regardless of capture size.
  const Ops* ops_ = nullptr;
  alignas(kAlignment) unsigned char storage_[Capacity];
};

}  // namespace radar::sim
