#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace radar::sim {

EventQueue::EventQueue() : buckets_(kWheelBuckets) {}

// RADAR_HOT: event queue push/settle/sift
void EventQueue::PushEntry(const Entry& e) {
  ++size_;
  if (wheel_count_ == 0 && !InWheelRange(e.when)) {
    // The wheel is empty, so it can be re-anchored freely: park it on this
    // event's bucket instead of sending near-term traffic to the heap
    // forever after an idle stretch moved the clock past the old span.
    buckets_[CurIdx()].clear();
    cursor_ = 0;
    wheel_time_ = e.when & ~(kBucketWidth - 1);
  }
  if (InWheelRange(e.when)) {
    ++wheel_count_;
    Bucket& b = buckets_[BucketIdx(e.when)];
    if (BucketIdx(e.when) == CurIdx()) {
      // The current bucket is sorted and partially consumed; splice the
      // entry into the unconsumed tail to keep it that way. (A fresh
      // entry's seq exceeds every pending one, so ties sort after.)
      b.insert(std::upper_bound(b.begin() +
                                    static_cast<std::ptrdiff_t>(cursor_),
                                b.end(), e, Earlier),
               e);
    } else {
      b.push_back(e);  // sorted later, when the bucket becomes current
    }
  } else {
    // Beyond the horizon — or behind a wheel that has already advanced
    // (possible when NextTime() skipped idle buckets before this push).
    // Either way the heap keeps it, and pops compare both sources.
    far_.push_back(e);
    SiftUp(far_, far_.size() - 1);
  }
}

EventQueue::Bucket* EventQueue::SettleWheel() {
  if (wheel_count_ == 0) return nullptr;
  Bucket* cur = &buckets_[CurIdx()];
  while (cursor_ >= cur->size()) {
    cur->clear();
    cursor_ = 0;
    wheel_time_ += kBucketWidth;
    cur = &buckets_[CurIdx()];
    if (cur->size() > 1) std::sort(cur->begin(), cur->end(), Earlier);
  }
  return cur;
}

void EventQueue::SiftUp(std::vector<Entry>& heap, std::size_t i) {
  const Entry e = heap[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!Earlier(e, heap[parent])) break;
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = e;
}

// Bottom-up variant: the element being sifted comes from the heap's back,
// i.e. a leaf, and is almost always later than everything on its path; the
// classic top-down sift would compare it at every level only to keep
// descending. Instead, pull the min-child chain up unconditionally to the
// bottom, then bubble the element the (usually zero) levels back up. Both
// variants produce valid heaps over the same elements, and the pop order
// depends only on the (when, seq) total order — never on layout — so this
// is invisible to simulation results.
void EventQueue::SiftDown(std::vector<Entry>& heap, std::size_t i) {
  const Entry e = heap[i];
  const std::size_t n = heap.size();
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (Earlier(heap[c], heap[best])) best = c;
    }
    heap[i] = heap[best];
    i = best;
  }
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!Earlier(e, heap[parent])) break;
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = e;
}
// RADAR_HOT_END

// Slot-slab growth is the cold path of Push (amortized away by the free
// list), so it sits outside the hot regions: its chunk allocation is
// legitimate.
std::uint32_t EventQueue::AcquireSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  RADAR_CHECK_LT(num_slots_, kSlotMask);
  if ((num_slots_ >> kChunkShift) ==
      static_cast<std::uint32_t>(chunks_.size())) {
    chunks_.push_back(std::make_unique<EventFn[]>(kChunkSize));
  }
  return num_slots_++;
}

// RADAR_HOT: event queue pop
SimTime EventQueue::NextTime() {
  RADAR_CHECK_GT(size_, 0u);
  const Bucket* cur = SettleWheel();
  if (cur == nullptr) return far_.front().when;
  const Entry& w = (*cur)[cursor_];
  if (!far_.empty() && Earlier(far_.front(), w)) return far_.front().when;
  return w.when;
}

std::pair<SimTime, std::uint32_t> EventQueue::PopEntry() {
  RADAR_CHECK_GT(size_, 0u);
  Entry top;
  Bucket* cur = SettleWheel();
  if (cur != nullptr &&
      (far_.empty() || Earlier((*cur)[cursor_], far_.front()))) {
    top = (*cur)[cursor_++];
    --wheel_count_;
    if (cursor_ == cur->size()) {
      // Eager clear: the bucket stays current (new same-bucket pushes may
      // still arrive) but its storage — and capacity — are reusable now.
      cur->clear();
      cursor_ = 0;
    }
  } else {
    top = far_.front();
    far_.front() = far_.back();
    far_.pop_back();
    if (!far_.empty()) SiftDown(far_, 0);
  }
  --size_;
  return {top.when, static_cast<std::uint32_t>(top.seq_slot & kSlotMask)};
}

bool EventQueue::PopEntryIfNotAfter(SimTime until, SimTime* when,
                                    std::uint32_t* slot) {
  // Global minimum over the three residences: wheel-current, far-heap
  // front, stream-ring head. Seqs are unique, so strict Earlier chains
  // pick the same entry regardless of comparison order.
  Bucket* cur = SettleWheel();
  const Entry* best = cur != nullptr ? &(*cur)[cursor_] : nullptr;
  const bool from_far =
      !far_.empty() && (best == nullptr || Earlier(far_.front(), *best));
  if (from_far) best = &far_.front();
  const bool from_stream =
      stream_count_ != 0 &&
      (best == nullptr || Earlier(StreamFront(), *best));
  if (from_stream) best = &StreamFront();
  if (best == nullptr || best->when > until) return false;
  *when = best->when;
  if (from_stream) {
    *slot = static_cast<std::uint32_t>(best->seq_slot & kSlotMask) |
            kStreamTag;
    PopStreamFront();
    return true;
  }
  *slot = static_cast<std::uint32_t>(best->seq_slot & kSlotMask);
  if (from_far) {
    far_.front() = far_.back();
    far_.pop_back();
    if (!far_.empty()) SiftDown(far_, 0);
  } else {
    ++cursor_;
    --wheel_count_;
    if (cursor_ == cur->size()) {
      cur->clear();
      cursor_ = 0;
    }
  }
  --size_;
  return true;
}
// RADAR_HOT_END

std::uint32_t EventQueue::AddStream(EventFn fn) {
  RADAR_CHECK_LT(streams_.size(), static_cast<std::size_t>(kSlotMask));
  streams_.push_back(std::move(fn));
  return static_cast<std::uint32_t>(streams_.size() - 1);
}

void EventQueue::GrowStreamRing() {
  // Re-lay the armed entries contiguously from index 0 of the doubled
  // ring (minimum capacity 16).
  std::vector<Entry> grown(stream_ring_.empty() ? 16
                                                : stream_ring_.size() * 2);
  for (std::size_t i = 0; i < stream_count_; ++i) {
    grown[i] =
        stream_ring_[(stream_head_ + i) & (stream_ring_.size() - 1)];
  }
  stream_ring_ = std::move(grown);
  stream_head_ = 0;
}

// RADAR_HOT: stream re-arm
void EventQueue::ArmStream(std::uint32_t id, SimTime when) {
  RADAR_CHECK_GE(when, 0);
  RADAR_CHECK_LT(static_cast<std::size_t>(id), streams_.size());
  if (stream_count_ == stream_ring_.size()) GrowStreamRing();
  // Reserve the firing's place in the (when, seq) total order — the same
  // sequence number a Push at this point would have consumed.
  const Entry e{when, (next_seq_++ << kSlotBits) | id};
  const std::size_t mask = stream_ring_.size() - 1;
  std::size_t i = (stream_head_ + stream_count_) & mask;
  // Streams re-arm one period after the firing that arms them, which is
  // at or past every armed entry (equal times lose on seq), so this loop
  // almost never iterates; differing periods or out-of-order initial
  // arms shift a few 16-byte entries.
  while (i != stream_head_) {
    const std::size_t prev = (i + mask) & mask;
    if (!Earlier(e, stream_ring_[prev])) break;
    stream_ring_[i] = stream_ring_[prev];
    i = prev;
  }
  stream_ring_[i] = e;
  ++stream_count_;
}
// RADAR_HOT_END

void EventQueue::ReleaseSlot(std::uint32_t slot) {
  SlotRef(slot).Reset();
  free_slots_.push_back(slot);
}

std::pair<SimTime, EventFn> EventQueue::Pop() {
  const auto [when, slot] = PopEntry();
  std::pair<SimTime, EventFn> out{when, std::move(SlotRef(slot))};
  free_slots_.push_back(slot);
  return out;
}

}  // namespace radar::sim
