#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace radar::sim {

void EventQueue::Push(SimTime when, EventFn fn) {
  RADAR_CHECK_GE(when, 0);
  heap_.push(Entry{when, next_seq_++, std::move(fn)});
}

SimTime EventQueue::NextTime() const {
  RADAR_CHECK(!heap_.empty());
  return heap_.top().when;
}

std::pair<SimTime, EventFn> EventQueue::Pop() {
  RADAR_CHECK(!heap_.empty());
  // priority_queue::top() returns const&; the const_cast move is safe
  // because we pop immediately afterwards.
  auto& top = const_cast<Entry&>(heap_.top());
  std::pair<SimTime, EventFn> out{top.when, std::move(top.fn)};
  heap_.pop();
  return out;
}

}  // namespace radar::sim
