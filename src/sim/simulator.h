// The simulation executive: a clock plus an event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/event_queue.h"

namespace radar::sim {

class Simulator {
 public:
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` microseconds from now (delay >= 0).
  void Schedule(SimTime delay, EventFn fn);

  /// Schedules `fn` at absolute time `when` (must not be in the past).
  void ScheduleAt(SimTime when, EventFn fn);

  /// Schedules `fn` to run every `period` starting at `first_at`; `fn`
  /// receives the firing time. Fires indefinitely (RunAll never returns
  /// while a periodic task is registered; use RunUntil).
  void SchedulePeriodic(SimTime first_at, SimTime period,
                        std::function<void(SimTime)> fn);

  /// Runs events until the queue drains or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void RunUntil(SimTime until);

  /// Runs until the event queue is empty.
  void RunAll();

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  std::uint64_t events_executed_ = 0;
  /// Periodic tick closures live here, not in the event queue: the queued
  /// continuations capture a raw pointer to the stable heap slot, so there
  /// is no shared_ptr cycle and the closures die with the simulator.
  /// (Queued events already require the simulator alive — they use queue_.)
  std::vector<std::unique_ptr<std::function<void(SimTime)>>> periodic_tasks_;
};

}  // namespace radar::sim
