// The simulation executive: a clock plus an event queue.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/inplace_function.h"

namespace radar::sim {

/// Periodic tick callback; receives the firing time. Like EventFn, the
/// capture must fit the inline buffer — scheduling never allocates.
using PeriodicFn = InplaceFunction<void(SimTime), 64>;

class Simulator {
 public:
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` microseconds from now (delay >= 0).
  /// Forwards straight into the queue's slab, so the callable is moved
  /// exactly once (lambda -> slot).
  template <class F>
  void Schedule(SimTime delay, F&& fn) {
    RADAR_CHECK_GE(delay, 0);
    queue_.Push(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute time `when` (must not be in the past).
  template <class F>
  void ScheduleAt(SimTime when, F&& fn) {
    RADAR_CHECK_GE(when, now_);
    queue_.Push(when, std::forward<F>(fn));
  }

  /// Schedules `fn` to run every `period` starting at `first_at`; `fn`
  /// receives the firing time. Fires indefinitely (RunAll never returns
  /// while a periodic task is registered; use RunUntil).
  void SchedulePeriodic(SimTime first_at, SimTime period, PeriodicFn fn);

  // -- Keyed scheduling (seq reservation protocol; see event_queue.h) --
  //
  // The sharded engine assigns each event a model-derived sequence key so
  // equal-time ordering is invariant under host partitioning. Reserve the
  // key space once, then push under explicit keys; automatic Schedule
  // seqs start above the reservation and can never collide.

  /// Reserves seqs [0, bound) for ScheduleKeyedAt keys.
  void ReserveKeySpace(std::uint64_t bound) { queue_.ReserveKeySpace(bound); }

  /// Schedules `fn` at absolute time `when` under the caller-assigned
  /// sequence key `key` (reserved, globally unique; not in the past).
  template <class F>
  void ScheduleKeyedAt(SimTime when, std::uint64_t key, F&& fn) {
    RADAR_CHECK_GE(when, now_);
    queue_.PushAtSeq(when, key, std::forward<F>(fn));
  }

  // -- Pinned streams (see EventQueue) --
  //
  // For self-rescheduling high-frequency tasks whose closure never
  // changes: register once, then arm each firing. An armed firing runs at
  // exactly the place in the event order a Schedule at the same point
  // would have taken, but costs no slot traffic. The closure takes no
  // arguments — read Now() for the firing time. Streams fire only inside
  // RunUntil, and only the next armed firing is pending at a time.

  /// Registers a stream closure; returns its id.
  template <class F>
  std::uint32_t AddStream(F&& fn) {
    return queue_.AddStream(EventFn(std::forward<F>(fn)));
  }

  /// Arms the stream's next firing at absolute time `when` (not in the
  /// past; typically called from inside the stream's own closure).
  void ArmStream(std::uint32_t id, SimTime when) {
    RADAR_CHECK_GE(when, now_);
    queue_.ArmStream(id, when);
  }

  /// Runs events until the queue drains or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void RunUntil(SimTime until);

  /// Runs until the event queue is empty.
  void RunAll();

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t pending_events() const { return queue_.size(); }

  /// Time of the earliest pending event (requires pending_events() > 0).
  /// Pinned streams are not visible here — the shard window scheduler
  /// uses this on the coordinator queue, which runs no streams.
  SimTime NextEventTime() { return queue_.NextTime(); }

 private:
  /// A periodic task owns its tick closure in a stable heap slot; the
  /// queued continuation captures just {task pointer, firing time}, so it
  /// fits EventFn's inline buffer regardless of the user capture's size
  /// (up to PeriodicFn's own capacity) and the closure dies with the
  /// simulator — no shared_ptr self-handle, no reference cycle.
  struct PeriodicTask {
    Simulator* sim;
    SimTime period;
    PeriodicFn fn;
    void Fire(SimTime at);
  };

  SimTime now_ = 0;
  EventQueue queue_;
  std::uint64_t events_executed_ = 0;
  std::vector<std::unique_ptr<PeriodicTask>> periodic_tasks_;
};

}  // namespace radar::sim
