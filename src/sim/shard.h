// Conservative time-window scheduler for shard-parallel simulation.
//
// The simulation's hosts are partitioned into K shards (logical
// processes), each owning its own event queue; one coordinator queue
// keeps the global track (periodic ticks, fault events). The scheduler
// alternates between two phases:
//
//   window  — every shard executes its queue through a common horizon
//             `end`, concurrently, touching only shard-owned state.
//             Cross-shard effects are deferred into mailboxes
//             (sim/mailbox.h).
//   barrier — mailboxes are drained into the destination queues in
//             (when, seq) order, and any due global events run serially.
//
// The horizon is chosen conservatively: with lookahead L = the minimum
// cross-shard control latency, an event executing at time t > done can
// only influence another shard at t + L > done + L, so the window
// (done, done + L] is free of incoming surprises — no shard ever pops an
// event earlier than a cross-shard message that could still arrive.
// Windows are additionally cut just before the next global event so that
// globals at time T always run after all shard events <= T-1 and before
// any shard event at T — a total order that does not depend on K (the
// lookahead, and therefore the window boundaries, do).
//
// Determinism does not rest on window boundaries: every shard event
// carries a model-assigned sequence key (event_queue.h's reservation
// protocol), so each queue pops the same (when, key) stream no matter
// how many barriers interleave, and the whole execution is byte-identical
// for any K — including K = 1, the reference the shard tests compare to.
//
// WindowExecutor is the only seam that touches threads; its pooled
// implementation lives in src/runner (runner/shard_executor.h), keeping
// the thread-confinement rule intact. The interface is C-style (function
// pointer + context) because std::function is banned in src/sim.
#pragma once

#include <cstdint>
#include <limits>

#include "common/types.h"

namespace radar::sim {

/// No pending coordinator event / no cross-shard pair (K = 1): both map
/// to "no constraint on the window horizon".
inline constexpr SimTime kNoEventTime = std::numeric_limits<SimTime>::max();
inline constexpr SimTime kUnboundedLookahead =
    std::numeric_limits<SimTime>::max();

/// Runs one window's shard tasks, possibly concurrently. Implementations
/// must invoke task(ctx, s) exactly once for every s in [0, num_shards)
/// and return only when all invocations have finished (the barrier's
/// happens-before edge).
class WindowExecutor {
 public:
  virtual ~WindowExecutor();
  virtual void RunShards(int num_shards, void (*task)(void* ctx, int shard),
                         void* ctx) = 0;
};

/// Inline executor: runs shards 0..K-1 sequentially on the caller's
/// thread. Byte-identical to any concurrent executor (shard state is
/// disjoint and delivery order is fixed by the mailbox merge), so it is
/// both the default and the reference for the determinism tests.
class SerialWindowExecutor final : public WindowExecutor {
 public:
  void RunShards(int num_shards, void (*task)(void* ctx, int shard),
                 void* ctx) override;
};

/// The model half of the scheduler, implemented by the driver. All hooks
/// except RunShardWindow are called from the coordinating thread only.
class WindowModel {
 public:
  virtual ~WindowModel();

  /// Absolute time of the earliest pending coordinator (global-track)
  /// event, or kNoEventTime when none is pending.
  virtual SimTime NextGlobalTime() = 0;

  /// Runs every global event with when <= t serially. May change the
  /// topology and therefore the value Lookahead() returns next.
  virtual void RunGlobalsUntil(SimTime t) = 0;

  /// Current lookahead: the minimum control latency between nodes owned
  /// by different shards, or kUnboundedLookahead when K = 1. Must be >= 1
  /// (a zero-latency cross-shard pair would make safe windows empty).
  virtual SimTime Lookahead() = 0;

  /// Announces the horizon of the window about to execute; called before
  /// the executor dispatches, so shards may validate that every
  /// cross-shard send lands strictly beyond it.
  virtual void BeginWindow(SimTime end) = 0;

  /// Executes shard `shard`'s events with when <= end. Called via the
  /// executor, concurrently for distinct shards.
  virtual void RunShardWindow(int shard, SimTime end) = 0;

  /// Window barrier: drains mailboxes into the destination queues.
  /// Every delivered envelope must satisfy when > end.
  virtual void Barrier(SimTime end) = 0;
};

/// Drives windows and barriers until every shard has executed through
/// `duration` and every global event with when <= duration has run.
/// Globals at time T run after shard events <= T-1 and before shard
/// events at T, for every K. A null executor runs windows inline.
void RunConservativeWindows(WindowModel& model, int num_shards,
                            SimTime duration, WindowExecutor* executor);

}  // namespace radar::sim
