// A stable-order discrete-event queue.
//
// Events with equal timestamps fire in insertion order (FIFO), which keeps
// runs bit-for-bit reproducible regardless of the queue's internals.
//
// Layout: tiny trivially-copyable {when, seq, slot} entries are ordered by
// a calendar wheel backed by a small min-heap; the closures themselves
// (InplaceFunction, no heap allocation) live in a chunked slab of reusable
// slots referenced by index, so ordering moves 16-byte PODs — never a
// closure.
//
//   - The wheel covers the near horizon (1024 buckets of 256 us, ~262 ms):
//     an event lands in the bucket of its timestamp, the bucket is sorted
//     by (when, seq) when it becomes current, and pops just advance a
//     cursor — amortized O(1) against the O(log n) sift of a pure heap.
//     Request traffic (inter-event gaps of ~100 us) lives entirely here.
//   - Events beyond the horizon — and events scheduled behind a wheel
//     that has already advanced — go to a 4-ary min-heap of the same
//     entries. The front of the wheel and the top of the heap are compared
//     on every pop, so the queue always yields the global (when, seq)
//     minimum: the pop sequence is identical to any conforming heap's.
//     Long-period ticks (measurement, placement, census) idle here instead
//     of adding depth to every request-event sift.
//
// Slab chunks never move once allocated, so a closure can be *invoked in
// place* (PopEntry / InvokeSlot / ReleaseSlot) even while it pushes new
// events: the simulation's run loop executes each event with zero closure
// moves. Steady-state operation performs no allocation at all — released
// slots are recycled through a free list, bucket vectors keep their
// capacity across laps, and the slab stops growing once the run's peak
// event population is reached.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/inplace_function.h"

namespace radar::sim {

using EventFn = InplaceFunction<void(), 64>;

class EventQueue {
 public:
  EventQueue();

  /// Enqueues an event at absolute time `when` (must be >= 0). The callable
  /// is constructed directly in its slab slot (EventFn's converting
  /// assignment), so a lambda passed here is moved exactly once.
  template <class F>
  void Push(SimTime when, F&& fn) {
    RADAR_CHECK_GE(when, 0);
    const std::uint32_t slot = AcquireSlot();
    SlotRef(slot) = std::forward<F>(fn);
    PushEntry(Entry{when, (next_seq_++ << kSlotBits) | slot});
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Time of the earliest pending event. Requires !empty(). May advance
  /// the wheel over empty buckets (never past a pending event).
  SimTime NextTime();

  /// Removes and returns the earliest event. Requires !empty().
  std::pair<SimTime, EventFn> Pop();

  // -- In-place execution (the simulation run loop) --
  //
  // PopEntry removes the earliest entry but leaves its closure in the
  // slab; the caller invokes it in place and then releases the slot:
  //
  //   const auto [when, slot] = q.PopEntry();
  //   q.InvokeSlot(slot);    // may Push further events; the slab is stable
  //   q.ReleaseSlot(slot);   // destroys the closure, recycles the slot
  //
  // This skips the move-out + moved-from destruction that Pop() pays.

  /// Removes the earliest entry, returning {when, slot}. Requires !empty().
  std::pair<SimTime, std::uint32_t> PopEntry();

  /// Runs the closure held in `slot` (which must come from PopEntry).
  void InvokeSlot(std::uint32_t slot) { SlotRef(slot)(); }

  /// Destroys the closure in `slot` and returns the slot to the free list.
  void ReleaseSlot(std::uint32_t slot);

 private:
  // A 16-byte entry: the insertion sequence number lives in the high 40
  // bits of seq_slot and the slab slot index in the low 24 (>= 16M
  // simultaneously pending events). Comparing seq_slot compares seq first;
  // the slot bits can never decide an ordering because sequence numbers
  // are unique — (when, seq) is a total order.
  struct Entry {
    SimTime when;
    std::uint64_t seq_slot;
  };
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static bool Earlier(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq_slot < b.seq_slot;
  }

  // Calendar wheel: kWheelBuckets buckets of kBucketWidth microseconds.
  // wheel_time_ is the (aligned) start of the current bucket; cursor_ is
  // the consumed prefix of that bucket. The current bucket is always
  // sorted; future buckets accumulate unsorted and are sorted once, when
  // they become current. wheel_count_ counts unconsumed wheel entries.
  static constexpr int kBucketShift = 8;  // 256 us per bucket
  static constexpr int kWheelBits = 10;   // 1024 buckets, ~262 ms span
  static constexpr std::size_t kWheelBuckets = std::size_t{1} << kWheelBits;
  static constexpr SimTime kBucketWidth = SimTime{1} << kBucketShift;
  static constexpr SimTime kWheelSpan =
      kBucketWidth * static_cast<SimTime>(kWheelBuckets);
  using Bucket = std::vector<Entry>;

  std::size_t BucketIdx(SimTime when) const {
    return static_cast<std::size_t>(when >> kBucketShift) &
           (kWheelBuckets - 1);
  }
  std::size_t CurIdx() const { return BucketIdx(wheel_time_); }
  bool InWheelRange(SimTime when) const {
    return when >= wheel_time_ && when < wheel_time_ + kWheelSpan;
  }

  void PushEntry(const Entry& e);
  /// Advances the wheel to its earliest unconsumed entry and returns its
  /// bucket, or nullptr if the wheel is empty.
  Bucket* SettleWheel();

  // Far heap (4-ary) for entries outside the wheel's range.
  static constexpr std::size_t kArity = 4;
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);

  // Slot slab: fixed-size chunks that never relocate, so closures have
  // stable addresses for in-place invocation.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  EventFn& SlotRef(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  /// Returns an empty slot (recycled or freshly carved from a chunk).
  std::uint32_t AcquireSlot();

  std::vector<Bucket> buckets_;
  SimTime wheel_time_ = 0;
  std::size_t cursor_ = 0;
  std::size_t wheel_count_ = 0;
  std::vector<Entry> far_;
  std::size_t size_ = 0;

  std::vector<std::unique_ptr<EventFn[]>> chunks_;
  std::uint32_t num_slots_ = 0;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace radar::sim
