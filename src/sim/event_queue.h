// A stable-order discrete-event queue.
//
// Events with equal timestamps fire in insertion order (FIFO), which keeps
// runs bit-for-bit reproducible regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace radar::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Enqueues an event at absolute time `when` (must be >= 0).
  void Push(SimTime when, EventFn fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  SimTime NextTime() const;

  /// Removes and returns the earliest event. Requires !empty().
  std::pair<SimTime, EventFn> Pop();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace radar::sim
