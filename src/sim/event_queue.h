// A stable-order discrete-event queue.
//
// Events with equal timestamps fire in insertion order (FIFO), which keeps
// runs bit-for-bit reproducible regardless of the queue's internals.
//
// Layout: tiny trivially-copyable {when, seq, slot} entries are ordered by
// a calendar wheel backed by a small min-heap; the closures themselves
// (InplaceFunction, no heap allocation) live in a chunked slab of reusable
// slots referenced by index, so ordering moves 16-byte PODs — never a
// closure.
//
//   - The wheel covers the near horizon (1024 buckets of 256 us, ~262 ms):
//     an event lands in the bucket of its timestamp, the bucket is sorted
//     by (when, seq) when it becomes current, and pops just advance a
//     cursor — amortized O(1) against the O(log n) sift of a pure heap.
//     Request traffic (inter-event gaps of ~100 us) lives entirely here.
//   - Events beyond the horizon — and events scheduled behind a wheel
//     that has already advanced — go to a 4-ary min-heap of the same
//     entries. The front of the wheel and the top of the heap are compared
//     on every pop, so the queue always yields the global (when, seq)
//     minimum: the pop sequence is identical to any conforming heap's.
//     Long-period ticks (measurement, placement, census) idle here instead
//     of adding depth to every request-event sift.
//
// Slab chunks never move once allocated, so a closure can be *invoked in
// place* (PopEntry / InvokeSlot / ReleaseSlot) even while it pushes new
// events: the simulation's run loop executes each event with zero closure
// moves. Steady-state operation performs no allocation at all — released
// slots are recycled through a free list, bucket vectors keep their
// capacity across laps, and the slab stops growing once the run's peak
// event population is reached.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/inplace_function.h"

namespace radar::sim {

// 48-byte capture capacity + the ops pointer = a 64-byte slot: every
// event closure occupies exactly one cache line in the slab. Oversized
// captures are a compile error (can_hold) — capture pointers, not
// objects, or split the event.
using EventFn = InplaceFunction<void(), 48>;

class EventQueue {
 public:
  EventQueue();

  /// Enqueues an event at absolute time `when` (must be >= 0). The callable
  /// is constructed directly in its slab slot (EventFn's converting
  /// assignment), so a lambda passed here is moved exactly once.
  // RADAR_HOT: event push inline path
  template <class F>
  void Push(SimTime when, F&& fn) {
    RADAR_CHECK_GE(when, 0);
    const std::uint32_t slot = AcquireSlot();
    SlotRef(slot) = std::forward<F>(fn);
    PushEntry(Entry{when, (next_seq_++ << kSlotBits) | slot});
  }
  // RADAR_HOT_END

  // -- Seq reservation protocol (sharded execution) --
  //
  // Sequence allocation was historically a single counter (next_seq_)
  // shared by every push site, which silently assumed one queue per run:
  // two queues filled independently would hand out overlapping seqs, and
  // merging their event streams (what the shard barrier does) could then
  // tie-break equal-time events differently than a serial run. The
  // reservation protocol makes multi-queue seq assignment explicit:
  //
  //   1. ReserveKeySpace(bound) reserves seqs [0, bound) for *model-
  //      assigned keys* and rebases the automatic counter to `bound`, so
  //      no Push/ArmStream can ever collide with a key.
  //   2. PushAtSeq(when, key, fn) enqueues under a caller-assigned key
  //      from the reserved range. Keys must be globally unique across all
  //      queues of a run (the sharded engine derives them from per-gateway
  //      request counters, which no partitioning can perturb).
  //
  // Because every key is below every automatic seq, a keyed event always
  // precedes an automatic event at the same timestamp — a tie-break that
  // is invariant under how events are distributed across queues. Keyed
  // pushes outside the shard engine are rejected by radar_lint's
  // seq-reservation rule.

  /// Reserves seqs [0, bound) for PushAtSeq keys and rebases automatic
  /// allocation to start at `bound`. Call once, before any keyed push;
  /// re-reserving never shrinks the range or rewinds the counter.
  void ReserveKeySpace(std::uint64_t bound) {
    RADAR_CHECK_GT(bound, 0u);
    RADAR_CHECK_LE(bound, std::uint64_t{1} << (64 - kSlotBits - 1));
    RADAR_CHECK_LE(key_bound_, bound);
    key_bound_ = bound;
    if (next_seq_ < bound) next_seq_ = bound;
  }

  /// Enqueues an event under the caller-assigned sequence key `key`,
  /// which must lie in the reserved key space and be unique for the
  /// queue's lifetime. Ordering is exactly Push's (when, seq) order with
  /// seq = key.
  template <class F>
  void PushAtSeq(SimTime when, std::uint64_t key, F&& fn) {
    RADAR_CHECK_GE(when, 0);
    RADAR_CHECK_MSG(key_bound_ != 0,
                    "PushAtSeq requires a prior ReserveKeySpace");
    RADAR_CHECK_LT(key, key_bound_);
    const std::uint32_t slot = AcquireSlot();
    SlotRef(slot) = std::forward<F>(fn);
    PushEntry(Entry{when, (key << kSlotBits) | slot});
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Time of the earliest pending event. Requires !empty(). May advance
  /// the wheel over empty buckets (never past a pending event).
  SimTime NextTime();

  /// Removes and returns the earliest event. Requires !empty().
  std::pair<SimTime, EventFn> Pop();

  // -- In-place execution (the simulation run loop) --
  //
  // PopEntry removes the earliest entry but leaves its closure in the
  // slab; the caller invokes it in place and then releases the slot:
  //
  //   const auto [when, slot] = q.PopEntry();
  //   q.InvokeSlot(slot);    // may Push further events; the slab is stable
  //   q.ReleaseSlot(slot);   // destroys the closure, recycles the slot
  //
  // This skips the move-out + moved-from destruction that Pop() pays.

  /// Removes the earliest entry, returning {when, slot}. Requires !empty().
  std::pair<SimTime, std::uint32_t> PopEntry();

  /// Fused peek + pop for the run loop: removes the earliest entry into
  /// {*when, *slot} and returns true, unless the queue is empty or that
  /// entry is after `until` (then nothing is removed and it returns
  /// false). Equivalent to `!empty() && NextTime() <= until` followed by
  /// PopEntry(), but settles the wheel once instead of twice — the run
  /// loop's per-event ordering work, halved.
  bool PopEntryIfNotAfter(SimTime until, SimTime* when, std::uint32_t* slot);

  /// Runs the closure held in `slot` (which must come from PopEntry).
  void InvokeSlot(std::uint32_t slot) { SlotRef(slot)(); }

  /// Destroys the closure in `slot` and returns the slot to the free list.
  void ReleaseSlot(std::uint32_t slot);

  /// InvokeSlot + ReleaseSlot with one slab address computation. The
  /// reference stays valid across the call even when the closure pushes
  /// events (chunks never relocate). Stream firings (slots tagged
  /// kStreamTag by PopEntryIfNotAfter) invoke the registered closure in
  /// place — nothing to destroy or recycle.
  // RADAR_HOT: event invoke/release inline path
  void InvokeAndReleaseSlot(std::uint32_t slot) {
    if ((slot & kStreamTag) != 0) {
      streams_[slot & ~kStreamTag]();
      return;
    }
    EventFn& fn = SlotRef(slot);
    fn();
    fn.Reset();
    free_slots_.push_back(slot);
  }
  // RADAR_HOT_END

  // -- Pinned periodic streams --
  //
  // A stream is a closure registered once whose firings bypass the slot
  // slab and the wheel: arming a stream appends one 16-byte entry to a
  // small sorted ring — no slot acquire, no closure construct/destroy. Each
  // ArmStream reserves the next sequence number exactly as Push would, so
  // a stream firing occupies the same place in the global (when, seq)
  // order as the equivalent Push — the pop sequence is indistinguishable.
  // Built for the driver's deterministic gateway arrivals: one armed
  // entry per gateway at any time, re-armed from inside the closure.
  // Streams participate only in PopEntryIfNotAfter (the run-loop path);
  // NextTime/Pop/PopEntry and size() do not see them.

  /// Marks a slot value returned by PopEntryIfNotAfter as a stream id.
  static constexpr std::uint32_t kStreamTag = 0x80000000u;

  /// Registers a stream closure; returns its id. The closure is invoked
  /// with no arguments on every firing (read the clock for the time).
  std::uint32_t AddStream(EventFn fn);

  /// Schedules the stream's next firing at absolute time `when`. The
  /// stream must not already be armed.
  void ArmStream(std::uint32_t id, SimTime when);

 private:
  // A 16-byte entry: the insertion sequence number lives in the high 40
  // bits of seq_slot and the slab slot index in the low 24 (>= 16M
  // simultaneously pending events). Comparing seq_slot compares seq first;
  // the slot bits can never decide an ordering because sequence numbers
  // are unique — (when, seq) is a total order.
  struct Entry {
    SimTime when;
    std::uint64_t seq_slot;
  };
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static bool Earlier(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq_slot < b.seq_slot;
  }

  // Calendar wheel: kWheelBuckets buckets of kBucketWidth microseconds.
  // wheel_time_ is the (aligned) start of the current bucket; cursor_ is
  // the consumed prefix of that bucket. The current bucket is always
  // sorted; future buckets accumulate unsorted and are sorted once, when
  // they become current. wheel_count_ counts unconsumed wheel entries.
  static constexpr int kBucketShift = 8;  // 256 us per bucket
  static constexpr int kWheelBits = 10;   // 1024 buckets, ~262 ms span
  static constexpr std::size_t kWheelBuckets = std::size_t{1} << kWheelBits;
  static constexpr SimTime kBucketWidth = SimTime{1} << kBucketShift;
  static constexpr SimTime kWheelSpan =
      kBucketWidth * static_cast<SimTime>(kWheelBuckets);
  using Bucket = std::vector<Entry>;

  std::size_t BucketIdx(SimTime when) const {
    return static_cast<std::size_t>(when >> kBucketShift) &
           (kWheelBuckets - 1);
  }
  std::size_t CurIdx() const { return BucketIdx(wheel_time_); }
  bool InWheelRange(SimTime when) const {
    return when >= wheel_time_ && when < wheel_time_ + kWheelSpan;
  }

  void PushEntry(const Entry& e);
  /// Advances the wheel to its earliest unconsumed entry and returns its
  /// bucket, or nullptr if the wheel is empty.
  Bucket* SettleWheel();

  // 4-ary min-heap primitives, shared by the far heap and the stream heap.
  static constexpr std::size_t kArity = 4;
  static void SiftUp(std::vector<Entry>& heap, std::size_t i);
  static void SiftDown(std::vector<Entry>& heap, std::size_t i);

  // Slot slab: fixed-size chunks that never relocate, so closures have
  // stable addresses for in-place invocation.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  EventFn& SlotRef(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  /// Returns an empty slot (recycled or freshly carved from a chunk).
  std::uint32_t AcquireSlot();

  std::vector<Bucket> buckets_;
  SimTime wheel_time_ = 0;
  std::size_t cursor_ = 0;
  std::size_t wheel_count_ = 0;
  std::vector<Entry> far_;
  std::size_t size_ = 0;

  std::vector<std::unique_ptr<EventFn[]>> chunks_;
  std::uint32_t num_slots_ = 0;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  /// Keys below this bound are reserved for PushAtSeq (0 = no reservation;
  /// keyed pushes rejected). See the seq reservation protocol above.
  std::uint64_t key_bound_ = 0;

  // Pinned streams: registered closures plus a sorted ring of armed
  // firings (Entry reused with the stream id in the slot bits), earliest
  // at stream_head_. One armed entry per stream, and a re-armed firing
  // lands one full period after the firing that arms it — at or past the
  // ring's tail — so arming is an append (one comparison) and popping
  // advances a cursor; out-of-order arms fall back to an insertion
  // shift. Capacity is a power of two (index masking), grown on demand.
  const Entry& StreamFront() const { return stream_ring_[stream_head_]; }
  void PopStreamFront() {
    stream_head_ = (stream_head_ + 1) & (stream_ring_.size() - 1);
    --stream_count_;
  }
  void GrowStreamRing();

  std::vector<EventFn> streams_;
  std::vector<Entry> stream_ring_;
  std::size_t stream_head_ = 0;
  std::size_t stream_count_ = 0;
};

}  // namespace radar::sim
