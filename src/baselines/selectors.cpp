#include "baselines/selectors.h"

#include "common/check.h"

namespace radar::baselines {

const char* DistributionPolicyName(DistributionPolicy p) {
  switch (p) {
    case DistributionPolicy::kRadar: return "radar";
    case DistributionPolicy::kRoundRobin: return "round-robin";
    case DistributionPolicy::kClosest: return "closest";
  }
  return "?";
}

const char* PlacementPolicyName(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kRadar: return "radar";
    case PlacementPolicy::kStatic: return "static";
    case PlacementPolicy::kFullReplication: return "full-replication";
  }
  return "?";
}

NodeId RoundRobinSelector::Choose(ObjectId x,
                                  const std::vector<NodeId>& replicas) {
  RADAR_CHECK(!replicas.empty());
  RADAR_CHECK(x >= 0);
  const auto idx = static_cast<std::size_t>(x);
  if (idx >= next_.size()) next_.resize(idx + 1, 0);
  const std::uint64_t turn = next_[idx]++;
  return replicas[static_cast<std::size_t>(turn % replicas.size())];
}

NodeId ClosestSelector::Choose(NodeId gateway,
                               const std::vector<NodeId>& replicas) const {
  RADAR_CHECK(!replicas.empty());
  NodeId best = replicas.front();
  std::int32_t best_distance = distance_.Distance(gateway, best);
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    const std::int32_t d = distance_.Distance(gateway, replicas[i]);
    if (d < best_distance) {
      best_distance = d;
      best = replicas[i];
    }
  }
  return best;
}

}  // namespace radar::baselines
