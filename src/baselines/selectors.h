// Baseline request-distribution and placement policies.
//
// These are the comparison points the paper's introduction argues against:
// round-robin distribution spreads load but ignores proximity; always-
// closest distribution honours proximity but cannot relieve a server
// swamped by local demand (Sec. 3's America/Europe example). Static and
// replicate-everywhere placement bracket the dynamic protocol from below
// and above in storage cost.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/distance.h"

namespace radar::baselines {

enum class DistributionPolicy : std::uint8_t {
  kRadar,       ///< the paper's Fig. 2 algorithm
  kRoundRobin,  ///< cycle through replicas, oblivious to proximity
  kClosest,     ///< always the replica nearest the gateway
};

enum class PlacementPolicy : std::uint8_t {
  kRadar,            ///< the paper's Figs. 3-5 algorithm
  kStatic,           ///< initial placement, never relocates
  kFullReplication,  ///< every object on every node, never relocates
};

const char* DistributionPolicyName(DistributionPolicy p);
const char* PlacementPolicyName(PlacementPolicy p);

/// Per-object round-robin over whatever replica set currently exists.
class RoundRobinSelector {
 public:
  /// `replicas` must be non-empty; stable (sorted) order is the caller's
  /// responsibility so rotation is deterministic.
  NodeId Choose(ObjectId x, const std::vector<NodeId>& replicas);

 private:
  // Dense per-object rotation counters, indexed by ObjectId (object ids
  // are dense by construction — workload::Catalog numbers them 0..N-1).
  // The hash map this replaces was the last unordered container in the
  // policy layer; counters start at 0 either way.
  std::vector<std::uint64_t> next_;
};

/// Always the replica closest to the gateway (ties: lowest node id).
class ClosestSelector {
 public:
  explicit ClosestSelector(const core::DistanceOracle& distance)
      : distance_(distance) {}

  NodeId Choose(NodeId gateway, const std::vector<NodeId>& replicas) const;

 private:
  const core::DistanceOracle& distance_;
};

}  // namespace radar::baselines
