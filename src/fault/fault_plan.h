// Fault plans: a declarative description of what goes wrong, and when.
//
// A FaultPlan combines
//   - scripted events (crash/recover a host, take a link down/up at a
//     fixed simulated time),
//   - optional stochastic processes (per-host crash/recovery and per-link
//     down/up cycles with exponential mean-time-between-failures and
//     mean-time-to-repair, seeded through the Rng::Fork discipline), and
//   - per-class control-message loss/delay probabilities (request legs,
//     replicate transfers, migrate transfers, acks),
// plus an optional quiesce time after which the platform heals: all faults
// recover and the stochastic processes stop, so end-of-run invariants
// (every object back at its replica floor) are checkable.
//
// The plan is pure data; src/fault's FaultInjector binds it to a concrete
// topology and simulator clock. An empty plan is the perfect world the
// rest of the tree has always simulated — the driver guarantees that an
// empty plan perturbs nothing (see the golden determinism pin).
//
// Text format (ParseFaultPlan), one directive per line, '#' comments:
//   crash HOST T_SEC            recover HOST T_SEC
//   link-down A B T_SEC         link-up A B T_SEC
//   host-faults MTBF_S MTTR_S   link-faults MTBF_S MTTR_S
//   loss CLASS P                CLASS: request|replicate|migrate|ack
//   delay request P DELAY_MS
//   quiesce T_SEC
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace radar::fault {

/// What a scripted event does.
enum class FaultKind : std::uint8_t {
  kHostCrash,
  kHostRecover,
  kLinkDown,
  kLinkUp,
};

const char* FaultKindName(FaultKind kind);

/// One scripted fault at a fixed simulated time. Host events use `host`;
/// link events use the endpoint pair {link_a, link_b}.
struct ScriptedEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kHostCrash;
  NodeId host = kInvalidNode;
  NodeId link_a = kInvalidNode;
  NodeId link_b = kInvalidNode;
};

/// Control-plane message classes the fault layer can perturb.
enum class MessageClass : std::uint8_t {
  kRequest,    ///< gateway -> redirector -> host request legs
  kReplicate,  ///< CreateObj(REPLICATE) transfers
  kMigrate,    ///< CreateObj(MIGRATE) transfers
  kAck,        ///< CreateObj acceptance acks back to the source
};

inline constexpr std::size_t kNumMessageClasses = 4;

const char* MessageClassName(MessageClass c);

/// An exponential up/down cycle: mean seconds between failures while up,
/// mean seconds to repair while down. mtbf_s == 0 disables the process.
struct StochasticProcess {
  double mtbf_s = 0.0;
  double mttr_s = 0.0;

  bool enabled() const { return mtbf_s > 0.0; }
};

struct FaultPlan {
  std::vector<ScriptedEvent> scripted;
  StochasticProcess host_faults;
  StochasticProcess link_faults;

  /// Per-class probability that one control message is lost.
  double drop_prob[kNumMessageClasses] = {0.0, 0.0, 0.0, 0.0};

  /// Probability that a (delivered) request leg is delayed by
  /// `request_delay` extra microseconds.
  double request_delay_prob = 0.0;
  SimTime request_delay = 0;

  /// When > 0: at this time every outstanding fault recovers and the
  /// stochastic processes stop firing, letting the platform heal before
  /// the run ends. 0 = never quiesce.
  SimTime quiesce_at = 0;

  double DropProb(MessageClass c) const {
    return drop_prob[static_cast<std::size_t>(c)];
  }
  void SetDropProb(MessageClass c, double p) {
    drop_prob[static_cast<std::size_t>(c)] = p;
  }

  /// True when the plan perturbs nothing: no scripted events, no
  /// stochastic processes, and all message probabilities zero.
  bool Empty() const;

  /// Aborts on structurally invalid values (probabilities outside [0, 1],
  /// negative times, repair-free stochastic processes).
  void Check() const;
};

/// Parses the text format above. Returns nullopt and fills `error`
/// ("line N: message") on the first malformed directive.
std::optional<FaultPlan> ParseFaultPlan(std::istream& in, std::string* error);

/// Convenience wrapper: opens and parses `path`.
std::optional<FaultPlan> ParseFaultPlanFile(const std::string& path,
                                            std::string* error);

}  // namespace radar::fault
