#include "fault/fault_injector.h"

#include <utility>

#include "common/check.h"

namespace radar::fault {
namespace {

// Stream-index bases keeping host, link, message, and request-fate
// streams disjoint for any realistic topology size (hosts occupy
// [0, 2^20)).
constexpr std::uint64_t kLinkStreamBase = 1ULL << 20;
constexpr std::uint64_t kMessageStream = 1ULL << 21;
constexpr std::uint64_t kFateStreamBase = 1ULL << 22;

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, const net::Graph& graph,
                             sim::Simulator* sim, std::uint64_t seed,
                             Hooks hooks)
    : plan_(std::move(plan)),
      graph_(graph),
      sim_(sim),
      hooks_(std::move(hooks)),
      host_up_(static_cast<std::size_t>(graph.num_nodes()), 1),
      link_up_(graph.num_links(), 1),
      crash_epochs_(static_cast<std::size_t>(graph.num_nodes()), 0),
      msg_rng_(0) {
  RADAR_CHECK(sim_ != nullptr);
  plan_.Check();
  const Rng root(seed ^ 0xFA17C0DEULL);
  host_rngs_.reserve(host_up_.size());
  for (std::size_t h = 0; h < host_up_.size(); ++h) {
    host_rngs_.push_back(root.Fork(static_cast<std::uint64_t>(h)));
  }
  link_rngs_.reserve(link_up_.size());
  for (std::size_t l = 0; l < link_up_.size(); ++l) {
    link_rngs_.push_back(root.Fork(kLinkStreamBase + l));
  }
  msg_rng_ = root.Fork(kMessageStream);
  fate_root_ = root;
}

void FaultInjector::Start() {
  RADAR_CHECK_MSG(!started_, "FaultInjector::Start called twice");
  started_ = true;
  for (const ScriptedEvent& ev : plan_.scripted) {
    if (ev.kind == FaultKind::kHostCrash ||
        ev.kind == FaultKind::kHostRecover) {
      RADAR_CHECK_GE(ev.host, 0);
      RADAR_CHECK_LT(ev.host, graph_.num_nodes());
    } else {
      ResolveLink(ev.link_a, ev.link_b);  // aborts on an unknown link
    }
    sim_->ScheduleAt(ev.at, [this, ev] { Apply(ev); });
  }
  if (plan_.host_faults.enabled()) {
    for (std::size_t h = 0; h < host_up_.size(); ++h) {
      ScheduleHostCrashTimer(static_cast<NodeId>(h));
    }
  }
  if (plan_.link_faults.enabled()) {
    for (std::size_t l = 0; l < link_up_.size(); ++l) {
      ScheduleLinkDownTimer(l);
    }
  }
  if (plan_.quiesce_at > 0) {
    sim_->ScheduleAt(plan_.quiesce_at, [this] { Quiesce(); });
  }
}

bool FaultInjector::HostUp(NodeId n) const {
  return host_up_[static_cast<std::size_t>(n)] != 0;
}

bool FaultInjector::LinkUp(std::size_t link_index) const {
  return link_up_[link_index] != 0;
}

std::int32_t FaultInjector::live_hosts() const {
  std::int32_t live = 0;
  for (const char up : host_up_) live += up != 0 ? 1 : 0;
  return live;
}

std::uint32_t FaultInjector::crash_epoch(NodeId n) const {
  return crash_epochs_[static_cast<std::size_t>(n)];
}

net::Graph FaultInjector::LiveGraph() const {
  net::Graph live(graph_.num_nodes());
  for (std::size_t l = 0; l < link_up_.size(); ++l) {
    if (link_up_[l] == 0) continue;
    const net::Link& lk = graph_.link(static_cast<std::int32_t>(l));
    live.AddLink(lk.a, lk.b, lk.delay, lk.bandwidth_bps);
  }
  return live;
}

FaultInjector::RequestFate FaultInjector::FateForRequestLeg() {
  RequestFate fate;
  const double drop = plan_.DropProb(MessageClass::kRequest);
  if (drop > 0.0 && msg_rng_.NextBool(drop)) {
    ++counters_.requests_dropped;
    fate.dropped = true;
    return fate;
  }
  if (plan_.request_delay_prob > 0.0 &&
      msg_rng_.NextBool(plan_.request_delay_prob)) {
    ++counters_.requests_delayed;
    fate.delay = plan_.request_delay;
  }
  return fate;
}

FaultInjector::RequestFate FaultInjector::RequestFateStream::Next() {
  RequestFate fate;
  if (drop_prob_ > 0.0 && rng_.NextBool(drop_prob_)) {
    ++dropped_;
    fate.dropped = true;
    return fate;
  }
  if (delay_prob_ > 0.0 && rng_.NextBool(delay_prob_)) {
    ++delayed_;
    fate.delay = delay_;
  }
  return fate;
}

FaultInjector::RequestFateStream FaultInjector::MakeRequestFateStream(
    std::uint64_t salt) const {
  RequestFateStream stream;
  stream.rng_ = fate_root_.Fork(kFateStreamBase + salt);
  stream.drop_prob_ = plan_.DropProb(MessageClass::kRequest);
  stream.delay_prob_ = plan_.request_delay_prob;
  stream.delay_ = plan_.request_delay;
  return stream;
}

void FaultInjector::AbsorbRequestFateCounters(
    const RequestFateStream& stream) {
  counters_.requests_dropped += stream.dropped_;
  counters_.requests_delayed += stream.delayed_;
}

core::RpcFate FaultInjector::FateForCreateObj(NodeId to,
                                              core::CreateObjMethod method) {
  if (!HostUp(to)) {
    ++counters_.rpcs_to_dead_hosts;
    return core::RpcFate::kLost;
  }
  const MessageClass cls = method == core::CreateObjMethod::kMigrate
                               ? MessageClass::kMigrate
                               : MessageClass::kReplicate;
  const double drop = plan_.DropProb(cls);
  if (drop > 0.0) {
    int resends = 0;
    while (msg_rng_.NextBool(drop)) {
      ++counters_.transfer_messages_lost;
      if (resends == kMaxTransferRetries) {
        ++counters_.aborted_relocations;
        return core::RpcFate::kLost;
      }
      ++resends;
      ++counters_.transfer_retries;
    }
  }
  const double ack_drop = plan_.DropProb(MessageClass::kAck);
  if (ack_drop > 0.0 && msg_rng_.NextBool(ack_drop)) {
    ++counters_.acks_lost;
    return core::RpcFate::kAcceptedAckLost;
  }
  return core::RpcFate::kDeliver;
}

void FaultInjector::Apply(const ScriptedEvent& ev) {
  if (quiesced_) return;
  switch (ev.kind) {
    case FaultKind::kHostCrash:
      ApplyHostCrash(ev.host);
      break;
    case FaultKind::kHostRecover:
      ApplyHostRecover(ev.host);
      break;
    case FaultKind::kLinkDown:
      if (ApplyLinkDown(ResolveLink(ev.link_a, ev.link_b))) {
        NotifyTopologyChange();
      }
      break;
    case FaultKind::kLinkUp:
      if (ApplyLinkUp(ResolveLink(ev.link_a, ev.link_b))) {
        NotifyTopologyChange();
      }
      break;
  }
}

void FaultInjector::ApplyHostCrash(NodeId h) {
  const auto i = static_cast<std::size_t>(h);
  if (host_up_[i] == 0) return;
  host_up_[i] = 0;
  ++crash_epochs_[i];
  ++counters_.host_crashes;
  if (hooks_.on_host_crash) hooks_.on_host_crash(h, sim_->Now());
}

void FaultInjector::ApplyHostRecover(NodeId h) {
  const auto i = static_cast<std::size_t>(h);
  if (host_up_[i] != 0) return;
  host_up_[i] = 1;
  ++counters_.host_recoveries;
  if (hooks_.on_host_recover) hooks_.on_host_recover(h, sim_->Now());
}

bool FaultInjector::ApplyLinkDown(std::size_t link_index) {
  if (link_up_[link_index] == 0) return false;
  if (WouldDisconnect(link_index)) {
    ++counters_.suppressed_link_faults;
    return false;
  }
  link_up_[link_index] = 0;
  ++counters_.link_downs;
  if (hooks_.on_link_change) hooks_.on_link_change(link_index, false);
  return true;
}

bool FaultInjector::ApplyLinkUp(std::size_t link_index) {
  if (link_up_[link_index] != 0) return false;
  link_up_[link_index] = 1;
  ++counters_.link_ups;
  if (hooks_.on_link_change) hooks_.on_link_change(link_index, true);
  return true;
}

// The stochastic processes alternate crash/repair timers per host (and
// down/up timers per link), each delay drawn from that entity's own child
// stream at the moment the previous timer fires. The chain always draws
// and reschedules — a transition whose state was already reached by a
// scripted event is skipped but its delay is still consumed, so the fault
// realization stays a pure function of (plan, seed).

void FaultInjector::ScheduleHostCrashTimer(NodeId h) {
  const double wait_s = host_rngs_[static_cast<std::size_t>(h)].NextExponential(
      plan_.host_faults.mtbf_s);
  sim_->Schedule(SecondsToSim(wait_s), [this, h] {
    if (quiesced_) return;
    ApplyHostCrash(h);
    ScheduleHostRecoverTimer(h);
  });
}

void FaultInjector::ScheduleHostRecoverTimer(NodeId h) {
  const double wait_s = host_rngs_[static_cast<std::size_t>(h)].NextExponential(
      plan_.host_faults.mttr_s);
  sim_->Schedule(SecondsToSim(wait_s), [this, h] {
    if (quiesced_) return;
    ApplyHostRecover(h);
    ScheduleHostCrashTimer(h);
  });
}

void FaultInjector::ScheduleLinkDownTimer(std::size_t link_index) {
  const double wait_s =
      link_rngs_[link_index].NextExponential(plan_.link_faults.mtbf_s);
  sim_->Schedule(SecondsToSim(wait_s), [this, link_index] {
    if (quiesced_) return;
    if (ApplyLinkDown(link_index)) NotifyTopologyChange();
    ScheduleLinkUpTimer(link_index);
  });
}

void FaultInjector::ScheduleLinkUpTimer(std::size_t link_index) {
  const double wait_s =
      link_rngs_[link_index].NextExponential(plan_.link_faults.mttr_s);
  sim_->Schedule(SecondsToSim(wait_s), [this, link_index] {
    if (quiesced_) return;
    if (ApplyLinkUp(link_index)) NotifyTopologyChange();
    ScheduleLinkDownTimer(link_index);
  });
}

void FaultInjector::Quiesce() {
  quiesced_ = true;
  for (std::size_t h = 0; h < host_up_.size(); ++h) {
    ApplyHostRecover(static_cast<NodeId>(h));
  }
  bool links_changed = false;
  for (std::size_t l = 0; l < link_up_.size(); ++l) {
    links_changed = ApplyLinkUp(l) || links_changed;
  }
  if (links_changed) NotifyTopologyChange();
}

bool FaultInjector::WouldDisconnect(std::size_t link_index) const {
  net::Graph candidate(graph_.num_nodes());
  for (std::size_t l = 0; l < link_up_.size(); ++l) {
    if (l == link_index || link_up_[l] == 0) continue;
    const net::Link& lk = graph_.link(static_cast<std::int32_t>(l));
    candidate.AddLink(lk.a, lk.b, lk.delay, lk.bandwidth_bps);
  }
  return !candidate.IsConnected();
}

std::size_t FaultInjector::ResolveLink(NodeId a, NodeId b) const {
  const std::vector<net::Link>& links = graph_.links();
  for (std::size_t l = 0; l < links.size(); ++l) {
    if ((links[l].a == a && links[l].b == b) ||
        (links[l].a == b && links[l].b == a)) {
      return l;
    }
  }
  RADAR_CHECK_MSG(false, "fault plan names a link absent from the topology");
  return 0;
}

void FaultInjector::NotifyTopologyChange() {
  ++topology_epoch_;
  if (hooks_.on_topology_change) hooks_.on_topology_change(sim_->Now());
}

}  // namespace radar::fault
