// Per-object availability accounting for faulty runs.
//
// The tracker listens to every redirector's replica-set changes and keeps
// a live-replica count per object. An object becomes *unavailable* when
// its last live replica disappears (crash pruning or a granted drop) and
// becomes available again when any replica re-appears (recovery
// re-registration or floor repair); each such excursion is one
// unavailability window, and its length is that object's time-to-repair.
// Windows still open at the end of the run are closed at the final clock
// so unavailable-seconds never under-counts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/redirector.h"
#include "sim/simulator.h"

namespace radar::fault {

class AvailabilityTracker final : public core::Redirector::ChangeListener {
 public:
  /// `sim` must outlive the tracker; objects are the dense id range
  /// [0, num_objects).
  AvailabilityTracker(const sim::Simulator* sim, ObjectId num_objects);

  /// Records the replica count an object starts the run with (after
  /// initial placement, before any fault fires).
  void InitObject(ObjectId x, int live_replicas);

  // core::Redirector::ChangeListener
  void OnReplicaAdded(ObjectId x, NodeId host) override;
  void OnReplicaRemoved(ObjectId x, NodeId host) override;

  /// Closes windows still open at `end`. Call exactly once, at Finalize.
  void FinishAt(SimTime end);

  int live_count(ObjectId x) const {
    return live_[static_cast<std::size_t>(x)];
  }
  std::int64_t windows() const { return windows_; }
  double unavailable_object_seconds() const;
  double mean_time_to_repair_s() const;
  double max_time_to_repair_s() const;
  /// Objects whose final window had to be force-closed by FinishAt.
  std::int64_t objects_unavailable_at_end() const {
    return objects_unavailable_at_end_;
  }

 private:
  void CloseWindow(ObjectId x, SimTime at);

  const sim::Simulator* sim_;
  std::vector<int> live_;
  std::vector<SimTime> window_start_;  ///< kNoWindow when available
  std::int64_t windows_ = 0;
  std::int64_t objects_unavailable_at_end_ = 0;
  SimTime total_unavailable_ = 0;
  SimTime max_window_ = 0;
  bool finished_ = false;
};

}  // namespace radar::fault
