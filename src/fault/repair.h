// The replica-floor repairer: keeps every object at >= k live copies.
//
// Faults can erode an object's replica set below the availability target
// the operator asked for (the paper's placement protocol only grows
// replicas where demand justifies it). The repairer runs at the placement
// cadence: for each object below its floor it replicates from a live
// holder to the nearest live host not yet holding the object, via the
// cluster's normal repair path so redirector bookkeeping, transfer
// accounting, and the network-charging hook all see the copies. Repair
// traffic is itself subject to message faults — a lost repair just waits
// for the next pass.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "core/cluster.h"

namespace radar::fault {

struct RepairStats {
  std::int64_t replicas_restored = 0;
  /// Objects still below floor after a pass (no live replica to copy
  /// from, no live host with room, or the repair transfer was lost).
  std::int64_t floor_violations = 0;
};

class ReplicaRepairer {
 public:
  /// `cluster` must outlive the repairer; `host_live` says whether a host
  /// is currently up. `floor` >= 1.
  ReplicaRepairer(core::Cluster* cluster, ObjectId num_objects, int floor,
                  std::function<bool(NodeId)> host_live);

  /// One repair pass over every object; returns what it did.
  RepairStats RunPass(SimTime now);

  int floor() const { return floor_; }

 private:
  core::Cluster* cluster_;
  ObjectId num_objects_;
  int floor_;
  std::function<bool(NodeId)> host_live_;
};

}  // namespace radar::fault
