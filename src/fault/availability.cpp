#include "fault/availability.h"

#include "common/check.h"

namespace radar::fault {
namespace {

constexpr SimTime kNoWindow = -1;

}  // namespace

AvailabilityTracker::AvailabilityTracker(const sim::Simulator* sim,
                                         ObjectId num_objects)
    : sim_(sim),
      live_(static_cast<std::size_t>(num_objects), 0),
      window_start_(static_cast<std::size_t>(num_objects), kNoWindow) {
  RADAR_CHECK(sim_ != nullptr);
}

void AvailabilityTracker::InitObject(ObjectId x, int live_replicas) {
  RADAR_CHECK_GE(live_replicas, 0);
  live_[static_cast<std::size_t>(x)] = live_replicas;
  if (live_replicas == 0) {
    window_start_[static_cast<std::size_t>(x)] = sim_->Now();
  }
}

void AvailabilityTracker::OnReplicaAdded(ObjectId x, NodeId host) {
  (void)host;
  const auto i = static_cast<std::size_t>(x);
  if (live_[i]++ == 0 && window_start_[i] != kNoWindow) {
    CloseWindow(x, sim_->Now());
  }
}

void AvailabilityTracker::OnReplicaRemoved(ObjectId x, NodeId host) {
  (void)host;
  const auto i = static_cast<std::size_t>(x);
  RADAR_CHECK_GT(live_[i], 0);
  if (--live_[i] == 0) {
    window_start_[i] = sim_->Now();
  }
}

void AvailabilityTracker::FinishAt(SimTime end) {
  RADAR_CHECK_MSG(!finished_, "AvailabilityTracker::FinishAt called twice");
  finished_ = true;
  for (std::size_t i = 0; i < window_start_.size(); ++i) {
    if (window_start_[i] == kNoWindow) continue;
    ++objects_unavailable_at_end_;
    CloseWindow(static_cast<ObjectId>(i), end);
  }
}

double AvailabilityTracker::unavailable_object_seconds() const {
  return SimToSeconds(total_unavailable_);
}

double AvailabilityTracker::mean_time_to_repair_s() const {
  if (windows_ == 0) return 0.0;
  return SimToSeconds(total_unavailable_) / static_cast<double>(windows_);
}

double AvailabilityTracker::max_time_to_repair_s() const {
  return SimToSeconds(max_window_);
}

void AvailabilityTracker::CloseWindow(ObjectId x, SimTime at) {
  const auto i = static_cast<std::size_t>(x);
  const SimTime start = window_start_[i];
  RADAR_CHECK_GE(at, start);
  window_start_[i] = kNoWindow;
  const SimTime width = at - start;
  ++windows_;
  total_unavailable_ += width;
  if (width > max_window_) max_window_ = width;
}

}  // namespace radar::fault
