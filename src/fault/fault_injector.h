// The fault injector: binds a FaultPlan to a topology and a simulator
// clock, and owns the platform's failure state during a run.
//
// Scripted events are scheduled verbatim; stochastic processes draw
// exponential up/down cycles from per-host and per-link child streams of a
// dedicated fault RNG root (Rng::Fork), so the fault realization is a pure
// function of (plan, seed) — independent of request traffic and of the
// experiment engine's job count. Message fates draw from one further
// stream in simulation-event order, which the simulator keeps
// deterministic.
//
// Failure semantics (DESIGN.md §11):
//   - Host crash = the server *process* dies; its disk survives. Replicas
//     on a crashed host are unavailable, never destroyed, so no fault
//     schedule can lose an object. Recovery hands the surviving replicas
//     back to the driver for re-registration.
//   - Link down/up changes the backbone topology; the driver rebuilds
//     routing and the PathLatencyMatrix at the fault epoch. A link fault
//     that would disconnect the backbone is suppressed (and counted):
//     routing over a partitioned graph is undefined in this model.
//   - Control-message faults perturb request legs (drop/delay) and the
//     synchronous CreateObj exchanges (bounded resends, then abort; or an
//     accepted transfer whose ack is lost — the source treats it as a
//     refusal and keeps its copy, so a relocation can duplicate an object
//     but never lose one).
//
// All fault probability parameters are consumed here and nowhere else
// (enforced by radar_lint's fault-confinement rule): the rest of the tree
// only asks the injector for verdicts.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/protocol.h"
#include "fault/fault_plan.h"
#include "net/graph.h"
#include "sim/simulator.h"

namespace radar::fault {

/// Everything the injector counted; copied into the report at Finalize.
struct FaultCounters {
  std::int64_t host_crashes = 0;
  std::int64_t host_recoveries = 0;
  std::int64_t link_downs = 0;
  std::int64_t link_ups = 0;
  /// Link faults suppressed because they would disconnect the backbone.
  std::int64_t suppressed_link_faults = 0;
  std::int64_t requests_dropped = 0;
  std::int64_t requests_delayed = 0;
  /// Individual CreateObj sends that were lost (includes resends).
  std::int64_t transfer_messages_lost = 0;
  /// Resends after a lost CreateObj send (capped per exchange).
  std::int64_t transfer_retries = 0;
  std::int64_t acks_lost = 0;
  /// CreateObj exchanges abandoned after the resend cap.
  std::int64_t aborted_relocations = 0;
  /// CreateObj exchanges addressed to a crashed host.
  std::int64_t rpcs_to_dead_hosts = 0;
};

class FaultInjector {
 public:
  /// Driver callbacks. on_host_crash fires after the host is marked down
  /// (prune redirectors, reset the server queue); on_host_recover after it
  /// is marked up (re-register surviving replicas); on_topology_change
  /// after any batch of link state changes (rebuild routing + latency).
  struct Hooks {
    std::function<void(NodeId, SimTime)> on_host_crash;
    std::function<void(NodeId, SimTime)> on_host_recover;
    std::function<void(SimTime)> on_topology_change;
    /// Fires per *applied* link state change (suppressed / no-op changes
    /// do not fire), before the batch's on_topology_change. The sparse
    /// latency oracle consumes this for incremental invalidation — it
    /// needs to know which link moved, not just that something did.
    std::function<void(std::size_t link_index, bool up)> on_link_change;
  };

  /// A lost CreateObj send is retried at most this many times before the
  /// exchange is abandoned (the capped-backoff bound: the paper's
  /// synchronous RPC window absorbs the resend latency, so the cap is the
  /// observable part of the backoff).
  static constexpr int kMaxTransferRetries = 3;

  /// `graph` must outlive the injector; `seed` is the run seed (the
  /// injector derives its own disjoint stream). Scripted events must name
  /// hosts and links that exist in `graph`.
  FaultInjector(FaultPlan plan, const net::Graph& graph, sim::Simulator* sim,
                std::uint64_t seed, Hooks hooks);

  /// Schedules every scripted event, the stochastic processes' first
  /// transitions, and the quiesce point. Call once, before the run starts.
  void Start();

  // ---- State queries (no RNG draws) ----

  bool HostUp(NodeId n) const;
  bool LinkUp(std::size_t link_index) const;
  std::int32_t live_hosts() const;
  /// Increments on every crash of `n`; completions admitted before a crash
  /// compare epochs to detect that their host died under them.
  std::uint32_t crash_epoch(NodeId n) const;
  /// Increments on every applied link state change.
  std::uint64_t topology_epoch() const { return topology_epoch_; }
  bool quiesced() const { return quiesced_; }

  /// The backbone restricted to links currently up (always connected, by
  /// the suppression rule). Rebuild routing from this at a fault epoch.
  net::Graph LiveGraph() const;

  // ---- Fate sampling (the only consumers of the plan's probabilities) ----

  struct RequestFate {
    bool dropped = false;
    SimTime delay = 0;
  };

  /// Samples the fate of one request's control legs.
  RequestFate FateForRequestLeg();

  /// An independent request-fate sampler for one shard-owned actor.
  ///
  /// The serial engine draws every request fate from the injector's
  /// single message stream in global event order; shards cannot share
  /// that stream without racing, and its draw order would depend on the
  /// partitioning anyway. A RequestFateStream is forked per gateway: its
  /// draw order is that gateway's arrival order, which no partitioning
  /// perturbs, so the sharded fate realization is a pure function of
  /// (plan, seed, gateway) — identical for every shard count. Drop/delay
  /// tallies accumulate locally and are folded into the injector's
  /// counters at the end of the run (integer sums commute exactly).
  class RequestFateStream {
   public:
    /// A never-drop stream (used when no fault layer is active).
    RequestFateStream() = default;

    RequestFate Next();

    std::int64_t dropped() const { return dropped_; }
    std::int64_t delayed() const { return delayed_; }

   private:
    friend class FaultInjector;
    Rng rng_{0};
    double drop_prob_ = 0.0;
    double delay_prob_ = 0.0;
    SimTime delay_ = 0;
    std::int64_t dropped_ = 0;
    std::int64_t delayed_ = 0;
  };

  /// Forks a request-fate stream for the actor identified by `salt`
  /// (the sharded engine passes the gateway node id). Streams of
  /// distinct salts are independent of each other, of the serial message
  /// stream, and of the host/link fault processes.
  RequestFateStream MakeRequestFateStream(std::uint64_t salt) const;

  /// Adds a stream's drop/delay tallies into the injector's counters.
  /// Call once per stream, after the run's last draw.
  void AbsorbRequestFateCounters(const RequestFateStream& stream);

  /// Samples the fate of one CreateObj exchange addressed to `to`:
  /// kLost when the recipient is down or every resend was lost,
  /// kAcceptedAckLost when the transfer arrived but the ack did not.
  core::RpcFate FateForCreateObj(NodeId to, core::CreateObjMethod method);

  const FaultCounters& counters() const { return counters_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  void Apply(const ScriptedEvent& ev);
  void ApplyHostCrash(NodeId h);
  void ApplyHostRecover(NodeId h);
  /// Returns true when the change was applied (not suppressed / no-op).
  bool ApplyLinkDown(std::size_t link_index);
  bool ApplyLinkUp(std::size_t link_index);
  void ScheduleHostCrashTimer(NodeId h);
  void ScheduleHostRecoverTimer(NodeId h);
  void ScheduleLinkDownTimer(std::size_t link_index);
  void ScheduleLinkUpTimer(std::size_t link_index);
  void Quiesce();
  bool WouldDisconnect(std::size_t link_index) const;
  std::size_t ResolveLink(NodeId a, NodeId b) const;
  void NotifyTopologyChange();

  FaultPlan plan_;
  const net::Graph& graph_;
  sim::Simulator* sim_;
  Hooks hooks_;
  std::vector<char> host_up_;
  std::vector<char> link_up_;
  std::vector<std::uint32_t> crash_epochs_;
  std::vector<Rng> host_rngs_;
  std::vector<Rng> link_rngs_;
  Rng msg_rng_;
  /// Root for per-actor request-fate streams (MakeRequestFateStream).
  Rng fate_root_;
  std::uint64_t topology_epoch_ = 0;
  bool quiesced_ = false;
  bool started_ = false;
  FaultCounters counters_;
};

}  // namespace radar::fault
