#include "fault/fault_plan.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace radar::fault {
namespace {

bool AllZero(const double (&probs)[kNumMessageClasses]) {
  for (const double p : probs) {
    if (p != 0.0) return false;
  }
  return true;
}

std::optional<MessageClass> ParseClass(const std::string& word) {
  if (word == "request") return MessageClass::kRequest;
  if (word == "replicate") return MessageClass::kReplicate;
  if (word == "migrate") return MessageClass::kMigrate;
  if (word == "ack") return MessageClass::kAck;
  return std::nullopt;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kHostCrash: return "crash";
    case FaultKind::kHostRecover: return "recover";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
  }
  return "?";
}

const char* MessageClassName(MessageClass c) {
  switch (c) {
    case MessageClass::kRequest: return "request";
    case MessageClass::kReplicate: return "replicate";
    case MessageClass::kMigrate: return "migrate";
    case MessageClass::kAck: return "ack";
  }
  return "?";
}

bool FaultPlan::Empty() const {
  return scripted.empty() && !host_faults.enabled() &&
         !link_faults.enabled() && AllZero(drop_prob) &&
         request_delay_prob == 0.0;
}

void FaultPlan::Check() const {
  for (const ScriptedEvent& ev : scripted) {
    RADAR_CHECK_GE(ev.at, 0);
    if (ev.kind == FaultKind::kHostCrash ||
        ev.kind == FaultKind::kHostRecover) {
      RADAR_CHECK_GE(ev.host, 0);
    } else {
      RADAR_CHECK_GE(ev.link_a, 0);
      RADAR_CHECK_GE(ev.link_b, 0);
      RADAR_CHECK_NE(ev.link_a, ev.link_b);
    }
  }
  for (const StochasticProcess* proc : {&host_faults, &link_faults}) {
    RADAR_CHECK_GE(proc->mtbf_s, 0.0);
    RADAR_CHECK_GE(proc->mttr_s, 0.0);
    if (proc->enabled()) {
      RADAR_CHECK_MSG(proc->mttr_s > 0.0,
                      "a stochastic fault process needs a repair time");
    }
  }
  for (const double p : drop_prob) {
    RADAR_CHECK_GE(p, 0.0);
    RADAR_CHECK_LE(p, 1.0);
  }
  RADAR_CHECK_GE(request_delay_prob, 0.0);
  RADAR_CHECK_LE(request_delay_prob, 1.0);
  RADAR_CHECK_GE(request_delay, 0);
  RADAR_CHECK_GE(quiesce_at, 0);
}

std::optional<FaultPlan> ParseFaultPlan(std::istream& in,
                                        std::string* error) {
  FaultPlan plan;
  const auto fail = [&](int line_no,
                        const std::string& message) -> std::optional<FaultPlan> {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + message;
    }
    return std::nullopt;
  };

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank or comment-only line

    const auto want_node = [&](NodeId* out) {
      long long v = 0;
      if (!(fields >> v) || v < 0) return false;
      *out = static_cast<NodeId>(v);
      return true;
    };
    const auto want_seconds = [&](SimTime* out) {
      double v = 0.0;
      if (!(fields >> v) || v < 0.0) return false;
      *out = SecondsToSim(v);
      return true;
    };
    const auto want_prob = [&](double* out) {
      double v = 0.0;
      if (!(fields >> v) || v < 0.0 || v > 1.0) return false;
      *out = v;
      return true;
    };

    if (directive == "crash" || directive == "recover") {
      ScriptedEvent ev;
      ev.kind = directive == "crash" ? FaultKind::kHostCrash
                                     : FaultKind::kHostRecover;
      if (!want_node(&ev.host) || !want_seconds(&ev.at)) {
        return fail(line_no, directive + " needs: HOST T_SEC");
      }
      plan.scripted.push_back(ev);
    } else if (directive == "link-down" || directive == "link-up") {
      ScriptedEvent ev;
      ev.kind = directive == "link-down" ? FaultKind::kLinkDown
                                         : FaultKind::kLinkUp;
      if (!want_node(&ev.link_a) || !want_node(&ev.link_b) ||
          !want_seconds(&ev.at) || ev.link_a == ev.link_b) {
        return fail(line_no, directive + " needs: A B T_SEC (A != B)");
      }
      plan.scripted.push_back(ev);
    } else if (directive == "host-faults" || directive == "link-faults") {
      StochasticProcess& proc = directive == "host-faults"
                                    ? plan.host_faults
                                    : plan.link_faults;
      if (!(fields >> proc.mtbf_s >> proc.mttr_s) || proc.mtbf_s <= 0.0 ||
          proc.mttr_s <= 0.0) {
        return fail(line_no, directive + " needs: MTBF_S MTTR_S (both > 0)");
      }
    } else if (directive == "loss") {
      std::string cls_word;
      double p = 0.0;
      if (!(fields >> cls_word)) {
        return fail(line_no, "loss needs: CLASS P");
      }
      const auto cls = ParseClass(cls_word);
      if (!cls) {
        return fail(line_no, "unknown message class '" + cls_word +
                                 "' (request|replicate|migrate|ack)");
      }
      if (!want_prob(&p)) {
        return fail(line_no, "loss probability must be in [0, 1]");
      }
      plan.SetDropProb(*cls, p);
    } else if (directive == "delay") {
      std::string cls_word;
      double ms = 0.0;
      if (!(fields >> cls_word) || cls_word != "request") {
        return fail(line_no, "delay supports only the request class");
      }
      if (!want_prob(&plan.request_delay_prob) || !(fields >> ms) ||
          ms < 0.0) {
        return fail(line_no, "delay request needs: P DELAY_MS");
      }
      plan.request_delay = MillisToSim(ms);
    } else if (directive == "quiesce") {
      if (!want_seconds(&plan.quiesce_at) || plan.quiesce_at <= 0) {
        return fail(line_no, "quiesce needs: T_SEC (> 0)");
      }
    } else {
      return fail(line_no, "unknown directive '" + directive + "'");
    }

    std::string extra;
    if (fields >> extra) {
      return fail(line_no, "trailing token '" + extra + "'");
    }
  }
  return plan;
}

std::optional<FaultPlan> ParseFaultPlanFile(const std::string& path,
                                            std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open fault plan '" + path + "'";
    return std::nullopt;
  }
  return ParseFaultPlan(in, error);
}

}  // namespace radar::fault
