#include "fault/repair.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"

namespace radar::fault {

ReplicaRepairer::ReplicaRepairer(core::Cluster* cluster, ObjectId num_objects,
                                 int floor,
                                 std::function<bool(NodeId)> host_live)
    : cluster_(cluster),
      num_objects_(num_objects),
      floor_(floor),
      host_live_(std::move(host_live)) {
  RADAR_CHECK(cluster_ != nullptr);
  RADAR_CHECK_GE(floor_, 1);
  RADAR_CHECK(host_live_ != nullptr);
}

RepairStats ReplicaRepairer::RunPass(SimTime now) {
  RepairStats stats;
  const std::int32_t num_nodes = cluster_->num_nodes();
  std::vector<NodeId> candidates;
  for (ObjectId x = 0; x < num_objects_; ++x) {
    const core::Redirector& redirector = cluster_->redirectors().For(x);
    int live = redirector.ReplicaCount(x);
    if (live >= floor_) continue;
    if (live == 0) {
      // No live replica to copy from; the object heals only when a
      // crashed holder recovers.
      ++stats.floor_violations;
      continue;
    }
    const std::vector<NodeId> holders = redirector.ReplicaHosts(x);
    const NodeId source = holders.front();
    candidates.clear();
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (!host_live_(n) || cluster_->host(n).HasObject(x)) continue;
      candidates.push_back(n);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](NodeId lhs, NodeId rhs) {
                const std::int32_t dl = cluster_->Distance(source, lhs);
                const std::int32_t dr = cluster_->Distance(source, rhs);
                if (dl != dr) return dl < dr;
                return lhs < rhs;
              });
    for (const NodeId to : candidates) {
      if (live >= floor_) break;
      if (cluster_->RepairReplicate(source, to, x, now)) {
        ++stats.replicas_restored;
        ++live;
      }
    }
    if (live < floor_) ++stats.floor_violations;
  }
  return stats;
}

}  // namespace radar::fault
