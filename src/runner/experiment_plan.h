// An ExperimentPlan names a sweep and carries its ordered grid of
// simulation configurations; SweepRunner executes one.
//
// Seeding: every run's RNG stream is fixed by the plan — never by thread
// scheduling — so a sweep's results are a pure function of (plan, root
// seed). Under kForkPerRun, run i is seeded with DeriveRunSeed(root, i),
// the first draw of Rng(root).Fork(i): independent streams for replicated
// measurements. Under kSharedRoot, every run reuses the root seed, which
// is the paper's paired-comparison methodology (dynamic vs static and the
// ablations must see the same workload realization).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "driver/config.h"
#include "driver/report.h"

namespace radar::runner {

enum class SeedPolicy : std::uint8_t {
  kForkPerRun,
  kSharedRoot,
};

const char* SeedPolicyName(SeedPolicy policy);

/// The seed run `run_index` receives under kForkPerRun: a pure function
/// of (root_seed, run_index), pinned by golden-value tests so platform or
/// refactor drift fails loudly.
std::uint64_t DeriveRunSeed(std::uint64_t root_seed, std::uint64_t run_index);

struct ExperimentRun {
  std::string name;
  driver::SimConfig config;
  /// Optional custom executor (e.g. installs a DemandShiftWorkload or a
  /// caller-provided topology before Run()); null executes
  /// HostingSimulation(config).Run(). Runs on a pool thread, concurrently
  /// with other runs, so it must touch only its own state.
  std::function<driver::RunReport(const driver::SimConfig&)> execute;
};

class ExperimentPlan {
 public:
  ExperimentPlan(std::string name, std::uint64_t root_seed,
                 SeedPolicy seed_policy = SeedPolicy::kForkPerRun)
      : name_(std::move(name)),
        root_seed_(root_seed),
        seed_policy_(seed_policy) {}

  void Add(std::string run_name, driver::SimConfig config) {
    runs_.push_back({std::move(run_name), std::move(config), nullptr});
  }

  void AddCustom(std::string run_name, driver::SimConfig config,
                 std::function<driver::RunReport(const driver::SimConfig&)>
                     execute) {
    runs_.push_back(
        {std::move(run_name), std::move(config), std::move(execute)});
  }

  /// The seed SweepRunner assigns to run `index`.
  std::uint64_t SeedFor(std::size_t index) const;

  const std::string& name() const { return name_; }
  std::uint64_t root_seed() const { return root_seed_; }
  SeedPolicy seed_policy() const { return seed_policy_; }
  const std::vector<ExperimentRun>& runs() const { return runs_; }
  std::size_t size() const { return runs_.size(); }

 private:
  std::string name_;
  std::uint64_t root_seed_;
  SeedPolicy seed_policy_;
  std::vector<ExperimentRun> runs_;
};

}  // namespace radar::runner
