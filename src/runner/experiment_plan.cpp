#include "runner/experiment_plan.h"

#include "common/rng.h"

namespace radar::runner {

const char* SeedPolicyName(SeedPolicy policy) {
  switch (policy) {
    case SeedPolicy::kForkPerRun: return "fork-per-run";
    case SeedPolicy::kSharedRoot: return "shared-root";
  }
  return "?";
}

std::uint64_t DeriveRunSeed(std::uint64_t root_seed,
                            std::uint64_t run_index) {
  return Rng(root_seed).Fork(run_index).NextU64();
}

std::uint64_t ExperimentPlan::SeedFor(std::size_t index) const {
  switch (seed_policy_) {
    case SeedPolicy::kForkPerRun:
      return DeriveRunSeed(root_seed_, static_cast<std::uint64_t>(index));
    case SeedPolicy::kSharedRoot:
      return root_seed_;
  }
  return root_seed_;
}

}  // namespace radar::runner
