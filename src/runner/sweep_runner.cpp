#include "runner/sweep_runner.h"

#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "common/check.h"
#include "driver/hosting_simulation.h"
#include "runner/shard_executor.h"
#include "runner/thread_pool.h"

namespace radar::runner {

SweepRunner::SweepRunner(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs_ <= 0) jobs_ = 1;
  }
}

SweepResult SweepRunner::Run(const ExperimentPlan& plan) const {
  const auto start = std::chrono::steady_clock::now();

  SweepResult result;
  result.plan_name = plan.name();
  result.root_seed = plan.root_seed();
  result.seed_policy = plan.seed_policy();

  const std::vector<ExperimentRun>& runs = plan.runs();
  // One pre-assigned slot per run: tasks complete in any order, but each
  // writes only its own slot, so assembly below is in plan order.
  std::vector<std::optional<RunResult>> slots(runs.size());
  {
    ThreadPool pool(jobs_);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      pool.Submit([&runs, &plan, &slots, i] {
        const ExperimentRun& run = runs[i];
        driver::SimConfig config = run.config;
        config.seed = plan.SeedFor(i);
        const auto execute = [&config, &run]() -> driver::RunReport {
          if (run.execute != nullptr) return run.execute(config);
          if (config.shards >= 1) {
            // Sharded engine: windows run on a per-run pool sized to the
            // shard count (nested under the sweep pool, which is sized
            // for whole runs; results are identical either way).
            PoolShardExecutor executor(config.shards);
            driver::HostingSimulation sim(config);
            sim.set_window_executor(&executor);
            return sim.Run();
          }
          return driver::HostingSimulation(config).Run();
        };
        slots[i].emplace(RunResult{run.name, config.seed, execute()});
      });
    }
    pool.Wait();
  }

  result.runs.reserve(slots.size());
  for (std::optional<RunResult>& slot : slots) {
    RADAR_CHECK(slot.has_value());
    result.runs.push_back(std::move(*slot));
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

driver::JsonValue SweepJson(const SweepResult& result) {
  driver::JsonValue doc = driver::JsonValue::MakeObject();
  doc.Set("schema", std::string(kSweepSchema));
  doc.Set("plan", result.plan_name);
  doc.Set("root_seed", std::to_string(result.root_seed));
  doc.Set("seed_policy", SeedPolicyName(result.seed_policy));
  doc.Set("num_runs", static_cast<std::int64_t>(result.runs.size()));
  driver::JsonValue runs = driver::JsonValue::MakeArray();
  for (const RunResult& run : result.runs) {
    driver::JsonValue entry = driver::JsonValue::MakeObject();
    entry.Set("name", run.name);
    entry.Set("seed", std::to_string(run.seed));
    entry.Set("report", driver::ReportJson(run.report));
    runs.Append(std::move(entry));
  }
  doc.Set("runs", std::move(runs));
  return doc;
}

}  // namespace radar::runner
