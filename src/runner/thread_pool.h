// Fixed-size worker pool for the experiment engine.
//
// Deliberately minimal: one shared FIFO queue, no work stealing, no task
// priorities. Tasks are coarse (one full simulation each, seconds of work),
// so queue contention is negligible and a simple design keeps the
// concurrency story auditable — this file and sweep_runner.cpp are the
// only places in the tree allowed to create threads (enforced by
// radar_lint's thread-confinement rule; everything else stays
// single-threaded by construction).
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace radar::runner {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must be self-contained: they run concurrently
  /// with each other on worker threads.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first captured exception (the remaining tasks still
  /// ran to completion or were started normally).
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: task or stop
  std::condition_variable done_cv_;   ///< signals Wait(): all tasks done
  std::deque<std::function<void()>> queue_;
  std::exception_ptr first_error_;
  int outstanding_ = 0;  ///< queued + running tasks
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace radar::runner
