// Pooled WindowExecutor: runs shard windows on the experiment engine's
// ThreadPool.
//
// The window scheduler (sim/shard.h) is thread-agnostic; this adapter is
// where shard windows actually meet threads, and it lives in src/runner
// because thread creation is confined here (radar_lint's
// thread-confinement rule). The pool is created once and reused across
// every window of a run — a window is a few hundred microseconds of
// simulated time, so re-spawning workers per window would dominate.
//
// RunShards is a barrier: it submits one task per shard and waits for all
// of them. ThreadPool::Wait rethrows the first task exception and its
// mutex/condvar pair gives the caller the happens-before edge the mailbox
// grid's single-writer cells rely on.
#pragma once

#include "runner/thread_pool.h"
#include "sim/shard.h"

namespace radar::runner {

class PoolShardExecutor final : public sim::WindowExecutor {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1). Sizing it to
  /// the shard count keeps every window one submission round.
  explicit PoolShardExecutor(int num_threads);

  void RunShards(int num_shards, void (*task)(void* ctx, int shard),
                 void* ctx) override;

 private:
  ThreadPool pool_;
};

}  // namespace radar::runner
