#include "runner/shard_executor.h"

namespace radar::runner {

PoolShardExecutor::PoolShardExecutor(int num_threads) : pool_(num_threads) {}

void PoolShardExecutor::RunShards(int num_shards,
                                  void (*task)(void* ctx, int shard),
                                  void* ctx) {
  for (int s = 0; s < num_shards; ++s) {
    pool_.Submit([task, ctx, s] { task(ctx, s); });
  }
  pool_.Wait();
}

}  // namespace radar::runner
