#include "runner/thread_pool.h"

#include <algorithm>
#include <utility>

namespace radar::runner {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(num_threads, 1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++outstanding_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  if (first_error_ != nullptr) {
    const std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error != nullptr && first_error_ == nullptr) first_error_ = error;
      --outstanding_;
      if (outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace radar::runner
