// SweepRunner: executes every run of an ExperimentPlan concurrently on a
// fixed-size ThreadPool — one HostingSimulation per task, nothing shared
// between tasks but their pre-assigned result slots.
//
// Determinism: each run's seed comes from the plan (see experiment_plan.h)
// and each simulation is self-contained, so the collected reports — and
// the SweepJson document built from them — are byte-identical regardless
// of thread count or completion order. Wall-clock timing is measured but
// deliberately kept out of the JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/report.h"
#include "driver/report_json.h"
#include "runner/experiment_plan.h"

namespace radar::runner {

/// Schema tag of SweepJson documents; bump on incompatible change.
inline constexpr std::string_view kSweepSchema = "radar.sweep/1";

struct RunResult {
  std::string name;
  std::uint64_t seed = 0;  ///< the seed the run actually used
  driver::RunReport report;
};

struct SweepResult {
  std::string plan_name;
  std::uint64_t root_seed = 0;
  SeedPolicy seed_policy = SeedPolicy::kForkPerRun;
  std::vector<RunResult> runs;  ///< plan order, not completion order
  double wall_seconds = 0.0;    ///< measured; excluded from SweepJson
};

/// The sweep as a deterministic, schema-versioned JSON document: plan
/// identity, per-run seeds (decimal strings — they span the full uint64
/// range), and each run's full ReportJson.
driver::JsonValue SweepJson(const SweepResult& result);

class SweepRunner {
 public:
  /// jobs <= 0 selects std::thread::hardware_concurrency().
  explicit SweepRunner(int jobs = 1);

  int jobs() const { return jobs_; }

  /// Runs the whole plan; blocks until every run has finished.
  SweepResult Run(const ExperimentPlan& plan) const;

 private:
  int jobs_;
};

}  // namespace radar::runner
