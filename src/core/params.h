// Tunable parameters of the replication/migration protocol (Sec. 4.2 and
// Table 1). Defaults reproduce the paper's low-load configuration.
#pragma once

#include "common/types.h"

namespace radar::core {

struct ProtocolParams {
  /// Deletion threshold u: an affinity unit whose unit access rate falls
  /// below this is dropped (requests/sec).
  double deletion_threshold_u = 0.03;

  /// Replication threshold m: an object may be geo-replicated only when its
  /// unit access rate exceeds this (requests/sec). Theorem 5 requires
  /// m > 4u for stability; the paper (and our default) uses m = 6u.
  double replication_threshold_m = 0.18;

  /// A host p qualifies for geo-migration of x when it appears on the
  /// preference paths of more than this fraction of requests for x. Must
  /// exceed 0.5 to prevent ping-ponging; the paper uses 0.6.
  double migr_ratio = 0.6;

  /// A host p qualifies for geo-replication of x when it appears on more
  /// than this fraction of preference paths. Must be below migr_ratio;
  /// the paper uses 1/6.
  double repl_ratio = 1.0 / 6.0;

  /// High load watermark hw (requests/sec): above it a host enters
  /// offloading mode; CreateObj refuses migrations that would push the
  /// recipient past it.
  double high_watermark = 90.0;

  /// Low load watermark lw (requests/sec): a host leaves offloading mode
  /// below it; CreateObj recipients must be below it to accept anything.
  double low_watermark = 80.0;

  /// The constant "2" of the request distribution algorithm (Fig. 2): the
  /// closest replica is used unless its unit request count divided by this
  /// exceeds the smallest unit request count.
  double distribution_constant = 2.0;

  /// How often each host runs DecidePlacement (Table 1: 100 s).
  SimTime placement_interval = SecondsToSim(100.0);

  /// Load measurement interval (Sec. 6.1: 20 s).
  SimTime measurement_interval = SecondsToSim(20.0);

  /// En-masse offloading (Sec. 4.2.2): the load bounds let a host shed
  /// many objects per round without waiting for fresh measurements —
  /// "without this, a system of our intended scale would be hopelessly
  /// slow in adjusting to demand changes". Disable to shed at most one
  /// object per round (the ablation of that claim).
  bool bulk_offload = true;

  /// Returns true when the watermark and threshold relationships the
  /// protocol's stability arguments rely on all hold (lw < hw, 4u < m,
  /// repl_ratio < migr_ratio, migr_ratio > 0.5, constant > 1).
  bool IsStable() const;

  /// Aborts if structurally invalid (non-positive thresholds/intervals).
  /// Stability violations are allowed — ablations use them — but
  /// structural nonsense is not.
  void CheckStructure() const;
};

}  // namespace radar::core
