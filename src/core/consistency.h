// Replica consistency (Sec. 5).
//
// The paper divides hosted objects into three categories:
//   1. objects that only change when the content provider updates them —
//      maintained with a primary copy and asynchronous propagation
//      (immediately or in epidemic-style batches),
//   2. objects whose only per-access mutation is commuting (e.g. access
//      statistics) — replicas record locally and the statistics are merged,
//   3. objects with non-commuting per-access updates — in general only
//      migrated; when bounded inconsistency is tolerable, replicated under
//      a replica cap.
//
// ObjectCatalog carries the category / primary / cap metadata (the cap
// plugs into Cluster::set_replica_cap); UpdateManager implements the
// primary-copy propagation and statistics merging over whatever replica
// sets the redirectors currently record.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/slab_map.h"
#include "common/types.h"
#include "core/redirector.h"

namespace radar::core {

enum class ObjectCategory : std::uint8_t {
  kProviderUpdated = 1,  ///< static pages / read-only dynamic content
  kCommutingUpdates = 2,
  kNonCommutingUpdates = 3,
};

enum class PropagationPolicy : std::uint8_t {
  kImmediate,  ///< push each provider update to all replicas at once
  kBatched,    ///< queue updates; FlushBatch propagates them epidemic-style
};

struct ObjectMeta {
  ObjectCategory category = ObjectCategory::kProviderUpdated;
  NodeId primary = kInvalidNode;  ///< node hosting the original copy
  /// Maximum replicas; 0 = unlimited. Category-3 objects default to 1
  /// (migrate-only) unless the application tolerates some inconsistency.
  int replica_cap = 0;
};

/// Per-object consistency metadata.
class ObjectCatalog {
 public:
  void Register(ObjectId x, ObjectCategory category, NodeId primary,
                int replica_cap = -1);  // -1 = category default

  bool Knows(ObjectId x) const;
  const ObjectMeta& MetaOf(ObjectId x) const;

  /// Replica cap for Cluster::set_replica_cap (0 = unlimited). Unknown
  /// objects are treated as category 1 (unlimited).
  int ReplicaCap(ObjectId x) const;

  /// Whether the protocol may geo-replicate this object at all.
  bool MayReplicate(ObjectId x) const;

  std::size_t size() const { return meta_.size(); }

 private:
  SlabMap<ObjectMeta> meta_;
};

/// Primary-copy update propagation and commuting-statistics merging.
class UpdateManager {
 public:
  /// `replica_set_fn` returns the hosts currently holding x (typically
  /// bound to the redirector group's ReplicaHosts). `on_propagate` is
  /// invoked for every update shipped from one host to another, letting
  /// the driver charge network traffic.
  using ReplicaSetFn = std::function<std::vector<NodeId>(ObjectId)>;
  using PropagateHook =
      std::function<void(NodeId from, NodeId to, ObjectId x)>;

  UpdateManager(const ObjectCatalog* catalog, ReplicaSetFn replica_set_fn,
                PropagationPolicy policy);

  void set_propagate_hook(PropagateHook hook) { on_propagate_ = std::move(hook); }

  // ---- Category 1: provider updates via the primary copy ----

  /// A content-provider update lands at x's primary: bumps the primary
  /// version and, under kImmediate, pushes to all current replicas.
  /// Returns the new version.
  std::int64_t ProviderUpdate(ObjectId x, SimTime now);

  /// Epidemic batch round: propagates all queued updates to the current
  /// replica sets. Returns the number of (replica, update) deliveries.
  std::int64_t FlushBatch(SimTime now);

  /// Version replica `host` has applied (0 = never updated).
  std::int64_t VersionAt(ObjectId x, NodeId host) const;

  std::int64_t PrimaryVersion(ObjectId x) const;

  /// True when every current replica has the primary's version.
  bool IsConsistent(ObjectId x) const;

  /// Seconds the given replica has been stale (0 when current).
  double StalenessSeconds(ObjectId x, NodeId host, SimTime now) const;

  // ---- Category 2: commuting per-access statistics ----

  /// Records a commuting update (e.g. hit-counter increment) performed at
  /// the replica that serviced the access.
  void RecordCommutingUpdate(ObjectId x, NodeId host, std::int64_t delta = 1);

  /// The merged statistic: archived contributions of dropped replicas plus
  /// the live counters of current ones. Never loses updates across
  /// migrations (the requirement Sec. 5 imposes).
  std::int64_t MergedStatistic(ObjectId x) const;

  // ---- Replica lifecycle (wire to Cluster's transfer hook / drops) ----

  /// A new replica appeared on `host`: it starts at the primary version
  /// (the copy is made from an up-to-date replica).
  void OnReplicaCreated(ObjectId x, NodeId host, SimTime now);

  /// A replica is about to be dropped: folds its commuting counters into
  /// the archive and forgets its version.
  void OnReplicaDropped(ObjectId x, NodeId host);

  std::int64_t pending_batch_size() const;

 private:
  /// Everything the manager tracks about one replica of one object. A few
  /// replicas per object is the norm, so the per-object state is one small
  /// host-sorted vector instead of three parallel hash maps — found by a
  /// short linear scan, grown inline, and recycled with its slab slot.
  struct ReplicaInfo {
    NodeId host = kInvalidNode;
    std::int64_t version = 0;      ///< last update applied (0 = never)
    SimTime updated_at = 0;        ///< when `version` was applied
    std::int64_t commuting = 0;    ///< live category-2 counter
  };

  struct ObjectState {
    std::int64_t primary_version = 0;
    SimTime primary_updated_at = 0;
    std::int64_t archived_statistic = 0;
    bool batch_pending = false;
    std::vector<ReplicaInfo> replicas;  ///< sorted by host id
  };

  ObjectState& StateOf(ObjectId x);
  const ObjectState* FindState(ObjectId x) const;
  static ReplicaInfo* FindReplica(ObjectState& state, NodeId host);
  static const ReplicaInfo* FindReplica(const ObjectState& state,
                                        NodeId host);
  /// The replica entry for `host`, inserted (host-sorted) if absent.
  static ReplicaInfo& ReplicaEntry(ObjectState& state, NodeId host);
  void PushToReplicas(ObjectId x, ObjectState& state, SimTime now,
                      std::int64_t* deliveries);

  const ObjectCatalog* catalog_;
  ReplicaSetFn replica_set_fn_;
  PropagationPolicy policy_;
  PropagateHook on_propagate_;
  SlabMap<ObjectState> states_;
};

/// Keeps an UpdateManager's per-replica state in step with the placement
/// protocol: register with Redirector::set_change_listener and replica
/// creations/drops flow into the manager automatically.
class ConsistencyBridge final : public Redirector::ChangeListener {
 public:
  using ClockFn = std::function<SimTime()>;

  ConsistencyBridge(UpdateManager* manager, ClockFn clock);

  void OnReplicaAdded(ObjectId x, NodeId host) override;
  void OnReplicaRemoved(ObjectId x, NodeId host) override;

 private:
  UpdateManager* manager_;
  ClockFn clock_;
};

}  // namespace radar::core
