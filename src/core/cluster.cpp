#include "core/cluster.h"

#include <algorithm>

#include "common/check.h"

namespace radar::core {

Cluster::Cluster(std::int32_t num_nodes, const DistanceOracle& distance,
                 const ProtocolParams& params,
                 std::vector<NodeId> redirector_homes)
    : params_(params),
      distance_(distance),
      redirectors_(distance, params.distribution_constant,
                   std::move(redirector_homes)) {
  RADAR_CHECK_GT(num_nodes, 0);
  params_.CheckStructure();
  agents_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId n = 0; n < num_nodes; ++n) {
    agents_.emplace_back(n, num_nodes, &params_);
  }
}

HostAgent& Cluster::host(NodeId n) {
  RADAR_CHECK_GE(n, 0);
  RADAR_CHECK_LT(n, num_nodes());
  return agents_[static_cast<std::size_t>(n)];
}

const HostAgent& Cluster::host(NodeId n) const {
  RADAR_CHECK_GE(n, 0);
  RADAR_CHECK_LT(n, num_nodes());
  return agents_[static_cast<std::size_t>(n)];
}

void Cluster::PlaceInitialObject(ObjectId x, NodeId home) {
  host(home).AddInitialReplica(x);
  redirectors_.For(x).RegisterObject(x, home);
}

NodeId Cluster::RouteRequest(ObjectId x, NodeId gateway) {
  return redirectors_.For(x).ChooseReplica(x, gateway);
}

void Cluster::TickMeasurement(NodeId n, SimTime now) {
  host(n).OnMeasurementTick(now);
}

PlacementStats Cluster::RunPlacement(NodeId n, SimTime now) {
  now_ = now;
  return host(n).RunPlacement(*this, now);
}

CreateObjResponse Cluster::CreateObjRpc(NodeId from, NodeId to,
                                        CreateObjMethod method, ObjectId x,
                                        double unit_load) {
  RADAR_CHECK_NE(from, to);
  const RpcFate fate =
      rpc_filter_ ? rpc_filter_(from, to, method, x) : RpcFate::kDeliver;
  if (fate == RpcFate::kLost) {
    // The request (or all its resends) never reached the candidate; the
    // source sees a refusal and keeps its copy — nothing moved.
    return {};
  }
  if (method == CreateObjMethod::kReplicate && replica_cap_) {
    const int cap = replica_cap_(x);
    if (cap > 0 && redirectors_.For(x).ReplicaCount(x) >= cap &&
        !host(to).HasObject(x)) {
      return {};  // consistency-limited object (Sec. 5): refuse new copies
    }
  }
  const CreateObjResponse resp =
      host(to).HandleCreateObj(method, x, unit_load, now_);
  if (resp.accepted) {
    // Fig. 4: the recipient notifies the redirector *after* the copy
    // exists, preserving the subset invariant.
    redirectors_.For(x).OnReplicaCreated(x, to);
    ++total_transfers_;
    if (resp.created_new_copy) ++total_copies_;
    if (transfer_hook_) {
      transfer_hook_(from, to, x, method, resp.created_new_copy);
    }
  }
  if (fate == RpcFate::kAcceptedAckLost) {
    // The candidate accepted — its copy and the redirector notice are real
    // and stay — but the ack never made it back. The source must treat
    // the exchange as refused (a migration keeps its replica: an extra
    // copy, never a lost object).
    return {};
  }
  return resp;
}

bool Cluster::HostLive(NodeId n) const {
  return !liveness_ || liveness_(n);
}

bool Cluster::RepairReplicate(NodeId from, NodeId to, ObjectId x,
                              SimTime now) {
  RADAR_CHECK_NE(from, to);
  RADAR_CHECK_MSG(host(from).HasObject(x), "repair source lost the object");
  if (!HostLive(to) || host(to).HasObject(x) || host(to).StorageFull()) {
    return false;
  }
  const double unit_load = host(from).UnitLoad(x);
  if (rpc_filter_ &&
      rpc_filter_(from, to, CreateObjMethod::kReplicate, x) ==
          RpcFate::kLost) {
    // Repair traffic rides the same lossy control plane; a lost repair
    // just waits for the next pass. (A lost *ack* is immaterial here: the
    // floor repairer learns the outcome from the redirector, not from the
    // source host.)
    return false;
  }
  now_ = now;
  host(to).AcceptRepairReplica(x, unit_load, now);
  redirectors_.For(x).OnReplicaCreated(x, to);
  ++total_transfers_;
  ++total_copies_;
  if (transfer_hook_) {
    transfer_hook_(from, to, x, CreateObjMethod::kReplicate, true);
  }
  return true;
}

Redirector& Cluster::RedirectorFor(ObjectId x) { return redirectors_.For(x); }

std::int32_t Cluster::Distance(NodeId from, NodeId to) const {
  return distance_.Distance(from, to);
}

NodeId Cluster::FindOffloadRecipient(NodeId self) {
  // Idealized load directory (Sec. 4.2.2): pick the least-loaded host whose
  // reported (weight-normalized) load is under the low watermark. Reports
  // are the hosts' admission-load estimates, so in-flight acquisitions
  // count against them.
  NodeId best = kInvalidNode;
  double best_load = params_.low_watermark;
  for (NodeId n = 0; n < num_nodes(); ++n) {
    if (n == self || !HostLive(n)) continue;
    const double load = ReportedLoad(n);
    if (load < best_load) {
      best_load = load;
      best = n;
    }
  }
  return best;
}

double Cluster::ReportedLoad(NodeId n) const {
  const HostAgent& agent = host(n);
  return agent.AdmissionLoad() / agent.weight();
}

double Cluster::HostWeight(NodeId n) const { return host(n).weight(); }

double Cluster::AverageReplicasPerObject() const {
  const auto [replicas, objects] = redirectors_.TotalReplicasAndObjects();
  return objects > 0 ? static_cast<double>(replicas) /
                           static_cast<double>(objects)
                     : 0.0;
}

void Cluster::CheckRedirectorSubsetInvariant() const {
  for (int i = 0; i < redirectors_.size(); ++i) {
    const Redirector& r = const_cast<RedirectorGroup&>(redirectors_).At(i);
    for (const ObjectId x : r.Objects()) {
      for (const NodeId h : r.ReplicaHosts(x)) {
        RADAR_CHECK_MSG(host(h).HasObject(x),
                        "redirector records a replica that does not exist");
        RADAR_CHECK_MSG(HostLive(h),
                        "redirector records a replica on a crashed host");
      }
    }
  }
}

}  // namespace radar::core
