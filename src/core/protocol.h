// Shared protocol types: the CreateObj RPC (Fig. 4) and the context through
// which a host's placement run reaches the rest of the platform.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "core/redirector.h"

namespace radar::core {

/// Method field of the CreateObj request (Fig. 4).
enum class CreateObjMethod : std::uint8_t {
  kMigrate,
  kReplicate,
};

inline const char* MethodName(CreateObjMethod m) {
  return m == CreateObjMethod::kMigrate ? "MIGRATE" : "REPLICATE";
}

/// Network-level fate of one CreateObj exchange, decided by the fault
/// layer (always kDeliver in a perfect world). kLost means the request
/// never reached the candidate (dead host, or every bounded resend was
/// dropped): the source sees a refusal and keeps its copy.
/// kAcceptedAckLost means the candidate accepted and created its copy but
/// the acceptance ack was lost: the source *also* sees a refusal and keeps
/// its copy — a relocation can duplicate an object, never lose one.
enum class RpcFate : std::uint8_t {
  kDeliver,
  kLost,
  kAcceptedAckLost,
};

/// Outcome of a CreateObj request at the candidate host.
struct CreateObjResponse {
  bool accepted = false;
  /// True when a new physical copy was created (object bytes must be
  /// transferred); false when the candidate already held a replica and
  /// merely incremented its affinity.
  bool created_new_copy = false;
};

/// The world as seen from one host's placement run. The driver implements
/// this over the simulated platform; unit tests implement it directly.
///
/// CreateObj exchanges are modelled as synchronous RPCs: their round-trip
/// (tens of milliseconds) is negligible against the 100-second placement
/// interval, and the object-copy traffic itself is accounted separately by
/// the driver's transfer hook.
class PlacementContext {
 public:
  virtual ~PlacementContext() = default;

  /// Sends CreateObj(method, x, unit_load) from `from` to candidate `to`
  /// and returns the candidate's verdict. On acceptance the implementation
  /// must notify x's redirector of the new copy / affinity increment
  /// before returning (Fig. 4's "notify x's redirector").
  virtual CreateObjResponse CreateObjRpc(NodeId from, NodeId to,
                                         CreateObjMethod method, ObjectId x,
                                         double unit_load) = 0;

  /// The redirector responsible for object x.
  virtual Redirector& RedirectorFor(ObjectId x) = 0;

  /// Network distance in hops.
  virtual std::int32_t Distance(NodeId from, NodeId to) const = 0;

  /// Picks an offloading recipient for `self`: a host whose reported load
  /// is below the low watermark (Sec. 4.2.2, "hosts periodically exchange
  /// load reports"). Returns kInvalidNode when no host qualifies.
  virtual NodeId FindOffloadRecipient(NodeId self) = 0;

  /// The load the recipient reported: its admission-load estimate
  /// normalized by its relative-power weight (Sec. 2's heterogeneity
  /// extension; 1.0 for homogeneous platforms).
  virtual double ReportedLoad(NodeId host) const = 0;

  /// Relative-power weight of a host, carried in load reports so senders
  /// can convert absolute load bounds into the recipient's normalized
  /// scale. Homogeneous platforms return 1.0.
  virtual double HostWeight(NodeId /*host*/) const { return 1.0; }
};

/// What one DecidePlacement run did (metrics / tests).
struct PlacementStats {
  int affinity_drops = 0;     ///< deletion-threshold affinity reductions
  int geo_migrations = 0;
  int geo_replications = 0;
  int offload_migrations = 0;
  int offload_replications = 0;
  bool offloading_mode = false;
  bool ran_offload = false;

  int TotalRelocations() const {
    return affinity_drops + geo_migrations + geo_replications +
           offload_migrations + offload_replications;
  }
};

}  // namespace radar::core
