// The hosting platform's control plane: all host agents plus the
// redirector group, wired together through the PlacementContext.
//
// Cluster is deliberately free of any event-driven machinery so that unit
// and property tests can drive the protocol step by step; the simulation
// driver owns the clock and calls into Cluster at the right simulated
// times, registering hooks to charge object-copy traffic to the network.
#pragma once

#include <functional>
#include <vector>

#include "common/types.h"
#include "core/distance.h"
#include "core/host_agent.h"
#include "core/params.h"
#include "core/protocol.h"
#include "core/redirector.h"

namespace radar::core {

class Cluster : public PlacementContext {
 public:
  /// Called whenever a CreateObj acceptance moved an object: `copied` is
  /// true when actual object bytes travel from -> to (a brand-new copy),
  /// false for a pure affinity increment.
  using TransferHook = std::function<void(
      NodeId from, NodeId to, ObjectId x, CreateObjMethod method, bool copied)>;

  /// Optional per-object replica cap (Sec. 5: objects with non-commuting
  /// updates keep a bounded replica set; cap 1 = migrate-only). Return 0
  /// for "unlimited".
  using ReplicaCapFn = std::function<int(ObjectId)>;

  /// Decides the network-level fate of a CreateObj exchange (fault
  /// injection); unset means every exchange delivers.
  using RpcFilter = std::function<RpcFate(NodeId from, NodeId to,
                                          CreateObjMethod method, ObjectId x)>;

  /// Host liveness oracle (fault injection); unset means always up.
  using LivenessFn = std::function<bool(NodeId)>;

  Cluster(std::int32_t num_nodes, const DistanceOracle& distance,
          const ProtocolParams& params, std::vector<NodeId> redirector_homes);

  std::int32_t num_nodes() const { return static_cast<std::int32_t>(agents_.size()); }
  const ProtocolParams& params() const { return params_; }

  HostAgent& host(NodeId n);
  const HostAgent& host(NodeId n) const;
  RedirectorGroup& redirectors() { return redirectors_; }
  const RedirectorGroup& redirectors() const { return redirectors_; }

  void set_transfer_hook(TransferHook hook) { transfer_hook_ = std::move(hook); }
  void set_replica_cap(ReplicaCapFn fn) { replica_cap_ = std::move(fn); }
  void set_rpc_filter(RpcFilter filter) { rpc_filter_ = std::move(filter); }
  void set_liveness(LivenessFn fn) { liveness_ = std::move(fn); }

  /// True when `n` is up (always true without a liveness oracle).
  bool HostLive(NodeId n) const;

  /// Availability repair: copies x from `from` (which must hold it) to
  /// `to`, bypassing the Fig. 4 admission watermarks — the floor outranks
  /// load balancing. The exchange still passes the fault filter as a
  /// REPLICATE transfer, so repair traffic is itself lossy under faults;
  /// returns false when the transfer was lost, `to` is down or full, or
  /// `to` already holds x. On success the redirector learns of the copy
  /// and the transfer hook is charged as usual.
  bool RepairReplicate(NodeId from, NodeId to, ObjectId x, SimTime now);

  /// Bootstrap: installs the initial sole copy of x on `home` and
  /// registers it with x's redirector.
  void PlaceInitialObject(ObjectId x, NodeId home);

  /// Request distribution entry point: the redirector for x picks the
  /// servicing replica for a request entering at `gateway`.
  NodeId RouteRequest(ObjectId x, NodeId gateway);

  /// Runs host n's measurement tick at `now`.
  void TickMeasurement(NodeId n, SimTime now);

  /// Runs host n's placement round at `now`.
  PlacementStats RunPlacement(NodeId n, SimTime now);

  // ---- PlacementContext ----
  CreateObjResponse CreateObjRpc(NodeId from, NodeId to,
                                 CreateObjMethod method, ObjectId x,
                                 double unit_load) override;
  Redirector& RedirectorFor(ObjectId x) override;
  std::int32_t Distance(NodeId from, NodeId to) const override;
  NodeId FindOffloadRecipient(NodeId self) override;
  double ReportedLoad(NodeId host) const override;
  double HostWeight(NodeId host) const override;

  // ---- Census (metrics / tests) ----

  /// Mean number of physical replicas per object.
  double AverageReplicasPerObject() const;

  /// Checks the subset invariant: every replica the redirectors record
  /// physically exists on the corresponding host. Aborts on violation.
  void CheckRedirectorSubsetInvariant() const;

  std::int64_t total_transfers() const { return total_transfers_; }
  std::int64_t total_copies() const { return total_copies_; }

 private:
  ProtocolParams params_;
  const DistanceOracle& distance_;
  RedirectorGroup redirectors_;
  std::vector<HostAgent> agents_;
  TransferHook transfer_hook_;
  ReplicaCapFn replica_cap_;
  RpcFilter rpc_filter_;
  LivenessFn liveness_;
  SimTime now_ = 0;  // time of the in-progress placement round
  std::int64_t total_transfers_ = 0;
  std::int64_t total_copies_ = 0;
};

}  // namespace radar::core
