// The hosting platform's control plane: all host agents plus the
// redirector group, wired together through the PlacementContext.
//
// Cluster is deliberately free of any event-driven machinery so that unit
// and property tests can drive the protocol step by step; the simulation
// driver owns the clock and calls into Cluster at the right simulated
// times, registering hooks to charge object-copy traffic to the network.
#pragma once

#include <functional>
#include <vector>

#include "common/types.h"
#include "core/distance.h"
#include "core/host_agent.h"
#include "core/params.h"
#include "core/protocol.h"
#include "core/redirector.h"

namespace radar::core {

class Cluster : public PlacementContext {
 public:
  /// Called whenever a CreateObj acceptance moved an object: `copied` is
  /// true when actual object bytes travel from -> to (a brand-new copy),
  /// false for a pure affinity increment.
  using TransferHook = std::function<void(
      NodeId from, NodeId to, ObjectId x, CreateObjMethod method, bool copied)>;

  /// Optional per-object replica cap (Sec. 5: objects with non-commuting
  /// updates keep a bounded replica set; cap 1 = migrate-only). Return 0
  /// for "unlimited".
  using ReplicaCapFn = std::function<int(ObjectId)>;

  Cluster(std::int32_t num_nodes, const DistanceOracle& distance,
          const ProtocolParams& params, std::vector<NodeId> redirector_homes);

  std::int32_t num_nodes() const { return static_cast<std::int32_t>(agents_.size()); }
  const ProtocolParams& params() const { return params_; }

  HostAgent& host(NodeId n);
  const HostAgent& host(NodeId n) const;
  RedirectorGroup& redirectors() { return redirectors_; }
  const RedirectorGroup& redirectors() const { return redirectors_; }

  void set_transfer_hook(TransferHook hook) { transfer_hook_ = std::move(hook); }
  void set_replica_cap(ReplicaCapFn fn) { replica_cap_ = std::move(fn); }

  /// Bootstrap: installs the initial sole copy of x on `home` and
  /// registers it with x's redirector.
  void PlaceInitialObject(ObjectId x, NodeId home);

  /// Request distribution entry point: the redirector for x picks the
  /// servicing replica for a request entering at `gateway`.
  NodeId RouteRequest(ObjectId x, NodeId gateway);

  /// Runs host n's measurement tick at `now`.
  void TickMeasurement(NodeId n, SimTime now);

  /// Runs host n's placement round at `now`.
  PlacementStats RunPlacement(NodeId n, SimTime now);

  // ---- PlacementContext ----
  CreateObjResponse CreateObjRpc(NodeId from, NodeId to,
                                 CreateObjMethod method, ObjectId x,
                                 double unit_load) override;
  Redirector& RedirectorFor(ObjectId x) override;
  std::int32_t Distance(NodeId from, NodeId to) const override;
  NodeId FindOffloadRecipient(NodeId self) override;
  double ReportedLoad(NodeId host) const override;
  double HostWeight(NodeId host) const override;

  // ---- Census (metrics / tests) ----

  /// Mean number of physical replicas per object.
  double AverageReplicasPerObject() const;

  /// Checks the subset invariant: every replica the redirectors record
  /// physically exists on the corresponding host. Aborts on violation.
  void CheckRedirectorSubsetInvariant() const;

  std::int64_t total_transfers() const { return total_transfers_; }
  std::int64_t total_copies() const { return total_copies_; }

 private:
  ProtocolParams params_;
  const DistanceOracle& distance_;
  RedirectorGroup redirectors_;
  std::vector<HostAgent> agents_;
  TransferHook transfer_hook_;
  ReplicaCapFn replica_cap_;
  SimTime now_ = 0;  // time of the in-progress placement round
  std::int64_t total_transfers_ = 0;
  std::int64_t total_copies_ = 0;
};

}  // namespace radar::core
