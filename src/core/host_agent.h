// Per-host protocol state and the replica placement algorithm (Figs. 3-5).
//
// Each hosting server runs one HostAgent. The agent
//   - tracks, per hosted object, how often every platform node appeared on
//     the preference paths of serviced requests (the access counts of
//     Sec. 4.1),
//   - measures its load as the rate of serviced requests per measurement
//     interval (Sec. 2.1 / 6.1),
//   - maintains the upper/lower load estimates that Theorems 1-4 make
//     sound, so it can accept or shed many objects without waiting for
//     fresh measurements,
//   - periodically runs DecidePlacement (Fig. 3) with geo-migration /
//     geo-replication, and Offload (Fig. 5) when stuck above the high
//     watermark, and
//   - answers CreateObj requests from peers (Fig. 4).
//
// The agent is autonomous by construction: it never learns which other
// replicas of its objects exist; everything it decides follows from its own
// counters plus the CreateObj verdicts of candidate recipients.
//
// Storage layout: records live in a SlabMap keyed by object id, and the
// per-interval measurement fields (serviced counts, measured loads) live
// in parallel flat arrays keyed by the record's slab handle. The
// cnt(p, x) access counts are sparse: one (node, count) vector per slot,
// holding only the nodes that actually appeared on a preference path this
// epoch — a dense slots x num_nodes matrix would be 4 GB at 10^5 objects
// on a 10k-node topology. Rows are write-optimized: a bump is a plain
// append (requests outnumber placement rounds by orders of magnitude, so
// the bump is the agent's hottest operation), duplicates are merged by an
// amortized-O(1) hash coalesce when a row fills its capacity, and the
// readers — placement, which runs once per epoch — coalesce a row before
// scanning it. Rows are cleared (capacity retained) on epoch reset and
// slot recycling, so steady-state bookkeeping still allocates nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/slab_map.h"
#include "common/types.h"
#include "core/params.h"
#include "core/protocol.h"

namespace radar::core {

class HostAgent {
 public:
  /// `params` must outlive the agent.
  HostAgent(NodeId self, std::int32_t num_nodes, const ProtocolParams* params);

  NodeId self() const { return self_; }

  // ---- Heterogeneity (Sec. 2: "weights corresponding to relative power
  // of hosts") and the storage component of the vector load metric
  // (Sec. 2.1) ----

  /// Relative capacity weight (default 1.0). All watermark comparisons
  /// use the *normalized* load (load / weight), so a host with weight 2
  /// accepts twice the absolute load before refusing or offloading.
  void set_weight(double weight);
  double weight() const { return weight_; }

  /// Storage capacity in objects (0 = unlimited). A full host refuses
  /// CreateObj requests that would create a new physical copy (affinity
  /// increments occupy no extra storage).
  void set_storage_capacity(std::int64_t max_objects);
  std::int64_t storage_capacity() const { return storage_capacity_; }
  bool StorageFull() const;

  // ---- Replica state ----

  /// Installs the initial copy of an object (system bootstrap; does not
  /// count as an acquisition for load-estimate purposes). `affinity` lets
  /// a real-mode host rebuild a multi-affinity replica from its WAL.
  void AddInitialReplica(ObjectId x, int affinity = 1);

  bool HasObject(ObjectId x) const { return records_.Contains(x); }
  int Affinity(ObjectId x) const;
  /// Hosted object ids in ascending order.
  std::vector<ObjectId> Objects() const;
  std::size_t NumObjects() const { return records_.size(); }

  // ---- Request servicing ----

  /// Records one serviced request for x whose response travels along
  /// `preference_path` (routers from this host to the client's gateway,
  /// inclusive; element 0 must be this host). Increments the access count
  /// of every node on the path (Sec. 4.1) and the load counters.
  void RecordServiced(ObjectId x, const std::vector<NodeId>& preference_path);

  /// RecordServiced when x is hosted; otherwise records the untracked
  /// service and returns false. One lookup either way — the request
  /// completion path's single call into the agent.
  bool RecordServicedIfHosted(ObjectId x,
                              const std::vector<NodeId>& preference_path);

  /// Load bookkeeping for a serviced request whose object is no longer
  /// hosted (a request that was in flight when the replica was dropped).
  void RecordServicedUntracked();

  // ---- Load measurement (Sec. 2.1) ----

  /// Closes the current measurement interval at `now`: recomputes the
  /// measured load (requests/sec) and per-object loads, and reverts the
  /// load estimates to measurements once an interval free of acquisitions
  /// (resp. sheddings) has completed.
  void OnMeasurementTick(SimTime now);

  /// Load over the last completed measurement interval (requests/sec).
  double measured_load() const { return measured_load_; }

  /// Upper-limit estimate used when deciding whether to accept objects:
  /// measured load plus 4 * unit-load (Theorems 2/4) for every object
  /// accepted that the measurement does not yet reflect. A bound is aged
  /// out once a full measurement interval has covered the acquisition —
  /// the paper's Sec. 2.1 rule, kept per-acquisition so that a steady
  /// stream of relocations cannot inflate the estimate without bound
  /// (footnote 2).
  double AdmissionLoad() const {
    return measured_load_ + upper_adjust_cur_ + upper_adjust_prev_;
  }

  /// Lower-limit estimate used when deciding whether to keep offloading:
  /// measured load minus the Theorem 1/3 decrease bounds of everything
  /// shed that the measurement does not yet reflect (same aging).
  double OffloadLoad() const {
    return measured_load_ - lower_adjust_cur_ - lower_adjust_prev_;
  }

  /// load(x_s): requests/sec serviced for x over the last interval.
  double ObjectLoad(ObjectId x) const;

  /// load(x_s) / aff(x_s), the value carried in CreateObj messages.
  double UnitLoad(ObjectId x) const;

  bool offloading() const { return offloading_; }

  // ---- Protocol steps ----

  /// Fig. 4: handles an incoming CreateObj. On acceptance the replica (or
  /// affinity unit) exists locally when this returns; the caller is
  /// responsible for notifying the redirector.
  CreateObjResponse HandleCreateObj(CreateObjMethod method, ObjectId x,
                                    double unit_load, SimTime now);

  /// Fig. 3 (+ Fig. 5 when offloading): one placement round at time `now`.
  /// Resets the per-object access counts afterwards.
  PlacementStats RunPlacement(PlacementContext& ctx, SimTime now);

  // ---- Real-system mode surface (src/transport drives these) ----
  //
  // The networked daemons run Fig. 4 admission via HandleCreateObj, but
  // their source-side drop is asynchronous: a CreateObj acceptance and the
  // redirector's drop grant arrive as separate wire frames, not inside one
  // synchronous PlacementContext call. These entry points apply the same
  // Theorem 1/3 accounting as RunPlacement's internal relocation paths.

  /// Source-side bookkeeping after a peer accepted a REPLICATE of x (the
  /// source keeps its copy): charges the Theorem 1 decrease bound so the
  /// offload estimate reflects the shed load. Requires x hosted.
  void NoteReplicationShed(ObjectId x);

  /// Drops the local replica of x after the redirector granted the drop
  /// (migration source side): charges the Theorem 3 decrease bound and
  /// erases the record. Requires x hosted.
  void DropReplica(ObjectId x);

  // ---- Fault reaction (src/fault drives these) ----

  /// The host's process just restarted after a crash at `now`. Its disk —
  /// the replica set and affinities — survived, but every in-memory
  /// counter did not: measured loads, access counts, interval totals, and
  /// the Theorem 1-4 estimate adjustments all restart from zero, exactly
  /// as a freshly booted server would.
  void ResetAfterCrash(SimTime now);

  /// Installs a replica pushed by the replica-floor repairer. Unlike
  /// HandleCreateObj this bypasses the Fig. 4 watermark admission test —
  /// availability repair must not be refusable by a busy host — but still
  /// charges the Theorem 2/4 upper bound so the load estimate stays sound.
  /// Requires the object not hosted and storage not full.
  void AcceptRepairReplica(ObjectId x, double unit_load, SimTime now);

  // ---- Introspection (tests, metrics) ----

  /// Access count cnt(p, x) accumulated since the last placement run.
  std::uint32_t AccessCount(ObjectId x, NodeId p) const;

  /// Unit access rate (requests/sec per affinity unit) x would be judged
  /// by if placement ran at `now`.
  double UnitAccessRate(ObjectId x, SimTime now) const;

 private:
  /// Slab-resident part of a record: the fields placement reads per
  /// object. The per-interval measurement fields live in parallel arrays
  /// (serviced_, load_, counts_) keyed by the record's slab handle, so
  /// interval sweeps stream flat arrays.
  struct ReplicaRecord {
    int aff = 1;
    /// When this replica appeared on the host (bounds its epoch length).
    SimTime acquired_at = 0;
  };
  // Hash-indexed slab: a host's keys are a stride-n sample of the whole
  // object-id space (object i starts on node i mod n), so the default
  // dense index would cost num_objects entries on every one of n agents —
  // an n x objects blow-up at Internet scale. Chunks of 32 slots match a
  // host's typical working set (a few dozen replicas, not hundreds).
  using Records = SlabMap<ReplicaRecord, 5, HashSlabIndex>;
  using Handle = Records::Handle;

  enum class ReduceOutcome { kReduced, kDropped, kDenied };

  /// One sparse access-count entry: node `node` appeared on `count`
  /// preference paths this epoch. A row may hold several entries for the
  /// same node between coalesces; CoalesceRow merges them (one entry per
  /// node, deterministic first-appearance order).
  struct CountEntry {
    NodeId node;
    std::uint32_t count;
  };
  using CountRow = std::vector<CountEntry>;

  /// Rows below this size are never coalesced mid-epoch; the vector's own
  /// doubling absorbs them.
  static constexpr std::size_t kCountCoalesceMin = 64;

  /// Handle of x's record; checks that x is hosted.
  Handle HandleOf(ObjectId x) const {
    const Handle h = records_.HandleOf(x);
    RADAR_CHECK_MSG(h != Records::kNoHandle, "object not hosted");
    return h;
  }

  /// cnt(p, x) row of the record in slot `h` (sorted by node id).
  CountRow& CountsRow(Handle h) { return counts_[h]; }
  const CountRow& CountsRow(Handle h) const { return counts_[h]; }

  /// cnt(p, x) for one node: linear sum over the row, 0 when absent.
  /// Correct on coalesced and uncoalesced rows alike.
  static std::uint32_t CountFor(const CountRow& row, NodeId p);
  /// Increments cnt(p, x): appends a unit entry, coalescing first when
  /// the row is full. O(1) amortized — this is the per-request hot path.
  void BumpCount(CountRow& row, NodeId p);
  /// Merges duplicate entries in place via a scratch hash (no sort:
  /// a sort-based merge costs log(row) per bump amortized, which showed
  /// up as the request engine's single hottest block). After this the
  /// row holds one entry per node, in deterministic first-appearance
  /// order. Capacity is retained. Readers that iterate entries
  /// (placement, offload ranking) must coalesce first; CountFor need not.
  void CoalesceRow(CountRow& row);

  /// Creates x's record (and grows the parallel arrays to match the slab).
  Handle InsertRecord(ObjectId x);
  /// Drops x's record, zeroing its parallel-array state for slot reuse.
  void EraseRecord(ObjectId x);

  void RecordServicedAt(Handle h,
                        const std::vector<NodeId>& preference_path);

  /// Fig. 3's ReduceAffinity: decrements affinity (notifying the
  /// redirector) or, at affinity 1, asks the redirector for permission to
  /// drop the replica outright.
  ReduceOutcome ReduceAffinity(PlacementContext& ctx, ObjectId x);

  /// Fig. 5: sheds objects to one underloaded recipient using the
  /// Theorem 1-4 bounds to pace the bulk transfer.
  void Offload(PlacementContext& ctx, PlacementStats& stats, SimTime now);

  /// Seconds of epoch this replica has observed at `now`.
  double EpochSeconds(const ReplicaRecord& rec, SimTime now) const;

  /// Nodes with non-zero access counts in `counts` (which must be
  /// coalesced), excluding self, in decreasing order of distance from
  /// self (ties: lower id first).
  /// Returns a reference to an internal scratch buffer, valid until the
  /// next call on this agent — placement calls it O(objects) times per
  /// round, so it must not allocate.
  const std::vector<NodeId>& CandidatesByFarthest(const CountRow& counts,
                                                  const PlacementContext& ctx);

  NodeId self_;
  std::int32_t num_nodes_;
  const ProtocolParams* params_;

  /// Hosted records, keyed by object id. Slots never relocate, so the
  /// parallel arrays below are keyed by slab handle.
  Records records_;
  /// Requests serviced this measurement interval, per slot.
  std::vector<std::uint32_t> serviced_;
  /// load(x_s) from the last completed interval (requests/sec), per slot.
  std::vector<double> load_;
  /// Sparse cnt(p, x) rows, one per slot, append-ordered with duplicates
  /// until coalesced. A cold object's row is empty; clear() keeps the
  /// capacity for slot reuse.
  std::vector<CountRow> counts_;

  // Scratch for CandidatesByFarthest (reused across calls; see above).
  struct Candidate {
    std::int32_t dist;
    NodeId p;
  };
  std::vector<Candidate> candidate_scratch_;
  std::vector<NodeId> candidate_out_;

  // Scratch for CoalesceRow: an open-addressing node -> compacted-
  // position table, re-zeroed per coalesce (reused so steady-state
  // coalescing never allocates). Sized to the row being merged, not to
  // num_nodes — a hot row's distinct-node set is its path union, far
  // smaller than the platform.
  std::vector<NodeId> coalesce_keys_;
  std::vector<std::uint32_t> coalesce_pos_;

  // Load measurement state. Estimate adjustments live in a two-slot
  // window: `cur` collects bounds for relocations in the running interval,
  // `prev` holds the previous interval's (already partially measured)
  // bounds; a tick shifts cur -> prev and drops the old prev, whose
  // effects the new measurement now fully reflects.
  SimTime interval_start_ = 0;
  std::uint32_t serviced_interval_total_ = 0;
  double measured_load_ = 0.0;
  double upper_adjust_cur_ = 0.0;
  double upper_adjust_prev_ = 0.0;
  double lower_adjust_cur_ = 0.0;
  double lower_adjust_prev_ = 0.0;

  // Placement state.
  SimTime epoch_start_ = 0;
  bool offloading_ = false;

  // Heterogeneity / storage.
  double weight_ = 1.0;
  std::int64_t storage_capacity_ = 0;
};

}  // namespace radar::core
