// Per-host protocol state and the replica placement algorithm (Figs. 3-5).
//
// Each hosting server runs one HostAgent. The agent
//   - tracks, per hosted object, how often every platform node appeared on
//     the preference paths of serviced requests (the access counts of
//     Sec. 4.1),
//   - measures its load as the rate of serviced requests per measurement
//     interval (Sec. 2.1 / 6.1),
//   - maintains the upper/lower load estimates that Theorems 1-4 make
//     sound, so it can accept or shed many objects without waiting for
//     fresh measurements,
//   - periodically runs DecidePlacement (Fig. 3) with geo-migration /
//     geo-replication, and Offload (Fig. 5) when stuck above the high
//     watermark, and
//   - answers CreateObj requests from peers (Fig. 4).
//
// The agent is autonomous by construction: it never learns which other
// replicas of its objects exist; everything it decides follows from its own
// counters plus the CreateObj verdicts of candidate recipients.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/params.h"
#include "core/protocol.h"

namespace radar::core {

class HostAgent {
 public:
  /// `params` must outlive the agent.
  HostAgent(NodeId self, std::int32_t num_nodes, const ProtocolParams* params);

  NodeId self() const { return self_; }

  // ---- Heterogeneity (Sec. 2: "weights corresponding to relative power
  // of hosts") and the storage component of the vector load metric
  // (Sec. 2.1) ----

  /// Relative capacity weight (default 1.0). All watermark comparisons
  /// use the *normalized* load (load / weight), so a host with weight 2
  /// accepts twice the absolute load before refusing or offloading.
  void set_weight(double weight);
  double weight() const { return weight_; }

  /// Storage capacity in objects (0 = unlimited). A full host refuses
  /// CreateObj requests that would create a new physical copy (affinity
  /// increments occupy no extra storage).
  void set_storage_capacity(std::int64_t max_objects);
  std::int64_t storage_capacity() const { return storage_capacity_; }
  bool StorageFull() const;

  // ---- Replica state ----

  /// Installs the initial copy of an object (system bootstrap; does not
  /// count as an acquisition for load-estimate purposes).
  void AddInitialReplica(ObjectId x);

  bool HasObject(ObjectId x) const { return Lookup(x) != nullptr; }
  int Affinity(ObjectId x) const;
  /// Hosted object ids in ascending order.
  std::vector<ObjectId> Objects() const;
  std::size_t NumObjects() const { return records_.size(); }

  // ---- Request servicing ----

  /// Records one serviced request for x whose response travels along
  /// `preference_path` (routers from this host to the client's gateway,
  /// inclusive; element 0 must be this host). Increments the access count
  /// of every node on the path (Sec. 4.1) and the load counters.
  void RecordServiced(ObjectId x, const std::vector<NodeId>& preference_path);

  /// Load bookkeeping for a serviced request whose object is no longer
  /// hosted (a request that was in flight when the replica was dropped).
  void RecordServicedUntracked();

  // ---- Load measurement (Sec. 2.1) ----

  /// Closes the current measurement interval at `now`: recomputes the
  /// measured load (requests/sec) and per-object loads, and reverts the
  /// load estimates to measurements once an interval free of acquisitions
  /// (resp. sheddings) has completed.
  void OnMeasurementTick(SimTime now);

  /// Load over the last completed measurement interval (requests/sec).
  double measured_load() const { return measured_load_; }

  /// Upper-limit estimate used when deciding whether to accept objects:
  /// measured load plus 4 * unit-load (Theorems 2/4) for every object
  /// accepted that the measurement does not yet reflect. A bound is aged
  /// out once a full measurement interval has covered the acquisition —
  /// the paper's Sec. 2.1 rule, kept per-acquisition so that a steady
  /// stream of relocations cannot inflate the estimate without bound
  /// (footnote 2).
  double AdmissionLoad() const {
    return measured_load_ + upper_adjust_cur_ + upper_adjust_prev_;
  }

  /// Lower-limit estimate used when deciding whether to keep offloading:
  /// measured load minus the Theorem 1/3 decrease bounds of everything
  /// shed that the measurement does not yet reflect (same aging).
  double OffloadLoad() const {
    return measured_load_ - lower_adjust_cur_ - lower_adjust_prev_;
  }

  /// load(x_s): requests/sec serviced for x over the last interval.
  double ObjectLoad(ObjectId x) const;

  /// load(x_s) / aff(x_s), the value carried in CreateObj messages.
  double UnitLoad(ObjectId x) const;

  bool offloading() const { return offloading_; }

  // ---- Protocol steps ----

  /// Fig. 4: handles an incoming CreateObj. On acceptance the replica (or
  /// affinity unit) exists locally when this returns; the caller is
  /// responsible for notifying the redirector.
  CreateObjResponse HandleCreateObj(CreateObjMethod method, ObjectId x,
                                    double unit_load, SimTime now);

  /// Fig. 3 (+ Fig. 5 when offloading): one placement round at time `now`.
  /// Resets the per-object access counts afterwards.
  PlacementStats RunPlacement(PlacementContext& ctx, SimTime now);

  // ---- Fault reaction (src/fault drives these) ----

  /// The host's process just restarted after a crash at `now`. Its disk —
  /// the replica set and affinities — survived, but every in-memory
  /// counter did not: measured loads, access counts, interval totals, and
  /// the Theorem 1-4 estimate adjustments all restart from zero, exactly
  /// as a freshly booted server would.
  void ResetAfterCrash(SimTime now);

  /// Installs a replica pushed by the replica-floor repairer. Unlike
  /// HandleCreateObj this bypasses the Fig. 4 watermark admission test —
  /// availability repair must not be refusable by a busy host — but still
  /// charges the Theorem 2/4 upper bound so the load estimate stays sound.
  /// Requires the object not hosted and storage not full.
  void AcceptRepairReplica(ObjectId x, double unit_load, SimTime now);

  // ---- Introspection (tests, metrics) ----

  /// Access count cnt(p, x) accumulated since the last placement run.
  std::uint32_t AccessCount(ObjectId x, NodeId p) const;

  /// Unit access rate (requests/sec per affinity unit) x would be judged
  /// by if placement ran at `now`.
  double UnitAccessRate(ObjectId x, SimTime now) const;

 private:
  struct ReplicaRecord {
    int aff = 1;
    /// cnt(p, x): per-node preference-path appearances this epoch.
    std::vector<std::uint32_t> path_counts;
    /// True when path_counts holds any non-zero entry; lets the epoch
    /// reset skip the (mostly untouched) cold objects.
    bool counts_dirty = false;
    /// Requests serviced this measurement interval.
    std::uint32_t serviced_interval = 0;
    /// load(x_s) from the last completed interval (requests/sec).
    double measured_load = 0.0;
    /// When this replica appeared on the host (bounds its epoch length).
    SimTime acquired_at = 0;
    /// This record's position in active_ (maintained on add/drop).
    std::uint32_t active_pos = 0;
  };

  enum class ReduceOutcome { kReduced, kDropped, kDenied };

  ReplicaRecord& RecordOf(ObjectId x);
  const ReplicaRecord* FindRecord(ObjectId x) const;

  /// O(1) record lookup through the dense index (nullptr if not hosted).
  ReplicaRecord* Lookup(ObjectId x) const {
    const auto i = static_cast<std::size_t>(x);
    return i < index_.size() ? index_[i] : nullptr;
  }
  void IndexRecord(ObjectId x, ReplicaRecord* rec);
  void UnindexRecord(ObjectId x);

  /// Fig. 3's ReduceAffinity: decrements affinity (notifying the
  /// redirector) or, at affinity 1, asks the redirector for permission to
  /// drop the replica outright.
  ReduceOutcome ReduceAffinity(PlacementContext& ctx, ObjectId x);

  /// Fig. 5: sheds objects to one underloaded recipient using the
  /// Theorem 1-4 bounds to pace the bulk transfer.
  void Offload(PlacementContext& ctx, PlacementStats& stats, SimTime now);

  /// Seconds of epoch this replica has observed at `now`.
  double EpochSeconds(const ReplicaRecord& rec, SimTime now) const;

  /// Nodes with non-zero access counts for rec, excluding self, in
  /// decreasing order of distance from self (ties: lower id first).
  std::vector<NodeId> CandidatesByFarthest(const ReplicaRecord& rec,
                                           const PlacementContext& ctx) const;

  NodeId self_;
  std::int32_t num_nodes_;
  const ProtocolParams* params_;

  std::unordered_map<ObjectId, ReplicaRecord> records_;
  /// Dense-by-object-id pointers into records_ (value references in an
  /// unordered_map stay valid until erasure). The request hot path resolves
  /// records through this index instead of hashing; records_ itself is kept
  /// as the owner because its iteration order feeds the measurement and
  /// placement passes and must stay exactly as it has always been.
  std::vector<ReplicaRecord*> index_;
  /// Every hosted record, unordered (swap-with-last removal). The
  /// measurement tick and the epoch reset sweep this compact list —
  /// proportional to hosted objects, not to the object-id space — and
  /// both treat records independently, so the order is free to vary.
  std::vector<ReplicaRecord*> active_;

  // Load measurement state. Estimate adjustments live in a two-slot
  // window: `cur` collects bounds for relocations in the running interval,
  // `prev` holds the previous interval's (already partially measured)
  // bounds; a tick shifts cur -> prev and drops the old prev, whose
  // effects the new measurement now fully reflects.
  SimTime interval_start_ = 0;
  std::uint32_t serviced_interval_total_ = 0;
  double measured_load_ = 0.0;
  double upper_adjust_cur_ = 0.0;
  double upper_adjust_prev_ = 0.0;
  double lower_adjust_cur_ = 0.0;
  double lower_adjust_prev_ = 0.0;

  // Placement state.
  SimTime epoch_start_ = 0;
  bool offloading_ = false;

  // Heterogeneity / storage.
  double weight_ = 1.0;
  std::int64_t storage_capacity_ = 0;
};

}  // namespace radar::core
