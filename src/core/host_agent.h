// Per-host protocol state and the replica placement algorithm (Figs. 3-5).
//
// Each hosting server runs one HostAgent. The agent
//   - tracks, per hosted object, how often every platform node appeared on
//     the preference paths of serviced requests (the access counts of
//     Sec. 4.1),
//   - measures its load as the rate of serviced requests per measurement
//     interval (Sec. 2.1 / 6.1),
//   - maintains the upper/lower load estimates that Theorems 1-4 make
//     sound, so it can accept or shed many objects without waiting for
//     fresh measurements,
//   - periodically runs DecidePlacement (Fig. 3) with geo-migration /
//     geo-replication, and Offload (Fig. 5) when stuck above the high
//     watermark, and
//   - answers CreateObj requests from peers (Fig. 4).
//
// The agent is autonomous by construction: it never learns which other
// replicas of its objects exist; everything it decides follows from its own
// counters plus the CreateObj verdicts of candidate recipients.
//
// Storage layout: records live in a SlabMap keyed by object id, and the
// per-interval measurement fields (serviced counts, measured loads, dirty
// flags) plus the cnt(p, x) access-count rows live in parallel arrays
// keyed by the record's slab handle. The measurement tick and the epoch
// reset stream those contiguous arrays instead of chasing one heap node
// per object, and per-object bookkeeping allocates nothing in steady
// state — slots and their count rows are recycled, not freed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/slab_map.h"
#include "common/types.h"
#include "core/params.h"
#include "core/protocol.h"

namespace radar::core {

class HostAgent {
 public:
  /// `params` must outlive the agent.
  HostAgent(NodeId self, std::int32_t num_nodes, const ProtocolParams* params);

  NodeId self() const { return self_; }

  // ---- Heterogeneity (Sec. 2: "weights corresponding to relative power
  // of hosts") and the storage component of the vector load metric
  // (Sec. 2.1) ----

  /// Relative capacity weight (default 1.0). All watermark comparisons
  /// use the *normalized* load (load / weight), so a host with weight 2
  /// accepts twice the absolute load before refusing or offloading.
  void set_weight(double weight);
  double weight() const { return weight_; }

  /// Storage capacity in objects (0 = unlimited). A full host refuses
  /// CreateObj requests that would create a new physical copy (affinity
  /// increments occupy no extra storage).
  void set_storage_capacity(std::int64_t max_objects);
  std::int64_t storage_capacity() const { return storage_capacity_; }
  bool StorageFull() const;

  // ---- Replica state ----

  /// Installs the initial copy of an object (system bootstrap; does not
  /// count as an acquisition for load-estimate purposes).
  void AddInitialReplica(ObjectId x);

  bool HasObject(ObjectId x) const { return records_.Contains(x); }
  int Affinity(ObjectId x) const;
  /// Hosted object ids in ascending order.
  std::vector<ObjectId> Objects() const;
  std::size_t NumObjects() const { return records_.size(); }

  // ---- Request servicing ----

  /// Records one serviced request for x whose response travels along
  /// `preference_path` (routers from this host to the client's gateway,
  /// inclusive; element 0 must be this host). Increments the access count
  /// of every node on the path (Sec. 4.1) and the load counters.
  void RecordServiced(ObjectId x, const std::vector<NodeId>& preference_path);

  /// RecordServiced when x is hosted; otherwise records the untracked
  /// service and returns false. One lookup either way — the request
  /// completion path's single call into the agent.
  bool RecordServicedIfHosted(ObjectId x,
                              const std::vector<NodeId>& preference_path);

  /// Load bookkeeping for a serviced request whose object is no longer
  /// hosted (a request that was in flight when the replica was dropped).
  void RecordServicedUntracked();

  // ---- Load measurement (Sec. 2.1) ----

  /// Closes the current measurement interval at `now`: recomputes the
  /// measured load (requests/sec) and per-object loads, and reverts the
  /// load estimates to measurements once an interval free of acquisitions
  /// (resp. sheddings) has completed.
  void OnMeasurementTick(SimTime now);

  /// Load over the last completed measurement interval (requests/sec).
  double measured_load() const { return measured_load_; }

  /// Upper-limit estimate used when deciding whether to accept objects:
  /// measured load plus 4 * unit-load (Theorems 2/4) for every object
  /// accepted that the measurement does not yet reflect. A bound is aged
  /// out once a full measurement interval has covered the acquisition —
  /// the paper's Sec. 2.1 rule, kept per-acquisition so that a steady
  /// stream of relocations cannot inflate the estimate without bound
  /// (footnote 2).
  double AdmissionLoad() const {
    return measured_load_ + upper_adjust_cur_ + upper_adjust_prev_;
  }

  /// Lower-limit estimate used when deciding whether to keep offloading:
  /// measured load minus the Theorem 1/3 decrease bounds of everything
  /// shed that the measurement does not yet reflect (same aging).
  double OffloadLoad() const {
    return measured_load_ - lower_adjust_cur_ - lower_adjust_prev_;
  }

  /// load(x_s): requests/sec serviced for x over the last interval.
  double ObjectLoad(ObjectId x) const;

  /// load(x_s) / aff(x_s), the value carried in CreateObj messages.
  double UnitLoad(ObjectId x) const;

  bool offloading() const { return offloading_; }

  // ---- Protocol steps ----

  /// Fig. 4: handles an incoming CreateObj. On acceptance the replica (or
  /// affinity unit) exists locally when this returns; the caller is
  /// responsible for notifying the redirector.
  CreateObjResponse HandleCreateObj(CreateObjMethod method, ObjectId x,
                                    double unit_load, SimTime now);

  /// Fig. 3 (+ Fig. 5 when offloading): one placement round at time `now`.
  /// Resets the per-object access counts afterwards.
  PlacementStats RunPlacement(PlacementContext& ctx, SimTime now);

  // ---- Fault reaction (src/fault drives these) ----

  /// The host's process just restarted after a crash at `now`. Its disk —
  /// the replica set and affinities — survived, but every in-memory
  /// counter did not: measured loads, access counts, interval totals, and
  /// the Theorem 1-4 estimate adjustments all restart from zero, exactly
  /// as a freshly booted server would.
  void ResetAfterCrash(SimTime now);

  /// Installs a replica pushed by the replica-floor repairer. Unlike
  /// HandleCreateObj this bypasses the Fig. 4 watermark admission test —
  /// availability repair must not be refusable by a busy host — but still
  /// charges the Theorem 2/4 upper bound so the load estimate stays sound.
  /// Requires the object not hosted and storage not full.
  void AcceptRepairReplica(ObjectId x, double unit_load, SimTime now);

  // ---- Introspection (tests, metrics) ----

  /// Access count cnt(p, x) accumulated since the last placement run.
  std::uint32_t AccessCount(ObjectId x, NodeId p) const;

  /// Unit access rate (requests/sec per affinity unit) x would be judged
  /// by if placement ran at `now`.
  double UnitAccessRate(ObjectId x, SimTime now) const;

 private:
  /// Slab-resident part of a record: the fields placement reads per
  /// object. The per-interval measurement fields live in parallel arrays
  /// (serviced_, load_, counts_dirty_, path_counts_) keyed by the
  /// record's slab handle, so interval sweeps stream flat arrays.
  struct ReplicaRecord {
    int aff = 1;
    /// When this replica appeared on the host (bounds its epoch length).
    SimTime acquired_at = 0;
  };
  using Records = SlabMap<ReplicaRecord>;
  using Handle = Records::Handle;

  enum class ReduceOutcome { kReduced, kDropped, kDenied };

  /// Handle of x's record; checks that x is hosted.
  Handle HandleOf(ObjectId x) const {
    const Handle h = records_.HandleOf(x);
    RADAR_CHECK_MSG(h != Records::kNoHandle, "object not hosted");
    return h;
  }

  /// cnt(p, x) row of the record in slot `h`.
  std::uint32_t* CountsRow(Handle h) {
    return &path_counts_[static_cast<std::size_t>(h) *
                         static_cast<std::size_t>(num_nodes_)];
  }
  const std::uint32_t* CountsRow(Handle h) const {
    return &path_counts_[static_cast<std::size_t>(h) *
                         static_cast<std::size_t>(num_nodes_)];
  }

  /// Creates x's record (and grows the parallel arrays to match the slab).
  Handle InsertRecord(ObjectId x);
  /// Drops x's record, zeroing its parallel-array state for slot reuse.
  void EraseRecord(ObjectId x);

  void RecordServicedAt(Handle h,
                        const std::vector<NodeId>& preference_path);

  /// Fig. 3's ReduceAffinity: decrements affinity (notifying the
  /// redirector) or, at affinity 1, asks the redirector for permission to
  /// drop the replica outright.
  ReduceOutcome ReduceAffinity(PlacementContext& ctx, ObjectId x);

  /// Fig. 5: sheds objects to one underloaded recipient using the
  /// Theorem 1-4 bounds to pace the bulk transfer.
  void Offload(PlacementContext& ctx, PlacementStats& stats, SimTime now);

  /// Seconds of epoch this replica has observed at `now`.
  double EpochSeconds(const ReplicaRecord& rec, SimTime now) const;

  /// Nodes with non-zero access counts in `counts`, excluding self, in
  /// decreasing order of distance from self (ties: lower id first).
  /// Returns a reference to an internal scratch buffer, valid until the
  /// next call on this agent — placement calls it O(objects) times per
  /// round, so it must not allocate.
  const std::vector<NodeId>& CandidatesByFarthest(
      const std::uint32_t* counts, const PlacementContext& ctx);

  NodeId self_;
  std::int32_t num_nodes_;
  const ProtocolParams* params_;

  /// Hosted records, keyed by object id. Slots never relocate, so the
  /// parallel arrays below are keyed by slab handle.
  Records records_;
  /// Requests serviced this measurement interval, per slot.
  std::vector<std::uint32_t> serviced_;
  /// load(x_s) from the last completed interval (requests/sec), per slot.
  std::vector<double> load_;
  /// Non-zero when the slot's count row holds any non-zero entry; lets the
  /// epoch reset skip the (mostly untouched) cold objects.
  std::vector<std::uint8_t> counts_dirty_;
  /// cnt(p, x) rows, num_nodes_ entries per slot.
  std::vector<std::uint32_t> path_counts_;

  // Scratch for CandidatesByFarthest (reused across calls; see above).
  struct Candidate {
    std::int32_t dist;
    NodeId p;
  };
  std::vector<Candidate> candidate_scratch_;
  std::vector<NodeId> candidate_out_;

  // Load measurement state. Estimate adjustments live in a two-slot
  // window: `cur` collects bounds for relocations in the running interval,
  // `prev` holds the previous interval's (already partially measured)
  // bounds; a tick shifts cur -> prev and drops the old prev, whose
  // effects the new measurement now fully reflects.
  SimTime interval_start_ = 0;
  std::uint32_t serviced_interval_total_ = 0;
  double measured_load_ = 0.0;
  double upper_adjust_cur_ = 0.0;
  double upper_adjust_prev_ = 0.0;
  double lower_adjust_cur_ = 0.0;
  double lower_adjust_prev_ = 0.0;

  // Placement state.
  SimTime epoch_start_ = 0;
  bool offloading_ = false;

  // Heterogeneity / storage.
  double weight_ = 1.0;
  std::int64_t storage_capacity_ = 0;
};

}  // namespace radar::core
