// Network-proximity oracle used by the redirector and placement logic.
//
// The paper extracts proximity from router databases; in this library the
// driver adapts net::RoutingTable to this interface, and tests can supply
// synthetic matrices.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace radar::core {

class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Network distance (hops) between two nodes; 0 iff from == to.
  virtual std::int32_t Distance(NodeId from, NodeId to) const = 0;

  /// Dense-row fast path: a contiguous span of num-nodes distances from
  /// `from` (entry [to] == Distance(from, to)), or nullptr when this
  /// oracle has no dense storage. Hot loops (one gateway against many
  /// replicas) hoist the row once instead of paying a virtual call per
  /// candidate. The span must stay valid and constant while the oracle is
  /// alive and unmodified.
  virtual const std::int32_t* DistanceRow(NodeId from) const {
    (void)from;
    return nullptr;
  }
};

/// A dense symmetric distance matrix; handy in tests.
class MatrixDistanceOracle final : public DistanceOracle {
 public:
  explicit MatrixDistanceOracle(std::int32_t num_nodes)
      : num_nodes_(num_nodes),
        matrix_(static_cast<std::size_t>(num_nodes) *
                    static_cast<std::size_t>(num_nodes),
                0) {
    RADAR_CHECK_GT(num_nodes, 0);
  }

  void Set(NodeId a, NodeId b, std::int32_t distance) {
    RADAR_CHECK_GE(distance, 0);
    matrix_[Index(a, b)] = distance;
    matrix_[Index(b, a)] = distance;
  }

  std::int32_t Distance(NodeId from, NodeId to) const override {
    return matrix_[Index(from, to)];
  }

  const std::int32_t* DistanceRow(NodeId from) const override {
    return &matrix_[Index(from, 0)];
  }

 private:
  std::size_t Index(NodeId a, NodeId b) const {
    RADAR_CHECK_GE(a, 0);
    RADAR_CHECK_LT(a, num_nodes_);
    RADAR_CHECK_GE(b, 0);
    RADAR_CHECK_LT(b, num_nodes_);
    return static_cast<std::size_t>(a) * static_cast<std::size_t>(num_nodes_) +
           static_cast<std::size_t>(b);
  }
  std::int32_t num_nodes_;
  std::vector<std::int32_t> matrix_;
};

}  // namespace radar::core
