#include "core/consistency.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace radar::core {

void ObjectCatalog::Register(ObjectId x, ObjectCategory category,
                             NodeId primary, int replica_cap) {
  RADAR_CHECK_GE(x, 0);
  RADAR_CHECK_MSG(!Knows(x), "object already catalogued");
  ObjectMeta meta;
  meta.category = category;
  meta.primary = primary;
  if (replica_cap >= 0) {
    meta.replica_cap = replica_cap;
  } else {
    // Category defaults: unlimited for 1 and 2, migrate-only for 3.
    meta.replica_cap =
        category == ObjectCategory::kNonCommutingUpdates ? 1 : 0;
  }
  meta_.emplace(x, meta);
}

bool ObjectCatalog::Knows(ObjectId x) const {
  return meta_.find(x) != meta_.end();
}

const ObjectMeta& ObjectCatalog::MetaOf(ObjectId x) const {
  const auto it = meta_.find(x);
  RADAR_CHECK_MSG(it != meta_.end(), "object not catalogued");
  return it->second;
}

int ObjectCatalog::ReplicaCap(ObjectId x) const {
  const auto it = meta_.find(x);
  return it != meta_.end() ? it->second.replica_cap : 0;
}

bool ObjectCatalog::MayReplicate(ObjectId x) const {
  return ReplicaCap(x) != 1;
}

UpdateManager::UpdateManager(const ObjectCatalog* catalog,
                             ReplicaSetFn replica_set_fn,
                             PropagationPolicy policy)
    : catalog_(catalog),
      replica_set_fn_(std::move(replica_set_fn)),
      policy_(policy) {
  RADAR_CHECK_NE(catalog_, nullptr);
  RADAR_CHECK_NE(replica_set_fn_, nullptr);
}

UpdateManager::ObjectState& UpdateManager::StateOf(ObjectId x) {
  return states_[x];
}

const UpdateManager::ObjectState* UpdateManager::FindState(ObjectId x) const {
  const auto it = states_.find(x);
  return it != states_.end() ? &it->second : nullptr;
}

void UpdateManager::PushToReplicas(ObjectId x, ObjectState& state,
                                   SimTime now, std::int64_t* deliveries) {
  const NodeId primary = catalog_->MetaOf(x).primary;
  for (const NodeId host : replica_set_fn_(x)) {
    auto& version = state.replica_version[host];
    if (version >= state.primary_version) continue;
    version = state.primary_version;
    state.replica_updated_at[host] = now;
    if (host != primary && on_propagate_) on_propagate_(primary, host, x);
    if (deliveries != nullptr) ++(*deliveries);
  }
  state.batch_pending = false;
}

std::int64_t UpdateManager::ProviderUpdate(ObjectId x, SimTime now) {
  RADAR_CHECK_MSG(catalog_->Knows(x), "update for uncatalogued object");
  ObjectState& state = StateOf(x);
  ++state.primary_version;
  state.primary_updated_at = now;
  // The primary itself is always current.
  const NodeId primary = catalog_->MetaOf(x).primary;
  state.replica_version[primary] = state.primary_version;
  state.replica_updated_at[primary] = now;
  if (policy_ == PropagationPolicy::kImmediate) {
    PushToReplicas(x, state, now, nullptr);
  } else {
    state.batch_pending = true;
  }
  return state.primary_version;
}

std::int64_t UpdateManager::FlushBatch(SimTime now) {
  std::int64_t deliveries = 0;
  // Deterministic order: collect pending ids and sort.
  std::vector<ObjectId> pending;
  for (const auto& [x, state] : states_) {
    if (state.batch_pending) pending.push_back(x);
  }
  std::sort(pending.begin(), pending.end());
  for (const ObjectId x : pending) {
    PushToReplicas(x, StateOf(x), now, &deliveries);
  }
  return deliveries;
}

std::int64_t UpdateManager::VersionAt(ObjectId x, NodeId host) const {
  const ObjectState* state = FindState(x);
  if (state == nullptr) return 0;
  const auto it = state->replica_version.find(host);
  return it != state->replica_version.end() ? it->second : 0;
}

std::int64_t UpdateManager::PrimaryVersion(ObjectId x) const {
  const ObjectState* state = FindState(x);
  return state != nullptr ? state->primary_version : 0;
}

bool UpdateManager::IsConsistent(ObjectId x) const {
  const ObjectState* state = FindState(x);
  if (state == nullptr || state->primary_version == 0) return true;
  for (const NodeId host : replica_set_fn_(x)) {
    const auto it = state->replica_version.find(host);
    const std::int64_t version =
        it != state->replica_version.end() ? it->second : 0;
    if (version < state->primary_version) return false;
  }
  return true;
}

double UpdateManager::StalenessSeconds(ObjectId x, NodeId host,
                                       SimTime now) const {
  const ObjectState* state = FindState(x);
  if (state == nullptr || state->primary_version == 0) return 0.0;
  const auto it = state->replica_version.find(host);
  const std::int64_t version =
      it != state->replica_version.end() ? it->second : 0;
  if (version >= state->primary_version) return 0.0;
  return SimToSeconds(now - state->primary_updated_at);
}

void UpdateManager::RecordCommutingUpdate(ObjectId x, NodeId host,
                                          std::int64_t delta) {
  StateOf(x).commuting_counter[host] += delta;
}

std::int64_t UpdateManager::MergedStatistic(ObjectId x) const {
  const ObjectState* state = FindState(x);
  if (state == nullptr) return 0;
  std::int64_t total = state->archived_statistic;
  for (const auto& [host, count] : state->commuting_counter) total += count;
  return total;
}

void UpdateManager::OnReplicaCreated(ObjectId x, NodeId host, SimTime now) {
  ObjectState& state = StateOf(x);
  // Copies are made from a live replica, so the newcomer starts current.
  state.replica_version[host] = state.primary_version;
  state.replica_updated_at[host] = now;
}

void UpdateManager::OnReplicaDropped(ObjectId x, NodeId host) {
  const auto it = states_.find(x);
  if (it == states_.end()) return;
  ObjectState& state = it->second;
  const auto counter = state.commuting_counter.find(host);
  if (counter != state.commuting_counter.end()) {
    state.archived_statistic += counter->second;
    state.commuting_counter.erase(counter);
  }
  state.replica_version.erase(host);
  state.replica_updated_at.erase(host);
}

std::int64_t UpdateManager::pending_batch_size() const {
  std::int64_t pending = 0;
  for (const auto& [x, state] : states_) {
    if (state.batch_pending) ++pending;
  }
  return pending;
}

ConsistencyBridge::ConsistencyBridge(UpdateManager* manager, ClockFn clock)
    : manager_(manager), clock_(std::move(clock)) {
  RADAR_CHECK_NE(manager_, nullptr);
  RADAR_CHECK_NE(clock_, nullptr);
}

void ConsistencyBridge::OnReplicaAdded(ObjectId x, NodeId host) {
  manager_->OnReplicaCreated(x, host, clock_());
}

void ConsistencyBridge::OnReplicaRemoved(ObjectId x, NodeId host) {
  manager_->OnReplicaDropped(x, host);
}

}  // namespace radar::core
