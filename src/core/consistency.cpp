#include "core/consistency.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace radar::core {

void ObjectCatalog::Register(ObjectId x, ObjectCategory category,
                             NodeId primary, int replica_cap) {
  RADAR_CHECK_GE(x, 0);
  RADAR_CHECK_MSG(!Knows(x), "object already catalogued");
  ObjectMeta meta;
  meta.category = category;
  meta.primary = primary;
  if (replica_cap >= 0) {
    meta.replica_cap = replica_cap;
  } else {
    // Category defaults: unlimited for 1 and 2, migrate-only for 3.
    meta.replica_cap =
        category == ObjectCategory::kNonCommutingUpdates ? 1 : 0;
  }
  meta_.At(meta_.Insert(x)) = meta;
}

bool ObjectCatalog::Knows(ObjectId x) const { return meta_.Contains(x); }

const ObjectMeta& ObjectCatalog::MetaOf(ObjectId x) const {
  const ObjectMeta* meta = meta_.Find(x);
  RADAR_CHECK_MSG(meta != nullptr, "object not catalogued");
  return *meta;
}

int ObjectCatalog::ReplicaCap(ObjectId x) const {
  const ObjectMeta* meta = meta_.Find(x);
  return meta != nullptr ? meta->replica_cap : 0;
}

bool ObjectCatalog::MayReplicate(ObjectId x) const {
  return ReplicaCap(x) != 1;
}

UpdateManager::UpdateManager(const ObjectCatalog* catalog,
                             ReplicaSetFn replica_set_fn,
                             PropagationPolicy policy)
    : catalog_(catalog),
      replica_set_fn_(std::move(replica_set_fn)),
      policy_(policy) {
  RADAR_CHECK_NE(catalog_, nullptr);
  RADAR_CHECK_NE(replica_set_fn_, nullptr);
}

UpdateManager::ObjectState& UpdateManager::StateOf(ObjectId x) {
  ObjectState* state = states_.Find(x);
  if (state != nullptr) return *state;
  return states_.At(states_.Insert(x));
}

const UpdateManager::ObjectState* UpdateManager::FindState(ObjectId x) const {
  return states_.Find(x);
}

UpdateManager::ReplicaInfo* UpdateManager::FindReplica(ObjectState& state,
                                                       NodeId host) {
  for (ReplicaInfo& r : state.replicas) {
    if (r.host == host) return &r;
  }
  return nullptr;
}

const UpdateManager::ReplicaInfo* UpdateManager::FindReplica(
    const ObjectState& state, NodeId host) {
  for (const ReplicaInfo& r : state.replicas) {
    if (r.host == host) return &r;
  }
  return nullptr;
}

UpdateManager::ReplicaInfo& UpdateManager::ReplicaEntry(ObjectState& state,
                                                        NodeId host) {
  const auto it = std::lower_bound(
      state.replicas.begin(), state.replicas.end(), host,
      [](const ReplicaInfo& r, NodeId h) { return r.host < h; });
  if (it != state.replicas.end() && it->host == host) return *it;
  ReplicaInfo fresh;
  fresh.host = host;
  return *state.replicas.insert(it, fresh);
}

void UpdateManager::PushToReplicas(ObjectId x, ObjectState& state,
                                   SimTime now, std::int64_t* deliveries) {
  const NodeId primary = catalog_->MetaOf(x).primary;
  for (const NodeId host : replica_set_fn_(x)) {
    ReplicaInfo& r = ReplicaEntry(state, host);
    if (r.version >= state.primary_version) continue;
    r.version = state.primary_version;
    r.updated_at = now;
    if (host != primary && on_propagate_) on_propagate_(primary, host, x);
    if (deliveries != nullptr) ++(*deliveries);
  }
  state.batch_pending = false;
}

std::int64_t UpdateManager::ProviderUpdate(ObjectId x, SimTime now) {
  RADAR_CHECK_MSG(catalog_->Knows(x), "update for uncatalogued object");
  ObjectState& state = StateOf(x);
  ++state.primary_version;
  state.primary_updated_at = now;
  // The primary itself is always current.
  ReplicaInfo& primary = ReplicaEntry(state, catalog_->MetaOf(x).primary);
  primary.version = state.primary_version;
  primary.updated_at = now;
  if (policy_ == PropagationPolicy::kImmediate) {
    PushToReplicas(x, state, now, nullptr);
  } else {
    state.batch_pending = true;
  }
  return state.primary_version;
}

std::int64_t UpdateManager::FlushBatch(SimTime now) {
  std::int64_t deliveries = 0;
  // Deterministic order: the slab index enumerates live ids ascending.
  std::vector<ObjectId> pending;
  states_.ForEachKeyAscending([&](std::int64_t key, std::uint32_t h) {
    if (states_.At(h).batch_pending) {
      pending.push_back(static_cast<ObjectId>(key));
    }
  });
  for (const ObjectId x : pending) {
    PushToReplicas(x, StateOf(x), now, &deliveries);
  }
  return deliveries;
}

std::int64_t UpdateManager::VersionAt(ObjectId x, NodeId host) const {
  const ObjectState* state = FindState(x);
  if (state == nullptr) return 0;
  const ReplicaInfo* r = FindReplica(*state, host);
  return r != nullptr ? r->version : 0;
}

std::int64_t UpdateManager::PrimaryVersion(ObjectId x) const {
  const ObjectState* state = FindState(x);
  return state != nullptr ? state->primary_version : 0;
}

bool UpdateManager::IsConsistent(ObjectId x) const {
  const ObjectState* state = FindState(x);
  if (state == nullptr || state->primary_version == 0) return true;
  for (const NodeId host : replica_set_fn_(x)) {
    const ReplicaInfo* r = FindReplica(*state, host);
    const std::int64_t version = r != nullptr ? r->version : 0;
    if (version < state->primary_version) return false;
  }
  return true;
}

double UpdateManager::StalenessSeconds(ObjectId x, NodeId host,
                                       SimTime now) const {
  const ObjectState* state = FindState(x);
  if (state == nullptr || state->primary_version == 0) return 0.0;
  const ReplicaInfo* r = FindReplica(*state, host);
  const std::int64_t version = r != nullptr ? r->version : 0;
  if (version >= state->primary_version) return 0.0;
  return SimToSeconds(now - state->primary_updated_at);
}

void UpdateManager::RecordCommutingUpdate(ObjectId x, NodeId host,
                                          std::int64_t delta) {
  ReplicaEntry(StateOf(x), host).commuting += delta;
}

std::int64_t UpdateManager::MergedStatistic(ObjectId x) const {
  const ObjectState* state = FindState(x);
  if (state == nullptr) return 0;
  std::int64_t total = state->archived_statistic;
  for (const ReplicaInfo& r : state->replicas) total += r.commuting;
  return total;
}

void UpdateManager::OnReplicaCreated(ObjectId x, NodeId host, SimTime now) {
  ObjectState& state = StateOf(x);
  // Copies are made from a live replica, so the newcomer starts current.
  ReplicaInfo& r = ReplicaEntry(state, host);
  r.version = state.primary_version;
  r.updated_at = now;
}

void UpdateManager::OnReplicaDropped(ObjectId x, NodeId host) {
  ObjectState* state = states_.Find(x);
  if (state == nullptr) return;
  for (auto it = state->replicas.begin(); it != state->replicas.end(); ++it) {
    if (it->host != host) continue;
    // Fold the dropped replica's counter into the archive so the merged
    // statistic survives the drop (the Sec. 5 requirement).
    state->archived_statistic += it->commuting;
    state->replicas.erase(it);
    return;
  }
}

std::int64_t UpdateManager::pending_batch_size() const {
  std::int64_t pending = 0;
  for (const std::uint32_t h : states_.active()) {
    if (states_.At(h).batch_pending) ++pending;
  }
  return pending;
}

ConsistencyBridge::ConsistencyBridge(UpdateManager* manager, ClockFn clock)
    : manager_(manager), clock_(std::move(clock)) {
  RADAR_CHECK_NE(manager_, nullptr);
  RADAR_CHECK_NE(clock_, nullptr);
}

void ConsistencyBridge::OnReplicaAdded(ObjectId x, NodeId host) {
  manager_->OnReplicaCreated(x, host, clock_());
}

void ConsistencyBridge::OnReplicaRemoved(ObjectId x, NodeId host) {
  manager_->OnReplicaDropped(x, host);
}

}  // namespace radar::core
