// Load-change bounds from Theorems 1-5 (Sec. 3).
//
// These bounds are what lets a host relocate many objects at once: after a
// replication or migration it adjusts its own (and the recipient's) load
// estimate by the theorem bound instead of waiting a measurement interval.
// The placement algorithm (Figs. 4-5) applies exactly these formulas.
#pragma once

#include "common/check.h"

namespace radar::core {

/// Theorem 1: when host i replicates x (source keeps its replica), the load
/// on i may decrease by at most (3/4) * l, where l = load(x_i) before.
inline double ReplicationSourceDecreaseBound(double object_load) {
  RADAR_CHECK_GE(object_load, 0.0);
  return 0.75 * object_load;
}

/// Theorems 2 and 4: the recipient's load may increase by at most
/// 4 * l / aff(x_i) after receiving a replica or migrated copy.
inline double RecipientIncreaseBound(double object_load, int affinity) {
  RADAR_CHECK_GE(object_load, 0.0);
  RADAR_CHECK_GE(affinity, 1);
  return 4.0 * object_load / static_cast<double>(affinity);
}

/// Same bound expressed on the unit load carried in CreateObj messages.
inline double RecipientIncreaseBoundFromUnitLoad(double unit_load) {
  RADAR_CHECK_GE(unit_load, 0.0);
  return 4.0 * unit_load;
}

/// Theorem 3: when host i migrates one affinity unit of x away, the load
/// on i may decrease by at most l/aff + (3/4) * l * (aff-1)/aff.
inline double MigrationSourceDecreaseBound(double object_load, int affinity) {
  RADAR_CHECK_GE(object_load, 0.0);
  RADAR_CHECK_GE(affinity, 1);
  const auto aff = static_cast<double>(affinity);
  return object_load / aff + 0.75 * object_load * (aff - 1.0) / aff;
}

/// Theorem 5: if replication only happens when the unit access count
/// exceeds m, then m/4 lower-bounds every replica's unit access count after
/// replication — hence the stability requirement 4u < m.
inline double PostReplicationAccessLowerBound(double replication_threshold_m) {
  RADAR_CHECK_GE(replication_threshold_m, 0.0);
  return replication_threshold_m / 4.0;
}

}  // namespace radar::core
