#include "core/redirector.h"

#include <algorithm>

#include "common/check.h"

namespace radar::core {

Redirector::Redirector(const DistanceOracle& distance,
                       double distribution_constant, NodeId home_node)
    : distance_(distance),
      distribution_constant_(distribution_constant),
      home_node_(home_node) {
  RADAR_CHECK_GT(distribution_constant, 0.0);
}

void Redirector::Entry::Insert(std::size_t pos, const Replica& r) {
  RADAR_CHECK_LE(pos, count);
  if (count < kInlineReplicas) {
    for (std::size_t i = count; i > pos; --i) {
      inline_storage[i] = inline_storage[i - 1];
    }
    inline_storage[pos] = r;
  } else {
    if (count == kInlineReplicas) {
      overflow.assign(inline_storage, inline_storage + kInlineReplicas);
    }
    overflow.insert(overflow.begin() + static_cast<std::ptrdiff_t>(pos), r);
  }
  ++count;
}

void Redirector::Entry::Erase(std::size_t pos) {
  RADAR_CHECK_LT(pos, count);
  if (count <= kInlineReplicas) {
    for (std::size_t i = pos + 1; i < count; ++i) {
      inline_storage[i - 1] = inline_storage[i];
    }
  } else {
    overflow.erase(overflow.begin() + static_cast<std::ptrdiff_t>(pos));
    if (overflow.size() == kInlineReplicas) {
      // Shrunk back to the inline capacity: move the replicas home and
      // release the heap block so the hot path is one cache line again.
      std::copy(overflow.begin(), overflow.end(), inline_storage);
      overflow = {};
    }
  }
  --count;
}

Redirector::Entry& Redirector::EntryOf(ObjectId x) {
  RADAR_CHECK_GE(x, 0);
  if (static_cast<std::size_t>(x) >= table_.size()) {
    table_.resize(static_cast<std::size_t>(x) + 1);
  }
  return table_[static_cast<std::size_t>(x)];
}

const Redirector::Entry& Redirector::EntryOf(ObjectId x) const {
  RADAR_CHECK_GE(x, 0);
  RADAR_CHECK_LT(static_cast<std::size_t>(x), table_.size());
  return table_[static_cast<std::size_t>(x)];
}

Redirector::Replica* Redirector::FindReplica(Entry& e, NodeId host) {
  for (auto& r : e) {
    if (r.host == host) return &r;
  }
  return nullptr;
}

void Redirector::ResetCounts(Entry& e) {
  // "The redirector resets all request counts to 1 whenever it is notified
  // of any changes to the replica set" (Sec. 3).
  for (auto& r : e) r.rcnt = 1;
  ++replica_set_changes_;
}

void Redirector::RegisterObject(ObjectId x, NodeId initial_host) {
  Entry& e = EntryOf(x);
  RADAR_CHECK_MSG(!e.registered, "object already registered");
  e.registered = true;
  e.Insert(0, Replica{initial_host, 1, 1});
}

bool Redirector::KnowsObject(ObjectId x) const {
  return x >= 0 && static_cast<std::size_t>(x) < table_.size() &&
         table_[static_cast<std::size_t>(x)].registered;
}

NodeId Redirector::ChooseReplica(ObjectId x, NodeId gateway) {
  Entry& e = EntryOf(x);
  RADAR_CHECK_MSG(e.registered, "ChooseReplica on unknown object");
  if (e.empty()) {
    return kInvalidNode;  // every live replica was pruned by a fault
  }
  ++requests_distributed_;

  // A sole replica is both the closest and the least-counted: take it
  // without consulting the distance oracle. Most objects sit in this case
  // for most of a run, so the request path rarely pays for Fig. 2 at all.
  if (e.size() == 1) {
    Replica& only = e.front();
    ++only.rcnt;
    return only.host;
  }

  // p: the replica closest to the requesting gateway (ties: replicas are
  // sorted by host id, so the lowest id wins deterministically).
  // q: the replica with the smallest unit request count rcnt/aff.
  // The gateway's distance row is hoisted out of the loop: one virtual
  // call per request instead of one per replica, and a dense-row oracle
  // (the routing adapter, the test matrices) is read with plain indexing.
  const std::int32_t* row = distance_.DistanceRow(gateway);
  Replica* closest = &e.front();
  Replica* least = &e.front();
  std::int32_t closest_distance =
      row != nullptr ? row[closest->host]
                     : distance_.Distance(gateway, closest->host);
  double least_unit = static_cast<double>(least->rcnt) / least->aff;
  for (std::size_t i = 1; i < e.size(); ++i) {
    Replica& r = e.begin()[i];
    const std::int32_t d =
        row != nullptr ? row[r.host] : distance_.Distance(gateway, r.host);
    if (d < closest_distance) {
      closest_distance = d;
      closest = &r;
    }
    const double unit = static_cast<double>(r.rcnt) / r.aff;
    if (unit < least_unit) {
      least_unit = unit;
      least = &r;
    }
  }

  const double closest_unit =
      static_cast<double>(closest->rcnt) / closest->aff;
  Replica* chosen =
      (closest_unit / distribution_constant_ > least_unit) ? least : closest;
  ++chosen->rcnt;
  return chosen->host;
}

void Redirector::OnReplicaCreated(ObjectId x, NodeId host) {
  Entry& e = EntryOf(x);
  RADAR_CHECK_MSG(e.registered, "creation notice for unknown object");
  if (Replica* r = FindReplica(e, host)) {
    ++r->aff;
  } else {
    const Replica* pos = std::lower_bound(
        e.begin(), e.end(), host,
        [](const Replica& lhs, NodeId h) { return lhs.host < h; });
    e.Insert(static_cast<std::size_t>(pos - e.begin()), Replica{host, 1, 1});
    if (listener_ != nullptr) listener_->OnReplicaAdded(x, host);
  }
  ResetCounts(e);
}

void Redirector::OnAffinityReduced(ObjectId x, NodeId host, int new_affinity) {
  RADAR_CHECK_GE(new_affinity, 1);
  Entry& e = EntryOf(x);
  Replica* r = FindReplica(e, host);
  RADAR_CHECK_MSG(r != nullptr, "affinity notice for unknown replica");
  RADAR_CHECK_LT(new_affinity, r->aff);
  r->aff = new_affinity;
  ResetCounts(e);
}

bool Redirector::RequestDrop(ObjectId x, NodeId host) {
  Entry& e = EntryOf(x);
  Replica* r = FindReplica(e, host);
  RADAR_CHECK_MSG(r != nullptr, "drop request for unknown replica");
  RADAR_CHECK_MSG(r->aff == 1, "drop request with affinity > 1");
  if (e.size() <= static_cast<std::size_t>(min_replicas_)) {
    // Never delete the last replica (Sec. 4.2.1); with a replica floor,
    // never delete below it.
    return false;
  }
  // Remove before granting: the recorded set stays a subset of physical
  // replicas, so requests are never routed to a vanishing copy.
  e.Erase(static_cast<std::size_t>(r - e.begin()));
  if (listener_ != nullptr) listener_->OnReplicaRemoved(x, host);
  ResetCounts(e);
  return true;
}

int Redirector::PruneHost(NodeId host) {
  int pruned = 0;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    Entry& e = table_[i];
    if (!e.registered) continue;
    Replica* r = FindReplica(e, host);
    if (r == nullptr) continue;
    e.Erase(static_cast<std::size_t>(r - e.begin()));
    if (listener_ != nullptr) {
      listener_->OnReplicaRemoved(static_cast<ObjectId>(i), host);
    }
    ResetCounts(e);
    ++pruned;
  }
  return pruned;
}

void Redirector::RestoreReplica(ObjectId x, NodeId host, int affinity) {
  RADAR_CHECK_GE(affinity, 1);
  Entry& e = EntryOf(x);
  RADAR_CHECK_MSG(e.registered, "restore notice for unknown object");
  RADAR_CHECK_MSG(FindReplica(e, host) == nullptr,
                  "restore notice for a replica already recorded");
  const Replica* pos = std::lower_bound(
      e.begin(), e.end(), host,
      [](const Replica& lhs, NodeId h) { return lhs.host < h; });
  e.Insert(static_cast<std::size_t>(pos - e.begin()),
           Replica{host, 1, affinity});
  if (listener_ != nullptr) listener_->OnReplicaAdded(x, host);
  ResetCounts(e);
}

void Redirector::set_min_replicas(int k) {
  RADAR_CHECK_GE(k, 1);
  min_replicas_ = k;
}

std::vector<NodeId> Redirector::ReplicaHosts(ObjectId x) const {
  const Entry& e = EntryOf(x);
  std::vector<NodeId> hosts;
  hosts.reserve(e.size());
  for (const auto& r : e) hosts.push_back(r.host);
  return hosts;
}

int Redirector::ReplicaCount(ObjectId x) const {
  return static_cast<int>(EntryOf(x).size());
}

int Redirector::TotalAffinity(ObjectId x) const {
  int total = 0;
  for (const auto& r : EntryOf(x)) total += r.aff;
  return total;
}

int Redirector::AffinityOf(ObjectId x, NodeId host) const {
  for (const auto& r : EntryOf(x)) {
    if (r.host == host) return r.aff;
  }
  return 0;
}

std::int64_t Redirector::RequestCountOf(ObjectId x, NodeId host) const {
  for (const auto& r : EntryOf(x)) {
    if (r.host == host) return r.rcnt;
  }
  return 0;
}

std::vector<ObjectId> Redirector::Objects() const {
  std::vector<ObjectId> out;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (table_[i].registered) out.push_back(static_cast<ObjectId>(i));
  }
  return out;
}

std::pair<std::int64_t, std::int64_t> Redirector::ReplicaAndObjectTotals()
    const {
  std::int64_t replicas = 0;
  std::int64_t objects = 0;
  for (const Entry& e : table_) {
    if (!e.registered) continue;
    replicas += static_cast<std::int64_t>(e.size());
    ++objects;
  }
  return {replicas, objects};
}

RedirectorGroup::RedirectorGroup(const DistanceOracle& distance,
                                 double distribution_constant,
                                 std::vector<NodeId> homes) {
  RADAR_CHECK(!homes.empty());
  redirectors_.reserve(homes.size());
  for (const NodeId home : homes) {
    redirectors_.emplace_back(distance, distribution_constant, home);
  }
}

Redirector& RedirectorGroup::For(ObjectId x) {
  RADAR_CHECK_GE(x, 0);
  // The paper's default deployment runs one redirector; skip the partition
  // arithmetic (a hardware divide) entirely in that case.
  if (redirectors_.size() == 1) return redirectors_.front();
  // Fibonacci-hash the object id for an even partition even when ids are
  // assigned contiguously.
  const auto h = static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL;
  return redirectors_[static_cast<std::size_t>(
      h % static_cast<std::uint64_t>(redirectors_.size()))];
}

const Redirector& RedirectorGroup::For(ObjectId x) const {
  return const_cast<RedirectorGroup*>(this)->For(x);
}

Redirector& RedirectorGroup::At(int index) {
  RADAR_CHECK_GE(index, 0);
  RADAR_CHECK_LT(index, size());
  return redirectors_[static_cast<std::size_t>(index)];
}

std::pair<std::int64_t, std::int64_t> RedirectorGroup::TotalReplicasAndObjects()
    const {
  // One pass over each redirector's table: no materialized Objects()
  // vector, no per-object table lookups.
  std::int64_t replicas = 0;
  std::int64_t objects = 0;
  for (const auto& r : redirectors_) {
    const auto [rep, obj] = r.ReplicaAndObjectTotals();
    replicas += rep;
    objects += obj;
  }
  return {replicas, objects};
}

}  // namespace radar::core
