#include "core/redirector.h"

#include <algorithm>

#include "common/check.h"

namespace radar::core {

Redirector::Redirector(const DistanceOracle& distance,
                       double distribution_constant, NodeId home_node)
    : distance_(distance),
      distribution_constant_(distribution_constant),
      home_node_(home_node) {
  RADAR_CHECK_GT(distribution_constant, 0.0);
}

Redirector::Entry& Redirector::EntryOf(ObjectId x) {
  RADAR_CHECK_GE(x, 0);
  if (static_cast<std::size_t>(x) >= table_.size()) {
    table_.resize(static_cast<std::size_t>(x) + 1);
  }
  return table_[static_cast<std::size_t>(x)];
}

const Redirector::Entry& Redirector::EntryOf(ObjectId x) const {
  RADAR_CHECK_GE(x, 0);
  RADAR_CHECK_LT(static_cast<std::size_t>(x), table_.size());
  return table_[static_cast<std::size_t>(x)];
}

Redirector::Replica* Redirector::FindReplica(Entry& e, NodeId host) {
  for (auto& r : e.replicas) {
    if (r.host == host) return &r;
  }
  return nullptr;
}

void Redirector::ResetCounts(Entry& e) {
  // "The redirector resets all request counts to 1 whenever it is notified
  // of any changes to the replica set" (Sec. 3).
  for (auto& r : e.replicas) r.rcnt = 1;
  ++replica_set_changes_;
}

void Redirector::RegisterObject(ObjectId x, NodeId initial_host) {
  Entry& e = EntryOf(x);
  RADAR_CHECK_MSG(e.replicas.empty(), "object already registered");
  e.replicas.push_back(Replica{initial_host, 1, 1});
}

bool Redirector::KnowsObject(ObjectId x) const {
  return x >= 0 && static_cast<std::size_t>(x) < table_.size() &&
         !table_[static_cast<std::size_t>(x)].replicas.empty();
}

NodeId Redirector::ChooseReplica(ObjectId x, NodeId gateway) {
  Entry& e = EntryOf(x);
  RADAR_CHECK_MSG(!e.replicas.empty(), "ChooseReplica on unknown object");
  ++requests_distributed_;

  // p: the replica closest to the requesting gateway (ties: replicas are
  // sorted by host id, so the lowest id wins deterministically).
  // q: the replica with the smallest unit request count rcnt/aff.
  Replica* closest = &e.replicas.front();
  Replica* least = &e.replicas.front();
  std::int32_t closest_distance = distance_.Distance(gateway, closest->host);
  double least_unit = static_cast<double>(least->rcnt) / least->aff;
  for (std::size_t i = 1; i < e.replicas.size(); ++i) {
    Replica& r = e.replicas[i];
    const std::int32_t d = distance_.Distance(gateway, r.host);
    if (d < closest_distance) {
      closest_distance = d;
      closest = &r;
    }
    const double unit = static_cast<double>(r.rcnt) / r.aff;
    if (unit < least_unit) {
      least_unit = unit;
      least = &r;
    }
  }

  const double closest_unit =
      static_cast<double>(closest->rcnt) / closest->aff;
  Replica* chosen =
      (closest_unit / distribution_constant_ > least_unit) ? least : closest;
  ++chosen->rcnt;
  return chosen->host;
}

void Redirector::OnReplicaCreated(ObjectId x, NodeId host) {
  Entry& e = EntryOf(x);
  RADAR_CHECK_MSG(!e.replicas.empty(), "creation notice for unknown object");
  if (Replica* r = FindReplica(e, host)) {
    ++r->aff;
  } else {
    const auto pos = std::lower_bound(
        e.replicas.begin(), e.replicas.end(), host,
        [](const Replica& lhs, NodeId h) { return lhs.host < h; });
    e.replicas.insert(pos, Replica{host, 1, 1});
    if (listener_ != nullptr) listener_->OnReplicaAdded(x, host);
  }
  ResetCounts(e);
}

void Redirector::OnAffinityReduced(ObjectId x, NodeId host, int new_affinity) {
  RADAR_CHECK_GE(new_affinity, 1);
  Entry& e = EntryOf(x);
  Replica* r = FindReplica(e, host);
  RADAR_CHECK_MSG(r != nullptr, "affinity notice for unknown replica");
  RADAR_CHECK_LT(new_affinity, r->aff);
  r->aff = new_affinity;
  ResetCounts(e);
}

bool Redirector::RequestDrop(ObjectId x, NodeId host) {
  Entry& e = EntryOf(x);
  Replica* r = FindReplica(e, host);
  RADAR_CHECK_MSG(r != nullptr, "drop request for unknown replica");
  RADAR_CHECK_MSG(r->aff == 1, "drop request with affinity > 1");
  if (e.replicas.size() <= 1) {
    return false;  // never delete the last replica (Sec. 4.2.1)
  }
  // Remove before granting: the recorded set stays a subset of physical
  // replicas, so requests are never routed to a vanishing copy.
  e.replicas.erase(e.replicas.begin() + (r - e.replicas.data()));
  if (listener_ != nullptr) listener_->OnReplicaRemoved(x, host);
  ResetCounts(e);
  return true;
}

std::vector<NodeId> Redirector::ReplicaHosts(ObjectId x) const {
  const Entry& e = EntryOf(x);
  std::vector<NodeId> hosts;
  hosts.reserve(e.replicas.size());
  for (const auto& r : e.replicas) hosts.push_back(r.host);
  return hosts;
}

int Redirector::ReplicaCount(ObjectId x) const {
  return static_cast<int>(EntryOf(x).replicas.size());
}

int Redirector::TotalAffinity(ObjectId x) const {
  int total = 0;
  for (const auto& r : EntryOf(x).replicas) total += r.aff;
  return total;
}

int Redirector::AffinityOf(ObjectId x, NodeId host) const {
  for (const auto& r : EntryOf(x).replicas) {
    if (r.host == host) return r.aff;
  }
  return 0;
}

std::int64_t Redirector::RequestCountOf(ObjectId x, NodeId host) const {
  for (const auto& r : EntryOf(x).replicas) {
    if (r.host == host) return r.rcnt;
  }
  return 0;
}

std::vector<ObjectId> Redirector::Objects() const {
  std::vector<ObjectId> out;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (!table_[i].replicas.empty()) out.push_back(static_cast<ObjectId>(i));
  }
  return out;
}

RedirectorGroup::RedirectorGroup(const DistanceOracle& distance,
                                 double distribution_constant,
                                 std::vector<NodeId> homes) {
  RADAR_CHECK(!homes.empty());
  redirectors_.reserve(homes.size());
  for (const NodeId home : homes) {
    redirectors_.emplace_back(distance, distribution_constant, home);
  }
}

Redirector& RedirectorGroup::For(ObjectId x) {
  RADAR_CHECK_GE(x, 0);
  // Fibonacci-hash the object id for an even partition even when ids are
  // assigned contiguously.
  const auto h = static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL;
  return redirectors_[static_cast<std::size_t>(
      h % static_cast<std::uint64_t>(redirectors_.size()))];
}

const Redirector& RedirectorGroup::For(ObjectId x) const {
  return const_cast<RedirectorGroup*>(this)->For(x);
}

Redirector& RedirectorGroup::At(int index) {
  RADAR_CHECK_GE(index, 0);
  RADAR_CHECK_LT(index, size());
  return redirectors_[static_cast<std::size_t>(index)];
}

std::pair<std::int64_t, std::int64_t> RedirectorGroup::TotalReplicasAndObjects()
    const {
  std::int64_t replicas = 0;
  std::int64_t objects = 0;
  for (const auto& r : redirectors_) {
    for (const ObjectId x : r.Objects()) {
      replicas += r.ReplicaCount(x);
      ++objects;
    }
  }
  return {replicas, objects};
}

}  // namespace radar::core
