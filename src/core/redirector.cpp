#include "core/redirector.h"

#include <algorithm>

#include "common/check.h"

namespace radar::core {

Redirector::Redirector(const DistanceOracle& distance,
                       double distribution_constant, NodeId home_node)
    : distance_(distance),
      distribution_constant_(distribution_constant),
      home_node_(home_node) {
  RADAR_CHECK_GT(distribution_constant, 0.0);
}

Redirector::EntryHead& Redirector::HeadOf(ObjectId x) {
  RADAR_CHECK_GE(x, 0);
  if (static_cast<std::size_t>(x) >= table_.size()) {
    table_.resize(static_cast<std::size_t>(x) + 1);
    aff0_.resize(table_.size(), 1);
  }
  return table_[static_cast<std::size_t>(x)];
}

const Redirector::EntryHead& Redirector::HeadOf(ObjectId x) const {
  RADAR_CHECK_GE(x, 0);
  RADAR_CHECK_LT(static_cast<std::size_t>(x), table_.size());
  return table_[static_cast<std::size_t>(x)];
}

std::uint32_t Redirector::AcquireSpill() {
  if (!spill_free_.empty()) {
    const std::uint32_t s = spill_free_.back();
    spill_free_.pop_back();
    return s;
  }
  spill_pool_.emplace_back();
  return static_cast<std::uint32_t>(spill_pool_.size() - 1);
}

void Redirector::ReleaseSpill(std::int64_t slot) {
  SpillSet& s = spill_pool_[static_cast<std::size_t>(slot)];
  // clear() keeps the vectors' capacity: a recycled set re-spills without
  // touching the allocator.
  s.hosts.clear();
  s.rcnts.clear();
  s.affs.clear();
  spill_free_.push_back(static_cast<std::uint32_t>(slot));
}

std::size_t Redirector::FindReplica(ObjectId x, NodeId host) const {
  const EntryHead& e = HeadOf(x);
  const std::uint32_t n = Count(e);
  if (n == 0) return kNpos;
  if (n == 1) return e.host0 == host ? 0 : kNpos;
  const SpillSet& s = SpillOf(e);
  for (std::size_t i = 0; i < n; ++i) {
    if (s.hosts[i] == host) return i;
  }
  return kNpos;
}

void Redirector::InsertReplica(ObjectId x, NodeId host, std::int64_t rcnt,
                               int aff) {
  EntryHead& e = HeadOf(x);
  const std::uint32_t n = Count(e);
  if (n == 0) {
    e.host0 = host;
    e.rcnt_or_spill = rcnt;
    aff0_[static_cast<std::size_t>(x)] = aff;
    SetCount(e, 1);
    return;
  }
  if (n == 1) {
    // Crossing 1 -> 2: move the inline replica into a pooled spill set
    // together with the newcomer, sorted by host id.
    RADAR_CHECK_NE(e.host0, host);
    const std::uint32_t slot = AcquireSpill();
    SpillSet& s = spill_pool_[slot];
    const bool new_first = host < e.host0;
    s.hosts = {new_first ? host : e.host0, new_first ? e.host0 : host};
    s.rcnts = {new_first ? rcnt : e.rcnt_or_spill,
               new_first ? e.rcnt_or_spill : rcnt};
    const int aff0 = aff0_[static_cast<std::size_t>(x)];
    s.affs = {new_first ? aff : aff0, new_first ? aff0 : aff};
    e.rcnt_or_spill = slot;
    SetCount(e, 2);
    return;
  }
  SpillSet& s = SpillOf(e);
  const auto pos = static_cast<std::size_t>(
      std::lower_bound(s.hosts.begin(), s.hosts.end(), host) -
      s.hosts.begin());
  s.hosts.insert(s.hosts.begin() + static_cast<std::ptrdiff_t>(pos), host);
  s.rcnts.insert(s.rcnts.begin() + static_cast<std::ptrdiff_t>(pos), rcnt);
  s.affs.insert(s.affs.begin() + static_cast<std::ptrdiff_t>(pos), aff);
  SetCount(e, n + 1);
}

void Redirector::EraseReplica(ObjectId x, std::size_t pos) {
  EntryHead& e = HeadOf(x);
  const std::uint32_t n = Count(e);
  RADAR_CHECK_LT(pos, n);
  if (n == 1) {
    SetCount(e, 0);
    return;
  }
  SpillSet& s = SpillOf(e);
  if (n == 2) {
    // Shrunk back to a sole replica: move the survivor inline and recycle
    // the spill set, so the request path is one 16-byte head again.
    const std::size_t keep = 1 - pos;
    const NodeId host = s.hosts[keep];
    const std::int64_t rcnt = s.rcnts[keep];
    const int aff = s.affs[keep];
    ReleaseSpill(e.rcnt_or_spill);
    e.host0 = host;
    e.rcnt_or_spill = rcnt;
    aff0_[static_cast<std::size_t>(x)] = aff;
    SetCount(e, 1);
    return;
  }
  s.hosts.erase(s.hosts.begin() + static_cast<std::ptrdiff_t>(pos));
  s.rcnts.erase(s.rcnts.begin() + static_cast<std::ptrdiff_t>(pos));
  s.affs.erase(s.affs.begin() + static_cast<std::ptrdiff_t>(pos));
  SetCount(e, n - 1);
}

void Redirector::ResetCounts(EntryHead& e) {
  // "The redirector resets all request counts to 1 whenever it is notified
  // of any changes to the replica set" (Sec. 3).
  const std::uint32_t n = Count(e);
  if (n == 1) {
    e.rcnt_or_spill = 1;
  } else if (n >= 2) {
    SpillSet& s = SpillOf(e);
    std::fill(s.rcnts.begin(), s.rcnts.end(), std::int64_t{1});
  }
  ++replica_set_changes_;
}

void Redirector::RegisterObject(ObjectId x, NodeId initial_host) {
  EntryHead& e = HeadOf(x);
  RADAR_CHECK_MSG(!Registered(e), "object already registered");
  e.count_reg |= kRegisteredBit;
  InsertReplica(x, initial_host, 1, 1);
}

bool Redirector::KnowsObject(ObjectId x) const {
  return x >= 0 && static_cast<std::size_t>(x) < table_.size() &&
         Registered(table_[static_cast<std::size_t>(x)]);
}

// RADAR_HOT: replica choice (Fig. 2, per request)
NodeId Redirector::ChooseFromSpill(EntryHead& e, NodeId gateway,
                                   const std::int32_t* row) {
  // p: the replica closest to the requesting gateway (ties: replicas are
  // sorted by host id, so the lowest id wins deterministically).
  // q: the replica with the smallest unit request count rcnt/aff.
  // The spill set's SoA vectors are scanned with plain indexing — no
  // pointer chase, and a dense-row oracle costs one virtual call total.
  SpillSet& s = SpillOf(e);
  const std::uint32_t n = Count(e);
  const NodeId* hosts = s.hosts.data();
  std::int64_t* rcnts = s.rcnts.data();
  const int* affs = s.affs.data();
  std::size_t closest = 0;
  std::size_t least = 0;
  std::int32_t closest_distance =
      row != nullptr ? row[hosts[0]] : distance_.Distance(gateway, hosts[0]);
  double least_unit = static_cast<double>(rcnts[0]) / affs[0];
  for (std::size_t i = 1; i < n; ++i) {
    const std::int32_t d =
        row != nullptr ? row[hosts[i]] : distance_.Distance(gateway, hosts[i]);
    if (d < closest_distance) {
      closest_distance = d;
      closest = i;
    }
    const double unit = static_cast<double>(rcnts[i]) / affs[i];
    if (unit < least_unit) {
      least_unit = unit;
      least = i;
    }
  }
  const double closest_unit =
      static_cast<double>(rcnts[closest]) / affs[closest];
  const std::size_t chosen =
      (closest_unit / distribution_constant_ > least_unit) ? least : closest;
  ++rcnts[chosen];
  return hosts[chosen];
}

NodeId Redirector::ChooseReplica(ObjectId x, NodeId gateway) {
  EntryHead& e = HeadOf(x);
  RADAR_CHECK_MSG(Registered(e), "ChooseReplica on unknown object");
  const std::uint32_t n = Count(e);
  if (n == 0) {
    return kInvalidNode;  // every live replica was pruned by a fault
  }
  ++requests_distributed_;

  // A sole replica is both the closest and the least-counted: take it
  // without consulting the distance oracle. Most objects sit in this case
  // for most of a run, so the request path rarely pays for Fig. 2 at all.
  if (n == 1) {
    ++e.rcnt_or_spill;
    return e.host0;
  }
  return ChooseFromSpill(e, gateway, distance_.DistanceRow(gateway));
}

NodeId Redirector::ChooseReplica(ObjectId x, NodeId gateway,
                                 const std::int32_t* row) {
  EntryHead& e = HeadOf(x);
  RADAR_CHECK_MSG(Registered(e), "ChooseReplica on unknown object");
  const std::uint32_t n = Count(e);
  if (n == 0) {
    return kInvalidNode;  // every live replica was pruned by a fault
  }
  ++requests_distributed_;
  if (n == 1) {
    ++e.rcnt_or_spill;
    return e.host0;
  }
  return ChooseFromSpill(e, gateway, row);
}
// RADAR_HOT_END

void Redirector::OnReplicaCreated(ObjectId x, NodeId host) {
  EntryHead& e = HeadOf(x);
  RADAR_CHECK_MSG(Registered(e), "creation notice for unknown object");
  const std::size_t pos = FindReplica(x, host);
  if (pos != kNpos) {
    if (Count(e) == 1) {
      ++aff0_[static_cast<std::size_t>(x)];
    } else {
      ++SpillOf(e).affs[pos];
    }
  } else {
    InsertReplica(x, host, 1, 1);
    if (listener_ != nullptr) listener_->OnReplicaAdded(x, host);
  }
  ResetCounts(e);
}

void Redirector::OnAffinityReduced(ObjectId x, NodeId host, int new_affinity) {
  RADAR_CHECK_GE(new_affinity, 1);
  EntryHead& e = HeadOf(x);
  const std::size_t pos = FindReplica(x, host);
  RADAR_CHECK_MSG(pos != kNpos, "affinity notice for unknown replica");
  int& aff = Count(e) == 1 ? aff0_[static_cast<std::size_t>(x)]
                           : SpillOf(e).affs[pos];
  RADAR_CHECK_LT(new_affinity, aff);
  aff = new_affinity;
  ResetCounts(e);
}

bool Redirector::RequestDrop(ObjectId x, NodeId host) {
  EntryHead& e = HeadOf(x);
  const std::size_t pos = FindReplica(x, host);
  RADAR_CHECK_MSG(pos != kNpos, "drop request for unknown replica");
  const int aff = Count(e) == 1 ? aff0_[static_cast<std::size_t>(x)]
                                : SpillOf(e).affs[pos];
  RADAR_CHECK_MSG(aff == 1, "drop request with affinity > 1");
  if (Count(e) <= static_cast<std::uint32_t>(min_replicas_)) {
    // Never delete the last replica (Sec. 4.2.1); with a replica floor,
    // never delete below it.
    return false;
  }
  // Remove before granting: the recorded set stays a subset of physical
  // replicas, so requests are never routed to a vanishing copy.
  EraseReplica(x, pos);
  if (listener_ != nullptr) listener_->OnReplicaRemoved(x, host);
  ResetCounts(e);
  return true;
}

int Redirector::PruneHost(NodeId host) {
  int pruned = 0;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    EntryHead& e = table_[i];
    if (!Registered(e)) continue;
    const auto x = static_cast<ObjectId>(i);
    const std::size_t pos = FindReplica(x, host);
    if (pos == kNpos) continue;
    EraseReplica(x, pos);
    if (listener_ != nullptr) listener_->OnReplicaRemoved(x, host);
    ResetCounts(e);
    ++pruned;
  }
  return pruned;
}

void Redirector::RestoreReplica(ObjectId x, NodeId host, int affinity) {
  RADAR_CHECK_GE(affinity, 1);
  EntryHead& e = HeadOf(x);
  RADAR_CHECK_MSG(Registered(e), "restore notice for unknown object");
  RADAR_CHECK_MSG(FindReplica(x, host) == kNpos,
                  "restore notice for a replica already recorded");
  InsertReplica(x, host, 1, affinity);
  if (listener_ != nullptr) listener_->OnReplicaAdded(x, host);
  ResetCounts(e);
}

void Redirector::set_min_replicas(int k) {
  RADAR_CHECK_GE(k, 1);
  min_replicas_ = k;
}

std::vector<NodeId> Redirector::ReplicaHosts(ObjectId x) const {
  const EntryHead& e = HeadOf(x);
  const std::uint32_t n = Count(e);
  std::vector<NodeId> hosts;
  hosts.reserve(n);
  if (n == 1) {
    hosts.push_back(e.host0);
  } else if (n >= 2) {
    const SpillSet& s = SpillOf(e);
    hosts.assign(s.hosts.begin(), s.hosts.end());
  }
  return hosts;
}

int Redirector::ReplicaCount(ObjectId x) const {
  return static_cast<int>(Count(HeadOf(x)));
}

int Redirector::TotalAffinity(ObjectId x) const {
  const EntryHead& e = HeadOf(x);
  const std::uint32_t n = Count(e);
  if (n == 0) return 0;
  if (n == 1) return aff0_[static_cast<std::size_t>(x)];
  const SpillSet& s = SpillOf(e);
  int total = 0;
  for (std::size_t i = 0; i < n; ++i) total += s.affs[i];
  return total;
}

int Redirector::AffinityOf(ObjectId x, NodeId host) const {
  const std::size_t pos = FindReplica(x, host);
  if (pos == kNpos) return 0;
  const EntryHead& e = HeadOf(x);
  return Count(e) == 1 ? aff0_[static_cast<std::size_t>(x)]
                       : SpillOf(e).affs[pos];
}

std::int64_t Redirector::RequestCountOf(ObjectId x, NodeId host) const {
  const std::size_t pos = FindReplica(x, host);
  if (pos == kNpos) return 0;
  const EntryHead& e = HeadOf(x);
  return Count(e) == 1 ? e.rcnt_or_spill : SpillOf(e).rcnts[pos];
}

std::vector<ObjectId> Redirector::Objects() const {
  std::vector<ObjectId> out;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (Registered(table_[i])) out.push_back(static_cast<ObjectId>(i));
  }
  return out;
}

std::pair<std::int64_t, std::int64_t> Redirector::ReplicaAndObjectTotals()
    const {
  // One linear pass over the 16-byte heads; the census never touches the
  // spill pool.
  std::int64_t replicas = 0;
  std::int64_t objects = 0;
  for (const EntryHead& e : table_) {
    if (!Registered(e)) continue;
    replicas += static_cast<std::int64_t>(Count(e));
    ++objects;
  }
  return {replicas, objects};
}

RedirectorGroup::RedirectorGroup(const DistanceOracle& distance,
                                 double distribution_constant,
                                 std::vector<NodeId> homes) {
  RADAR_CHECK(!homes.empty());
  redirectors_.reserve(homes.size());
  for (const NodeId home : homes) {
    redirectors_.emplace_back(distance, distribution_constant, home);
  }
}

Redirector& RedirectorGroup::For(ObjectId x) {
  RADAR_CHECK_GE(x, 0);
  // The paper's default deployment runs one redirector; skip the partition
  // arithmetic (a hardware divide) entirely in that case.
  if (redirectors_.size() == 1) return redirectors_.front();
  // Fibonacci-hash the object id for an even partition even when ids are
  // assigned contiguously.
  const auto h = static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL;
  return redirectors_[static_cast<std::size_t>(
      h % static_cast<std::uint64_t>(redirectors_.size()))];
}

const Redirector& RedirectorGroup::For(ObjectId x) const {
  return const_cast<RedirectorGroup*>(this)->For(x);
}

Redirector& RedirectorGroup::At(int index) {
  RADAR_CHECK_GE(index, 0);
  RADAR_CHECK_LT(index, size());
  return redirectors_[static_cast<std::size_t>(index)];
}

std::pair<std::int64_t, std::int64_t> RedirectorGroup::TotalReplicasAndObjects()
    const {
  // One pass over each redirector's table: no materialized Objects()
  // vector, no per-object table lookups.
  std::int64_t replicas = 0;
  std::int64_t objects = 0;
  for (const auto& r : redirectors_) {
    const auto [rep, obj] = r.ReplicaAndObjectTotals();
    replicas += rep;
    objects += obj;
  }
  return {replicas, objects};
}

}  // namespace radar::core
