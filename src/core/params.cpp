#include "core/params.h"

#include "common/check.h"

namespace radar::core {

bool ProtocolParams::IsStable() const {
  return low_watermark < high_watermark &&
         4.0 * deletion_threshold_u < replication_threshold_m &&
         repl_ratio < migr_ratio && migr_ratio > 0.5 &&
         distribution_constant > 1.0;
}

void ProtocolParams::CheckStructure() const {
  RADAR_CHECK(deletion_threshold_u >= 0.0);
  RADAR_CHECK(replication_threshold_m > 0.0);
  RADAR_CHECK(migr_ratio > 0.0 && migr_ratio <= 1.0);
  RADAR_CHECK(repl_ratio > 0.0 && repl_ratio <= 1.0);
  RADAR_CHECK(high_watermark > 0.0);
  RADAR_CHECK(low_watermark > 0.0);
  RADAR_CHECK(distribution_constant > 0.0);
  RADAR_CHECK(placement_interval > 0);
  RADAR_CHECK(measurement_interval > 0);
}

}  // namespace radar::core
