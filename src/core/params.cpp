#include "core/params.h"

#include "common/check.h"

namespace radar::core {

bool ProtocolParams::IsStable() const {
  return low_watermark < high_watermark &&
         4.0 * deletion_threshold_u < replication_threshold_m &&
         repl_ratio < migr_ratio && migr_ratio > 0.5 &&
         distribution_constant > 1.0;
}

void ProtocolParams::CheckStructure() const {
  RADAR_CHECK_GE(deletion_threshold_u, 0.0);
  RADAR_CHECK_GT(replication_threshold_m, 0.0);
  RADAR_CHECK_GT(migr_ratio, 0.0);
  RADAR_CHECK_LE(migr_ratio, 1.0);
  RADAR_CHECK_GT(repl_ratio, 0.0);
  RADAR_CHECK_LE(repl_ratio, 1.0);
  RADAR_CHECK_GT(high_watermark, 0.0);
  RADAR_CHECK_GT(low_watermark, 0.0);
  RADAR_CHECK_GT(distribution_constant, 0.0);
  RADAR_CHECK_GT(placement_interval, 0);
  RADAR_CHECK_GT(measurement_interval, 0);
}

}  // namespace radar::core
