// The redirector: request distribution and replica-set registry (Fig. 2).
//
// One redirector is responsible for each object (the URL namespace is
// hash-partitioned across redirectors; see RedirectorGroup). For every
// replica it tracks a request count rcnt and an affinity aff_r, and
// assigns each incoming request either to the replica closest to the
// requesting gateway or to the replica with the smallest *unit* request
// count (rcnt/aff):
//
//   choose the least-counted replica q  iff  unitcnt(closest)/C > unitcnt(q)
//
// with C = 2 in the paper. (The published Figure 2 has its branches
// garbled; this is the semantics its prose and worked example define —
// see DESIGN.md.) All request counts reset to 1 whenever the replica set
// changes, so a fresh replica is not flooded while it "catches up".
//
// The redirector also arbitrates replica deletions: it refuses to let the
// last replica of an object be dropped, and it removes a replica from its
// table *before* granting the drop while learning of creations *after*
// they happen — preserving the invariant that its recorded replica set is
// always a subset of the replicas that physically exist.
//
// Storage layout: the table is a dense-by-object-id vector of 16-byte
// heads. The common case — one replica — lives entirely in the head
// (host + request count), with the affinity in a parallel array the
// request path never reads. Multi-replica sets (rare: the mean replica
// count stays near 1) spill into a pooled structure-of-arrays set —
// hosts, rcnts, affs in separate contiguous vectors, kept sorted by host
// — so the Fig. 2 loop streams plain arrays. Spill sets are recycled
// through a free list: replica churn allocates nothing in steady state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/distance.h"

namespace radar::core {

class Redirector {
 public:
  /// Observes replica-set changes (e.g. to keep the Sec. 5 consistency
  /// layer's per-replica state in step with placement decisions).
  class ChangeListener {
   public:
    virtual ~ChangeListener() = default;
    /// A new physical replica of x appeared on host (not called for pure
    /// affinity increments).
    virtual void OnReplicaAdded(ObjectId x, NodeId host) = 0;
    /// The replica of x on host was removed (drop granted).
    virtual void OnReplicaRemoved(ObjectId x, NodeId host) = 0;
  };

  /// `distance` must outlive the redirector. `distribution_constant` is
  /// the C above (> 0). `home_node` is where this redirector runs (used by
  /// the driver for control-message latency; the algorithm itself does not
  /// depend on it).
  Redirector(const DistanceOracle& distance, double distribution_constant,
             NodeId home_node = kInvalidNode);

  NodeId home_node() const { return home_node_; }

  /// Registers the initial (sole) replica of an object.
  void RegisterObject(ObjectId x, NodeId initial_host);

  bool KnowsObject(ObjectId x) const;

  /// Fig. 2: picks the servicing replica for a request entering at
  /// `gateway` and increments its request count. Requires the object to
  /// be registered. Returns kInvalidNode when every replica is gone
  /// (faults pruned the whole live set) — the request has nowhere to go.
  NodeId ChooseReplica(ObjectId x, NodeId gateway);

  /// ChooseReplica with the gateway's distance row already resolved
  /// (`row` = distance.DistanceRow(gateway), possibly nullptr). Batched
  /// dispatch resolves the row once per gateway batch instead of once per
  /// request; the choice is identical either way.
  NodeId ChooseReplica(ObjectId x, NodeId gateway, const std::int32_t* row);

  /// Hints x's entry head into cache. The batched dispatcher knows the
  /// next arrival's object one event early and prefetches its 16-byte
  /// head, hiding the table's only data-dependent load. A miss on an
  /// unknown id is harmless (bounds-checked, no growth).
  void Prefetch(ObjectId x) const {
    if (static_cast<std::size_t>(x) < table_.size()) {
      __builtin_prefetch(&table_[static_cast<std::size_t>(x)], 0, 2);
    }
  }

  /// Notification that `host` created a new replica (affinity 1) or, if it
  /// already held one, incremented its affinity. Resets request counts.
  void OnReplicaCreated(ObjectId x, NodeId host);

  /// Notification that `host` reduced its replica's affinity to
  /// `new_affinity` (>= 1). Resets request counts.
  void OnAffinityReduced(ObjectId x, NodeId host, int new_affinity);

  /// A host asks to drop its (affinity-1) replica. Grants unless doing so
  /// would leave fewer than min_replicas() copies (1 by default — the
  /// paper's never-delete-the-last-replica rule); on grant the replica is
  /// removed from the table immediately, keeping the recorded set a subset
  /// of physical replicas.
  bool RequestDrop(ObjectId x, NodeId host);

  // -- Fault reaction (src/fault drives these; no-ops in a perfect world) --

  /// Removes every replica recorded on `host` (it crashed). Fires
  /// OnReplicaRemoved per pruned replica and resets request counts of the
  /// affected objects. Returns the number of replicas pruned. Objects
  /// whose whole replica set is pruned stay registered with zero live
  /// replicas until a recovery or repair re-adds one.
  int PruneHost(NodeId host);

  /// Re-registers a replica of x on `host` (the host recovered with its
  /// disk intact, or a floor repair copied the object there). The replica
  /// keeps its pre-crash affinity; request counts reset as for any other
  /// replica-set change. The replica must not already be recorded.
  void RestoreReplica(ObjectId x, NodeId host, int affinity);

  /// Raises the drop-refusal threshold from the paper's 1 to `k` (the
  /// replica floor): RequestDrop refuses whenever it would leave fewer
  /// than k copies.
  void set_min_replicas(int k);
  int min_replicas() const { return min_replicas_; }

  // -- Introspection (metrics, tests) --

  /// Hosts currently holding a replica, ascending by node id.
  std::vector<NodeId> ReplicaHosts(ObjectId x) const;

  /// Number of distinct replica hosts.
  int ReplicaCount(ObjectId x) const;

  /// Sum of affinities across replicas.
  int TotalAffinity(ObjectId x) const;

  int AffinityOf(ObjectId x, NodeId host) const;
  std::int64_t RequestCountOf(ObjectId x, NodeId host) const;

  /// Objects registered with this redirector.
  std::vector<ObjectId> Objects() const;

  /// {sum of replica counts, number of registered objects} in one pass
  /// over the table — no per-object lookups, no allocation.
  std::pair<std::int64_t, std::int64_t> ReplicaAndObjectTotals() const;

  /// Registers a change listener (nullptr to clear); not owned.
  void set_change_listener(ChangeListener* listener) {
    listener_ = listener;
  }

  /// Total ChooseReplica calls served (metrics).
  std::int64_t requests_distributed() const { return requests_distributed_; }

  /// Number of replica-set changes processed (metrics).
  std::int64_t replica_set_changes() const { return replica_set_changes_; }

 private:
  /// 16-byte per-object head. `count_reg` packs the replica count (low 31
  /// bits) with the registered flag (high bit — set once by
  /// RegisterObject; faults can empty a registered entry, so emptiness no
  /// longer implies "unknown object"). For a sole replica the head is the
  /// whole entry: `host0` and its request count in `rcnt_or_spill`; the
  /// affinity lives in the parallel aff0_ array, off the request path.
  /// With two or more replicas `rcnt_or_spill` indexes spill_pool_.
  struct EntryHead {
    NodeId host0 = kInvalidNode;
    std::uint32_t count_reg = 0;
    std::int64_t rcnt_or_spill = 0;
  };
  static constexpr std::uint32_t kRegisteredBit = 0x80000000u;
  static constexpr std::uint32_t kCountMask = 0x7fffffffu;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  /// Replica set of one object with >= 2 replicas, kept sorted by host id
  /// in structure-of-arrays form so the Fig. 2 loop streams contiguous
  /// vectors. Pooled and recycled (vectors keep their capacity on the
  /// free list).
  struct SpillSet {
    std::vector<NodeId> hosts;
    std::vector<std::int64_t> rcnts;
    std::vector<int> affs;
  };

  static std::uint32_t Count(const EntryHead& e) {
    return e.count_reg & kCountMask;
  }
  static bool Registered(const EntryHead& e) {
    return (e.count_reg & kRegisteredBit) != 0;
  }
  static void SetCount(EntryHead& e, std::uint32_t count) {
    e.count_reg = (e.count_reg & kRegisteredBit) | count;
  }

  EntryHead& HeadOf(ObjectId x);
  const EntryHead& HeadOf(ObjectId x) const;
  SpillSet& SpillOf(const EntryHead& e) {
    return spill_pool_[static_cast<std::size_t>(e.rcnt_or_spill)];
  }
  const SpillSet& SpillOf(const EntryHead& e) const {
    return spill_pool_[static_cast<std::size_t>(e.rcnt_or_spill)];
  }

  /// Fig. 2 over a spilled (>= 2 replica) set.
  NodeId ChooseFromSpill(EntryHead& e, NodeId gateway,
                         const std::int32_t* row);

  /// Index of `host` in x's replica set (0 for the inline replica), or
  /// kNpos when absent.
  std::size_t FindReplica(ObjectId x, NodeId host) const;
  /// Inserts a replica, keeping the set sorted by host id; moves a sole
  /// inline replica into a pooled spill set when crossing 1 -> 2.
  void InsertReplica(ObjectId x, NodeId host, std::int64_t rcnt, int aff);
  /// Erases the replica at `pos`; a set shrinking 2 -> 1 moves the
  /// survivor back inline and recycles the spill set.
  void EraseReplica(ObjectId x, std::size_t pos);
  void ResetCounts(EntryHead& e);

  std::uint32_t AcquireSpill();
  void ReleaseSpill(std::int64_t slot);

  const DistanceOracle& distance_;
  double distribution_constant_;
  NodeId home_node_;
  int min_replicas_ = 1;
  ChangeListener* listener_ = nullptr;
  // Dense by object id; entries with no replicas are unregistered objects
  // (or registered objects whose live set faults emptied).
  std::vector<EntryHead> table_;
  /// Parallel to table_: the sole replica's affinity while count <= 1.
  std::vector<int> aff0_;
  std::vector<SpillSet> spill_pool_;
  std::vector<std::uint32_t> spill_free_;
  std::int64_t requests_distributed_ = 0;
  std::int64_t replica_set_changes_ = 0;
};

/// Hash-partitions the object namespace over k redirectors (Sec. 2: "the
/// load is divided among multiple redirectors by hash-partitioning the URL
/// namespace"). The paper's simulation uses k = 1 placed at the most
/// central node.
class RedirectorGroup {
 public:
  /// `homes` gives the node each redirector runs on; size >= 1.
  RedirectorGroup(const DistanceOracle& distance, double distribution_constant,
                  std::vector<NodeId> homes);

  int size() const { return static_cast<int>(redirectors_.size()); }

  /// The redirector responsible for object x (stable hash partition).
  Redirector& For(ObjectId x);
  const Redirector& For(ObjectId x) const;

  Redirector& At(int index);

  /// Aggregate replica statistics across all redirectors: {replica count
  /// sum, object count}.
  std::pair<std::int64_t, std::int64_t> TotalReplicasAndObjects() const;

 private:
  std::vector<Redirector> redirectors_;
};

}  // namespace radar::core
