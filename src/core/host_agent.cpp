#include "core/host_agent.h"

#include <algorithm>

#include "common/check.h"
#include "core/bounds.h"

namespace radar::core {

HostAgent::HostAgent(NodeId self, std::int32_t num_nodes,
                     const ProtocolParams* params)
    : self_(self), num_nodes_(num_nodes), params_(params) {
  RADAR_CHECK_GE(self, 0);
  RADAR_CHECK_LT(self, num_nodes);
  RADAR_CHECK_NE(params, nullptr);
  params->CheckStructure();
}

void HostAgent::AddInitialReplica(ObjectId x) {
  RADAR_CHECK_MSG(!HasObject(x), "initial replica already present");
  ReplicaRecord rec;
  rec.path_counts.assign(static_cast<std::size_t>(num_nodes_), 0);
  const auto it = records_.emplace(x, std::move(rec)).first;
  IndexRecord(x, &it->second);
}

void HostAgent::IndexRecord(ObjectId x, ReplicaRecord* rec) {
  const auto i = static_cast<std::size_t>(x);
  if (i >= index_.size()) index_.resize(i + 1, nullptr);
  index_[i] = rec;
  rec->active_pos = static_cast<std::uint32_t>(active_.size());
  active_.push_back(rec);
}

void HostAgent::UnindexRecord(ObjectId x) {
  const auto i = static_cast<std::size_t>(x);
  ReplicaRecord* rec = index_[i];
  RADAR_CHECK(rec != nullptr);
  const std::uint32_t pos = rec->active_pos;
  active_[pos] = active_.back();
  active_[pos]->active_pos = pos;
  active_.pop_back();
  index_[i] = nullptr;
}

int HostAgent::Affinity(ObjectId x) const {
  const ReplicaRecord* rec = FindRecord(x);
  return rec != nullptr ? rec->aff : 0;
}

std::vector<ObjectId> HostAgent::Objects() const {
  // The dense index enumerates hosted objects in ascending id order for
  // free — no hash-map traversal, no sort.
  std::vector<ObjectId> out;
  out.reserve(records_.size());
  for (std::size_t i = 0; i < index_.size(); ++i) {
    if (index_[i] != nullptr) out.push_back(static_cast<ObjectId>(i));
  }
  return out;
}

HostAgent::ReplicaRecord& HostAgent::RecordOf(ObjectId x) {
  ReplicaRecord* rec = Lookup(x);
  RADAR_CHECK_MSG(rec != nullptr, "object not hosted");
  return *rec;
}

const HostAgent::ReplicaRecord* HostAgent::FindRecord(ObjectId x) const {
  return Lookup(x);
}

void HostAgent::RecordServiced(ObjectId x,
                               const std::vector<NodeId>& preference_path) {
  ReplicaRecord& rec = RecordOf(x);
  RADAR_CHECK(!preference_path.empty());
  RADAR_CHECK_MSG(preference_path.front() == self_,
                  "preference path must start at the servicing host");
  for (const NodeId p : preference_path) {
    ++rec.path_counts[static_cast<std::size_t>(p)];
  }
  rec.counts_dirty = true;
  ++rec.serviced_interval;
  ++serviced_interval_total_;
}

void HostAgent::RecordServicedUntracked() { ++serviced_interval_total_; }

void HostAgent::OnMeasurementTick(SimTime now) {
  const double seconds = SimToSeconds(now - interval_start_);
  if (seconds <= 0.0) return;
  measured_load_ = static_cast<double>(serviced_interval_total_) / seconds;
  serviced_interval_total_ = 0;
  // Per-record updates are independent, so the compact active list
  // replaces the hash-map traversal. Records that saw no requests and
  // already carry a zero load would be rewritten with the same values —
  // skipping them keeps the (mostly cold, Zipf-tailed) object
  // population's cache lines clean.
  for (ReplicaRecord* rec : active_) {
    if (rec->serviced_interval == 0 && rec->measured_load == 0.0) {
      continue;
    }
    rec->measured_load = static_cast<double>(rec->serviced_interval) / seconds;
    rec->serviced_interval = 0;
  }
  // Sec. 2.1: an estimate stands in for measurements only until an
  // interval that started after the relocation completes — the new
  // measurement then reflects it. Shift the adjustment window.
  upper_adjust_prev_ = upper_adjust_cur_;
  upper_adjust_cur_ = 0.0;
  lower_adjust_prev_ = lower_adjust_cur_;
  lower_adjust_cur_ = 0.0;
  interval_start_ = now;
}

double HostAgent::ObjectLoad(ObjectId x) const {
  const ReplicaRecord* rec = FindRecord(x);
  return rec != nullptr ? rec->measured_load : 0.0;
}

double HostAgent::UnitLoad(ObjectId x) const {
  const ReplicaRecord* rec = FindRecord(x);
  if (rec == nullptr) return 0.0;
  return rec->measured_load / static_cast<double>(rec->aff);
}

CreateObjResponse HostAgent::HandleCreateObj(CreateObjMethod method,
                                             ObjectId x, double unit_load,
                                             SimTime now) {
  RADAR_CHECK_GE(unit_load, 0.0);
  // Fig. 4: any acceptance requires load below the low watermark; a
  // migration additionally must not push the upper-bound estimate past the
  // high watermark (replications may — overloading a recipient temporarily
  // can be necessary to bootstrap replication, Sec. 4.2.1). Loads are
  // normalized by the host's relative-power weight (Sec. 2).
  if (AdmissionLoad() / weight_ > params_->low_watermark) return {};
  if (method == CreateObjMethod::kMigrate &&
      (AdmissionLoad() + RecipientIncreaseBoundFromUnitLoad(unit_load)) /
              weight_ >
          params_->high_watermark) {
    return {};
  }
  ReplicaRecord* existing = Lookup(x);
  // Storage component of the vector load metric (Sec. 2.1): a full host
  // cannot take a new physical copy; raising the affinity of a replica it
  // already stores is fine.
  if (existing == nullptr && StorageFull()) return {};

  CreateObjResponse resp;
  resp.accepted = true;
  if (existing == nullptr) {
    ReplicaRecord rec;
    rec.path_counts.assign(static_cast<std::size_t>(num_nodes_), 0);
    rec.acquired_at = now;
    // Best available per-object load estimate until a full measurement
    // interval passes: the advertised unit load of the source replica.
    rec.measured_load = unit_load;
    const auto it = records_.emplace(x, std::move(rec)).first;
    IndexRecord(x, &it->second);
    resp.created_new_copy = true;
  } else {
    ++existing->aff;
  }
  upper_adjust_cur_ += RecipientIncreaseBoundFromUnitLoad(unit_load);
  return resp;
}

void HostAgent::ResetAfterCrash(SimTime now) {
  serviced_interval_total_ = 0;
  measured_load_ = 0.0;
  upper_adjust_cur_ = 0.0;
  upper_adjust_prev_ = 0.0;
  lower_adjust_cur_ = 0.0;
  lower_adjust_prev_ = 0.0;
  offloading_ = false;
  interval_start_ = now;
  epoch_start_ = now;
  for (ReplicaRecord* rec : active_) {
    rec->serviced_interval = 0;
    rec->measured_load = 0.0;
    if (rec->counts_dirty) {
      std::fill(rec->path_counts.begin(), rec->path_counts.end(), 0u);
      rec->counts_dirty = false;
    }
    rec->acquired_at = now;
  }
}

void HostAgent::AcceptRepairReplica(ObjectId x, double unit_load, SimTime now) {
  RADAR_CHECK_GE(unit_load, 0.0);
  RADAR_CHECK_MSG(Lookup(x) == nullptr, "repair replica already hosted");
  RADAR_CHECK_MSG(!StorageFull(), "repair replica pushed to a full host");
  ReplicaRecord rec;
  rec.path_counts.assign(static_cast<std::size_t>(num_nodes_), 0);
  rec.acquired_at = now;
  rec.measured_load = unit_load;
  const auto it = records_.emplace(x, std::move(rec)).first;
  IndexRecord(x, &it->second);
  upper_adjust_cur_ += RecipientIncreaseBoundFromUnitLoad(unit_load);
}

double HostAgent::EpochSeconds(const ReplicaRecord& rec, SimTime now) const {
  return SimToSeconds(now - std::max(epoch_start_, rec.acquired_at));
}

double HostAgent::UnitAccessRate(ObjectId x, SimTime now) const {
  const ReplicaRecord* rec = FindRecord(x);
  if (rec == nullptr) return 0.0;
  const double seconds = EpochSeconds(*rec, now);
  if (seconds <= 0.0) return 0.0;
  const double total = rec->path_counts[static_cast<std::size_t>(self_)];
  return total / static_cast<double>(rec->aff) / seconds;
}

std::uint32_t HostAgent::AccessCount(ObjectId x, NodeId p) const {
  RADAR_CHECK_GE(p, 0);
  RADAR_CHECK_LT(p, num_nodes_);
  const ReplicaRecord* rec = FindRecord(x);
  return rec != nullptr ? rec->path_counts[static_cast<std::size_t>(p)] : 0;
}

HostAgent::ReduceOutcome HostAgent::ReduceAffinity(PlacementContext& ctx,
                                                   ObjectId x) {
  ReplicaRecord& rec = RecordOf(x);
  Redirector& redirector = ctx.RedirectorFor(x);
  if (rec.aff > 1) {
    --rec.aff;
    redirector.OnAffinityReduced(x, self_, rec.aff);
    return ReduceOutcome::kReduced;
  }
  if (redirector.RequestDrop(x, self_)) {
    UnindexRecord(x);
    records_.erase(x);
    return ReduceOutcome::kDropped;
  }
  return ReduceOutcome::kDenied;
}

std::vector<NodeId> HostAgent::CandidatesByFarthest(
    const ReplicaRecord& rec, const PlacementContext& ctx) const {
  // Distances are fetched once per candidate, not once per comparison: a
  // sort comparator that calls a virtual oracle is the dominant cost of a
  // placement round on large runs. The (distance desc, id asc) key is a
  // total order, so the result is identical to sorting with the oracle in
  // the comparator.
  struct Cand {
    std::int32_t dist;
    NodeId p;
  };
  std::vector<Cand> candidates;
  for (NodeId p = 0; p < num_nodes_; ++p) {
    if (p != self_ && rec.path_counts[static_cast<std::size_t>(p)] > 0) {
      candidates.push_back(Cand{ctx.Distance(self_, p), p});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Cand& a, const Cand& b) {
              if (a.dist != b.dist) return a.dist > b.dist;
              return a.p < b.p;
            });
  std::vector<NodeId> out;
  out.reserve(candidates.size());
  for (const Cand& c : candidates) out.push_back(c.p);
  return out;
}

PlacementStats HostAgent::RunPlacement(PlacementContext& ctx, SimTime now) {
  PlacementStats stats;

  // Mode hysteresis (Fig. 3 preamble). The offloading decision uses the
  // lower-limit estimate (Sec. 2.1): a host that just shed objects should
  // not believe it is still overloaded.
  const double mode_load = OffloadLoad() / weight_;
  if (mode_load > params_->high_watermark) offloading_ = true;
  if (mode_load < params_->low_watermark) offloading_ = false;
  stats.offloading_mode = offloading_;

  const double u = params_->deletion_threshold_u;
  const double m = params_->replication_threshold_m;

  for (const ObjectId x : Objects()) {
    ReplicaRecord* recp = Lookup(x);
    if (recp == nullptr) continue;
    ReplicaRecord& rec = *recp;
    const double seconds = EpochSeconds(rec, now);
    if (seconds <= 0.0) continue;
    const auto total = static_cast<double>(
        rec.path_counts[static_cast<std::size_t>(self_)]);
    const double unit_rate = total / static_cast<double>(rec.aff) / seconds;

    bool relocated = false;
    if (unit_rate < u) {
      // Deletion branch: shed one affinity unit if the redirector allows.
      if (ReduceAffinity(ctx, x) != ReduceOutcome::kDenied) {
        ++stats.affinity_drops;
        relocated = true;
      }
    } else if (total > 0.0) {
      // Geo-migration: the farthest host on > MIGR_RATIO of the requests'
      // preference paths (Sec. 4.2.1).
      for (const NodeId p : CandidatesByFarthest(rec, ctx)) {
        const auto cnt =
            static_cast<double>(rec.path_counts[static_cast<std::size_t>(p)]);
        if (cnt <= params_->migr_ratio * total) continue;
        const int aff_before = rec.aff;
        const double object_load = rec.measured_load;
        const CreateObjResponse resp = ctx.CreateObjRpc(
            self_, p, CreateObjMethod::kMigrate, x, UnitLoad(x));
        if (resp.accepted) {
          ReduceAffinity(ctx, x);
          lower_adjust_cur_ +=
              MigrationSourceDecreaseBound(object_load, aff_before);
          ++stats.geo_migrations;
          relocated = true;
          break;
        }
      }
    }

    // Geo-replication: only if still fully present, above the replication
    // threshold, with a candidate past REPL_RATIO.
    if (!relocated && HasObject(x) && unit_rate > m && total > 0.0) {
      ReplicaRecord& cur = RecordOf(x);
      for (const NodeId p : CandidatesByFarthest(cur, ctx)) {
        const auto cnt =
            static_cast<double>(cur.path_counts[static_cast<std::size_t>(p)]);
        if (cnt <= params_->repl_ratio * total) continue;
        const CreateObjResponse resp = ctx.CreateObjRpc(
            self_, p, CreateObjMethod::kReplicate, x, UnitLoad(x));
        if (resp.accepted) {
          lower_adjust_cur_ +=
              ReplicationSourceDecreaseBound(cur.measured_load);
          ++stats.geo_replications;
          relocated = true;
          break;
        }
      }
    }
  }

  // Fig. 3 triggers Offload when the geo pass did not relocate anything.
  // We generalize slightly: geo relocations debit the lower-bound load
  // estimate by their Theorem 1/3 decrease bounds, and Offload runs
  // whenever that estimate still exceeds the low watermark — "the host
  // continues in this manner until its load drops below a low water mark"
  // (Sec. 4.2). When the geo pass shed enough, this reduces to the
  // figure's literal condition; when its relocations were refused by
  // loaded recipients, the host still gets the load relief the offloading
  // mode exists to guarantee (see DESIGN.md).
  if (offloading_ && OffloadLoad() / weight_ > params_->low_watermark) {
    stats.ran_offload = true;
    Offload(ctx, stats, now);
  }

  // Start a new access-count epoch. Only records whose counts were
  // actually touched this epoch need zeroing.
  for (ReplicaRecord* rec : active_) {
    if (!rec->counts_dirty) continue;
    std::fill(rec->path_counts.begin(), rec->path_counts.end(), 0);
    rec->counts_dirty = false;
  }
  epoch_start_ = now;
  return stats;
}

void HostAgent::Offload(PlacementContext& ctx, PlacementStats& stats,
                        SimTime now) {
  const NodeId recipient = ctx.FindOffloadRecipient(self_);
  if (recipient == kInvalidNode) return;
  RADAR_CHECK_NE(recipient, self_);
  double recipient_load = ctx.ReportedLoad(recipient);
  if (recipient_load >= params_->low_watermark) return;

  // Examine objects in decreasing order of their highest "foreign" access
  // fraction — objects whose requests mostly pass by other hosts first.
  struct Ranked {
    double foreign_fraction;
    ObjectId x;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(records_.size());
  for (const ObjectId x : Objects()) {
    const ReplicaRecord& rec = RecordOf(x);
    const auto total = static_cast<double>(
        rec.path_counts[static_cast<std::size_t>(self_)]);
    double best = 0.0;
    if (total > 0.0) {
      for (NodeId p = 0; p < num_nodes_; ++p) {
        if (p == self_) continue;
        best = std::max(
            best, static_cast<double>(
                      rec.path_counts[static_cast<std::size_t>(p)]) /
                      total);
      }
    }
    ranked.push_back(Ranked{best, x});
  }
  std::stable_sort(ranked.begin(), ranked.end(), [](const Ranked& a,
                                                    const Ranked& b) {
    if (a.foreign_fraction != b.foreign_fraction) {
      return a.foreign_fraction > b.foreign_fraction;
    }
    return a.x < b.x;
  });

  const double m = params_->replication_threshold_m;
  for (const Ranked& r : ranked) {
    if (OffloadLoad() / weight_ <= params_->low_watermark) break;
    if (recipient_load >= params_->low_watermark) break;
    const ObjectId x = r.x;
    if (!HasObject(x)) continue;
    ReplicaRecord& rec = RecordOf(x);
    const double seconds = EpochSeconds(rec, now);
    const double unit_rate =
        seconds > 0.0
            ? static_cast<double>(
                  rec.path_counts[static_cast<std::size_t>(self_)]) /
                  static_cast<double>(rec.aff) / seconds
            : 0.0;
    const double object_load = rec.measured_load;
    const double unit_load = object_load / static_cast<double>(rec.aff);
    const int aff_before = rec.aff;

    if (unit_rate <= m) {
      // Load-migration; heavily requested objects are never load-migrated
      // (that could undo a previous geo-replication, Sec. 4.2.2).
      const CreateObjResponse resp = ctx.CreateObjRpc(
          self_, recipient, CreateObjMethod::kMigrate, x, unit_load);
      if (!resp.accepted) break;
      lower_adjust_cur_ += MigrationSourceDecreaseBound(object_load, aff_before);
      recipient_load += RecipientIncreaseBoundFromUnitLoad(unit_load) /
                        ctx.HostWeight(recipient);
      const ReduceOutcome outcome = ReduceAffinity(ctx, x);
      RADAR_CHECK_MSG(outcome != ReduceOutcome::kDenied,
                      "migration drop denied after recipient accepted");
      ++stats.offload_migrations;
      if (!params_->bulk_offload) break;
    } else {
      const CreateObjResponse resp = ctx.CreateObjRpc(
          self_, recipient, CreateObjMethod::kReplicate, x, unit_load);
      if (!resp.accepted) break;
      lower_adjust_cur_ += ReplicationSourceDecreaseBound(object_load);
      recipient_load += RecipientIncreaseBoundFromUnitLoad(unit_load) /
                        ctx.HostWeight(recipient);
      ++stats.offload_replications;
      if (!params_->bulk_offload) break;
    }
  }
}

void HostAgent::set_weight(double weight) {
  RADAR_CHECK_GT(weight, 0.0);
  weight_ = weight;
}

void HostAgent::set_storage_capacity(std::int64_t max_objects) {
  RADAR_CHECK_GE(max_objects, 0);
  storage_capacity_ = max_objects;
}

bool HostAgent::StorageFull() const {
  return storage_capacity_ > 0 &&
         static_cast<std::int64_t>(records_.size()) >= storage_capacity_;
}

}  // namespace radar::core
