#include "core/host_agent.h"

#include <algorithm>

#include "common/check.h"
#include "core/bounds.h"

namespace radar::core {

HostAgent::HostAgent(NodeId self, std::int32_t num_nodes,
                     const ProtocolParams* params)
    : self_(self), num_nodes_(num_nodes), params_(params) {
  RADAR_CHECK_GE(self, 0);
  RADAR_CHECK_LT(self, num_nodes);
  RADAR_CHECK_NE(params, nullptr);
  params->CheckStructure();
}

HostAgent::Handle HostAgent::InsertRecord(ObjectId x) {
  const Handle h = records_.Insert(x);
  // Keep the parallel arrays in step with the slab's slot space. A
  // recycled slot was cleared by EraseRecord (its row keeps its
  // capacity); freshly carved slots get empty rows here. Steady-state
  // churn therefore never allocates.
  const std::size_t cap = records_.slot_capacity();
  if (serviced_.size() < cap) {
    serviced_.resize(cap, 0);
    load_.resize(cap, 0.0);
    counts_.resize(cap);
  }
  return h;
}

void HostAgent::EraseRecord(ObjectId x) {
  const Handle h = HandleOf(x);
  serviced_[h] = 0;
  load_[h] = 0.0;
  counts_[h].clear();
  records_.Erase(x);
}

std::uint32_t HostAgent::CountFor(const CountRow& row, NodeId p) {
  // Sums over possible duplicates, so it is exact whether or not the row
  // has been coalesced. Rows are a few cache lines; the branchy binary
  // search this replaces was slower in practice.
  std::uint32_t total = 0;
  for (const CountEntry& e : row) {
    if (e.node == p) total += e.count;
  }
  return total;
}

void HostAgent::BumpCount(CountRow& row, NodeId p) {
  // Append-only fast path: sorted-insert bumps (binary search + memmove)
  // were ~30% of the request engine's profile. Coalescing only when the
  // row is about to reallocate, with the post-coalesce reserve keeping at
  // least half the capacity appendable, amortizes the merge to a few
  // word operations per bump even when nearly every bump repeats the same
  // few hot nodes.
  if (row.size() == row.capacity() && row.size() >= kCountCoalesceMin) {
    CoalesceRow(row);
    if (row.size() * 2 > row.capacity()) {
      row.reserve(row.capacity() * 2);
    }
  }
  row.push_back(CountEntry{p, 1});
}

void HostAgent::CoalesceRow(CountRow& row) {
  if (row.size() < 2) return;
  // One linear pass through the row, compacting in place (the write
  // cursor never passes the read cursor). The scratch table maps a node
  // id to its compacted position; re-zeroing it is a memset of ~2x the
  // row, which beats any comparison sort by the sort's log factor.
  std::size_t table = 16;
  while (table < 2 * row.size()) table *= 2;
  const std::size_t mask = table - 1;
  coalesce_keys_.assign(table, kInvalidNode);
  coalesce_pos_.resize(table);
  std::size_t w = 0;
  for (std::size_t r = 0; r < row.size(); ++r) {
    const NodeId node = row[r].node;
    std::size_t slot =
        (static_cast<std::uint32_t>(node) * 2654435761u) & mask;
    for (;;) {
      if (coalesce_keys_[slot] == node) {
        row[coalesce_pos_[slot]].count += row[r].count;
        break;
      }
      if (coalesce_keys_[slot] == kInvalidNode) {
        coalesce_keys_[slot] = node;
        coalesce_pos_[slot] = static_cast<std::uint32_t>(w);
        row[w++] = row[r];
        break;
      }
      slot = (slot + 1) & mask;
    }
  }
  row.resize(w);
}

void HostAgent::AddInitialReplica(ObjectId x, int affinity) {
  RADAR_CHECK_MSG(!HasObject(x), "initial replica already present");
  RADAR_CHECK_GE(affinity, 1);
  records_.At(InsertRecord(x)).aff = affinity;
}

int HostAgent::Affinity(ObjectId x) const {
  const ReplicaRecord* rec = records_.Find(x);
  return rec != nullptr ? rec->aff : 0;
}

std::vector<ObjectId> HostAgent::Objects() const {
  // The dense index enumerates hosted objects in ascending id order for
  // free — no hash-map traversal, no sort.
  std::vector<ObjectId> out;
  out.reserve(records_.size());
  records_.ForEachKeyAscending([&out](std::int64_t key, Handle) {
    out.push_back(static_cast<ObjectId>(key));
  });
  return out;
}

void HostAgent::RecordServicedAt(Handle h,
                                 const std::vector<NodeId>& preference_path) {
  RADAR_CHECK(!preference_path.empty());
  RADAR_CHECK_MSG(preference_path.front() == self_,
                  "preference path must start at the servicing host");
  CountRow& row = CountsRow(h);
  for (const NodeId p : preference_path) {
    BumpCount(row, p);
  }
  ++serviced_[h];
  ++serviced_interval_total_;
}

void HostAgent::RecordServiced(ObjectId x,
                               const std::vector<NodeId>& preference_path) {
  RecordServicedAt(HandleOf(x), preference_path);
}

bool HostAgent::RecordServicedIfHosted(
    ObjectId x, const std::vector<NodeId>& preference_path) {
  const Handle h = records_.HandleOf(x);
  if (h == Records::kNoHandle) {
    RecordServicedUntracked();
    return false;
  }
  RecordServicedAt(h, preference_path);
  return true;
}

void HostAgent::RecordServicedUntracked() { ++serviced_interval_total_; }

void HostAgent::OnMeasurementTick(SimTime now) {
  const double seconds = SimToSeconds(now - interval_start_);
  if (seconds <= 0.0) return;
  measured_load_ = static_cast<double>(serviced_interval_total_) / seconds;
  serviced_interval_total_ = 0;
  // Per-record updates are independent, so the sweep streams the two flat
  // per-slot arrays — no record is dereferenced at all. Free slots hold
  // zeroes (EraseRecord's contract) and are skipped by the same test that
  // skips cold objects: records that saw no requests and already carry a
  // zero load would be rewritten with the same values, and skipping them
  // keeps the (mostly cold, Zipf-tailed) population's cache lines clean.
  const std::size_t cap = records_.slot_capacity();
  for (std::size_t s = 0; s < cap; ++s) {
    if (serviced_[s] == 0 && load_[s] == 0.0) continue;
    load_[s] = static_cast<double>(serviced_[s]) / seconds;
    serviced_[s] = 0;
  }
  // Sec. 2.1: an estimate stands in for measurements only until an
  // interval that started after the relocation completes — the new
  // measurement then reflects it. Shift the adjustment window.
  upper_adjust_prev_ = upper_adjust_cur_;
  upper_adjust_cur_ = 0.0;
  lower_adjust_prev_ = lower_adjust_cur_;
  lower_adjust_cur_ = 0.0;
  interval_start_ = now;
}

double HostAgent::ObjectLoad(ObjectId x) const {
  const Handle h = records_.HandleOf(x);
  return h != Records::kNoHandle ? load_[h] : 0.0;
}

double HostAgent::UnitLoad(ObjectId x) const {
  const Handle h = records_.HandleOf(x);
  if (h == Records::kNoHandle) return 0.0;
  return load_[h] / static_cast<double>(records_.At(h).aff);
}

CreateObjResponse HostAgent::HandleCreateObj(CreateObjMethod method,
                                             ObjectId x, double unit_load,
                                             SimTime now) {
  RADAR_CHECK_GE(unit_load, 0.0);
  // Fig. 4: any acceptance requires load below the low watermark; a
  // migration additionally must not push the upper-bound estimate past the
  // high watermark (replications may — overloading a recipient temporarily
  // can be necessary to bootstrap replication, Sec. 4.2.1). Loads are
  // normalized by the host's relative-power weight (Sec. 2).
  if (AdmissionLoad() / weight_ > params_->low_watermark) return {};
  if (method == CreateObjMethod::kMigrate &&
      (AdmissionLoad() + RecipientIncreaseBoundFromUnitLoad(unit_load)) /
              weight_ >
          params_->high_watermark) {
    return {};
  }
  const Handle existing = records_.HandleOf(x);
  // Storage component of the vector load metric (Sec. 2.1): a full host
  // cannot take a new physical copy; raising the affinity of a replica it
  // already stores is fine.
  if (existing == Records::kNoHandle && StorageFull()) return {};

  CreateObjResponse resp;
  resp.accepted = true;
  if (existing == Records::kNoHandle) {
    const Handle h = InsertRecord(x);
    records_.At(h).acquired_at = now;
    // Best available per-object load estimate until a full measurement
    // interval passes: the advertised unit load of the source replica.
    load_[h] = unit_load;
    resp.created_new_copy = true;
  } else {
    ++records_.At(existing).aff;
  }
  upper_adjust_cur_ += RecipientIncreaseBoundFromUnitLoad(unit_load);
  return resp;
}

void HostAgent::NoteReplicationShed(ObjectId x) {
  const Handle h = HandleOf(x);
  lower_adjust_cur_ += ReplicationSourceDecreaseBound(load_[h]);
}

void HostAgent::DropReplica(ObjectId x) {
  const Handle h = HandleOf(x);
  lower_adjust_cur_ +=
      MigrationSourceDecreaseBound(load_[h], records_.At(h).aff);
  EraseRecord(x);
}

void HostAgent::ResetAfterCrash(SimTime now) {
  serviced_interval_total_ = 0;
  measured_load_ = 0.0;
  upper_adjust_cur_ = 0.0;
  upper_adjust_prev_ = 0.0;
  lower_adjust_cur_ = 0.0;
  lower_adjust_prev_ = 0.0;
  offloading_ = false;
  interval_start_ = now;
  epoch_start_ = now;
  for (const Handle h : records_.active()) {
    serviced_[h] = 0;
    load_[h] = 0.0;
    counts_[h].clear();
    records_.At(h).acquired_at = now;
  }
}

void HostAgent::AcceptRepairReplica(ObjectId x, double unit_load, SimTime now) {
  RADAR_CHECK_GE(unit_load, 0.0);
  RADAR_CHECK_MSG(!HasObject(x), "repair replica already hosted");
  RADAR_CHECK_MSG(!StorageFull(), "repair replica pushed to a full host");
  const Handle h = InsertRecord(x);
  records_.At(h).acquired_at = now;
  load_[h] = unit_load;
  upper_adjust_cur_ += RecipientIncreaseBoundFromUnitLoad(unit_load);
}

double HostAgent::EpochSeconds(const ReplicaRecord& rec, SimTime now) const {
  return SimToSeconds(now - std::max(epoch_start_, rec.acquired_at));
}

double HostAgent::UnitAccessRate(ObjectId x, SimTime now) const {
  const Handle h = records_.HandleOf(x);
  if (h == Records::kNoHandle) return 0.0;
  const double seconds = EpochSeconds(records_.At(h), now);
  if (seconds <= 0.0) return 0.0;
  const double total = CountFor(CountsRow(h), self_);
  return total / static_cast<double>(records_.At(h).aff) / seconds;
}

std::uint32_t HostAgent::AccessCount(ObjectId x, NodeId p) const {
  RADAR_CHECK_GE(p, 0);
  RADAR_CHECK_LT(p, num_nodes_);
  const Handle h = records_.HandleOf(x);
  return h != Records::kNoHandle ? CountFor(CountsRow(h), p) : 0;
}

HostAgent::ReduceOutcome HostAgent::ReduceAffinity(PlacementContext& ctx,
                                                   ObjectId x) {
  ReplicaRecord& rec = records_.At(HandleOf(x));
  Redirector& redirector = ctx.RedirectorFor(x);
  if (rec.aff > 1) {
    --rec.aff;
    redirector.OnAffinityReduced(x, self_, rec.aff);
    return ReduceOutcome::kReduced;
  }
  if (redirector.RequestDrop(x, self_)) {
    EraseRecord(x);
    return ReduceOutcome::kDropped;
  }
  return ReduceOutcome::kDenied;
}

const std::vector<NodeId>& HostAgent::CandidatesByFarthest(
    const CountRow& counts, const PlacementContext& ctx) {
  // Distances are fetched once per candidate, not once per comparison: a
  // sort comparator that calls a virtual oracle is the dominant cost of a
  // placement round on large runs. The (distance desc, id asc) key is a
  // total order, so the result is identical to sorting with the oracle in
  // the comparator. Both buffers are member scratch — a placement round
  // calls this for every warm object, and per-call vectors dominated the
  // round's profile. `counts` must be coalesced: the row then enumerates
  // exactly the nodes the old dense scan found non-zero (the sort's
  // total order makes the result independent of the row's entry order).
  candidate_scratch_.clear();
  for (const CountEntry& e : counts) {
    if (e.node != self_ && e.count > 0) {
      candidate_scratch_.push_back(Candidate{ctx.Distance(self_, e.node),
                                             e.node});
    }
  }
  std::sort(candidate_scratch_.begin(), candidate_scratch_.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.dist != b.dist) return a.dist > b.dist;
              return a.p < b.p;
            });
  candidate_out_.clear();
  candidate_out_.reserve(candidate_scratch_.size());
  for (const Candidate& c : candidate_scratch_) candidate_out_.push_back(c.p);
  return candidate_out_;
}

PlacementStats HostAgent::RunPlacement(PlacementContext& ctx, SimTime now) {
  PlacementStats stats;

  // Mode hysteresis (Fig. 3 preamble). The offloading decision uses the
  // lower-limit estimate (Sec. 2.1): a host that just shed objects should
  // not believe it is still overloaded.
  const double mode_load = OffloadLoad() / weight_;
  if (mode_load > params_->high_watermark) offloading_ = true;
  if (mode_load < params_->low_watermark) offloading_ = false;
  stats.offloading_mode = offloading_;

  const double u = params_->deletion_threshold_u;
  const double m = params_->replication_threshold_m;

  for (const ObjectId x : Objects()) {
    const Handle h = records_.HandleOf(x);
    if (h == Records::kNoHandle) continue;
    const double seconds = EpochSeconds(records_.At(h), now);
    if (seconds <= 0.0) continue;
    // One coalesce covers every read below: the candidate walks iterate
    // entries and need one entry per node, and handles are stable for the
    // rest of this iteration (a dropped record clears its row and is
    // guarded by HasObject before the replication pass).
    CoalesceRow(CountsRow(h));
    const auto total = static_cast<double>(CountFor(CountsRow(h), self_));
    const double unit_rate =
        total / static_cast<double>(records_.At(h).aff) / seconds;

    bool relocated = false;
    if (unit_rate < u) {
      // Deletion branch: shed one affinity unit if the redirector allows.
      if (ReduceAffinity(ctx, x) != ReduceOutcome::kDenied) {
        ++stats.affinity_drops;
        relocated = true;
      }
    } else if (total > 0.0) {
      // Geo-migration: the farthest host on > MIGR_RATIO of the requests'
      // preference paths (Sec. 4.2.1).
      for (const NodeId p : CandidatesByFarthest(CountsRow(h), ctx)) {
        const auto cnt = static_cast<double>(CountFor(CountsRow(h), p));
        if (cnt <= params_->migr_ratio * total) continue;
        const int aff_before = records_.At(h).aff;
        const double object_load = load_[h];
        const CreateObjResponse resp = ctx.CreateObjRpc(
            self_, p, CreateObjMethod::kMigrate, x, UnitLoad(x));
        if (resp.accepted) {
          ReduceAffinity(ctx, x);
          lower_adjust_cur_ +=
              MigrationSourceDecreaseBound(object_load, aff_before);
          ++stats.geo_migrations;
          relocated = true;
          break;
        }
      }
    }

    // Geo-replication: only if still fully present, above the replication
    // threshold, with a candidate past REPL_RATIO.
    if (!relocated && HasObject(x) && unit_rate > m && total > 0.0) {
      const Handle hc = HandleOf(x);
      for (const NodeId p : CandidatesByFarthest(CountsRow(hc), ctx)) {
        const auto cnt = static_cast<double>(CountFor(CountsRow(hc), p));
        if (cnt <= params_->repl_ratio * total) continue;
        const CreateObjResponse resp = ctx.CreateObjRpc(
            self_, p, CreateObjMethod::kReplicate, x, UnitLoad(x));
        if (resp.accepted) {
          lower_adjust_cur_ += ReplicationSourceDecreaseBound(load_[hc]);
          ++stats.geo_replications;
          relocated = true;
          break;
        }
      }
    }
  }

  // Fig. 3 triggers Offload when the geo pass did not relocate anything.
  // We generalize slightly: geo relocations debit the lower-bound load
  // estimate by their Theorem 1/3 decrease bounds, and Offload runs
  // whenever that estimate still exceeds the low watermark — "the host
  // continues in this manner until its load drops below a low water mark"
  // (Sec. 4.2). When the geo pass shed enough, this reduces to the
  // figure's literal condition; when its relocations were refused by
  // loaded recipients, the host still gets the load relief the offloading
  // mode exists to guarantee (see DESIGN.md).
  if (offloading_ && OffloadLoad() / weight_ > params_->low_watermark) {
    stats.ran_offload = true;
    Offload(ctx, stats, now);
  }

  // Start a new access-count epoch. Rows untouched this epoch are
  // already empty; clear() on a touched row drops its entries but keeps
  // the capacity, so the next epoch's bumps do not allocate.
  const std::size_t cap = records_.slot_capacity();
  for (std::size_t s = 0; s < cap; ++s) {
    counts_[s].clear();
  }
  epoch_start_ = now;
  return stats;
}

void HostAgent::Offload(PlacementContext& ctx, PlacementStats& stats,
                        SimTime now) {
  const NodeId recipient = ctx.FindOffloadRecipient(self_);
  if (recipient == kInvalidNode) return;
  RADAR_CHECK_NE(recipient, self_);
  double recipient_load = ctx.ReportedLoad(recipient);
  if (recipient_load >= params_->low_watermark) return;

  // Examine objects in decreasing order of their highest "foreign" access
  // fraction — objects whose requests mostly pass by other hosts first.
  struct Ranked {
    double foreign_fraction;
    ObjectId x;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(records_.size());
  for (const ObjectId x : Objects()) {
    CountRow& counts = CountsRow(HandleOf(x));
    CoalesceRow(counts);  // the max-fraction scan needs one entry per node
    const auto total = static_cast<double>(CountFor(counts, self_));
    double best = 0.0;
    if (total > 0.0) {
      for (const CountEntry& e : counts) {
        if (e.node == self_) continue;
        best = std::max(best, static_cast<double>(e.count) / total);
      }
    }
    ranked.push_back(Ranked{best, x});
  }
  std::stable_sort(ranked.begin(), ranked.end(), [](const Ranked& a,
                                                    const Ranked& b) {
    if (a.foreign_fraction != b.foreign_fraction) {
      return a.foreign_fraction > b.foreign_fraction;
    }
    return a.x < b.x;
  });

  const double m = params_->replication_threshold_m;
  for (const Ranked& r : ranked) {
    if (OffloadLoad() / weight_ <= params_->low_watermark) break;
    if (recipient_load >= params_->low_watermark) break;
    const ObjectId x = r.x;
    const Handle h = records_.HandleOf(x);
    if (h == Records::kNoHandle) continue;
    const ReplicaRecord& rec = records_.At(h);
    const double seconds = EpochSeconds(rec, now);
    const double unit_rate =
        seconds > 0.0
            ? static_cast<double>(CountFor(CountsRow(h), self_)) /
                  static_cast<double>(rec.aff) / seconds
            : 0.0;
    const double object_load = load_[h];
    const double unit_load = object_load / static_cast<double>(rec.aff);
    const int aff_before = rec.aff;

    if (unit_rate <= m) {
      // Load-migration; heavily requested objects are never load-migrated
      // (that could undo a previous geo-replication, Sec. 4.2.2).
      const CreateObjResponse resp = ctx.CreateObjRpc(
          self_, recipient, CreateObjMethod::kMigrate, x, unit_load);
      if (!resp.accepted) break;
      lower_adjust_cur_ += MigrationSourceDecreaseBound(object_load, aff_before);
      recipient_load += RecipientIncreaseBoundFromUnitLoad(unit_load) /
                        ctx.HostWeight(recipient);
      const ReduceOutcome outcome = ReduceAffinity(ctx, x);
      RADAR_CHECK_MSG(outcome != ReduceOutcome::kDenied,
                      "migration drop denied after recipient accepted");
      ++stats.offload_migrations;
      if (!params_->bulk_offload) break;
    } else {
      const CreateObjResponse resp = ctx.CreateObjRpc(
          self_, recipient, CreateObjMethod::kReplicate, x, unit_load);
      if (!resp.accepted) break;
      lower_adjust_cur_ += ReplicationSourceDecreaseBound(object_load);
      recipient_load += RecipientIncreaseBoundFromUnitLoad(unit_load) /
                        ctx.HostWeight(recipient);
      ++stats.offload_replications;
      if (!params_->bulk_offload) break;
    }
  }
}

void HostAgent::set_weight(double weight) {
  RADAR_CHECK_GT(weight, 0.0);
  weight_ = weight;
}

void HostAgent::set_storage_capacity(std::int64_t max_objects) {
  RADAR_CHECK_GE(max_objects, 0);
  storage_capacity_ = max_objects;
}

bool HostAgent::StorageFull() const {
  return storage_capacity_ > 0 &&
         static_cast<std::int64_t>(records_.size()) >= storage_capacity_;
}

}  // namespace radar::core
