// Captured-traffic replay: turns a real-mode capture binlog back into a
// deterministic simulator workload (DESIGN.md §16).
//
// A redirector daemon run with --capture appends every frame it receives
// to a binlog. This module decodes that capture and extracts the client
// kRequest stream as a workload::RequestTrace, which
// HostingSimulation::SetTrace replays on the simulation clock. Replay is
// a pure function of the capture bytes: the same file produces the same
// trace, and the simulator is deterministic, so two replays of one
// capture emit byte-identical radar.report/1 documents — the debugging
// loop for real-mode incidents.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "workload/trace.h"

namespace radar::binlog {

/// What a capture contained, by frame type (diagnostics; the trace itself
/// carries only the requests).
struct CaptureSummary {
  std::uint64_t records = 0;        ///< valid binlog records
  std::uint64_t requests = 0;       ///< kRequest frames -> trace records
  std::uint64_t create_obj = 0;     ///< kReplicate + kMigrate frames
  std::uint64_t placement_stats = 0;
  std::uint64_t announces = 0;
  std::uint64_t other = 0;          ///< hello/ack/redirect/shutdown/...
  std::uint64_t undecodable = 0;    ///< records whose payload is not a frame
  bool clean = true;                ///< capture file ended on a boundary
};

/// Reads `path` and extracts the request stream. Record timestamps are
/// clamped to be non-decreasing (a capture is single-writer and its clock
/// monotonic, so this is a no-op on well-formed files) and shifted so the
/// first request lands at time `start_offset_us`. Returns nullopt (and
/// fills *error) only when the file cannot be read at all; a torn tail
/// truncates, it does not fail.
std::optional<workload::RequestTrace> TraceFromCapture(
    const std::string& path, std::int64_t start_offset_us,
    CaptureSummary* summary, std::string* error);

}  // namespace radar::binlog
