#include "binlog/binlog.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace radar::binlog {
namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

BinlogWriter::~BinlogWriter() { Close(); }

bool BinlogWriter::Open(const std::string& path, FsyncPolicy fsync_policy,
                        std::string* error) {
  Close();
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = path + ": open failed: " + std::strerror(errno);
    }
    return false;
  }
  fd_ = fd;
  fsync_policy_ = fsync_policy;
  path_ = path;
  return true;
}

bool BinlogWriter::Append(std::int64_t time_us, std::int32_t src,
                          std::int32_t dst, const std::uint8_t* payload,
                          std::size_t payload_size) {
  RADAR_CHECK(is_open());
  RADAR_CHECK_LE(payload_size, static_cast<std::size_t>(kMaxRecordPayload));
  scratch_.clear();
  PutU32(scratch_, kRecordMagic);
  PutU32(scratch_, static_cast<std::uint32_t>(payload_size));
  PutU32(scratch_, Crc32(payload, payload_size));
  PutU32(scratch_, 0);  // reserved
  PutU64(scratch_, static_cast<std::uint64_t>(time_us));
  PutU32(scratch_, static_cast<std::uint32_t>(src));
  PutU32(scratch_, static_cast<std::uint32_t>(dst));
  scratch_.insert(scratch_.end(), payload, payload + payload_size);

  // One write per record: a record is torn only if the OS tears the
  // single write (the reader handles that), never by interleaving.
  std::size_t off = 0;
  while (off < scratch_.size()) {
    const ssize_t n = ::write(fd_, scratch_.data() + off, scratch_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (fsync_policy_ == FsyncPolicy::kEveryRecord) {
    if (::fsync(fd_) != 0) return false;
  }
  ++records_written_;
  return true;
}

bool BinlogWriter::Reset() {
  RADAR_CHECK(is_open());
  if (::ftruncate(fd_, 0) != 0) return false;
  if (fsync_policy_ == FsyncPolicy::kEveryRecord) {
    if (::fsync(fd_) != 0) return false;
  }
  return true;
}

void BinlogWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

std::optional<ReadResult> ReadBinlog(const std::string& path,
                                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot open";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  const std::uint8_t* data =
      reinterpret_cast<const std::uint8_t*>(bytes.data());
  const std::size_t size = bytes.size();

  ReadResult result;
  std::size_t pos = 0;
  while (pos < size) {
    const std::size_t remaining = size - pos;
    if (remaining < kRecordHeaderSize) {
      result.clean = false;
      result.stop_reason = "torn-header";
      break;
    }
    const std::uint8_t* h = data + pos;
    if (GetU32(h) != kRecordMagic) {
      result.clean = false;
      result.stop_reason = "bad-magic";
      break;
    }
    const std::uint32_t payload_len = GetU32(h + 4);
    if (payload_len > kMaxRecordPayload) {
      result.clean = false;
      result.stop_reason = "bad-length";
      break;
    }
    if (remaining - kRecordHeaderSize < payload_len) {
      result.clean = false;
      result.stop_reason = "torn-payload";
      break;
    }
    const std::uint8_t* payload = h + kRecordHeaderSize;
    if (GetU32(h + 8) != Crc32(payload, payload_len)) {
      result.clean = false;
      result.stop_reason = "bad-crc";
      break;
    }
    Record record;
    record.time_us = static_cast<std::int64_t>(GetU64(h + 16));
    record.src = static_cast<std::int32_t>(GetU32(h + 24));
    record.dst = static_cast<std::int32_t>(GetU32(h + 28));
    record.payload.assign(payload, payload + payload_len);
    result.records.push_back(std::move(record));
    pos += kRecordHeaderSize + payload_len;
  }
  result.valid_bytes = pos;
  return result;
}

}  // namespace radar::binlog
