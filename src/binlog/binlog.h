// Append-only binary event log (DESIGN.md §16).
//
// Real-system mode uses one log format for three jobs:
//   - per-peer spool: frames addressed to a down peer are appended here
//     and drained (re-sent, then the file is reset) on reconnect,
//   - per-host state WAL: replica-set changes ('C'reate/'D'rop ops) are
//     appended so a SIGKILL'd host rebuilds its replica set on restart,
//   - capture: every frame a daemon receives can be appended for offline,
//     deterministic replay through the simulator (binlog/replay.h).
//
// Record layout (little-endian):
//
//   offset  size  field
//   0       4     record magic 0x474c4252 ("RBLG")
//   4       4     payload_len  (<= kMaxRecordPayload)
//   8       4     crc32        IEEE CRC-32 of the payload bytes
//   12      4     reserved     0
//   16      8     time_us      writer clock at append
//   24      4     src          originating node
//   28      4     dst          destination node
//   32      n     payload      opaque bytes (wire frame, WAL op, ...)
//
// The reader validates magic, length, and CRC per record and stops at the
// first record that fails — a writer killed mid-append (torn header, torn
// payload, flipped bits) costs exactly the tail, never the valid prefix.
// Reading is a pure function of the file bytes, so two reads of the same
// file yield byte-identical record sequences (the replay determinism
// anchor).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace radar::binlog {

inline constexpr std::uint32_t kRecordMagic = 0x474c4252u;  // "RBLG"
inline constexpr std::size_t kRecordHeaderSize = 32;
/// Generous bound: spool/capture payloads are single wire frames (tens of
/// bytes); anything larger is corruption.
inline constexpr std::uint32_t kMaxRecordPayload = 1 << 20;

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320) of `data`.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t size);

enum class FsyncPolicy : std::uint8_t {
  /// Let the OS flush; a crash may lose recent records (the reader still
  /// stops cleanly at the last durable one).
  kNone,
  /// fsync after every append: records survive power loss, at a syscall
  /// per record. Daemons expose this as a flag.
  kEveryRecord,
};

struct Record {
  std::int64_t time_us = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const Record&, const Record&) = default;
};

/// Appends records to a log file (created if absent, opened at the end
/// otherwise — restart continues the same log).
class BinlogWriter {
 public:
  BinlogWriter() = default;
  ~BinlogWriter();

  BinlogWriter(const BinlogWriter&) = delete;
  BinlogWriter& operator=(const BinlogWriter&) = delete;

  /// Opens `path` for appending. Returns false (and fills *error) on I/O
  /// failure.
  bool Open(const std::string& path, FsyncPolicy fsync_policy,
            std::string* error);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Appends one record; returns false on I/O failure.
  bool Append(std::int64_t time_us, std::int32_t src, std::int32_t dst,
              const std::uint8_t* payload, std::size_t payload_size);

  /// Truncates the log to empty (spool drain). The file stays open.
  bool Reset();

  void Close();

  std::uint64_t records_written() const { return records_written_; }

 private:
  int fd_ = -1;
  FsyncPolicy fsync_policy_ = FsyncPolicy::kNone;
  std::string path_;
  std::uint64_t records_written_ = 0;
  std::vector<std::uint8_t> scratch_;
};

/// Result of reading a log file: the valid record prefix plus how the
/// read ended.
struct ReadResult {
  std::vector<Record> records;
  /// True when the file ended exactly at a record boundary; false when
  /// the reader stopped early (torn/corrupt tail).
  bool clean = true;
  /// Byte offset of the first invalid record (== file size when clean).
  std::uint64_t valid_bytes = 0;
  /// Why the read stopped when !clean: "torn-header", "bad-magic",
  /// "bad-length", "torn-payload", "bad-crc".
  std::string stop_reason;
};

/// Reads every valid record of `path`. A missing file is an error
/// (nullopt); an empty file is a clean zero-record log.
std::optional<ReadResult> ReadBinlog(const std::string& path,
                                     std::string* error);

}  // namespace radar::binlog
