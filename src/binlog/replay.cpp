#include "binlog/replay.h"

#include <algorithm>

#include "binlog/binlog.h"
#include "wire/codec.h"
#include "wire/frame.h"

namespace radar::binlog {

std::optional<workload::RequestTrace> TraceFromCapture(
    const std::string& path, std::int64_t start_offset_us,
    CaptureSummary* summary, std::string* error) {
  const std::optional<ReadResult> read = ReadBinlog(path, error);
  if (!read.has_value()) return std::nullopt;

  CaptureSummary stats;
  stats.clean = read->clean;
  stats.records = read->records.size();

  // First pass: decode frames, keep the request stream with raw capture
  // timestamps.
  std::vector<workload::TraceRecord> raw;
  for (const Record& record : read->records) {
    const wire::DecodeResult decoded =
        wire::DecodeFrame(record.payload.data(), record.payload.size());
    if (decoded.status != wire::DecodeStatus::kOk ||
        decoded.consumed != record.payload.size()) {
      ++stats.undecodable;
      continue;
    }
    const wire::Message& msg = decoded.frame.msg;
    switch (wire::TypeOf(msg)) {
      case wire::MsgType::kRequest: {
        const auto& req = std::get<wire::Request>(msg);
        ++stats.requests;
        raw.push_back({record.time_us, req.gateway, req.object});
        break;
      }
      case wire::MsgType::kReplicate:
      case wire::MsgType::kMigrate:
        ++stats.create_obj;
        break;
      case wire::MsgType::kPlacementStat:
        ++stats.placement_stats;
        break;
      case wire::MsgType::kAnnounce:
        ++stats.announces;
        break;
      default:
        ++stats.other;
        break;
    }
  }
  if (summary != nullptr) *summary = stats;

  // Second pass: rebase onto the simulation clock. The capture is
  // single-writer so timestamps are already sorted in practice; clamping
  // makes replay total even on a file with a skewed clock.
  workload::RequestTrace trace;
  if (!raw.empty()) {
    const std::int64_t base = raw.front().t;
    std::int64_t prev = start_offset_us;
    for (const workload::TraceRecord& r : raw) {
      const std::int64_t t = std::max(prev, r.t - base + start_offset_us);
      trace.Append(t, r.gateway, r.object);
      prev = t;
    }
  }
  return trace;
}

}  // namespace radar::binlog
