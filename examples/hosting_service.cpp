// A tour of the hosting platform under the paper's four workloads.
//
// Runs the full 53-node backbone with dynamic replication under each
// demand pattern and reports how the protocol adapted: bandwidth saved,
// latency, replica budget, and where the replicas of the hottest object
// ended up.
//
//   ./build/examples/hosting_service [duration-seconds]
#include <cstdlib>
#include <iostream>
#include <map>

#include "driver/hosting_simulation.h"

namespace {

using namespace radar;

void DescribeHottestObject(driver::HostingSimulation& sim) {
  // Find the object with the most replicas and show their geography.
  auto& redirectors = sim.cluster().redirectors();
  ObjectId hottest = kInvalidObject;
  int most_replicas = 0;
  for (int i = 0; i < redirectors.size(); ++i) {
    auto& r = redirectors.At(i);
    for (const ObjectId x : r.Objects()) {
      if (r.ReplicaCount(x) > most_replicas) {
        most_replicas = r.ReplicaCount(x);
        hottest = x;
      }
    }
  }
  if (hottest == kInvalidObject) return;
  std::map<net::Region, int> by_region;
  for (const NodeId host : redirectors.For(hottest).ReplicaHosts(hottest)) {
    ++by_region[sim.topology().RegionOf(host)];
  }
  std::cout << "  most-replicated object: #" << hottest << " with "
            << most_replicas << " replicas (";
  bool first = true;
  for (const auto& [region, count] : by_region) {
    if (!first) std::cout << ", ";
    first = false;
    std::cout << count << " in " << net::RegionName(region);
  }
  std::cout << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 1200.0;

  for (const auto kind :
       {radar::driver::WorkloadKind::kZipf,
        radar::driver::WorkloadKind::kHotSites,
        radar::driver::WorkloadKind::kHotPages,
        radar::driver::WorkloadKind::kRegional}) {
    radar::driver::SimConfig config;
    config.workload = kind;
    config.duration = radar::SecondsToSim(seconds);
    config.num_objects = 10000;
    config.seed = 42;

    radar::driver::HostingSimulation sim(config);
    const radar::driver::RunReport report = sim.Run();
    report.PrintSummary(std::cout);
    DescribeHottestObject(sim);
    std::cout << "\n";
  }
  return 0;
}
