// Flash crowd: watch the protocol chase a demand shift in real time.
//
// The platform first adapts to a regional demand pattern. Halfway through
// the run the pattern flips: everyone suddenly wants a small set of
// globally popular pages (a news event). Using the stepping API, this
// example samples the platform every few minutes and narrates how the
// replica population and the hottest host react.
//
//   ./build/examples/flash_crowd
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <memory>

#include "driver/hosting_simulation.h"

int main() {
  using namespace radar;

  driver::SimConfig config;
  config.num_objects = 5000;
  config.duration = SecondsToSim(3600.0);
  config.seed = 7;

  driver::HostingSimulation sim(config);

  // Regional demand for the first half; a hot-pages flash for the second.
  const SimTime shift_at = SecondsToSim(1800.0);
  auto calm = std::make_unique<workload::RegionalWorkload>(
      config.num_objects, sim.topology());
  auto flash = std::make_unique<workload::HotPagesWorkload>(
      config.num_objects, /*hot_fraction=*/0.02, /*hot_probability=*/0.9,
      /*page_seed=*/99);
  sim.SetWorkload(std::make_unique<workload::DemandShiftWorkload>(
      std::move(calm), std::move(flash), shift_at));

  std::cout << "t(min)  phase      avg-replicas  busiest-host (load req/s)\n";
  for (int minute = 4; minute <= 60; minute += 4) {
    sim.StepUntil(SecondsToSim(minute * 60.0));
    double worst_load = 0.0;
    NodeId worst = 0;
    for (NodeId n = 0; n < sim.topology().num_nodes(); ++n) {
      const double load = sim.cluster().host(n).measured_load();
      if (load > worst_load) {
        worst_load = load;
        worst = n;
      }
    }
    std::cout << std::fixed << std::setw(6) << minute << "  "
              << std::left << std::setw(9)
              << (SecondsToSim(minute * 60.0) <= shift_at ? "regional"
                                                          : "flash")
              << std::right << std::setw(12) << std::setprecision(2)
              << sim.cluster().AverageReplicasPerObject() << "   "
              << sim.topology().node(worst).name << " (" << std::setprecision(1)
              << worst_load << ")\n";
  }

  const driver::RunReport report = sim.Finalize();
  std::cout << "\n";
  report.PrintSummary(std::cout);
  std::cout << "\nThe replica census jumps after t=30min as the protocol"
            << " replicates the flash\npages, then the deletion threshold"
            << " reclaims replicas the regional pattern\nno longer needs.\n";
  return 0;
}
