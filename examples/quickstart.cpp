// Quickstart: run the dynamic replication protocol on the UUNET-style
// backbone with a Zipf workload for twenty simulated minutes and print
// what happened (a few seconds of wall clock).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "driver/hosting_simulation.h"

int main() {
  radar::driver::SimConfig config;
  config.workload = radar::driver::WorkloadKind::kZipf;
  config.duration = radar::SecondsToSim(1200.0);
  config.num_objects = 2000;  // keep the quickstart snappy
  config.seed = 1;

  radar::driver::HostingSimulation simulation(config);
  const radar::driver::RunReport report = simulation.Run();

  report.PrintSummary(std::cout);
  std::cout << "\nPer-minute series:\n";
  report.PrintSeries(std::cout);
  return 0;
}
