// Running the protocol on your own backbone, with consistency categories.
//
// Builds a small three-region topology from scratch, marks a slice of the
// objects as having non-commuting per-access updates (Sec. 5: migrate-only
// unless a replica cap is granted), wires the consistency catalog into the
// cluster's replica-cap hook, and runs a provider-update cycle through the
// primary-copy UpdateManager after the simulation settles.
//
//   ./build/examples/custom_topology
#include <iostream>
#include <memory>

#include "core/consistency.h"
#include "driver/hosting_simulation.h"

int main() {
  using namespace radar;

  // A 9-node, three-region backbone: a US triangle, a European pair, and
  // an Asian pair, bridged by trans-oceanic links.
  net::TopologyBuilder builder;
  builder.AddNode("us-east", net::Region::kEasternNorthAmerica);
  builder.AddNode("us-central", net::Region::kEasternNorthAmerica);
  builder.AddNode("us-west", net::Region::kWesternNorthAmerica);
  builder.AddNode("eu-west", net::Region::kEurope);
  builder.AddNode("eu-central", net::Region::kEurope);
  builder.AddNode("ap-north", net::Region::kPacificAustralia);
  builder.AddNode("ap-south", net::Region::kPacificAustralia);
  builder.AddNode("us-south", net::Region::kEasternNorthAmerica);
  builder.AddNode("eu-north", net::Region::kEurope);
  const SimTime delay = MillisToSim(10.0);
  const double bw = 350.0 * 1024.0;
  builder.Link("us-east", "us-central", delay, bw);
  builder.Link("us-central", "us-west", delay, bw);
  builder.Link("us-east", "us-west", delay, bw);
  builder.Link("us-east", "us-south", delay, bw);
  builder.Link("us-central", "us-south", delay, bw);
  builder.Link("eu-west", "eu-central", delay, bw);
  builder.Link("eu-west", "eu-north", delay, bw);
  builder.Link("eu-central", "eu-north", delay, bw);
  builder.Link("ap-north", "ap-south", delay, bw);
  builder.Link("us-east", "eu-west", delay, bw);      // transatlantic
  builder.Link("us-south", "eu-central", delay, bw);  // transatlantic 2
  builder.Link("us-west", "ap-north", delay, bw);     // transpacific
  builder.Link("us-central", "ap-south", delay, bw);  // transpacific 2

  driver::SimConfig config;
  config.num_objects = 900;
  config.node_request_rate = 8.0;
  config.server_capacity = 40.0;
  config.protocol.high_watermark = 18.0;
  config.protocol.low_watermark = 16.0;
  config.duration = SecondsToSim(1500.0);
  config.workload = driver::WorkloadKind::kZipf;
  config.seed = 11;

  driver::HostingSimulation sim(config, std::move(builder).Build());

  // Sec. 5: catalogue the objects. Every tenth object carries
  // non-commuting per-access updates -> migrate-only (replica cap 1);
  // the rest are provider-updated and replicate freely.
  core::ObjectCatalog catalog;
  for (ObjectId x = 0; x < config.num_objects; ++x) {
    const NodeId primary = x % sim.topology().num_nodes();
    if (x % 10 == 0) {
      catalog.Register(x, core::ObjectCategory::kNonCommutingUpdates,
                       primary);
    } else {
      catalog.Register(x, core::ObjectCategory::kProviderUpdated, primary);
    }
  }
  sim.cluster().set_replica_cap(
      [&catalog](ObjectId x) { return catalog.ReplicaCap(x); });

  const driver::RunReport report = sim.Run();
  report.PrintSummary(std::cout);

  // Replica caps held: no capped object may exceed one replica.
  auto& redirectors = sim.cluster().redirectors();
  int capped_violations = 0;
  double capped_replicas = 0.0;
  double free_replicas = 0.0;
  int capped_objects = 0;
  int free_objects = 0;
  for (ObjectId x = 0; x < config.num_objects; ++x) {
    const int replicas = redirectors.For(x).ReplicaCount(x);
    if (catalog.ReplicaCap(x) == 1) {
      ++capped_objects;
      capped_replicas += replicas;
      if (replicas > 1) ++capped_violations;
    } else {
      ++free_objects;
      free_replicas += replicas;
    }
  }
  std::cout << "\nconsistency categories (Sec. 5):\n"
            << "  migrate-only objects: " << capped_objects
            << ", avg replicas " << capped_replicas / capped_objects
            << " (cap violations: " << capped_violations << ")\n"
            << "  replicable objects:   " << free_objects
            << ", avg replicas " << free_replicas / free_objects << "\n";

  // Push a provider update through the primary-copy machinery for the
  // most-replicated object and show the propagation fan-out.
  core::UpdateManager updates(
      &catalog,
      [&redirectors](ObjectId x) {
        return redirectors.For(x).ReplicaHosts(x);
      },
      core::PropagationPolicy::kBatched);
  ObjectId popular = 1;
  for (ObjectId x = 1; x < config.num_objects; ++x) {
    if (catalog.ReplicaCap(x) != 1 &&
        redirectors.For(x).ReplicaCount(x) >
            redirectors.For(popular).ReplicaCount(popular)) {
      popular = x;
    }
  }
  int shipped = 0;
  updates.set_propagate_hook(
      [&shipped](NodeId, NodeId, ObjectId) { ++shipped; });
  updates.ProviderUpdate(popular, sim.Now());
  std::cout << "\nprovider update on object #" << popular << " ("
            << redirectors.For(popular).ReplicaCount(popular)
            << " replicas): consistent before flush? "
            << (updates.IsConsistent(popular) ? "yes" : "no") << "\n";
  updates.FlushBatch(sim.Now());
  std::cout << "after epidemic flush: consistent? "
            << (updates.IsConsistent(popular) ? "yes" : "no") << ", "
            << shipped << " replica updates shipped\n";
  return 0;
}
