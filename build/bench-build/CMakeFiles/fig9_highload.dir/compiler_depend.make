# Empty compiler generated dependencies file for fig9_highload.
# This may be replaced when dependencies are built.
