file(REMOVE_RECURSE
  "../bench/fig9_highload"
  "../bench/fig9_highload.pdb"
  "CMakeFiles/fig9_highload.dir/fig9_highload.cpp.o"
  "CMakeFiles/fig9_highload.dir/fig9_highload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_highload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
