# Empty dependencies file for ablation_redirectors.
# This may be replaced when dependencies are built.
