file(REMOVE_RECURSE
  "../bench/ablation_redirectors"
  "../bench/ablation_redirectors.pdb"
  "CMakeFiles/ablation_redirectors.dir/ablation_redirectors.cpp.o"
  "CMakeFiles/ablation_redirectors.dir/ablation_redirectors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_redirectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
