# Empty compiler generated dependencies file for table2_adjustment.
# This may be replaced when dependencies are built.
