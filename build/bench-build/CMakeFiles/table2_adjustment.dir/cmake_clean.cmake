file(REMOVE_RECURSE
  "../bench/table2_adjustment"
  "../bench/table2_adjustment.pdb"
  "CMakeFiles/table2_adjustment.dir/table2_adjustment.cpp.o"
  "CMakeFiles/table2_adjustment.dir/table2_adjustment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_adjustment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
