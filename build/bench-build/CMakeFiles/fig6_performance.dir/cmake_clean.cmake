file(REMOVE_RECURSE
  "../bench/fig6_performance"
  "../bench/fig6_performance.pdb"
  "CMakeFiles/fig6_performance.dir/fig6_performance.cpp.o"
  "CMakeFiles/fig6_performance.dir/fig6_performance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
