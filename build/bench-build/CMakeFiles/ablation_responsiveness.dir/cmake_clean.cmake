file(REMOVE_RECURSE
  "../bench/ablation_responsiveness"
  "../bench/ablation_responsiveness.pdb"
  "CMakeFiles/ablation_responsiveness.dir/ablation_responsiveness.cpp.o"
  "CMakeFiles/ablation_responsiveness.dir/ablation_responsiveness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
