# Empty compiler generated dependencies file for ablation_responsiveness.
# This may be replaced when dependencies are built.
