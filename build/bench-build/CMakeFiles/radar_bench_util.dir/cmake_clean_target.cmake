file(REMOVE_RECURSE
  "libradar_bench_util.a"
)
