file(REMOVE_RECURSE
  "CMakeFiles/radar_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/radar_bench_util.dir/bench_util.cpp.o.d"
  "libradar_bench_util.a"
  "libradar_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
