# Empty compiler generated dependencies file for radar_bench_util.
# This may be replaced when dependencies are built.
