# Empty dependencies file for fig8_load.
# This may be replaced when dependencies are built.
