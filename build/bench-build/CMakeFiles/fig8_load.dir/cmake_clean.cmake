file(REMOVE_RECURSE
  "../bench/fig8_load"
  "../bench/fig8_load.pdb"
  "CMakeFiles/fig8_load.dir/fig8_load.cpp.o"
  "CMakeFiles/fig8_load.dir/fig8_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
