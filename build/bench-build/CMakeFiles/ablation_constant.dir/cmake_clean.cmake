file(REMOVE_RECURSE
  "../bench/ablation_constant"
  "../bench/ablation_constant.pdb"
  "CMakeFiles/ablation_constant.dir/ablation_constant.cpp.o"
  "CMakeFiles/ablation_constant.dir/ablation_constant.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_constant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
