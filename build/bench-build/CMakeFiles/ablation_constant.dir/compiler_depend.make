# Empty compiler generated dependencies file for ablation_constant.
# This may be replaced when dependencies are built.
