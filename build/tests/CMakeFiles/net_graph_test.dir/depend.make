# Empty dependencies file for net_graph_test.
# This may be replaced when dependencies are built.
