file(REMOVE_RECURSE
  "CMakeFiles/net_routing_test.dir/net_routing_test.cpp.o"
  "CMakeFiles/net_routing_test.dir/net_routing_test.cpp.o.d"
  "net_routing_test"
  "net_routing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
