file(REMOVE_RECURSE
  "CMakeFiles/baselines_metrics_test.dir/baselines_metrics_test.cpp.o"
  "CMakeFiles/baselines_metrics_test.dir/baselines_metrics_test.cpp.o.d"
  "baselines_metrics_test"
  "baselines_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
