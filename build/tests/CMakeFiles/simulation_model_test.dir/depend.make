# Empty dependencies file for simulation_model_test.
# This may be replaced when dependencies are built.
