file(REMOVE_RECURSE
  "CMakeFiles/simulation_model_test.dir/simulation_model_test.cpp.o"
  "CMakeFiles/simulation_model_test.dir/simulation_model_test.cpp.o.d"
  "simulation_model_test"
  "simulation_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
