
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/io_test.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/io_test.dir/io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/radar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/radar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/radar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/radar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/radar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/radar_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/radar_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/radar_driver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
