file(REMOVE_RECURSE
  "CMakeFiles/redirector_test.dir/redirector_test.cpp.o"
  "CMakeFiles/redirector_test.dir/redirector_test.cpp.o.d"
  "redirector_test"
  "redirector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redirector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
