# Empty compiler generated dependencies file for redirector_test.
# This may be replaced when dependencies are built.
