# Empty dependencies file for host_agent_test.
# This may be replaced when dependencies are built.
