file(REMOVE_RECURSE
  "CMakeFiles/host_agent_test.dir/host_agent_test.cpp.o"
  "CMakeFiles/host_agent_test.dir/host_agent_test.cpp.o.d"
  "host_agent_test"
  "host_agent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
