file(REMOVE_RECURSE
  "libradar_baselines.a"
)
