file(REMOVE_RECURSE
  "CMakeFiles/radar_baselines.dir/selectors.cpp.o"
  "CMakeFiles/radar_baselines.dir/selectors.cpp.o.d"
  "libradar_baselines.a"
  "libradar_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
