# Empty dependencies file for radar_baselines.
# This may be replaced when dependencies are built.
