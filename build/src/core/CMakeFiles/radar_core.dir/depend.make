# Empty dependencies file for radar_core.
# This may be replaced when dependencies are built.
