file(REMOVE_RECURSE
  "libradar_core.a"
)
