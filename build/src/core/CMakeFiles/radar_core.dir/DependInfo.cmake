
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/radar_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/radar_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/consistency.cpp" "src/core/CMakeFiles/radar_core.dir/consistency.cpp.o" "gcc" "src/core/CMakeFiles/radar_core.dir/consistency.cpp.o.d"
  "/root/repo/src/core/host_agent.cpp" "src/core/CMakeFiles/radar_core.dir/host_agent.cpp.o" "gcc" "src/core/CMakeFiles/radar_core.dir/host_agent.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/radar_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/radar_core.dir/params.cpp.o.d"
  "/root/repo/src/core/redirector.cpp" "src/core/CMakeFiles/radar_core.dir/redirector.cpp.o" "gcc" "src/core/CMakeFiles/radar_core.dir/redirector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/radar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
