file(REMOVE_RECURSE
  "CMakeFiles/radar_core.dir/cluster.cpp.o"
  "CMakeFiles/radar_core.dir/cluster.cpp.o.d"
  "CMakeFiles/radar_core.dir/consistency.cpp.o"
  "CMakeFiles/radar_core.dir/consistency.cpp.o.d"
  "CMakeFiles/radar_core.dir/host_agent.cpp.o"
  "CMakeFiles/radar_core.dir/host_agent.cpp.o.d"
  "CMakeFiles/radar_core.dir/params.cpp.o"
  "CMakeFiles/radar_core.dir/params.cpp.o.d"
  "CMakeFiles/radar_core.dir/redirector.cpp.o"
  "CMakeFiles/radar_core.dir/redirector.cpp.o.d"
  "libradar_core.a"
  "libradar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
