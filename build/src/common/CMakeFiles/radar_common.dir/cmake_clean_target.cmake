file(REMOVE_RECURSE
  "libradar_common.a"
)
