# Empty compiler generated dependencies file for radar_common.
# This may be replaced when dependencies are built.
