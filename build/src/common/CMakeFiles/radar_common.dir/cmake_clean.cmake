file(REMOVE_RECURSE
  "CMakeFiles/radar_common.dir/log.cpp.o"
  "CMakeFiles/radar_common.dir/log.cpp.o.d"
  "CMakeFiles/radar_common.dir/rng.cpp.o"
  "CMakeFiles/radar_common.dir/rng.cpp.o.d"
  "CMakeFiles/radar_common.dir/stats.cpp.o"
  "CMakeFiles/radar_common.dir/stats.cpp.o.d"
  "CMakeFiles/radar_common.dir/zipf.cpp.o"
  "CMakeFiles/radar_common.dir/zipf.cpp.o.d"
  "libradar_common.a"
  "libradar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
