
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/analysis.cpp" "src/net/CMakeFiles/radar_net.dir/analysis.cpp.o" "gcc" "src/net/CMakeFiles/radar_net.dir/analysis.cpp.o.d"
  "/root/repo/src/net/graph.cpp" "src/net/CMakeFiles/radar_net.dir/graph.cpp.o" "gcc" "src/net/CMakeFiles/radar_net.dir/graph.cpp.o.d"
  "/root/repo/src/net/link_stats.cpp" "src/net/CMakeFiles/radar_net.dir/link_stats.cpp.o" "gcc" "src/net/CMakeFiles/radar_net.dir/link_stats.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/net/CMakeFiles/radar_net.dir/routing.cpp.o" "gcc" "src/net/CMakeFiles/radar_net.dir/routing.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/radar_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/radar_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/topology_io.cpp" "src/net/CMakeFiles/radar_net.dir/topology_io.cpp.o" "gcc" "src/net/CMakeFiles/radar_net.dir/topology_io.cpp.o.d"
  "/root/repo/src/net/uunet.cpp" "src/net/CMakeFiles/radar_net.dir/uunet.cpp.o" "gcc" "src/net/CMakeFiles/radar_net.dir/uunet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/radar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
