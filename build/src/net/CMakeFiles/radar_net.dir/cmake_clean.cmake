file(REMOVE_RECURSE
  "CMakeFiles/radar_net.dir/analysis.cpp.o"
  "CMakeFiles/radar_net.dir/analysis.cpp.o.d"
  "CMakeFiles/radar_net.dir/graph.cpp.o"
  "CMakeFiles/radar_net.dir/graph.cpp.o.d"
  "CMakeFiles/radar_net.dir/link_stats.cpp.o"
  "CMakeFiles/radar_net.dir/link_stats.cpp.o.d"
  "CMakeFiles/radar_net.dir/routing.cpp.o"
  "CMakeFiles/radar_net.dir/routing.cpp.o.d"
  "CMakeFiles/radar_net.dir/topology.cpp.o"
  "CMakeFiles/radar_net.dir/topology.cpp.o.d"
  "CMakeFiles/radar_net.dir/topology_io.cpp.o"
  "CMakeFiles/radar_net.dir/topology_io.cpp.o.d"
  "CMakeFiles/radar_net.dir/uunet.cpp.o"
  "CMakeFiles/radar_net.dir/uunet.cpp.o.d"
  "libradar_net.a"
  "libradar_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
