file(REMOVE_RECURSE
  "libradar_net.a"
)
