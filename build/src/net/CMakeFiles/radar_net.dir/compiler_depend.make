# Empty compiler generated dependencies file for radar_net.
# This may be replaced when dependencies are built.
