file(REMOVE_RECURSE
  "CMakeFiles/radar_driver.dir/cli.cpp.o"
  "CMakeFiles/radar_driver.dir/cli.cpp.o.d"
  "CMakeFiles/radar_driver.dir/config.cpp.o"
  "CMakeFiles/radar_driver.dir/config.cpp.o.d"
  "CMakeFiles/radar_driver.dir/hosting_simulation.cpp.o"
  "CMakeFiles/radar_driver.dir/hosting_simulation.cpp.o.d"
  "CMakeFiles/radar_driver.dir/report.cpp.o"
  "CMakeFiles/radar_driver.dir/report.cpp.o.d"
  "libradar_driver.a"
  "libradar_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
