# Empty dependencies file for radar_driver.
# This may be replaced when dependencies are built.
