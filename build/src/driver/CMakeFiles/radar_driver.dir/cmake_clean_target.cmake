file(REMOVE_RECURSE
  "libradar_driver.a"
)
