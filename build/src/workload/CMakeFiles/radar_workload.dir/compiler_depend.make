# Empty compiler generated dependencies file for radar_workload.
# This may be replaced when dependencies are built.
