file(REMOVE_RECURSE
  "CMakeFiles/radar_workload.dir/trace.cpp.o"
  "CMakeFiles/radar_workload.dir/trace.cpp.o.d"
  "CMakeFiles/radar_workload.dir/workload.cpp.o"
  "CMakeFiles/radar_workload.dir/workload.cpp.o.d"
  "libradar_workload.a"
  "libradar_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
