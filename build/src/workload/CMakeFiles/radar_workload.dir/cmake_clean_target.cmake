file(REMOVE_RECURSE
  "libradar_workload.a"
)
