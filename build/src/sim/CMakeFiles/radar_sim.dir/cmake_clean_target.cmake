file(REMOVE_RECURSE
  "libradar_sim.a"
)
