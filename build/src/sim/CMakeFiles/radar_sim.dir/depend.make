# Empty dependencies file for radar_sim.
# This may be replaced when dependencies are built.
