file(REMOVE_RECURSE
  "CMakeFiles/radar_sim.dir/event_queue.cpp.o"
  "CMakeFiles/radar_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/radar_sim.dir/fcfs_server.cpp.o"
  "CMakeFiles/radar_sim.dir/fcfs_server.cpp.o.d"
  "CMakeFiles/radar_sim.dir/simulator.cpp.o"
  "CMakeFiles/radar_sim.dir/simulator.cpp.o.d"
  "libradar_sim.a"
  "libradar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
