file(REMOVE_RECURSE
  "libradar_metrics.a"
)
