# Empty compiler generated dependencies file for radar_metrics.
# This may be replaced when dependencies are built.
