file(REMOVE_RECURSE
  "CMakeFiles/radar_metrics.dir/collector.cpp.o"
  "CMakeFiles/radar_metrics.dir/collector.cpp.o.d"
  "libradar_metrics.a"
  "libradar_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
