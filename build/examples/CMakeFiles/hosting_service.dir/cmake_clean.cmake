file(REMOVE_RECURSE
  "CMakeFiles/hosting_service.dir/hosting_service.cpp.o"
  "CMakeFiles/hosting_service.dir/hosting_service.cpp.o.d"
  "hosting_service"
  "hosting_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosting_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
