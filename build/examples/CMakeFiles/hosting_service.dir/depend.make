# Empty dependencies file for hosting_service.
# This may be replaced when dependencies are built.
