# Empty compiler generated dependencies file for radar_sim_cli.
# This may be replaced when dependencies are built.
