file(REMOVE_RECURSE
  "CMakeFiles/radar_sim_cli.dir/radar_sim.cpp.o"
  "CMakeFiles/radar_sim_cli.dir/radar_sim.cpp.o.d"
  "radar-sim"
  "radar-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
