file(REMOVE_RECURSE
  "CMakeFiles/topology_doctor.dir/topology_doctor.cpp.o"
  "CMakeFiles/topology_doctor.dir/topology_doctor.cpp.o.d"
  "topology_doctor"
  "topology_doctor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_doctor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
