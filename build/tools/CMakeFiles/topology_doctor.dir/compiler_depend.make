# Empty compiler generated dependencies file for topology_doctor.
# This may be replaced when dependencies are built.
