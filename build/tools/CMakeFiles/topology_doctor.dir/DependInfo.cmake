
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/topology_doctor.cpp" "tools/CMakeFiles/topology_doctor.dir/topology_doctor.cpp.o" "gcc" "tools/CMakeFiles/topology_doctor.dir/topology_doctor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/radar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/radar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/radar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
