// radar-workctl: real-mode workload driver and control client.
//
//   radar-workctl --config nodes.conf --id 4 run --requests 200 --objects 20
//   radar-workctl --config nodes.conf --id 4 shutdown --target 1
//
// `run` plays the client of Fig. 2: for each request it asks the
// redirector where object x lives (kRequest -> kRedirect), then fetches
// from the chosen host (kRequest -> kAck), round-robining objects and
// gateway attributions. `shutdown` delivers a kShutdown frame to one
// node. Exit status: run fails (1) if any request got no redirect or no
// live replica; shutdown fails if the target never became reachable.
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "common/log.h"
#include "transport/node_config.h"
#include "transport/tcp_transport.h"
#include "transport/transport.h"

namespace {

using radar::NodeId;
using radar::ObjectId;

struct Flags {
  std::string config_path;
  NodeId id = radar::kInvalidNode;
  std::string mode;  // "run" | "shutdown"
  std::int64_t requests = 0;
  std::int32_t num_objects = 1;
  NodeId target = radar::kInvalidNode;
  int timeout_ms = 5000;
};

constexpr const char* kUsage =
    "usage: radar-workctl --config FILE --id N run --requests R --objects M\n"
    "       radar-workctl --config FILE --id N shutdown --target K\n"
    "  --timeout-ms MS   per-exchange deadline (default 5000)\n";

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "run" || arg == "shutdown") {
      flags->mode = arg;
    } else if (arg == "--config" && has_value) {
      flags->config_path = argv[++i];
    } else if (arg == "--id" && has_value) {
      flags->id = static_cast<NodeId>(std::atoi(argv[++i]));
    } else if (arg == "--requests" && has_value) {
      flags->requests = std::atoll(argv[++i]);
    } else if (arg == "--objects" && has_value) {
      flags->num_objects = std::atoi(argv[++i]);
    } else if (arg == "--target" && has_value) {
      flags->target = static_cast<NodeId>(std::atoi(argv[++i]));
    } else if (arg == "--timeout-ms" && has_value) {
      flags->timeout_ms = std::atoi(argv[++i]);
    } else {
      std::cerr << "error: bad flag '" << arg << "'\n" << kUsage;
      return false;
    }
  }
  if (flags->config_path.empty() || flags->id == radar::kInvalidNode ||
      flags->mode.empty()) {
    std::cerr << "error: --config, --id and a mode are required\n" << kUsage;
    return false;
  }
  return true;
}

/// Records the latest redirect / ack so the synchronous request loop can
/// wait on them.
class ClientBrain final : public radar::transport::Handler {
 public:
  void OnFrame(NodeId from,
               const radar::wire::DecodedFrame& frame) override {
    (void)from;
    if (const auto* r = std::get_if<radar::wire::Redirect>(&frame.msg)) {
      redirect_ = *r;
    } else if (const auto* a = std::get_if<radar::wire::Ack>(&frame.msg)) {
      ack_ = *a;
    }
  }

  std::optional<radar::wire::Redirect> TakeRedirect(ObjectId object) {
    if (redirect_.has_value() && redirect_->object == object) {
      const auto r = redirect_;
      redirect_.reset();
      return r;
    }
    return std::nullopt;
  }

  std::optional<radar::wire::Ack> TakeAck(std::uint64_t seq) {
    if (ack_.has_value() && ack_->acked_seq == seq) {
      const auto a = ack_;
      ack_.reset();
      return a;
    }
    return std::nullopt;
  }

 private:
  std::optional<radar::wire::Redirect> redirect_;
  std::optional<radar::wire::Ack> ack_;
};

bool WaitPeerUp(radar::transport::TcpTransport& transport, NodeId peer,
                int timeout_ms) {
  const std::int64_t deadline = transport.Now() + timeout_ms * 1000LL;
  transport.ConnectTo(peer);
  while (!transport.IsPeerUp(peer)) {
    if (transport.Now() >= deadline) return false;
    transport.PollOnce(10);
  }
  return true;
}

int RunWorkload(const Flags& flags, const radar::transport::NodeConfig& config,
                radar::transport::TcpTransport& transport,
                ClientBrain& brain) {
  const NodeId redirector = config.redirector();
  const auto& hosts = config.hosts();
  std::int64_t ok = 0;
  std::int64_t no_replica = 0;
  std::int64_t redirect_timeouts = 0;
  std::int64_t fetch_failures = 0;
  for (std::int64_t i = 0; i < flags.requests; ++i) {
    const ObjectId object =
        static_cast<ObjectId>(i % flags.num_objects);
    const NodeId gateway = hosts[static_cast<std::size_t>(i) % hosts.size()];
    if (!WaitPeerUp(transport, redirector, flags.timeout_ms)) {
      ++redirect_timeouts;
      continue;
    }
    transport.Send(redirector, radar::wire::Request{object, gateway});
    std::optional<radar::wire::Redirect> redirect;
    const std::int64_t deadline =
        transport.Now() + flags.timeout_ms * 1000LL;
    while (!(redirect = brain.TakeRedirect(object)).has_value()) {
      if (transport.Now() >= deadline) break;
      transport.PollOnce(10);
    }
    if (!redirect.has_value()) {
      ++redirect_timeouts;
      continue;
    }
    if (redirect->host == radar::kInvalidNode) {
      ++no_replica;
      continue;
    }
    if (!WaitPeerUp(transport, redirect->host, flags.timeout_ms)) {
      ++fetch_failures;
      continue;
    }
    const std::uint64_t seq = transport.Send(
        redirect->host, radar::wire::Request{object, gateway});
    std::optional<radar::wire::Ack> ack;
    const std::int64_t fetch_deadline =
        transport.Now() + flags.timeout_ms * 1000LL;
    while (!(ack = brain.TakeAck(seq)).has_value()) {
      if (transport.Now() >= fetch_deadline) break;
      transport.PollOnce(10);
    }
    if (ack.has_value() && ack->accepted) {
      ++ok;
    } else {
      ++fetch_failures;
    }
  }
  std::cout << "{\"schema\":\"radar.workctl/1\",\"requests\":"
            << flags.requests << ",\"ok\":" << ok
            << ",\"no_replica\":" << no_replica
            << ",\"redirect_timeouts\":" << redirect_timeouts
            << ",\"fetch_failures\":" << fetch_failures << "}\n";
  return ok == flags.requests ? 0 : 1;
}

int SendShutdown(const Flags& flags,
                 radar::transport::TcpTransport& transport) {
  if (flags.target == radar::kInvalidNode) {
    std::cerr << "error: shutdown needs --target\n";
    return 2;
  }
  if (!WaitPeerUp(transport, flags.target, flags.timeout_ms)) {
    std::cerr << "error: node " << flags.target << " unreachable\n";
    return 1;
  }
  transport.Send(flags.target, radar::wire::Shutdown{});
  const std::int64_t deadline = transport.Now() + flags.timeout_ms * 1000LL;
  while (!transport.Flushed() && transport.Now() < deadline) {
    transport.PollOnce(10);
  }
  return transport.Flushed() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radar;
  // RADAR_DEBUG=1 turns on the transport's connection-lifecycle
  // trace (accepts, identifies, closes, dial timeouts) on stderr.
  if (std::getenv("RADAR_DEBUG") != nullptr) {
    SetLogLevel(LogLevel::kDebug);
  }
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  std::string error;
  const auto config = transport::NodeConfig::LoadFile(flags.config_path,
                                                      &error);
  if (!config) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  if (!config->Has(flags.id) ||
      config->At(flags.id).role != transport::NodeRole::kClient) {
    std::cerr << "error: node " << flags.id << " is not a client\n";
    return 2;
  }
  if (flags.num_objects <= 0 || config->hosts().empty()) {
    std::cerr << "error: need objects and host nodes\n";
    return 2;
  }

  ClientBrain brain;
  transport::TcpTransport transport(*config, flags.id,
                                    wire::PeerRole::kClient, &brain, {});
  if (!transport.Start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  const int rc = flags.mode == "run" ? RunWorkload(flags, *config, transport,
                                                   brain)
                                     : SendShutdown(flags, transport);
  transport.Stop();
  return rc;
}
