// radar_lint: project-specific source linter.
//
// The compiler cannot see repo conventions or the paper's protocol
// invariants; this linter enforces them statically. Rules (see DESIGN.md
// "Correctness tooling"):
//   - no rand()/srand() — all randomness goes through common/rng.h
//   - no std::cout/std::cerr in library code — use common/log.h
//   - no raw assert() — use RADAR_CHECK, which is on in every build type
//   - no `using namespace` at file scope in headers
//   - every header starts with #pragma once
//   - protocol threshold constants (0.6, 1/6, 6u-style multiples, the
//     default u/m thresholds) must live in core/params.h only
//   - std::thread / std::jthread / detach() only in src/runner/ — all
//     concurrency goes through the experiment engine's ThreadPool so the
//     rest of the tree stays single-threaded by construction
//   - no std::function in src/sim/ — the simulation hot path schedules
//     millions of closures per run and must stay allocation-free; event
//     code uses sim::InplaceFunction (sim/inplace_function.h)
//   - fault-model parameters (MTBF/MTTR, message drop/delay
//     probabilities) only in src/fault/ — the failure model stays in one
//     module so no subsystem grows its own notion of "how often things
//     break", mirroring the protocol-constant rule
//   - no std::unordered_map / std::map in src/core/ — the protocol hot
//     path indexes dense ObjectId/NodeId key spaces, where node-based
//     containers cost a cache miss per probe; use radar::SlabMap
//     (common/slab_map.h) or a sorted inline vector (DESIGN.md §12)
//
// The logic is a library so tests can feed it sources directly; the
// radar_lint binary is a thin filesystem walker around it.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace radar::lint {

struct Violation {
  std::string file;  // path label as given by the caller
  int line = 0;      // 1-based
  std::string rule;  // short rule id, e.g. "banned-rand"
  std::string message;
};

struct FileKind {
  bool is_header = false;
  /// core/params.h (and only it) may define protocol constants.
  bool allow_protocol_literals = false;
  /// src/runner/ (and only it) may create or detach threads.
  bool allow_threads = false;
  /// src/sim/ must not use std::function (hot path stays allocation-free).
  bool forbid_std_function = false;
  /// src/fault/ (and only it) may name fault-model parameters — MTBF,
  /// MTTR, message drop/delay probabilities. Appended last so positional
  /// FileKind initializers elsewhere keep their meaning.
  bool allow_fault_injection = false;
  /// src/core/ must not use std::unordered_map / std::map — hot-path
  /// tables use radar::SlabMap or sorted inline vectors (DESIGN.md §12).
  /// Appended last so positional FileKind initializers keep their meaning.
  bool forbid_hash_maps = false;
};

/// Returns `content` with comments and string/char literal bodies blanked
/// out (newlines preserved), so token checks don't fire on prose.
std::string StripCommentsAndStrings(std::string_view content);

/// Lints a single source, returning all violations found.
std::vector<Violation> LintSource(const std::string& path_label,
                                  std::string_view content,
                                  const FileKind& kind);

/// Walks `src_root` recursively, linting every .h/.cpp file. Paths in the
/// returned violations are relative to `src_root`'s parent.
std::vector<Violation> LintTree(const std::filesystem::path& src_root);

/// Formats a violation as "file:line: [rule] message".
std::string FormatViolation(const Violation& v);

}  // namespace radar::lint
