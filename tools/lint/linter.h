// radar_lint: project-specific static analyzer.
//
// The compiler cannot see repo conventions or the paper's protocol
// invariants; this analyzer enforces them. It is two layers (DESIGN.md
// §13): a C++ lexer (lint/lexer.h) producing a per-file token stream, and
// a set of passes that walk tokens. Rules:
//   - no rand()/srand() — all randomness goes through common/rng.h
//   - no std::cout/std::cerr in library code — use common/log.h (the
//     tools/ CLI mains are exempt: they ARE the user interface)
//   - no raw assert() — use RADAR_CHECK, which is on in every build type
//   - no `using namespace` at file scope in headers
//   - every header starts with #pragma once
//   - protocol threshold constants (0.6, 1/6, 6u-style multiples, the
//     default u/m thresholds) must live in core/params.h only
//   - thread-confinement: std::thread / std::jthread / detach(), and the
//     deferred-concurrency surface std::async / std::future /
//     std::promise / #pragma omp, only in src/runner/ — all concurrency
//     goes through the experiment engine's ThreadPool so the rest of the
//     tree stays single-threaded by construction
//   - no std::function in src/sim/ — the simulation hot path schedules
//     millions of closures per run and must stay allocation-free; event
//     code uses sim::InplaceFunction (sim/inplace_function.h)
//   - fault-model parameters (MTBF/MTTR, message drop/delay
//     probabilities) only in src/fault/
//   - no std::unordered_map / std::map in src/core/ — hot-path tables use
//     radar::SlabMap or sorted inline vectors (DESIGN.md §12)
//   - shard-confinement: std::mutex / std::atomic and the rest of the
//     <mutex>/<atomic> synchronization vocabulary are banned in src/sim/
//     outside the mailbox/barrier files (sim/mailbox.h, sim/shard.h,
//     sim/shard.cpp) — shard state is single-owner by construction and
//     cross-shard traffic goes through mailboxes at window barriers
//     (DESIGN.md §14), so a lock anywhere else is a design smell
//   - seq-reservation: EventQueue::PushAtSeq / Simulator::ScheduleKeyedAt
//     only in src/sim/ and the sharded engine (driver/shard_exec*,
//     driver/shard_plan*) — keyed pushes bypass the auto seq counter, and
//     callers outside the reservation protocol would silently break the
//     keyed-before-auto tiebreak (sim/event_queue.h)
//   - transport-confinement: socket/poll/fcntl-family syscalls (and, via
//     the wall-clock allowance, real-clock reads) only in src/transport/
//     and src/binlog/ — every other layer talks through the Transport
//     seam (transport/transport.h), which is what lets the simulator and
//     the daemons share the protocol brains verbatim (DESIGN.md §16)
//
// Shard-readiness passes (the ROADMAP's deterministic-parallel-execution
// item depends on all four holding tree-wide):
//   - nondeterminism audit: iteration over unordered containers,
//     pointer-keyed ordered containers, std::hash of pointer types, and
//     wall-clock reads outside the runner/bench timing code — each one a
//     way for results to depend on addresses or the host machine
//   - mutable-global audit: every namespace-scope or function-local
//     static mutable object must be race-safe (atomic / mutex) AND appear
//     in the shared-state whitelist, because an unlisted global is a
//     cross-shard race once one run spans threads
//   - hot-path allocation audit: inside // RADAR_HOT regions, `new`,
//     make_shared/make_unique, and std::function construction are banned
//   - shard-readiness report: AnalysisJson (lint/analysis_json.h) emits
//     the radar.analysis/1 inventory of globals, whitelist hits, and hot
//     regions — the checklist for the shard-split PR
//
// The logic is a library so tests can feed it sources directly; the
// radar_lint binary is a thin filesystem walker around it.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace radar::lint {

struct Violation {
  std::string file;  // path label as given by the caller
  int line = 0;      // 1-based
  std::string rule;  // short rule id, e.g. "banned-rand"
  std::string message;
};

struct FileKind {
  bool is_header = false;
  /// core/params.h (and only it) may define protocol constants.
  bool allow_protocol_literals = false;
  /// src/runner/ (and only it) may create or detach threads.
  bool allow_threads = false;
  /// src/sim/ must not use std::function (hot path stays allocation-free).
  bool forbid_std_function = false;
  /// src/fault/ (and only it) may name fault-model parameters — MTBF,
  /// MTTR, message drop/delay probabilities. Appended last so positional
  /// FileKind initializers elsewhere keep their meaning.
  bool allow_fault_injection = false;
  /// src/core/ must not use std::unordered_map / std::map — hot-path
  /// tables use radar::SlabMap or sorted inline vectors (DESIGN.md §12).
  /// Appended last so positional FileKind initializers keep their meaning.
  bool forbid_hash_maps = false;
  /// src/runner/ (timing the sweep) and bench code may read wall clocks;
  /// everything else must take time from the simulation clock so paired
  /// runs stay byte-reproducible. Appended last (see above).
  bool allow_wall_clock = false;
  /// tools/ CLI entry points may write to std::cout/std::cerr; library
  /// code may not. Appended last (see above).
  bool allow_cli_output = false;
  /// sim/mailbox.h, sim/shard.h, sim/shard.cpp (and only they) may name
  /// <mutex>/<atomic> synchronization types inside src/sim/ — everywhere
  /// else in the simulation tree, shard state is single-owner and a lock
  /// is a design smell (DESIGN.md §14). Appended last (see above).
  bool allow_shard_sync = false;
  /// src/sim/ and the sharded engine (driver/shard_exec*, shard_plan*)
  /// may call EventQueue::PushAtSeq / Simulator::ScheduleKeyedAt; other
  /// callers would bypass the seq reservation protocol. Appended last.
  bool allow_keyed_push = false;
  /// src/net/ must not use radar::Rng — net/topology_gen.cpp owns the
  /// only generator randomness, so routing, oracles, and fault epoching
  /// stay pure functions of the graph. Appended last (see above).
  bool forbid_net_rng = false;
  /// src/transport/ and src/binlog/ (and only they) may make
  /// socket/poll/fcntl-family syscalls — and they also get the wall-clock
  /// allowance (TcpTransport::Now is CLOCK_MONOTONIC). Everything else
  /// reaches the network through the Transport seam so the protocol
  /// brains stay shareable with the simulator. Appended last (see above).
  bool allow_transport_syscalls = false;
};

/// One sanctioned piece of shared mutable state. A mutable global is
/// accepted only when it is race-safe AND matches an entry here; the
/// entry's reason is carried into the radar.analysis/1 report.
struct GlobalWhitelistEntry {
  std::string file_suffix;  ///< matched against the end of the path label
  std::string name;         ///< declared identifier
  std::string reason;       ///< why this global is allowed to exist
};

/// The built-in whitelist for this repository. Seed: common/log.cpp
/// g_level (process-wide log threshold, std::atomic).
const std::vector<GlobalWhitelistEntry>& DefaultGlobalWhitelist();

/// A mutable global found by the audit (reported whether or not it is
/// whitelisted — the report enumerates ALL shared mutable state).
struct MutableGlobal {
  std::string file;
  int line = 0;
  std::string name;
  bool race_safe = false;       ///< std::atomic / mutex / once_flag type
  bool whitelisted = false;     ///< matched a GlobalWhitelistEntry
  bool function_local = false;  ///< function-local static vs namespace scope
  std::string reason;           ///< whitelist reason when whitelisted
};

/// A // RADAR_HOT ... // RADAR_HOT_END region (allocation-audited code).
struct HotRegion {
  std::string file;
  std::string label;   ///< text after "RADAR_HOT:" on the opening comment
  int begin_line = 0;
  int end_line = 0;    ///< 0 while unterminated (also a violation)
};

/// Everything the analyzer learned about one source or tree: violations
/// plus the shared-state inventory the shard-readiness report serializes.
struct Analysis {
  std::vector<Violation> violations;
  std::vector<MutableGlobal> mutable_globals;
  std::vector<HotRegion> hot_regions;
  int files_scanned = 0;
};

/// Returns `content` with comments and string/char literal bodies blanked
/// out (newlines preserved, plain literals keep their delimiters), so
/// text-level consumers don't trip on prose. Built on the lexer, so raw
/// strings and backslash line-splices blank correctly.
std::string StripCommentsAndStrings(std::string_view content);

/// Runs every pass over one source, appending findings to `*out`.
void AnalyzeSource(const std::string& path_label, std::string_view content,
                   const FileKind& kind,
                   const std::vector<GlobalWhitelistEntry>& whitelist,
                   Analysis* out);

/// AnalyzeSource against the default whitelist, returning violations only.
std::vector<Violation> LintSource(const std::string& path_label,
                                  std::string_view content,
                                  const FileKind& kind);

/// Walks each root recursively, analyzing every .h/.cpp file. Paths in
/// the result are prefixed with the root's basename ("src/...",
/// "tools/..."). A root named "tools" gets the CLI profile; any other
/// root gets the src/ profile (params.h, runner/, sim/, fault/, core/
/// carve-outs).
Analysis AnalyzeTree(const std::vector<std::filesystem::path>& roots);

/// AnalyzeTree over one root, returning violations only (compatibility
/// surface for the original line-based linter's callers).
std::vector<Violation> LintTree(const std::filesystem::path& src_root);

/// Formats a violation as "file:line: [rule] message".
std::string FormatViolation(const Violation& v);

}  // namespace radar::lint
