#include "lint/analysis_json.h"

namespace radar::lint {

using driver::JsonValue;

JsonValue AnalysisJson(const Analysis& analysis,
                       const std::vector<std::filesystem::path>& roots,
                       const std::vector<GlobalWhitelistEntry>& whitelist) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("schema", std::string(kAnalysisSchema));

  JsonValue roots_json = JsonValue::MakeArray();
  for (const std::filesystem::path& root : roots) {
    roots_json.Append(root.filename().generic_string());
  }
  doc.Set("roots", std::move(roots_json));
  doc.Set("files_scanned", static_cast<std::int64_t>(analysis.files_scanned));
  doc.Set("violation_count",
          static_cast<std::int64_t>(analysis.violations.size()));

  JsonValue violations = JsonValue::MakeArray();
  for (const Violation& v : analysis.violations) {
    violations.Append(JsonValue::MakeObject()
                          .Set("file", v.file)
                          .Set("line", static_cast<std::int64_t>(v.line))
                          .Set("rule", v.rule)
                          .Set("message", v.message));
  }
  doc.Set("violations", std::move(violations));

  JsonValue globals = JsonValue::MakeArray();
  for (const MutableGlobal& g : analysis.mutable_globals) {
    globals.Append(JsonValue::MakeObject()
                       .Set("name", g.name)
                       .Set("file", g.file)
                       .Set("line", static_cast<std::int64_t>(g.line))
                       .Set("race_safe", g.race_safe)
                       .Set("whitelisted", g.whitelisted)
                       .Set("function_local", g.function_local)
                       .Set("reason", g.reason));
  }
  doc.Set("mutable_globals", std::move(globals));

  JsonValue regions = JsonValue::MakeArray();
  for (const HotRegion& r : analysis.hot_regions) {
    regions.Append(
        JsonValue::MakeObject()
            .Set("file", r.file)
            .Set("label", r.label)
            .Set("begin_line", static_cast<std::int64_t>(r.begin_line))
            .Set("end_line", static_cast<std::int64_t>(r.end_line)));
  }
  doc.Set("hot_regions", std::move(regions));

  JsonValue entries = JsonValue::MakeArray();
  for (const GlobalWhitelistEntry& e : whitelist) {
    bool hit = false;
    for (const MutableGlobal& g : analysis.mutable_globals) {
      if (g.whitelisted && g.name == e.name) {
        hit = true;
        break;
      }
    }
    entries.Append(JsonValue::MakeObject()
                       .Set("file_suffix", e.file_suffix)
                       .Set("name", e.name)
                       .Set("reason", e.reason)
                       .Set("hit", hit));
  }
  doc.Set("whitelist", std::move(entries));
  return doc;
}

}  // namespace radar::lint
