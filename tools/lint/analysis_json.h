// Shard-readiness report: serializes a lint::Analysis as the
// radar.analysis/1 JSON document (DESIGN.md §13). The report is the
// checklist for the ROADMAP's shard-split PR: it enumerates every piece
// of shared mutable state (whitelisted or not), every RADAR_HOT region,
// and any outstanding violations, so "is the tree shard-ready?" is a
// machine-checkable question.
//
// Serialization goes through driver::JsonValue, which is deterministic
// (insertion-ordered objects, shortest-round-trip numbers): analyzing the
// same tree twice yields byte-identical reports, so CI can archive and
// diff them.
#pragma once

#include <filesystem>
#include <vector>

#include "driver/report_json.h"
#include "lint/linter.h"

namespace radar::lint {

/// Schema tag of the shard-readiness report; bump the suffix on any
/// incompatible field change.
inline constexpr std::string_view kAnalysisSchema = "radar.analysis/1";

/// Builds the radar.analysis/1 document:
///   schema, roots[], files_scanned, violation_count, violations[],
///   mutable_globals[] (name/file/line/race_safe/whitelisted/
///   function_local/reason), hot_regions[] (file/label/begin_line/
///   end_line), whitelist[] (file_suffix/name/reason/hit).
driver::JsonValue AnalysisJson(
    const Analysis& analysis,
    const std::vector<std::filesystem::path>& roots,
    const std::vector<GlobalWhitelistEntry>& whitelist);

}  // namespace radar::lint
