// A lightweight C++ lexer for the radar_lint analyzer.
//
// The old linter matched regexes against comment-stripped lines, which
// cannot see constructs that span lines (backslash splices), nested
// literal syntax (raw strings, digit separators), or token adjacency
// ("assert" vs "static_assert"). This lexer produces a flat token stream
// with accurate physical line numbers so every rule becomes a token-
// sequence match instead of a text heuristic.
//
// Contract (DESIGN.md §13):
//   - Backslash-newline splices are removed before tokenization (the
//     standard's translation phase 2), so a token spelled across a splice
//     is one token carrying the line number of its first character. The
//     phase-1/2 reversal inside raw strings is NOT implemented: a raw
//     string containing a literal backslash-newline is still joined. That
//     only perturbs the *text* of that string token — its source span, and
//     therefore blanking and line numbers, stay exact.
//   - Raw strings (R"delim(...)delim", with encoding prefixes) are lexed
//     with full delimiter tracking; escapes are meaningless inside them.
//   - Ordinary string/char literals honour escape sequences, so '\'' and
//     "\"" do not end the literal early. Adjacent string literals are
//     separate tokens (concatenation is a parser-level concept the passes
//     don't need).
//   - pp-numbers keep digit separators in `text`; NormalizeNumber strips
//     them for value comparison. 1'000'000 is one kNumber token.
//   - Comments are tokens (kComment) carrying their full text, so passes
//     can read structured annotations (// RADAR_HOT, // RADAR_HOT_END).
//   - A `#` that starts a logical line opens a preprocessor directive:
//     every token to the end of that logical line carries the directive's
//     name ("include", "pragma", "define", ...). Passes skip `include`
//     directives (a header *name* is not a use) but scan macro bodies.
//   - Every token records its [begin, end) byte span in the ORIGINAL
//     content, which is what makes exact blanking possible.
//
// The lexer never fails: malformed input (unterminated literal, stray
// byte) degrades to a best-effort token ending at EOF.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace radar::lint {

enum class TokKind : std::uint8_t {
  kIdentifier,  ///< identifiers and keywords (no keyword table needed)
  kNumber,      ///< pp-number: 42, 0.6, 1'000'000, 0x1fULL, 1e-3
  kString,      ///< "...", R"(...)", u8"...", including the delimiters
  kChar,        ///< 'x', '\'', u'ሴ'
  kPunct,       ///< one punctuation char, except "::" which is one token
  kComment,     ///< // or /* */, full text including the markers
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;        ///< spliced source text of the token
  int line = 0;            ///< 1-based physical line of the first char
  std::string directive;   ///< "include", "pragma", ... when inside a
                           ///< preprocessor directive; empty otherwise
  std::size_t begin = 0;   ///< byte span in the original (unspliced)
  std::size_t end = 0;     ///< content: [begin, end)
};

/// Tokenizes `content`. Whitespace and newlines produce no tokens; line
/// structure is recoverable from Token::line and the spans.
std::vector<Token> Lex(std::string_view content);

/// Returns a number token's text with digit separators removed, so
/// "1'000'000" compares equal to "1000000".
std::string NormalizeNumber(std::string_view text);

}  // namespace radar::lint
