#include "lint/lexer.h"

#include <cctype>

namespace radar::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Translation phase 2: `text` is the content with backslash-newline
/// splices removed; `line[i]` / `pos[i]` map each spliced byte back to its
/// physical line and original offset.
struct SplicedSource {
  std::string text;
  std::vector<int> line;
  std::vector<std::size_t> pos;
};

SplicedSource Splice(std::string_view content) {
  SplicedSource s;
  s.text.reserve(content.size());
  s.line.reserve(content.size());
  s.pos.reserve(content.size());
  int line = 1;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\\') {
      // "\<newline>" and "\<CR><newline>" vanish; the physical line still
      // advances so subsequent tokens report their true line.
      if (i + 1 < content.size() && content[i + 1] == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (i + 2 < content.size() && content[i + 1] == '\r' &&
          content[i + 2] == '\n') {
        ++line;
        i += 2;
        continue;
      }
    }
    s.text.push_back(c);
    s.line.push_back(line);
    s.pos.push_back(i);
    if (c == '\n') ++line;
  }
  return s;
}

class Lexer {
 public:
  explicit Lexer(std::string_view content)
      : original_size_(content.size()), s_(Splice(content)) {}

  std::vector<Token> Run() {
    const std::string_view t = s_.text;
    std::size_t i = 0;
    while (i < t.size()) {
      const char c = t[i];
      if (c == '\n') {
        directive_.clear();
        ++i;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++i;
        continue;
      }
      const std::size_t start = i;
      if (c == '/' && i + 1 < t.size() && t[i + 1] == '/') {
        i += 2;
        while (i < t.size() && t[i] != '\n') ++i;
        Emit(TokKind::kComment, start, i);
        continue;
      }
      if (c == '/' && i + 1 < t.size() && t[i + 1] == '*') {
        i += 2;
        while (i + 1 < t.size() && !(t[i] == '*' && t[i + 1] == '/')) ++i;
        i = i + 1 < t.size() ? i + 2 : t.size();
        Emit(TokKind::kComment, start, i);
        continue;
      }
      if (c == '"') {
        i = ScanQuoted(i, '"');
        Emit(TokKind::kString, start, i);
        continue;
      }
      if (c == '\'') {
        i = ScanQuoted(i, '\'');
        Emit(TokKind::kChar, start, i);
        continue;
      }
      if (IsIdentStart(c)) {
        std::size_t j = i + 1;
        while (j < t.size() && IsIdentChar(t[j])) ++j;
        const std::string_view ident = t.substr(i, j - i);
        // Encoding prefixes glue onto the literal that follows: u8"x",
        // L'x', and the raw-string forms R"(...)", u8R"(...)".
        if (j < t.size() && (t[j] == '"' || t[j] == '\'')) {
          const bool raw = !ident.empty() && ident.back() == 'R' &&
                           (ident == "R" || ident == "u8R" || ident == "uR" ||
                            ident == "UR" || ident == "LR");
          const bool prefix = ident == "u8" || ident == "u" || ident == "U" ||
                              ident == "L";
          if (raw && t[j] == '"') {
            i = ScanRawString(j);
            Emit(TokKind::kString, start, i);
            continue;
          }
          if (prefix) {
            const char quote = t[j];
            i = ScanQuoted(j, quote);
            Emit(quote == '"' ? TokKind::kString : TokKind::kChar, start, i);
            continue;
          }
        }
        i = j;
        Emit(TokKind::kIdentifier, start, i);
        if (directive_pending_name_) {
          directive_ = std::string(ident);
          directive_pending_name_ = false;
          // The directive name token itself carries the name too.
          tokens_.back().directive = directive_;
        }
        continue;
      }
      if (IsDigit(c) || (c == '.' && i + 1 < t.size() && IsDigit(t[i + 1]))) {
        i = ScanNumber(i);
        Emit(TokKind::kNumber, start, i);
        continue;
      }
      // Punctuation. "::" matters to the passes (std::thread vs thread),
      // so it is the one multi-char punctuator emitted as a unit.
      if (c == ':' && i + 1 < t.size() && t[i + 1] == ':') {
        i += 2;
        Emit(TokKind::kPunct, start, i);
        continue;
      }
      ++i;
      Emit(TokKind::kPunct, start, i);
      if (c == '#' && AtLineStart(start)) {
        directive_pending_name_ = true;
        directive_.clear();
      }
    }
    return std::move(tokens_);
  }

 private:
  /// Scans an ordinary (escape-honouring) string or char literal starting
  /// at the opening quote `t[i]`; returns the index past the closing
  /// quote (or EOF / end-of-line for an unterminated literal).
  std::size_t ScanQuoted(std::size_t i, char quote) {
    const std::string_view t = s_.text;
    ++i;  // opening quote
    while (i < t.size()) {
      const char c = t[i];
      if (c == '\\' && i + 1 < t.size()) {
        i += 2;
        continue;
      }
      if (c == quote) return i + 1;
      if (c == '\n') return i;  // unterminated: stop at the line break
      ++i;
    }
    return i;
  }

  /// Scans a raw string whose opening `"` is at `t[i]`; handles arbitrary
  /// delimiters, including ones that look like the terminator:
  /// R"ab(text)" )ab" ends only at `)ab"`.
  std::size_t ScanRawString(std::size_t i) {
    const std::string_view t = s_.text;
    ++i;  // opening quote
    std::string delim;
    while (i < t.size() && t[i] != '(' && t[i] != '\n' &&
           delim.size() < 16) {
      delim.push_back(t[i]);
      ++i;
    }
    if (i >= t.size() || t[i] != '(') return i;  // malformed; best effort
    ++i;
    const std::string close = ")" + delim + "\"";
    const std::size_t end = t.find(close, i);
    if (end == std::string_view::npos) return t.size();
    return end + close.size();
  }

  /// Scans a pp-number: digits, letters, dots, digit separators, and
  /// sign characters directly after an exponent marker.
  std::size_t ScanNumber(std::size_t i) {
    const std::string_view t = s_.text;
    ++i;
    while (i < t.size()) {
      const char c = t[i];
      if (IsIdentChar(c) || c == '.') {
        ++i;
        continue;
      }
      if (c == '\'' && i + 1 < t.size() && IsIdentChar(t[i + 1])) {
        i += 2;  // digit separator
        continue;
      }
      if ((c == '+' || c == '-') && i > 0 &&
          (t[i - 1] == 'e' || t[i - 1] == 'E' || t[i - 1] == 'p' ||
           t[i - 1] == 'P')) {
        ++i;
        continue;
      }
      break;
    }
    return i;
  }

  /// True when only horizontal whitespace precedes `i` on its line — the
  /// condition for `#` to open a directive.
  bool AtLineStart(std::size_t i) const {
    const std::string_view t = s_.text;
    while (i > 0) {
      const char c = t[i - 1];
      if (c == '\n') return true;
      if (c != ' ' && c != '\t' && c != '\r') return false;
      --i;
    }
    return true;
  }

  void Emit(TokKind kind, std::size_t begin, std::size_t end) {
    Token tok;
    tok.kind = kind;
    tok.text = std::string(s_.text.substr(begin, end - begin));
    tok.line = s_.line[begin];
    tok.directive = directive_;
    tok.begin = s_.pos[begin];
    // The original span runs to the start of the next spliced byte (or
    // the end of the content), so spliced-away "\<newline>" bytes inside
    // a token stay inside its span.
    tok.end = end < s_.pos.size() ? s_.pos[end] : original_size_;
    // A comment token can contain newlines; a directive does not survive
    // them. (A block comment inside a directive therefore conservatively
    // ends it — no rule depends on what follows one.)
    if (tok.text.find('\n') != std::string::npos) directive_.clear();
    tokens_.push_back(std::move(tok));
  }

  std::size_t original_size_;
  SplicedSource s_;
  std::vector<Token> tokens_;
  std::string directive_;
  bool directive_pending_name_ = false;
};

}  // namespace

std::vector<Token> Lex(std::string_view content) {
  return Lexer(content).Run();
}

std::string NormalizeNumber(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c != '\'') out.push_back(c);
  }
  return out;
}

}  // namespace radar::lint
