#include "lint/linter.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>

namespace radar::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text[pos..]` starts with `token` and the characters on both
/// sides are not identifier characters (so "srand" does not match "rand").
bool TokenAt(std::string_view text, size_t pos, std::string_view token) {
  if (text.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  const size_t end = pos + token.size();
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

bool ContainsToken(std::string_view line, std::string_view token) {
  for (size_t pos = line.find(token); pos != std::string_view::npos;
       pos = line.find(token, pos + 1)) {
    if (TokenAt(line, pos, token)) return true;
  }
  return false;
}

/// True when `line` contains `token` immediately followed (modulo spaces)
/// by an opening parenthesis — i.e. a call of that name.
bool ContainsCall(std::string_view line, std::string_view token) {
  for (size_t pos = line.find(token); pos != std::string_view::npos;
       pos = line.find(token, pos + 1)) {
    if (!TokenAt(line, pos, token)) continue;
    size_t after = pos + token.size();
    while (after < line.size() && line[after] == ' ') ++after;
    if (after < line.size() && line[after] == '(') return true;
  }
  return false;
}

/// Protocol constants from PAPER.md Table 1 / Sec. 4.2 that must only be
/// spelled out in core/params.h. Everything else takes them from
/// ProtocolParams so ablations and sweeps stay coherent.
const std::regex& ProtocolLiteralRegex() {
  static const std::regex re(
      // 0.6 (migr_ratio), 1/6 or 1.0/6.0 (repl_ratio), a bare 6u unsigned
      // literal (the m = 6u convention), 0.03 (u), 0.18 (m).
      R"((^|[^\w.])(0\.60*(?![\d])|1(\.0+)?\s*/\s*6(\.0+)?(?![\d])|6[uU](?![\w])|0\.030*(?![\d])|0\.180*(?![\d])))");
  return re;
}

void CheckLine(const std::string& path_label, int line_no,
               std::string_view line, const FileKind& kind,
               std::vector<Violation>* out) {
  if (ContainsCall(line, "rand") || ContainsCall(line, "srand")) {
    out->push_back({path_label, line_no, "banned-rand",
                    "rand()/srand() is banned; use radar::Rng "
                    "(common/rng.h) so runs stay reproducible"});
  }
  if (ContainsToken(line, "cout") || ContainsToken(line, "cerr")) {
    out->push_back({path_label, line_no, "banned-iostream",
                    "std::cout/std::cerr is banned in library code; use "
                    "RADAR_LOG (common/log.h)"});
  }
  if (ContainsCall(line, "assert")) {
    out->push_back({path_label, line_no, "banned-assert",
                    "raw assert() is banned; use RADAR_CHECK "
                    "(common/check.h), which is on in every build type"});
  }
  if (kind.is_header && ContainsToken(line, "using namespace")) {
    out->push_back({path_label, line_no, "using-namespace-in-header",
                    "`using namespace` in a header leaks into every "
                    "includer; qualify names instead"});
  }
  if (!kind.allow_threads &&
      (ContainsToken(line, "std::thread") ||
       ContainsToken(line, "std::jthread") || ContainsCall(line, "detach"))) {
    out->push_back({path_label, line_no, "thread-confinement",
                    "thread creation/detach is confined to src/runner/; "
                    "run concurrent work through runner::ThreadPool so the "
                    "rest of the tree stays single-threaded"});
  }
  if (kind.forbid_std_function && ContainsToken(line, "std::function")) {
    out->push_back({path_label, line_no, "sim-no-std-function",
                    "std::function heap-allocates per capture; simulation "
                    "event code schedules millions of closures per run and "
                    "must use sim::InplaceFunction (sim/inplace_function.h)"});
  }
  if (!kind.allow_fault_injection &&
      (ContainsToken(line, "mtbf") || ContainsToken(line, "mttr") ||
       ContainsToken(line, "mtbf_s") || ContainsToken(line, "mttr_s") ||
       ContainsToken(line, "drop_prob") ||
       ContainsToken(line, "request_delay_prob"))) {
    out->push_back({path_label, line_no, "fault-confinement",
                    "fault-model parameters (MTBF/MTTR, message "
                    "drop/delay probabilities) are confined to src/fault/; "
                    "pass a fault::FaultPlan instead of spelling rates "
                    "elsewhere"});
  }
  if (kind.forbid_hash_maps && (ContainsToken(line, "std::unordered_map") ||
                                ContainsToken(line, "std::map"))) {
    out->push_back({path_label, line_no, "core-no-hash-maps",
                    "node-based maps are banned in src/core/ (a cache miss "
                    "per probe on the request hot path); use radar::SlabMap "
                    "(common/slab_map.h) for dense ObjectId keys or a "
                    "sorted inline vector for tiny replica sets"});
  }
  if (!kind.allow_protocol_literals) {
    const std::string line_str(line);
    if (std::regex_search(line_str, ProtocolLiteralRegex())) {
      out->push_back({path_label, line_no, "protocol-literal",
                      "hard-coded protocol threshold (0.6 / 1/6 / 6u / "
                      "0.03 / 0.18); take it from core::ProtocolParams "
                      "(core/params.h) instead"});
    }
  }
}

}  // namespace

std::string StripCommentsAndStrings(std::string_view content) {
  std::string out;
  out.reserve(content.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          // Raw strings would need delimiter tracking; the tree doesn't
          // use them, and a raw string would only blank too little, never
          // hide code, so plain-string handling is sufficient.
          state = State::kString;
          out += '"';
        } else if (c == '\'') {
          state = State::kChar;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += '"';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += '\'';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Violation> LintSource(const std::string& path_label,
                                  std::string_view content,
                                  const FileKind& kind) {
  std::vector<Violation> violations;
  const std::string stripped = StripCommentsAndStrings(content);

  if (kind.is_header) {
    bool has_pragma_once = false;
    std::istringstream scan(stripped);
    for (std::string line; std::getline(scan, line);) {
      if (line.find("#pragma once") != std::string::npos) {
        has_pragma_once = true;
        break;
      }
    }
    if (!has_pragma_once) {
      violations.push_back({path_label, 1, "missing-pragma-once",
                            "every header must contain #pragma once"});
    }
  }

  std::istringstream lines(stripped);
  int line_no = 0;
  for (std::string line; std::getline(lines, line);) {
    ++line_no;
    CheckLine(path_label, line_no, line, kind, &violations);
  }
  return violations;
}

std::vector<Violation> LintTree(const std::filesystem::path& src_root) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext == ".h" || ext == ".cpp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      violations.push_back({file.string(), 0, "io-error", "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    // Label paths relative to the tree root (prefixed "src/") so output is
    // stable whether the caller passed an absolute or relative --src.
    const std::string rel = fs::relative(file, src_root).generic_string();
    FileKind kind;
    kind.is_header = file.extension() == ".h";
    kind.allow_protocol_literals = rel == "core/params.h";
    kind.allow_threads = rel.rfind("runner/", 0) == 0;
    kind.forbid_std_function = rel.rfind("sim/", 0) == 0;
    kind.allow_fault_injection = rel.rfind("fault/", 0) == 0;
    kind.forbid_hash_maps = rel.rfind("core/", 0) == 0;
    auto file_violations = LintSource("src/" + rel, buf.str(), kind);
    violations.insert(violations.end(), file_violations.begin(),
                      file_violations.end());
  }
  return violations;
}

std::string FormatViolation(const Violation& v) {
  std::ostringstream out;
  out << v.file << ':' << v.line << ": [" << v.rule << "] " << v.message;
  return out.str();
}

}  // namespace radar::lint
