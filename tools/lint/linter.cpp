#include "lint/linter.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <sstream>

#include "lint/lexer.h"

namespace radar::lint {
namespace {

// ---------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------

using Code = std::vector<const Token*>;

bool IsIdent(const Code& c, std::size_t i, std::string_view text) {
  return i < c.size() && c[i]->kind == TokKind::kIdentifier &&
         c[i]->text == text;
}

bool IsPunct(const Code& c, std::size_t i, std::string_view text) {
  return i < c.size() && c[i]->kind == TokKind::kPunct && c[i]->text == text;
}

/// True when code[i..i+2] spell `std::name`.
bool SeqStd(const Code& c, std::size_t i, std::string_view name) {
  return IsIdent(c, i, "std") && IsPunct(c, i + 1, "::") &&
         IsIdent(c, i + 2, name);
}

bool AnyOf(std::string_view text,
           std::initializer_list<std::string_view> names) {
  for (const std::string_view n : names) {
    if (text == n) return true;
  }
  return false;
}

struct Ctx {
  const std::string& path;
  const FileKind& kind;
  const std::vector<GlobalWhitelistEntry>& whitelist;
  Analysis* out;

  void Violate(int line, const char* rule, std::string message) const {
    out->violations.push_back({path, line, rule, std::move(message)});
  }
};

// ---------------------------------------------------------------------
// Protocol-constant matching (PAPER.md Table 1 / Sec. 4.2). The constants
// appear below only inside string literals, so the analyzer stays clean
// under its own protocol-literal pass when it lints tools/.
// ---------------------------------------------------------------------

/// "0.6", "0.60", "0.600f" — `head` plus trailing zeros plus an optional
/// float suffix.
bool IsDecimalConstant(std::string_view norm, std::string_view head) {
  if (norm.substr(0, head.size()) != head) return false;
  std::string_view rest = norm.substr(head.size());
  while (!rest.empty() && rest.front() == '0') rest.remove_prefix(1);
  if (!rest.empty() && AnyOf(rest, {"f", "F", "l", "L"})) rest = {};
  return rest.empty();
}

/// "1", "1.0", "1.00" (the numerator shape of the 1/6 repl_ratio).
bool IsIntegerValued(std::string_view norm, char digit) {
  if (norm.empty() || norm.front() != digit) return false;
  std::string_view rest = norm.substr(1);
  if (rest.empty()) return true;
  if (rest.front() != '.') return false;
  rest.remove_prefix(1);
  if (rest.empty()) return false;
  while (!rest.empty() && rest.front() == '0') rest.remove_prefix(1);
  return rest.empty();
}

bool IsProtocolConstant(std::string_view norm) {
  if (norm == "6u" || norm == "6U") return true;
  return IsDecimalConstant(norm, "0.6") || IsDecimalConstant(norm, "0.03") ||
         IsDecimalConstant(norm, "0.18");
}

// ---------------------------------------------------------------------
// Header hygiene: #pragma once, `using namespace`
// ---------------------------------------------------------------------

void PassHeaderHygiene(const Ctx& ctx, const Code& code) {
  if (!ctx.kind.is_header) return;
  bool has_pragma_once = false;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i]->directive == "pragma" && IsIdent(code, i, "once")) {
      has_pragma_once = true;
      break;
    }
  }
  if (!has_pragma_once) {
    ctx.Violate(1, "missing-pragma-once",
                "every header must contain #pragma once");
  }
}

// ---------------------------------------------------------------------
// Banned constructs, confinement rules, protocol literals, wall clocks —
// one linear scan; each check is a short token-sequence match.
// ---------------------------------------------------------------------

void PassBannedTokens(const Ctx& ctx, const Code& code) {
  const FileKind& kind = ctx.kind;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = *code[i];
    if (t.directive == "include") continue;  // a header name is not a use
    const int line = t.line;

    if (t.kind == TokKind::kIdentifier) {
      const bool call = IsPunct(code, i + 1, "(");
      if (call && (t.text == "rand" || t.text == "srand")) {
        ctx.Violate(line, "banned-rand",
                    "rand()/srand() is banned; use radar::Rng "
                    "(common/rng.h) so runs stay reproducible");
      }
      if (call && t.text == "assert") {
        ctx.Violate(line, "banned-assert",
                    "raw assert() is banned; use RADAR_CHECK "
                    "(common/check.h), which is on in every build type");
      }
      if (!kind.allow_cli_output &&
          (t.text == "cout" || t.text == "cerr")) {
        ctx.Violate(line, "banned-iostream",
                    "std::cout/std::cerr is banned in library code; use "
                    "RADAR_LOG (common/log.h)");
      }
      if (kind.is_header && t.text == "using" &&
          IsIdent(code, i + 1, "namespace")) {
        ctx.Violate(line, "using-namespace-in-header",
                    "`using namespace` in a header leaks into every "
                    "includer; qualify names instead");
      }
      if (!kind.allow_threads) {
        if (t.text == "std" &&
            (SeqStd(code, i, "thread") || SeqStd(code, i, "jthread") ||
             SeqStd(code, i, "async") || SeqStd(code, i, "future") ||
             SeqStd(code, i, "promise"))) {
          ctx.Violate(line, "thread-confinement",
                      "thread creation and deferred-concurrency handles "
                      "(std::thread/jthread/async/future/promise) are "
                      "confined to src/runner/; run concurrent work through "
                      "runner::ThreadPool so the rest of the tree stays "
                      "single-threaded");
        }
        if (call && t.text == "detach") {
          ctx.Violate(line, "thread-confinement",
                      "thread creation/detach is confined to src/runner/; "
                      "run concurrent work through runner::ThreadPool so "
                      "the rest of the tree stays single-threaded");
        }
        if (t.directive == "pragma" && t.text == "omp") {
          ctx.Violate(line, "thread-confinement",
                      "#pragma omp spawns threads behind the experiment "
                      "engine's back; concurrency is confined to "
                      "src/runner/");
        }
      }
      if (kind.forbid_std_function && t.text == "std" &&
          SeqStd(code, i, "function")) {
        ctx.Violate(line, "sim-no-std-function",
                    "std::function heap-allocates per capture; simulation "
                    "event code schedules millions of closures per run and "
                    "must use sim::InplaceFunction (sim/inplace_function.h)");
      }
      if (kind.forbid_std_function && !kind.allow_shard_sync &&
          t.text == "std" &&
          (SeqStd(code, i, "mutex") || SeqStd(code, i, "shared_mutex") ||
           SeqStd(code, i, "recursive_mutex") ||
           SeqStd(code, i, "timed_mutex") ||
           SeqStd(code, i, "condition_variable") ||
           SeqStd(code, i, "condition_variable_any") ||
           SeqStd(code, i, "atomic") || SeqStd(code, i, "atomic_flag") ||
           SeqStd(code, i, "lock_guard") || SeqStd(code, i, "unique_lock") ||
           SeqStd(code, i, "scoped_lock") || SeqStd(code, i, "shared_lock") ||
           SeqStd(code, i, "call_once") || SeqStd(code, i, "once_flag"))) {
        ctx.Violate(line, "shard-confinement",
                    "synchronization primitives are banned in src/sim/ "
                    "outside the mailbox/barrier files; shard state is "
                    "single-owner during a window and cross-shard traffic "
                    "goes through sim/mailbox.h at barriers (DESIGN.md "
                    "section 14)");
      }
      if (!kind.allow_keyed_push && call &&
          (t.text == "PushAtSeq" || t.text == "ScheduleKeyedAt")) {
        ctx.Violate(line, "seq-reservation",
                    "keyed event pushes (PushAtSeq/ScheduleKeyedAt) bypass "
                    "the auto seq counter and are confined to src/sim/ and "
                    "the sharded engine; reserve key space with "
                    "EventQueue::ReserveKeySpace and keep keyed scheduling "
                    "inside the reservation protocol (sim/event_queue.h)");
      }
      if (!kind.allow_fault_injection &&
          AnyOf(t.text, {"mtbf", "mttr", "mtbf_s", "mttr_s", "drop_prob",
                         "request_delay_prob"})) {
        ctx.Violate(line, "fault-confinement",
                    "fault-model parameters (MTBF/MTTR, message "
                    "drop/delay probabilities) are confined to src/fault/; "
                    "pass a fault::FaultPlan instead of spelling rates "
                    "elsewhere");
      }
      if (kind.forbid_net_rng &&
          (t.text == "Rng" || t.text == "SplitMix64")) {
        ctx.Violate(line, "net-rng-confinement",
                    "random number generation in src/net/ is confined to "
                    "net/topology_gen.cpp; routing and latency oracles must "
                    "be pure functions of the graph so generated topologies "
                    "replay bit-identically from (spec, seed)");
      }
      if (kind.forbid_hash_maps && t.text == "std" &&
          (SeqStd(code, i, "unordered_map") || SeqStd(code, i, "map"))) {
        ctx.Violate(line, "core-no-hash-maps",
                    "node-based maps are banned in src/core/ (a cache miss "
                    "per probe on the request hot path); use radar::SlabMap "
                    "(common/slab_map.h) for dense ObjectId keys or a "
                    "sorted inline vector for tiny replica sets");
      }
      if (!kind.allow_transport_syscalls && call &&
          AnyOf(t.text,
                {"socket",      "bind",          "listen",     "accept",
                 "accept4",     "connect",       "poll",       "ppoll",
                 "select",      "epoll_create",  "epoll_create1",
                 "epoll_ctl",   "epoll_wait",    "fcntl",      "setsockopt",
                 "getsockopt",  "send",          "recv",       "sendto",
                 "recvfrom",    "sendmsg",       "recvmsg",    "shutdown",
                 "getaddrinfo", "fsync",         "ftruncate",  "ioctl"})) {
        ctx.Violate(line, "transport-confinement",
                    "socket/poll/fcntl-family syscalls are confined to "
                    "src/transport/ and src/binlog/; everything else talks "
                    "through the Transport seam (transport/transport.h) so "
                    "protocol brains stay shared between the simulator and "
                    "the daemons (DESIGN.md section 16)");
      }
      if (!kind.allow_wall_clock) {
        if (AnyOf(t.text,
                  {"system_clock", "steady_clock", "high_resolution_clock"})) {
          ctx.Violate(line, "nondet-wall-clock",
                      "wall-clock reads make paired runs diverge; take time "
                      "from the simulation clock (sim::Simulator::Now), or "
                      "move timing code into src/runner/ or bench/");
        }
        if (call && AnyOf(t.text, {"time", "clock", "gettimeofday",
                                   "clock_gettime", "localtime", "gmtime",
                                   "mktime"})) {
          ctx.Violate(line, "nondet-wall-clock",
                      "C wall-clock calls make paired runs diverge; take "
                      "time from the simulation clock, or move timing code "
                      "into src/runner/ or bench/");
        }
      }
    } else if (t.kind == TokKind::kNumber) {
      if (!kind.allow_protocol_literals) {
        const std::string norm = NormalizeNumber(t.text);
        bool hit = IsProtocolConstant(norm);
        if (!hit && IsIntegerValued(norm, '1') && IsPunct(code, i + 1, "/") &&
            i + 2 < code.size() && code[i + 2]->kind == TokKind::kNumber &&
            IsIntegerValued(NormalizeNumber(code[i + 2]->text), '6')) {
          hit = true;
        }
        if (hit) {
          ctx.Violate(line, "protocol-literal",
                      "hard-coded protocol threshold (0.6 / 1/6 / 6u / "
                      "0.03 / 0.18); take it from core::ProtocolParams "
                      "(core/params.h) instead");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Nondeterminism audit: unordered-container traversal, pointer-keyed
// ordered containers, std::hash over pointers.
// ---------------------------------------------------------------------

/// With code[open] == "<", returns the index just past the matching ">"
/// (or code.size() if unbalanced).
std::size_t SkipAngles(const Code& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (IsPunct(code, i, "<")) ++depth;
    if (IsPunct(code, i, ">")) {
      if (--depth == 0) return i + 1;
    }
    if (IsPunct(code, i, ";")) break;  // statement ended: give up
  }
  return code.size();
}

void PassNondeterminism(const Ctx& ctx, const Code& code) {
  // Names declared (anywhere in this file) with an unordered type. This is
  // a file-local heuristic, not type inference: it sees members, locals,
  // and reference parameters, which covers the way the tree declares them.
  std::vector<std::string> unordered_names;
  const auto is_unordered_name = [&](const Token& t) {
    return t.kind == TokKind::kIdentifier &&
           std::find(unordered_names.begin(), unordered_names.end(),
                     t.text) != unordered_names.end();
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    if (SeqStd(code, i, "unordered_map") || SeqStd(code, i, "unordered_set") ||
        SeqStd(code, i, "unordered_multimap") ||
        SeqStd(code, i, "unordered_multiset")) {
      std::size_t j = i + 3;
      if (IsPunct(code, j, "<")) j = SkipAngles(code, j);
      while (j < code.size() &&
             (IsPunct(code, j, "&") || IsPunct(code, j, "*") ||
              IsIdent(code, j, "const"))) {
        ++j;
      }
      if (j < code.size() && code[j]->kind == TokKind::kIdentifier) {
        unordered_names.push_back(code[j]->text);
      }
      continue;
    }

    // Pointer-keyed ordered containers: iteration order is the address
    // order, which ASLR reshuffles every run.
    if (SeqStd(code, i, "map") || SeqStd(code, i, "set") ||
        SeqStd(code, i, "multimap") || SeqStd(code, i, "multiset")) {
      if (IsPunct(code, i + 3, "<")) {
        int depth = 0;
        for (std::size_t j = i + 3; j < code.size(); ++j) {
          if (IsPunct(code, j, "<")) ++depth;
          if (IsPunct(code, j, ">") && --depth == 0) break;
          if (IsPunct(code, j, ",") && depth == 1) break;  // key scanned
          if (IsPunct(code, j, ";")) break;
          if (IsPunct(code, j, "*")) {
            ctx.Violate(code[i]->line, "nondet-pointer-key",
                        "ordered container keyed by a pointer iterates in "
                        "address order, which differs run to run; key by a "
                        "stable id (NodeId/ObjectId) instead");
            break;
          }
        }
      }
      continue;
    }

    // std::hash<T*> hashes the address itself.
    if (SeqStd(code, i, "hash") && IsPunct(code, i + 3, "<")) {
      const std::size_t end = SkipAngles(code, i + 3);
      for (std::size_t j = i + 3; j < end; ++j) {
        if (IsPunct(code, j, "*")) {
          ctx.Violate(code[i]->line, "nondet-pointer-hash",
                      "std::hash of a pointer type hashes the address, "
                      "which differs run to run; hash a stable id instead");
          break;
        }
      }
      continue;
    }
  }

  // Traversal of the recorded names: ranged-for and begin()-family calls.
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (IsIdent(code, i, "for") && IsPunct(code, i + 1, "(")) {
      int paren = 0, bracket = 0, brace = 0;
      std::size_t colon = 0;
      std::size_t close = code.size();
      for (std::size_t j = i + 1; j < code.size(); ++j) {
        const Token& t = *code[j];
        if (t.kind != TokKind::kPunct) continue;
        if (t.text == "(") ++paren;
        if (t.text == ")" && --paren == 0) {
          close = j;
          break;
        }
        if (t.text == "[") ++bracket;
        if (t.text == "]") --bracket;
        if (t.text == "{") ++brace;
        if (t.text == "}") --brace;
        if (t.text == ":" && paren == 1 && bracket == 0 && brace == 0 &&
            colon == 0) {
          colon = j;
        }
      }
      if (colon != 0) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (is_unordered_name(*code[j])) {
            ctx.Violate(code[i]->line, "nondet-unordered-iteration",
                        "ranged-for over an unordered container visits "
                        "elements in hash-table order, which varies across "
                        "libraries and runs; iterate a sorted view or a "
                        "dense table (radar::SlabMap) instead");
            break;
          }
        }
      }
    }
    if (is_unordered_name(*code[i]) && IsPunct(code, i + 1, ".") &&
        i + 2 < code.size() &&
        AnyOf(code[i + 2]->text, {"begin", "cbegin", "rbegin", "crbegin"})) {
      ctx.Violate(code[i]->line, "nondet-unordered-iteration",
                  "iterating an unordered container visits elements in "
                  "hash-table order, which varies across libraries and "
                  "runs; iterate a sorted view or a dense table "
                  "(radar::SlabMap) instead");
    }
  }
}

// ---------------------------------------------------------------------
// Mutable-global audit. A lightweight scope machine: at namespace level,
// statements are parsed enough to recognise variable definitions; inside
// functions and types only `static` declarations are inspected. Known
// blind spots (documented in DESIGN.md §13): paren-initialized globals
// (`Foo g(x);` is also the vexing parse), globals declared through
// macros, and anonymous-struct-typed globals without a declarator — none
// of which the tree uses.
// ---------------------------------------------------------------------

const std::array<std::string_view, 13> kRaceSafeTypes = {
    "atomic", "atomic_flag", "atomic_bool", "atomic_int", "atomic_uint",
    "atomic_size_t", "atomic_uint64_t", "mutex", "shared_mutex",
    "recursive_mutex", "timed_mutex", "once_flag", "condition_variable"};

class GlobalsPass {
 public:
  GlobalsPass(const Ctx& ctx, const Code& code) : ctx_(ctx), code_(code) {}

  void Run() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& t = *code_[i];
      if (AtNamespaceLevel()) {
        if (IsPunct(code_, i, ";")) {
          EndStatement();
        } else if (IsPunct(code_, i, "{")) {
          const Scope scope = Classify();
          if (scope == Scope::kInit) {
            i = SkipBraces(i);
            has_braced_init_ = true;
          } else {
            stack_.push_back(scope);
            stmt_.clear();
            has_braced_init_ = false;
            type_declarator_pending_ = false;
          }
        } else if (IsPunct(code_, i, "}")) {
          // Only namespace scopes close here (any other push makes
          // AtNamespaceLevel false until the matching pop below).
          if (!stack_.empty()) stack_.pop_back();
          stmt_.clear();
        } else {
          stmt_.push_back(code_[i]);
        }
        continue;
      }
      if (IsPunct(code_, i, "{")) {
        stack_.push_back(Scope::kBlock);
      } else if (IsPunct(code_, i, "}")) {
        if (!stack_.empty()) {
          const Scope closed = stack_.back();
          stack_.pop_back();
          // `struct Foo { ... } g_foo;` — back at namespace level with a
          // type body just closed, the tokens before `;` are declarators.
          if (closed == Scope::kType && AtNamespaceLevel()) {
            type_declarator_pending_ = true;
            stmt_.clear();
          }
        }
      } else if (t.kind == TokKind::kIdentifier && t.text == "static") {
        i = HandleScopedStatic(i);
      }
    }
    EndStatement();
  }

 private:
  enum class Scope : std::uint8_t { kNamespace, kType, kFunction, kBlock,
                                    kInit };

  bool AtNamespaceLevel() const {
    for (const Scope s : stack_) {
      if (s != Scope::kNamespace) return false;
    }
    return true;
  }

  /// What does the `{` we just hit open, given the statement before it?
  Scope Classify() const {
    bool has_eq = false;
    bool has_paren = false;
    int angle = 0;
    for (const Token* t : stmt_) {
      if (t->kind == TokKind::kIdentifier) {
        if (t->text == "namespace" || t->text == "extern") {
          return Scope::kNamespace;
        }
        if (angle == 0 && AnyOf(t->text, {"class", "struct", "union",
                                          "enum"})) {
          return Scope::kType;
        }
      } else if (t->kind == TokKind::kPunct) {
        if (t->text == "<") ++angle;
        if (t->text == ">" && angle > 0) --angle;
        if (t->text == "=") has_eq = true;
        if (t->text == "(") has_paren = true;
      }
    }
    if (has_eq) return Scope::kInit;
    if (has_paren) return Scope::kFunction;
    // `std::atomic<LogLevel> g_level{kWarn};` — a braced variable
    // initializer: type tokens then the declarator identifier.
    if (stmt_.size() >= 2 && stmt_.back()->kind == TokKind::kIdentifier) {
      return Scope::kInit;
    }
    return Scope::kFunction;
  }

  /// Index of the `}` matching the `{` at `open`.
  std::size_t SkipBraces(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < code_.size(); ++i) {
      if (IsPunct(code_, i, "{")) ++depth;
      if (IsPunct(code_, i, "}") && --depth == 0) return i;
    }
    return code_.size() - 1;
  }

  /// Declarator name: the last identifier outside template/array suffixes
  /// before the initializer (or the end of the declaration).
  static std::string ExtractName(const std::vector<const Token*>& decl) {
    std::string name;
    int angle = 0, bracket = 0;
    for (const Token* t : decl) {
      if (t->kind == TokKind::kPunct) {
        if (t->text == "<") ++angle;
        if (t->text == ">" && angle > 0) --angle;
        if (t->text == "[") ++bracket;
        if (t->text == "]" && bracket > 0) --bracket;
        if (t->text == "=" && angle == 0) break;
      } else if (t->kind == TokKind::kIdentifier && angle == 0 &&
                 bracket == 0) {
        name = t->text;
      }
    }
    return name;
  }

  static bool IsRaceSafeDecl(const std::vector<const Token*>& decl) {
    for (const Token* t : decl) {
      if (t->kind == TokKind::kIdentifier &&
          std::find(kRaceSafeTypes.begin(), kRaceSafeTypes.end(), t->text) !=
              kRaceSafeTypes.end()) {
        return true;
      }
    }
    return false;
  }

  void EndStatement() {
    const bool type_declarator = type_declarator_pending_;
    const bool braced_init = has_braced_init_;
    type_declarator_pending_ = false;
    has_braced_init_ = false;
    std::vector<const Token*> stmt = std::move(stmt_);
    stmt_.clear();
    if (stmt.empty()) return;

    bool has_eq = false;
    bool paren_before_init = false;
    for (const Token* t : stmt) {
      if (t->kind == TokKind::kIdentifier) {
        if (AnyOf(t->text, {"using", "typedef", "friend", "static_assert",
                            "template", "operator", "asm", "namespace"})) {
          return;
        }
        if (!type_declarator &&
            AnyOf(t->text, {"class", "struct", "union", "enum"})) {
          return;  // forward declaration
        }
        if (AnyOf(t->text,
                  {"const", "constexpr", "constinit", "thread_local"})) {
          return;  // immutable, or per-thread (not a cross-shard race)
        }
        if (t->text == "extern" && !has_eq) {
          return;  // declaration of something defined elsewhere
        }
      } else if (t->kind == TokKind::kPunct) {
        if (t->text == "=") has_eq = true;
        if (t->text == "(" && !has_eq) paren_before_init = true;
      }
    }
    if (paren_before_init) return;  // function declaration/definition
    if (stmt.size() < 2 && !type_declarator) return;  // bare macro etc.

    const std::string name = ExtractName(stmt);
    if (name.empty()) return;
    Record(name, stmt.front()->line, IsRaceSafeDecl(stmt),
           /*function_local=*/false);
    (void)braced_init;
  }

  /// `code_[i]` is a `static` inside a function, block, or type. Parses
  /// the declaration it opens; returns the index of its terminator.
  std::size_t HandleScopedStatic(std::size_t i) {
    const bool in_type = !stack_.empty() && stack_.back() == Scope::kType;
    const bool inline_before = i > 0 && IsIdent(code_, i - 1, "inline");
    std::vector<const Token*> decl;
    bool has_eq = false;
    bool has_brace_init = false;
    bool paren_before_init = false;
    int depth = 0;
    std::size_t j = i;
    for (; j < code_.size(); ++j) {
      const Token& t = *code_[j];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(" || t.text == "[") ++depth;
        if (t.text == ")" || t.text == "]") --depth;
        if (t.text == "{") {
          if (depth == 0 && has_eq) {
            ++depth;  // `= {...}` initializer body
          } else if (depth == 0) {
            has_brace_init = true;
            ++depth;
          } else {
            ++depth;
          }
        }
        if (t.text == "}") {
          if (depth == 0) return j;  // scope closed mid-decl: malformed
          --depth;
        }
        if (depth == 0) {
          if (t.text == ";") break;
          if (t.text == "=") has_eq = true;
          if (t.text == "(" && !has_eq) paren_before_init = true;
        }
        if (t.text == "(" && depth == 1 && !has_eq) paren_before_init = true;
      }
      if (depth == 0) decl.push_back(code_[j]);
      if (decl.size() > 256) return j;  // malformed guard
    }
    for (const Token* t : decl) {
      if (t->kind == TokKind::kIdentifier &&
          AnyOf(t->text,
                {"const", "constexpr", "constinit", "thread_local"})) {
        return j;
      }
    }
    if (paren_before_init) return j;  // member function / vexing parse
    // In-class statics without an initializer are declarations; their
    // namespace-scope definition is audited instead. C++17 inline statics
    // are definitions right here.
    if (in_type && !has_eq && !has_brace_init && !inline_before) return j;
    const std::string name = ExtractName(decl);
    if (name.empty()) return j;
    Record(name, code_[i]->line, IsRaceSafeDecl(decl),
           /*function_local=*/!in_type);
    return j;
  }

  void Record(const std::string& name, int line, bool race_safe,
              bool function_local) {
    const GlobalWhitelistEntry* entry = nullptr;
    for (const GlobalWhitelistEntry& e : ctx_.whitelist) {
      if (e.name != name) continue;
      if (ctx_.path.size() >= e.file_suffix.size() &&
          ctx_.path.compare(ctx_.path.size() - e.file_suffix.size(),
                            e.file_suffix.size(), e.file_suffix) == 0) {
        entry = &e;
        break;
      }
    }
    ctx_.out->mutable_globals.push_back(
        {ctx_.path, line, name, race_safe, entry != nullptr, function_local,
         entry != nullptr ? entry->reason : std::string()});
    if (entry != nullptr && race_safe) return;
    std::string msg = "mutable ";
    msg += function_local ? "function-local static '" : "global '";
    msg += name;
    msg += "' is a cross-shard race once one run spans threads; ";
    if (!race_safe) {
      msg += "make it std::atomic (or mutex-guarded)";
      msg += entry == nullptr ? " AND " : "";
    }
    if (entry == nullptr) {
      msg += "add it to the shared-state whitelist "
             "(lint::DefaultGlobalWhitelist)";
    }
    msg += " — or scope the state into the object that owns it";
    ctx_.Violate(line, "mutable-global", std::move(msg));
  }

  const Ctx& ctx_;
  const Code& code_;
  std::vector<Scope> stack_;
  std::vector<const Token*> stmt_;
  bool has_braced_init_ = false;
  bool type_declarator_pending_ = false;
};

// ---------------------------------------------------------------------
// Hot-path allocation audit over // RADAR_HOT ... // RADAR_HOT_END
// regions. The markers must START the comment (after the comment opener),
// so prose that merely mentions them does not open a region.
// ---------------------------------------------------------------------

/// Returns the marker payload when `comment` is a region marker:
/// "END" for RADAR_HOT_END, the label (possibly empty) for RADAR_HOT,
/// std::nullopt-like empty-optional semantics via a bool.
bool ParseHotMarker(std::string_view comment, bool* is_end,
                    std::string* label) {
  // Strip the comment opener and leading space/asterisks.
  if (comment.substr(0, 2) == "//" || comment.substr(0, 2) == "/*") {
    comment.remove_prefix(2);
  }
  while (!comment.empty() &&
         (comment.front() == ' ' || comment.front() == '*' ||
          comment.front() == '/')) {
    comment.remove_prefix(1);
  }
  constexpr std::string_view kTag = "RADAR_HOT";
  if (comment.substr(0, kTag.size()) != kTag) return false;
  comment.remove_prefix(kTag.size());
  if (comment.substr(0, 4) == "_END") {
    *is_end = true;
    return true;
  }
  // A marker, not a word containing the tag ("RADAR_HOTEL").
  if (!comment.empty() && comment.front() != ':' && comment.front() != ' ' &&
      comment.front() != '\n') {
    return false;
  }
  *is_end = false;
  if (!comment.empty() && comment.front() == ':') comment.remove_prefix(1);
  const std::size_t eol = comment.find('\n');
  if (eol != std::string_view::npos) comment = comment.substr(0, eol);
  while (!comment.empty() && comment.front() == ' ') comment.remove_prefix(1);
  while (!comment.empty() &&
         (comment.back() == ' ' || comment.back() == '/' ||
          comment.back() == '*')) {
    comment.remove_suffix(1);
  }
  *label = std::string(comment);
  return true;
}

void PassHotRegions(const Ctx& ctx, const std::vector<Token>& toks) {
  bool open = false;
  HotRegion region;
  const auto next_code = [&](std::size_t i) -> const Token* {
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kComment) return &toks[j];
    }
    return nullptr;
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kComment) {
      bool is_end = false;
      std::string label;
      if (!ParseHotMarker(t.text, &is_end, &label)) continue;
      if (is_end) {
        if (!open) {
          ctx.Violate(t.line, "hot-region",
                      "RADAR_HOT_END without a matching RADAR_HOT");
          continue;
        }
        region.end_line = t.line;
        ctx.out->hot_regions.push_back(region);
        open = false;
      } else {
        if (open) {
          ctx.Violate(t.line, "hot-region",
                      "RADAR_HOT region opened inside another (missing "
                      "RADAR_HOT_END)");
          continue;
        }
        open = true;
        region = {ctx.path, label, t.line, 0};
      }
      continue;
    }
    if (!open || t.kind != TokKind::kIdentifier) continue;
    const Token* next = next_code(i);
    if (t.text == "new") {
      // Placement new (`new (addr) T`) reuses storage — not an
      // allocation; `operator new` declarations are not calls.
      const bool placement = next != nullptr &&
                             next->kind == TokKind::kPunct &&
                             next->text == "(";
      const bool prev_operator = i > 0 &&
                                 toks[i - 1].kind == TokKind::kIdentifier &&
                                 toks[i - 1].text == "operator";
      if (!placement && !prev_operator) {
        ctx.Violate(t.line, "hot-alloc",
                    "`new` inside a RADAR_HOT region: the dispatch/event "
                    "path must stay allocation-free (DESIGN.md §10); use "
                    "the slab/pool that owns this data");
      }
    } else if (t.text == "make_shared" || t.text == "make_unique") {
      ctx.Violate(t.line, "hot-alloc",
                  "heap allocation inside a RADAR_HOT region: the "
                  "dispatch/event path must stay allocation-free "
                  "(DESIGN.md §10)");
    } else if (t.text == "function" && i >= 2 &&
               toks[i - 1].kind == TokKind::kPunct &&
               toks[i - 1].text == "::" &&
               toks[i - 2].kind == TokKind::kIdentifier &&
               toks[i - 2].text == "std") {
      ctx.Violate(t.line, "hot-alloc",
                  "std::function inside a RADAR_HOT region allocates per "
                  "capture; use sim::InplaceFunction");
    }
  }
  if (open) {
    ctx.Violate(region.begin_line, "hot-region",
                "RADAR_HOT region never closed (missing RADAR_HOT_END)");
    region.end_line = 0;
    ctx.out->hot_regions.push_back(region);
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------

const std::vector<GlobalWhitelistEntry>& DefaultGlobalWhitelist() {
  static const std::vector<GlobalWhitelistEntry> kWhitelist = {
      {"common/log.cpp", "g_level",
       "process-wide log threshold; std::atomic with relaxed loads — "
       "shards may race on verbosity, never on results"},
  };
  return kWhitelist;
}

std::string StripCommentsAndStrings(std::string_view content) {
  std::string out(content);
  for (const Token& t : Lex(content)) {
    if (t.kind != TokKind::kComment && t.kind != TokKind::kString &&
        t.kind != TokKind::kChar) {
      continue;
    }
    // Plain string/char literals keep their delimiters (the historical
    // contract); raw strings and comments are blanked whole — their
    // delimiters (`R"(`, `//`, `*/`) would read as code fragments.
    std::size_t begin = t.begin;
    std::size_t end = t.end;
    const std::size_t quote = t.text.find_first_of("\"'");
    const bool raw = quote != std::string::npos && quote > 0 &&
                     t.text[quote - 1] == 'R';
    if (t.kind != TokKind::kComment && !raw && end - begin >= 2) {
      ++begin;
      --end;
    }
    for (std::size_t i = begin; i < end && i < out.size(); ++i) {
      if (out[i] != '\n' && out[i] != '\r') out[i] = ' ';
    }
  }
  return out;
}

void AnalyzeSource(const std::string& path_label, std::string_view content,
                   const FileKind& kind,
                   const std::vector<GlobalWhitelistEntry>& whitelist,
                   Analysis* out) {
  const std::vector<Token> toks = Lex(content);
  Code code;
  Code plain;  // code tokens outside preprocessor directives
  code.reserve(toks.size());
  for (const Token& t : toks) {
    if (t.kind == TokKind::kComment) continue;
    code.push_back(&t);
    if (t.directive.empty() && t.text != "#") plain.push_back(&t);
  }
  const Ctx ctx{path_label, kind, whitelist, out};
  const std::size_t base = out->violations.size();

  PassHeaderHygiene(ctx, code);
  PassBannedTokens(ctx, code);
  PassNondeterminism(ctx, code);
  GlobalsPass(ctx, plain).Run();
  PassHotRegions(ctx, toks);

  std::stable_sort(out->violations.begin() +
                       static_cast<std::ptrdiff_t>(base),
                   out->violations.end(),
                   [](const Violation& a, const Violation& b) {
                     return a.line < b.line;
                   });
}

std::vector<Violation> LintSource(const std::string& path_label,
                                  std::string_view content,
                                  const FileKind& kind) {
  Analysis analysis;
  AnalyzeSource(path_label, content, kind, DefaultGlobalWhitelist(),
                &analysis);
  return std::move(analysis.violations);
}

Analysis AnalyzeTree(const std::vector<std::filesystem::path>& roots) {
  namespace fs = std::filesystem;
  Analysis analysis;
  for (const fs::path& root : roots) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".h" || ext == ".cpp") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());

    const std::string root_name = root.filename().generic_string();
    for (const fs::path& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        analysis.violations.push_back(
            {file.string(), 0, "io-error", "cannot read file"});
        continue;
      }
      std::ostringstream buf;
      buf << in.rdbuf();

      // Label paths relative to the tree root (prefixed with the root's
      // basename) so output is stable whether the caller passed an
      // absolute or relative root.
      const std::string rel = fs::relative(file, root).generic_string();
      FileKind kind;
      kind.is_header = file.extension() == ".h";
      if (root_name == "tools") {
        // CLI entry points live at tools/ top level and own the terminal;
        // everything nested (tools/lint/, ...) is library code.
        kind.allow_cli_output = rel.find('/') == std::string::npos;
      } else {
        kind.allow_protocol_literals = rel == "core/params.h";
        kind.allow_threads = rel.rfind("runner/", 0) == 0;
        kind.forbid_std_function = rel.rfind("sim/", 0) == 0;
        kind.allow_fault_injection = rel.rfind("fault/", 0) == 0;
        kind.forbid_hash_maps = rel.rfind("core/", 0) == 0;
        kind.allow_transport_syscalls = rel.rfind("transport/", 0) == 0 ||
                                        rel.rfind("binlog/", 0) == 0;
        // The transport layer owns the real clock too (TcpTransport::Now
        // is CLOCK_MONOTONIC; binlog records carry real timestamps).
        kind.allow_wall_clock =
            rel.rfind("runner/", 0) == 0 || kind.allow_transport_syscalls;
        kind.allow_shard_sync = rel == "sim/mailbox.h" ||
                                rel == "sim/shard.h" || rel == "sim/shard.cpp";
        kind.allow_keyed_push = rel.rfind("sim/", 0) == 0 ||
                                rel.rfind("driver/shard_exec", 0) == 0 ||
                                rel.rfind("driver/shard_plan", 0) == 0;
        kind.forbid_net_rng =
            rel.rfind("net/", 0) == 0 && rel != "net/topology_gen.cpp";
      }
      AnalyzeSource(root_name + "/" + rel, buf.str(), kind,
                    DefaultGlobalWhitelist(), &analysis);
      ++analysis.files_scanned;
    }
  }
  return analysis;
}

std::vector<Violation> LintTree(const std::filesystem::path& src_root) {
  return AnalyzeTree({src_root}).violations;
}

std::string FormatViolation(const Violation& v) {
  std::ostringstream out;
  out << v.file << ':' << v.line << ": [" << v.rule << "] " << v.message;
  return out.str();
}

}  // namespace radar::lint
