// radar-redirectd: the networked RaDaR redirector (DESIGN.md §16).
//
//   radar-redirectd --config nodes.conf --num-objects 100
//                   --spool-dir /var/lib/radar --capture capture.binlog
//
// Thin shell around transport::RedirectorNode (which wraps the
// simulator's core::Redirector). With --capture every received frame is
// appended to a binlog that radar-replay can turn back into a
// deterministic simulation. Exits on kShutdown after writing a
// radar.realmode/1 summary JSON — the loopback smoke test's oracle.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/log.h"
#include "transport/node_config.h"
#include "transport/redirector_node.h"
#include "transport/tcp_transport.h"

namespace {

struct Flags {
  std::string config_path;
  std::int32_t num_objects = 0;
  int min_replicas = 1;
  std::string spool_dir;
  std::string capture_path;
  std::string summary_path;
  bool fsync = false;
  int poll_ms = 20;
};

constexpr const char* kUsage =
    "usage: radar-redirectd --config FILE [options]\n"
    "  --config FILE     node config (transport/node_config.h format)\n"
    "  --num-objects M   object population (round-robin initial homes)\n"
    "  --min-replicas K  refuse drops below K live replicas (default 1)\n"
    "  --spool-dir DIR   per-peer frame spools (drain on reconnect)\n"
    "  --capture FILE    append every received frame for radar-replay\n"
    "  --summary FILE    write radar.realmode/1 summary JSON on exit\n"
    "  --fsync           fsync spools/capture after every record\n"
    "  --poll-ms MS      poll loop timeout (default 20)\n";

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--fsync") {
      flags->fsync = true;
    } else if (arg == "--config" && has_value) {
      flags->config_path = argv[++i];
    } else if (arg == "--num-objects" && has_value) {
      flags->num_objects = std::atoi(argv[++i]);
    } else if (arg == "--min-replicas" && has_value) {
      flags->min_replicas = std::atoi(argv[++i]);
    } else if (arg == "--spool-dir" && has_value) {
      flags->spool_dir = argv[++i];
    } else if (arg == "--capture" && has_value) {
      flags->capture_path = argv[++i];
    } else if (arg == "--summary" && has_value) {
      flags->summary_path = argv[++i];
    } else if (arg == "--poll-ms" && has_value) {
      flags->poll_ms = std::atoi(argv[++i]);
    } else {
      std::cerr << "error: bad flag '" << arg << "'\n" << kUsage;
      return false;
    }
  }
  if (flags->config_path.empty()) {
    std::cerr << "error: --config is required\n" << kUsage;
    return false;
  }
  return true;
}

void WriteSummary(const std::string& path, const Flags& flags,
                  const radar::transport::RedirectorNode& node,
                  const radar::transport::TcpTransport& transport) {
  std::ofstream out(path);
  const auto& c = node.counters();
  const auto& t = transport.stats();
  const auto [replicas_total, objects_registered] =
      node.redirector().ReplicaAndObjectTotals();
  out << "{\"schema\":\"radar.realmode/1\",\"objects\":" << flags.num_objects
      << ",\"objects_lost\":" << node.CountObjectsWithoutReplica()
      << ",\"replicas_total\":" << replicas_total
      << ",\"objects_registered\":" << objects_registered
      << ",\"redirects\":" << c.redirects
      << ",\"redirects_no_replica\":" << c.redirects_no_replica
      << ",\"creates_recorded\":" << c.creates_recorded
      << ",\"drops_granted\":" << c.drops_granted
      << ",\"drops_refused\":" << c.drops_refused
      << ",\"announces_restored\":" << c.announces_restored
      << ",\"hosts_pruned\":" << c.hosts_pruned
      << ",\"replicas_pruned\":" << c.replicas_pruned
      << ",\"stats_relayed\":" << c.stats_relayed
      << ",\"frames_sent\":" << t.frames_sent
      << ",\"frames_received\":" << t.frames_received
      << ",\"frames_spooled\":" << t.frames_spooled
      << ",\"frames_drained\":" << t.frames_drained << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radar;
  // RADAR_DEBUG=1 turns on the transport's connection-lifecycle
  // trace (accepts, identifies, closes, dial timeouts) on stderr.
  if (std::getenv("RADAR_DEBUG") != nullptr) {
    SetLogLevel(LogLevel::kDebug);
  }
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  std::string error;
  const auto config = transport::NodeConfig::LoadFile(flags.config_path,
                                                      &error);
  if (!config) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }

  transport::TcpTransport::Options topt;
  topt.spool_dir = flags.spool_dir;
  topt.capture_path = flags.capture_path;
  topt.fsync = flags.fsync ? binlog::FsyncPolicy::kEveryRecord
                           : binlog::FsyncPolicy::kNone;
  transport::TcpTransport transport(*config, config->redirector(),
                                    wire::PeerRole::kRedirector, nullptr,
                                    topt);

  transport::RedirectorNode::Options ropt;
  ropt.num_objects = flags.num_objects;
  ropt.min_replicas = flags.min_replicas;
  transport::RedirectorNode node(*config, &transport, ropt);
  transport.SetHandler(&node);

  if (!transport.Start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }

  while (!node.shutdown_requested()) {
    transport.PollOnce(flags.poll_ms);
  }
  for (int i = 0; i < 20 && !transport.Flushed(); ++i) {
    transport.PollOnce(10);
  }
  if (!flags.summary_path.empty()) {
    WriteSummary(flags.summary_path, flags, node, transport);
  }
  transport.Stop();
  return 0;
}
