// CI perf-regression gate over radar.perfbench/1 documents.
//
// Compares a freshly measured throughput report (bench/throughput --json)
// against the committed baseline (BENCH_perf.json) and fails — exit 1 —
// when any gated metric of any scale dropped by more than the threshold
// (default 15%). By default BOTH requests_per_sec and events_per_sec are
// gated — a refactor can keep request throughput flat while regressing
// the event queue, and the gate must see that. The margin absorbs
// CI-machine noise while still catching the step regressions a hot-path
// change can introduce; improvements and sub-threshold wobble pass
// silently.
//
// Usage:
//   perf_gate --baseline BENCH_perf.json --current BENCH_new.json
//             [--threshold-pct 15] [--metric NAME]... [--alias CUR=BASE]...
//
// --metric is repeatable; passing it explicitly replaces the default
// {requests_per_sec, events_per_sec} set.
//
// --alias CUR=BASE (repeatable) additionally gates the current report's
// scale CUR against the baseline's scale BASE. This pins a variant scale
// to a reference: --alias small-sparse=small requires the sparse latency
// backend to stay within the threshold of the committed dense-small
// figures, so an incremental-oracle change that taxes the hot path fails
// the gate even while the sparse-vs-sparse trajectory looks flat.
//
// Every scale present in the baseline must be present in the current
// report (a vanished scale is a gate failure, not a skip); extra scales in
// the current report are ignored. The comparison prints one line per
// scale either way, so the gate's log doubles as the perf trajectory.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/report_json.h"

namespace {

using radar::driver::JsonValue;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Loads and validates a radar.perfbench/1 document; exits on failure.
JsonValue LoadPerfDoc(const std::string& path) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "perf_gate: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::string error;
  auto doc = radar::driver::ParseJson(text, &error);
  if (!doc) {
    std::fprintf(stderr, "perf_gate: %s: %s\n", path.c_str(), error.c_str());
    std::exit(2);
  }
  const JsonValue* schema = doc->Find("schema");
  if (schema == nullptr || schema->string_value() != "radar.perfbench/1") {
    std::fprintf(stderr, "perf_gate: %s is not a radar.perfbench/1 document\n",
                 path.c_str());
    std::exit(2);
  }
  if (const JsonValue* scales = doc->Find("scales");
      scales == nullptr || scales->kind() != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "perf_gate: %s has no scales array\n", path.c_str());
    std::exit(2);
  }
  return *std::move(doc);
}

const JsonValue* FindScale(const JsonValue& doc, const std::string& name) {
  for (const JsonValue& scale : doc.Find("scales")->array()) {
    const JsonValue* n = scale.Find("name");
    if (n != nullptr && n->string_value() == name) return &scale;
  }
  return nullptr;
}

double MetricOf(const JsonValue& scale, const std::string& metric,
                const std::string& name, const std::string& which) {
  const JsonValue* value = scale.Find(metric);
  if (value == nullptr || !value->is_number()) {
    std::fprintf(stderr, "perf_gate: scale %s in the %s report has no %s\n",
                 name.c_str(), which.c_str(), metric.c_str());
    std::exit(2);
  }
  return value->double_value();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::vector<std::string> metrics;
  std::vector<std::pair<std::string, std::string>> aliases;  // cur -> base
  double threshold_pct = 15.0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_gate: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--baseline") == 0) {
      baseline_path = next();
    } else if (std::strcmp(arg, "--current") == 0) {
      current_path = next();
    } else if (std::strcmp(arg, "--metric") == 0) {
      metrics.emplace_back(next());
    } else if (std::strcmp(arg, "--alias") == 0) {
      const std::string value = next();
      const auto eq = value.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
        std::fprintf(stderr, "perf_gate: --alias needs CUR=BASE\n");
        return 2;
      }
      aliases.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else if (std::strcmp(arg, "--threshold-pct") == 0) {
      threshold_pct = std::strtod(next(), nullptr);
    } else {
      std::fprintf(stderr, "perf_gate: unknown argument %s\n", arg);
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: perf_gate --baseline PATH --current PATH "
                 "[--threshold-pct N] [--metric NAME]... "
                 "[--alias CUR=BASE]...\n");
    return 2;
  }
  if (metrics.empty()) {
    metrics = {"requests_per_sec", "events_per_sec"};
  }
  if (threshold_pct <= 0.0 || threshold_pct >= 100.0) {
    std::fprintf(stderr, "perf_gate: threshold must be in (0, 100)\n");
    return 2;
  }

  const JsonValue baseline = LoadPerfDoc(baseline_path);
  const JsonValue current = LoadPerfDoc(current_path);

  int failures = 0;
  int compared = 0;
  const auto gate_pair = [&](const JsonValue& base_scale,
                             const JsonValue& cur_scale,
                             const std::string& label) {
    for (const std::string& metric : metrics) {
      const double base = MetricOf(base_scale, metric, label, "baseline");
      const double cur = MetricOf(cur_scale, metric, label, "current");
      if (base <= 0.0) {
        std::fprintf(stderr, "FAIL  %-8s baseline %s is not positive\n",
                     label.c_str(), metric.c_str());
        ++failures;
        continue;
      }
      ++compared;
      const double change_pct = (cur / base - 1.0) * 100.0;
      const bool regressed = change_pct < -threshold_pct;
      std::printf("%s  %-8s %-18s %14.0f -> %14.0f  (%+.1f%%)\n",
                  regressed ? "FAIL" : "ok  ", label.c_str(), metric.c_str(),
                  base, cur, change_pct);
      if (regressed) ++failures;
    }
  };

  for (const JsonValue& base_scale : baseline.Find("scales")->array()) {
    const JsonValue* name_value = base_scale.Find("name");
    if (name_value == nullptr) continue;
    const std::string& name = name_value->string_value();
    const JsonValue* cur_scale = FindScale(current, name);
    if (cur_scale == nullptr) {
      std::fprintf(stderr, "FAIL  %-8s missing from the current report\n",
                   name.c_str());
      ++failures;
      continue;
    }
    gate_pair(base_scale, *cur_scale, name);
  }

  for (const auto& [cur_name, base_name] : aliases) {
    const JsonValue* base_scale = FindScale(baseline, base_name);
    const JsonValue* cur_scale = FindScale(current, cur_name);
    if (base_scale == nullptr || cur_scale == nullptr) {
      std::fprintf(stderr,
                   "FAIL  --alias %s=%s: %s report has no such scale\n",
                   cur_name.c_str(), base_name.c_str(),
                   base_scale == nullptr ? "baseline" : "current");
      ++failures;
      continue;
    }
    gate_pair(*base_scale, *cur_scale, cur_name + "~" + base_name);
  }

  if (compared == 0 && failures == 0) {
    std::fprintf(stderr, "perf_gate: baseline has no named scales\n");
    return 2;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "perf_gate: %d metric(s) regressed more than %.1f%%\n",
                 failures, threshold_pct);
    return 1;
  }
  std::printf("perf_gate: all %d metric comparison(s) within %.1f%% of "
              "baseline\n",
              compared, threshold_pct);
  return 0;
}
