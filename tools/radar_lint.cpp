// radar_lint — walks source trees and enforces repo conventions, the
// paper's protocol-invariant hygiene, and the shard-readiness passes (see
// tools/lint/linter.h for the rule list). With --report it also writes
// the radar.analysis/1 shared-state inventory (tools/lint/analysis_json.h).
// Exit code 0 means clean, 1 means violations were printed, 2 means usage
// or I/O error. Registered as a ctest case over src/ and tools/.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "driver/report_json.h"
#include "lint/analysis_json.h"
#include "lint/linter.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: radar_lint [--src <dir>]... [--report <path>]\n"
               "  --src <dir>      source tree to analyze; repeatable\n"
               "                   (default: ./src)\n"
               "  --report <path>  write the radar.analysis/1 JSON report\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> roots;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--src" && i + 1 < argc) {
      roots.emplace_back(argv[++i]);
    } else if (arg.rfind("--src=", 0) == 0) {
      roots.emplace_back(arg.substr(6));
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "radar_lint: unknown argument '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (roots.empty()) roots.emplace_back("src");

  for (const auto& root : roots) {
    if (!std::filesystem::is_directory(root)) {
      std::fprintf(stderr, "radar_lint: '%s' is not a directory\n",
                   root.string().c_str());
      return 2;
    }
  }

  const radar::lint::Analysis analysis = radar::lint::AnalyzeTree(roots);
  for (const auto& v : analysis.violations) {
    std::fprintf(stderr, "%s\n", radar::lint::FormatViolation(v).c_str());
  }

  if (!report_path.empty()) {
    const radar::driver::JsonValue doc = radar::lint::AnalysisJson(
        analysis, roots, radar::lint::DefaultGlobalWhitelist());
    std::string error;
    if (!radar::driver::WriteJsonFile(report_path, doc, &error)) {
      std::fprintf(stderr, "radar_lint: cannot write report: %s\n",
                   error.c_str());
      return 2;
    }
    std::fprintf(stderr, "radar_lint: report written to %s\n",
                 report_path.c_str());
  }

  if (!analysis.violations.empty()) {
    std::fprintf(stderr, "radar_lint: %zu violation(s) in %d file(s) scanned\n",
                 analysis.violations.size(), analysis.files_scanned);
    return 1;
  }
  std::fprintf(stderr, "radar_lint: clean (%d files, %zu mutable globals, "
               "%zu hot regions)\n",
               analysis.files_scanned, analysis.mutable_globals.size(),
               analysis.hot_regions.size());
  return 0;
}
