// radar_lint — walks a source tree and enforces repo conventions and the
// paper's protocol-invariant hygiene (see tools/lint/linter.h for rules).
// Exit code 0 means clean, 1 means violations were printed, 2 means usage
// or I/O error. Registered as a ctest case over src/.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/linter.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: radar_lint [--src <dir>]\n"
               "  --src <dir>   source tree to lint (default: ./src)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path src_root = "src";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--src" && i + 1 < argc) {
      src_root = argv[++i];
    } else if (arg.rfind("--src=", 0) == 0) {
      src_root = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "radar_lint: unknown argument '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  if (!std::filesystem::is_directory(src_root)) {
    std::fprintf(stderr, "radar_lint: '%s' is not a directory\n",
                 src_root.string().c_str());
    return 2;
  }

  const auto violations = radar::lint::LintTree(src_root);
  for (const auto& v : violations) {
    std::fprintf(stderr, "%s\n", radar::lint::FormatViolation(v).c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "radar_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  std::fprintf(stderr, "radar_lint: clean\n");
  return 0;
}
