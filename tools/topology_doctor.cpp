// topology_doctor: check a backbone file for protocol-health problems
// before running the replication protocol on it.
//
//   topology_doctor my_backbone.txt          # or no argument: built-in
//
// Reports per-node degree, the transit-funnel analysis against the
// migration threshold, diameter, and redirector placement.
#include <fstream>
#include <iomanip>
#include <iostream>

#include "core/params.h"
#include "net/analysis.h"
#include "net/topology_io.h"
#include "net/uunet.h"

int main(int argc, char** argv) {
  using namespace radar;

  net::Topology topology = net::MakeUunetBackbone();
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "error: cannot open '" << argv[1] << "'\n";
      return 2;
    }
    std::string error;
    auto parsed = net::ReadTopology(in, &error);
    if (!parsed) {
      std::cerr << "error: " << argv[1] << ": " << error << "\n";
      return 2;
    }
    topology = *std::move(parsed);
  }

  const net::RoutingTable routing(topology.graph());
  const core::ProtocolParams params;

  std::cout << "topology: " << topology.num_nodes() << " nodes, "
            << topology.graph().num_links() << " links\n";

  std::int32_t diameter = 0;
  for (NodeId i = 0; i < topology.num_nodes(); ++i) {
    for (NodeId j = 0; j < topology.num_nodes(); ++j) {
      diameter = std::max(diameter, routing.HopDistance(i, j));
    }
  }
  std::cout << "diameter: " << diameter << " hops\n";
  const NodeId central = routing.MostCentralNode();
  std::cout << "redirector placement (most central node): "
            << topology.node(central).name << " (mean distance "
            << std::fixed << std::setprecision(2)
            << routing.MeanHopDistance(central) << ")\n";

  std::size_t min_degree = topology.num_nodes() > 0
                               ? topology.graph().Neighbors(0).size()
                               : 0;
  for (NodeId n = 0; n < topology.num_nodes(); ++n) {
    min_degree = std::min(min_degree, topology.graph().Neighbors(n).size());
  }
  std::cout << "minimum degree: " << min_degree << "\n\n";

  const auto funnels =
      net::FunnelsAbove(topology, routing, params.migr_ratio);
  if (funnels.empty()) {
    std::cout << "no transit funnels above MIGR_RATIO ("
              << params.migr_ratio << ") — migration churn unlikely.\n";
  } else {
    std::cout << funnels.size() << " node(s) funnel more than "
              << params.migr_ratio
              << " of their paths through one neighbour\n"
              << "(globally popular objects hosted there will keep "
                 "migrating toward it):\n";
    for (const auto& f : funnels) {
      std::cout << "  " << std::left << std::setw(16)
                << topology.node(f.source).name << " -> " << std::setw(16)
                << topology.node(f.funnel).name << std::right
                << std::setprecision(2) << f.fraction << "\n";
    }
  }
  return 0;
}
