// radar_sim: run the hosting-platform simulation from the command line.
//
//   radar_sim --workload=regional --duration=1800 --series
//   radar_sim --topology=my_backbone.txt --trace=requests.trace
#include <fstream>
#include <iostream>
#include <vector>

#include "driver/cli.h"
#include "driver/hosting_simulation.h"
#include "net/topology_io.h"

int main(int argc, char** argv) {
  using namespace radar;

  std::vector<std::string> args(argv + 1, argv + argc);
  driver::CliError error;
  const auto options = driver::ParseCli(args, &error);
  if (!options) {
    std::cerr << "error: " << error.message << "\n\n" << driver::CliUsage();
    return 2;
  }
  if (options->show_help) {
    std::cout << driver::CliUsage();
    return 0;
  }

  std::optional<net::Topology> topology;
  if (!options->topology_file.empty()) {
    std::ifstream in(options->topology_file);
    if (!in) {
      std::cerr << "error: cannot open topology file '"
                << options->topology_file << "'\n";
      return 2;
    }
    std::string parse_error;
    topology = net::ReadTopology(in, &parse_error);
    if (!topology) {
      std::cerr << "error: " << options->topology_file << ": "
                << parse_error << "\n";
      return 2;
    }
  }

  driver::HostingSimulation sim =
      topology.has_value()
          ? driver::HostingSimulation(options->config, *std::move(topology))
          : driver::HostingSimulation(options->config);

  if (!options->trace_file.empty()) {
    std::ifstream in(options->trace_file);
    if (!in) {
      std::cerr << "error: cannot open trace file '" << options->trace_file
                << "'\n";
      return 2;
    }
    std::string parse_error;
    auto trace = workload::RequestTrace::Load(in, &parse_error);
    if (!trace) {
      std::cerr << "error: " << options->trace_file << ": " << parse_error
                << "\n";
      return 2;
    }
    sim.SetTrace(*std::move(trace));
  }

  const driver::RunReport report = sim.Run();
  report.PrintSummary(std::cout);
  if (options->print_series) {
    std::cout << "\n";
    report.PrintSeries(std::cout);
  }
  return 0;
}
