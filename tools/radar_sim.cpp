// radar_sim: run the hosting-platform simulation from the command line.
//
//   radar_sim --workload=regional --duration=1800 --series
//   radar_sim --topology=my_backbone.txt --trace=requests.trace
//   radar_sim --topology=ts:n=10000,seed=7 --objects=100000 --duration=60
//   radar_sim --workload=zipf --json=report.json
//
// Execution goes through the experiment engine (src/runner): the run is a
// one-entry ExperimentPlan rooted at --seed, so the CLI shares the bench
// binaries' machinery (and their --jobs/--json semantics) and its JSON
// artefact is the same schema-versioned ReportJson document.
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "driver/cli.h"
#include "driver/hosting_simulation.h"
#include "driver/report_json.h"
#include "fault/fault_plan.h"
#include "net/topology_gen.h"
#include "net/topology_io.h"
#include "runner/experiment_plan.h"
#include "runner/shard_executor.h"
#include "runner/sweep_runner.h"

int main(int argc, char** argv) {
  using namespace radar;

  std::vector<std::string> args(argv + 1, argv + argc);
  driver::CliError error;
  const auto options = driver::ParseCli(args, &error);
  if (!options) {
    std::cerr << "error: " << error.message << "\n\n" << driver::CliUsage();
    return 2;
  }
  if (options->show_help) {
    std::cout << driver::CliUsage();
    return 0;
  }

  std::shared_ptr<net::Topology> topology;
  if (net::IsTopologySpec(options->topology_file)) {
    // A "ts:" / "sf:" generator spec (net/topology_gen.h): synthesize the
    // backbone instead of loading a file.
    topology =
        std::make_shared<net::Topology>(net::GenerateTopology(
            options->topology_file));
  } else if (!options->topology_file.empty()) {
    std::ifstream in(options->topology_file);
    if (!in) {
      std::cerr << "error: cannot open topology file '"
                << options->topology_file << "'\n";
      return 2;
    }
    std::string parse_error;
    auto parsed = net::ReadTopology(in, &parse_error);
    if (!parsed) {
      std::cerr << "error: " << options->topology_file << ": "
                << parse_error << "\n";
      return 2;
    }
    topology = std::make_shared<net::Topology>(*std::move(parsed));
  }

  std::shared_ptr<workload::RequestTrace> trace;
  if (!options->trace_file.empty()) {
    std::ifstream in(options->trace_file);
    if (!in) {
      std::cerr << "error: cannot open trace file '" << options->trace_file
                << "'\n";
      return 2;
    }
    std::string parse_error;
    auto parsed = workload::RequestTrace::Load(in, &parse_error);
    if (!parsed) {
      std::cerr << "error: " << options->trace_file << ": " << parse_error
                << "\n";
      return 2;
    }
    trace = std::make_shared<workload::RequestTrace>(*std::move(parsed));
  }

  driver::SimConfig run_config = options->config;
  if (!options->fault_plan_file.empty()) {
    std::string parse_error;
    auto parsed = fault::ParseFaultPlanFile(options->fault_plan_file,
                                            &parse_error);
    if (!parsed) {
      std::cerr << "error: " << options->fault_plan_file << ": "
                << parse_error << "\n";
      return 2;
    }
    run_config.faults = *std::move(parsed);
  }

  runner::ExperimentPlan plan("radar_sim", run_config.seed,
                              runner::SeedPolicy::kSharedRoot);
  plan.AddCustom(
      driver::WorkloadKindName(run_config.workload), run_config,
      [topology, trace](const driver::SimConfig& config) {
        driver::HostingSimulation sim =
            topology != nullptr
                ? driver::HostingSimulation(config, *topology)
                : driver::HostingSimulation(config);
        if (trace != nullptr) sim.SetTrace(*trace);
        if (config.shards >= 1) {
          // Sharded engine: windows run on a pool sized to the shard
          // count. The executor only needs to outlive Run().
          runner::PoolShardExecutor executor(config.shards);
          sim.set_window_executor(&executor);
          return sim.Run();
        }
        return sim.Run();
      });

  const runner::SweepResult sweep =
      runner::SweepRunner(options->jobs).Run(plan);
  const driver::RunReport& report = sweep.runs[0].report;

  report.PrintSummary(std::cout);
  if (options->print_series) {
    std::cout << "\n";
    report.PrintSeries(std::cout);
  }
  if (!options->json_file.empty()) {
    std::string write_error;
    if (!driver::WriteJsonFile(options->json_file,
                               driver::ReportJson(report), &write_error)) {
      std::cerr << "error: " << write_error << "\n";
      return 1;
    }
  }
  return 0;
}
