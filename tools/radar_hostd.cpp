// radar-hostd: a networked RaDaR hosting server (DESIGN.md §16).
//
//   radar-hostd --config nodes.conf --id 1 --num-objects 100
//               --state-dir /var/lib/radar --spool-dir /var/lib/radar
//
// The daemon is a thin shell: TcpTransport owns every socket and clock,
// transport::HostNode (wrapping the simulator's own core::HostAgent) owns
// every protocol decision. It exits on a kShutdown frame (radar-workctl
// shutdown) after writing a radar.hostd/1 summary JSON.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.h"
#include "transport/host_node.h"
#include "transport/node_config.h"
#include "transport/tcp_transport.h"

namespace {

struct Flags {
  std::string config_path;
  radar::NodeId id = radar::kInvalidNode;
  std::int32_t num_objects = 0;
  std::string state_dir;
  std::string spool_dir;
  std::string summary_path;
  bool fsync = false;
  int poll_ms = 20;
};

constexpr const char* kUsage =
    "usage: radar-hostd --config FILE --id N [options]\n"
    "  --config FILE     node config (transport/node_config.h format)\n"
    "  --id N            this node's id (must have role 'host')\n"
    "  --num-objects M   object population (round-robin initial homes)\n"
    "  --state-dir DIR   replica-set WAL lives at DIR/hostd-<id>.wal\n"
    "  --spool-dir DIR   per-peer frame spools (drain on reconnect)\n"
    "  --summary FILE    write radar.hostd/1 summary JSON on exit\n"
    "  --fsync           fsync WAL and spools after every record\n"
    "  --poll-ms MS      poll loop timeout (default 20)\n";

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--fsync") {
      flags->fsync = true;
    } else if (arg == "--config" && has_value) {
      flags->config_path = argv[++i];
    } else if (arg == "--id" && has_value) {
      flags->id = static_cast<radar::NodeId>(std::atoi(argv[++i]));
    } else if (arg == "--num-objects" && has_value) {
      flags->num_objects = std::atoi(argv[++i]);
    } else if (arg == "--state-dir" && has_value) {
      flags->state_dir = argv[++i];
    } else if (arg == "--spool-dir" && has_value) {
      flags->spool_dir = argv[++i];
    } else if (arg == "--summary" && has_value) {
      flags->summary_path = argv[++i];
    } else if (arg == "--poll-ms" && has_value) {
      flags->poll_ms = std::atoi(argv[++i]);
    } else {
      std::cerr << "error: bad flag '" << arg << "'\n" << kUsage;
      return false;
    }
  }
  if (flags->config_path.empty() || flags->id == radar::kInvalidNode) {
    std::cerr << "error: --config and --id are required\n" << kUsage;
    return false;
  }
  return true;
}

void WriteSummary(const std::string& path, radar::NodeId id,
                  const radar::transport::HostNode& node,
                  const radar::transport::TcpTransport& transport) {
  std::ofstream out(path);
  const auto& c = node.counters();
  const auto& t = transport.stats();
  out << "{\"schema\":\"radar.hostd/1\",\"node\":" << id
      << ",\"objects\":" << node.agent().NumObjects()
      << ",\"requests_serviced\":" << c.requests_serviced
      << ",\"requests_unhosted\":" << c.requests_unhosted
      << ",\"create_accepted\":" << c.create_accepted
      << ",\"create_refused\":" << c.create_refused
      << ",\"migrates_out\":" << c.migrates_out
      << ",\"replicates_out\":" << c.replicates_out
      << ",\"drops_granted\":" << c.drops_granted
      << ",\"wal_errors\":" << c.wal_errors
      << ",\"frames_sent\":" << t.frames_sent
      << ",\"frames_received\":" << t.frames_received
      << ",\"frames_spooled\":" << t.frames_spooled
      << ",\"frames_drained\":" << t.frames_drained << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radar;
  // RADAR_DEBUG=1 turns on the transport's connection-lifecycle
  // trace (accepts, identifies, closes, dial timeouts) on stderr.
  if (std::getenv("RADAR_DEBUG") != nullptr) {
    SetLogLevel(LogLevel::kDebug);
  }
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  std::string error;
  const auto config = transport::NodeConfig::LoadFile(flags.config_path,
                                                      &error);
  if (!config) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  if (!config->Has(flags.id) ||
      config->At(flags.id).role != transport::NodeRole::kHost) {
    std::cerr << "error: node " << flags.id << " is not a host\n";
    return 2;
  }

  transport::TcpTransport::Options topt;
  topt.spool_dir = flags.spool_dir;
  topt.fsync = flags.fsync ? binlog::FsyncPolicy::kEveryRecord
                           : binlog::FsyncPolicy::kNone;
  transport::TcpTransport transport(*config, flags.id, wire::PeerRole::kHost,
                                    nullptr, topt);

  transport::HostNode::Options hopt;
  hopt.num_objects = flags.num_objects;
  if (!flags.state_dir.empty()) {
    hopt.wal_path =
        flags.state_dir + "/hostd-" + std::to_string(flags.id) + ".wal";
  }
  hopt.fsync = topt.fsync;
  transport::HostNode node(*config, flags.id, &transport, hopt);
  transport.SetHandler(&node);

  if (!transport.Start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  transport.ConnectTo(config->redirector());
  if (!node.Init(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }

  // Readiness marker: orchestration (loopback_smoke.sh, operators) waits
  // on this file instead of guessing how long platform assembly takes —
  // boot-time dials race the redirector's bind and ride the reconnect
  // backoff, so "the process is up" never implies "the host is attached".
  const std::string ready_path =
      flags.state_dir.empty()
          ? ""
          : flags.state_dir + "/ready-" + std::to_string(flags.id);
  bool ready_written = false;
  while (!node.shutdown_requested()) {
    transport.PollOnce(flags.poll_ms);
    node.OnTick();
    if (!ready_written && !ready_path.empty() &&
        transport.IsPeerUp(config->redirector())) {
      std::ofstream(ready_path) << "ready\n";
      ready_written = true;
    }
  }
  // Hand any queued replies to the kernel before tearing sockets down.
  for (int i = 0; i < 20 && !transport.Flushed(); ++i) {
    transport.PollOnce(10);
  }
  if (!flags.summary_path.empty()) {
    WriteSummary(flags.summary_path, flags.id, node, transport);
  }
  transport.Stop();
  return 0;
}
