#!/usr/bin/env bash
# Loopback smoke test for real-system mode (DESIGN.md §16).
#
# Boots the full networked stack on 127.0.0.1 — one radar-redirectd and
# three radar-hostd — drives a scripted workload through radar-workctl,
# SIGKILLs one host mid-run, restarts it, and then checks the two oracles
# the issue pins down:
#
#   1. Conservation: after the kill/restart cycle the redirector's
#      radar.realmode/1 summary reports objects_lost == 0 (the restarted
#      host rebuilt its replica set from the WAL and re-announced it).
#   2. Replay determinism: radar-replay over the captured binlog emits
#      byte-identical radar.report/1 JSON across two invocations (cmp).
#
# Usage: tools/loopback_smoke.sh <build-bin-dir> [work-dir]
#   <build-bin-dir>  directory holding radar-hostd, radar-redirectd,
#                    radar-workctl, radar-replay (e.g. build/tools)
#   [work-dir]       scratch directory (default: a fresh mktemp -d)
#
# Exit 0 iff every oracle holds. Designed to run under ctest and as a CI
# leg; everything it starts is reaped on exit.
set -u

BIN="${1:?usage: loopback_smoke.sh <build-bin-dir> [work-dir]}"
BIN="$(cd "${BIN}" 2>/dev/null && pwd)" \
  || { echo "loopback_smoke: FAIL: bad bin dir '$1'" >&2; exit 1; }
WORK="${2:-$(mktemp -d /tmp/radar_smoke.XXXXXX)}"
mkdir -p "${WORK}"
cd "${WORK}"

# Derive the port base from our PID: back-to-back runs on fixed ports
# trip over the previous run's TIME-WAIT tuples (the kernel hands dialers
# the same ephemeral ports for the same destination, and a SYN landing on
# a TIME-WAIT tuple can be swallowed), which shows up as hosts that take
# tens of seconds to reach the redirector.
PORT_BASE="${RADAR_SMOKE_PORT_BASE:-$((20000 + $$ % 10000))}"
NUM_OBJECTS=12
PIDS=()

fail() {
  echo "loopback_smoke: FAIL: $*" >&2
  exit 1
}

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [ -n "${pid}" ] && kill -9 "${pid}" 2>/dev/null
  done
  wait 2>/dev/null
}
trap cleanup EXIT

for tool in radar-redirectd radar-hostd radar-workctl radar-replay; do
  [ -x "${BIN}/${tool}" ] || fail "missing binary ${BIN}/${tool}"
done

# --- static platform: 1 redirector, 3 hosts, 1 client (port 0: dials only)
cat > nodes.conf <<EOF
0 redirector 127.0.0.1 $((PORT_BASE + 0))
1 host       127.0.0.1 $((PORT_BASE + 1))
2 host       127.0.0.1 $((PORT_BASE + 2))
3 host       127.0.0.1 $((PORT_BASE + 3))
4 client     127.0.0.1 0
EOF

mkdir -p state spool

start_hostd() {
  "${BIN}/radar-hostd" --config nodes.conf --id "$1" \
    --num-objects "${NUM_OBJECTS}" --state-dir state --spool-dir spool \
    --summary "hostd-$1.json" --poll-ms 5 >"hostd-$1.log" 2>&1 &
  HOSTD_PID=$!
  PIDS+=("${HOSTD_PID}")
}

"${BIN}/radar-redirectd" --config nodes.conf --num-objects "${NUM_OBJECTS}" \
  --spool-dir spool --capture capture.binlog --summary redirectd.json \
  --poll-ms 5 >redirectd.log 2>&1 &
PIDS+=($!)

start_hostd 1
start_hostd 2; HOST2_PID="${HOSTD_PID}"
start_hostd 3

run_load() {
  # $1: requests  $2: log suffix — exit status collected by the caller.
  "${BIN}/radar-workctl" --config nodes.conf --id 4 run \
    --requests "$1" --objects "${NUM_OBJECTS}" >"workctl-$2.json" 2>&1
}

# Hostd writes state/ready-<id> once the redirector has identified it.
# Waiting on the markers (instead of sleeping) removes the platform
# assembly race: on a loaded box the redirector can bind late, boot-time
# dials get refused, and a host may ride the reconnect backoff for a
# while — killing it before it ever attached would test nothing.
wait_ready() {
  for _ in $(seq 1 300); do
    local missing=0
    for id in "$@"; do [ -f "state/ready-${id}" ] || missing=1; done
    [ "${missing}" -eq 0 ] && return 0
    sleep 0.1
  done
  fail "hosts $* never attached to the redirector (ready markers missing)"
}

# Phase 1: everyone up — every request must find a live replica. workctl
# retries its first dial until the daemons finish binding, so no sleep
# race here; give it one respawn for slow CI machines anyway.
wait_ready 1 2 3
run_load 36 up || { sleep 1; run_load 36 up2; } \
  || fail "baseline workload had failures ($(cat workctl-up*.json))"

# Phase 2: SIGKILL host 2 (no shutdown frame, no summary — a crash). Its
# 4 round-robin objects go dark: once the redirector's poll loop sees the
# disconnect it answers no_replica for them; requests racing the prune
# are redirected to the dead host and fail at fetch instead. Either way
# the leg must NOT fully succeed (exit status itself is ignored).
kill -9 "${HOST2_PID}" 2>/dev/null || fail "could not kill host 2"
wait "${HOST2_PID}" 2>/dev/null
sleep 1  # let the redirector observe the disconnect and prune
run_load 24 down
[ -s workctl-down.json ] || fail "workctl wrote no summary while host 2 down"
grep -q '"ok":24' workctl-down.json \
  && fail "workload fully succeeded while host 2 was down"

# Phase 3: restart host 2. It replays its WAL, re-announces its replica
# set, and the redirector drains whatever it spooled for the dead peer —
# after which the full workload must succeed again.
rm -f state/ready-2
start_hostd 2
wait_ready 2
run_load 36 restored || { sleep 1; run_load 36 restored2; } \
  || fail "post-restart workload had failures ($(cat workctl-restored*.json))"

# Phase 4: orderly shutdown — redirector FIRST. It prunes replicas when a
# host disconnects, so its exit summary only reflects the live platform if
# it is the first to go.
for target in 0 1 2 3; do
  "${BIN}/radar-workctl" --config nodes.conf --id 4 shutdown \
    --target "${target}" >/dev/null 2>&1 \
    || fail "shutdown of node ${target} failed"
done
wait 2>/dev/null
PIDS=()

# --- oracle 1: conservation across the crash/restart cycle
[ -f redirectd.json ] || fail "redirector never wrote its summary"
grep -q '"objects_lost":0' redirectd.json \
  || fail "objects_lost != 0: $(cat redirectd.json)"
grep -q "\"replicas_total\":${NUM_OBJECTS}" redirectd.json \
  || fail "replicas_total != ${NUM_OBJECTS}: $(cat redirectd.json)"
grep -q '"announces_restored":0' redirectd.json \
  && fail "expected announces_restored > 0 after the restart"

# --- oracle 2: replay determinism (capture -> sim is a pure function)
[ -s capture.binlog ] || fail "capture binlog is empty"
"${BIN}/radar-replay" --config nodes.conf --capture capture.binlog \
  --out replay1.json || fail "radar-replay run 1 failed"
"${BIN}/radar-replay" --config nodes.conf --capture capture.binlog \
  --out replay2.json || fail "radar-replay run 2 failed"
cmp replay1.json replay2.json || fail "replay JSON not byte-identical"
grep -q '"schema": "radar.report/1"' replay1.json \
  || fail "replay output is not a radar.report/1 document"

echo "loopback_smoke: PASS (objects_lost=0, replay byte-identical," \
  "work dir ${WORK})"
