// radar-replay: turn a real-mode capture binlog into a deterministic
// simulator run (DESIGN.md §16).
//
//   radar-replay --config nodes.conf --capture capture.binlog
//                --out replay.json --num-objects 100
//
// The capture's client request stream (kRequest frames with their
// microsecond timestamps) becomes a workload::RequestTrace; the node
// config becomes a uniform clique topology with the same node ids and the
// same round-robin initial placement the daemons used; the simulator does
// the rest. Replay is a pure function of (config bytes, capture bytes),
// so two invocations emit byte-identical radar.report/1 documents — the
// property the CI smoke test asserts with cmp.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "binlog/replay.h"
#include "driver/hosting_simulation.h"
#include "driver/report_json.h"
#include "net/topology.h"
#include "transport/node_config.h"

namespace {

struct Flags {
  std::string config_path;
  std::string capture_path;
  std::string out_path;
  std::int32_t num_objects = 0;
};

constexpr const char* kUsage =
    "usage: radar-replay --config FILE --capture FILE --out FILE [options]\n"
    "  --num-objects M   object population (default: max id in capture + 1)\n";

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--config" && has_value) {
      flags->config_path = argv[++i];
    } else if (arg == "--capture" && has_value) {
      flags->capture_path = argv[++i];
    } else if (arg == "--out" && has_value) {
      flags->out_path = argv[++i];
    } else if (arg == "--num-objects" && has_value) {
      flags->num_objects = std::atoi(argv[++i]);
    } else {
      std::cerr << "error: bad flag '" << arg << "'\n" << kUsage;
      return false;
    }
  }
  if (flags->config_path.empty() || flags->capture_path.empty() ||
      flags->out_path.empty()) {
    std::cerr << "error: --config, --capture and --out are required\n"
              << kUsage;
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radar;
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  std::string error;
  const auto config = transport::NodeConfig::LoadFile(flags.config_path,
                                                      &error);
  if (!config) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }

  binlog::CaptureSummary summary;
  auto trace = binlog::TraceFromCapture(flags.capture_path, SecondsToSim(1.0),
                                        &summary, &error);
  if (!trace) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  std::cerr << "capture: " << summary.records << " records, "
            << summary.requests << " requests, " << summary.create_obj
            << " create-obj, " << summary.placement_stats << " stats, "
            << summary.undecodable << " undecodable"
            << (summary.clean ? "" : " (torn tail truncated)") << "\n";

  // The capture's node ids index the config, so the replay topology must
  // use the same ids: one node per config entry, uniform clique links.
  net::TopologyBuilder builder;
  for (const transport::NodeEntry& entry : config->nodes()) {
    builder.AddNode("n" + std::to_string(entry.id),
                    net::Region::kWesternNorthAmerica, true);
  }
  for (NodeId a = 0; a < config->num_nodes(); ++a) {
    for (NodeId b = a + 1; b < config->num_nodes(); ++b) {
      builder.Link(a, b, SecondsToSim(0.01), 45e6);
    }
  }

  driver::SimConfig sim_config;
  sim_config.num_objects =
      std::max({flags.num_objects, trace->NumObjectsReferenced(), 1});
  sim_config.duration = trace->Duration() + SecondsToSim(5.0);
  // Mirror the daemons' round-robin initial placement over host entries.
  const transport::NodeConfig& node_config = *config;
  sim_config.initial_home = [&node_config](ObjectId x) {
    return node_config.InitialHome(x);
  };

  driver::HostingSimulation sim(sim_config, std::move(builder).Build());
  sim.SetTrace(*std::move(trace));
  const driver::RunReport report = sim.Run();
  report.PrintSummary(std::cout);
  if (!driver::WriteJsonFile(flags.out_path, driver::ReportJson(report),
                             &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  return 0;
}
