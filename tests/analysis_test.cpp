// Tests for the transit-funnel analysis, including the UUNET-backbone
// regression promised in uunet.cpp: the synthetic backbone must keep
// per-neighbour transit fractions below the migration threshold for the
// large majority of nodes, or the protocol churns (DESIGN.md §2).
#include <gtest/gtest.h>

#include "core/params.h"
#include "net/analysis.h"
#include "net/uunet.h"

namespace radar::net {
namespace {

constexpr SimTime kDelay = MillisToSim(10.0);
constexpr double kBw = 350.0 * 1024.0;

TEST(FunnelAnalysisTest, SpurNodeFunnelsCompletely) {
  // a - b - c: everything from 'a' transits b.
  TopologyBuilder builder;
  builder.AddNode("a", Region::kEurope);
  builder.AddNode("b", Region::kEurope);
  builder.AddNode("c", Region::kEurope);
  builder.Link(0, 1, kDelay, kBw);
  builder.Link(1, 2, kDelay, kBw);
  const Topology topology = std::move(builder).Build();
  const RoutingTable routing(topology.graph());
  const auto reports = ComputeFunnels(topology, routing);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].source, 0);
  EXPECT_EQ(reports[0].funnel, 1);
  EXPECT_DOUBLE_EQ(reports[0].fraction, 1.0);
  // The middle node splits its two destinations evenly.
  EXPECT_DOUBLE_EQ(reports[1].fraction, 0.5);
}

TEST(FunnelAnalysisTest, TriangleHasNoFunnelAboveHalf) {
  TopologyBuilder builder;
  builder.AddNode("a", Region::kEurope);
  builder.AddNode("b", Region::kEurope);
  builder.AddNode("c", Region::kEurope);
  builder.Link(0, 1, kDelay, kBw);
  builder.Link(1, 2, kDelay, kBw);
  builder.Link(0, 2, kDelay, kBw);
  const Topology topology = std::move(builder).Build();
  const RoutingTable routing(topology.graph());
  for (const auto& report : ComputeFunnels(topology, routing)) {
    EXPECT_DOUBLE_EQ(report.fraction, 0.5);  // each neighbour gets one dest
  }
  EXPECT_TRUE(FunnelsAbove(topology, routing, 0.6).empty());
}

TEST(FunnelAnalysisTest, FunnelsAboveSortsDescending) {
  // line a-b-c-d: a funnels 1.0 via b, b funnels 2/3 via c, etc.
  TopologyBuilder builder;
  builder.AddNode("a", Region::kEurope);
  builder.AddNode("b", Region::kEurope);
  builder.AddNode("c", Region::kEurope);
  builder.AddNode("d", Region::kEurope);
  builder.Link(0, 1, kDelay, kBw);
  builder.Link(1, 2, kDelay, kBw);
  builder.Link(2, 3, kDelay, kBw);
  const Topology topology = std::move(builder).Build();
  const RoutingTable routing(topology.graph());
  const auto hot = FunnelsAbove(topology, routing, 0.6);
  ASSERT_EQ(hot.size(), 4u);  // ends: 1.0; middles: 2/3
  EXPECT_DOUBLE_EQ(hot[0].fraction, 1.0);
  EXPECT_DOUBLE_EQ(hot[1].fraction, 1.0);
  EXPECT_GE(hot[1].fraction, hot[2].fraction);
  EXPECT_NEAR(hot[3].fraction, 2.0 / 3.0, 1e-9);
}

TEST(UunetFunnelTest, FunnelFractionsMostlyBelowMigrationRatio) {
  // The regression promised in uunet.cpp: MIGR_RATIO presumes a dense
  // backbone. Allow a handful of peripheral stragglers (Melbourne-style
  // single-exit geography is real), but the platform at large must sit
  // below the migration threshold or every object churns.
  const Topology topology = MakeUunetBackbone();
  const RoutingTable routing(topology.graph());
  const core::ProtocolParams params;
  const auto hot = FunnelsAbove(topology, routing, params.migr_ratio);
  EXPECT_LE(hot.size(), 6u) << "backbone became too sparse";
  for (const auto& f : hot) {
    EXPECT_LT(f.fraction, 0.85)
        << topology.node(f.source).name << " funnels through "
        << topology.node(f.funnel).name;
  }
}

TEST(UunetFunnelTest, MinimumDegreeIsAtLeastThree) {
  const Topology topology = MakeUunetBackbone();
  for (NodeId n = 0; n < topology.num_nodes(); ++n) {
    EXPECT_GE(topology.graph().Neighbors(n).size(), 3u)
        << topology.node(n).name;
  }
}

}  // namespace
}  // namespace radar::net
