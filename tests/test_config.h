// Shared test configuration helpers.
#pragma once

#include "driver/config.h"

namespace radar::driver::testing {

/// A configuration dynamically equivalent to the paper's Table 1 but
/// `scale` times smaller. All rates (request rate, capacity, watermarks,
/// thresholds) shrink together with the object count, so per-object load
/// relative to the watermarks — the ratio the protocol's admission bounds
/// key off — is preserved while simulations run `scale` times faster.
/// Latency magnitudes change (service time grows); placement dynamics do
/// not.
inline SimConfig ScaledPaperConfig(double scale = 10.0) {
  SimConfig config;
  config.num_objects = static_cast<ObjectId>(10000.0 / scale);
  config.node_request_rate = 40.0 / scale;
  config.server_capacity = 200.0 / scale;
  config.protocol.high_watermark = 90.0 / scale;
  config.protocol.low_watermark = 80.0 / scale;
  // The deletion/replication thresholds are *per-object* rates; the
  // per-object request rate (total rate / objects) is scale-invariant, so
  // they keep their Table 1 values.
  return config;
}

}  // namespace radar::driver::testing
