// Unit tests for the request distribution algorithm (Fig. 2) and the
// redirector's replica-set registry.
#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/redirector.h"

namespace radar::core {
namespace {

// A 4-node line: 0 - 1 - 2 - 3 (hop distances = index differences).
MatrixDistanceOracle LineOracle() {
  MatrixDistanceOracle oracle(4);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) {
      oracle.Set(a, b, b - a);
    }
  }
  return oracle;
}

class RedirectorTest : public ::testing::Test {
 protected:
  RedirectorTest() : oracle_(LineOracle()), redirector_(oracle_, 2.0, 1) {}

  MatrixDistanceOracle oracle_;
  Redirector redirector_;
};

TEST_F(RedirectorTest, SoleReplicaAlwaysChosen) {
  redirector_.RegisterObject(5, 2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(redirector_.ChooseReplica(5, 0), 2);
  }
  EXPECT_EQ(redirector_.RequestCountOf(5, 2), 11);  // initial 1 + 10
}

TEST_F(RedirectorTest, HomeNodeStored) {
  EXPECT_EQ(redirector_.home_node(), 1);
}

TEST_F(RedirectorTest, KnowsObjectOnlyAfterRegistration) {
  EXPECT_FALSE(redirector_.KnowsObject(3));
  redirector_.RegisterObject(3, 0);
  EXPECT_TRUE(redirector_.KnowsObject(3));
  EXPECT_FALSE(redirector_.KnowsObject(4));
}

TEST_F(RedirectorTest, ClosestWinsWhenCountsBalanced) {
  // Two replicas at 0 and 3; alternating gateways at 0 and 3 keep the
  // counts balanced, so every request goes to its closest replica — the
  // paper's America/Europe first scenario.
  redirector_.RegisterObject(1, 0);
  redirector_.OnReplicaCreated(1, 3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(redirector_.ChooseReplica(1, 0), 0);
    EXPECT_EQ(redirector_.ChooseReplica(1, 3), 3);
  }
}

TEST_F(RedirectorTest, OverloadedRegionSpillsOneThird) {
  // All requests from gateway 0, replicas at 0 and 3. The closest replica
  // (0) is taken until its unit count exceeds twice the other's, so
  // replica 3 ends up with ~1/3 of the requests (Sec. 3's analysis).
  redirector_.RegisterObject(1, 0);
  redirector_.OnReplicaCreated(1, 3);
  int remote = 0;
  constexpr int kRequests = 3000;
  for (int i = 0; i < kRequests; ++i) {
    if (redirector_.ChooseReplica(1, 0) == 3) ++remote;
  }
  EXPECT_NEAR(static_cast<double>(remote) / kRequests, 1.0 / 3.0, 0.01);
}

TEST_F(RedirectorTest, NReplicasBoundClosestShareByTwoOverNPlusOne) {
  // With n replicas and every request closest to the same one, that
  // replica services only 2N/(n+1) of N requests (Sec. 3).
  for (const int n : {2, 3, 4}) {
    Redirector r(oracle_, 2.0);
    r.RegisterObject(1, 0);
    for (NodeId host = 1; host < n; ++host) r.OnReplicaCreated(1, host);
    int close = 0;
    constexpr int kRequests = 6000;
    for (int i = 0; i < kRequests; ++i) {
      if (r.ChooseReplica(1, 0) == 0) ++close;
    }
    EXPECT_NEAR(static_cast<double>(close) / kRequests, 2.0 / (n + 1), 0.02)
        << "n=" << n;
  }
}

TEST_F(RedirectorTest, AffinitySkewsDistribution) {
  // Affinity 4 on the near replica vs 1 on the far one: with all requests
  // nearest the first, it should absorb ~8/9 of them (unit counts).
  redirector_.RegisterObject(1, 0);
  redirector_.OnReplicaCreated(1, 3);
  for (int i = 0; i < 3; ++i) redirector_.OnReplicaCreated(1, 0);  // aff 4
  ASSERT_EQ(redirector_.AffinityOf(1, 0), 4);
  int near = 0;
  constexpr int kRequests = 9000;
  for (int i = 0; i < kRequests; ++i) {
    if (redirector_.ChooseReplica(1, 0) == 0) ++near;
  }
  EXPECT_NEAR(static_cast<double>(near) / kRequests, 8.0 / 9.0, 0.02);
}

TEST_F(RedirectorTest, DistributionConstantControlsSpill) {
  // With a larger constant the closest replica keeps more of the traffic.
  for (const double c : {1.5, 2.0, 4.0}) {
    Redirector r(oracle_, c);
    r.RegisterObject(1, 0);
    r.OnReplicaCreated(1, 3);
    int close = 0;
    constexpr int kRequests = 4000;
    for (int i = 0; i < kRequests; ++i) {
      if (r.ChooseReplica(1, 0) == 0) ++close;
    }
    // Steady-state near fraction is c/(c+1).
    EXPECT_NEAR(static_cast<double>(close) / kRequests, c / (c + 1.0), 0.02)
        << "c=" << c;
  }
}

TEST_F(RedirectorTest, CountsResetOnReplicaSetChange) {
  redirector_.RegisterObject(1, 0);
  for (int i = 0; i < 50; ++i) redirector_.ChooseReplica(1, 0);
  EXPECT_EQ(redirector_.RequestCountOf(1, 0), 51);
  redirector_.OnReplicaCreated(1, 3);
  EXPECT_EQ(redirector_.RequestCountOf(1, 0), 1);
  EXPECT_EQ(redirector_.RequestCountOf(1, 3), 1);
  EXPECT_EQ(redirector_.replica_set_changes(), 1);
}

TEST_F(RedirectorTest, NewReplicaIsNotFlooded) {
  // Without the reset, a new replica would receive every request until it
  // caught up. After the reset it receives only its fair share.
  redirector_.RegisterObject(1, 0);
  for (int i = 0; i < 1000; ++i) redirector_.ChooseReplica(1, 0);
  redirector_.OnReplicaCreated(1, 3);
  int remote_first_100 = 0;
  for (int i = 0; i < 100; ++i) {
    if (redirector_.ChooseReplica(1, 0) == 3) ++remote_first_100;
  }
  // Fair share is ~1/3; catching up 1000 counts would have been 100/100.
  EXPECT_LT(remote_first_100, 50);
}

TEST_F(RedirectorTest, AffinityIncrementInsteadOfDuplicate) {
  redirector_.RegisterObject(1, 2);
  redirector_.OnReplicaCreated(1, 2);
  EXPECT_EQ(redirector_.ReplicaCount(1), 1);
  EXPECT_EQ(redirector_.AffinityOf(1, 2), 2);
  EXPECT_EQ(redirector_.TotalAffinity(1), 2);
}

TEST_F(RedirectorTest, AffinityReduction) {
  redirector_.RegisterObject(1, 2);
  redirector_.OnReplicaCreated(1, 2);
  redirector_.OnAffinityReduced(1, 2, 1);
  EXPECT_EQ(redirector_.AffinityOf(1, 2), 1);
}

TEST_F(RedirectorTest, LastReplicaDropDenied) {
  redirector_.RegisterObject(1, 2);
  EXPECT_FALSE(redirector_.RequestDrop(1, 2));
  EXPECT_EQ(redirector_.ReplicaCount(1), 1);
}

TEST_F(RedirectorTest, NonLastDropGrantedAndRemovedImmediately) {
  redirector_.RegisterObject(1, 0);
  redirector_.OnReplicaCreated(1, 3);
  EXPECT_TRUE(redirector_.RequestDrop(1, 0));
  EXPECT_EQ(redirector_.ReplicaCount(1), 1);
  // All subsequent requests go to the survivor.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(redirector_.ChooseReplica(1, 0), 3);
}

TEST_F(RedirectorTest, ConcurrentDropsCannotEmptyReplicaSet) {
  redirector_.RegisterObject(1, 0);
  redirector_.OnReplicaCreated(1, 2);
  redirector_.OnReplicaCreated(1, 3);
  EXPECT_TRUE(redirector_.RequestDrop(1, 0));
  EXPECT_TRUE(redirector_.RequestDrop(1, 2));
  EXPECT_FALSE(redirector_.RequestDrop(1, 3));  // last one survives
  EXPECT_EQ(redirector_.ReplicaCount(1), 1);
}

TEST_F(RedirectorTest, ReplicaHostsSortedAscending) {
  redirector_.RegisterObject(1, 3);
  redirector_.OnReplicaCreated(1, 0);
  redirector_.OnReplicaCreated(1, 2);
  const auto hosts = redirector_.ReplicaHosts(1);
  EXPECT_EQ(hosts, (std::vector<NodeId>{0, 2, 3}));
}

TEST_F(RedirectorTest, ObjectsListsRegistered) {
  redirector_.RegisterObject(4, 0);
  redirector_.RegisterObject(2, 1);
  EXPECT_EQ(redirector_.Objects(), (std::vector<ObjectId>{2, 4}));
}

TEST_F(RedirectorTest, RequestsDistributedCounter) {
  redirector_.RegisterObject(1, 0);
  for (int i = 0; i < 7; ++i) redirector_.ChooseReplica(1, 2);
  EXPECT_EQ(redirector_.requests_distributed(), 7);
}

TEST_F(RedirectorTest, ClosestTieBreaksTowardLowestHost) {
  // Replicas at 1 and 3, gateway 2 equidistant from both.
  redirector_.RegisterObject(1, 1);
  redirector_.OnReplicaCreated(1, 3);
  EXPECT_EQ(redirector_.ChooseReplica(1, 2), 1);
}

TEST_F(RedirectorTest, PruneHostRemovesReplicasAcrossObjects) {
  redirector_.RegisterObject(1, 2);
  redirector_.RegisterObject(4, 0);
  redirector_.OnReplicaCreated(4, 2);
  EXPECT_EQ(redirector_.PruneHost(2), 2);
  EXPECT_EQ(redirector_.ReplicaCount(1), 0);
  EXPECT_EQ(redirector_.ReplicaCount(4), 1);
  EXPECT_EQ(redirector_.PruneHost(2), 0);  // idempotent
}

TEST_F(RedirectorTest, PruneShrinksSpilledEntryBackToFastPath) {
  // Three replicas spill past the inline two-replica fast path; pruning
  // one must shrink the entry back so the fast path stays coherent (the
  // latent dead-host bug: spill vectors kept stale lengths).
  redirector_.RegisterObject(1, 0);
  redirector_.OnReplicaCreated(1, 2);
  redirector_.OnReplicaCreated(1, 3);
  for (int i = 0; i < 30; ++i) redirector_.ChooseReplica(1, 0);
  EXPECT_EQ(redirector_.PruneHost(2), 1);
  EXPECT_EQ(redirector_.ReplicaCount(1), 2);
  // Counts reset to 1 on the replica-set change, exactly as for creation.
  EXPECT_EQ(redirector_.RequestCountOf(1, 0), 1);
  EXPECT_EQ(redirector_.RequestCountOf(1, 3), 1);
  // The surviving pair still splits traffic per the Fig. 2 algorithm.
  for (int i = 0; i < 20; ++i) {
    const NodeId chosen = redirector_.ChooseReplica(1, 0);
    EXPECT_TRUE(chosen == 0 || chosen == 3);
  }
}

TEST_F(RedirectorTest, ChooseOnFullyPrunedObjectReturnsInvalid) {
  redirector_.RegisterObject(1, 2);
  const std::int64_t distributed_before = redirector_.requests_distributed();
  EXPECT_EQ(redirector_.PruneHost(2), 1);
  EXPECT_TRUE(redirector_.KnowsObject(1));
  EXPECT_EQ(redirector_.ChooseReplica(1, 0), kInvalidNode);
  // A failed choice is not a distributed request.
  EXPECT_EQ(redirector_.requests_distributed(), distributed_before);
}

TEST_F(RedirectorTest, RestoreReplicaPreservesAffinity) {
  redirector_.RegisterObject(1, 2);
  redirector_.OnReplicaCreated(1, 2);  // affinity 2
  EXPECT_EQ(redirector_.PruneHost(2), 1);
  redirector_.RestoreReplica(1, 2, /*affinity=*/2);
  EXPECT_EQ(redirector_.ReplicaCount(1), 1);
  EXPECT_EQ(redirector_.AffinityOf(1, 2), 2);
  EXPECT_EQ(redirector_.ChooseReplica(1, 3), 2);
}

TEST_F(RedirectorTest, ChurnAcrossInlineSpillBoundaryDuringPruneRestore) {
  // Regression for the spill-path re-audit: under the SoA layout a
  // single-replica entry is fully inline and a second replica acquires a
  // pooled spill set (released again when erasure returns the count to
  // one). Repeated prune/restore churn must cross that boundary in both
  // directions without corrupting hosts, affinities, or rcnt resets —
  // including when the recycled spill set previously belonged to another
  // object.
  redirector_.RegisterObject(1, 0);
  redirector_.RegisterObject(2, 3);
  for (int round = 0; round < 8; ++round) {
    // Inline -> spill: a second replica for object 1 (affinity 2 so the
    // restore below has a non-default affinity to preserve).
    redirector_.OnReplicaCreated(1, 2);
    redirector_.OnReplicaCreated(1, 2);  // affinity 2 on host 2
    ASSERT_EQ(redirector_.ReplicaCount(1), 2) << "round " << round;
    EXPECT_EQ(redirector_.AffinityOf(1, 2), 2);
    // The replica-set change reset every rcnt to 1.
    EXPECT_EQ(redirector_.RequestCountOf(1, 0), 1);
    EXPECT_EQ(redirector_.RequestCountOf(1, 2), 1);
    // Drive traffic so the spilled counters move.
    for (int i = 0; i < 10; ++i) redirector_.ChooseReplica(1, 3);
    // Spill -> inline: prune the spilled host; the survivor returns to
    // the inline head and its spill set goes back to the pool.
    ASSERT_EQ(redirector_.PruneHost(2), 1) << "round " << round;
    ASSERT_EQ(redirector_.ReplicaCount(1), 1);
    EXPECT_EQ(redirector_.AffinityOf(1, 0), 1);
    EXPECT_EQ(redirector_.ChooseReplica(1, 3), 0);
    // Grow object 2 across the boundary too, so the pooled spill set is
    // exercised by a different object with different hosts each round.
    redirector_.OnReplicaCreated(2, round % 2 == 0 ? 1 : 2);
    ASSERT_EQ(redirector_.ReplicaCount(2), 2);
    ASSERT_EQ(redirector_.PruneHost(round % 2 == 0 ? 1 : 2), 1);
    ASSERT_EQ(redirector_.ReplicaCount(2), 1);
    // Inline again: restore the pruned replica with preserved affinity,
    // which re-acquires a spill set (possibly the one object 2 released).
    redirector_.RestoreReplica(1, 2, /*affinity=*/2);
    ASSERT_EQ(redirector_.ReplicaCount(1), 2);
    EXPECT_EQ(redirector_.AffinityOf(1, 2), 2);
    EXPECT_EQ(redirector_.RequestCountOf(1, 2), 1);
    // Hosts stay sorted ascending across all of the churn.
    const std::vector<NodeId> hosts = redirector_.ReplicaHosts(1);
    ASSERT_EQ(hosts.size(), 2u);
    EXPECT_EQ(hosts[0], 0);
    EXPECT_EQ(hosts[1], 2);
    // Back to inline for the next round.
    ASSERT_EQ(redirector_.PruneHost(2), 1);
    ASSERT_EQ(redirector_.ReplicaCount(1), 1);
  }
  // After all the churn the survivor still behaves like a plain
  // single-replica registration.
  EXPECT_EQ(redirector_.ChooseReplica(1, 0), 0);
  EXPECT_EQ(redirector_.ReplicaHosts(1), std::vector<NodeId>{0});
}

TEST_F(RedirectorTest, MinReplicasGuardsRequestDrop) {
  redirector_.set_min_replicas(2);
  redirector_.RegisterObject(1, 0);
  redirector_.OnReplicaCreated(1, 3);
  // With a floor of two, dropping down to one replica is refused.
  EXPECT_FALSE(redirector_.RequestDrop(1, 0));
  redirector_.OnReplicaCreated(1, 2);
  EXPECT_TRUE(redirector_.RequestDrop(1, 0));
  EXPECT_EQ(redirector_.ReplicaCount(1), 2);
}

TEST(RedirectorGroupTest, PartitionIsStable) {
  MatrixDistanceOracle oracle(4);
  RedirectorGroup group(oracle, 2.0, {0, 1, 2});
  EXPECT_EQ(group.size(), 3);
  for (ObjectId x = 0; x < 100; ++x) {
    EXPECT_EQ(&group.For(x), &group.For(x));
  }
}

TEST(RedirectorGroupTest, PartitionIsRoughlyBalanced) {
  MatrixDistanceOracle oracle(4);
  RedirectorGroup group(oracle, 2.0, {0, 1, 2, 3});
  std::vector<int> counts(4, 0);
  for (ObjectId x = 0; x < 10000; ++x) {
    for (int i = 0; i < 4; ++i) {
      if (&group.For(x) == &group.At(i)) ++counts[static_cast<std::size_t>(i)];
    }
  }
  for (const int c : counts) {
    EXPECT_GT(c, 1800);
    EXPECT_LT(c, 3200);
  }
}

TEST(RedirectorGroupTest, CensusAggregatesAcrossRedirectors) {
  MatrixDistanceOracle oracle(4);
  RedirectorGroup group(oracle, 2.0, {0, 1});
  for (ObjectId x = 0; x < 10; ++x) group.For(x).RegisterObject(x, 0);
  group.For(3).OnReplicaCreated(3, 2);
  const auto [replicas, objects] = group.TotalReplicasAndObjects();
  EXPECT_EQ(objects, 10);
  EXPECT_EQ(replicas, 11);
}

TEST(RedirectorDeathTest, ChooseOnUnknownObjectAborts) {
  MatrixDistanceOracle oracle(2);
  Redirector r(oracle, 2.0);
  EXPECT_DEATH(r.ChooseReplica(1, 0), "unknown");
}

TEST(RedirectorDeathTest, DoubleRegistrationAborts) {
  MatrixDistanceOracle oracle(2);
  Redirector r(oracle, 2.0);
  r.RegisterObject(1, 0);
  EXPECT_DEATH(r.RegisterObject(1, 1), "registered");
}

TEST(RedirectorDeathTest, DropWithAffinityAboveOneAborts) {
  MatrixDistanceOracle oracle(2);
  Redirector r(oracle, 2.0);
  r.RegisterObject(1, 0);
  r.OnReplicaCreated(1, 0);  // affinity 2
  EXPECT_DEATH(r.RequestDrop(1, 0), "affinity");
}

}  // namespace
}  // namespace radar::core
