// The paper's worked examples, reproduced as executable checks.
//
// Sec. 3 argues the request distribution algorithm through a two-host
// America/Europe scenario and several closed-form claims; this suite runs
// each of them against the real implementation.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/zipf.h"
#include "core/distance.h"
#include "core/redirector.h"

namespace radar::core {
namespace {

// America = node 0, Europe = node 1, three hops apart.
MatrixDistanceOracle TwoSiteOracle() {
  MatrixDistanceOracle oracle(2);
  oracle.Set(0, 1, 3);
  return oracle;
}

TEST(PaperExampleTest, BalancedDemandGoesToClosestReplica) {
  // "If roughly half of requests come from each region ... every request
  // will be directed to the closest replica (assuming both replicas have
  // affinity one)."
  MatrixDistanceOracle oracle = TwoSiteOracle();
  Redirector redirector(oracle, 2.0);
  redirector.RegisterObject(1, 0);
  redirector.OnReplicaCreated(1, 1);
  int cross_region = 0;
  for (int i = 0; i < 2000; ++i) {
    // Regularly inter-spaced alternating demand.
    if (redirector.ChooseReplica(1, 0) != 0) ++cross_region;
    if (redirector.ChooseReplica(1, 1) != 1) ++cross_region;
  }
  EXPECT_EQ(cross_region, 0);
}

TEST(PaperExampleTest, SwampedSiteLosesOneThird) {
  // "the American site will receive all requests until its request count
  // exceeds the request count of the European site by a factor of two...
  // Therefore, the load on the American site will be reduced by one-third
  // on average."
  MatrixDistanceOracle oracle = TwoSiteOracle();
  Redirector redirector(oracle, 2.0);
  redirector.RegisterObject(1, 0);
  redirector.OnReplicaCreated(1, 1);
  int to_europe = 0;
  constexpr int kRequests = 9000;
  for (int i = 0; i < kRequests; ++i) {
    if (redirector.ChooseReplica(1, 0) == 1) ++to_europe;
  }
  EXPECT_NEAR(static_cast<double>(to_europe) / kRequests, 1.0 / 3.0, 0.01);
}

TEST(PaperExampleTest, NReplicasServeTwoOverNPlusOne) {
  // "Assume that n replicas of an object are created. Even if the same
  // replica is the closest to all requests ... this replica will have to
  // service only 2N/(n+1)". And: "by increasing the number of replicas,
  // we can make the load on this replica arbitrarily low."
  MatrixDistanceOracle oracle(12);
  for (NodeId b = 1; b < 12; ++b) oracle.Set(0, b, 3);
  double previous_share = 1.0;
  for (const int n : {2, 3, 5, 8, 11}) {
    Redirector redirector(oracle, 2.0);
    redirector.RegisterObject(1, 0);
    for (NodeId host = 1; host < n; ++host) {
      redirector.OnReplicaCreated(1, host);
    }
    int close = 0;
    constexpr int kRequests = 12000;
    for (int i = 0; i < kRequests; ++i) {
      if (redirector.ChooseReplica(1, 0) == 0) ++close;
    }
    const double share = static_cast<double>(close) / kRequests;
    EXPECT_NEAR(share, 2.0 / (n + 1), 0.02) << "n=" << n;
    EXPECT_LT(share, previous_share);
    previous_share = share;
  }
}

TEST(PaperExampleTest, AffinityFourSendsOneNinthToEurope) {
  // "assume that request patterns change ... to the 90%-10% split ... the
  // replica placement algorithm can set the affinity of the American
  // replica to 4. With regular request inter-spacing ... the request
  // distribution algorithm would direct 1/9 (11%) of all requests,
  // including all those from Europe, to the European site."
  MatrixDistanceOracle oracle = TwoSiteOracle();
  Redirector redirector(oracle, 2.0);
  redirector.RegisterObject(1, 0);
  redirector.OnReplicaCreated(1, 1);
  for (int i = 0; i < 3; ++i) redirector.OnReplicaCreated(1, 0);  // aff 4
  ASSERT_EQ(redirector.AffinityOf(1, 0), 4);

  int to_europe = 0;
  int europe_requests_to_europe = 0;
  constexpr int kRounds = 2000;  // 9 requests per round: 9:1 inter-spaced
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < 9; ++i) {
      if (redirector.ChooseReplica(1, 0) == 1) ++to_europe;
    }
    const NodeId chosen = redirector.ChooseReplica(1, 1);
    if (chosen == 1) {
      ++to_europe;
      ++europe_requests_to_europe;
    }
  }
  const double total = kRounds * 10.0;
  EXPECT_NEAR(static_cast<double>(to_europe) / total, 1.0 / 9.0, 0.02);
  // "including all those from Europe": nearly every European request is
  // serviced locally.
  EXPECT_GT(static_cast<double>(europe_requests_to_europe) / kRounds, 0.95);
}

TEST(PaperExampleTest, ReplRatioOneSixthMakesReplicationBeneficial) {
  // Sec. 4.2.1: "Assume s has the sole replica of object x, and replicates
  // x on host p that appeared in 1/6 of its requests ... the request
  // distribution algorithm will direct 1/3 of all requests to host p,
  // including all requests that are closer to p."
  MatrixDistanceOracle oracle(3);
  oracle.Set(0, 1, 4);  // s and p far apart
  oracle.Set(0, 2, 1);  // gateway 2 close to s
  oracle.Set(1, 2, 5);
  Redirector redirector(oracle, 2.0);
  redirector.RegisterObject(1, 0);
  redirector.OnReplicaCreated(1, 1);
  // 1/6 of requests enter near p (gateway 1), the rest near s.
  int to_p = 0;
  int p_local_to_p = 0;
  constexpr int kRounds = 3000;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < 5; ++i) {
      if (redirector.ChooseReplica(1, 2) == 1) ++to_p;
    }
    if (redirector.ChooseReplica(1, 1) == 1) {
      ++to_p;
      ++p_local_to_p;
    }
  }
  const double total = kRounds * 6.0;
  EXPECT_NEAR(static_cast<double>(to_p) / total, 1.0 / 3.0, 0.02);
  EXPECT_GT(static_cast<double>(p_local_to_p) / kRounds, 0.95);
}

TEST(PaperExampleTest, TopZipfObjectExceedsServerCapacity) {
  // Sec. 6's implicit hot spot: under Zipf demand over 10k objects at
  // 2120 req/s total, the most popular page alone approaches the 200
  // req/s server capacity — replication is forced, not optional.
  ReedsZipf zipf(10000);
  Rng rng(1);
  constexpr int kSamples = 1000000;
  int rank_two = 0;  // rank 2 is the Reeds form's most likely head rank
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(rng) == 2) ++rank_two;
  }
  const double rate =
      2120.0 * static_cast<double>(rank_two) / kSamples;
  EXPECT_GT(rate, 90.0);  // above the high watermark
}

}  // namespace
}  // namespace radar::core
