// Unit tests for the baseline selectors and the metrics collectors.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/selectors.h"
#include "metrics/collector.h"

namespace radar {
namespace {

using baselines::ClosestSelector;
using baselines::RoundRobinSelector;

TEST(RoundRobinSelectorTest, CyclesThroughReplicas) {
  RoundRobinSelector rr;
  const std::vector<NodeId> replicas{2, 5, 9};
  EXPECT_EQ(rr.Choose(1, replicas), 2);
  EXPECT_EQ(rr.Choose(1, replicas), 5);
  EXPECT_EQ(rr.Choose(1, replicas), 9);
  EXPECT_EQ(rr.Choose(1, replicas), 2);
}

TEST(RoundRobinSelectorTest, PerObjectCounters) {
  RoundRobinSelector rr;
  const std::vector<NodeId> replicas{2, 5};
  EXPECT_EQ(rr.Choose(1, replicas), 2);
  EXPECT_EQ(rr.Choose(7, replicas), 2);  // object 7 has its own rotation
  EXPECT_EQ(rr.Choose(1, replicas), 5);
}

TEST(RoundRobinSelectorTest, AdaptsToReplicaSetGrowth) {
  RoundRobinSelector rr;
  std::vector<NodeId> replicas{2};
  EXPECT_EQ(rr.Choose(1, replicas), 2);
  replicas.push_back(5);
  EXPECT_EQ(rr.Choose(1, replicas), 5);
  EXPECT_EQ(rr.Choose(1, replicas), 2);
}

TEST(ClosestSelectorTest, PicksNearestByOracle) {
  core::MatrixDistanceOracle oracle(6);
  for (NodeId a = 0; a < 6; ++a) {
    for (NodeId b = a + 1; b < 6; ++b) oracle.Set(a, b, b - a);
  }
  ClosestSelector closest(oracle);
  EXPECT_EQ(closest.Choose(0, {1, 4, 5}), 1);
  EXPECT_EQ(closest.Choose(5, {1, 4}), 4);
}

TEST(ClosestSelectorTest, TieBreaksTowardFirstListed) {
  core::MatrixDistanceOracle oracle(5);
  oracle.Set(2, 1, 1);
  oracle.Set(2, 3, 1);
  ClosestSelector closest(oracle);
  // Both replicas at distance 1 from gateway 2; the first (sorted order
  // in practice) wins deterministically.
  EXPECT_EQ(closest.Choose(2, {1, 3}), 1);
}

TEST(PolicyNamesTest, AllNamed) {
  EXPECT_STREQ(
      baselines::DistributionPolicyName(baselines::DistributionPolicy::kRadar),
      "radar");
  EXPECT_STREQ(baselines::DistributionPolicyName(
                   baselines::DistributionPolicy::kRoundRobin),
               "round-robin");
  EXPECT_STREQ(baselines::DistributionPolicyName(
                   baselines::DistributionPolicy::kClosest),
               "closest");
  EXPECT_STREQ(
      baselines::PlacementPolicyName(baselines::PlacementPolicy::kStatic),
      "static");
  EXPECT_STREQ(baselines::PlacementPolicyName(
                   baselines::PlacementPolicy::kFullReplication),
               "full-replication");
}

TEST(TrafficLedgerTest, SeparatesPayloadAndOverhead) {
  metrics::TrafficLedger ledger(SecondsToSim(10.0));
  ledger.AddPayload(SecondsToSim(1.0), 900);
  ledger.AddOverhead(SecondsToSim(2.0), 100);
  EXPECT_EQ(ledger.total_payload(), 900);
  EXPECT_EQ(ledger.total_overhead(), 100);
  EXPECT_DOUBLE_EQ(ledger.OverheadPercent(), 10.0);
}

TEST(TrafficLedgerTest, OverheadPercentSeriesPerBucket) {
  metrics::TrafficLedger ledger(SecondsToSim(10.0));
  ledger.AddPayload(SecondsToSim(1.0), 100);
  ledger.AddPayload(SecondsToSim(11.0), 300);
  ledger.AddOverhead(SecondsToSim(12.0), 100);
  const auto series = ledger.OverheadPercentSeries();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_DOUBLE_EQ(series[1], 25.0);
}

TEST(TrafficLedgerTest, ZeroBytesIgnored) {
  metrics::TrafficLedger ledger(SecondsToSim(10.0));
  ledger.AddPayload(SecondsToSim(1.0), 0);
  EXPECT_EQ(ledger.payload().num_buckets(), 0u);
  EXPECT_DOUBLE_EQ(ledger.OverheadPercent(), 0.0);
}

TEST(MaxSeriesTest, TracksPerBucketMaximum) {
  metrics::MaxSeries series(SecondsToSim(10.0));
  series.Add(SecondsToSim(1.0), 5.0);
  series.Add(SecondsToSim(2.0), 9.0);
  series.Add(SecondsToSim(3.0), 7.0);
  series.Add(SecondsToSim(15.0), 2.0);
  ASSERT_EQ(series.num_buckets(), 2u);
  EXPECT_DOUBLE_EQ(series.MaxAt(0), 9.0);
  EXPECT_DOUBLE_EQ(series.MaxAt(1), 2.0);
  EXPECT_DOUBLE_EQ(series.OverallMax(), 9.0);
  EXPECT_DOUBLE_EQ(series.MaxOver(1, 5), 2.0);
}

TEST(MaxSeriesTest, NegativeValuesHandled) {
  metrics::MaxSeries series(SecondsToSim(10.0));
  series.Add(SecondsToSim(1.0), -5.0);
  series.Add(SecondsToSim(2.0), -9.0);
  EXPECT_DOUBLE_EQ(series.MaxAt(0), -5.0);
}

TEST(SampledSeriesTest, MeanSinceFiltersByTime) {
  metrics::SampledSeries series;
  series.Add(SecondsToSim(10.0), 1.0);
  series.Add(SecondsToSim(20.0), 3.0);
  series.Add(SecondsToSim(30.0), 5.0);
  EXPECT_DOUBLE_EQ(series.MeanSince(0), 3.0);
  EXPECT_DOUBLE_EQ(series.MeanSince(SecondsToSim(20.0)), 4.0);
  EXPECT_DOUBLE_EQ(series.MeanSince(SecondsToSim(31.0)), 0.0);
  EXPECT_DOUBLE_EQ(series.LastValue(), 5.0);
}

TEST(AdjustmentTimeTest, FindsSettlePoint) {
  // Rate: 100, 100, 50, 20, 10, 10, 10, 10 per 1 s bucket. Equilibrium
  // (last quarter: buckets 6-7) = 10; threshold = 11; first settled
  // bucket = 4 (rate 10), needing 3 stable buckets -> settle at t=4.
  BucketedSeries traffic(SecondsToSim(1.0));
  const double rates[] = {100, 100, 50, 20, 10, 10, 10, 10};
  for (std::size_t i = 0; i < 8; ++i) {
    traffic.Add(SecondsToSim(static_cast<double>(i) + 0.5), rates[i]);
  }
  EXPECT_DOUBLE_EQ(metrics::AdjustmentTimeSeconds(traffic), 4.0);
}

TEST(AdjustmentTimeTest, ImmediateSettleIsZero) {
  BucketedSeries traffic(SecondsToSim(1.0));
  for (std::size_t i = 0; i < 8; ++i) {
    traffic.Add(SecondsToSim(static_cast<double>(i) + 0.5), 10.0);
  }
  EXPECT_DOUBLE_EQ(metrics::AdjustmentTimeSeconds(traffic), 0.0);
}

TEST(AdjustmentTimeTest, NeverSettlesIsNegative) {
  // Oscillation never produces the required run of consecutive buckets at
  // or under the threshold.
  BucketedSeries traffic(SecondsToSim(1.0));
  for (std::size_t i = 0; i < 8; ++i) {
    traffic.Add(SecondsToSim(static_cast<double>(i) + 0.5),
                i % 2 == 0 ? 10.0 : 1000.0);
  }
  EXPECT_LT(metrics::AdjustmentTimeSeconds(traffic, 1.01, 0.25, 3), 0.0);
}

TEST(AdjustmentTimeTest, TransientSpikeResetsRun) {
  BucketedSeries traffic(SecondsToSim(1.0));
  const double rates[] = {10, 10, 100, 10, 10, 10, 10, 10};
  for (std::size_t i = 0; i < 8; ++i) {
    traffic.Add(SecondsToSim(static_cast<double>(i) + 0.5), rates[i]);
  }
  // The spike at bucket 2 breaks the initial run; settle restarts at 3.
  EXPECT_DOUBLE_EQ(metrics::AdjustmentTimeSeconds(traffic), 3.0);
}

TEST(AdjustmentTimeTest, EmptySeriesIsNegative) {
  BucketedSeries traffic(SecondsToSim(1.0));
  EXPECT_LT(metrics::AdjustmentTimeSeconds(traffic), 0.0);
}

}  // namespace
}  // namespace radar
