// Property tests for the synthetic topology generators (net/topology_gen):
// spec parsing, exact sizing, connectivity, gateway/region metadata, and
// bit-exact determinism from (spec, seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "net/topology_gen.h"

namespace radar::net {
namespace {

/// Structural equality of two topologies: same nodes (name, region,
/// gateway flag) and same link list (endpoints, delay, bandwidth) in the
/// same order. Link order matters — routing tie-breaks and LinkStats
/// indices key off it, so "deterministic" means the full build sequence.
void ExpectIdentical(const Topology& a, const Topology& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.node(n).name, b.node(n).name) << "node " << n;
    EXPECT_EQ(a.node(n).region, b.node(n).region) << "node " << n;
    EXPECT_EQ(a.node(n).is_gateway, b.node(n).is_gateway) << "node " << n;
  }
  ASSERT_EQ(a.graph().num_links(), b.graph().num_links());
  for (std::size_t i = 0; i < a.graph().num_links(); ++i) {
    const Link& la = a.graph().links()[i];
    const Link& lb = b.graph().links()[i];
    EXPECT_EQ(la.a, lb.a) << "link " << i;
    EXPECT_EQ(la.b, lb.b) << "link " << i;
    EXPECT_EQ(la.delay, lb.delay) << "link " << i;
    EXPECT_EQ(la.bandwidth_bps, lb.bandwidth_bps) << "link " << i;
  }
}

TEST(TopologySpecTest, RecognizesGeneratorPrefixes) {
  EXPECT_TRUE(IsTopologySpec("ts:n=100,seed=1"));
  EXPECT_TRUE(IsTopologySpec("sf:n=100,m=2"));
  EXPECT_FALSE(IsTopologySpec("uunet"));
  EXPECT_FALSE(IsTopologySpec("topologies/uunet.txt"));
  EXPECT_FALSE(IsTopologySpec(""));
}

TEST(TopologySpecTest, ParsesTransitStubFields) {
  const TopologySpec spec =
      ParseTopologySpec("ts:domains=2,transit=3,stubs=4,stub=5,seed=9");
  EXPECT_EQ(spec.family, TopologySpec::Family::kTransitStub);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.transit_domains, 2);
  EXPECT_EQ(spec.transit_per_domain, 3);
  EXPECT_EQ(spec.stubs_per_transit, 4);
  EXPECT_EQ(spec.stub_size, 5);
  // 2*3 transit routers + 2*3*4 stub domains of 5 nodes each.
  EXPECT_EQ(spec.ExpectedNodes(), 6 + 24 * 5);
  EXPECT_EQ(spec.ExpectedGateways(), 24);
}

TEST(TopologySpecTest, ParsesScaleFreeFields) {
  const TopologySpec spec = ParseTopologySpec("sf:n=300,m=3,gw=17,seed=4");
  EXPECT_EQ(spec.family, TopologySpec::Family::kScaleFree);
  EXPECT_EQ(spec.seed, 4u);
  EXPECT_EQ(spec.target_nodes, 300);
  EXPECT_EQ(spec.edges_per_node, 3);
  EXPECT_EQ(spec.ExpectedNodes(), 300);
  EXPECT_EQ(spec.ExpectedGateways(), 17);
}

TEST(TopologyGenTest, TransitStubMatchesSpecSizing) {
  const TopologySpec spec =
      ParseTopologySpec("ts:domains=3,transit=2,stubs=3,stub=4,seed=11");
  const Topology topo = GenerateTopology(spec);
  EXPECT_EQ(topo.num_nodes(), spec.ExpectedNodes());
  EXPECT_TRUE(topo.graph().IsConnected());
  EXPECT_EQ(topo.GatewayNodes().size(),
            static_cast<std::size_t>(spec.ExpectedGateways()));
}

TEST(TopologyGenTest, TransitStubExactTargetNodes) {
  // "n=" pins the exact total; the generator derives the stub size.
  for (const std::int32_t n : {500, 1000, 2000}) {
    const TopologySpec spec =
        ParseTopologySpec("ts:n=" + std::to_string(n) + ",seed=7");
    ASSERT_EQ(spec.ExpectedNodes(), n);
    const Topology topo = GenerateTopology(spec);
    EXPECT_EQ(topo.num_nodes(), n) << "n=" << n;
    EXPECT_TRUE(topo.graph().IsConnected()) << "n=" << n;
    EXPECT_EQ(topo.GatewayNodes().size(),
              static_cast<std::size_t>(spec.ExpectedGateways()))
        << "n=" << n;
  }
}

TEST(TopologyGenTest, TransitStubCoversAllFourRegions) {
  // Regions follow transit domains (d mod 4); with >= 4 domains the
  // regional workloads see traffic in every region.
  const Topology topo =
      GenerateTopology("ts:domains=4,transit=2,stubs=2,stub=3,seed=1");
  for (int r = 0; r < kNumRegions; ++r) {
    EXPECT_FALSE(topo.NodesInRegion(static_cast<Region>(r)).empty())
        << RegionName(static_cast<Region>(r));
  }
}

TEST(TopologyGenTest, ScaleFreeMatchesSpecSizing) {
  const TopologySpec spec = ParseTopologySpec("sf:n=256,m=2,gw=16,seed=3");
  const Topology topo = GenerateTopology(spec);
  EXPECT_EQ(topo.num_nodes(), 256);
  EXPECT_TRUE(topo.graph().IsConnected());
  EXPECT_EQ(topo.GatewayNodes().size(), 16u);
}

TEST(TopologyGenTest, ScaleFreeDefaultGatewayCount) {
  // gw=0 (unset) derives max(4, n/16).
  EXPECT_EQ(ParseTopologySpec("sf:n=320,seed=1").ExpectedGateways(), 20);
  EXPECT_EQ(ParseTopologySpec("sf:n=32,seed=1").ExpectedGateways(), 4);
}

TEST(TopologyGenTest, ScaleFreeRegionsAreContiguousIdBlocks) {
  const Topology topo = GenerateTopology("sf:n=200,m=2,gw=12,seed=5");
  std::size_t total = 0;
  for (int r = 0; r < kNumRegions; ++r) {
    const std::vector<NodeId> nodes =
        topo.NodesInRegion(static_cast<Region>(r));
    ASSERT_FALSE(nodes.empty());
    // NodesInRegion returns ascending ids; a contiguous block spans
    // exactly its own size.
    EXPECT_EQ(nodes.back() - nodes.front() + 1,
              static_cast<NodeId>(nodes.size()))
        << RegionName(static_cast<Region>(r));
    total += nodes.size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(topo.num_nodes()));
}

TEST(TopologyGenTest, ScaleFreeGatewaysSpreadAcrossRegions) {
  const Topology topo = GenerateTopology("sf:n=256,m=2,gw=16,seed=2");
  std::set<Region> regions_with_gateway;
  for (const NodeId g : topo.GatewayNodes()) {
    regions_with_gateway.insert(topo.RegionOf(g));
  }
  EXPECT_EQ(regions_with_gateway.size(), static_cast<std::size_t>(kNumRegions));
}

TEST(TopologyGenTest, SameSpecAndSeedIsBitIdentical) {
  for (const char* spec : {"ts:domains=3,transit=2,stubs=2,stub=4,seed=13",
                           "ts:n=600,seed=21", "sf:n=220,m=2,gw=14,seed=8"}) {
    ExpectIdentical(GenerateTopology(spec), GenerateTopology(spec));
  }
}

TEST(TopologyGenTest, DifferentSeedsProduceDifferentWiring) {
  const Topology a = GenerateTopology("sf:n=200,m=2,gw=12,seed=1");
  const Topology b = GenerateTopology("sf:n=200,m=2,gw=12,seed=2");
  bool differs = a.graph().num_links() != b.graph().num_links();
  for (std::size_t i = 0; i < a.graph().num_links() && !differs; ++i) {
    differs = a.graph().links()[i].a != b.graph().links()[i].a ||
              a.graph().links()[i].b != b.graph().links()[i].b;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace radar::net
