// Unit tests for common/slab_map.h — the dense slab container the
// host-agent, redirector, and consistency tables are built on.
//
// The properties pinned here are the ones the protocol state relies on:
// O(1) lookup through the dense index, value-address and handle stability
// across arbitrary growth, swap-with-last erasure that keeps iteration
// compact, free-list recycling that bounds capacity by the peak
// population, and result independence from erase order.
#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/slab_map.h"

namespace radar {
namespace {

using Map = SlabMap<std::int64_t>;

TEST(SlabMapTest, InsertFindEraseBasics) {
  Map m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(7), nullptr);
  EXPECT_FALSE(m.Contains(7));

  const Map::Handle h = m.Insert(7);
  EXPECT_NE(h, Map::kNoHandle);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.Contains(7));
  EXPECT_EQ(m.HandleOf(7), h);
  EXPECT_EQ(m.KeyAt(h), 7);
  EXPECT_EQ(m.At(h), 0);  // slots start default-constructed
  m.At(h) = 42;
  EXPECT_EQ(*m.Find(7), 42);

  m.Erase(7);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.HandleOf(7), Map::kNoHandle);
  EXPECT_EQ(m.Find(7), nullptr);
}

TEST(SlabMapTest, HandlesAndAddressesStableAcrossGrowth) {
  Map m;
  // Span several chunks so growth allocates new chunks repeatedly.
  const int n = static_cast<int>(Map::kChunkSize) * 3 + 17;
  std::vector<Map::Handle> handles;
  std::vector<const std::int64_t*> addrs;
  for (int k = 0; k < n; ++k) {
    const Map::Handle h = m.Insert(k);
    m.At(h) = k * 10;
    handles.push_back(h);
    addrs.push_back(&m.At(h));
  }
  // Every handle and every address recorded before growth still resolves
  // to the same value afterwards: chunks never relocate.
  for (int k = 0; k < n; ++k) {
    EXPECT_EQ(m.HandleOf(k), handles[static_cast<std::size_t>(k)]);
    EXPECT_EQ(&m.At(handles[static_cast<std::size_t>(k)]),
              addrs[static_cast<std::size_t>(k)]);
    EXPECT_EQ(m.At(handles[static_cast<std::size_t>(k)]), k * 10);
  }
}

TEST(SlabMapTest, AscendingIterationIsDeterministic) {
  Map m;
  // Insert in a scrambled order; ascending iteration must be sorted by key
  // regardless.
  const std::vector<std::int64_t> keys = {9, 2, 31, 0, 17, 5, 12};
  for (const std::int64_t k : keys) m.At(m.Insert(k)) = k;
  std::vector<std::int64_t> seen;
  m.ForEachKeyAscending(
      [&](std::int64_t key, Map::Handle h) {
        EXPECT_EQ(m.KeyAt(h), key);
        EXPECT_EQ(m.At(h), key);
        seen.push_back(key);
      });
  std::vector<std::int64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(seen, sorted);
}

TEST(SlabMapTest, ActiveListTracksLivePopulation) {
  Map m;
  for (std::int64_t k = 0; k < 8; ++k) m.Insert(k);
  m.Erase(3);
  m.Erase(0);
  EXPECT_EQ(m.active().size(), 6u);
  std::set<std::int64_t> live;
  for (const Map::Handle h : m.active()) live.insert(m.KeyAt(h));
  EXPECT_EQ(live, (std::set<std::int64_t>{1, 2, 4, 5, 6, 7}));
}

TEST(SlabMapTest, EraseOrderDoesNotAffectContents) {
  // Two maps with the same inserts but opposite erase orders must hold the
  // same key -> value mapping (swap-with-last permutes only the internal
  // active order, never the contents).
  Map a;
  Map b;
  for (std::int64_t k = 0; k < 32; ++k) {
    a.At(a.Insert(k)) = k * 3;
    b.At(b.Insert(k)) = k * 3;
  }
  const std::vector<std::int64_t> victims = {4, 8, 15, 16, 23};
  for (auto it = victims.begin(); it != victims.end(); ++it) a.Erase(*it);
  for (auto it = victims.rbegin(); it != victims.rend(); ++it) b.Erase(*it);
  ASSERT_EQ(a.size(), b.size());
  std::vector<std::pair<std::int64_t, std::int64_t>> ca;
  std::vector<std::pair<std::int64_t, std::int64_t>> cb;
  a.ForEachKeyAscending(
      [&](std::int64_t key, Map::Handle h) { ca.emplace_back(key, a.At(h)); });
  b.ForEachKeyAscending(
      [&](std::int64_t key, Map::Handle h) { cb.emplace_back(key, b.At(h)); });
  EXPECT_EQ(ca, cb);
}

TEST(SlabMapTest, ErasedSlotsAreRecycledAndReset) {
  SlabMap<std::string> m;
  const auto h0 = m.Insert(100);
  m.At(h0) = "stale";
  m.Erase(100);
  // Re-insert under a different key: the recycled slot must come back
  // default-constructed, never leaking the prior value.
  const auto h1 = m.Insert(200);
  EXPECT_EQ(h1, h0);  // free-list recycling reuses the slot
  EXPECT_EQ(m.At(h1), "");
  EXPECT_EQ(m.KeyAt(h1), 200);
}

TEST(SlabMapTest, CapacityBoundedByPeakPopulationAcrossChurn) {
  Map m;
  const int peak = static_cast<int>(Map::kChunkSize) + 5;
  for (int k = 0; k < peak; ++k) m.Insert(k);
  const std::uint32_t cap_at_peak = m.slot_capacity();
  // Churn the whole population several times over: capacity (and thus the
  // memory of any parallel array) must not grow past the peak.
  for (int round = 0; round < 4; ++round) {
    for (int k = 0; k < peak; ++k) m.Erase(k);
    EXPECT_EQ(m.slot_capacity(), cap_at_peak);
    for (int k = 0; k < peak; ++k) {
      const Map::Handle h = m.Insert(k);
      EXPECT_LT(h, cap_at_peak);  // always a recycled slot
    }
  }
  EXPECT_EQ(m.slot_capacity(), cap_at_peak);
}

TEST(SlabMapTest, SparseKeysOnlyGrowTheIndex) {
  Map m;
  m.Insert(0);
  m.Insert(1'000'000);
  EXPECT_EQ(m.size(), 2u);
  // Two live entries occupy two slots regardless of the key gap; only the
  // index vector spans the key space.
  EXPECT_EQ(m.slot_capacity(), 2u);
  EXPECT_TRUE(m.Contains(1'000'000));
  EXPECT_FALSE(m.Contains(999'999));
}

}  // namespace
}  // namespace radar
