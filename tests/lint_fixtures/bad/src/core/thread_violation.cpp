// Deliberately violating fixture for lint_test.cpp: thread creation
// outside src/runner/. Never compiled; LintTree is pointed here by the
// test to prove the thread-confinement rule rejects it.
#include <thread>

void SpawnWorker() {
  std::thread worker([] {});           // thread-confinement
  worker.detach();                     // thread-confinement
  std::jthread auto_joiner([] {});     // thread-confinement
}
