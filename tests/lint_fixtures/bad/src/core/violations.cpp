// Deliberately violating fixture for lint_test.cpp. Never compiled, never
// linted by the real radar_lint ctest case (which walks the repo's src/
// only); LintTree is pointed here by the test to prove rejection.
#include <cassert>
#include <cstdlib>
#include <iostream>

int PickReplica(int n) {
  assert(n > 0);                       // banned-assert
  const double migr_ratio = 0.6;       // protocol-literal
  std::cout << migr_ratio << "\n";     // banned-iostream
  return rand() % n;                   // banned-rand
}
