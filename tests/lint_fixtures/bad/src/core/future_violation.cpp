// Fixture: std::future outside src/runner/ must trip thread-confinement.
#include <future>

struct PendingResult {
  std::future<int> value;
};
