// Fixture: std::promise outside src/runner/ must trip thread-confinement.
#include <future>

void Fulfil() {
  std::promise<int> p;
  p.set_value(42);
}
