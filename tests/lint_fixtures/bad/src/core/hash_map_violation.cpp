// Fixture: node-based maps in src/core/ must trip core-no-hash-maps.
#include <map>
#include <unordered_map>

namespace radar::core {

std::unordered_map<int, double> object_load;
std::map<int, int> replica_index;

}  // namespace radar::core
