// VIOLATION FIXTURE: raw socket syscalls outside src/transport/ —
// protocol code must stay behind the Transport seam so the simulator and
// the daemons share it.
int OpenControlSocket() {
  const int fd = socket(2, 1, 0);
  poll(nullptr, 0, 10);
  fcntl(fd, 4, 0);
  return fd;
}
