// Fixture: keyed event pushes outside src/sim/ and the sharded engine
// must trip seq-reservation — callers elsewhere bypass the reservation
// protocol's keyed-before-auto tiebreak.
namespace radar::core {

template <typename Sim>
void SneakEvent(Sim* sim) {
  sim->ScheduleKeyedAt(0, 42u, [] {});
}

template <typename Queue>
void SneakPush(Queue* queue) {
  queue->PushAtSeq(0, 42u, [] {});
}

}  // namespace radar::core
