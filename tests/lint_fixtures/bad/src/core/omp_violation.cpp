// Fixture: #pragma omp outside src/runner/ must trip thread-confinement.
void Sum(const int* data, int n, long* out) {
  long total = 0;
#pragma omp parallel for reduction(+ : total)
  for (int i = 0; i < n; ++i) {
    total += data[i];
  }
  *out = total;
}
