// Deliberately violating fixture for lint_test.cpp: no #pragma once, a
// file-scope using-directive, and a hard-coded repl_ratio.
#include <string>

using namespace std;  // using-namespace-in-header

inline double ReplRatio() { return 1.0 / 6.0; }  // protocol-literal
