// Fixture: std::async outside src/runner/ must trip thread-confinement.
#include <future>

int Compute();

int LaunchBackground() {
  auto handle = std::async(Compute);
  return handle.get();
}
