// Fixture: fault-model parameters spelled outside src/fault/. Values are
// chosen to dodge the protocol-literal regex so only fault-confinement
// fires here.
namespace radar::core {

struct HomegrownChaos {
  double mtbf_s = 600.0;
  double mttr_s = 45.0;
  double drop_prob = 0.25;
  double request_delay_prob = 0.1;
};

}  // namespace radar::core
