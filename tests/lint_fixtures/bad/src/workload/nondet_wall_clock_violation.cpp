// Fixture: wall-clock reads outside src/runner/ must trip
// nondet-wall-clock (results would depend on the host machine).
#include <chrono>
#include <ctime>

long NowMicros() {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             now.time_since_epoch())
      .count();
}

long NowSeconds() { return static_cast<long>(std::time(nullptr)); }
