// Fixture: traversing an unordered container (ranged-for and explicit
// begin()) must trip nondet-unordered-iteration.
#include <unordered_map>

double TotalLoad(const std::unordered_map<int, double>& load_by_node) {
  double total = 0.0;
  for (const auto& [node, load] : load_by_node) {
    total += load;
  }
  return total;
}

int FirstKey(const std::unordered_map<int, double>& load_by_node) {
  auto it = load_by_node.begin();
  return it == load_by_node.end() ? -1 : it->first;
}
