// Fixture: pointer-keyed ordered containers (address order) and
// std::hash over a pointer type must trip nondet-pointer-key and
// nondet-pointer-hash.
#include <cstddef>
#include <functional>
#include <map>
#include <set>

struct Node;

std::size_t HashNode(Node* n) { return std::hash<Node*>{}(n); }

void Track(Node* n) {
  static std::set<Node*> live;
  static std::map<const Node*, int> refcounts;
  live.insert(n);
  ++refcounts[n];
}
