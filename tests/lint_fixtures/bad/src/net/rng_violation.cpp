// Violates net-rng-confinement: only net/topology_gen.cpp may draw
// random numbers inside src/net/.
#include "common/rng.h"

namespace radar::net {

double JitteredDelay(double base) {
  Rng rng(42);
  return base * (1.0 + rng.NextDouble());
}

}  // namespace radar::net
