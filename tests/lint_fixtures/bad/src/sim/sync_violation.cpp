// Fixture: synchronization primitives inside src/sim/ (outside the
// mailbox/barrier files) must trip shard-confinement.
#include <atomic>
#include <mutex>

namespace radar::sim {

struct BadShardState {
  std::mutex lock;
  std::atomic<int> counter{0};
};

int Bump(BadShardState* state) {
  const std::lock_guard<std::mutex> guard(state->lock);
  return ++state->counter;
}

}  // namespace radar::sim
