// Fixture: std::function inside src/sim/ must trip sim-no-std-function.
#include <functional>

namespace radar::sim {

struct BadScheduler {
  std::function<void()> callback;
};

}  // namespace radar::sim
