// Fixture: allocation inside a RADAR_HOT region must trip hot-alloc
// (`new`, make_shared/make_unique, std::function construction), and a
// stray end marker must trip hot-region.
#include <functional>
#include <memory>

struct Event {
  int id = 0;
};

// RADAR_HOT: fixture dispatch loop
Event* MakeEvent() { return new Event; }

std::shared_ptr<Event> ShareEvent() { return std::make_shared<Event>(); }

std::function<void()> WrapCallback(Event* e) {
  return std::function<void()>([e] { ++e->id; });
}
// RADAR_HOT_END

// RADAR_HOT_END
