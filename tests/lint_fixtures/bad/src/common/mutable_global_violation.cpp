// Fixture: unguarded namespace-scope mutable state, a race-safe but
// unlisted atomic, and a function-local static counter must all trip
// mutable-global (only race-safe AND whitelisted globals pass).
#include <atomic>
#include <cstdint>

namespace radar::common {
namespace {

std::uint64_t g_bytes_logged = 0;

std::atomic<int> g_flush_count{0};

}  // namespace

std::uint64_t NextSequence() {
  static std::uint64_t g_sequence = 0;
  return ++g_sequence;
}

void NoteFlush(std::uint64_t bytes) {
  g_bytes_logged += bytes;
  g_flush_count.fetch_add(1);
}

}  // namespace radar::common
