// Property tests for the shard-parallel machinery (DESIGN.md §14): the
// conservative-window safety argument on randomized topologies, the
// partitioner's invariants, the mailbox's (when, seq) merge order, and
// the event queue's seq reservation protocol.
//
// These exercise the pieces below the engine — sim/shard.h's scheduler
// against a toy WindowModel, net::PathLatencyMatrix's lookahead against a
// brute force, driver::PartitionHosts against its contract — so a
// violation localizes to the mechanism instead of showing up only as a
// byte diff in shard_test's end-to-end pins.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/types.h"
#include "driver/shard_plan.h"
#include "net/graph.h"
#include "net/path_latency.h"
#include "net/routing.h"
#include "sim/event_queue.h"
#include "sim/mailbox.h"
#include "sim/shard.h"
#include "sim/simulator.h"

namespace radar {
namespace {

// ---------------------------------------------------------------------
// Randomized topologies: ring, star, bridge, random connected
// ---------------------------------------------------------------------

// Floored at 2 ms so the toy window-safety runs take at most a few
// hundred windows per simulated second (the conservative loop advances
// by the lookahead even when queues are idle).
SimTime RandomDelay(Rng& rng) {
  return 2'000 + static_cast<SimTime>(rng.NextBounded(20'000));
}

net::Graph Ring(std::int32_t n, Rng& rng) {
  net::Graph graph(n);
  for (NodeId v = 0; v < n; ++v) {
    graph.AddLink(v, (v + 1) % n, RandomDelay(rng), 1e6);
  }
  return graph;
}

net::Graph Star(std::int32_t n, Rng& rng) {
  net::Graph graph(n);
  for (NodeId v = 1; v < n; ++v) {
    graph.AddLink(0, v, RandomDelay(rng), 1e6);
  }
  return graph;
}

/// Two stars joined by a single bridge link — the worst case for a
/// min-cut partitioner and for lookahead (one pair dominates).
net::Graph Bridge(std::int32_t n, Rng& rng) {
  net::Graph graph(n);
  const NodeId half = n / 2;
  for (NodeId v = 1; v < half; ++v) {
    graph.AddLink(0, v, RandomDelay(rng), 1e6);
  }
  for (NodeId v = half + 1; v < n; ++v) {
    graph.AddLink(half, v, RandomDelay(rng), 1e6);
  }
  graph.AddLink(0, half, RandomDelay(rng), 1e6);
  return graph;
}

/// A random spanning tree (each node attaches to a random earlier node)
/// plus a few random extra links.
net::Graph RandomConnected(std::int32_t n, Rng& rng) {
  net::Graph graph(n);
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent =
        static_cast<NodeId>(rng.NextBounded(static_cast<std::uint64_t>(v)));
    graph.AddLink(parent, v, RandomDelay(rng), 1e6);
  }
  const int extras = static_cast<int>(rng.NextBounded(4));
  for (int e = 0; e < extras; ++e) {
    const NodeId a =
        static_cast<NodeId>(rng.NextBounded(static_cast<std::uint64_t>(n)));
    const NodeId b =
        static_cast<NodeId>(rng.NextBounded(static_cast<std::uint64_t>(n)));
    if (a == b || graph.HasLink(a, b)) continue;
    graph.AddLink(a, b, RandomDelay(rng), 1e6);
  }
  return graph;
}

net::Graph MakeTopology(int kind, std::int32_t n, Rng& rng) {
  switch (kind) {
    case 0:
      return Ring(n, rng);
    case 1:
      return Star(n, rng);
    case 2:
      return Bridge(n, rng);
    default:
      return RandomConnected(n, rng);
  }
}

SimTime BruteForceMinCross(const net::PathLatencyMatrix& latency,
                           const std::vector<int>& partition) {
  SimTime best = net::PathLatencyMatrix::kNoCrossPartition;
  for (NodeId a = 0; a < latency.num_nodes(); ++a) {
    for (NodeId b = 0; b < latency.num_nodes(); ++b) {
      if (a == b || partition[static_cast<std::size_t>(a)] ==
                        partition[static_cast<std::size_t>(b)]) {
        continue;
      }
      const SimTime c = latency.Control(a, b);
      if (best < 0 || c < best) best = c;
    }
  }
  return best;
}

TEST(ShardPropertyTest, LookaheadMatchesBruteForceOnRandomTopologies) {
  Rng rng(0xfeedULL);
  for (int trial = 0; trial < 40; ++trial) {
    const int kind = trial % 4;
    const std::int32_t n = 5 + static_cast<std::int32_t>(rng.NextBounded(12));
    const net::Graph graph = MakeTopology(kind, n, rng);
    ASSERT_TRUE(graph.IsConnected()) << "kind=" << kind << " n=" << n;
    const net::RoutingTable routing(graph);
    const net::PathLatencyMatrix latency(routing, graph, 12 * 1024);

    const int k =
        2 + static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(
                std::min<std::int32_t>(n - 1, 6))));
    const std::vector<int> partition =
        driver::PartitionHosts(latency, n, k);
    const SimTime lookahead = latency.MinCrossPartitionControl(partition);
    EXPECT_EQ(lookahead, BruteForceMinCross(latency, partition))
        << "kind=" << kind << " n=" << n << " k=" << k;
    // Link delays are positive, so any cross-shard pair is at positive
    // distance: conservative windows are never empty.
    EXPECT_GT(lookahead, 0);
  }
}

TEST(ShardPropertyTest, SingleShardHasNoCrossPartitionPair) {
  Rng rng(0xbeefULL);
  const net::Graph graph = Ring(8, rng);
  const net::RoutingTable routing(graph);
  const net::PathLatencyMatrix latency(routing, graph, 12 * 1024);
  const std::vector<int> partition = driver::PartitionHosts(latency, 8, 1);
  EXPECT_EQ(latency.MinCrossPartitionControl(partition),
            net::PathLatencyMatrix::kNoCrossPartition);
}

TEST(ShardPropertyTest, PartitionHostsInvariants) {
  Rng rng(0xadd5ULL);
  for (int trial = 0; trial < 40; ++trial) {
    const int kind = trial % 4;
    const std::int32_t n = 4 + static_cast<std::int32_t>(rng.NextBounded(16));
    const net::Graph graph = MakeTopology(kind, n, rng);
    const net::RoutingTable routing(graph);
    const net::PathLatencyMatrix latency(routing, graph, 12 * 1024);
    const int k = 1 + static_cast<int>(
                          rng.NextBounded(static_cast<std::uint64_t>(n)));

    const std::vector<int> partition =
        driver::PartitionHosts(latency, n, k);
    ASSERT_EQ(partition.size(), static_cast<std::size_t>(n));

    // Every label is in [0, k) and every shard is non-empty.
    std::vector<int> population(static_cast<std::size_t>(k), 0);
    for (const int label : partition) {
      ASSERT_GE(label, 0);
      ASSERT_LT(label, k);
      ++population[static_cast<std::size_t>(label)];
    }
    for (int s = 0; s < k; ++s) {
      EXPECT_GT(population[static_cast<std::size_t>(s)], 0)
          << "empty shard " << s << " (n=" << n << " k=" << k << ")";
    }

    // Labels are assigned in first-node order: scanning nodes 0..n-1, the
    // first occurrence of label j precedes the first occurrence of j+1.
    int next_fresh = 0;
    for (const int label : partition) {
      if (label == next_fresh) ++next_fresh;
      ASSERT_LT(label, next_fresh);
    }
    EXPECT_EQ(next_fresh, k);
  }
}

// ---------------------------------------------------------------------
// Window safety: a toy WindowModel on randomized topologies
// ---------------------------------------------------------------------

/// A ping-pong model: every node starts one keyed event; each firing
/// forwards to a deterministically chosen node at the control latency,
/// for a fixed number of hops. The model asserts the conservative-window
/// contract at every step: no envelope is ever delivered at or before
/// the horizon its destination has already executed through.
class ToyModel final : public sim::WindowModel {
 public:
  struct Msg {
    NodeId node = kInvalidNode;
    std::int32_t ttl = 0;
    std::uint64_t key = 0;
  };

  ToyModel(const net::PathLatencyMatrix& latency, std::vector<int> shard_of,
           int num_shards)
      : latency_(latency), shard_of_(std::move(shard_of)) {
    mail_.Reset(num_shards);
    executed_through_.assign(static_cast<std::size_t>(num_shards), -1);
    for (int s = 0; s < num_shards; ++s) {
      shards_.push_back(std::make_unique<sim::Simulator>());
      shards_.back()->ReserveKeySpace(std::uint64_t{1} << 30);
    }
    // Global track: a handful of do-nothing coordinator events, so the
    // window loop's global/shard interleaving executes too.
    for (SimTime t = 1000; t <= 50'000; t += 7'000) {
      global_.ScheduleAt(t, [this] { ++globals_run_; });
    }
    // One initial keyed event per node; keys leave room for kMaxHops
    // consecutive per-hop keys.
    for (NodeId v = 0; v < latency_.num_nodes(); ++v) {
      const Msg m{v, kMaxHops, static_cast<std::uint64_t>(v) * 64};
      const SimTime at = 17 * (static_cast<SimTime>(v) + 1);
      Schedule(ShardOf(v), at, m);
    }
  }

  SimTime NextGlobalTime() override {
    return global_.pending_events() == 0 ? sim::kNoEventTime
                                         : global_.NextEventTime();
  }

  void RunGlobalsUntil(SimTime t) override { global_.RunUntil(t); }

  SimTime Lookahead() override {
    const SimTime min_cross = latency_.MinCrossPartitionControl(shard_of_);
    return min_cross == net::PathLatencyMatrix::kNoCrossPartition
               ? sim::kUnboundedLookahead
               : min_cross;
  }

  void BeginWindow(SimTime end) override { window_end_ = end; }

  void RunShardWindow(int shard, SimTime end) override {
    shards_[static_cast<std::size_t>(shard)]->RunUntil(end);
    executed_through_[static_cast<std::size_t>(shard)] = end;
  }

  void Barrier(SimTime end) override {
    for (int dst = 0; dst < mail_.num_shards(); ++dst) {
      SimTime prev_when = -1;
      std::uint64_t prev_seq = 0;
      mail_.DrainColumn(dst, [&](const sim::ShardEnvelope<Msg>& e) {
        // The safety property: the destination has executed through
        // `end`, so a delivery at when <= end would rewrite its past.
        EXPECT_GT(e.when, end) << "causality violation into shard " << dst;
        EXPECT_GT(e.when, executed_through_[static_cast<std::size_t>(dst)]);
        // DrainColumn's contract: envelopes arrive in (when, seq) order.
        EXPECT_TRUE(prev_when < e.when ||
                    (prev_when == e.when && prev_seq < e.seq));
        prev_when = e.when;
        prev_seq = e.seq;
        const Msg m = e.payload;
        shards_[static_cast<std::size_t>(dst)]->ScheduleKeyedAt(
            e.when, e.seq, [this, m] { Fire(m); });
      });
    }
  }

  std::int64_t fired() const { return fired_; }
  std::int64_t cross_shard_sends() const { return cross_shard_sends_; }
  int globals_run() const { return globals_run_; }

 private:
  static constexpr std::int32_t kMaxHops = 6;

  int ShardOf(NodeId v) const {
    return shard_of_[static_cast<std::size_t>(v)];
  }

  void Schedule(int shard, SimTime at, const Msg& m) {
    shards_[static_cast<std::size_t>(shard)]->ScheduleKeyedAt(
        at, m.key, [this, m] { Fire(m); });
  }

  void Fire(const Msg& m) {
    ++fired_;
    if (m.ttl == 0) return;
    const int src = ShardOf(m.node);
    const SimTime now = shards_[static_cast<std::size_t>(src)]->Now();
    const NodeId dst_node = static_cast<NodeId>(
        (static_cast<std::int64_t>(m.node) * 7 + m.ttl) %
        latency_.num_nodes());
    const Msg next{dst_node, m.ttl - 1, m.key + 1};
    if (dst_node == m.node) {
      Schedule(src, now + 1, next);
      return;
    }
    const SimTime when = now + latency_.Control(m.node, dst_node);
    const int dst = ShardOf(dst_node);
    if (dst == src) {
      Schedule(src, when, next);
    } else {
      ++cross_shard_sends_;
      // The send-side half of the safety argument: the control latency
      // of a cross-shard pair is >= the lookahead, so the delivery lands
      // strictly beyond the current horizon.
      EXPECT_GT(when, window_end_);
      mail_.Send(src, dst, when, next.key, next);
    }
  }

  const net::PathLatencyMatrix& latency_;
  std::vector<int> shard_of_;
  std::vector<std::unique_ptr<sim::Simulator>> shards_;
  sim::Simulator global_;
  sim::MailboxGrid<Msg> mail_;
  std::vector<SimTime> executed_through_;
  SimTime window_end_ = -1;
  std::int64_t fired_ = 0;
  std::int64_t cross_shard_sends_ = 0;
  int globals_run_ = 0;
};

TEST(ShardPropertyTest, WindowsAreSurpriseFreeOnRandomTopologies) {
  Rng rng(0xcafeULL);
  for (int trial = 0; trial < 24; ++trial) {
    const int kind = trial % 4;
    const std::int32_t n = 6 + static_cast<std::int32_t>(rng.NextBounded(10));
    const net::Graph graph = MakeTopology(kind, n, rng);
    const net::RoutingTable routing(graph);
    const net::PathLatencyMatrix latency(routing, graph, 12 * 1024);
    const int k =
        1 + static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(
                std::min<std::int32_t>(n, 5))));

    ToyModel model(latency, driver::PartitionHosts(latency, n, k), k);
    sim::RunConservativeWindows(model, k, SecondsToSim(1.0),
                                /*executor=*/nullptr);

    // The run must be non-trivial: every node's chain fired fully, the
    // globals ran, and (for K >= 2) some traffic actually crossed shards.
    EXPECT_EQ(model.fired(), static_cast<std::int64_t>(n) * 7);
    EXPECT_EQ(model.globals_run(), 8);
    if (k >= 2) {
      EXPECT_GT(model.cross_shard_sends(), 0);
    }
  }
}

// ---------------------------------------------------------------------
// Mailbox merge order
// ---------------------------------------------------------------------

TEST(ShardPropertyTest, MailboxMergesColumnsInWhenSeqOrder) {
  sim::MailboxGrid<int> mail;
  mail.Reset(3);
  // Interleaved (when, seq) across source cells, inserted out of order;
  // seq breaks the when=40 tie regardless of which cell held which.
  mail.Send(0, 1, /*when=*/40, /*seq=*/9, 100);
  mail.Send(2, 1, /*when=*/40, /*seq=*/2, 200);
  mail.Send(1, 1, /*when=*/10, /*seq=*/50, 300);
  mail.Send(0, 1, /*when=*/99, /*seq=*/1, 400);
  EXPECT_FALSE(mail.ColumnEmpty(1));
  EXPECT_TRUE(mail.ColumnEmpty(0));

  std::vector<int> order;
  mail.DrainColumn(1, [&](const sim::ShardEnvelope<int>& e) {
    order.push_back(e.payload);
  });
  EXPECT_EQ(order, (std::vector<int>{300, 200, 100, 400}));
  EXPECT_TRUE(mail.ColumnEmpty(1));

  // Draining an empty column is a no-op, and other columns were untouched.
  order.clear();
  mail.DrainColumn(1, [&](const sim::ShardEnvelope<int>& e) {
    order.push_back(e.payload);
  });
  EXPECT_TRUE(order.empty());
}

// ---------------------------------------------------------------------
// Event queue seq reservation
// ---------------------------------------------------------------------

TEST(ShardPropertyTest, KeyedEventsPrecedeAutoEventsAtEqualTime) {
  // The reservation rebases the auto counter above every key, so a keyed
  // event wins an equal-time tie even when pushed *after* the auto event
  // — the property that makes pop order partition-invariant.
  sim::EventQueue queue;
  queue.ReserveKeySpace(1'000);
  std::vector<int> order;
  queue.Push(50, [&order] { order.push_back(1); });
  queue.PushAtSeq(50, /*key=*/999, [&order] { order.push_back(2); });
  queue.PushAtSeq(50, /*key=*/3, [&order] { order.push_back(3); });
  while (!queue.empty()) queue.Pop().second();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(ShardPropertyTest, KeyedPushesPopInWhenKeyOrder) {
  sim::EventQueue queue;
  queue.ReserveKeySpace(1'000);
  std::vector<int> order;
  queue.PushAtSeq(10, /*key=*/9, [&order] { order.push_back(1); });
  queue.PushAtSeq(10, /*key=*/2, [&order] { order.push_back(2); });
  queue.PushAtSeq(8, /*key=*/500, [&order] { order.push_back(3); });
  queue.PushAtSeq(10, /*key=*/7, [&order] { order.push_back(4); });
  while (!queue.empty()) queue.Pop().second();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 4, 1}));
}

TEST(ShardPropertyTest, AutoEventsStayFifoAfterReservation) {
  sim::EventQueue queue;
  queue.ReserveKeySpace(64);
  std::vector<int> order;
  queue.Push(5, [&order] { order.push_back(1); });
  queue.Push(5, [&order] { order.push_back(2); });
  queue.Push(5, [&order] { order.push_back(3); });
  while (!queue.empty()) queue.Pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace radar
