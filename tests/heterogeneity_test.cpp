// Tests for the paper's extensions: heterogeneous host weights (Sec. 2)
// and the storage component of the vector load metric (Sec. 2.1).
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/host_agent.h"
#include "driver/hosting_simulation.h"
#include "fake_context.h"
#include "test_config.h"

namespace radar::core {
namespace {

ProtocolParams TestParams() { return ProtocolParams{}; }

TEST(WeightedHostTest, DefaultWeightIsOne) {
  ProtocolParams params = TestParams();
  HostAgent agent(0, 4, &params);
  EXPECT_DOUBLE_EQ(agent.weight(), 1.0);
}

TEST(WeightedHostTest, HeavierHostAcceptsProportionallyMore) {
  ProtocolParams params = TestParams();
  HostAgent agent(0, 4, &params);
  agent.set_weight(2.0);
  // lw = 80: a weight-2 host refuses only above 160 absolute load.
  agent.AddInitialReplica(1);
  for (int i = 0; i < 2400; ++i) agent.RecordServiced(1, {0});  // 120 req/s
  agent.OnMeasurementTick(SecondsToSim(20.0));
  EXPECT_TRUE(agent
                  .HandleCreateObj(CreateObjMethod::kReplicate, 9, 1.0,
                                   SecondsToSim(21.0))
                  .accepted);
  // The same load refuses at weight 1.
  HostAgent uniform(0, 4, &params);
  uniform.AddInitialReplica(1);
  for (int i = 0; i < 2400; ++i) uniform.RecordServiced(1, {0});
  uniform.OnMeasurementTick(SecondsToSim(20.0));
  EXPECT_FALSE(uniform
                   .HandleCreateObj(CreateObjMethod::kReplicate, 9, 1.0,
                                    SecondsToSim(21.0))
                   .accepted);
}

TEST(WeightedHostTest, MigrationBoundUsesNormalizedLoad) {
  ProtocolParams params = TestParams();
  HostAgent agent(0, 4, &params);
  agent.set_weight(2.0);
  // Upper bound after migration: (0 + 4*40)/2 = 80 < hw=90 -> accept;
  // a weight-1 host would see 160 > 90 and refuse.
  EXPECT_TRUE(agent
                  .HandleCreateObj(CreateObjMethod::kMigrate, 9, 40.0, 0)
                  .accepted);
  HostAgent uniform(1, 4, &params);
  EXPECT_FALSE(uniform
                   .HandleCreateObj(CreateObjMethod::kMigrate, 9, 40.0, 0)
                   .accepted);
}

TEST(WeightedHostTest, OffloadModeUsesNormalizedLoad) {
  ProtocolParams params = TestParams();
  testing::FakeContext ctx(4);
  HostAgent agent(0, 4, &params);
  agent.set_weight(2.0);
  agent.AddInitialReplica(1);
  ctx.redirector.RegisterObject(1, 0);
  // 120 req/s absolute = 60 normalized < hw -> not offloading.
  for (int i = 0; i < 2400; ++i) agent.RecordServiced(1, {0});
  agent.OnMeasurementTick(SecondsToSim(20.0));
  const PlacementStats stats = agent.RunPlacement(ctx, SecondsToSim(100.0));
  EXPECT_FALSE(stats.offloading_mode);
}

TEST(WeightedHostTest, ClusterReportsNormalizedLoadAndPrefersHeavyHosts) {
  MatrixDistanceOracle oracle(3);
  Cluster cluster(3, oracle, TestParams(), {0});
  cluster.host(2).set_weight(4.0);
  // Both hosts 1 and 2 carry 100 req/s absolute.
  for (const NodeId n : {1, 2}) {
    cluster.PlaceInitialObject(90 + n, n);
    for (int i = 0; i < 2000; ++i) {
      cluster.host(n).RecordServiced(90 + n, {n});
    }
    cluster.TickMeasurement(n, SecondsToSim(20.0));
  }
  EXPECT_DOUBLE_EQ(cluster.ReportedLoad(1), 100.0);
  EXPECT_DOUBLE_EQ(cluster.ReportedLoad(2), 25.0);
  EXPECT_DOUBLE_EQ(cluster.HostWeight(2), 4.0);
  // Host 0 (idle) beats both; among loaded hosts 2 is preferred.
  EXPECT_EQ(cluster.FindOffloadRecipient(1), 0);
  // With 0 also loaded, the weighted host wins.
  cluster.PlaceInitialObject(90, 0);
  for (int i = 0; i < 2000; ++i) cluster.host(0).RecordServiced(90, {0});
  cluster.TickMeasurement(0, SecondsToSim(20.0));
  EXPECT_EQ(cluster.FindOffloadRecipient(1), 2);
}

TEST(StorageTest, UnlimitedByDefault) {
  ProtocolParams params = TestParams();
  HostAgent agent(0, 4, &params);
  EXPECT_EQ(agent.storage_capacity(), 0);
  EXPECT_FALSE(agent.StorageFull());
}

TEST(StorageTest, FullHostRefusesNewCopies) {
  ProtocolParams params = TestParams();
  HostAgent agent(0, 4, &params);
  agent.set_storage_capacity(2);
  EXPECT_TRUE(agent.HandleCreateObj(CreateObjMethod::kReplicate, 1, 0.0, 0)
                  .accepted);
  EXPECT_TRUE(agent.HandleCreateObj(CreateObjMethod::kReplicate, 2, 0.0, 0)
                  .accepted);
  EXPECT_TRUE(agent.StorageFull());
  EXPECT_FALSE(agent.HandleCreateObj(CreateObjMethod::kReplicate, 3, 0.0, 0)
                   .accepted);
  EXPECT_FALSE(agent.HandleCreateObj(CreateObjMethod::kMigrate, 3, 0.0, 0)
                   .accepted);
}

TEST(StorageTest, AffinityIncrementNeedsNoStorage) {
  ProtocolParams params = TestParams();
  HostAgent agent(0, 4, &params);
  agent.set_storage_capacity(1);
  EXPECT_TRUE(agent.HandleCreateObj(CreateObjMethod::kReplicate, 1, 0.0, 0)
                  .accepted);
  // Full, but the replica it already stores can still gain affinity.
  EXPECT_TRUE(agent.HandleCreateObj(CreateObjMethod::kReplicate, 1, 0.0, 0)
                  .accepted);
  EXPECT_EQ(agent.Affinity(1), 2);
}

TEST(StorageTest, DropFreesStorage) {
  ProtocolParams params = TestParams();
  testing::FakeContext ctx(4);
  HostAgent agent(0, 4, &params);
  agent.set_storage_capacity(1);
  agent.AddInitialReplica(1);
  ctx.redirector.RegisterObject(1, 0);
  ctx.redirector.OnReplicaCreated(1, 3);  // second replica elsewhere
  EXPECT_TRUE(agent.StorageFull());
  // The cold object is dropped at the next placement round...
  const PlacementStats stats = agent.RunPlacement(ctx, SecondsToSim(100.0));
  EXPECT_EQ(stats.affinity_drops, 1);
  EXPECT_FALSE(agent.StorageFull());
  // ...and the slot is usable again.
  EXPECT_TRUE(agent.HandleCreateObj(CreateObjMethod::kReplicate, 7, 0.0, 0)
                  .accepted);
}

}  // namespace
}  // namespace radar::core

namespace radar::driver {
namespace {

TEST(HeterogeneousSimulationTest, WeightedPlatformAbsorbsMoreAtBigHosts) {
  // Give one node 4x the capacity and weight: under a zipf workload the
  // big host should end up carrying more absolute load than hw while
  // staying within its normalized watermarks, and the run stays healthy.
  SimConfig config = testing::ScaledPaperConfig();
  config.duration = SecondsToSim(1200.0);
  config.workload = WorkloadKind::kZipf;
  config.seed = 9;
  config.host_weight = [](NodeId n) { return n == 13 ? 4.0 : 1.0; };
  HostingSimulation sim(config);
  const RunReport report = sim.Run();
  EXPECT_EQ(report.dropped_requests, 0);
  EXPECT_LT(report.EquilibriumLatency(), 2.0);
  sim.cluster().CheckRedirectorSubsetInvariant();
}

TEST(HeterogeneousSimulationTest, StorageCapsHoldUnderSimulation) {
  SimConfig config = testing::ScaledPaperConfig();
  config.duration = SecondsToSim(900.0);
  config.workload = WorkloadKind::kHotPages;
  config.seed = 9;
  // Everyone can hold at most 40 objects beyond... capacity counts all
  // records; initial placement gives ~19 objects per host.
  config.host_storage = [](NodeId) { return std::int64_t{40}; };
  HostingSimulation sim(config);
  const RunReport report = sim.Run();
  (void)report;
  for (NodeId n = 0; n < sim.topology().num_nodes(); ++n) {
    EXPECT_LE(sim.cluster().host(n).NumObjects(), 40u) << "host " << n;
  }
}

}  // namespace
}  // namespace radar::driver
