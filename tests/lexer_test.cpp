// Tests for the analyzer's C++ lexer (tools/lint/lexer.h): the tricky
// literal syntax the old regex linter could not see, plus the span and
// line-number contracts every pass depends on.
#include "lint/lexer.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace radar::lint {
namespace {

std::vector<Token> Of(TokKind kind, const std::vector<Token>& toks) {
  std::vector<Token> out;
  for (const Token& t : toks) {
    if (t.kind == kind) out.push_back(t);
  }
  return out;
}

TEST(LexerTest, TokenizesBasicStatement) {
  const auto toks = Lex("int x = rand();\n");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[3].kind, TokKind::kIdentifier);
  EXPECT_EQ(toks[3].text, "rand");
  EXPECT_EQ(toks[4].text, "(");
  EXPECT_EQ(toks[6].text, ";");
  for (const Token& t : toks) EXPECT_EQ(t.line, 1);
}

TEST(LexerTest, ScopeResolutionIsOneToken) {
  const auto toks = Lex("std::thread t;");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "std");
  EXPECT_EQ(toks[1].kind, TokKind::kPunct);
  EXPECT_EQ(toks[1].text, "::");
  EXPECT_EQ(toks[2].text, "thread");
}

// -- Raw strings ------------------------------------------------------

TEST(LexerTest, RawStringSwallowsQuotesAndEscapes) {
  // The old stripper treated \" inside a raw string as an escape and lost
  // track of the terminator; the lexer must not.
  const auto toks = Lex(R"SRC(auto s = R"(a \" rand() b)"; int k;)SRC");
  const auto strings = Of(TokKind::kString, toks);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_NE(strings[0].text.find("rand"), std::string::npos);
  // The code after the literal is still lexed as code.
  const auto idents = Of(TokKind::kIdentifier, toks);
  ASSERT_GE(idents.size(), 4u);
  EXPECT_EQ(idents[idents.size() - 2].text, "int");
  EXPECT_EQ(idents.back().text, "k");
}

TEST(LexerTest, RawStringWithNestedDelimiterLookalike) {
  // )" appears inside the literal; only )ab" terminates it.
  const auto toks = Lex("auto s = R\"ab(x)\" still inside)ab\"; int k;");
  const auto strings = Of(TokKind::kString, toks);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_NE(strings[0].text.find("still inside"), std::string::npos);
  const auto idents = Of(TokKind::kIdentifier, toks);
  EXPECT_EQ(idents.back().text, "k");
}

TEST(LexerTest, RawStringWithEncodingPrefix) {
  const auto toks = Lex("auto s = u8R\"(payload)\";");
  const auto strings = Of(TokKind::kString, toks);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "u8R\"(payload)\"");
}

TEST(LexerTest, MultiLineRawStringKeepsLineNumbers) {
  const auto toks = Lex("auto s = R\"(line one\nline two)\";\nint k;\n");
  const auto idents = Of(TokKind::kIdentifier, toks);
  ASSERT_EQ(idents.size(), 4u);  // auto, s, int, k
  EXPECT_EQ(idents[2].text, "int");
  EXPECT_EQ(idents[2].line, 3);
}

// -- Char and string literals -----------------------------------------

TEST(LexerTest, EscapedQuoteCharLiteral) {
  const auto toks = Lex("char c = '\\''; int k;");
  const auto chars = Of(TokKind::kChar, toks);
  ASSERT_EQ(chars.size(), 1u);
  EXPECT_EQ(chars[0].text, "'\\''");
  EXPECT_EQ(Of(TokKind::kIdentifier, toks).back().text, "k");
}

TEST(LexerTest, AdjacentStringsAreSeparateTokens) {
  const auto toks = Lex("auto s = \"abc\" \"def\";");
  const auto strings = Of(TokKind::kString, toks);
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(strings[0].text, "\"abc\"");
  EXPECT_EQ(strings[1].text, "\"def\"");
}

TEST(LexerTest, EncodingPrefixedLiteralIsOneToken) {
  const auto toks = Lex("auto s = u8\"x\"; auto c = L'y';");
  ASSERT_EQ(Of(TokKind::kString, toks).size(), 1u);
  EXPECT_EQ(Of(TokKind::kString, toks)[0].text, "u8\"x\"");
  ASSERT_EQ(Of(TokKind::kChar, toks).size(), 1u);
  EXPECT_EQ(Of(TokKind::kChar, toks)[0].text, "L'y'");
}

// -- Numbers ----------------------------------------------------------

TEST(LexerTest, DigitSeparatorsStayInOneToken) {
  const auto toks = Lex("long n = 1'000'000;");
  const auto numbers = Of(TokKind::kNumber, toks);
  ASSERT_EQ(numbers.size(), 1u);
  EXPECT_EQ(numbers[0].text, "1'000'000");
  EXPECT_EQ(NormalizeNumber(numbers[0].text), "1000000");
}

TEST(LexerTest, FloatAndHexAndExponentNumbers) {
  const auto toks = Lex("double a = 0.6; int b = 0x1F; double c = 1e-3;");
  const auto numbers = Of(TokKind::kNumber, toks);
  ASSERT_EQ(numbers.size(), 3u);
  EXPECT_EQ(numbers[0].text, "0.6");
  EXPECT_EQ(numbers[1].text, "0x1F");
  EXPECT_EQ(numbers[2].text, "1e-3");
}

// -- Line splices -----------------------------------------------------

TEST(LexerTest, SplicedIdentifierIsOneToken) {
  // "ra\<newline>nd" is one identifier after phase-2 splicing — exactly
  // the evasion a line-based checker cannot see.
  const auto toks = Lex("int x = ra\\\nnd();");
  const auto idents = Of(TokKind::kIdentifier, toks);
  ASSERT_EQ(idents.size(), 3u);
  EXPECT_EQ(idents[2].text, "rand");
  EXPECT_EQ(idents[2].line, 1);  // first character's physical line
}

TEST(LexerTest, SplicedLineCommentContinues) {
  // A line comment ending in a backslash swallows the next line too; the
  // identifier on line 3 is the first real token after it.
  const auto toks = Lex("// comment \\\nstill comment\nint k;\n");
  ASSERT_EQ(Of(TokKind::kComment, toks).size(), 1u);
  const auto idents = Of(TokKind::kIdentifier, toks);
  ASSERT_EQ(idents.size(), 2u);
  EXPECT_EQ(idents[0].text, "int");
  EXPECT_EQ(idents[0].line, 3);
}

TEST(LexerTest, SpanCoversSplicedBytesInOriginal) {
  const std::string src = "int x = ra\\\nnd();";
  const auto toks = Lex(src);
  const auto idents = Of(TokKind::kIdentifier, toks);
  ASSERT_EQ(idents.size(), 3u);
  // The span is in ORIGINAL bytes: it includes the "\\\n" in the middle.
  EXPECT_EQ(src.substr(idents[2].begin, idents[2].end - idents[2].begin),
            "ra\\\nnd");
}

// -- Comments and directives ------------------------------------------

TEST(LexerTest, CommentsAreTokensWithFullText) {
  const auto toks = Lex("// RADAR_HOT: dispatch\nint k;\n/* block */\n");
  const auto comments = Of(TokKind::kComment, toks);
  ASSERT_EQ(comments.size(), 2u);
  EXPECT_EQ(comments[0].text, "// RADAR_HOT: dispatch");
  EXPECT_EQ(comments[1].text, "/* block */");
}

TEST(LexerTest, DirectiveNameTagsItsTokens) {
  const auto toks = Lex("#include <thread>\n#pragma omp parallel\nint k;\n");
  bool saw_thread = false, saw_omp = false;
  for (const Token& t : toks) {
    if (t.text == "thread") {
      EXPECT_EQ(t.directive, "include");
      saw_thread = true;
    }
    if (t.text == "omp") {
      EXPECT_EQ(t.directive, "pragma");
      saw_omp = true;
    }
    if (t.text == "k") {
      EXPECT_TRUE(t.directive.empty());
    }
  }
  EXPECT_TRUE(saw_thread);
  EXPECT_TRUE(saw_omp);
}

TEST(LexerTest, HashMidLineIsNotADirective) {
  const auto toks = Lex("int a = b # c;\n");  // not valid C++, still lexes
  for (const Token& t : toks) EXPECT_TRUE(t.directive.empty());
}

TEST(LexerTest, UnterminatedLiteralDegradesGracefully) {
  const auto toks = Lex("auto s = \"never closed\nint k;\n");
  // The literal ends at the line break; the next line is code again.
  EXPECT_EQ(Of(TokKind::kIdentifier, toks).back().text, "k");
}

}  // namespace
}  // namespace radar::lint
