// Tests for topology file I/O, request traces, and the CLI parser.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "driver/cli.h"
#include "driver/hosting_simulation.h"
#include "net/topology_io.h"
#include "net/uunet.h"
#include "workload/trace.h"

namespace radar {
namespace {

// ---------------------------------------------------------------------
// Topology I/O
// ---------------------------------------------------------------------

constexpr const char* kSmallTopology = R"(
# a three-node test backbone
node a east-na gateway
node b europe transit
node c pacific
link a b 10 350
link b c 5.5 1000
)";

TEST(TopologyIoTest, ParsesNodesLinksAndRoles) {
  std::istringstream in(kSmallTopology);
  std::string error;
  const auto topology = net::ReadTopology(in, &error);
  ASSERT_TRUE(topology.has_value()) << error;
  EXPECT_EQ(topology->num_nodes(), 3);
  EXPECT_EQ(topology->FindByName("a"), 0);
  EXPECT_TRUE(topology->IsGateway(0));
  EXPECT_FALSE(topology->IsGateway(1));
  EXPECT_TRUE(topology->IsGateway(2));  // default role
  EXPECT_EQ(topology->RegionOf(1), net::Region::kEurope);
  EXPECT_TRUE(topology->graph().HasLink(0, 1));
  EXPECT_TRUE(topology->graph().HasLink(1, 2));
  EXPECT_FALSE(topology->graph().HasLink(0, 2));
  EXPECT_EQ(topology->graph().link(1).delay, MillisToSim(5.5));
  EXPECT_DOUBLE_EQ(topology->graph().link(1).bandwidth_bps, 1000.0 * 1024.0);
}

TEST(TopologyIoTest, RoundTripsThroughWriter) {
  const net::Topology original = net::MakeUunetBackbone();
  std::ostringstream out;
  net::WriteTopology(original, out);
  std::istringstream in(out.str());
  std::string error;
  const auto parsed = net::ReadTopology(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed->graph().num_links(), original.graph().num_links());
  for (NodeId n = 0; n < original.num_nodes(); ++n) {
    EXPECT_EQ(parsed->node(n).name, original.node(n).name);
    EXPECT_EQ(parsed->RegionOf(n), original.RegionOf(n));
    EXPECT_EQ(parsed->IsGateway(n), original.IsGateway(n));
  }
  for (const net::Link& link : original.graph().links()) {
    EXPECT_TRUE(parsed->graph().HasLink(link.a, link.b));
  }
}

struct BadTopologyCase {
  const char* name;
  const char* text;
  const char* expected_fragment;
};

class TopologyIoErrorTest
    : public ::testing::TestWithParam<BadTopologyCase> {};

TEST_P(TopologyIoErrorTest, ReportsError) {
  std::istringstream in(GetParam().text);
  std::string error;
  const auto topology = net::ReadTopology(in, &error);
  EXPECT_FALSE(topology.has_value());
  EXPECT_NE(error.find(GetParam().expected_fragment), std::string::npos)
      << "got: " << error;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, TopologyIoErrorTest,
    ::testing::Values(
        BadTopologyCase{"empty", "", "no nodes"},
        BadTopologyCase{"bad_region", "node a nowhere\n", "unknown region"},
        BadTopologyCase{"bad_role", "node a europe king\n", "role"},
        BadTopologyCase{"dup_node",
                        "node a europe\nnode a europe\n", "duplicate node"},
        BadTopologyCase{"unknown_link_node",
                        "node a europe\nlink a b 10 350\n", "unknown node"},
        BadTopologyCase{"self_link",
                        "node a europe\nlink a a 10 350\n", "self-link"},
        BadTopologyCase{
            "dup_link",
            "node a europe\nnode b europe\nlink a b 10 350\nlink b a 10 "
            "350\n",
            "duplicate link"},
        BadTopologyCase{"bad_bandwidth",
                        "node a europe\nnode b europe\nlink a b 10 0\n",
                        "bandwidth"},
        BadTopologyCase{"node_after_link",
                        "node a europe\nnode b europe\nlink a b 10 350\n"
                        "node c europe\n",
                        "precede"},
        BadTopologyCase{"disconnected",
                        "node a europe\nnode b europe\nnode c europe\n"
                        "link a b 10 350\n",
                        "not connected"},
        BadTopologyCase{"garbage", "frobnicate\n", "unknown keyword"}),
    [](const ::testing::TestParamInfo<BadTopologyCase>& param_info) {
      return param_info.param.name;
    });

// ---------------------------------------------------------------------
// Request traces
// ---------------------------------------------------------------------

TEST(RequestTraceTest, AppendAndProperties) {
  workload::RequestTrace trace;
  EXPECT_TRUE(trace.empty());
  trace.Append(100, 2, 7);
  trace.Append(200, 0, 3);
  trace.Append(200, 1, 9);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.Duration(), 200);
  EXPECT_EQ(trace.NumObjectsReferenced(), 10);
}

TEST(RequestTraceTest, SaveLoadRoundTrip) {
  workload::RequestTrace trace;
  trace.Append(0, 0, 1);
  trace.Append(1'000'000, 5, 42);
  std::ostringstream out;
  trace.Save(out);
  std::istringstream in(out.str());
  std::string error;
  const auto loaded = workload::RequestTrace::Load(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->records(), trace.records());
}

TEST(RequestTraceTest, LoadRejectsOutOfOrderRecords) {
  std::istringstream in("200 0 1\n100 0 2\n");
  std::string error;
  EXPECT_FALSE(workload::RequestTrace::Load(in, &error).has_value());
  EXPECT_NE(error.find("order"), std::string::npos);
}

TEST(RequestTraceTest, LoadRejectsShortRecords) {
  std::istringstream in("100 0\n");
  std::string error;
  EXPECT_FALSE(workload::RequestTrace::Load(in, &error).has_value());
}

TEST(RequestTraceTest, SynthesizeMatchesRateAndDomain) {
  workload::UniformWorkload uniform(50);
  const auto trace = workload::RequestTrace::Synthesize(
      uniform, /*num_gateways=*/4, /*rate_per_node=*/10.0,
      SecondsToSim(5.0), /*seed=*/3);
  // 4 gateways x 10 req/s x 5 s = ~200 records.
  EXPECT_NEAR(static_cast<double>(trace.size()), 200.0, 8.0);
  for (const auto& r : trace.records()) {
    EXPECT_GE(r.gateway, 0);
    EXPECT_LT(r.gateway, 4);
    EXPECT_GE(r.object, 0);
    EXPECT_LT(r.object, 50);
    EXPECT_LE(r.t, SecondsToSim(5.0));
  }
}

TEST(RequestTraceTest, SynthesizeIsDeterministic) {
  workload::ZipfWorkload a(100);
  workload::ZipfWorkload b(100);
  const auto t1 = workload::RequestTrace::Synthesize(a, 3, 5.0,
                                                     SecondsToSim(3.0), 9);
  const auto t2 = workload::RequestTrace::Synthesize(b, 3, 5.0,
                                                     SecondsToSim(3.0), 9);
  EXPECT_EQ(t1.records(), t2.records());
}

TEST(RequestTraceTest, ReplayMatchesLiveRun) {
  // A simulation driven by a synthesized trace must behave identically to
  // the workload-driven simulation the trace was captured from.
  driver::SimConfig config;
  config.num_objects = 200;
  config.duration = SecondsToSim(300.0);
  config.workload = driver::WorkloadKind::kZipf;
  config.seed = 4;

  driver::HostingSimulation live(config);
  const driver::RunReport live_report = live.Run();

  workload::ZipfWorkload zipf(config.num_objects);
  auto trace = workload::RequestTrace::Synthesize(
      zipf, net::kUunetNodeCount, config.node_request_rate, config.duration,
      config.seed);
  driver::HostingSimulation replay(config);
  replay.SetTrace(std::move(trace));
  const driver::RunReport replay_report = replay.Run();

  EXPECT_EQ(replay_report.workload_name, "trace");
  EXPECT_EQ(replay_report.total_requests, live_report.total_requests);
  EXPECT_EQ(replay_report.traffic.total_payload(),
            live_report.traffic.total_payload());
  EXPECT_EQ(replay_report.object_copies, live_report.object_copies);
}

TEST(RequestTraceDeathTest, OutOfOrderAppendAborts) {
  workload::RequestTrace trace;
  trace.Append(100, 0, 0);
  EXPECT_DEATH(trace.Append(50, 0, 0), "time order");
}

// ---------------------------------------------------------------------
// CLI parsing
// ---------------------------------------------------------------------

TEST(CliTest, DefaultsWhenNoFlags) {
  driver::CliError error;
  const auto options = driver::ParseCli({}, &error);
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->config.workload, driver::WorkloadKind::kZipf);
  EXPECT_FALSE(options->print_series);
  EXPECT_FALSE(options->show_help);
}

TEST(CliTest, ParsesAllKnownFlags) {
  driver::CliError error;
  const auto options = driver::ParseCli(
      {"--workload=regional", "--duration=120.5", "--objects=500",
       "--seed=9", "--rate=10", "--capacity=50", "--hw=25", "--lw=20",
       "--distribution=closest", "--placement=static", "--redirectors=4",
       "--arrivals=poisson", "--topology=t.txt", "--trace=r.trace",
       "--series"},
      &error);
  ASSERT_TRUE(options.has_value()) << error.message;
  EXPECT_EQ(options->config.workload, driver::WorkloadKind::kRegional);
  EXPECT_EQ(options->config.duration, SecondsToSim(120.5));
  EXPECT_EQ(options->config.num_objects, 500);
  EXPECT_EQ(options->config.seed, 9u);
  EXPECT_DOUBLE_EQ(options->config.node_request_rate, 10.0);
  EXPECT_DOUBLE_EQ(options->config.server_capacity, 50.0);
  EXPECT_DOUBLE_EQ(options->config.protocol.high_watermark, 25.0);
  EXPECT_DOUBLE_EQ(options->config.protocol.low_watermark, 20.0);
  EXPECT_EQ(options->config.distribution,
            baselines::DistributionPolicy::kClosest);
  EXPECT_EQ(options->config.placement, baselines::PlacementPolicy::kStatic);
  EXPECT_EQ(options->config.num_redirectors, 4);
  EXPECT_EQ(options->config.arrivals, driver::ArrivalProcess::kPoisson);
  EXPECT_EQ(options->topology_file, "t.txt");
  EXPECT_EQ(options->trace_file, "r.trace");
  EXPECT_TRUE(options->print_series);
}

TEST(CliTest, HighLoadShorthand) {
  driver::CliError error;
  const auto options = driver::ParseCli({"--high-load"}, &error);
  ASSERT_TRUE(options.has_value());
  EXPECT_DOUBLE_EQ(options->config.protocol.high_watermark, 50.0);
  EXPECT_DOUBLE_EQ(options->config.protocol.low_watermark, 40.0);
}

TEST(CliTest, HelpShortCircuits) {
  driver::CliError error;
  const auto options = driver::ParseCli({"--help", "--bogus=1"}, &error);
  ASSERT_TRUE(options.has_value());
  EXPECT_TRUE(options->show_help);
  EXPECT_FALSE(driver::CliUsage().empty());
}

struct BadCliCase {
  const char* name;
  const char* flag;
  const char* expected_fragment;
};

class CliErrorTest : public ::testing::TestWithParam<BadCliCase> {};

TEST_P(CliErrorTest, Rejects) {
  driver::CliError error;
  const auto options = driver::ParseCli({GetParam().flag}, &error);
  EXPECT_FALSE(options.has_value());
  EXPECT_NE(error.message.find(GetParam().expected_fragment),
            std::string::npos)
      << "got: " << error.message;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, CliErrorTest,
    ::testing::Values(
        BadCliCase{"unknown_flag", "--frob=1", "unknown flag"},
        BadCliCase{"no_value", "--workload", "unrecognized"},
        BadCliCase{"empty_value", "--workload=", "empty value"},
        BadCliCase{"bad_workload", "--workload=bogus", "unknown workload"},
        BadCliCase{"bad_duration", "--duration=-5", "positive"},
        BadCliCase{"bad_duration_text", "--duration=abc", "positive"},
        BadCliCase{"bad_objects", "--objects=0", "positive"},
        BadCliCase{"bad_distribution", "--distribution=magic",
                   "unknown distribution"},
        BadCliCase{"bad_placement", "--placement=magic",
                   "unknown placement"},
        BadCliCase{"bad_redirectors", "--redirectors=0", ">= 1"},
        BadCliCase{"bad_arrivals", "--arrivals=bursty", "deterministic"},
        BadCliCase{"positional", "stray", "unrecognized"}),
    [](const ::testing::TestParamInfo<BadCliCase>& param_info) {
      return param_info.param.name;
    });

TEST(CliTest, WatermarkOrderingValidated) {
  driver::CliError error;
  const auto options = driver::ParseCli({"--hw=10", "--lw=20"}, &error);
  EXPECT_FALSE(options.has_value());
  EXPECT_NE(error.message.find("below"), std::string::npos);
}

}  // namespace
}  // namespace radar
