// Tests for the Theorem 1-5 load bounds (Sec. 3).
//
// The closed-form bound helpers are checked directly, and then each
// theorem is exercised *in closed loop*: a steady deterministic request
// stream is pushed through the real request distribution algorithm before
// and after a replication/migration event, and the observed load changes
// are checked against the claimed bounds.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/bounds.h"
#include "core/distance.h"
#include "core/redirector.h"

namespace radar::core {
namespace {

TEST(BoundFormulaTest, ReplicationSourceDecrease) {
  EXPECT_DOUBLE_EQ(ReplicationSourceDecreaseBound(100.0), 75.0);
  EXPECT_DOUBLE_EQ(ReplicationSourceDecreaseBound(0.0), 0.0);
}

TEST(BoundFormulaTest, RecipientIncrease) {
  EXPECT_DOUBLE_EQ(RecipientIncreaseBound(100.0, 1), 400.0);
  EXPECT_DOUBLE_EQ(RecipientIncreaseBound(100.0, 4), 100.0);
  EXPECT_DOUBLE_EQ(RecipientIncreaseBoundFromUnitLoad(25.0), 100.0);
}

TEST(BoundFormulaTest, MigrationSourceDecrease) {
  // aff = 1: the whole object leaves -> bound is exactly l.
  EXPECT_DOUBLE_EQ(MigrationSourceDecreaseBound(100.0, 1), 100.0);
  // aff = 2: l/2 + (3/4) * l * 1/2 = 0.875 l.
  EXPECT_DOUBLE_EQ(MigrationSourceDecreaseBound(100.0, 2), 87.5);
}

TEST(BoundFormulaTest, MigrationBoundDecreasesTowardReplicationBound) {
  // As affinity grows, migrating one unit looks ever more like a pure
  // replication: the bound approaches (3/4) l from above.
  double prev = MigrationSourceDecreaseBound(100.0, 1);
  for (int aff = 2; aff <= 64; aff *= 2) {
    const double cur = MigrationSourceDecreaseBound(100.0, aff);
    EXPECT_LT(cur, prev);
    EXPECT_GT(cur, ReplicationSourceDecreaseBound(100.0));
    prev = cur;
  }
}

TEST(BoundFormulaTest, Theorem5LowerBound) {
  EXPECT_DOUBLE_EQ(PostReplicationAccessLowerBound(0.18), 0.045);
}

// ---------------------------------------------------------------------
// Closed-loop checks against the real distribution algorithm.
// ---------------------------------------------------------------------

// A steady demand pattern: gateways are visited cyclically according to a
// fixed weight vector, which the paper's "evenly inter-spaced requests"
// assumption idealizes.
class SteadyStream {
 public:
  explicit SteadyStream(std::vector<std::pair<NodeId, int>> weights)
      : weights_(std::move(weights)) {}

  NodeId NextGateway() {
    while (true) {
      auto& [gateway, weight] = weights_[index_];
      if (emitted_ < weight) {
        ++emitted_;
        return gateway;
      }
      emitted_ = 0;
      index_ = (index_ + 1) % weights_.size();
    }
  }

 private:
  std::vector<std::pair<NodeId, int>> weights_;
  std::size_t index_ = 0;
  int emitted_ = 0;
};

MatrixDistanceOracle LineOracle(std::int32_t n) {
  MatrixDistanceOracle oracle(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) oracle.Set(a, b, b - a);
  }
  return oracle;
}

/// Pushes `n` requests from the stream through the redirector and returns
/// per-host service counts.
std::map<NodeId, int> Drive(Redirector& redirector, SteadyStream& stream,
                            ObjectId x, int n) {
  std::map<NodeId, int> counts;
  for (int i = 0; i < n; ++i) {
    ++counts[redirector.ChooseReplica(x, stream.NextGateway())];
  }
  return counts;
}

struct BoundScenario {
  const char* name;
  std::vector<std::pair<NodeId, int>> demand;  // gateway -> weight
  NodeId source;
  int source_affinity;
  NodeId recipient;
};

class TheoremBoundTest : public ::testing::TestWithParam<BoundScenario> {};

constexpr int kWindow = 60000;

TEST_P(TheoremBoundTest, ReplicationRespectsTheorems1And2) {
  const BoundScenario& s = GetParam();
  MatrixDistanceOracle oracle = LineOracle(8);
  Redirector redirector(oracle, 2.0);
  redirector.RegisterObject(1, s.source);
  for (int i = 1; i < s.source_affinity; ++i) {
    redirector.OnReplicaCreated(1, s.source);
  }

  SteadyStream warm(s.demand);
  Drive(redirector, warm, 1, kWindow / 4);  // settle the counters
  SteadyStream before_stream(s.demand);
  const auto before = Drive(redirector, before_stream, 1, kWindow);
  const double load_before =
      before.count(s.source) ? before.at(s.source) : 0.0;

  // Replicate source -> recipient (Theorem 1/2 event).
  redirector.OnReplicaCreated(1, s.recipient);

  SteadyStream after_stream(s.demand);
  const auto after = Drive(redirector, after_stream, 1, kWindow);
  const double source_after =
      after.count(s.source) ? after.at(s.source) : 0.0;
  const double recipient_gain =
      after.count(s.recipient) ? after.at(s.recipient) : 0.0;

  const double tolerance = 0.02 * kWindow;
  // Theorem 1: the source loses at most (3/4) of the object's load.
  EXPECT_GE(source_after,
            load_before - ReplicationSourceDecreaseBound(load_before) -
                tolerance)
      << s.name;
  // Theorem 2: the recipient gains at most 4 l / aff.
  EXPECT_LE(recipient_gain,
            RecipientIncreaseBound(load_before, s.source_affinity) +
                tolerance)
      << s.name;
}

TEST_P(TheoremBoundTest, MigrationRespectsTheorems3And4) {
  const BoundScenario& s = GetParam();
  MatrixDistanceOracle oracle = LineOracle(8);
  Redirector redirector(oracle, 2.0);
  redirector.RegisterObject(1, s.source);
  for (int i = 1; i < s.source_affinity; ++i) {
    redirector.OnReplicaCreated(1, s.source);
  }

  SteadyStream warm(s.demand);
  Drive(redirector, warm, 1, kWindow / 4);
  SteadyStream before_stream(s.demand);
  const auto before = Drive(redirector, before_stream, 1, kWindow);
  const double load_before =
      before.count(s.source) ? before.at(s.source) : 0.0;

  // Migrate one affinity unit source -> recipient (Theorem 3/4 event).
  redirector.OnReplicaCreated(1, s.recipient);
  if (s.source_affinity > 1) {
    redirector.OnAffinityReduced(1, s.source, s.source_affinity - 1);
  } else {
    ASSERT_TRUE(redirector.RequestDrop(1, s.source));
  }

  SteadyStream after_stream(s.demand);
  const auto after = Drive(redirector, after_stream, 1, kWindow);
  const double source_after =
      after.count(s.source) ? after.at(s.source) : 0.0;
  const double recipient_gain =
      after.count(s.recipient) ? after.at(s.recipient) : 0.0;

  const double tolerance = 0.02 * kWindow;
  // Theorem 3: the source loses at most l/aff + (3/4) l (aff-1)/aff.
  EXPECT_GE(
      source_after,
      load_before -
          MigrationSourceDecreaseBound(load_before, s.source_affinity) -
          tolerance)
      << s.name;
  // Theorem 4: the recipient gains at most 4 l / aff.
  EXPECT_LE(recipient_gain,
            RecipientIncreaseBound(load_before, s.source_affinity) +
                tolerance)
      << s.name;
}

INSTANTIATE_TEST_SUITE_P(
    SteadyDemand, TheoremBoundTest,
    ::testing::Values(
        BoundScenario{"all_local", {{0, 1}}, 0, 1, 7},
        BoundScenario{"all_remote", {{7, 1}}, 0, 1, 7},
        BoundScenario{"even_split", {{0, 1}, {7, 1}}, 0, 1, 7},
        BoundScenario{"ninety_ten", {{0, 9}, {7, 1}}, 0, 1, 7},
        BoundScenario{"aff2_local", {{0, 1}}, 0, 2, 7},
        BoundScenario{"aff4_split", {{0, 1}, {7, 1}}, 0, 4, 7},
        BoundScenario{"aff4_recipient_close", {{6, 1}, {0, 1}}, 0, 4, 7},
        BoundScenario{"three_gateways", {{0, 2}, {4, 1}, {7, 1}}, 2, 1, 6},
        BoundScenario{"aff3_three_gateways",
                      {{0, 1}, {4, 2}, {7, 1}},
                      4,
                      3,
                      0}),
    [](const ::testing::TestParamInfo<BoundScenario>& param_info) {
      return param_info.param.name;
    });

TEST(Theorem5Test, UnitRequestShareAfterReplicationAtLeastQuarter) {
  // If the source's unit request rate exceeded m before replicating, every
  // replica's unit rate afterwards stays above m/4 — the keystone of the
  // 4u < m stability rule. Verified in closed loop for several demands.
  const std::vector<std::vector<std::pair<NodeId, int>>> demands = {
      {{0, 1}},
      {{0, 1}, {7, 1}},
      {{0, 9}, {7, 1}},
      {{0, 1}, {3, 1}, {7, 2}},
  };
  for (std::size_t d = 0; d < demands.size(); ++d) {
    MatrixDistanceOracle oracle = LineOracle(8);
    Redirector redirector(oracle, 2.0);
    redirector.RegisterObject(1, 0);
    redirector.OnReplicaCreated(1, 7);

    SteadyStream stream(demands[d]);
    constexpr int kWindow5 = 40000;
    const auto counts = Drive(redirector, stream, 1, kWindow5);
    // Total demand rate "m" is the whole stream; each replica must hold
    // at least a quarter of a fair unit share.
    const double total = kWindow5;
    for (const NodeId host : {0, 7}) {
      const double share = counts.count(host) ? counts.at(host) : 0.0;
      const int aff = redirector.AffinityOf(1, host);
      // Theorem 5 bound: the source's unit rate before replication was the
      // full stream (affinity 1), so every replica must keep at least a
      // quarter of it (with a little slack for boundary effects).
      EXPECT_GE(share / aff, total / 4.0 * 0.9)
          << "demand " << d << " host " << host;
    }
  }
}

}  // namespace
}  // namespace radar::core
