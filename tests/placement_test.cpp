// Unit tests for the replica placement algorithm (Fig. 3) and host
// offloading (Fig. 5), driven through a scriptable context.
#include <gtest/gtest.h>

#include "core/host_agent.h"
#include "fake_context.h"

namespace radar::core {
namespace {

using testing::FakeContext;

constexpr SimTime kRound = SecondsToSim(100.0);

// Line distances on 8 nodes: |a - b| hops.
void FillLineDistances(MatrixDistanceOracle& oracle, std::int32_t n) {
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) oracle.Set(a, b, b - a);
  }
}

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest() : ctx_(8), agent_(0, 8, &params_) {
    FillLineDistances(ctx_.oracle, 8);
  }

  /// Services `count` requests for x along `path`.
  void Service(ObjectId x, const std::vector<NodeId>& path, int count) {
    for (int i = 0; i < count; ++i) agent_.RecordServiced(x, path);
  }

  /// Installs an object on the agent and registers it at the redirector.
  void Install(ObjectId x) {
    agent_.AddInitialReplica(x);
    ctx_.redirector.RegisterObject(x, 0);
    ctx_.Preload(0, x);
  }

  ProtocolParams params_;
  FakeContext ctx_;
  HostAgent agent_;
};

TEST_F(PlacementTest, ColdAffinityUnitIsDropped) {
  Install(1);
  // Give the object a second replica elsewhere so the drop can be granted.
  ctx_.redirector.OnReplicaCreated(1, 5);
  // 1 request in 100 s = 0.01 req/s < u = 0.03 -> drop.
  Service(1, {0}, 1);
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(stats.affinity_drops, 1);
  EXPECT_FALSE(agent_.HasObject(1));
  EXPECT_EQ(ctx_.redirector.ReplicaCount(1), 1);
}

TEST_F(PlacementTest, LastReplicaSurvivesDeletionThreshold) {
  Install(1);
  Service(1, {0}, 1);
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(stats.affinity_drops, 0);
  EXPECT_TRUE(agent_.HasObject(1));
}

TEST_F(PlacementTest, AffinityAboveOneReducedNotDropped) {
  Install(1);
  EXPECT_TRUE(agent_
                  .HandleCreateObj(CreateObjMethod::kReplicate, 1, 0.0, 0)
                  .accepted);
  ctx_.redirector.OnReplicaCreated(1, 0);  // affinity 2 at the redirector
  Service(1, {0}, 1);
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(stats.affinity_drops, 1);
  EXPECT_TRUE(agent_.HasObject(1));
  EXPECT_EQ(agent_.Affinity(1), 1);
  EXPECT_EQ(ctx_.redirector.AffinityOf(1, 0), 1);
}

TEST_F(PlacementTest, GeoMigrationToQualifyingCandidate) {
  Install(1);
  // 70 of 100 requests pass through node 3 (> MIGR_RATIO = 0.6).
  Service(1, {0, 3, 5}, 70);
  Service(1, {0}, 30);
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(stats.geo_migrations, 1);
  ASSERT_EQ(ctx_.calls.size(), 1u);
  // Node 5 also has 70% but is farther -> preferred over node 3.
  EXPECT_EQ(ctx_.calls[0].to, 5);
  EXPECT_EQ(ctx_.calls[0].method, CreateObjMethod::kMigrate);
  EXPECT_FALSE(agent_.HasObject(1));  // migrated away
  EXPECT_EQ(ctx_.redirector.ReplicaCount(1), 1);
  EXPECT_EQ(ctx_.redirector.ReplicaHosts(1), (std::vector<NodeId>{5}));
}

TEST_F(PlacementTest, NoMigrationBelowMigrRatio) {
  Install(1);
  // 55% through node 5: below the 60% threshold.
  Service(1, {0, 5}, 55);
  Service(1, {0}, 45);
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(stats.geo_migrations, 0);
  EXPECT_TRUE(agent_.HasObject(1));
}

TEST_F(PlacementTest, MigrationFallsBackToNextCandidateOnRefusal) {
  Install(1);
  Service(1, {0, 3, 5}, 100);
  ctx_.accept_all = false;
  ctx_.accepting = {3};  // farthest (5) refuses, next (3) accepts
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(stats.geo_migrations, 1);
  ASSERT_EQ(ctx_.calls.size(), 2u);
  EXPECT_EQ(ctx_.calls[0].to, 5);
  EXPECT_EQ(ctx_.calls[1].to, 3);
  EXPECT_EQ(ctx_.redirector.ReplicaHosts(1), (std::vector<NodeId>{3}));
}

TEST_F(PlacementTest, GeoReplicationAboveThreshold) {
  Install(1);
  // Unit access rate: 100 req / 100 s = 1 req/s > m = 0.18. Node 4 appears
  // on 30% of paths (> REPL_RATIO = 1/6) but below MIGR_RATIO.
  Service(1, {0, 4}, 30);
  Service(1, {0}, 70);
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(stats.geo_migrations, 0);
  EXPECT_EQ(stats.geo_replications, 1);
  ASSERT_EQ(ctx_.calls.size(), 1u);
  EXPECT_EQ(ctx_.calls[0].method, CreateObjMethod::kReplicate);
  EXPECT_EQ(ctx_.calls[0].to, 4);
  EXPECT_TRUE(agent_.HasObject(1));  // source keeps its replica
  EXPECT_EQ(ctx_.redirector.ReplicaCount(1), 2);
}

TEST_F(PlacementTest, NoReplicationBelowAccessThreshold) {
  Install(1);
  // 15 req / 100 s = 0.15 req/s < m = 0.18; node 4 fraction 33% though.
  Service(1, {0, 4}, 5);
  Service(1, {0}, 10);
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(stats.geo_replications, 0);
}

TEST_F(PlacementTest, NoReplicationWithoutQualifyingCandidate) {
  Install(1);
  // Hot object but every foreign node below 1/6 of paths.
  Service(1, {0, 2}, 10);
  Service(1, {0, 3}, 10);
  Service(1, {0}, 80);
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(stats.geo_replications, 0);
}

TEST_F(PlacementTest, MigratedObjectIsNotAlsoReplicated) {
  Install(1);
  // Qualifies for both migration (70%) and replication (hot).
  Service(1, {0, 5}, 700);
  Service(1, {0}, 300);
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(stats.geo_migrations, 1);
  EXPECT_EQ(stats.geo_replications, 0);
}

TEST_F(PlacementTest, ReplicationPrefersFarthestQualifier) {
  Install(1);
  Service(1, {0, 2, 6}, 30);  // both 2 and 6 at 30%
  Service(1, {0}, 70);
  agent_.RunPlacement(ctx_, kRound);
  ASSERT_FALSE(ctx_.calls.empty());
  EXPECT_EQ(ctx_.calls[0].to, 6);
}

TEST_F(PlacementTest, AccessCountsResetAfterRound) {
  Install(1);
  Service(1, {0, 4}, 50);
  agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(agent_.AccessCount(1, 0), 0u);
  EXPECT_EQ(agent_.AccessCount(1, 4), 0u);
}

TEST_F(PlacementTest, SecondEpochJudgedOnFreshCounts) {
  Install(1);
  Service(1, {0, 5}, 100);
  ctx_.accept_all = false;  // first round: migration refused everywhere
  EXPECT_EQ(agent_.RunPlacement(ctx_, kRound).geo_migrations, 0);
  ctx_.accept_all = true;
  // Second epoch: only local traffic -> no candidate, no migration.
  Service(1, {0}, 100);
  const PlacementStats stats =
      agent_.RunPlacement(ctx_, 2 * kRound);
  EXPECT_EQ(stats.geo_migrations, 0);
  EXPECT_TRUE(agent_.HasObject(1));
}

TEST_F(PlacementTest, OffloadingModeEntersAboveHighWatermark) {
  Install(1);
  Service(1, {0}, 2000);
  agent_.OnMeasurementTick(SecondsToSim(20.0));  // 100 req/s > hw
  ctx_.offload_recipient = 7;
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_TRUE(stats.offloading_mode);
}

TEST_F(PlacementTest, OffloadingModePersistsUntilBelowLowWatermark) {
  Install(1);
  Service(1, {0}, 2000);
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  ctx_.offload_recipient = kInvalidNode;  // nothing to shed to
  agent_.RunPlacement(ctx_, kRound);
  EXPECT_TRUE(agent_.offloading());
  // Load falls to 85 (between lw=80 and hw=90): still offloading.
  Service(1, {0}, 1700);
  agent_.OnMeasurementTick(SecondsToSim(40.0));
  agent_.RunPlacement(ctx_, 2 * kRound);
  EXPECT_TRUE(agent_.offloading());
  // Load falls below lw: mode exits.
  Service(1, {0}, 100);
  agent_.OnMeasurementTick(SecondsToSim(60.0));
  agent_.RunPlacement(ctx_, 3 * kRound);
  EXPECT_FALSE(agent_.offloading());
}

TEST_F(PlacementTest, OffloadSkippedWhenGeoPassShedEnough) {
  // A geo-migration whose Theorem 3 bound already brings the lower load
  // estimate below lw makes the offload pass unnecessary.
  Install(1);  // 30 req/s, purely local -> no geo action
  Install(2);  // 70 req/s, 100% through node 6 -> geo-migrates
  Service(1, {0}, 600);
  Service(2, {0, 6}, 1400);
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  ASSERT_GT(agent_.measured_load(), params_.high_watermark);
  ctx_.offload_recipient = 7;
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(stats.geo_migrations, 1);
  EXPECT_FALSE(stats.ran_offload);
  // The migration's full decrease bound was debited from the estimate.
  EXPECT_LT(agent_.OffloadLoad(), params_.low_watermark);
}

TEST_F(PlacementTest, OffloadComplementsInsufficientGeoPass) {
  // When geo actions happen but their bounds cannot account for enough
  // load relief, the offloading host still sheds to a recipient — the
  // mode "continues in this manner until its load drops below lw".
  Install(1);  // 100 req/s, purely local
  Install(2);  // 5 req/s, geo-migrates (fraction 1.0 via node 6)
  Service(1, {0}, 2000);
  Service(2, {0, 6}, 100);
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  ctx_.offload_recipient = 7;
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(stats.geo_migrations, 1);
  EXPECT_TRUE(stats.ran_offload);
  EXPECT_GT(stats.offload_replications, 0);
}

TEST_F(PlacementTest, OffloadReplicatesHotAndMigratesColdObjects) {
  Install(1);  // hot: unit rate 20 req/s > m
  Install(2);  // modest: 0.1 req/s in (u, m]
  Service(1, {0}, 2000);
  // Keep object 2's foreign fraction at 0.5 — below MIGR_RATIO, so it is
  // not geo-migrated, but it still ranks first for offloading.
  Service(2, {0, 3}, 5);
  Service(2, {0}, 5);
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  ASSERT_GT(agent_.measured_load(), params_.high_watermark);
  ctx_.offload_recipient = 7;
  ctx_.reported_load = 10.0;
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_TRUE(stats.ran_offload);
  // Object 2 has the higher foreign fraction -> examined first, migrated
  // (unit rate <= m). Object 1 replicated (unit rate > m).
  EXPECT_EQ(stats.offload_migrations, 1);
  EXPECT_EQ(stats.offload_replications, 1);
  EXPECT_FALSE(agent_.HasObject(2));
  EXPECT_TRUE(agent_.HasObject(1));
  ASSERT_EQ(ctx_.calls.size(), 2u);
  EXPECT_EQ(ctx_.calls[0].x, 2);
  EXPECT_EQ(ctx_.calls[0].method, CreateObjMethod::kMigrate);
  EXPECT_EQ(ctx_.calls[1].x, 1);
  EXPECT_EQ(ctx_.calls[1].method, CreateObjMethod::kReplicate);
}

TEST_F(PlacementTest, OffloadStopsWhenRecipientEstimateFills) {
  // Many hot objects; recipient starts just under lw so the 4x unit-load
  // bound fills it quickly and the shedding stops early.
  for (ObjectId x = 1; x <= 5; ++x) {
    Install(x);
    Service(x, {0}, 500);
  }
  agent_.OnMeasurementTick(SecondsToSim(20.0));  // 125 req/s
  ctx_.offload_recipient = 7;
  ctx_.reported_load = params_.low_watermark - 30.0;  // 50 req/s
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  // Each replication adds 4 * 25 = 100 to the recipient estimate, so only
  // one transfer fits before the estimate exceeds lw.
  EXPECT_EQ(stats.offload_replications, 1);
}

TEST_F(PlacementTest, OffloadAbortsOnRecipientRefusal) {
  for (ObjectId x = 1; x <= 3; ++x) {
    Install(x);
    Service(x, {0}, 800);
  }
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  ctx_.offload_recipient = 7;
  ctx_.accept_all = false;  // recipient refuses everything
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_TRUE(stats.ran_offload);
  EXPECT_EQ(stats.offload_migrations + stats.offload_replications, 0);
  EXPECT_EQ(ctx_.calls.size(), 1u);  // gave up after the first refusal
}

TEST_F(PlacementTest, OffloadWithoutRecipientDoesNothing) {
  Install(1);
  Service(1, {0}, 2000);
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  ctx_.offload_recipient = kInvalidNode;
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_TRUE(stats.ran_offload);
  EXPECT_EQ(ctx_.calls.size(), 0u);
}

TEST_F(PlacementTest, SingleObjectOffloadWhenBulkDisabled) {
  // The responsiveness ablation: without en-masse relocation the host
  // sheds at most one object per placement round.
  params_.bulk_offload = false;
  for (ObjectId x = 1; x <= 4; ++x) {
    Install(x);
    Service(x, {0}, 600);
  }
  agent_.OnMeasurementTick(SecondsToSim(20.0));  // 120 req/s > hw
  ctx_.offload_recipient = 7;
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_TRUE(stats.ran_offload);
  EXPECT_EQ(stats.offload_migrations + stats.offload_replications, 1);
}

TEST_F(PlacementTest, FreshlyAcquiredObjectNotInstantlyDropped) {
  // An object migrated in 1 s before this host's placement round has a
  // short local epoch; its access rate must be judged on that epoch, not
  // the host's full 100 s (which would spuriously delete it).
  ctx_.redirector.RegisterObject(9, 5);
  EXPECT_TRUE(agent_
                  .HandleCreateObj(CreateObjMethod::kMigrate, 9, 1.0,
                                   kRound - SecondsToSim(1.0))
                  .accepted);
  ctx_.redirector.OnReplicaCreated(9, 0);
  agent_.RecordServiced(9, {0});  // 1 req in its 1 s epoch = 1 req/s >> u
  const PlacementStats stats = agent_.RunPlacement(ctx_, kRound);
  EXPECT_EQ(stats.affinity_drops, 0);
  EXPECT_TRUE(agent_.HasObject(9));
}

}  // namespace
}  // namespace radar::core
