// Unit tests for Topology / TopologyBuilder, the UUNET-style backbone, and
// LinkStats.
#include <gtest/gtest.h>

#include <set>

#include "net/link_stats.h"
#include "net/routing.h"
#include "net/topology.h"
#include "net/uunet.h"

namespace radar::net {
namespace {

constexpr SimTime kDelay = MillisToSim(10.0);
constexpr double kBw = 350.0 * 1024.0;

TEST(TopologyBuilderTest, BuildsNamedNodesAndLinks) {
  TopologyBuilder b;
  const NodeId a = b.AddNode("a", Region::kEurope);
  const NodeId c = b.AddNode("c", Region::kEurope, /*is_gateway=*/false);
  b.Link("a", "c", kDelay, kBw);
  const Topology t = std::move(b).Build();
  EXPECT_EQ(t.num_nodes(), 2);
  EXPECT_EQ(t.node(a).name, "a");
  EXPECT_TRUE(t.IsGateway(a));
  EXPECT_FALSE(t.IsGateway(c));
  EXPECT_EQ(t.FindByName("c"), c);
  EXPECT_EQ(t.FindByName("zzz"), kInvalidNode);
  EXPECT_TRUE(t.graph().HasLink(a, c));
}

TEST(TopologyBuilderTest, RegionsQueryable) {
  TopologyBuilder b;
  b.AddNode("w1", Region::kWesternNorthAmerica);
  b.AddNode("e1", Region::kEurope);
  b.AddNode("w2", Region::kWesternNorthAmerica);
  b.Link(0, 1, kDelay, kBw);
  b.Link(1, 2, kDelay, kBw);
  const Topology t = std::move(b).Build();
  const auto western = t.NodesInRegion(Region::kWesternNorthAmerica);
  ASSERT_EQ(western.size(), 2u);
  EXPECT_EQ(western[0], 0);
  EXPECT_EQ(western[1], 2);
  EXPECT_EQ(t.NodesInRegion(Region::kPacificAustralia).size(), 0u);
}

TEST(TopologyBuilderTest, GatewayListAscending) {
  TopologyBuilder b;
  b.AddNode("a", Region::kEurope, true);
  b.AddNode("b", Region::kEurope, false);
  b.AddNode("c", Region::kEurope, true);
  b.Link(0, 1, kDelay, kBw);
  b.Link(1, 2, kDelay, kBw);
  const Topology t = std::move(b).Build();
  const auto gateways = t.GatewayNodes();
  ASSERT_EQ(gateways.size(), 2u);
  EXPECT_EQ(gateways[0], 0);
  EXPECT_EQ(gateways[1], 2);
}

TEST(TopologyBuilderDeathTest, DuplicateNameAborts) {
  TopologyBuilder b;
  b.AddNode("x", Region::kEurope);
  EXPECT_DEATH(b.AddNode("x", Region::kEurope), "duplicate");
}

TEST(TopologyBuilderDeathTest, UnknownLinkNameAborts) {
  TopologyBuilder b;
  b.AddNode("x", Region::kEurope);
  EXPECT_DEATH(b.Link("x", "nope", kDelay, kBw), "nope");
}

TEST(TopologyBuilderDeathTest, DisconnectedBuildAborts) {
  TopologyBuilder b;
  b.AddNode("x", Region::kEurope);
  b.AddNode("y", Region::kEurope);
  EXPECT_DEATH(std::move(b).Build(), "connected");
}

TEST(UunetTest, HasFiftyThreeNodes) {
  const Topology t = MakeUunetBackbone();
  EXPECT_EQ(t.num_nodes(), kUunetNodeCount);
  EXPECT_EQ(t.num_nodes(), 53);
}

TEST(UunetTest, RegionalCompositionMatchesPaper) {
  // "53 nodes in North America, Europe, Pacific Rim, and Australia".
  const Topology t = MakeUunetBackbone();
  const auto western = t.NodesInRegion(Region::kWesternNorthAmerica);
  const auto eastern = t.NodesInRegion(Region::kEasternNorthAmerica);
  const auto europe = t.NodesInRegion(Region::kEurope);
  const auto pacific = t.NodesInRegion(Region::kPacificAustralia);
  EXPECT_EQ(western.size() + eastern.size() + europe.size() + pacific.size(),
            53u);
  // Every region is non-trivial.
  EXPECT_GE(western.size(), 8u);
  EXPECT_GE(eastern.size(), 12u);
  EXPECT_GE(europe.size(), 8u);
  EXPECT_GE(pacific.size(), 5u);
}

TEST(UunetTest, AllNodesAreGateways) {
  // "We assume that all the backbone nodes serve as gateways" (Sec. 6.1).
  const Topology t = MakeUunetBackbone();
  EXPECT_EQ(t.GatewayNodes().size(), 53u);
}

TEST(UunetTest, ConnectedWithModerateDiameter) {
  const Topology t = MakeUunetBackbone();
  EXPECT_TRUE(t.graph().IsConnected());
  const RoutingTable rt(t.graph());
  std::int32_t diameter = 0;
  for (NodeId i = 0; i < t.num_nodes(); ++i) {
    for (NodeId j = 0; j < t.num_nodes(); ++j) {
      diameter = std::max(diameter, rt.HopDistance(i, j));
    }
  }
  // A backbone is a few hops across, not a long chain.
  EXPECT_GE(diameter, 4);
  EXPECT_LE(diameter, 14);
}

TEST(UunetTest, IntraRegionCloserThanInterRegion) {
  // Regional clustering is what the regional workload exploits: nodes of
  // one region must on average be closer to each other than to nodes of
  // other regions.
  const Topology t = MakeUunetBackbone();
  const RoutingTable rt(t.graph());
  double intra = 0.0;
  double inter = 0.0;
  std::int64_t intra_n = 0;
  std::int64_t inter_n = 0;
  for (NodeId i = 0; i < t.num_nodes(); ++i) {
    for (NodeId j = i + 1; j < t.num_nodes(); ++j) {
      if (t.RegionOf(i) == t.RegionOf(j)) {
        intra += rt.HopDistance(i, j);
        ++intra_n;
      } else {
        inter += rt.HopDistance(i, j);
        ++inter_n;
      }
    }
  }
  EXPECT_LT(intra / static_cast<double>(intra_n),
            inter / static_cast<double>(inter_n));
}

TEST(UunetTest, CustomLinkParamsPropagate) {
  BackboneParams params;
  params.link_delay = MillisToSim(25.0);
  params.bandwidth_bps = 1000.0;
  const Topology t = MakeUunetBackbone(params);
  for (const Link& l : t.graph().links()) {
    EXPECT_EQ(l.delay, MillisToSim(25.0));
    EXPECT_DOUBLE_EQ(l.bandwidth_bps, 1000.0);
  }
}

TEST(UunetTest, NamesAreUnique) {
  const Topology t = MakeUunetBackbone();
  std::set<std::string> names;
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_TRUE(names.insert(t.node(n).name).second) << t.node(n).name;
  }
}

// A small line/cycle graph for the LinkStats tests; counters live per
// directed link of this graph, so every recorded hop must be one of its
// links.
Graph ChainGraph(std::int32_t num_nodes, bool close_cycle = false) {
  Graph g(num_nodes);
  for (NodeId n = 0; n + 1 < num_nodes; ++n) {
    g.AddLink(n, n + 1, MillisToSim(1.0), 1000.0);
  }
  if (close_cycle && num_nodes > 2) {
    g.AddLink(0, num_nodes - 1, MillisToSim(1.0), 1000.0);
  }
  return g;
}

TEST(LinkStatsTest, RecordPathChargesEveryHop) {
  const Graph g = ChainGraph(4);
  LinkStats stats(g);
  stats.RecordPath({0, 1, 2, 3}, 100);
  EXPECT_EQ(stats.total_byte_hops(), 300);
  EXPECT_EQ(stats.BytesOnHop(0, 1), 100);
  EXPECT_EQ(stats.BytesOnHop(1, 2), 100);
  EXPECT_EQ(stats.BytesOnHop(2, 3), 100);
  EXPECT_EQ(stats.BytesOnHop(1, 0), 0);  // directed
}

TEST(LinkStatsTest, SingletonPathChargesNothing) {
  const Graph g = ChainGraph(2);
  LinkStats stats(g);
  stats.RecordPath({1}, 500);
  EXPECT_EQ(stats.total_byte_hops(), 0);
}

TEST(LinkStatsTest, BusiestHop) {
  const Graph g = ChainGraph(3, /*close_cycle=*/true);
  LinkStats stats(g);
  stats.RecordHop(0, 1, 10);
  stats.RecordHop(1, 2, 30);
  stats.RecordHop(2, 0, 20);
  const auto [from, to] = stats.BusiestHop();
  EXPECT_EQ(from, 1);
  EXPECT_EQ(to, 2);
}

TEST(LinkStatsTest, ResetClears) {
  const Graph g = ChainGraph(2);
  LinkStats stats(g);
  stats.RecordHop(0, 1, 10);
  stats.Reset();
  EXPECT_EQ(stats.total_byte_hops(), 0);
  EXPECT_EQ(stats.BytesOnHop(0, 1), 0);
  const auto [from, to] = stats.BusiestHop();
  EXPECT_EQ(from, kInvalidNode);
  EXPECT_EQ(to, kInvalidNode);
}

TEST(RegionNameTest, AllRegionsNamed) {
  EXPECT_STREQ(RegionName(Region::kWesternNorthAmerica),
               "Western North America");
  EXPECT_STREQ(RegionName(Region::kEasternNorthAmerica),
               "Eastern North America");
  EXPECT_STREQ(RegionName(Region::kEurope), "Europe");
  EXPECT_STREQ(RegionName(Region::kPacificAustralia),
               "Pacific and Australia");
}

}  // namespace
}  // namespace radar::net
