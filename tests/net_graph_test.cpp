// Unit tests for radar::net::Graph.
#include <gtest/gtest.h>

#include "common/types.h"
#include "net/graph.h"

namespace radar::net {
namespace {

constexpr SimTime kDelay = MillisToSim(10.0);
constexpr double kBw = 350.0 * 1024.0;

TEST(GraphTest, EmptyGraphIsConnected) {
  Graph g(0);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, SingleNodeIsConnected) {
  Graph g(1);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_TRUE(g.Neighbors(0).empty());
}

TEST(GraphTest, AddLinkCreatesBothDirections) {
  Graph g(3);
  const auto idx = g.AddLink(0, 2, kDelay, kBw);
  EXPECT_EQ(idx, 0);
  ASSERT_EQ(g.Neighbors(0).size(), 1u);
  ASSERT_EQ(g.Neighbors(2).size(), 1u);
  EXPECT_EQ(g.Neighbors(0)[0].to, 2);
  EXPECT_EQ(g.Neighbors(2)[0].to, 0);
  EXPECT_EQ(g.Neighbors(0)[0].delay, kDelay);
  EXPECT_DOUBLE_EQ(g.Neighbors(0)[0].bandwidth_bps, kBw);
  EXPECT_EQ(g.Neighbors(0)[0].link_index, 0);
}

TEST(GraphTest, NeighborsSortedByNodeId) {
  Graph g(5);
  g.AddLink(2, 4, kDelay, kBw);
  g.AddLink(2, 0, kDelay, kBw);
  g.AddLink(2, 3, kDelay, kBw);
  g.AddLink(2, 1, kDelay, kBw);
  const auto& edges = g.Neighbors(2);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges[0].to, 0);
  EXPECT_EQ(edges[1].to, 1);
  EXPECT_EQ(edges[2].to, 3);
  EXPECT_EQ(edges[3].to, 4);
}

TEST(GraphTest, HasLinkIsSymmetric) {
  Graph g(3);
  g.AddLink(0, 1, kDelay, kBw);
  EXPECT_TRUE(g.HasLink(0, 1));
  EXPECT_TRUE(g.HasLink(1, 0));
  EXPECT_FALSE(g.HasLink(0, 2));
  EXPECT_FALSE(g.HasLink(1, 2));
}

TEST(GraphTest, HasLinkOutOfRangeIsFalse) {
  Graph g(2);
  EXPECT_FALSE(g.HasLink(-1, 0));
  EXPECT_FALSE(g.HasLink(0, 5));
}

TEST(GraphTest, DisconnectedGraphDetected) {
  Graph g(4);
  g.AddLink(0, 1, kDelay, kBw);
  g.AddLink(2, 3, kDelay, kBw);
  EXPECT_FALSE(g.IsConnected());
  g.AddLink(1, 2, kDelay, kBw);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, LinkAccessors) {
  Graph g(3);
  g.AddLink(0, 1, kDelay, kBw);
  g.AddLink(1, 2, 2 * kDelay, kBw / 2);
  EXPECT_EQ(g.num_links(), 2u);
  EXPECT_EQ(g.link(1).a, 1);
  EXPECT_EQ(g.link(1).b, 2);
  EXPECT_EQ(g.link(1).delay, 2 * kDelay);
}

TEST(GraphDeathTest, SelfLinkAborts) {
  Graph g(2);
  EXPECT_DEATH(g.AddLink(1, 1, kDelay, kBw), "RADAR_CHECK");
}

TEST(GraphDeathTest, DuplicateLinkAborts) {
  Graph g(2);
  g.AddLink(0, 1, kDelay, kBw);
  EXPECT_DEATH(g.AddLink(1, 0, kDelay, kBw), "duplicate");
}

TEST(GraphDeathTest, OutOfRangeEndpointAborts) {
  Graph g(2);
  EXPECT_DEATH(g.AddLink(0, 2, kDelay, kBw), "RADAR_CHECK");
}

TEST(GraphDeathTest, NonPositiveBandwidthAborts) {
  Graph g(2);
  EXPECT_DEATH(g.AddLink(0, 1, kDelay, 0.0), "RADAR_CHECK");
}

}  // namespace
}  // namespace radar::net
